package quetzal_test

import (
	"fmt"
	"log"

	"quetzal"
)

// Example runs the paper's person-detection application under Quetzal on a
// deterministic environment and reports whether the runtime beat the
// non-adaptive baseline — the paper's headline claim, as a godoc example.
func Example() {
	profile := quetzal.Apollo4()
	events := quetzal.GenerateEvents(quetzal.DefaultEventConfig(60, 60, 7))
	power := quetzal.GenerateSolar(quetzal.DefaultSolarConfig(events.Duration()+120, 8))

	run := func(build func(*quetzal.App) (quetzal.Controller, error)) quetzal.Results {
		app := profile.PersonDetectionApp()
		ctl, err := build(app)
		if err != nil {
			log.Fatal(err)
		}
		res, err := quetzal.Simulate(quetzal.SimConfig{
			Profile: profile, App: app, Controller: ctl,
			Power: power, Events: events, Seed: 9,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	qz := run(func(app *quetzal.App) (quetzal.Controller, error) {
		return quetzal.NewRuntime(quetzal.RuntimeConfig{App: app, CapturePeriod: 1})
	})
	na := run(quetzal.NoAdapt)

	fmt.Println("quetzal beats noadapt on discards:", qz.InterestingDiscarded() < na.InterestingDiscarded())
	fmt.Println("quetzal averted IBOs:", qz.IBOsAverted > 0)
	// Output:
	// quetzal beats noadapt on discards: true
	// quetzal averted IBOs: true
}

// ExampleNewRuntime shows the host-side control loop a firmware port would
// implement around the runtime: observe captures, ask for the next job,
// report completions.
func ExampleNewRuntime() {
	app := quetzal.Apollo4().PersonDetectionApp()
	rt, err := quetzal.NewRuntime(quetzal.RuntimeConfig{App: app, CapturePeriod: 1})
	if err != nil {
		log.Fatal(err)
	}

	buf := quetzal.NewInputBuffer(10)
	// A captured frame passed the pre-filter and entered the buffer.
	buf.Push(quetzal.Input{Seq: 1, CapturedAt: 0, Interesting: true, JobID: app.EntryJobID}, false)
	rt.ObserveCapture(true)

	dec, ok := rt.NextJob(quetzal.Env{
		Now:        1,
		InputPower: 0.020, // 20 mW measured through the hardware module
		BufferLen:  buf.Len(),
		BufferCap:  buf.Capacity(),
	}, buf)

	fmt.Println("scheduled:", ok, "job:", dec.JobID, "degraded:", dec.Degraded)
	// Output:
	// scheduled: true job: 0 degraded: false
}

// ExampleGenerateEvents builds the three Table 1 sensing environments from
// the same generator by varying only the duration cap.
func ExampleGenerateEvents() {
	for _, cap := range []float64{600, 60, 20} {
		tr := quetzal.GenerateEvents(quetzal.DefaultEventConfig(500, cap, 42))
		longest := 0.0
		for _, e := range tr.Events {
			if e.Duration > longest {
				longest = e.Duration
			}
		}
		fmt.Printf("cap %gs: longest event %.0fs\n", cap, longest)
	}
	// Output:
	// cap 600s: longest event 508s
	// cap 60s: longest event 60s
	// cap 20s: longest event 20s
}
