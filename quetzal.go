// Package quetzal is a Go implementation of Quetzal, the energy-aware
// scheduling and input-buffer-overflow (IBO) prevention system for
// energy-harvesting devices from
//
//	Desai, Wang, Lucia — "Energy-aware Scheduling and Input Buffer Overflow
//	Prevention for Energy-harvesting Systems", ASPLOS 2025.
//
// Energy-harvesting sensors capture inputs at a fixed rate but process them
// at a rate that varies with harvested power and event activity; when
// processing falls behind, the small on-device input buffer overflows and
// interesting inputs are lost. Quetzal combines:
//
//   - an Energy-aware Shortest-Job-First scheduler that folds energy
//     recharge time into every job's expected service time
//     (S_e2e = max(t_exe, E_exe/P_in));
//   - an IBO-detection and reaction engine that uses Little's Law to
//     predict overflows and degrades task quality only as much as needed
//     to avert them;
//   - a PID controller that corrects systematic prediction error; and
//   - a model of the paper's power-measurement hardware circuit (two
//     diodes, a mux, an 8-bit ADC) that evaluates the P_exe/P_in ratio
//     without division.
//
// # Programming model
//
// Applications are written as Tasks grouped into Jobs (§5.2). A Task may be
// degradable: it carries a quality-ordered list of Options (e.g. MobileNetV2
// vs LeNet for inference; a full JPEG image vs a single byte for the radio).
// A Job is a sequence of tasks with at most one degradable task; a job can
// spawn a follow-up job for the same input (a positive classification queues
// the report stage). The runtime schedules buffered inputs across jobs and
// chooses each execution's quality.
//
// # Quick start
//
//	profile := quetzal.Apollo4()
//	app := profile.PersonDetectionApp()
//	rt, err := quetzal.NewRuntime(quetzal.RuntimeConfig{
//		App:           app,
//		CapturePeriod: 1, // seconds between captures
//	})
//	// drive rt.NextJob / rt.ObserveCapture / rt.OnJobComplete from your
//	// host — or hand it to the bundled simulator:
//	res, err := quetzal.Simulate(quetzal.SimConfig{
//		Profile:    profile,
//		App:        app,
//		Controller: rt,
//		Power:      quetzal.GenerateSolar(quetzal.DefaultSolarConfig(3600, 1)),
//		Events:     quetzal.GenerateEvents(quetzal.DefaultEventConfig(100, 60, 1)),
//	})
//
// See examples/ for runnable programs and internal/experiments for the
// harness that regenerates every table and figure of the paper.
package quetzal

import (
	"quetzal/internal/baseline"
	"quetzal/internal/buffer"
	"quetzal/internal/core"
	"quetzal/internal/device"
	"quetzal/internal/energy"
	"quetzal/internal/host"
	"quetzal/internal/metrics"
	"quetzal/internal/model"
	"quetzal/internal/sched"
	"quetzal/internal/sim"
	"quetzal/internal/trace"
)

// Programming model (paper §5.2).
type (
	// Option is one quality level of a task: latency, power, classifier
	// error rates and the high-quality flag for transmissions.
	Option = model.Option
	// Task is a named computation with quality-ordered options.
	Task = model.Task
	// TaskKind distinguishes compute, classify and transmit tasks.
	TaskKind = model.TaskKind
	// Job is an ordered sequence of tasks processing one buffered input.
	Job = model.Job
	// App is a complete application: jobs plus capture-pipeline costs.
	App = model.App
)

// Task kinds and the no-spawn sentinel.
const (
	Compute  = model.Compute
	Classify = model.Classify
	Transmit = model.Transmit
	NoSpawn  = model.NoSpawn
)

// Runtime pieces (paper §4–§5).
type (
	// Runtime is the Quetzal runtime: Energy-aware SJF + IBO engine + PID
	// + hardware power measurement.
	Runtime = core.Runtime
	// RuntimeConfig assembles a Runtime.
	RuntimeConfig = core.Config
	// Controller is the decision interface the simulator (or firmware
	// glue) drives; Runtime and all baselines implement it.
	Controller = core.Controller
	// Decision is a scheduling decision: which input, which qualities.
	Decision = core.Decision
	// Feedback reports a completed job back to the controller.
	Feedback = core.Feedback
	// Env is the device state observed at a scheduling point.
	Env = core.Env
	// EstimatorKind selects how S_e2e is computed (hardware module, exact
	// division, or averaged history).
	EstimatorKind = core.EstimatorKind
	// Policy is a scheduling policy (Energy-aware SJF, FCFS, ...).
	Policy = sched.Policy
	// InputBuffer is the bounded on-device input queue.
	InputBuffer = buffer.Buffer
	// Input is one buffered sensor input.
	Input = buffer.Input
)

// Estimator kinds.
const (
	HardwareModule = core.HardwareModule
	ExactDivision  = core.ExactDivision
	AveragedSe2e   = core.AveragedSe2e
)

// NewRuntime builds the Quetzal runtime and runs its profiling phase.
func NewRuntime(cfg RuntimeConfig) (*Runtime, error) { return core.New(cfg) }

// NewInputBuffer returns an empty input buffer with the given capacity.
func NewInputBuffer(capacity int) *InputBuffer { return buffer.New(capacity) }

// Scheduling policies (§4.1, §6.1).
func EnergySJF() Policy    { return sched.EnergySJF{} }
func FCFS() Policy         { return sched.FCFS{} }
func LCFS() Policy         { return sched.LCFS{} }
func CaptureOrder() Policy { return sched.CaptureOrder{} }

// Device profiles (Table 1).
type (
	// DeviceProfile bundles an MCU's task cost tables and peripherals.
	DeviceProfile = device.Profile
	// MCU describes a microcontroller's fixed characteristics.
	MCU = device.MCU
)

// Apollo4 returns the Ambiq Apollo 4 platform profile from the paper's
// Table 1 (MobileNetV2/LeNet inference, full-image/single-byte radio).
func Apollo4() DeviceProfile { return device.Apollo4() }

// MSP430 returns the TI MSP430FR5994 platform profile from Table 1
// (Int-16/Int-8 LeNet inference).
func MSP430() DeviceProfile { return device.MSP430() }

// STM32G0 returns an STM32G071 platform profile — a third, divider-less
// target beyond the paper's Table 1.
func STM32G0() DeviceProfile { return device.STM32G0() }

// Apollo4MultiQuality returns an Apollo 4 profile with the full four-level
// degradation ladder (three inference models, four radio payload sizes).
func Apollo4MultiQuality() DeviceProfile { return device.Apollo4MultiQuality() }

// Baseline controllers (§6.1).
func NoAdapt(app *App) (Controller, error)       { return baseline.NoAdapt(app) }
func AlwaysDegrade(app *App) (Controller, error) { return baseline.AlwaysDegrade(app) }
func CatNap(app *App) (Controller, error)        { return baseline.CatNap(app) }

// FixedThreshold degrades all degradable tasks when buffer occupancy
// reaches frac (0–1].
func FixedThreshold(app *App, frac float64) (Controller, error) {
	return baseline.Threshold(app, frac)
}

// ProteanZygarde returns the static input-power-threshold baseline: as
// proposed (threshold from the harvester datasheet maximum) when oracle is
// false, or the idealised variant (threshold from the observed maximum,
// which needs future knowledge) when oracle is true.
func ProteanZygarde(app *App, maxWatts float64, oracle bool) (Controller, error) {
	if oracle {
		return baseline.PZI(app, maxWatts)
	}
	return baseline.PZO(app, maxWatts)
}

// Environment traces (§6.4).
type (
	// PowerTrace yields harvestable power over time.
	PowerTrace = trace.PowerTrace
	// SolarConfig parameterises the synthetic solar generator.
	SolarConfig = trace.SolarConfig
	// EventTrace is a sequence of sensing events.
	EventTrace = trace.EventTrace
	// Event is one burst of sensing activity.
	Event = trace.Event
	// EventConfig parameterises the synthetic event generator.
	EventConfig = trace.EventConfig
	// ConstantPower is a fixed-power trace.
	ConstantPower = trace.Constant
	// SquareWavePower alternates between two power levels.
	SquareWavePower = trace.SquareWave
)

// DefaultSolarConfig returns the harness's solar generator settings for a
// run of the given duration (seconds), deterministic under seed.
func DefaultSolarConfig(duration float64, seed int64) SolarConfig {
	return trace.DefaultSolarConfig(duration, seed)
}

// GenerateSolar produces a sampled solar power trace.
func GenerateSolar(cfg SolarConfig) PowerTrace { return trace.GenerateSolar(cfg) }

// RFConfig parameterises the synthetic RF-harvesting generator (bursty
// reader-driven power with an ambient floor).
type RFConfig = trace.RFConfig

// DefaultRFConfig returns the default RF-harvesting profile.
func DefaultRFConfig(duration float64, seed int64) RFConfig {
	return trace.DefaultRFConfig(duration, seed)
}

// GenerateRF produces a sampled RF-harvest power trace.
func GenerateRF(cfg RFConfig) PowerTrace { return trace.GenerateRF(cfg) }

// DefaultEventConfig returns the harness's event generator settings: n
// events with durations capped at maxDuration seconds (the paper's
// environment knob: 600/60/20 s).
func DefaultEventConfig(n int, maxDuration float64, seed int64) EventConfig {
	return trace.DefaultEventConfig(n, maxDuration, seed)
}

// GenerateEvents produces a deterministic event trace.
func GenerateEvents(cfg EventConfig) *EventTrace { return trace.GenerateEvents(cfg) }

// Simulation (§6.3).
type (
	// SimConfig describes one simulation run.
	SimConfig = sim.Config
	// Simulator is the device simulator: a facade over the engine's device
	// state machine with a selectable time-advance stepper (EngineKind).
	Simulator = sim.Simulator
	// Results is the metrics accounting a run produces.
	Results = metrics.Results
	// StoreConfig describes the supercapacitor energy store.
	StoreConfig = energy.StoreConfig
	// CheckpointPolicy selects the intermittent-computing progress model.
	CheckpointPolicy = sim.CheckpointPolicy
	// EngineKind selects the simulator's time-advance stepper.
	EngineKind = sim.EngineKind
	// CheckMode toggles the runtime invariant checker.
	CheckMode = sim.CheckMode
)

// Simulation engines for SimConfig.Engine.
const (
	// FixedIncrement is the paper's 1 ms stepper (reference semantics).
	FixedIncrement = sim.FixedIncrement
	// EventDriven is the validated fast path (~100x faster).
	EventDriven = sim.EventDriven
)

// Invariant-checker modes for SimConfig.Checks.
const (
	// ChecksAuto (default) runs the invariant checker every step.
	ChecksAuto = sim.ChecksAuto
	// ChecksOff disables invariant checking (benchmarks).
	ChecksOff = sim.ChecksOff
	// ChecksOn enables it explicitly.
	ChecksOn = sim.ChecksOn
)

// Checkpoint policies for SimConfig.Checkpoint.
const (
	// JITCheckpoint preserves progress exactly across power failures (the
	// paper's model).
	JITCheckpoint = sim.JITCheckpoint
	// NoCheckpoint restarts the interrupted task from scratch.
	NoCheckpoint = sim.NoCheckpoint
	// PeriodicCheckpoint rolls back to the last periodic snapshot.
	PeriodicCheckpoint = sim.PeriodicCheckpoint
)

// NewSimulator validates cfg and builds a simulator.
func NewSimulator(cfg SimConfig) (*Simulator, error) { return sim.New(cfg) }

// Simulate is the one-call convenience: build and run a simulation.
func Simulate(cfg SimConfig) (Results, error) {
	s, err := sim.New(cfg)
	if err != nil {
		return Results{}, err
	}
	return s.Run()
}

// DefaultStoreConfig returns the paper's energy store: a 33 mF
// supercapacitor behind a BQ25504-style harvester front-end.
func DefaultStoreConfig() StoreConfig { return energy.DefaultConfig() }

// Host integration: drive the runtime against real task implementations
// instead of the simulator (the firmware-glue layer).
type (
	// HostLoop runs a Controller against an Executor in caller-paced time.
	HostLoop = host.Loop
	// HostConfig assembles a HostLoop.
	HostConfig = host.Config
	// Executor runs application tasks for real.
	Executor = host.Executor
	// ExecutorFunc adapts a function to Executor.
	ExecutorFunc = host.ExecutorFunc
	// Outcome reports what a task execution produced.
	Outcome = host.Outcome
)

// NewHostLoop validates cfg and builds a host loop.
func NewHostLoop(cfg HostConfig) (*HostLoop, error) { return host.New(cfg) }
