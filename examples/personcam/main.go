// Personcam reproduces the paper's motivating deployment in miniature: a
// solar-powered smart camera that detects people, comparing Quetzal against
// the NoAdapt and AlwaysDegrade baselines across the three sensing
// environments (more-crowded / crowded / less-crowded).
//
//	go run ./examples/personcam [-events N]
package main

import (
	"flag"
	"fmt"
	"log"

	"quetzal"
)

type environment struct {
	name        string
	maxDuration float64 // the paper's Table 1 knob
}

func main() {
	events := flag.Int("events", 200, "sensing events per run")
	flag.Parse()

	envs := []environment{
		{"more-crowded", 600},
		{"crowded", 60},
		{"less-crowded", 20},
	}
	profile := quetzal.Apollo4()

	fmt.Printf("%-14s %-14s %10s %8s %8s %10s %7s\n",
		"environment", "system", "discarded", "ibo", "falseneg", "reported", "highq")
	for _, env := range envs {
		ev := quetzal.GenerateEvents(quetzal.DefaultEventConfig(*events, env.maxDuration, 21))
		power := quetzal.GenerateSolar(quetzal.DefaultSolarConfig(ev.Duration()+120, 22))

		for _, sys := range []string{"quetzal", "noadapt", "alwaysdegrade"} {
			app := profile.PersonDetectionApp()
			ctl, err := controllerFor(sys, app)
			if err != nil {
				log.Fatal(err)
			}
			res, err := quetzal.Simulate(quetzal.SimConfig{
				Profile:    profile,
				App:        app,
				Controller: ctl,
				Power:      power,
				Events:     ev,
				Seed:       23,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-14s %-14s %9.1f%% %7.1f%% %7.1f%% %10d %6.0f%%\n",
				env.name, sys,
				res.DiscardedFraction()*100,
				res.IBOFraction()*100,
				100*float64(res.FalseNegatives)/float64(max(1, res.InterestingArrivals)),
				res.ReportedInteresting(),
				res.HighQualityShare()*100)
		}
	}
	fmt.Println("\nQuetzal reduces the interesting inputs discarded by degrading task")
	fmt.Println("quality only when the IBO engine predicts an imminent overflow;")
	fmt.Println("NoAdapt loses events to a full buffer, AlwaysDegrade to LeNet's")
	fmt.Println("misclassifications (paper Figure 9).")
}

func controllerFor(sys string, app *quetzal.App) (quetzal.Controller, error) {
	switch sys {
	case "quetzal":
		return quetzal.NewRuntime(quetzal.RuntimeConfig{App: app, CapturePeriod: 1})
	case "noadapt":
		return quetzal.NoAdapt(app)
	default:
		return quetzal.AlwaysDegrade(app)
	}
}
