// Policylab builds a custom application through the public API — an
// acoustic wildlife monitor rather than the paper's camera — and explores
// how scheduling policy and S_e2e estimation strategy change its behaviour
// (the paper's Fig 12 / §7.3 sensitivity studies, on user-defined tasks).
//
//	go run ./examples/policylab
package main

import (
	"fmt"
	"log"

	"quetzal"
)

// buildApp defines the acoustic monitor: a degradable spectrogram classifier
// (large vs small model), then a report job with a degradable uplink (full
// audio clip vs a 4-byte detection flag).
func buildApp() *quetzal.App {
	classify := &quetzal.Task{
		Name: "classify-call",
		Kind: quetzal.Classify,
		Options: []quetzal.Option{
			{Name: "crnn-large", Texe: 0.6, Pexe: 0.011, FalseNegative: 0.05, FalsePositive: 0.06},
			{Name: "crnn-small", Texe: 0.2, Pexe: 0.008, FalseNegative: 0.18, FalsePositive: 0.12},
		},
	}
	encode := &quetzal.Task{
		Name:    "encode",
		Kind:    quetzal.Compute,
		Options: []quetzal.Option{{Name: "opus", Texe: 0.2, Pexe: 0.007}},
	}
	uplink := &quetzal.Task{
		Name: "uplink",
		Kind: quetzal.Transmit,
		Options: []quetzal.Option{
			{Name: "audio-clip", Texe: 1.0, Pexe: 0.12, HighQuality: true},
			{Name: "flag", Texe: 0.08, Pexe: 0.04},
		},
	}
	return &quetzal.App{
		Name: "acoustic-monitor",
		Jobs: []*quetzal.Job{
			{ID: 0, Name: "detect", Tasks: []*quetzal.Task{classify}, SpawnJobID: 1},
			{ID: 1, Name: "report", Tasks: []*quetzal.Task{encode, uplink}, SpawnJobID: quetzal.NoSpawn},
		},
		EntryJobID:  0,
		CaptureTexe: 0.03,
		CapturePexe: 0.006,
	}
}

func main() {
	events := quetzal.GenerateEvents(quetzal.DefaultEventConfig(200, 45, 41))
	power := quetzal.GenerateSolar(quetzal.DefaultSolarConfig(events.Duration()+120, 42))

	type variant struct {
		name   string
		policy quetzal.Policy
		kind   quetzal.EstimatorKind
	}
	variants := []variant{
		{"energy-sjf + hw-module", quetzal.EnergySJF(), quetzal.HardwareModule},
		{"energy-sjf + division", quetzal.EnergySJF(), quetzal.ExactDivision},
		{"energy-sjf + avg-se2e", quetzal.EnergySJF(), quetzal.AveragedSe2e},
		{"fcfs + hw-module", quetzal.FCFS(), quetzal.HardwareModule},
		{"lcfs + hw-module", quetzal.LCFS(), quetzal.HardwareModule},
		{"capture-order + hw-module", quetzal.CaptureOrder(), quetzal.HardwareModule},
	}

	fmt.Println("acoustic monitor: scheduling policy × estimator sensitivity")
	fmt.Printf("%-28s %10s %8s %10s %7s %12s\n",
		"variant", "discarded", "ibo", "reported", "highq", "degradations")
	for _, v := range variants {
		app := buildApp()
		rt, err := quetzal.NewRuntime(quetzal.RuntimeConfig{
			App:           app,
			CapturePeriod: 1,
			Policy:        v.policy,
			Kind:          v.kind,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := quetzal.Simulate(quetzal.SimConfig{
			Profile:    quetzal.Apollo4(),
			App:        app,
			Controller: rt,
			Power:      power,
			Events:     events,
			Seed:       43,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %9.1f%% %7.1f%% %10d %6.0f%% %12d\n",
			v.name,
			res.DiscardedFraction()*100,
			res.IBOFraction()*100,
			res.ReportedInteresting(),
			res.HighQualityShare()*100,
			res.Degradations)
	}
	fmt.Println("\nThe Avg-S_e2e estimator ignores input power and misjudges service")
	fmt.Println("times under variable harvest (§7.3); the hardware module tracks the")
	fmt.Println("exact-division estimator within its quantisation band at ~1/10 the")
	fmt.Println("energy per ratio (§5.1).")
}
