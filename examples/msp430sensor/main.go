// Msp430sensor runs the paper's versatility study (Fig 13) in miniature: the
// same Quetzal runtime on a much weaker microcontroller, the MSP430FR5994,
// using the single-job fused pipeline (Figure 5's structure: classify, then
// conditional compress + transmit within one job) and the Table 1 MSP430
// environment (10 s events).
//
//	go run ./examples/msp430sensor
package main

import (
	"fmt"
	"log"

	"quetzal"
)

func main() {
	profile := quetzal.MSP430()

	// The fused pipeline: one job whose compress and radio tasks run only
	// when the Int-16/Int-8 LeNet classifier fires. This exercises the
	// per-task execution-probability tracking of §4.1 — the scheduler
	// learns how often the conditional tasks actually run and weights the
	// job's E[S] accordingly.
	app := profile.FusedPipelineApp()

	rt, err := quetzal.NewRuntime(quetzal.RuntimeConfig{
		App:           app,
		CapturePeriod: 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Table 1: the MSP430 experiments use 10 s events.
	events := quetzal.GenerateEvents(quetzal.DefaultEventConfig(150, 10, 31))
	power := quetzal.GenerateSolar(quetzal.DefaultSolarConfig(events.Duration()+120, 32))

	res, err := quetzal.Simulate(quetzal.SimConfig{
		Profile:    profile,
		App:        app,
		Controller: rt,
		Power:      power,
		Events:     events,
		Seed:       33,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("MSP430FR5994 fused-pipeline sensor (Quetzal runtime)")
	fmt.Printf("  simulated %.0f s at 1 FPS; %d arrivals (%d interesting)\n",
		res.SimSeconds, res.Arrivals, res.InterestingArrivals)
	fmt.Printf("  discarded %.1f%% of interesting inputs (IBO %.1f%%)\n",
		res.DiscardedFraction()*100, res.IBOFraction()*100)
	fmt.Printf("  reported %d interesting inputs\n", res.ReportedInteresting())
	fmt.Printf("  %d jobs completed, %d degraded by the IBO engine\n",
		res.JobsCompleted, res.Degradations)
	fmt.Printf("  runtime overhead: %.2f ms total across %d invocations\n",
		res.OverheadSeconds*1e3, res.SchedInvocations)
	fmt.Printf("  (the hardware module keeps the MSP430's per-ratio cost at 12 cycles;\n")
	fmt.Printf("   software division would cost 158 cycles per ratio — see §5.1)\n")

	// Compare against the same device without any adaptation.
	naApp := profile.FusedPipelineApp()
	na, err := quetzal.NoAdapt(naApp)
	if err != nil {
		log.Fatal(err)
	}
	naRes, err := quetzal.Simulate(quetzal.SimConfig{
		Profile:    profile,
		App:        naApp,
		Controller: na,
		Power:      power,
		Events:     events,
		Seed:       33,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nNoAdapt on the same traces discards %.1f%% — %.1fx more than Quetzal.\n",
		naRes.DiscardedFraction()*100,
		naRes.DiscardedFraction()/res.DiscardedFraction())
}
