// Quickstart: run the paper's person-detection application on the Apollo 4
// profile under a synthetic solar day, with Quetzal making the scheduling
// and degradation decisions, and print what happened.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"quetzal"
)

func main() {
	// 1. Pick a device profile (task latency/energy tables from Table 1).
	profile := quetzal.Apollo4()

	// 2. Assemble the application: a "detect" job whose degradable ML task
	//    classifies stored images, spawning a "report" job (compress +
	//    degradable radio) for positives.
	app := profile.PersonDetectionApp()

	// 3. Build the Quetzal runtime: Energy-aware SJF + IBO engine + PID +
	//    hardware power measurement, profiled against the app.
	rt, err := quetzal.NewRuntime(quetzal.RuntimeConfig{
		App:           app,
		CapturePeriod: 1, // the camera captures one frame per second
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Generate a deterministic environment: 200 sensing events with
	//    durations capped at 60 s (the paper's "crowded" environment) and a
	//    solar power trace covering the whole run.
	events := quetzal.GenerateEvents(quetzal.DefaultEventConfig(200, 60, 7))
	power := quetzal.GenerateSolar(quetzal.DefaultSolarConfig(events.Duration()+120, 8))

	// 5. Simulate the device at 1 ms resolution.
	res, err := quetzal.Simulate(quetzal.SimConfig{
		Profile:    profile,
		App:        app,
		Controller: rt,
		Power:      power,
		Events:     events,
		Seed:       9,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 6. Report.
	fmt.Printf("simulated %.0f s of a solar-powered smart camera\n", res.SimSeconds)
	fmt.Printf("  frames captured:        %d (%d passed the pre-filter)\n", res.Captures, res.Arrivals)
	fmt.Printf("  interesting arrivals:   %d\n", res.InterestingArrivals)
	fmt.Printf("  lost to buffer overflow: %d (%.1f%%)\n",
		res.IBOLossesInteresting(), res.IBOFraction()*100)
	fmt.Printf("  lost to misclassification: %d\n", res.FalseNegatives)
	fmt.Printf("  reported: %d interesting inputs, %.0f%% at high quality\n",
		res.ReportedInteresting(), res.HighQualityShare()*100)
	fmt.Printf("  IBO engine: %d predictions, %d averted, %d degraded executions\n",
		res.IBOPredictions, res.IBOsAverted, res.Degradations)
	fmt.Printf("  energy: %.1f J harvested, %d brownouts survived\n",
		res.HarvestedJoules, res.Brownouts)
}
