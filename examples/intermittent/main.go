// Intermittent demonstrates the intermittent-computing substrate beneath
// Quetzal: the same workload on a deliberately undersized supercapacitor,
// under the three checkpoint policies (JIT / periodic / none) plus an
// atomic beacon task that must fit within a single charge.
//
//	go run ./examples/intermittent
package main

import (
	"fmt"
	"log"

	"quetzal"
)

func main() {
	profile := quetzal.Apollo4()

	// An 8 mF store holds ~23 mJ usable: a 12 mJ MobileNetV2 inference
	// fits, but under weak harvest the device browns out mid-pipeline all
	// the time — the classic intermittent-computing regime.
	store := quetzal.DefaultStoreConfig()
	store.Capacitance = 0.008

	events := quetzal.GenerateEvents(quetzal.DefaultEventConfig(120, 30, 51))
	power := quetzal.GenerateSolar(quetzal.DefaultSolarConfig(events.Duration()+120, 52))

	fmt.Println("intermittent execution on an 8 mF store (usable ≈ 23 mJ)")
	fmt.Printf("%-10s %10s %8s %10s %10s %8s\n",
		"checkpoint", "jobs done", "brownouts", "discarded", "reported", "aborts")
	for _, policy := range []quetzal.CheckpointPolicy{
		quetzal.JITCheckpoint, quetzal.PeriodicCheckpoint, quetzal.NoCheckpoint,
	} {
		app := profile.PersonDetectionApp()
		rt, err := quetzal.NewRuntime(quetzal.RuntimeConfig{App: app, CapturePeriod: 1})
		if err != nil {
			log.Fatal(err)
		}
		res, err := quetzal.Simulate(quetzal.SimConfig{
			Profile:            profile,
			App:                app,
			Controller:         rt,
			Power:              power,
			Events:             events,
			Store:              store,
			Checkpoint:         policy,
			CheckpointInterval: 0.25,
			Seed:               53,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10v %10d %8d %9.1f%% %10d %8d\n",
			policy, res.JobsCompleted, res.Brownouts,
			res.DiscardedFraction()*100, res.ReportedInteresting(), res.JobAborts)
	}

	// Atomic work: a beacon packet that either completes within one charge
	// or restarts from scratch. The simulator banks its energy cost before
	// starting and counts the restarts weak harvest still forces.
	beacon := &quetzal.Task{
		Name:   "beacon",
		Kind:   quetzal.Transmit,
		Atomic: true,
		Options: []quetzal.Option{
			{Name: "ping", Texe: 0.3, Pexe: 0.05, HighQuality: true},
		},
	}
	app := &quetzal.App{
		Name:        "beacon",
		Jobs:        []*quetzal.Job{{ID: 0, Name: "send", Tasks: []*quetzal.Task{beacon}, SpawnJobID: quetzal.NoSpawn}},
		EntryJobID:  0,
		CaptureTexe: 0.01, CapturePexe: 0.001,
	}
	na, err := quetzal.NoAdapt(app)
	if err != nil {
		log.Fatal(err)
	}
	res, err := quetzal.Simulate(quetzal.SimConfig{
		Profile:    profile,
		App:        app,
		Controller: na,
		Power:      quetzal.ConstantPower{P: 0.004},
		Events:     quetzal.GenerateEvents(quetzal.DefaultEventConfig(40, 5, 54)),
		Store:      store,
		Seed:       55,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\natomic beacon (15 mJ/packet) at 4 mW on the same store:\n")
	fmt.Printf("  %d packets sent, %d atomic restarts, %d brownouts\n",
		res.TotalPackets(), res.AtomicRestarts, res.Brownouts)
	fmt.Println("  (the simulator banks a packet's full energy before starting it,")
	fmt.Println("   so restarts happen only when harvest collapses mid-send)")
}
