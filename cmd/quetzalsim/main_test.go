package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRenderTimelineSVG(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "tl.csv")
	svgPath := filepath.Join(dir, "tl.svg")
	csv := "t_s,power_mw,store_mj,occupancy,state\n" +
		"0.000,4.0,148.5,0,idle\n" +
		"1.000,8.0,120.0,2,exec:detect\n" +
		"2.000,2.0,90.0,5,off\n"
	if err := os.WriteFile(csvPath, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := renderTimelineSVG(csvPath, svgPath); err != nil {
		t.Fatal(err)
	}
	out, err := os.ReadFile(svgPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"<svg", "input power (mW)", "buffer occupancy", "store energy (mJ)"} {
		if !strings.Contains(string(out), frag) {
			t.Errorf("timeline SVG missing %q", frag)
		}
	}
}

func TestRenderTimelineSVGErrors(t *testing.T) {
	dir := t.TempDir()
	if err := renderTimelineSVG(filepath.Join(dir, "missing.csv"), filepath.Join(dir, "o.svg")); err == nil {
		t.Error("accepted missing csv")
	}
	short := filepath.Join(dir, "short.csv")
	os.WriteFile(short, []byte("t_s,power_mw,store_mj,occupancy,state\n0,1,2,3,idle\n"), 0o644)
	if err := renderTimelineSVG(short, filepath.Join(dir, "o.svg")); err == nil {
		t.Error("accepted too-short timeline")
	}
	if got := max1(0); got != 1 {
		t.Errorf("max1(0) = %g, want 1", got)
	}
	if got := max1(5); got != 5 {
		t.Errorf("max1(5) = %g, want 5", got)
	}
}
