// Command quetzalsim runs a single simulation of an energy-harvesting
// person-detection device under a chosen controller and environment, and
// prints the resulting metrics.
//
// Usage:
//
//	quetzalsim [-system qz|na|ad|cn|pzo|pzi|fixed-NN|qz-fcfs|mdp|ensure|interweave|...]
//	           [-policy NAME]   # alias for -system (the registry policy name)
//	           [-env more-crowded|crowded|less-crowded|msp430-crowded|surge|marathon]
//	           [-mcu apollo4|msp430] [-events N] [-seed N] [-cells N]
//	           [-capture SECONDS] [-v] [-json]
//	           [-stepper fixed|event|lockstep] [-fast]
//	           [-faults SPEC] [-temp SPEC] [-meascost SPEC]
//	           [-timeline FILE.csv] [-timelinesvg FILE.svg]
//	           [-trace FILE.json] [-metrics FILE.txt] [-pprof HOST:PORT]
//
// Examples:
//
//	quetzalsim -system qz -env crowded -events 300
//	quetzalsim -policy mdp -env surge -events 300
//	quetzalsim -system na -env more-crowded -mcu msp430
//	quetzalsim -system fixed-50 -env less-crowded -v
//	quetzalsim -system qz -env crowded -stepper lockstep   # fastest engine, bit-identical to event
//	quetzalsim -system qz -env crowded -trace run.json   # open in chrome://tracing
//	quetzalsim -fleet 100000 -system qz -env less-crowded -progress   # population sweep
//	quetzalsim -system ensure -env crowded -faults "task=100%,limit=2,dropout=30+10/120"
//	quetzalsim -system qz -env crowded -temp 45+5/3600 -meascost 250:20
package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"quetzal/internal/device"
	"quetzal/internal/experiments"
	"quetzal/internal/faults"
	"quetzal/internal/metrics"
	"quetzal/internal/obs"
	"quetzal/internal/plot"
	"quetzal/internal/sim"
)

// resolveEnv maps the -env flag to an environment through the same gate the
// HTTP service uses, so the CLI and the wire accept the identical set (the
// full six-environment league gauntlet).
func resolveEnv(name string) (experiments.Environment, error) {
	env, ok := experiments.EnvByName(name)
	if !ok {
		names := make([]string, len(experiments.LeagueEnvironments))
		for i, e := range experiments.LeagueEnvironments {
			names[i] = e.Name
		}
		return experiments.Environment{}, fmt.Errorf("unknown environment %q; valid: %s",
			name, strings.Join(names, ", "))
	}
	return env, nil
}

// resolveSystem merges the -system and -policy spellings of the controller
// dimension: they are one axis (the policy registry name), so naming both
// with different values is a conflict, not a silent override.
func resolveSystem(system, policy string) (string, error) {
	if system != "" && policy != "" && system != policy {
		return "", fmt.Errorf("-system %q conflicts with -policy %q (they are aliases; set one)", system, policy)
	}
	if policy != "" {
		return policy, nil
	}
	if system != "" {
		return system, nil
	}
	return "qz", nil
}

// resolveMCU maps the -mcu flag to a device profile.
func resolveMCU(name string) (device.Profile, error) {
	switch name {
	case "apollo4":
		return device.Apollo4(), nil
	case "msp430":
		return device.MSP430(), nil
	case "stm32g0":
		return device.STM32G0(), nil
	default:
		return device.Profile{}, fmt.Errorf("unknown mcu %q", name)
	}
}

// validateObsFlags checks the observability flag set plus its interactions
// with the timeline flags; kept separate from main for table-driven tests.
func validateObsFlags(cli obs.CLI, timeline string) error {
	if err := cli.Validate(); err != nil {
		return err
	}
	if timeline != "" && (timeline == cli.Trace || timeline == cli.Metrics) {
		return fmt.Errorf("-timeline conflicts with -trace/-metrics on the same file %q", timeline)
	}
	return nil
}

func main() {
	var (
		system   = flag.String("system", "", `controller under test (default "qz"; see DESIGN.md for ids)`)
		policyID = flag.String("policy", "", "alias for -system: the policy registry name")
		envName  = flag.String("env", "crowded", "sensing environment")
		mcu      = flag.String("mcu", "apollo4", "device profile: apollo4, msp430 or stm32g0")
		events   = flag.Int("events", 300, "number of sensing events")
		seed     = flag.Int64("seed", 42, "trace and classifier seed")
		cells    = flag.Int("cells", experiments.ReferenceCells, "harvester cell count")
		capture  = flag.Float64("capture", 1, "capture period in seconds")
		verbose  = flag.Bool("v", false, "print full counters")
		timeline = flag.String("timeline", "", "write a per-second CSV timeline to this file")
		jsonOut  = flag.Bool("json", false, "emit the full result record as JSON")
		fast     = flag.Bool("fast", false, "use the event-driven engine (~100x faster); shorthand for -stepper event")
		stepper  = flag.String("stepper", "", "time-advance engine: fixed (paper-faithful default), event, or lockstep (fastest, bit-identical to event)")
		tlSVG    = flag.String("timelinesvg", "", "render the timeline as an SVG line chart (requires -timeline)")
		traceOut = flag.String("trace", "", "write a Chrome trace_event JSON file (open in chrome://tracing)")
		metOut   = flag.String("metrics", "", "write a metrics text dump to this file after the run")
		pprofOn  = flag.String("pprof", "", "serve net/http/pprof on this host:port while the run executes")

		faultsF = flag.String("faults", "", `fault injection: "task=PCT[%][,limit=K][,dropout=START+DUR[/PERIOD]][,stuck=HIGH[:LOW]]"`)
		tempF   = flag.String("temp", "", `junction temperature °C: "C[+SWING[/PERIOD]]" (constant or diurnal, 25–50)`)
		measF   = flag.String("meascost", "", `per-sample measurement cost: "NJ[:US]" (energy nJ, latency µs)`)

		fleetN   = flag.Int("fleet", 0, "simulate a fleet of N heterogeneous devices and print the aggregate (0 = single run)")
		shard    = flag.Int("shard", 0, "fleet devices per shard (0 = default)")
		jitter   = flag.Float64("jitter", 0.1, "fleet per-device parameter jitter fraction")
		corr     = flag.Float64("correlation", 0, "fleet regional-sky correlation in (0,1] (0 = default)")
		progress = flag.Bool("progress", false, "log fleet shard progress to stderr")
	)
	flag.Parse()

	stepperName, err := resolveStepper(*stepper, *fast)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	systemID, err := resolveSystem(*system, *policyID)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	// A spec given on the command line replaces any environment-level
	// spec (e.g. -env faulty) rather than merging with it.
	faultSpec, err := faults.FromFlags(*faultsF, *tempF, *measF)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *fleetN > 0 {
		ff := fleetFlags{devices: *fleetN, shard: *shard, jitter: *jitter,
			correlation: *corr, progress: *progress}
		if err := validateFleetFlags(ff, *timeline, *traceOut, *tlSVG); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		// Fleet events default low (population sweeps): an unset -events
		// would make every device as long as a full single run.
		fleetEvents := 0
		if isFlagSet("events") {
			fleetEvents = *events
		}
		if err := runFleet(ff, systemID, *envName, fleetEvents, *seed, stepperName, faultSpec, *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	env, err := resolveEnv(*envName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cli := obs.CLI{Trace: *traceOut, Metrics: *metOut, Pprof: *pprofOn}
	if err := validateObsFlags(cli, *timeline); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	setup := experiments.DefaultSetup()
	setup.NumEvents = *events
	setup.Seed = *seed
	setup.Cells = *cells
	setup.CapturePeriod = *capture
	if stepperName != "" {
		setup.Engine, err = experiments.ParseEngineKind(stepperName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	setup.Profile, err = resolveMCU(*mcu)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if addr, stop, perr := cli.StartPprof(); perr != nil {
		fmt.Fprintln(os.Stderr, perr)
		os.Exit(1)
	} else if addr != "" {
		defer stop()
		fmt.Fprintf(os.Stderr, "pprof: http://%s/debug/pprof/\n", addr)
	}

	// Sinks requested on the command line; nil entries stay unattached.
	var sinks struct {
		timeline *os.File
		trace    *os.File
		reg      *obs.Registry
	}
	openOut := func(path string) *os.File {
		f, ferr := os.Create(path)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, ferr)
			os.Exit(1)
		}
		return f
	}
	if *timeline != "" {
		sinks.timeline = openOut(*timeline)
		defer sinks.timeline.Close()
	}
	if cli.Trace != "" {
		sinks.trace = openOut(cli.Trace)
		defer sinks.trace.Close()
	}
	if cli.Metrics != "" {
		sinks.reg = obs.NewRegistry()
	}

	var res metrics.Results
	if sinks.timeline != nil || sinks.trace != nil || sinks.reg != nil || faultSpec.Enabled() {
		res, err = setup.RunWith(context.Background(), systemID, env, func(c *sim.Config) {
			if sinks.timeline != nil {
				c.Timeline = sinks.timeline
			}
			if sinks.trace != nil {
				c.Trace = sinks.trace
			}
			if sinks.reg != nil {
				c.Metrics = sinks.reg
			}
			if faultSpec.Enabled() {
				c.Faults = faultSpec
			}
		})
	} else {
		res, err = setup.Run(systemID, env)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if sinks.reg != nil {
		if err := obs.WriteMetricsFile(cli.Metrics, sinks.reg); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if *tlSVG != "" {
		if *timeline == "" {
			fmt.Fprintln(os.Stderr, "-timelinesvg requires -timeline")
			os.Exit(2)
		}
		if err := renderTimelineSVG(*timeline, *tlSVG); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	fmt.Println(res.String())
	fmt.Printf("  discarded: %.1f%% of interesting arrivals (IBO %.1f%%, false negatives %.1f%%)\n",
		res.DiscardedFraction()*100, res.IBOFraction()*100,
		100*float64(res.FalseNegatives)/max1(res.InterestingArrivals))
	fmt.Printf("  reported:  %d interesting (%.1f%% high quality), %d packets total\n",
		res.ReportedInteresting(), res.HighQualityShare()*100, res.TotalPackets())
	if *verbose {
		fmt.Printf("  captures: %d (missed %d)  arrivals: %d (interesting %d)\n",
			res.Captures, res.CaptureMisses, res.Arrivals, res.InterestingArrivals)
		fmt.Printf("  jobs: %d (degraded %d)  IBO predictions: %d (averted %d)\n",
			res.JobsCompleted, res.Degradations, res.IBOPredictions, res.IBOsAverted)
		fmt.Printf("  scheduler: %d invocations, overhead %.3f s / %.3g J\n",
			res.SchedInvocations, res.OverheadSeconds, res.OverheadJoules)
		fmt.Printf("  energy: harvested %.2f J, consumed %.2f J, %d brownouts\n",
			res.HarvestedJoules, res.ConsumedJoules, res.Brownouts)
		fmt.Printf("  simulated: %.0f s\n", res.SimSeconds)
	}
}

// renderTimelineSVG converts a timeline CSV (t_s,power_mw,store_mj,
// occupancy,state) into a line chart.
func renderTimelineSVG(csvPath, svgPath string) error {
	f, err := os.Open(csvPath)
	if err != nil {
		return err
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		return err
	}
	if len(rows) < 3 {
		return fmt.Errorf("timeline too short to chart (%d rows)", len(rows))
	}
	var xs, power, store, occ []float64
	for _, row := range rows[1:] {
		if len(row) < 5 {
			continue
		}
		t, e1 := strconv.ParseFloat(row[0], 64)
		p, e2 := strconv.ParseFloat(row[1], 64)
		st, e3 := strconv.ParseFloat(row[2], 64)
		o, e4 := strconv.ParseFloat(row[3], 64)
		if e1 != nil || e2 != nil || e3 != nil || e4 != nil {
			continue
		}
		xs = append(xs, t)
		power = append(power, p)
		store = append(store, st)
		occ = append(occ, o)
	}
	chart := &plot.LineChart{
		Title:  "device timeline",
		XLabel: "each series normalised to its own maximum",
		X:      xs,
		Series: []plot.Series{
			{Name: "input power (mW)", Values: power},
			{Name: "store energy (mJ)", Values: store},
			{Name: "buffer occupancy", Values: occ},
		},
	}
	out, err := os.Create(svgPath)
	if err != nil {
		return err
	}
	defer out.Close()
	return chart.WriteSVG(out)
}

// resolveStepper merges -stepper and the legacy -fast shorthand into one
// engine wire name ("" = the caller's default: fixed for single runs,
// lockstep for fleets). -fast is an alias for -stepper event; naming a
// different stepper alongside it is a conflict, not a silent override.
func resolveStepper(stepper string, fast bool) (string, error) {
	if fast && stepper != "" && stepper != "event" {
		return "", fmt.Errorf("-fast is shorthand for -stepper event; it conflicts with -stepper %s", stepper)
	}
	if fast {
		return "event", nil
	}
	return stepper, nil
}

// isFlagSet reports whether a flag was passed explicitly on the command
// line (as opposed to holding its default).
func isFlagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func max1(v int) float64 {
	if v == 0 {
		return 1
	}
	return float64(v)
}
