package main

import (
	"path/filepath"
	"strings"
	"testing"

	"quetzal/internal/obs"
)

func TestResolveEnv(t *testing.T) {
	for _, name := range []string{"more-crowded", "crowded", "less-crowded", "msp430-crowded"} {
		if _, err := resolveEnv(name); err != nil {
			t.Errorf("resolveEnv(%q): %v", name, err)
		}
	}
	if _, err := resolveEnv("mars"); err == nil {
		t.Error("resolveEnv(mars): want error")
	}
}

func TestResolveMCU(t *testing.T) {
	for _, name := range []string{"apollo4", "msp430", "stm32g0"} {
		if _, err := resolveMCU(name); err != nil {
			t.Errorf("resolveMCU(%q): %v", name, err)
		}
	}
	if _, err := resolveMCU("z80"); err == nil {
		t.Error("resolveMCU(z80): want error")
	}
}

func TestValidateObsFlags(t *testing.T) {
	dir := t.TempDir()
	in := func(name string) string { return filepath.Join(dir, name) }
	cases := []struct {
		name     string
		cli      obs.CLI
		timeline string
		wantErr  string // substring; empty → must pass
	}{
		{name: "all empty"},
		{
			name: "all valid",
			cli:  obs.CLI{Trace: in("t.json"), Metrics: in("m.txt"), Pprof: "localhost:0"},
		},
		{
			name:    "trace and metrics same file",
			cli:     obs.CLI{Trace: in("out"), Metrics: in("out")},
			wantErr: "same file",
		},
		{
			name:    "trace parent dir missing",
			cli:     obs.CLI{Trace: filepath.Join(dir, "no-such-dir", "t.json")},
			wantErr: "trace",
		},
		{
			name:    "metrics parent dir missing",
			cli:     obs.CLI{Metrics: filepath.Join(dir, "no-such-dir", "m.txt")},
			wantErr: "metrics",
		},
		{
			name:    "pprof address without port",
			cli:     obs.CLI{Pprof: "localhost"},
			wantErr: "pprof",
		},
		{
			name:     "timeline collides with trace",
			cli:      obs.CLI{Trace: in("shared.csv")},
			timeline: in("shared.csv"),
			wantErr:  "-timeline conflicts",
		},
		{
			name:     "timeline collides with metrics",
			cli:      obs.CLI{Metrics: in("shared.txt")},
			timeline: in("shared.txt"),
			wantErr:  "-timeline conflicts",
		},
		{
			name:     "timeline distinct from sinks",
			cli:      obs.CLI{Trace: in("t.json"), Metrics: in("m.txt")},
			timeline: in("tl.csv"),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateObsFlags(tc.cli, tc.timeline)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}
