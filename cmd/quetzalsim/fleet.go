package main

// Fleet mode: -fleet N turns one quetzalsim invocation into a population
// sweep — N heterogeneous devices under correlated skies, streamed through
// the columnar fleet fold. Single-run output flags (-timeline, -trace,
// -timelinesvg) do not apply; fleet results are aggregates, not one
// device's history.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"quetzal/internal/experiments"
	"quetzal/internal/faults"
	"quetzal/internal/fleet"
)

// fleetFlags carries the fleet-mode command line.
type fleetFlags struct {
	devices     int
	shard       int
	jitter      float64
	correlation float64
	progress    bool
}

// validateFleetFlags rejects single-run flags that make no sense for a
// population sweep; kept separate from main for table-driven tests.
func validateFleetFlags(f fleetFlags, timeline, traceOut, tlSVG string) error {
	if f.devices <= 0 {
		return nil // single-run mode; fleet flags are ignored
	}
	if timeline != "" || traceOut != "" || tlSVG != "" {
		return fmt.Errorf("-fleet is an aggregate sweep; -timeline/-trace/-timelinesvg apply to single runs only")
	}
	return nil
}

// runFleet executes the fleet and renders it as JSON (an aggregate +
// stats document) or a human summary.
func runFleet(f fleetFlags, system, envName string, events int, seed int64, engine string, faultSpec faults.Spec, jsonOut bool) error {
	spec := experiments.FleetSpec{
		Devices:     f.devices,
		System:      system,
		Env:         envName,
		Events:      events,
		Seed:        seed,
		Engine:      engine, // "" → the fleet default (lockstep)
		ShardSize:   f.shard,
		Jitter:      f.jitter,
		Correlation: f.correlation,
		Faults:      faultSpec,
	}
	plan, err := spec.Plan()
	if err != nil {
		return err
	}

	opts := fleet.Options{}
	if f.progress {
		start := time.Now()
		opts.OnProgress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "[fleet] %d/%d devices (%.0f/s)\n",
				done, total, float64(done)/time.Since(start).Seconds())
		}
	}
	agg, stats, err := fleet.Run(context.Background(), plan, opts)
	if err != nil {
		return err
	}

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(struct {
			Plan      string           `json:"plan"`
			Aggregate *fleet.Aggregate `json:"aggregate"`
			Stats     fleet.RunStats   `json:"stats"`
		}{plan.String(), agg, stats})
	}

	fmt.Printf("%s\n", plan)
	fmt.Printf("  %d devices in %.1fs (%.0f devices/s, peak heap %.1f MiB)\n",
		stats.Devices, stats.ElapsedSec, stats.DevicesPerSec, float64(stats.PeakHeapBytes)/(1<<20))
	fmt.Printf("  fleet IBO %.2f%%  discarded %.2f%%  high quality %.1f%%  capture miss %.2f%%\n",
		agg.IBOFraction*100, agg.DiscardedFraction*100, agg.HighQualityShare*100, agg.CaptureMissFraction*100)
	fmt.Printf("  energy: harvested %.1f J, consumed %.1f J, wasted %.1f J\n",
		agg.HarvestedJoules, agg.ConsumedJoules, agg.WastedJoules)
	for _, h := range []struct{ label, key string }{
		{"IBO fraction   ", "ibo_fraction"},
		{"discarded      ", "discarded_fraction"},
		{"high quality   ", "high_quality_share"},
		{"capture miss   ", "capture_miss_fraction"},
		{"wasted J       ", "wasted_joules"},
	} {
		d := agg.Histograms[h.key]
		fmt.Printf("  %s p50 %.3g  p90 %.3g  p99 %.3g  (min %.3g, max %.3g)\n",
			h.label, d.P50, d.P90, d.P99, d.Min, d.Max)
	}
	return nil
}
