package main

// quetzalbench end to end: two in-process quetzald replicas share a store
// directory, the open-loop generator drives them for a short burst, and
// the report's tallies must balance — every paced request accounted for,
// zero contract violations, and a fleet-wide hit rate consistent with the
// configured key-reuse mix.

import (
	"context"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"quetzal/internal/experiments"
	"quetzal/internal/metrics"
	"quetzal/internal/service"
	"quetzal/internal/store"
)

// startReplica builds one service replica on the shared store directory.
func startReplica(t *testing.T, dir string) *httptest.Server {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	srv := service.New(service.Config{
		Workers:  4,
		MaxQueue: 256,
		Store:    st,
		Run: func(ctx context.Context, key experiments.RunKey) (metrics.Results, error) {
			select { // a small, real service time so coalescing can happen
			case <-time.After(2 * time.Millisecond):
			case <-ctx.Done():
				return metrics.Results{}, ctx.Err()
			}
			return metrics.Results{System: key.System, JobsCompleted: key.NumEvents}, nil
		},
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func TestBenchAgainstTwoReplicas(t *testing.T) {
	dir := t.TempDir()
	a := startReplica(t, dir)
	b := startReplica(t, dir)

	cfg, err := parseFlags([]string{
		"-targets", a.URL + "," + b.URL,
		"-rate", "400",
		"-duration", "2s",
		"-keys", "8",
		"-reuse", "0.75",
		"-concurrency", "128",
		"-timeout-ms", "5000",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.validate(); err != nil {
		t.Fatal(err)
	}
	rep, err := runBench(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	if rep.Requests < 100 {
		t.Fatalf("only %d requests in a 2s burst at 400/s", rep.Requests)
	}
	// Every sent request is accounted for exactly once.
	if got := rep.OK + rep.Shed + rep.Unexpected + rep.TransportError; got != rep.Requests {
		t.Fatalf("tallies do not balance: ok %d + shed %d + unexpected %d + transport %d != requests %d",
			rep.OK, rep.Shed, rep.Unexpected, rep.TransportError, rep.Requests)
	}
	// The response contract: nothing outside 200/202/429, and every 429
	// carried Retry-After.
	if rep.Unexpected != 0 || rep.TransportError != 0 {
		t.Fatalf("contract violations: %+v", rep.UnexpectedByStatus)
	}
	if rep.ShedNoRetry != 0 {
		t.Fatalf("%d sheds without Retry-After", rep.ShedNoRetry)
	}
	// With 8 hot keys at 75%% reuse the fleet must serve most submissions
	// without simulating; 0.5 leaves a wide margin under CI jitter.
	if rep.HitRate <= 0.5 {
		t.Fatalf("fleet hit rate %.3f <= 0.5 (store sharing not effective): %+v", rep.HitRate, rep)
	}
	if rep.Store.Hits == 0 {
		t.Fatal("no cross-replica store hits at all")
	}
	if rep.Latency.P50Ms <= 0 || rep.Latency.P99Ms < rep.Latency.P50Ms {
		t.Fatalf("latency summary inconsistent: %+v", rep.Latency)
	}
	// Both replicas took traffic (round-robin reached each).
	for _, d := range rep.PerTarget {
		if d.Requests == 0 {
			t.Fatalf("target %s received no requests", d.URL)
		}
	}
}

func TestBenchFlagValidation(t *testing.T) {
	for _, tc := range []struct{ name, args, wantErr string }{
		{"no targets", "", "-targets is required"},
		{"bad url", "-targets not-a-url", "absolute URL"},
		{"zero rate", "-targets http://x -rate 0", "-rate"},
		{"bad reuse", "-targets http://x -reuse 1.5", "-reuse"},
		{"zero keys", "-targets http://x -keys 0", "-keys"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var args []string
			if tc.args != "" {
				args = strings.Fields(tc.args)
			}
			cfg, err := parseFlags(args, io.Discard)
			if err == nil {
				err = cfg.validate()
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want %q", err, tc.wantErr)
			}
		})
	}
}

func TestBenchUnreachableTargetFailsFast(t *testing.T) {
	cfg, err := parseFlags([]string{"-targets", "http://127.0.0.1:1", "-duration", "50ms"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := runBench(context.Background(), cfg); err == nil {
		t.Fatal("runBench succeeded against a dead target")
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("unreachable target was not detected before the load phase")
	}
}
