// Command quetzalbench is an open-loop load generator for quetzald
// replicas: it submits runs at a fixed target rate — never slowing down
// because the server is slow, which is what makes measured shed rates and
// latencies honest — with a configurable key-reuse mix across a hot key
// population, and writes a JSON report of throughput, latency quantiles,
// shed/coalesced counts, and the cross-replica store hit rate scraped from
// each target's /metrics.
//
// Usage:
//
//	quetzalbench -targets http://H1:P1,http://H2:P2 [-rate 200] [-duration 30s]
//	             [-keys 32] [-reuse 0.6] [-concurrency 64] [-timeout-ms 10000]
//	             [-seed 1] [-out report.json]
//
// The generator round-robins requests across the targets. A request either
// reuses a key from the hot population (probability -reuse) or carries a
// never-seen key, so a fleet of replicas sharing one -store directory
// should convert most reused keys into store or memo hits; the report's
// store.hit_rate is the scraped evidence. Responses other than 200, 202
// and 429-with-Retry-After are contract violations and counted separately.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"quetzal/internal/obs"
)

// benchConfig is the parsed flag set; separated from main for tests.
type benchConfig struct {
	targets     []string
	rate        float64
	duration    time.Duration
	keys        int
	reuse       float64
	concurrency int
	timeoutMs   int
	seed        int64
	out         string
}

func parseFlags(args []string, stderr io.Writer) (benchConfig, error) {
	var c benchConfig
	var targets string
	fs := flag.NewFlagSet("quetzalbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.StringVar(&targets, "targets", "", "comma-separated quetzald base URLs (required)")
	fs.Float64Var(&c.rate, "rate", 200, "target request rate per second (open loop)")
	fs.DurationVar(&c.duration, "duration", 30*time.Second, "load duration")
	fs.IntVar(&c.keys, "keys", 32, "hot key population size")
	fs.Float64Var(&c.reuse, "reuse", 0.6, "fraction of requests that reuse a hot key")
	fs.IntVar(&c.concurrency, "concurrency", 64, "max in-flight requests (excess ticks are counted, not sent)")
	fs.IntVar(&c.timeoutMs, "timeout-ms", 10_000, "per-request timeout_ms sent to the server")
	fs.Int64Var(&c.seed, "seed", 1, "base seed for the generated key space")
	fs.StringVar(&c.out, "out", "", "write the JSON report here (empty = stdout)")
	if err := fs.Parse(args); err != nil {
		return benchConfig{}, err
	}
	if fs.NArg() > 0 {
		return benchConfig{}, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	for _, t := range strings.Split(targets, ",") {
		if t = strings.TrimSpace(t); t != "" {
			c.targets = append(c.targets, strings.TrimRight(t, "/"))
		}
	}
	return c, nil
}

func (c benchConfig) validate() error {
	if len(c.targets) == 0 {
		return errors.New("-targets is required (comma-separated base URLs)")
	}
	for _, t := range c.targets {
		u, err := url.Parse(t)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return fmt.Errorf("-targets: %q is not an absolute URL", t)
		}
	}
	if c.rate <= 0 {
		return fmt.Errorf("-rate must be positive, got %v", c.rate)
	}
	if c.duration <= 0 {
		return fmt.Errorf("-duration must be positive, got %v", c.duration)
	}
	if c.keys <= 0 {
		return fmt.Errorf("-keys must be positive, got %d", c.keys)
	}
	if c.reuse < 0 || c.reuse > 1 {
		return fmt.Errorf("-reuse must be in [0, 1], got %v", c.reuse)
	}
	if c.concurrency <= 0 {
		return fmt.Errorf("-concurrency must be positive, got %d", c.concurrency)
	}
	if c.timeoutMs <= 0 {
		return fmt.Errorf("-timeout-ms must be positive, got %d", c.timeoutMs)
	}
	return nil
}

// latencySummary is the histogram condensed for the report.
type latencySummary struct {
	P50Ms float64 `json:"p50_ms"`
	P90Ms float64 `json:"p90_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
}

// storeSummary aggregates the store-counter deltas scraped across targets.
type storeSummary struct {
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Puts    int64 `json:"puts"`
	Records int64 `json:"records"`
	// HitRate is hits/(hits+misses) over the load window, fleet-wide: the
	// fraction of executions some replica did not have to simulate.
	HitRate float64 `json:"hit_rate"`
}

// targetReport is the per-replica slice of the tallies.
type targetReport struct {
	URL      string `json:"url"`
	Requests int64  `json:"requests"`
	OK       int64  `json:"ok"`
	Shed     int64  `json:"shed"`
	// Deltas scraped from the replica's /metrics over the load window.
	Executed    int64 `json:"executed_delta"`
	CacheHits   int64 `json:"cache_hits_delta"`
	StoreHits   int64 `json:"store_hits_delta"`
	StoreMisses int64 `json:"store_misses_delta"`
}

// report is the quetzalbench output schema (BENCH_quetzald.json).
type report struct {
	Description string         `json:"description"`
	Environment map[string]any `json:"environment"`

	Targets     []string `json:"targets"`
	RateRPS     float64  `json:"rate_rps"`
	DurationSec float64  `json:"duration_sec"`
	Keys        int      `json:"keys"`
	Reuse       float64  `json:"reuse"`
	Concurrency int      `json:"concurrency"`

	Requests       int64 `json:"requests"`
	OK             int64 `json:"ok"`
	Shed           int64 `json:"shed"`
	ShedNoRetry    int64 `json:"shed_without_retry_after"`
	Unexpected     int64 `json:"unexpected_responses"`
	TransportError int64 `json:"transport_errors"`
	ClientOverflow int64 `json:"client_overflow"`
	Coalesced      int64 `json:"coalesced"`

	UnexpectedByStatus map[string]int64 `json:"unexpected_by_status,omitempty"`

	ThroughputRPS float64 `json:"throughput_rps"`
	// Simulations is the fleet-wide count of real simulator executions over
	// the window (pool executions minus store hits, summed over targets).
	Simulations int64 `json:"simulations"`
	// HitRate is the fleet-wide fraction of run submissions served without
	// simulating: memo hits on a replica plus store hits across replicas,
	// over all submissions. This is the scale-out headline number.
	HitRate   float64        `json:"hit_rate"`
	Latency   latencySummary `json:"latency"`
	Store     storeSummary   `json:"store"`
	PerTarget []targetReport `json:"per_target"`
}

// scrape pulls the counters quetzalbench reconciles from one /metrics body.
type scrape struct {
	executed, cacheHits, storeHits, storeMisses, storePuts, storeRecords int64
}

var metricLine = regexp.MustCompile(`(?m)^(\w+) (-?\d+(?:\.\d+)?)(?:e[+-]\d+)?$`)

func scrapeTarget(client *http.Client, base string) (scrape, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return scrape{}, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return scrape{}, err
	}
	var sc scrape
	for _, m := range metricLine.FindAllStringSubmatch(string(body), -1) {
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		switch m[1] {
		case "quetzald_runs_executed_total":
			sc.executed = int64(v)
		case "quetzald_run_cache_hits_total":
			sc.cacheHits = int64(v)
		case "quetzald_store_hits_total":
			sc.storeHits = int64(v)
		case "quetzald_store_misses_total":
			sc.storeMisses = int64(v)
		case "quetzald_store_puts_total":
			sc.storePuts = int64(v)
		case "quetzald_store_records":
			sc.storeRecords = int64(v)
		}
	}
	return sc, nil
}

// runBench drives the load and assembles the report. It returns an error
// only for setup problems (unreachable targets); contract violations under
// load are counted in the report instead, so the caller can decide what is
// fatal.
func runBench(ctx context.Context, c benchConfig) (report, error) {
	client := &http.Client{Timeout: time.Duration(c.timeoutMs)*time.Millisecond + 5*time.Second}
	before := make([]scrape, len(c.targets))
	for i, t := range c.targets {
		sc, err := scrapeTarget(client, t)
		if err != nil {
			return report{}, fmt.Errorf("target %s unreachable: %w", t, err)
		}
		before[i] = sc
	}

	rep := report{
		Targets:     c.targets,
		RateRPS:     c.rate,
		DurationSec: c.duration.Seconds(),
		Keys:        c.keys,
		Reuse:       c.reuse,
		Concurrency: c.concurrency,
		PerTarget:   make([]targetReport, len(c.targets)),
	}
	for i, t := range c.targets {
		rep.PerTarget[i].URL = t
	}

	var (
		mu         sync.Mutex
		unexpected = map[string]int64{}
		hist       = obs.NewHistogram(obs.ExpBuckets(0.0005, 1.5, 32))
		perTarget  = make([]struct{ requests, ok, shed atomic.Int64 }, len(c.targets))
		requests   atomic.Int64
		okCount    atomic.Int64
		shed       atomic.Int64
		shedNoRA   atomic.Int64
		transport  atomic.Int64
		coalesced  atomic.Int64
		overflow   atomic.Int64
	)

	// The deterministic key mixer: request n either reuses hot key
	// (mix(n) mod keys) or carries the never-seen seed base+1e6+n. A cheap
	// splitmix-style hash keeps the reuse pattern uncorrelated with the
	// round-robin target assignment without needing math/rand in the hot
	// loop.
	mix := func(n int64) uint64 {
		z := uint64(n) + 0x9e3779b97f4a7c15
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}

	sem := make(chan struct{}, c.concurrency)
	var wg sync.WaitGroup
	interval := time.Duration(float64(time.Second) / c.rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	deadline := time.NewTimer(c.duration)
	defer deadline.Stop()

	fire := func(n int64) {
		defer wg.Done()
		defer func() { <-sem }()
		ti := int(n) % len(c.targets)
		h := mix(n)
		var seed int64
		if float64(h%1_000_000)/1_000_000 < c.reuse {
			seed = c.seed + int64(h/7%uint64(c.keys))
		} else {
			seed = c.seed + 1_000_000 + n
		}
		body := fmt.Sprintf(`{"system":"qz","env":"crowded","seed":%d,"timeout_ms":%d}`, seed, c.timeoutMs)
		requests.Add(1)
		perTarget[ti].requests.Add(1)
		start := time.Now()
		resp, err := client.Post(c.targets[ti]+"/v1/run", "application/json", strings.NewReader(body))
		if err != nil {
			transport.Add(1)
			return
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		hist.Observe(time.Since(start).Seconds())
		switch resp.StatusCode {
		case http.StatusOK, http.StatusAccepted:
			okCount.Add(1)
			perTarget[ti].ok.Add(1)
			var rr struct {
				Coalesced bool `json:"coalesced"`
			}
			if json.Unmarshal(raw, &rr) == nil && rr.Coalesced {
				coalesced.Add(1)
			}
		case http.StatusTooManyRequests:
			shed.Add(1)
			perTarget[ti].shed.Add(1)
			if resp.Header.Get("Retry-After") == "" {
				shedNoRA.Add(1)
			}
		default:
			mu.Lock()
			unexpected[strconv.Itoa(resp.StatusCode)]++
			mu.Unlock()
		}
	}

	start := time.Now()
	var n int64
loop:
	for {
		select {
		case <-ctx.Done():
			break loop
		case <-deadline.C:
			break loop
		case <-ticker.C:
			// Open loop: the tick fires on schedule no matter how slow the
			// servers are. If every slot is busy the tick is recorded as
			// client overflow rather than silently stretching the pace.
			select {
			case sem <- struct{}{}:
				wg.Add(1)
				go fire(n)
			default:
				overflow.Add(1)
			}
			n++
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep.Requests = requests.Load()
	rep.OK = okCount.Load()
	rep.Shed = shed.Load()
	rep.ShedNoRetry = shedNoRA.Load()
	rep.TransportError = transport.Load()
	rep.ClientOverflow = overflow.Load()
	rep.Coalesced = coalesced.Load()
	rep.UnexpectedByStatus = unexpected
	for _, v := range unexpected {
		rep.Unexpected += v
	}
	rep.ThroughputRPS = float64(rep.OK) / elapsed.Seconds()
	if hist.Count() > 0 {
		rep.Latency = latencySummary{
			P50Ms: hist.Quantile(0.50) * 1000,
			P90Ms: hist.Quantile(0.90) * 1000,
			P99Ms: hist.Quantile(0.99) * 1000,
			MaxMs: hist.Max() * 1000,
		}
	}

	var recordsMax int64
	for i, t := range c.targets {
		after, err := scrapeTarget(client, t)
		if err != nil {
			return rep, fmt.Errorf("final scrape of %s: %w", t, err)
		}
		d := &rep.PerTarget[i]
		d.Requests = perTarget[i].requests.Load()
		d.OK = perTarget[i].ok.Load()
		d.Shed = perTarget[i].shed.Load()
		d.Executed = after.executed - before[i].executed
		d.CacheHits = after.cacheHits - before[i].cacheHits
		d.StoreHits = after.storeHits - before[i].storeHits
		d.StoreMisses = after.storeMisses - before[i].storeMisses
		rep.Store.Hits += d.StoreHits
		rep.Store.Misses += d.StoreMisses
		rep.Store.Puts += after.storePuts - before[i].storePuts
		if after.storeRecords > recordsMax {
			recordsMax = after.storeRecords
		}
	}
	rep.Store.Records = recordsMax
	if total := rep.Store.Hits + rep.Store.Misses; total > 0 {
		rep.Store.HitRate = float64(rep.Store.Hits) / float64(total)
	}
	var submissions int64
	for _, d := range rep.PerTarget {
		submissions += d.Executed + d.CacheHits
		rep.Simulations += d.Executed - d.StoreHits
	}
	if submissions > 0 {
		rep.HitRate = 1 - float64(rep.Simulations)/float64(submissions)
	}

	rep.Description = "Open-loop load against quetzald replicas sharing one durable result store. " +
		"store.hit_rate is the fleet-wide fraction of pool executions served from the shared store " +
		"instead of simulating; coalesced counts responses that joined an in-flight or memoized run " +
		"on one replica. Every response outside {200, 202, 429-with-Retry-After} is a contract " +
		"violation counted in unexpected_responses/shed_without_retry_after."
	rep.Environment = map[string]any{
		"go":     runtime.Version(),
		"goos":   runtime.GOOS,
		"goarch": runtime.GOARCH,
		"cpus":   runtime.NumCPU(),
	}
	return rep, nil
}

func main() {
	cfg, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := cfg.validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	rep, err := runBench(ctx, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	out = append(out, '\n')
	if cfg.out == "" {
		os.Stdout.Write(out) //nolint:errcheck
		return
	}
	if err := os.WriteFile(cfg.out, out, 0o666); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "quetzalbench: %d requests, %.1f ok/s, store hit rate %.2f -> %s\n",
		rep.Requests, rep.ThroughputRPS, rep.Store.HitRate, cfg.out)
}
