// Command experiments regenerates the paper's evaluation tables and
// figures. Each figure id maps to an experiment in internal/experiments;
// see DESIGN.md for the index.
//
// Figures are declarative run plans resolved against one shared sweep: the
// unique (system, environment, setup) runs all requested figures need are
// executed exactly once on a worker pool, figures render concurrently, and
// the output is byte-identical at any -parallel setting.
//
// Usage:
//
//	experiments [-fig all|2b|3|8|9|10|11|11c|12|13|14|circuit|table1|...]
//	            [-league] [-policy qz,na,mdp,...]
//	            [-events N] [-seed N] [-mcu apollo4|msp430] [-csv]
//	            [-parallel N] [-timeout D] [-progress]
//	            [-engine fixed|event] [-fast]
//	            [-faults SPEC] [-temp SPEC] [-meascost SPEC]
//	            [-trace FILE.json] [-metrics FILE.txt] [-pprof HOST:PORT]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"quetzal/internal/device"
	"quetzal/internal/experiments"
	"quetzal/internal/faults"
	"quetzal/internal/obs"
	"quetzal/internal/report"
	"quetzal/internal/runner"
	"quetzal/internal/sim"
)

// validateObsFlags checks the shared observability flag set plus the
// experiments-specific interaction with -svg (which names a directory, not a
// file — sharing its path with a sink would make MkdirAll fail mid-sweep).
// Kept separate from main for table-driven tests.
func validateObsFlags(cli obs.CLI, svgDir string) error {
	if err := cli.Validate(); err != nil {
		return err
	}
	if svgDir != "" && (cli.Trace == svgDir || cli.Metrics == svgDir) {
		return fmt.Errorf("-svg directory %q collides with a -trace/-metrics output path", svgDir)
	}
	return nil
}

// ledgerMetrics copies a finished sweep's ledger into a registry for the
// -metrics dump: run/cache/error counters, summed timings, and the per-run
// latency histogram.
func ledgerMetrics(reg *obs.Registry, l runner.Ledger) {
	reg.Counter("sweep_runs_executed_total").Add(int64(l.Executed))
	reg.Counter("sweep_cache_hits_total").Add(int64(l.CacheHits))
	reg.Counter("sweep_run_errors_total").Add(int64(l.Errors))
	reg.Gauge("sweep_run_seconds_total").Set(l.RunTime.Seconds())
	reg.Gauge("sweep_queue_wait_seconds_total").Set(l.QueueWait.Seconds())
	reg.Gauge("sweep_elapsed_seconds").Set(l.Elapsed.Seconds())
	if l.Latency != nil {
		reg.AddHistogram("sweep_run_latency_seconds", l.Latency)
	}
}

// figOrder is the canonical figure id order, used for "all" and for the
// -fig validation error message.
var figOrder = []string{"table1", "2b", "3", "8", "9", "10", "11", "11c", "12", "13",
	"14", "circuit", "jitter", "checkpoint", "mcus", "ladder", "buffer", "seeds"}

func main() {
	var (
		fig      = flag.String("fig", "all", "comma-separated figure ids to regenerate ("+strings.Join(figOrder, ",")+",all)")
		league   = flag.Bool("league", false, "render the policy league (all policies × all environments) instead of figures")
		policyF  = flag.String("policy", "", "comma-separated policies for -league (default: the full league field)")
		events   = flag.Int("events", 0, "events per run (0 = harness default 300; paper uses 1000)")
		seed     = flag.Int64("seed", 42, "trace and classifier seed")
		mcu      = flag.String("mcu", "apollo4", "device profile: apollo4 or msp430")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		md       = flag.Bool("md", false, "emit Markdown tables")
		svgDir   = flag.String("svg", "", "also write an SVG chart per figure into this directory")
		engine   = flag.String("engine", "", "time-advance engine: fixed (paper-faithful reference) or event (~100x faster, statistically matching); default fixed")
		fast     = flag.Bool("fast", false, "shorthand for -engine event")
		parallel = flag.Int("parallel", 0, "concurrent simulations (0 = one per CPU)")
		timeout  = flag.Duration("timeout", 0, "per-run timeout, e.g. 30s (0 = none)")
		progress = flag.Bool("progress", false, "log each run to stderr as it completes")
		traceOut = flag.String("trace", "", "write a Chrome trace of the sweep's run schedule (wall-clock worker lanes)")
		metOut   = flag.String("metrics", "", "write sweep ledger metrics (runs, cache hits, latency histogram) to this file")
		pprofOn  = flag.String("pprof", "", "serve net/http/pprof on this host:port during the sweep")

		fleetN   = flag.Int("fleet", 0, "render a fleet comparison table over N devices per system instead of figures (0 = figure mode)")
		fleetEnv = flag.String("fleetenv", "less-crowded", "fleet environment")
		jitter   = flag.Float64("jitter", 0.1, "fleet per-device parameter jitter fraction")

		faultsF = flag.String("faults", "", `fault injection for every run: "task=PCT[%][,limit=K][,dropout=START+DUR[/PERIOD]][,stuck=HIGH[:LOW]]"`)
		tempF   = flag.String("temp", "", `junction temperature °C for every run: "C[+SWING[/PERIOD]]" (25–50)`)
		measF   = flag.String("meascost", "", `per-sample measurement cost for every run: "NJ[:US]" (energy nJ, latency µs)`)
	)
	flag.Parse()

	// A spec given on the command line replaces every environment's realism
	// spec for the whole sweep (including the faulty league environment).
	faultSpec, err := faults.FromFlags(*faultsF, *tempF, *measF)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(2)
	}

	if *fleetN > 0 {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		// -events 0 keeps the fleet default (short per-device runs).
		table, err := runFleetTable(ctx, *fleetN, *fleetEnv, *events, *seed, *jitter, *parallel, *progress, faultSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		var rerr error
		switch {
		case *csv:
			rerr = table.RenderCSV(os.Stdout)
		case *md:
			rerr = table.RenderMarkdown(os.Stdout)
		default:
			rerr = table.Render(os.Stdout)
		}
		if rerr != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", rerr)
			os.Exit(1)
		}
		return
	}

	// Validate and de-duplicate the figure list (or, in league mode, the
	// policy list) before any simulation starts: a typo should fail in
	// milliseconds, not partway through a long sweep.
	var ids []string
	var policies []string
	if *league {
		policies, err = parsePolicies(*policyF)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(2)
		}
	} else {
		if *policyF != "" {
			fmt.Fprintln(os.Stderr, "experiments: -policy requires -league")
			os.Exit(2)
		}
		ids, err = parseFigs(*fig)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(2)
		}
	}
	kind, err := parseEngine(*engine, *fast)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(2)
	}
	cli := obs.CLI{Trace: *traceOut, Metrics: *metOut, Pprof: *pprofOn}
	if err := validateObsFlags(cli, *svgDir); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(2)
	}

	setup := experiments.DefaultSetup()
	setup.Seed = *seed
	setup.Engine = kind
	setup.Faults = faultSpec
	if *events > 0 {
		setup.NumEvents = *events
	}
	switch *mcu {
	case "apollo4":
		setup.Profile = device.Apollo4()
	case "msp430":
		setup.Profile = device.MSP430()
	default:
		fmt.Fprintf(os.Stderr, "unknown mcu %q\n", *mcu)
		os.Exit(2)
	}

	if addr, stopPprof, perr := cli.StartPprof(); perr != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", perr)
		os.Exit(1)
	} else if addr != "" {
		defer stopPprof()
		fmt.Fprintf(os.Stderr, "pprof: http://%s/debug/pprof/\n", addr)
	}

	// -trace renders the sweep's wall-clock schedule: one span per executed
	// run, laid out on worker lanes. Recording happens in the serialized
	// OnEvent callback, which is exactly the concurrency discipline SpanTrace
	// requires.
	var span *obs.SpanTrace
	if cli.Trace != "" {
		f, ferr := os.Create(cli.Trace)
		if ferr != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", ferr)
			os.Exit(1)
		}
		defer f.Close()
		span = obs.NewSpanTrace(f, time.Now())
	}

	cfg := runner.Config[experiments.RunKey]{Workers: *parallel, RunTimeout: *timeout}
	if *progress || span != nil {
		cfg.OnEvent = func(ev runner.Event[experiments.RunKey]) {
			if span != nil && !ev.Cached && ev.Err == nil {
				span.Record(fmt.Sprint(ev.Key), time.Now().Add(-ev.Duration), ev.Duration,
					[2]string{"queue_wait", ev.QueueWait.Round(time.Microsecond).String()})
			}
			if !*progress {
				return
			}
			switch {
			case ev.Cached:
				fmt.Fprintf(os.Stderr, "[cached] %v\n", ev.Key)
			case ev.Err != nil:
				fmt.Fprintf(os.Stderr, "[run %d] %v FAILED: %v\n", ev.Executed, ev.Key, ev.Err)
			default:
				fmt.Fprintf(os.Stderr, "[run %d] %v in %v\n",
					ev.Executed, ev.Key, ev.Duration.Round(time.Millisecond))
			}
		}
	}
	sw := experiments.NewSweepConfig(setup, cfg)

	// Finalize the obs sinks once the sweep is complete, before rendering
	// (which may os.Exit on a figure error — the trace and metrics should
	// survive a partial rendering failure).
	finalizeObs := func() {
		if span != nil {
			if err := span.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: -trace: %v\n", err)
				os.Exit(1)
			}
		}
		if cli.Metrics != "" {
			reg := obs.NewRegistry()
			ledgerMetrics(reg, sw.Ledger())
			if err := obs.WriteMetricsFile(cli.Metrics, reg); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: -metrics: %v\n", err)
				os.Exit(1)
			}
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *league {
		table, lerr := sw.League(ctx, policies)
		finalizeObs()
		if lerr != nil {
			fmt.Fprintf(os.Stderr, "experiments: league: %v\n", lerr)
			os.Exit(1)
		}
		var rerr error
		switch {
		case *csv:
			rerr = table.RenderCSV(os.Stdout)
		case *md:
			rerr = table.RenderMarkdown(os.Stdout)
		default:
			rerr = table.Render(os.Stdout)
		}
		if rerr != nil {
			fmt.Fprintf(os.Stderr, "experiments: league: %v\n", rerr)
			os.Exit(1)
		}
		if !*csv && !*md {
			fmt.Printf("[sweep: %v, %d workers]\n", sw.Ledger(), sw.Workers())
		}
		return
	}

	// All figures run concurrently against the shared sweep; rendering
	// happens afterwards in the requested order, so output is deterministic
	// regardless of completion order.
	type figOut struct {
		tables []*report.Table
		err    error
		took   time.Duration
	}
	outs := make([]figOut, len(ids))
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			start := time.Now()
			tables, err := runFig(ctx, sw, id)
			outs[i] = figOut{tables: tables, err: err, took: time.Since(start)}
		}(i, id)
	}
	wg.Wait()

	finalizeObs()

	for i, id := range ids {
		out := outs[i]
		if out.err != nil {
			fmt.Fprintf(os.Stderr, "fig %s: %v\n", id, out.err)
			os.Exit(1)
		}
		for _, t := range out.tables {
			var rerr error
			switch {
			case *csv:
				rerr = t.RenderCSV(os.Stdout)
			case *md:
				rerr = t.RenderMarkdown(os.Stdout)
			default:
				rerr = t.Render(os.Stdout)
			}
			if rerr != nil {
				fmt.Fprintf(os.Stderr, "rendering fig %s: %v\n", id, rerr)
				os.Exit(1)
			}
		}
		if *svgDir != "" {
			if err := writeSVGs(*svgDir, id, out.tables); err != nil {
				fmt.Fprintf(os.Stderr, "svg for fig %s: %v\n", id, err)
				os.Exit(1)
			}
		}
		if !*csv && !*md {
			fmt.Printf("[fig %s done in %v]\n\n", id, out.took.Round(time.Millisecond))
		}
	}
	if !*csv && !*md {
		fmt.Printf("[sweep: %v, %d workers]\n", sw.Ledger(), sw.Workers())
	}
}

// parseEngine resolves the -engine/-fast flags into an engine kind, up
// front like -fig: a typo fails in milliseconds, before any simulation.
// -fast stays as shorthand for -engine event; combining it with an
// explicit conflicting -engine is an error rather than a silent override.
func parseEngine(arg string, fast bool) (sim.EngineKind, error) {
	switch arg {
	case "":
		if fast {
			return sim.EventDriven, nil
		}
		return sim.FixedIncrement, nil
	case "fixed":
		if fast {
			return 0, fmt.Errorf("-fast conflicts with -engine fixed")
		}
		return sim.FixedIncrement, nil
	case "event":
		return sim.EventDriven, nil
	default:
		return 0, fmt.Errorf("unknown engine %q; valid engines: fixed, event", arg)
	}
}

// parseFigs validates and de-duplicates a comma-separated figure id list.
// "all" (alone) expands to every figure. Unknown ids produce one error
// naming them all plus the valid set.
func parseFigs(arg string) ([]string, error) {
	valid := make(map[string]bool, len(figOrder))
	for _, id := range figOrder {
		valid[id] = true
	}
	var ids, unknown []string
	seen := make(map[string]bool)
	for _, raw := range strings.Split(arg, ",") {
		id := strings.TrimSpace(raw)
		switch {
		case id == "":
			continue
		case id == "all":
			for _, fid := range figOrder {
				if !seen[fid] {
					seen[fid] = true
					ids = append(ids, fid)
				}
			}
		case !valid[id]:
			unknown = append(unknown, fmt.Sprintf("%q", id))
		case !seen[id]:
			seen[id] = true
			ids = append(ids, id)
		}
	}
	if len(unknown) > 0 {
		return nil, fmt.Errorf("unknown figure id(s) %s; valid ids: %s, all",
			strings.Join(unknown, ", "), strings.Join(figOrder, ", "))
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("no figure ids given; valid ids: %s, all", strings.Join(figOrder, ", "))
	}
	return ids, nil
}

// parsePolicies validates and de-duplicates the -league policy list against
// the registry, up front like -fig. Empty means the default league field
// (experiments.LeaguePolicies).
func parsePolicies(arg string) ([]string, error) {
	if strings.TrimSpace(arg) == "" {
		return nil, nil
	}
	var ids, unknown []string
	seen := make(map[string]bool)
	for _, raw := range strings.Split(arg, ",") {
		id := strings.TrimSpace(raw)
		switch {
		case id == "":
			continue
		case !experiments.ValidSystem(id):
			unknown = append(unknown, fmt.Sprintf("%q", id))
		case !seen[id]:
			seen[id] = true
			ids = append(ids, id)
		}
	}
	if len(unknown) > 0 {
		return nil, fmt.Errorf("unknown policy id(s) %s; valid ids: %s, fixed-NN",
			strings.Join(unknown, ", "), strings.Join(experiments.PolicyNames(), ", "))
	}
	return ids, nil
}

// chartSpec says how a figure's table maps onto a grouped bar chart:
// (categoryCol, seriesCol, valueCol, y label). Figures without an entry get
// no chart.
var chartSpecs = map[string][4]any{
	"3":          {0, 1, 2, "interesting inputs discarded"},
	"8":          {0, 1, 2, "interesting inputs discarded"},
	"9":          {0, 1, 2, "interesting inputs discarded"},
	"10":         {0, 1, 2, "interesting inputs discarded"},
	"11":         {0, 1, 2, "interesting inputs discarded"},
	"12":         {0, 1, 2, "interesting inputs discarded"},
	"13":         {0, 1, 2, "interesting inputs discarded"},
	"mcus":       {0, 1, 2, "interesting inputs discarded"},
	"jitter":     {0, 1, 2, "interesting inputs discarded"},
	"checkpoint": {0, 1, 2, "interesting inputs discarded"},
	"2b":         {0, -1, 4, "interesting inputs missed"},
	"11c":        {0, -1, 1, "interesting inputs discarded"},
	"ladder":     {0, -1, 1, "interesting inputs discarded"},
	"buffer":     {0, 1, 2, "interesting inputs discarded"},
	"14":         {0, -1, 1, "interesting inputs discarded"},
}

// writeSVGs renders the charted figures into dir.
func writeSVGs(dir, id string, tables []*report.Table) error {
	spec, ok := chartSpecs[id]
	if !ok {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, t := range tables {
		chart, err := experiments.Chart(t, spec[0].(int), spec[1].(int), spec[2].(int), spec[3].(string))
		if err != nil {
			return err
		}
		name := fmt.Sprintf("fig%s.svg", id)
		if len(tables) > 1 {
			name = fmt.Sprintf("fig%s-%d.svg", id, i+1)
		}
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := chart.WriteSVG(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// runFig resolves one figure id against the shared sweep.
func runFig(ctx context.Context, sw *experiments.Sweep, id string) ([]*report.Table, error) {
	one := func(t *report.Table, err error) ([]*report.Table, error) {
		if err != nil {
			return nil, err
		}
		return []*report.Table{t}, nil
	}
	switch id {
	case "table1":
		return []*report.Table{sw.Setup.Table1()}, nil
	case "2b":
		return one(sw.Fig2b(ctx))
	case "3":
		return one(sw.Fig3(ctx))
	case "8":
		return one(sw.Fig8(ctx))
	case "9":
		return one(sw.Fig9(ctx))
	case "10":
		return one(sw.Fig10(ctx))
	case "11":
		return one(sw.Fig11(ctx))
	case "11c":
		return one(sw.Fig11c(ctx))
	case "12":
		return one(sw.Fig12(ctx))
	case "13":
		return one(sw.Fig13(ctx))
	case "14":
		return sw.Fig14(ctx)
	case "circuit":
		return experiments.CircuitStudy(), nil
	case "jitter":
		return one(sw.JitterStudy(ctx))
	case "checkpoint":
		return one(sw.CheckpointStudy(ctx))
	case "mcus":
		return one(sw.MCUStudy(ctx))
	case "ladder":
		return one(sw.LadderStudy(ctx))
	case "buffer":
		return one(sw.BufferStudy(ctx))
	case "seeds":
		return one(sw.SeedStudy(ctx))
	default:
		return nil, fmt.Errorf("unknown figure id %q", id)
	}
}
