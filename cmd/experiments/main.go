// Command experiments regenerates the paper's evaluation tables and
// figures. Each figure id maps to an experiment in internal/experiments;
// see DESIGN.md for the index.
//
// Usage:
//
//	experiments [-fig all|2b|3|8|9|10|11|11c|12|13|14|circuit|table1]
//	            [-events N] [-seed N] [-mcu apollo4|msp430] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"quetzal/internal/device"
	"quetzal/internal/experiments"
	"quetzal/internal/report"
	"quetzal/internal/sim"
)

func main() {
	var (
		fig    = flag.String("fig", "all", "figure to regenerate (2b,3,8,9,10,11,11c,12,13,14,circuit,table1,jitter,checkpoint,mcus,ladder,buffer,seeds,all)")
		events = flag.Int("events", 0, "events per run (0 = harness default 300; paper uses 1000)")
		seed   = flag.Int64("seed", 42, "trace and classifier seed")
		mcu    = flag.String("mcu", "apollo4", "device profile: apollo4 or msp430")
		csv    = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		md     = flag.Bool("md", false, "emit Markdown tables")
		svgDir = flag.String("svg", "", "also write an SVG chart per figure into this directory")
		fast   = flag.Bool("fast", false, "use the event-driven engine (~100x faster, statistically matching)")
	)
	flag.Parse()

	setup := experiments.DefaultSetup()
	setup.Seed = *seed
	if *fast {
		setup.Engine = sim.EventDriven
	}
	if *events > 0 {
		setup.NumEvents = *events
	}
	switch *mcu {
	case "apollo4":
		setup.Profile = device.Apollo4()
	case "msp430":
		setup.Profile = device.MSP430()
	default:
		fmt.Fprintf(os.Stderr, "unknown mcu %q\n", *mcu)
		os.Exit(2)
	}

	ids := strings.Split(*fig, ",")
	if *fig == "all" {
		ids = []string{"table1", "2b", "3", "8", "9", "10", "11", "11c", "12", "13", "14", "circuit", "jitter", "checkpoint", "mcus", "ladder", "buffer", "seeds"}
	}
	for _, id := range ids {
		start := time.Now()
		tables, err := run(setup, strings.TrimSpace(id))
		if err != nil {
			fmt.Fprintf(os.Stderr, "fig %s: %v\n", id, err)
			os.Exit(1)
		}
		for _, t := range tables {
			var rerr error
			switch {
			case *csv:
				rerr = t.RenderCSV(os.Stdout)
			case *md:
				rerr = t.RenderMarkdown(os.Stdout)
			default:
				rerr = t.Render(os.Stdout)
			}
			if rerr != nil {
				fmt.Fprintf(os.Stderr, "rendering fig %s: %v\n", id, rerr)
				os.Exit(1)
			}
		}
		if *svgDir != "" {
			if err := writeSVGs(*svgDir, strings.TrimSpace(id), tables); err != nil {
				fmt.Fprintf(os.Stderr, "svg for fig %s: %v\n", id, err)
				os.Exit(1)
			}
		}
		if !*csv && !*md {
			fmt.Printf("[fig %s done in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
		}
	}
}

// chartSpec says how a figure's table maps onto a grouped bar chart:
// (categoryCol, seriesCol, valueCol, y label). Figures without an entry get
// no chart.
var chartSpecs = map[string][4]any{
	"3":          {0, 1, 2, "interesting inputs discarded"},
	"8":          {0, 1, 2, "interesting inputs discarded"},
	"9":          {0, 1, 2, "interesting inputs discarded"},
	"10":         {0, 1, 2, "interesting inputs discarded"},
	"11":         {0, 1, 2, "interesting inputs discarded"},
	"12":         {0, 1, 2, "interesting inputs discarded"},
	"13":         {0, 1, 2, "interesting inputs discarded"},
	"mcus":       {0, 1, 2, "interesting inputs discarded"},
	"jitter":     {0, 1, 2, "interesting inputs discarded"},
	"checkpoint": {0, 1, 2, "interesting inputs discarded"},
	"2b":         {0, -1, 4, "interesting inputs missed"},
	"11c":        {0, -1, 1, "interesting inputs discarded"},
	"ladder":     {0, -1, 1, "interesting inputs discarded"},
	"buffer":     {0, 1, 2, "interesting inputs discarded"},
	"14":         {0, -1, 1, "interesting inputs discarded"},
}

// writeSVGs renders the charted figures into dir.
func writeSVGs(dir, id string, tables []*report.Table) error {
	spec, ok := chartSpecs[id]
	if !ok {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, t := range tables {
		chart, err := experiments.Chart(t, spec[0].(int), spec[1].(int), spec[2].(int), spec[3].(string))
		if err != nil {
			return err
		}
		name := fmt.Sprintf("fig%s.svg", id)
		if len(tables) > 1 {
			name = fmt.Sprintf("fig%s-%d.svg", id, i+1)
		}
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := chart.WriteSVG(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func run(setup experiments.Setup, id string) ([]*report.Table, error) {
	one := func(t *report.Table, err error) ([]*report.Table, error) {
		if err != nil {
			return nil, err
		}
		return []*report.Table{t}, nil
	}
	switch id {
	case "table1":
		return []*report.Table{setup.Table1()}, nil
	case "2b":
		return one(setup.Fig2b())
	case "3":
		return one(setup.Fig3())
	case "8":
		return one(setup.Fig8())
	case "9":
		return one(setup.Fig9())
	case "10":
		return one(setup.Fig10())
	case "11":
		return one(setup.Fig11())
	case "11c":
		return one(setup.Fig11c())
	case "12":
		return one(setup.Fig12())
	case "13":
		return one(setup.Fig13())
	case "14":
		return setup.Fig14()
	case "circuit":
		return experiments.CircuitStudy(), nil
	case "jitter":
		return one(setup.JitterStudy())
	case "checkpoint":
		return one(setup.CheckpointStudy())
	case "mcus":
		return one(setup.MCUStudy())
	case "ladder":
		return one(setup.LadderStudy())
	case "buffer":
		return one(setup.BufferStudy())
	case "seeds":
		return one(setup.SeedStudy())
	default:
		return nil, fmt.Errorf("unknown figure id %q", id)
	}
}
