package main

import (
	"testing"

	"quetzal/internal/experiments"
)

func tinySetup() experiments.Setup {
	s := experiments.DefaultSetup()
	s.NumEvents = 25
	return s
}

// Every figure id the CLI advertises must resolve and produce at least one
// table with rows.
func TestRunAllFigureIDs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	setup := tinySetup()
	ids := []string{"table1", "2b", "3", "8", "9", "10", "11", "11c", "12", "13",
		"14", "circuit", "jitter", "checkpoint", "mcus", "ladder", "buffer", "seeds"}
	for _, id := range ids {
		tables, err := run(setup, id)
		if err != nil {
			t.Fatalf("fig %s: %v", id, err)
		}
		if len(tables) == 0 {
			t.Fatalf("fig %s: no tables", id)
		}
		for _, tb := range tables {
			if len(tb.Rows) == 0 {
				t.Errorf("fig %s: table %q has no rows", id, tb.Title)
			}
		}
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if _, err := run(tinySetup(), "nope"); err == nil {
		t.Error("run accepted unknown figure id")
	}
}
