package main

import (
	"context"
	"strings"
	"testing"

	"quetzal/internal/experiments"
	"quetzal/internal/runner"
	"quetzal/internal/sim"
)

func tinySetup() experiments.Setup {
	s := experiments.DefaultSetup()
	s.NumEvents = 25
	return s
}

// Every figure id the CLI advertises must resolve and produce at least one
// table with rows.
func TestRunAllFigureIDs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	sw := experiments.NewSweep(tinySetup())
	ctx := context.Background()
	for _, id := range figOrder {
		tables, err := runFig(ctx, sw, id)
		if err != nil {
			t.Fatalf("fig %s: %v", id, err)
		}
		if len(tables) == 0 {
			t.Fatalf("fig %s: no tables", id)
		}
		for _, tb := range tables {
			if len(tb.Rows) == 0 {
				t.Errorf("fig %s: table %q has no rows", id, tb.Title)
			}
		}
	}
	if l := sw.Ledger(); l.CacheHits == 0 {
		t.Errorf("full figure set produced no cache hits: %v", l)
	}
}

func TestRunUnknownFigure(t *testing.T) {
	if _, err := runFig(context.Background(), experiments.NewSweep(tinySetup()), "nope"); err == nil {
		t.Error("runFig accepted unknown figure id")
	}
}

func TestParseFigs(t *testing.T) {
	// "all" expands to the full ordered set.
	ids, err := parseFigs("all")
	if err != nil {
		t.Fatalf("parseFigs(all): %v", err)
	}
	if len(ids) != len(figOrder) {
		t.Errorf("all → %d ids, want %d", len(ids), len(figOrder))
	}

	// Duplicates and whitespace are cleaned up; order is preserved.
	ids, err = parseFigs(" 9 ,3,9, 3 ")
	if err != nil {
		t.Fatalf("parseFigs: %v", err)
	}
	if len(ids) != 2 || ids[0] != "9" || ids[1] != "3" {
		t.Errorf("parseFigs dedupe = %v, want [9 3]", ids)
	}

	// Unknown ids fail fast with the full valid list, naming every typo.
	_, err = parseFigs("3,bogus,9,nope")
	if err == nil {
		t.Fatal("parseFigs accepted unknown ids")
	}
	for _, frag := range []string{`"bogus"`, `"nope"`, "valid ids", "11c", "checkpoint"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("parseFigs error %q missing %q", err, frag)
		}
	}

	// Empty input is an error, not an empty sweep.
	if _, err := parseFigs(" , "); err == nil {
		t.Error("parseFigs accepted an empty id list")
	}
}

// TestCLIDeterminism: a representative figure subset must render
// byte-identically at -parallel 1 and -parallel 8 (the correctness bar for
// the concurrent sweep). The deeper check lives in internal/experiments;
// this one goes through the CLI's own runFig path.
func TestCLIDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("renders several figures twice")
	}
	render := func(workers int) string {
		s := tinySetup()
		s.Engine = sim.EventDriven
		sw := experiments.NewSweepConfig(s, runner.Config[experiments.RunKey]{Workers: workers})
		var b strings.Builder
		for _, id := range []string{"3", "9", "11c"} {
			tables, err := runFig(context.Background(), sw, id)
			if err != nil {
				t.Fatalf("workers=%d fig %s: %v", workers, id, err)
			}
			for _, tb := range tables {
				if err := tb.Render(&b); err != nil {
					t.Fatal(err)
				}
			}
		}
		return b.String()
	}
	serial, parallel := render(1), render(8)
	if serial != parallel {
		t.Errorf("parallel output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}
