package main

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"quetzal/internal/obs"
	"quetzal/internal/runner"
)

func TestValidateObsFlags(t *testing.T) {
	dir := t.TempDir()
	in := func(name string) string { return filepath.Join(dir, name) }
	cases := []struct {
		name    string
		cli     obs.CLI
		svgDir  string
		wantErr string // substring; empty → must pass
	}{
		{name: "all empty"},
		{
			name: "all valid",
			cli:  obs.CLI{Trace: in("sweep.json"), Metrics: in("sweep.txt"), Pprof: "127.0.0.1:0"},
		},
		{
			name:    "trace and metrics same file",
			cli:     obs.CLI{Trace: in("out"), Metrics: in("out")},
			wantErr: "same file",
		},
		{
			name:    "trace parent dir missing",
			cli:     obs.CLI{Trace: filepath.Join(dir, "missing", "sweep.json")},
			wantErr: "-trace",
		},
		{
			name:    "pprof not host:port",
			cli:     obs.CLI{Pprof: ":nope:"},
			wantErr: "pprof",
		},
		{
			name:    "svg dir collides with trace",
			cli:     obs.CLI{Trace: in("figs")},
			svgDir:  in("figs"),
			wantErr: "-svg",
		},
		{
			name:    "svg dir collides with metrics",
			cli:     obs.CLI{Metrics: in("figs")},
			svgDir:  in("figs"),
			wantErr: "-svg",
		},
		{
			name:   "svg dir distinct",
			cli:    obs.CLI{Trace: in("sweep.json")},
			svgDir: in("figs"),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateObsFlags(tc.cli, tc.svgDir)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func TestLedgerMetrics(t *testing.T) {
	lat := obs.NewHistogram(obs.LatencyBuckets())
	lat.Observe(0.25)
	lat.Observe(0.5)
	l := runner.Ledger{
		Executed: 2, CacheHits: 5, Errors: 1,
		RunTime: 750 * time.Millisecond, QueueWait: 20 * time.Millisecond,
		Elapsed: time.Second, Latency: lat,
	}
	reg := obs.NewRegistry()
	ledgerMetrics(reg, l)

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	dump := b.String()
	for _, want := range []string{
		"sweep_runs_executed_total 2",
		"sweep_cache_hits_total 5",
		"sweep_run_errors_total 1",
		"sweep_run_seconds_total 0.75",
		"sweep_queue_wait_seconds_total 0.02",
		"sweep_elapsed_seconds 1",
		"sweep_run_latency_seconds_count 2",
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("metrics dump missing %q:\n%s", want, dump)
		}
	}

	// A ledger from an untouched pool has no latency histogram; the dump
	// must still work.
	reg2 := obs.NewRegistry()
	ledgerMetrics(reg2, runner.Ledger{})
	if err := reg2.WriteText(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}
