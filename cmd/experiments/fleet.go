package main

// Fleet mode: -fleet N sidesteps the figure sweep entirely and renders one
// population-comparison table — the same N-device fleet (same seed, same
// correlated skies, same jittered hardware population) run once per
// controller, so the only varying factor between rows is the scheduling
// policy. This is the fleet-scale analogue of Table 1.

import (
	"context"
	"fmt"
	"os"
	"time"

	"quetzal/internal/experiments"
	"quetzal/internal/faults"
	"quetzal/internal/fleet"
	"quetzal/internal/report"
)

// fleetSystems is the controller lineup for the fleet comparison, in render
// order: Quetzal against the paper's baselines.
var fleetSystems = []string{
	experiments.SysQuetzal,
	experiments.SysNoAdapt,
	experiments.SysAlwaysDeg,
	experiments.SysCatNap,
	experiments.SysPZO,
	experiments.SysPZI,
}

// runFleetTable executes one fleet per system and renders the comparison.
func runFleetTable(ctx context.Context, devices int, envName string, events int,
	seed int64, jitter float64, workers int, progress bool, faultSpec faults.Spec) (*report.Table, error) {
	title := fmt.Sprintf("fleet: %d devices, %s, jitter %g, seed %d", devices, envName, jitter, seed)
	if faultSpec.Enabled() {
		title += " realism=" + faultSpec.String()
	}
	t := report.New(title,
		"system", "IBO", "discarded", "highQ", "IBO p50", "IBO p90", "IBO p99",
		"wasted J", "devices/s")

	for _, sys := range fleetSystems {
		spec := experiments.FleetSpec{
			Devices: devices,
			System:  sys,
			Env:     envName,
			Events:  events,
			Seed:    seed,
			Jitter:  jitter,
			Faults:  faultSpec,
		}
		plan, err := spec.Plan()
		if err != nil {
			return nil, fmt.Errorf("fleet %s: %v", sys, err)
		}
		opts := fleet.Options{Workers: workers}
		if progress {
			start := time.Now()
			opts.OnProgress = func(done, total int) {
				fmt.Fprintf(os.Stderr, "[fleet %s] %d/%d devices (%.0f/s)\n",
					sys, done, total, float64(done)/time.Since(start).Seconds())
			}
		}
		agg, stats, err := fleet.Run(ctx, plan, opts)
		if err != nil {
			return nil, fmt.Errorf("fleet %s: %v", sys, err)
		}
		ibo := agg.Histograms["ibo_fraction"]
		t.AddRow(sys,
			report.Pct(agg.IBOFraction),
			report.Pct(agg.DiscardedFraction),
			report.Pct(agg.HighQualityShare),
			report.F(ibo.P50), report.F(ibo.P90), report.F(ibo.P99),
			report.F(agg.WastedJoules),
			report.F(stats.DevicesPerSec))
	}
	t.AddNote("fleet ratios pool integer totals across all devices; "+
		"p50/p90/p99 are per-device IBO-fraction quantiles (%d devices per system)", devices)
	return t, nil
}
