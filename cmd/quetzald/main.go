// Command quetzald serves the simulator as a long-lived HTTP JSON API.
// Runs execute on a single-flight, memoizing worker pool: identical
// concurrent requests coalesce into one simulation, repeats are served from
// the memo, and an admission gate sheds work it predicts cannot meet its
// deadline (429 + Retry-After) using the same Little's-Law discipline the
// paper uses to predict input-buffer overflow on the device.
//
// Usage:
//
//	quetzald [-listen HOST:PORT] [-workers N] [-run-timeout DUR]
//	         [-fleet-timeout DUR] [-max-queue N] [-events N] [-seed N]
//	         [-mcu apollo4|msp430|stm32g0] [-engine fixed|event]
//	         [-store DIR] [-claim-wait DUR]
//	         [-drain-timeout DUR] [-metrics FILE.txt] [-pprof HOST:PORT]
//
// Endpoints:
//
//	POST /v1/run          execute one run        {"system":"qz","env":"crowded",...}
//	POST /v1/batch        submit many runs       {"runs":[{...},{...}]} → 202 + ids
//	POST /v1/sweep        execute a batch        {"runs":[{...},{...}]}
//	POST /v1/sweep/stream stream sweep progress  (chunked JSONL, heartbeats)
//	POST /v1/fleet        simulate a population  {"devices":100000,"system":"qz","env":"less-crowded"}
//	POST /v1/fleet/stream stream fleet progress  (chunked JSONL, heartbeats)
//	GET  /v1/runs/{id}    look up a run record
//	GET  /healthz         liveness (503 while draining)
//	GET  /metrics         counters, gauges and histograms (text format)
//
// With -store DIR, completed results are published to a durable
// content-addressed store in DIR and consulted before executing. Several
// replicas may point at the same directory with no other coordination:
// they share results, dedupe concurrent executions through O_EXCL claim
// files, and a restarted replica serves previously computed run ids
// straight from disk.
//
// On SIGTERM or SIGINT the server drains: health flips to 503, new API work
// is refused, in-flight runs finish (up to -drain-timeout), and the final
// ledger is logged — with -metrics, also flushed to disk.
//
// Example:
//
//	quetzald -listen :8080 -engine event &
//	curl -s localhost:8080/v1/run -d '{"system":"qz","env":"crowded","events":300}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"quetzal/internal/device"
	"quetzal/internal/experiments"
	"quetzal/internal/obs"
	"quetzal/internal/service"
	"quetzal/internal/store"
)

// appConfig is the parsed flag set; separated from main for table tests.
type appConfig struct {
	listen       string
	workers      int
	runTimeout   time.Duration
	fleetTimeout time.Duration
	maxQueue     int
	events       int
	seed         int64
	mcu          string
	engine       string
	storeDir     string
	claimWait    time.Duration
	drainTimeout time.Duration
	cli          obs.CLI
}

// parseFlags builds the appConfig from args (without the program name).
func parseFlags(args []string, stderr io.Writer) (appConfig, error) {
	var c appConfig
	fs := flag.NewFlagSet("quetzald", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.StringVar(&c.listen, "listen", ":8080", "HTTP listen address")
	fs.IntVar(&c.workers, "workers", 0, "concurrent simulations (0 = one per CPU)")
	fs.DurationVar(&c.runTimeout, "run-timeout", 60*time.Second, "per-request execution budget")
	fs.DurationVar(&c.fleetTimeout, "fleet-timeout", 30*time.Minute, "POST /v1/fleet execution budget")
	fs.IntVar(&c.maxQueue, "max-queue", 0, "admission queue bound (0 = 4x workers)")
	fs.IntVar(&c.events, "events", 300, "default number of sensing events per run")
	fs.Int64Var(&c.seed, "seed", 42, "default trace and classifier seed")
	fs.StringVar(&c.mcu, "mcu", "apollo4", "device profile: apollo4, msp430 or stm32g0")
	fs.StringVar(&c.engine, "engine", "fixed", "default engine: fixed or event")
	fs.StringVar(&c.storeDir, "store", "", "durable shared result store directory (empty = in-memory memo only)")
	fs.DurationVar(&c.claimWait, "claim-wait", 5*time.Second, "how long to wait out another replica's execution claim")
	fs.DurationVar(&c.drainTimeout, "drain-timeout", 30*time.Second, "SIGTERM drain budget for in-flight runs")
	fs.StringVar(&c.cli.Metrics, "metrics", "", "flush a metrics text dump to this file on shutdown")
	fs.StringVar(&c.cli.Pprof, "pprof", "", "serve net/http/pprof on this host:port")
	if err := fs.Parse(args); err != nil {
		return appConfig{}, err
	}
	if fs.NArg() > 0 {
		return appConfig{}, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	return c, nil
}

// validate rejects unusable configurations before any socket opens.
func (c appConfig) validate() error {
	if _, _, err := net.SplitHostPort(c.listen); err != nil {
		return fmt.Errorf("-listen: %q is not a host:port address: %v", c.listen, err)
	}
	if c.workers < 0 {
		return fmt.Errorf("-workers must be >= 0, got %d", c.workers)
	}
	if c.maxQueue < 0 {
		return fmt.Errorf("-max-queue must be >= 0, got %d", c.maxQueue)
	}
	if c.runTimeout <= 0 {
		return fmt.Errorf("-run-timeout must be positive, got %v", c.runTimeout)
	}
	if c.fleetTimeout <= 0 {
		return fmt.Errorf("-fleet-timeout must be positive, got %v", c.fleetTimeout)
	}
	if c.drainTimeout <= 0 {
		return fmt.Errorf("-drain-timeout must be positive, got %v", c.drainTimeout)
	}
	if c.claimWait <= 0 {
		return fmt.Errorf("-claim-wait must be positive, got %v", c.claimWait)
	}
	if c.events < 1 || c.events > experiments.MaxSpecEvents {
		return fmt.Errorf("-events must be in [1, %d], got %d", experiments.MaxSpecEvents, c.events)
	}
	if _, err := resolveMCU(c.mcu); err != nil {
		return err
	}
	if _, err := experiments.ParseEngineKind(c.engine); err != nil {
		return err
	}
	return c.cli.Validate()
}

// resolveMCU maps the -mcu flag to a device profile.
func resolveMCU(name string) (device.Profile, error) {
	switch name {
	case "apollo4":
		return device.Apollo4(), nil
	case "msp430":
		return device.MSP430(), nil
	case "stm32g0":
		return device.STM32G0(), nil
	default:
		return device.Profile{}, fmt.Errorf("unknown mcu %q", name)
	}
}

// buildServer assembles the service around the configured default setup.
// The returned closer releases the durable store, if one was opened; it is
// safe to call with reads still possible.
func buildServer(c appConfig, logf func(string, ...any)) (*service.Server, func(), error) {
	setup := experiments.DefaultSetup()
	setup.NumEvents = c.events
	setup.Seed = c.seed
	profile, err := resolveMCU(c.mcu)
	if err != nil {
		return nil, nil, err
	}
	setup.Profile = profile
	engine, err := experiments.ParseEngineKind(c.engine)
	if err != nil {
		return nil, nil, err
	}
	setup.Engine = engine
	closer := func() {}
	var st *store.Store
	if c.storeDir != "" {
		st, err = store.Open(c.storeDir)
		if err != nil {
			return nil, nil, fmt.Errorf("-store: %w", err)
		}
		stats := st.Stats()
		logf("quetzald: store %s open (%d records in %d segments)", c.storeDir, stats.Records, stats.Segments)
		closer = func() { st.Close() } //nolint:errcheck
	}
	return service.New(service.Config{
		Setup:          setup,
		Workers:        c.workers,
		RunTimeout:     c.runTimeout,
		FleetTimeout:   c.fleetTimeout,
		MaxQueue:       c.maxQueue,
		Store:          st,
		StoreClaimWait: c.claimWait,
		Logf:           logf,
	}), closer, nil
}

// run owns the server lifecycle: listen, serve until ctx is cancelled (the
// signal), then drain. It returns nil only after a clean drain.
func run(ctx context.Context, c appConfig, stderr io.Writer) error {
	logf := func(format string, args ...any) {
		fmt.Fprintf(stderr, format+"\n", args...)
	}
	s, closeStore, err := buildServer(c, logf)
	if err != nil {
		return err
	}
	defer closeStore()

	if addr, stop, err := c.cli.StartPprof(); err != nil {
		return err
	} else if addr != "" {
		defer stop()
		logf("quetzald: pprof on http://%s/debug/pprof/", addr)
	}

	ln, err := net.Listen("tcp", c.listen)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	logf("quetzald: listening on %s (workers=%d queue=%d run-timeout=%v)",
		ln.Addr(), c.workers, c.maxQueue, c.runTimeout)

	select {
	case err := <-serveErr:
		return err // the listener died before any shutdown signal
	case <-ctx.Done():
	}

	// Drain: refuse new work, let in-flight runs finish, then close the
	// listener. The drain budget covers both phases.
	logf("quetzald: draining (budget %v)", c.drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), c.drainTimeout)
	defer cancel()
	drainErr := s.Drain(drainCtx)
	if err := srv.Shutdown(drainCtx); err != nil && drainErr == nil {
		drainErr = err
	}
	<-serveErr // Serve has returned http.ErrServerClosed by now

	if c.cli.Metrics != "" {
		if err := s.WriteMetrics(c.cli.Metrics); err != nil && drainErr == nil {
			drainErr = err
		}
	}
	l := s.Ledger()
	logf("quetzald: drained; ledger: %d executed, %d cache hits, %d errors",
		l.Executed, l.CacheHits, l.Errors)
	if drainErr != nil {
		return fmt.Errorf("drain: %w", drainErr)
	}
	return nil
}

func main() {
	cfg, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := cfg.validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	if err := run(ctx, cfg, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
