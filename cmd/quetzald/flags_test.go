package main

import (
	"io"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestParseFlagsDefaults(t *testing.T) {
	c, err := parseFlags(nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if c.listen != ":8080" || c.events != 300 || c.seed != 42 ||
		c.mcu != "apollo4" || c.engine != "fixed" ||
		c.runTimeout != 60*time.Second || c.drainTimeout != 30*time.Second {
		t.Fatalf("defaults wrong: %+v", c)
	}
	if err := c.validate(); err != nil {
		t.Fatalf("default config must validate: %v", err)
	}
}

func TestParseFlagsRejectsPositionalArgs(t *testing.T) {
	if _, err := parseFlags([]string{"-listen", ":0", "stray"}, io.Discard); err == nil {
		t.Fatal("positional argument accepted")
	}
}

func TestValidateTable(t *testing.T) {
	dir := t.TempDir()
	base := func() appConfig {
		c, err := parseFlags(nil, io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	cases := []struct {
		name    string
		mutate  func(*appConfig)
		wantErr string // substring; empty → must pass
	}{
		{name: "defaults", mutate: func(*appConfig) {}},
		{name: "event engine", mutate: func(c *appConfig) { c.engine = "event" }},
		{name: "msp430", mutate: func(c *appConfig) { c.mcu = "msp430" }},
		{name: "metrics path", mutate: func(c *appConfig) { c.cli.Metrics = filepath.Join(dir, "m.txt") }},
		{name: "bad listen", mutate: func(c *appConfig) { c.listen = "8080" }, wantErr: "-listen"},
		{name: "negative workers", mutate: func(c *appConfig) { c.workers = -1 }, wantErr: "-workers"},
		{name: "negative queue", mutate: func(c *appConfig) { c.maxQueue = -2 }, wantErr: "-max-queue"},
		{name: "zero run timeout", mutate: func(c *appConfig) { c.runTimeout = 0 }, wantErr: "-run-timeout"},
		{name: "zero drain timeout", mutate: func(c *appConfig) { c.drainTimeout = 0 }, wantErr: "-drain-timeout"},
		{name: "zero events", mutate: func(c *appConfig) { c.events = 0 }, wantErr: "-events"},
		{name: "too many events", mutate: func(c *appConfig) { c.events = 1 << 30 }, wantErr: "-events"},
		{name: "bad mcu", mutate: func(c *appConfig) { c.mcu = "z80" }, wantErr: "mcu"},
		{name: "bad engine", mutate: func(c *appConfig) { c.engine = "warp" }, wantErr: "engine"},
		{
			name:    "metrics dir missing",
			mutate:  func(c *appConfig) { c.cli.Metrics = filepath.Join(dir, "nope", "m.txt") },
			wantErr: "metrics",
		},
		{name: "bad pprof", mutate: func(c *appConfig) { c.cli.Pprof = "localhost" }, wantErr: "pprof"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := base()
			tc.mutate(&c)
			err := c.validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func TestResolveMCU(t *testing.T) {
	for _, name := range []string{"apollo4", "msp430", "stm32g0"} {
		if _, err := resolveMCU(name); err != nil {
			t.Errorf("resolveMCU(%q): %v", name, err)
		}
	}
	if _, err := resolveMCU("z80"); err == nil {
		t.Error("resolveMCU(z80): want error")
	}
}

func TestBuildServerAppliesConfig(t *testing.T) {
	c, err := parseFlags([]string{"-events", "40", "-seed", "7", "-engine", "event"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if _, closer, err := buildServer(c, func(string, ...any) {}); err != nil {
		t.Fatal(err)
	} else {
		closer()
	}
	c.mcu = "z80"
	if _, _, err := buildServer(c, func(string, ...any) {}); err == nil {
		t.Fatal("buildServer accepted an unknown mcu")
	}
}
