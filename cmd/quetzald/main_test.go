package main

// In-process lifecycle test: run() on a random port, real HTTP requests
// against a real simulation, then a cancelled context standing in for
// SIGTERM. This is the same path the CI smoke job exercises from the shell.

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestRunServesAndDrains(t *testing.T) {
	// Grab a free port; run() needs a concrete -listen address.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	dir := t.TempDir()
	metricsPath := filepath.Join(dir, "metrics.txt")
	cfg, err := parseFlags([]string{
		"-listen", addr,
		"-engine", "event",
		"-events", "40",
		"-metrics", metricsPath,
		"-drain-timeout", "10s",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.validate(); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- run(ctx, cfg, io.Discard) }()

	base := "http://" + addr
	waitForServer(t, base)

	// One real simulation over the wire.
	resp, err := http.Post(base+"/v1/run", "application/json",
		strings.NewReader(`{"system":"qz","env":"crowded"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/run = %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Status  string          `json:"status"`
		Results json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(body, &out); err != nil || out.Status != "done" || len(out.Results) == 0 {
		t.Fatalf("bad run response: %v / %s", err, body)
	}

	// The repeat is a memo hit, visible in /metrics.
	resp, err = http.Post(base+"/v1/run", "application/json",
		strings.NewReader(`{"system":"qz","env":"crowded"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	met, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"quetzald_runs_executed_total 1",
		"quetzald_run_cache_hits_total 1",
	} {
		if !strings.Contains(string(met), want) {
			t.Errorf("/metrics missing %q:\n%s", want, met)
		}
	}

	// "SIGTERM": cancel the context; run() must drain and return nil.
	cancel()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run returned %v, want clean drain", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not return after cancellation")
	}

	// The shutdown flush wrote the same counters the live scrape showed.
	flushed, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatalf("metrics flush missing: %v", err)
	}
	if !strings.Contains(string(flushed), "quetzald_runs_executed_total 1") {
		t.Errorf("flushed metrics disagree with the run:\n%s", flushed)
	}

	// The port is released after drain.
	if ln, err := net.Listen("tcp", addr); err == nil {
		ln.Close()
	} else {
		t.Errorf("listen address still held after run returned: %v", err)
	}
}

// TestWarmRestartServesStoredRuns is the process-level recovery story: a
// quetzald with -store computes a run, terminates cleanly, and a brand-new
// process on the same store directory serves the run id from disk and
// answers a repeated POST from the store instead of simulating again.
func TestWarmRestartServesStoredRuns(t *testing.T) {
	storeDir := t.TempDir()
	const runBody = `{"system":"qz","env":"crowded"}`

	launch := func() (string, context.CancelFunc, chan error) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := ln.Addr().String()
		ln.Close()
		cfg, err := parseFlags([]string{
			"-listen", addr,
			"-engine", "event",
			"-events", "40",
			"-store", storeDir,
			"-drain-timeout", "10s",
		}, io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		if err := cfg.validate(); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		runErr := make(chan error, 1)
		go func() { runErr <- run(ctx, cfg, io.Discard) }()
		waitForServer(t, "http://"+addr)
		return "http://" + addr, cancel, runErr
	}
	stop := func(cancel context.CancelFunc, runErr chan error) {
		cancel()
		select {
		case err := <-runErr:
			if err != nil {
				t.Fatalf("run returned %v, want clean drain", err)
			}
		case <-time.After(15 * time.Second):
			t.Fatal("run did not return after cancellation")
		}
	}

	// First life: compute and publish.
	base, cancel, runErr := launch()
	resp, err := http.Post(base+"/v1/run", "application/json", strings.NewReader(runBody))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/run = %d: %s", resp.StatusCode, body)
	}
	var first struct {
		ID      string          `json:"id"`
		Results json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(body, &first); err != nil || first.ID == "" {
		t.Fatalf("bad run response: %v / %s", err, body)
	}
	stop(cancel, runErr)

	// Second life: the id resolves from disk before any simulation ran.
	base, cancel, runErr = launch()
	defer stop(cancel, runErr)
	resp, err = http.Get(base + "/v1/runs/" + first.ID)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restarted GET /v1/runs/%s = %d: %s", first.ID, resp.StatusCode, body)
	}
	var got struct {
		Stored  bool            `json:"stored"`
		Results json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(body, &got); err != nil || !got.Stored {
		t.Fatalf("restart lookup not served from store: %v / %s", err, body)
	}
	if string(got.Results) != string(first.Results) {
		t.Fatalf("stored results diverged:\n%s\n%s", got.Results, first.Results)
	}

	// A repeated POST is a store hit, not a second simulation.
	resp, err = http.Post(base+"/v1/run", "application/json", strings.NewReader(runBody))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	met, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"quetzald_store_hits_total 2", // the GET fallback + the repeated POST
		"quetzald_store_misses_total 0",
		"quetzald_store_records 1",
	} {
		if !strings.Contains(string(met), want) {
			t.Errorf("restarted /metrics missing %q:\n%s", want, met)
		}
	}
}

func TestRunRefusesBadListenAddress(t *testing.T) {
	// Occupy a port so run()'s own bind must fail.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	cfg, err := parseFlags([]string{"-listen", ln.Addr().String()}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := run(ctx, cfg, io.Discard); err == nil {
		t.Fatal("run bound an already-occupied address (or returned nil without serving)")
	}
}

func waitForServer(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("server never became healthy")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
