package main

import (
	"path/filepath"
	"strings"
	"testing"

	"quetzal/internal/obs"
	"quetzal/internal/trace"
)

func TestValidateObsFlags(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name    string
		cli     obs.CLI
		kind    string
		wantErr string // substring; empty → must pass
	}{
		{name: "no flags", kind: "solar"},
		{
			name: "metrics with generator",
			cli:  obs.CLI{Metrics: filepath.Join(dir, "m.txt"), Pprof: "localhost:0"},
			kind: "events",
		},
		{
			name:    "metrics with summary",
			cli:     obs.CLI{Metrics: filepath.Join(dir, "m.txt")},
			kind:    "summary",
			wantErr: "-kind summary",
		},
		{
			name:    "metrics parent dir missing",
			cli:     obs.CLI{Metrics: filepath.Join(dir, "missing", "m.txt")},
			kind:    "solar",
			wantErr: "-metrics",
		},
		{
			name:    "pprof missing port",
			cli:     obs.CLI{Pprof: "localhost"},
			kind:    "solar",
			wantErr: "pprof",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateObsFlags(tc.cli, tc.kind)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func TestTraceMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	powerMetrics(reg, trace.GenerateSolar(trace.DefaultSolarConfig(600, 1)))
	eventMetrics(reg, trace.GenerateEvents(trace.DefaultEventConfig(40, 30, 1)))

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	dump := b.String()
	for _, want := range []string{
		"trace_power_samples_total",
		"trace_power_mean_watts",
		"trace_power_max_watts",
		"trace_events_total 40",
		"trace_events_interesting_total",
		"trace_duration_seconds",
		"trace_interesting_seconds",
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("metrics dump missing %q:\n%s", want, dump)
		}
	}
}
