package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"quetzal/internal/trace"
)

func TestSummarizePower(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WritePower(f, trace.GenerateSolar(trace.DefaultSolarConfig(60, 1))); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var buf bytes.Buffer
	if err := summarize(path, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "power trace:") {
		t.Errorf("summary = %q", buf.String())
	}
}

func TestSummarizeEvents(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "e.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteEvents(f, trace.GenerateEvents(trace.DefaultEventConfig(10, 30, 1))); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var buf bytes.Buffer
	if err := summarize(path, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "event trace: 10 events") {
		t.Errorf("summary = %q", buf.String())
	}
}

func TestSummarizeRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := summarize(path, &buf); err == nil {
		t.Error("summarize accepted garbage")
	}
	if err := os.WriteFile(path, []byte(`{"kind":"mystery"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := summarize(path, &buf); err == nil {
		t.Error("summarize accepted unknown kind")
	}
	if err := summarize(filepath.Join(dir, "missing.json"), &buf); err == nil {
		t.Error("summarize accepted missing file")
	}
}
