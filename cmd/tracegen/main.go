// Command tracegen emits the synthetic environment traces the experiments
// consume (JSON on stdout or to a file): solar harvest power and sensing
// event activity. Externally produced traces in the same format (e.g. a
// real irradiance dataset converted offline) can be fed back into custom
// simulations.
//
// Usage:
//
//	tracegen -kind solar  [-duration SECONDS] [-seed N] [-peak WATTS] [-o FILE]
//	tracegen -kind rf     [-duration SECONDS] [-seed N] [-o FILE]
//	tracegen -kind events [-n N] [-maxdur SECONDS] [-seed N] [-o FILE]
//	tracegen -kind summary -in FILE      # describe an existing trace file
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"quetzal/internal/trace"
)

func main() {
	var (
		kind     = flag.String("kind", "solar", "trace kind: solar, rf, events, or summary")
		duration = flag.Float64("duration", 3600, "solar: trace duration in seconds")
		peak     = flag.Float64("peak", 0, "solar: override clear-sky peak power in watts (0 = default)")
		n        = flag.Int("n", 300, "events: number of events")
		maxdur   = flag.Float64("maxdur", 60, "events: maximum event duration in seconds (environment knob)")
		seed     = flag.Int64("seed", 42, "generator seed")
		out      = flag.String("o", "", "output file (default stdout)")
		in       = flag.String("in", "", "summary: input trace file")
	)
	flag.Parse()

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	switch *kind {
	case "solar":
		cfg := trace.DefaultSolarConfig(*duration, *seed)
		if *peak > 0 {
			cfg.PeakPower = *peak
		}
		tr := trace.GenerateSolar(cfg)
		if err := trace.WritePower(w, tr); err != nil {
			fatal(err)
		}
	case "rf":
		tr := trace.GenerateRF(trace.DefaultRFConfig(*duration, *seed))
		if err := trace.WritePower(w, tr); err != nil {
			fatal(err)
		}
	case "events":
		tr := trace.GenerateEvents(trace.DefaultEventConfig(*n, *maxdur, *seed))
		if err := trace.WriteEvents(w, tr); err != nil {
			fatal(err)
		}
	case "summary":
		if *in == "" {
			fatal(fmt.Errorf("summary requires -in FILE"))
		}
		if err := summarize(*in, w); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown kind %q", *kind))
	}
}

// summarize sniffs the file kind and prints human-readable statistics.
func summarize(path string, w io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var sniff struct {
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal(data, &sniff); err != nil {
		return fmt.Errorf("tracegen: not a trace file: %w", err)
	}
	switch sniff.Kind {
	case "sampled-power":
		tr, err := trace.ReadPower(bytes.NewReader(data))
		if err != nil {
			return err
		}
		dur := tr.Duration()
		fmt.Fprintf(w, "power trace: %d samples, %.0f s, mean %.1f mW, max %.1f mW\n",
			len(tr.Samples), dur,
			trace.MeanPower(tr, dur, tr.Dt)*1e3, trace.MaxPower(tr, dur, tr.Dt)*1e3)
	case "events":
		tr, err := trace.ReadEvents(bytes.NewReader(data))
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "event trace: %d events over %.0f s, %d interesting (%.0f s of interesting activity)\n",
			len(tr.Events), tr.Duration(), tr.CountInteresting(), tr.InterestingSeconds())
	default:
		return fmt.Errorf("tracegen: unknown trace kind %q", sniff.Kind)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
