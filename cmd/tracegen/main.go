// Command tracegen emits the synthetic environment traces the experiments
// consume (JSON on stdout or to a file): solar harvest power and sensing
// event activity. Externally produced traces in the same format (e.g. a
// real irradiance dataset converted offline) can be fed back into custom
// simulations.
//
// Usage:
//
//	tracegen -kind solar  [-duration SECONDS] [-seed N] [-peak WATTS] [-o FILE]
//	tracegen -kind rf     [-duration SECONDS] [-seed N] [-o FILE]
//	tracegen -kind events [-n N] [-maxdur SECONDS] [-seed N] [-o FILE]
//	tracegen -kind summary -in FILE      # describe an existing trace file
//
// Any generating kind also accepts -metrics FILE (statistics of the
// generated trace as a metrics text dump) and -pprof HOST:PORT.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"quetzal/internal/obs"
	"quetzal/internal/trace"
)

// validateObsFlags checks the observability flags against the selected
// kind: -metrics describes a *generated* trace, so it has nothing to dump
// for -kind summary. Kept separate from main for table-driven tests.
func validateObsFlags(cli obs.CLI, kind string) error {
	if err := cli.Validate(); err != nil {
		return err
	}
	if cli.Metrics != "" && kind == "summary" {
		return fmt.Errorf("-metrics describes a generated trace; it conflicts with -kind summary")
	}
	return nil
}

// powerMetrics records a generated power trace's statistics.
func powerMetrics(reg *obs.Registry, tr *trace.Sampled) {
	dur := tr.Duration()
	reg.Counter("trace_power_samples_total").Add(int64(len(tr.Samples)))
	reg.Gauge("trace_duration_seconds").Set(dur)
	reg.Gauge("trace_power_mean_watts").Set(trace.MeanPower(tr, dur, tr.Dt))
	reg.Gauge("trace_power_max_watts").Set(trace.MaxPower(tr, dur, tr.Dt))
}

// eventMetrics records a generated event trace's statistics.
func eventMetrics(reg *obs.Registry, tr *trace.EventTrace) {
	reg.Counter("trace_events_total").Add(int64(len(tr.Events)))
	reg.Counter("trace_events_interesting_total").Add(int64(tr.CountInteresting()))
	reg.Gauge("trace_duration_seconds").Set(tr.Duration())
	reg.Gauge("trace_interesting_seconds").Set(tr.InterestingSeconds())
}

func main() {
	var (
		kind     = flag.String("kind", "solar", "trace kind: solar, rf, events, or summary")
		duration = flag.Float64("duration", 3600, "solar: trace duration in seconds")
		peak     = flag.Float64("peak", 0, "solar: override clear-sky peak power in watts (0 = default)")
		n        = flag.Int("n", 300, "events: number of events")
		maxdur   = flag.Float64("maxdur", 60, "events: maximum event duration in seconds (environment knob)")
		seed     = flag.Int64("seed", 42, "generator seed")
		out      = flag.String("o", "", "output file (default stdout)")
		in       = flag.String("in", "", "summary: input trace file")
		metOut   = flag.String("metrics", "", "write generated-trace statistics to this file")
		pprofOn  = flag.String("pprof", "", "serve net/http/pprof on this host:port while generating")
	)
	flag.Parse()

	cli := obs.CLI{Metrics: *metOut, Pprof: *pprofOn}
	if err := validateObsFlags(cli, *kind); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if addr, stop, err := cli.StartPprof(); err != nil {
		fatal(err)
	} else if addr != "" {
		defer stop()
		fmt.Fprintf(os.Stderr, "pprof: http://%s/debug/pprof/\n", addr)
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	reg := obs.NewRegistry()
	switch *kind {
	case "solar":
		cfg := trace.DefaultSolarConfig(*duration, *seed)
		if *peak > 0 {
			cfg.PeakPower = *peak
		}
		tr := trace.GenerateSolar(cfg)
		powerMetrics(reg, tr)
		if err := trace.WritePower(w, tr); err != nil {
			fatal(err)
		}
	case "rf":
		tr := trace.GenerateRF(trace.DefaultRFConfig(*duration, *seed))
		powerMetrics(reg, tr)
		if err := trace.WritePower(w, tr); err != nil {
			fatal(err)
		}
	case "events":
		tr := trace.GenerateEvents(trace.DefaultEventConfig(*n, *maxdur, *seed))
		eventMetrics(reg, tr)
		if err := trace.WriteEvents(w, tr); err != nil {
			fatal(err)
		}
	case "summary":
		if *in == "" {
			fatal(fmt.Errorf("summary requires -in FILE"))
		}
		if err := summarize(*in, w); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown kind %q", *kind))
	}
	if cli.Metrics != "" {
		if err := obs.WriteMetricsFile(cli.Metrics, reg); err != nil {
			fatal(err)
		}
	}
}

// summarize sniffs the file kind and prints human-readable statistics.
func summarize(path string, w io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var sniff struct {
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal(data, &sniff); err != nil {
		return fmt.Errorf("tracegen: not a trace file: %w", err)
	}
	switch sniff.Kind {
	case "sampled-power":
		tr, err := trace.ReadPower(bytes.NewReader(data))
		if err != nil {
			return err
		}
		dur := tr.Duration()
		fmt.Fprintf(w, "power trace: %d samples, %.0f s, mean %.1f mW, max %.1f mW\n",
			len(tr.Samples), dur,
			trace.MeanPower(tr, dur, tr.Dt)*1e3, trace.MaxPower(tr, dur, tr.Dt)*1e3)
	case "events":
		tr, err := trace.ReadEvents(bytes.NewReader(data))
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "event trace: %d events over %.0f s, %d interesting (%.0f s of interesting activity)\n",
			len(tr.Events), tr.Duration(), tr.CountInteresting(), tr.InterestingSeconds())
	default:
		return fmt.Errorf("tracegen: unknown trace kind %q", sniff.Kind)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
