// Command fleetbench measures fleet-scale simulation throughput and memory,
// and writes the evidence file BENCH_fleet.json: devices/s and peak heap at
// each population size, plus a digest of the aggregate so two machines can
// confirm they computed the identical fleet.
//
// Usage:
//
//	fleetbench [-sizes 10000,100000,1000000] [-system qz | -policy NAME] [-env less-crowded]
//	           [-stepper lockstep|event] [-jitter 0.1] [-seed 42] [-shard N]
//	           [-faults SPEC] [-temp SPEC] [-meascost SPEC]
//	           [-out BENCH_fleet.json] [-progress]
package main

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"quetzal/internal/experiments"
	"quetzal/internal/faults"
	"quetzal/internal/fleet"
)

// sizeRun is one population-size measurement in the output file.
type sizeRun struct {
	Devices         int     `json:"devices"`
	Shards          int     `json:"shards"`
	ElapsedSec      float64 `json:"elapsed_sec"`
	DevicesPerSec   float64 `json:"devices_per_sec"`
	PeakHeapBytes   uint64  `json:"peak_heap_bytes"`
	PeakHeapMiB     float64 `json:"peak_heap_mib"`
	AggregateSHA256 string  `json:"aggregate_sha256"`
}

// benchFile is the BENCH_fleet.json schema.
type benchFile struct {
	Description string         `json:"description"`
	Environment map[string]any `json:"environment"`
	Plan        string         `json:"plan"`
	Engine      string         `json:"engine"`
	Runs        []sizeRun      `json:"runs"`
	Notes       string         `json:"notes,omitempty"`
}

// resolveSystem merges the -system and -policy spellings of the controller
// dimension (aliases of one axis — the policy registry name).
func resolveSystem(system, policy string) (string, error) {
	if system != "" && policy != "" && system != policy {
		return "", fmt.Errorf("-system %q conflicts with -policy %q (they are aliases; set one)", system, policy)
	}
	if policy != "" {
		return policy, nil
	}
	if system != "" {
		return system, nil
	}
	return "qz", nil
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad size %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func main() {
	var (
		sizes    = flag.String("sizes", "10000,100000,1000000", "comma-separated fleet sizes to measure")
		system   = flag.String("system", "", `controller under test (default "qz")`)
		policyID = flag.String("policy", "", "alias for -system: the policy registry name")
		envName  = flag.String("env", "less-crowded", "sensing environment")
		jitter   = flag.Float64("jitter", 0.1, "per-device parameter jitter fraction")
		seed     = flag.Int64("seed", 42, "fleet seed")
		shardSz  = flag.Int("shard", 0, "devices per shard (0 = planner default); the digest must not depend on it")
		stepper  = flag.String("stepper", "lockstep", "time-advance engine: lockstep (default), event or fixed — aggregate_sha256 is identical for lockstep and event")
		out      = flag.String("out", "BENCH_fleet.json", "output file")
		progress = flag.Bool("progress", false, "log shard progress to stderr")
		notes    = flag.String("notes", "", "notes field for the output file")
		faultsF  = flag.String("faults", "", `fault injection: "task=PCT[%][,limit=K][,dropout=START+DUR[/PERIOD]][,stuck=HIGH[:LOW]]"`)
		tempF    = flag.String("temp", "", `junction temperature °C: "C[+SWING[/PERIOD]]"`)
		measF    = flag.String("meascost", "", `per-sample measurement cost: "NJ[:US]"`)
	)
	flag.Parse()

	ns, err := parseSizes(*sizes)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	systemID, err := resolveSystem(*system, *policyID)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	faultSpec, err := faults.FromFlags(*faultsF, *tempF, *measF)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	file := benchFile{
		Description: "Fleet-scale simulation benchmark: fleet.Run executes N heterogeneous devices " +
			"(per-device parameter jitter, correlated solar skies, per-device event traces) sharded " +
			"over the batch runner and folded in device order into the columnar accumulator. " +
			"devices_per_sec is end-to-end throughput including device construction; peak_heap_bytes " +
			"is the largest runtime HeapAlloc sampled at fold points — the bounded-RSS evidence: it " +
			"must stay O(window x shard), not O(devices). aggregate_sha256 digests the marshaled " +
			"Aggregate; it is invariant across shard sizes and worker counts (TestFleetDeterminism).",
		Environment: map[string]any{
			"goos":   runtime.GOOS,
			"goarch": runtime.GOARCH,
			"cpus":   runtime.NumCPU(),
			"go":     runtime.Version(),
		},
		Notes: *notes,
	}

	for i, n := range ns {
		spec := experiments.FleetSpec{
			Devices:   n,
			System:    systemID,
			Env:       *envName,
			Seed:      *seed,
			Engine:    *stepper,
			Jitter:    *jitter,
			ShardSize: *shardSz,
			Faults:    faultSpec,
		}
		plan, err := spec.Plan()
		if err != nil {
			fmt.Fprintf(os.Stderr, "fleetbench: %v\n", err)
			os.Exit(2)
		}
		if i == 0 {
			file.Plan = plan.String() // sizes vary; the rest of the plan is shared
			file.Engine = plan.Engine.String()
		}

		opts := fleet.Options{}
		if *progress {
			start := time.Now()
			last := 0
			opts.OnProgress = func(done, total int) {
				// At 1M devices a line per shard would be thousands of lines;
				// log at ~1% granularity.
				if done-last >= total/100 || done == total {
					last = done
					fmt.Fprintf(os.Stderr, "[%d] %d/%d devices (%.0f/s)\n",
						n, done, total, float64(done)/time.Since(start).Seconds())
				}
			}
		}
		fmt.Fprintf(os.Stderr, "fleetbench: %s\n", plan)
		agg, stats, err := fleet.Run(context.Background(), plan, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fleetbench: %v\n", err)
			os.Exit(1)
		}
		b, err := json.Marshal(agg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fleetbench: %v\n", err)
			os.Exit(1)
		}
		sum := sha256.Sum256(b)
		file.Runs = append(file.Runs, sizeRun{
			Devices:         stats.Devices,
			Shards:          stats.Shards,
			ElapsedSec:      stats.ElapsedSec,
			DevicesPerSec:   stats.DevicesPerSec,
			PeakHeapBytes:   stats.PeakHeapBytes,
			PeakHeapMiB:     float64(stats.PeakHeapBytes) / (1 << 20),
			AggregateSHA256: hex.EncodeToString(sum[:]),
		})
		fmt.Fprintf(os.Stderr, "fleetbench: %d devices in %.1fs (%.0f devices/s, peak heap %.1f MiB)\n",
			stats.Devices, stats.ElapsedSec, stats.DevicesPerSec, float64(stats.PeakHeapBytes)/(1<<20))
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(file); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "fleetbench: wrote %s\n", *out)
}
