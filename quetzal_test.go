package quetzal_test

import (
	"testing"

	"quetzal"
)

// TestFacadeEndToEnd drives the whole public API surface: profile → app →
// runtime → simulation, plus a baseline for comparison.
func TestFacadeEndToEnd(t *testing.T) {
	profile := quetzal.Apollo4()
	app := profile.PersonDetectionApp()

	rt, err := quetzal.NewRuntime(quetzal.RuntimeConfig{
		App:           app,
		CapturePeriod: 1,
	})
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}

	events := quetzal.GenerateEvents(quetzal.DefaultEventConfig(40, 60, 1))
	power := quetzal.GenerateSolar(quetzal.DefaultSolarConfig(events.Duration()+120, 2))

	res, err := quetzal.Simulate(quetzal.SimConfig{
		Profile:    profile,
		App:        app,
		Controller: rt,
		Power:      power,
		Events:     events,
		Seed:       3,
	})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if err := res.Check(); err != nil {
		t.Fatalf("inconsistent results: %v", err)
	}
	if res.JobsCompleted == 0 || res.InterestingArrivals == 0 {
		t.Fatalf("nothing happened: %+v", res)
	}

	naApp := profile.PersonDetectionApp()
	na, err := quetzal.NoAdapt(naApp)
	if err != nil {
		t.Fatalf("NoAdapt: %v", err)
	}
	naRes, err := quetzal.Simulate(quetzal.SimConfig{
		Profile:    profile,
		App:        naApp,
		Controller: na,
		Power:      power,
		Events:     events,
		Seed:       3,
	})
	if err != nil {
		t.Fatalf("Simulate(NoAdapt): %v", err)
	}
	if res.InterestingDiscarded() >= naRes.InterestingDiscarded() {
		t.Errorf("quetzal discarded %d, noadapt %d — want quetzal lower",
			res.InterestingDiscarded(), naRes.InterestingDiscarded())
	}
}

func TestFacadeConstructors(t *testing.T) {
	app := quetzal.MSP430().PersonDetectionApp()
	if _, err := quetzal.CatNap(app); err != nil {
		t.Errorf("CatNap: %v", err)
	}
	if _, err := quetzal.AlwaysDegrade(app); err != nil {
		t.Errorf("AlwaysDegrade: %v", err)
	}
	if _, err := quetzal.FixedThreshold(app, 0.5); err != nil {
		t.Errorf("FixedThreshold: %v", err)
	}
	if _, err := quetzal.FixedThreshold(app, 2); err == nil {
		t.Error("FixedThreshold accepted frac > 1")
	}
	if _, err := quetzal.ProteanZygarde(app, 0.5, false); err != nil {
		t.Errorf("ProteanZygarde: %v", err)
	}
	if _, err := quetzal.ProteanZygarde(app, 0.1, true); err != nil {
		t.Errorf("ProteanZygarde oracle: %v", err)
	}
	for _, p := range []quetzal.Policy{quetzal.EnergySJF(), quetzal.FCFS(), quetzal.LCFS(), quetzal.CaptureOrder()} {
		if p.Name() == "" {
			t.Error("policy with empty name")
		}
	}
	if quetzal.NewInputBuffer(4).Capacity() != 4 {
		t.Error("NewInputBuffer capacity mismatch")
	}
	if quetzal.DefaultStoreConfig().Capacitance != 0.033 {
		t.Error("DefaultStoreConfig is not the paper's 33 mF part")
	}
}

// TestCustomApplication builds an app from scratch through the facade —
// the path a downstream user takes for their own workload.
func TestCustomApplication(t *testing.T) {
	sense := &quetzal.Task{
		Name: "classify-audio",
		Kind: quetzal.Classify,
		Options: []quetzal.Option{
			{Name: "large", Texe: 0.5, Pexe: 0.008, FalseNegative: 0.05, FalsePositive: 0.04},
			{Name: "small", Texe: 0.1, Pexe: 0.006, FalseNegative: 0.20, FalsePositive: 0.12},
		},
	}
	notify := &quetzal.Task{
		Name: "notify",
		Kind: quetzal.Transmit,
		Options: []quetzal.Option{
			{Name: "clip", Texe: 0.6, Pexe: 0.09, HighQuality: true},
			{Name: "flag", Texe: 0.05, Pexe: 0.03},
		},
	}
	app := &quetzal.App{
		Name: "acoustic-monitor",
		Jobs: []*quetzal.Job{
			{ID: 0, Name: "detect", Tasks: []*quetzal.Task{sense}, SpawnJobID: 1},
			{ID: 1, Name: "notify", Tasks: []*quetzal.Task{notify}, SpawnJobID: quetzal.NoSpawn},
		},
		EntryJobID:  0,
		CaptureTexe: 0.02,
		CapturePexe: 0.004,
	}
	if err := app.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	rt, err := quetzal.NewRuntime(quetzal.RuntimeConfig{App: app, CapturePeriod: 2})
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	events := quetzal.GenerateEvents(quetzal.DefaultEventConfig(20, 30, 5))
	res, err := quetzal.Simulate(quetzal.SimConfig{
		Profile:       quetzal.Apollo4(),
		App:           app,
		Controller:    rt,
		Power:         quetzal.ConstantPower{P: 0.01},
		Events:        events,
		CapturePeriod: 2,
		Seed:          6,
	})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if res.JobsCompleted == 0 {
		t.Error("custom app completed no jobs")
	}
}
