package sched

// Property test for Algorithm 1 under the hardware module's quantised
// measurements across the characterised temperature range (§5.1). The
// exact-division estimator is the reference: for the same task mix, the same
// buffer and the same input power, the quantised (SeTable/Algorithm 3) choice
// may only differ from the exact choice when the exact E[S] gap between the
// candidates is inside the measurement-error band — and the regret of such a
// swap is bounded by that band. When every alternative's exact E[S] exceeds
// the winner's by more than the band, the two choices must be identical.
//
// The band is measured per mix (the worst per-task Se2e relative error), and
// the sweep also re-asserts the paper's accuracy figures at the Se2e level:
// mean error ≤ 5.5 % at the 42 °C design point and every sample within the
// two-sided quantisation limit over 25–50 °C. All eight fractional-exponent
// b-values (the low three bits of d2−d1) must be exercised by the sweep, or
// the property ran on too narrow a code range to mean anything.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"quetzal/internal/buffer"
	"quetzal/internal/circuit"
	"quetzal/internal/faults"
	"quetzal/internal/model"
)

// quantMix is one generated scenario: an app, the shared input power, and
// the paired quantised/exact estimators for it at one temperature.
type quantMix struct {
	app     *model.App
	buf     *buffer.Buffer
	hw      *fakeEstimator
	exact   *fakeEstimator
	maxErr  float64 // worst per-task Se2e relative error in the mix
	bValues map[int]bool
}

// quantisedMix builds a random app (2–5 jobs, 1–3 tasks) and derives both
// estimators from the same physical quantities: the hardware one through the
// diode/ADC module at tempC (profiling and runtime at the same temperature,
// the §5.1 error-bound regime), the exact one through floating-point
// division. Powers are drawn inside the module's dynamic range.
func quantisedMix(rng *rand.Rand, tempC float64) quantMix {
	cfg := circuit.DefaultConfig()
	cfg.TempC = tempC
	m := circuit.New(cfg)

	pin := 0.002 + 0.06*rng.Float64() // watts; d1 stays strictly positive
	d1 := m.CodeForPower(pin)

	numJobs := 2 + rng.Intn(4)
	jobs := make([]*model.Job, numJobs)
	mix := quantMix{
		hw:      &fakeEstimator{se2e: map[[3]int]float64{}, prob: map[[2]int]float64{}},
		exact:   &fakeEstimator{se2e: map[[3]int]float64{}, prob: map[[2]int]float64{}},
		bValues: map[int]bool{},
	}
	for j := 0; j < numJobs; j++ {
		numTasks := 1 + rng.Intn(3)
		tasks := make([]*model.Task, numTasks)
		for ti := 0; ti < numTasks; ti++ {
			texe := 0.05 + 2*rng.Float64()
			// Ratios up to ~4× input power cover both the compute-bound and
			// charge-bound regimes the paper characterises.
			pexe := pin * (0.5 + 3.5*rng.Float64())
			tasks[ti] = &model.Task{
				Name:    fmt.Sprintf("j%dt%d", j, ti),
				Options: []model.Option{{Name: fmt.Sprintf("j%dt%do0", j, ti), Texe: texe, Pexe: pexe}},
			}
			d2 := m.CodeForPower(pexe)
			hwS := circuit.NewSeTable(texe, d2).Se2e(d1)
			exS := circuit.Se2eExact(texe, pexe, pin)
			mix.hw.se2e[[3]int{j, ti, 0}] = hwS
			mix.exact.se2e[[3]int{j, ti, 0}] = exS
			if rel := math.Abs(hwS-exS) / exS; rel > mix.maxErr {
				mix.maxErr = rel
			}
			if d2 > d1 {
				mix.bValues[(int(d2)-int(d1))&0x07] = true
			}
			p := 0.1 * float64(1+rng.Intn(10))
			mix.hw.prob[[2]int{j, ti}] = p
			mix.exact.prob[[2]int{j, ti}] = p
		}
		jobs[j] = &model.Job{ID: j, Name: fmt.Sprintf("job%d", j), Tasks: tasks, SpawnJobID: model.NoSpawn}
	}
	mix.app = &model.App{Name: "quant", Jobs: jobs, EntryJobID: 0}
	if err := mix.app.Validate(); err != nil {
		panic("quantisedMix built an invalid app: " + err.Error())
	}

	mix.buf = buffer.New(16)
	for i := 0; i < 1+rng.Intn(10); i++ {
		mix.buf.Push(buffer.Input{
			Seq:        uint64(i),
			CapturedAt: float64(i), // distinct ages keep both tie-breaks total
			JobID:      rng.Intn(numJobs),
		}, false)
	}
	return mix
}

// checkQuantisedChoice verifies the bounded-regret and separation properties
// for one mix and returns the per-mix error band for aggregation.
func checkQuantisedChoice(mix quantMix) error {
	dHW := EnergySJF{}.Select(mix.app, mix.buf, mix.hw)
	dEX := EnergySJF{}.Select(mix.app, mix.buf, mix.exact)
	if dHW.BufferIndex < 0 || dEX.BufferIndex < 0 {
		return fmt.Errorf("no decision for a non-empty buffer: hw=%+v exact=%+v", dHW, dEX)
	}

	// Exact E[S] of every schedulable job, and the exact optimum.
	exES := map[int]float64{}
	best := math.Inf(1)
	for _, id := range mix.buf.JobIDs() {
		es := ExpectedService(mix.app.JobByID(id), mix.exact, nil)
		exES[id] = es
		if es < best {
			best = es
		}
	}

	// Every per-task estimate is within ±maxErr of exact, so E[S] (a convex
	// combination) is too, and a quantised argmin swap can cost at most the
	// two-sided band (1+ε)/(1−ε) in exact E[S].
	band := (1 + mix.maxErr) / (1 - mix.maxErr)
	if got := exES[dHW.JobID]; got > best*band*(1+1e-12) {
		return fmt.Errorf("quantised choice job %d has exact E[S] %g; exact optimum %g exceeds the ±%.2f%% band (factor %g)",
			dHW.JobID, got, best, 100*mix.maxErr, band)
	}

	// Separation: when every alternative is outside the band, quantisation
	// cannot reorder the argmin — the decisions must agree exactly.
	separated := true
	for id, es := range exES {
		if id != dEX.JobID && es <= best*band {
			separated = false
			break
		}
	}
	// (ExpectedS legitimately differs between the estimators; the choice —
	// job and buffered input — must not.)
	if separated && (dHW.JobID != dEX.JobID || dHW.BufferIndex != dEX.BufferIndex) {
		return fmt.Errorf("separated mix (band %g) still diverged: hw=%+v exact=%+v", band, dHW, dEX)
	}
	return nil
}

// TestEnergySJFQuantisedChoiceAcrossTemperature sweeps 25–50 °C (including
// the 42 °C design point the paper quotes its ≤ 5.5 % figure at) and many
// random mixes per temperature.
func TestEnergySJFQuantisedChoiceAcrossTemperature(t *testing.T) {
	allB := map[int]bool{}
	var sumErr, sumDesign float64
	var nErr, nDesign int
	for _, tempC := range []float64{faults.MinTempC, 30, 35, 40, 42, 45, faults.MaxTempC} {
		for seed := int64(0); seed < 120; seed++ {
			rng := rand.New(rand.NewSource(seed*1000 + int64(tempC)))
			mix := quantisedMix(rng, tempC)
			if err := checkQuantisedChoice(mix); err != nil {
				t.Fatalf("tempC=%g seed=%d: %v", tempC, seed, err)
			}
			for b := range mix.bValues {
				allB[b] = true
			}
			for k, exS := range mix.exact.se2e {
				rel := math.Abs(mix.hw.se2e[k]-exS) / exS
				sumErr += rel
				nErr++
				if tempC == 42 {
					sumDesign += rel
					nDesign++
				}
				// Worst single sample over 25–50 °C: the two-sided ADC
				// quantisation limit plus exponent-factor drift (§5.1).
				if rel > 0.15 {
					t.Fatalf("tempC=%g: per-task Se2e error %.4f exceeds the 15%% quantisation bound", tempC, rel)
				}
			}
		}
	}
	if mean := sumDesign / float64(nDesign); mean > 0.055 {
		t.Errorf("design-point (42°C) mean Se2e error = %.4f, want ≤ 0.055", mean)
	}
	if mean := sumErr / float64(nErr); mean > 0.075 {
		t.Errorf("25–50°C mean Se2e error = %.4f, want ≤ 0.075", mean)
	}
	if len(allB) != 8 {
		t.Errorf("sweep exercised %d of 8 fractional-exponent b-values (%v); the property ran on too narrow a code range", len(allB), allB)
	}
	t.Logf("Se2e error: design-point mean %.4f, range mean %.4f over %d samples, all 8 b-values covered",
		sumDesign/float64(nDesign), sumErr/float64(nErr), nErr)
}
