// Package sched implements Quetzal's Energy-aware Shortest-Job-First
// scheduling policy (paper §4.1, Algorithm 1) and the comparison policies
// from the evaluation (§6.1): First-Come-First-Served, Last-Come-First-
// Served, and capture-order processing.
//
// Energy-aware SJF selects the job with the smallest expected end-to-end
// service time E[S] = Σᵢ p(taskᵢ) · S_e2e(taskᵢ, P_in). What makes it
// energy-aware is the S_e2e estimate, which folds the energy-recharge time
// at the *current* input power into each task's latency; the estimate is
// supplied through the Estimator interface so that the same policy code can
// run against the hardware-module-backed estimator, the exact-division
// estimator, or the Avg-S_e2e baseline estimator.
package sched

import (
	"math"

	"quetzal/internal/buffer"
	"quetzal/internal/model"
)

// Estimator supplies the per-task quantities Algorithm 1 consumes. optIdx
// selects a degradation option (0 = highest quality).
type Estimator interface {
	// Se2e estimates the end-to-end service time in seconds of one task
	// option at the current input power.
	Se2e(jobID, taskIdx, optIdx int) float64
	// Probability estimates the task's execution probability within its
	// job (the tracked fraction of recent jobs in which the task ran).
	Probability(jobID, taskIdx int) float64
}

// ExpectedService computes E[S] for a job at the given quality assignment:
// the sum over tasks of execution probability × S_e2e. qualityFor returns
// the option index to cost each task at; passing nil costs every task at
// its highest quality (option 0).
func ExpectedService(job *model.Job, est Estimator, qualityFor func(taskIdx int) int) float64 {
	sum := 0.0
	for i := range job.Tasks {
		opt := 0
		if qualityFor != nil {
			opt = qualityFor(i)
		}
		sum += est.Probability(job.ID, i) * est.Se2e(job.ID, i, opt)
	}
	return sum
}

// Decision is a scheduling outcome: which buffered input to process.
type Decision struct {
	BufferIndex int     // index into the buffer, -1 if nothing to schedule
	JobID       int     // job that will process the input
	ExpectedS   float64 // the policy's E[S] estimate for that job (0 if not computed)
}

// none is the empty decision.
var none = Decision{BufferIndex: -1, JobID: -1}

// Policy selects the next input to process from the buffer.
type Policy interface {
	Name() string
	Select(app *model.App, buf *buffer.Buffer, est Estimator) Decision
}

// EnergySJF is Algorithm 1: pick the job with minimal E[S]; break ties by
// older buffered input.
type EnergySJF struct{}

// Name implements Policy.
func (EnergySJF) Name() string { return "energy-sjf" }

// Select implements Policy.
func (EnergySJF) Select(app *model.App, buf *buffer.Buffer, est Estimator) Decision {
	if buf.Len() == 0 {
		return none
	}
	best := none
	bestES := math.Inf(1)
	bestAge := math.Inf(1) // CapturedAt of the candidate input; older wins ties
	for _, jobID := range buf.JobIDs() {
		job := app.JobByID(jobID)
		if job == nil {
			continue // stale tag; let other jobs proceed
		}
		es := ExpectedService(job, est, nil)
		idx := buf.OldestForJob(jobID)
		in, err := buf.At(idx)
		if err != nil {
			continue
		}
		if es < bestES || (es == bestES && in.CapturedAt < bestAge) {
			bestES = es
			bestAge = in.CapturedAt
			best = Decision{BufferIndex: idx, JobID: jobID, ExpectedS: es}
		}
	}
	return best
}

// FCFS processes inputs in queue order (oldest enqueue first) — the order a
// NoAdapt system uses (§6.2: "The NoAdapt system processed each stored image
// in the order they were captured").
type FCFS struct{}

// Name implements Policy.
func (FCFS) Name() string { return "fcfs" }

// Select implements Policy.
func (FCFS) Select(app *model.App, buf *buffer.Buffer, est Estimator) Decision {
	in, err := buf.Peek()
	if err != nil {
		return none
	}
	return Decision{BufferIndex: 0, JobID: in.JobID, ExpectedS: expectedIfPossible(app, in.JobID, est)}
}

// LCFS processes the most recently enqueued input first.
type LCFS struct{}

// Name implements Policy.
func (LCFS) Name() string { return "lcfs" }

// Select implements Policy.
func (LCFS) Select(app *model.App, buf *buffer.Buffer, est Estimator) Decision {
	n := buf.Len()
	if n == 0 {
		return none
	}
	in, err := buf.At(n - 1)
	if err != nil {
		return none
	}
	return Decision{BufferIndex: n - 1, JobID: in.JobID, ExpectedS: expectedIfPossible(app, in.JobID, est)}
}

// CaptureOrder processes the input with the oldest capture time, regardless
// of which job it awaits (Fig 12's "processing inputs in the same order as
// they are captured").
type CaptureOrder struct{}

// Name implements Policy.
func (CaptureOrder) Name() string { return "capture-order" }

// Select implements Policy.
func (CaptureOrder) Select(app *model.App, buf *buffer.Buffer, est Estimator) Decision {
	n := buf.Len()
	if n == 0 {
		return none
	}
	bestIdx := 0
	best, _ := buf.At(0)
	for i := 1; i < n; i++ {
		in, _ := buf.At(i)
		if in.CapturedAt < best.CapturedAt {
			best, bestIdx = in, i
		}
	}
	return Decision{BufferIndex: bestIdx, JobID: best.JobID, ExpectedS: expectedIfPossible(app, best.JobID, est)}
}

func expectedIfPossible(app *model.App, jobID int, est Estimator) float64 {
	if est == nil {
		return 0
	}
	job := app.JobByID(jobID)
	if job == nil {
		return 0
	}
	return ExpectedService(job, est, nil)
}
