package sched

import (
	"testing"

	"quetzal/internal/buffer"
	"quetzal/internal/model"
)

// fakeEstimator returns canned Se2e per (jobID, taskIdx, optIdx) and
// probability 1 unless overridden.
type fakeEstimator struct {
	se2e map[[3]int]float64
	prob map[[2]int]float64
}

func (f *fakeEstimator) Se2e(jobID, taskIdx, optIdx int) float64 {
	if v, ok := f.se2e[[3]int{jobID, taskIdx, optIdx}]; ok {
		return v
	}
	return 1
}

func (f *fakeEstimator) Probability(jobID, taskIdx int) float64 {
	if v, ok := f.prob[[2]int{jobID, taskIdx}]; ok {
		return v
	}
	return 1
}

func twoJobApp() *model.App {
	opt := func(name string, texe float64) model.Option {
		return model.Option{Name: name, Texe: texe, Pexe: 0.01}
	}
	ml := &model.Task{Name: "ml", Kind: model.Classify,
		Options: []model.Option{opt("hq", 2), opt("lq", 0.2)}}
	radio := &model.Task{Name: "radio", Kind: model.Transmit,
		Options: []model.Option{opt("full", 0.8), opt("byte", 0.05)}}
	return &model.App{
		Name: "t",
		Jobs: []*model.Job{
			{ID: 0, Name: "detect", Tasks: []*model.Task{ml}, SpawnJobID: 1},
			{ID: 1, Name: "report", Tasks: []*model.Task{radio}, SpawnJobID: model.NoSpawn},
		},
		EntryJobID: 0, CaptureTexe: 0.01, CapturePexe: 0.01,
	}
}

func push(b *buffer.Buffer, seq uint64, captured float64, job int) {
	b.Push(buffer.Input{Seq: seq, CapturedAt: captured, JobID: job}, false)
}

func TestExpectedServiceWeightsByProbability(t *testing.T) {
	app := twoJobApp()
	est := &fakeEstimator{
		se2e: map[[3]int]float64{{0, 0, 0}: 4},
		prob: map[[2]int]float64{{0, 0}: 0.5},
	}
	if got := ExpectedService(app.JobByID(0), est, nil); got != 2 {
		t.Errorf("ExpectedService = %g, want 2 (0.5 × 4)", got)
	}
}

func TestExpectedServiceQualitySelector(t *testing.T) {
	app := twoJobApp()
	est := &fakeEstimator{se2e: map[[3]int]float64{
		{0, 0, 0}: 10,
		{0, 0, 1}: 1,
	}}
	got := ExpectedService(app.JobByID(0), est, func(int) int { return 1 })
	if got != 1 {
		t.Errorf("degraded ExpectedService = %g, want 1", got)
	}
}

func TestEnergySJFPicksShortestJob(t *testing.T) {
	app := twoJobApp()
	b := buffer.New(10)
	push(b, 0, 0, 0) // detect input, older
	push(b, 1, 5, 1) // report input, newer
	est := &fakeEstimator{se2e: map[[3]int]float64{
		{0, 0, 0}: 10, // detect is slow
		{1, 0, 0}: 2,  // report is fast
	}}
	d := EnergySJF{}.Select(app, b, est)
	if d.JobID != 1 {
		t.Fatalf("selected job %d, want 1 (shorter)", d.JobID)
	}
	in, _ := b.At(d.BufferIndex)
	if in.Seq != 1 {
		t.Errorf("selected seq %d, want 1", in.Seq)
	}
	if d.ExpectedS != 2 {
		t.Errorf("ExpectedS = %g, want 2", d.ExpectedS)
	}
}

func TestEnergySJFFlipsWithPower(t *testing.T) {
	// The paper's motivating case: at low input power ML is faster
	// end-to-end than the radio; at high power the radio is faster.
	app := twoJobApp()
	b := buffer.New(10)
	push(b, 0, 0, 0)
	push(b, 1, 1, 1)

	lowPower := &fakeEstimator{se2e: map[[3]int]float64{
		{0, 0, 0}: 6,  // ML: 24 mJ / 4 mW
		{1, 0, 0}: 20, // radio: 80 mJ / 4 mW
	}}
	if d := (EnergySJF{}).Select(app, b, lowPower); d.JobID != 0 {
		t.Errorf("low power: selected job %d, want 0 (ML)", d.JobID)
	}

	highPower := &fakeEstimator{se2e: map[[3]int]float64{
		{0, 0, 0}: 2.0, // ML compute-bound
		{1, 0, 0}: 0.8, // radio compute-bound
	}}
	if d := (EnergySJF{}).Select(app, b, highPower); d.JobID != 1 {
		t.Errorf("high power: selected job %d, want 1 (radio)", d.JobID)
	}
}

func TestEnergySJFTieBreaksByAge(t *testing.T) {
	app := twoJobApp()
	b := buffer.New(10)
	push(b, 0, 50, 0)       // newer capture awaiting detect
	push(b, 1, 10, 1)       // older capture awaiting report
	est := &fakeEstimator{} // all Se2e = 1: tie
	d := EnergySJF{}.Select(app, b, est)
	if d.JobID != 1 {
		t.Errorf("tie broken to job %d, want 1 (older input)", d.JobID)
	}
}

func TestEnergySJFPicksOldestInputWithinJob(t *testing.T) {
	app := twoJobApp()
	b := buffer.New(10)
	push(b, 5, 30, 0)
	push(b, 6, 10, 0)
	d := EnergySJF{}.Select(app, b, &fakeEstimator{})
	in, _ := b.At(d.BufferIndex)
	if in.Seq != 6 {
		t.Errorf("selected seq %d, want 6 (older capture)", in.Seq)
	}
}

func TestEnergySJFEmptyBuffer(t *testing.T) {
	app := twoJobApp()
	d := EnergySJF{}.Select(app, buffer.New(4), &fakeEstimator{})
	if d.BufferIndex != -1 {
		t.Errorf("empty buffer decision = %+v, want BufferIndex -1", d)
	}
}

func TestEnergySJFSkipsUnknownJobTags(t *testing.T) {
	app := twoJobApp()
	b := buffer.New(10)
	push(b, 0, 0, 99) // stale tag, no such job
	push(b, 1, 1, 0)
	d := EnergySJF{}.Select(app, b, &fakeEstimator{})
	if d.JobID != 0 {
		t.Errorf("selected job %d, want 0 (unknown tags skipped)", d.JobID)
	}
}

func TestFCFS(t *testing.T) {
	app := twoJobApp()
	b := buffer.New(10)
	push(b, 0, 5, 1)
	push(b, 1, 2, 0)
	d := FCFS{}.Select(app, b, &fakeEstimator{})
	if d.BufferIndex != 0 || d.JobID != 1 {
		t.Errorf("FCFS = %+v, want front of queue (job 1)", d)
	}
	if e := (FCFS{}).Select(app, buffer.New(2), nil); e.BufferIndex != -1 {
		t.Errorf("FCFS on empty = %+v", e)
	}
}

func TestLCFS(t *testing.T) {
	app := twoJobApp()
	b := buffer.New(10)
	push(b, 0, 5, 1)
	push(b, 1, 2, 0)
	d := LCFS{}.Select(app, b, &fakeEstimator{})
	if d.BufferIndex != 1 || d.JobID != 0 {
		t.Errorf("LCFS = %+v, want back of queue (job 0)", d)
	}
	if e := (LCFS{}).Select(app, buffer.New(2), nil); e.BufferIndex != -1 {
		t.Errorf("LCFS on empty = %+v", e)
	}
}

func TestCaptureOrder(t *testing.T) {
	app := twoJobApp()
	b := buffer.New(10)
	push(b, 0, 50, 0)
	push(b, 1, 10, 1) // oldest capture, enqueued second
	push(b, 2, 30, 0)
	d := CaptureOrder{}.Select(app, b, &fakeEstimator{})
	in, _ := b.At(d.BufferIndex)
	if in.Seq != 1 {
		t.Errorf("CaptureOrder selected seq %d, want 1", in.Seq)
	}
	if e := (CaptureOrder{}).Select(app, buffer.New(2), nil); e.BufferIndex != -1 {
		t.Errorf("CaptureOrder on empty = %+v", e)
	}
}

func TestPolicyNames(t *testing.T) {
	cases := map[Policy]string{
		EnergySJF{}:    "energy-sjf",
		FCFS{}:         "fcfs",
		LCFS{}:         "lcfs",
		CaptureOrder{}: "capture-order",
	}
	for p, want := range cases {
		if got := p.Name(); got != want {
			t.Errorf("Name = %q, want %q", got, want)
		}
	}
}
