package sched

// Property tests for Algorithm 1. Rather than mirroring the implementation
// with an identical argmin (a tautology), each property states something the
// paper promises and checks it against randomized task mixes, input-power
// shifts and buffer contents:
//
//	P1  the picked job's E[S] is never worse than any schedulable alternative
//	P2  ties break deterministically toward the older buffered input
//	P3  within the picked job, the oldest capture is processed first
//	P4  the reported ExpectedS is the real E[S] of the picked job
//
// Failures found while randomizing are frozen as seeds in
// TestEnergySJFSeededRegressions so they stay fixed forever.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"quetzal/internal/buffer"
	"quetzal/internal/model"
)

// randomMix builds a random app (1–5 jobs, 1–3 tasks each, 1–4 options per
// task), a random estimator for it, and a random buffer tagged with its job
// ids. Se2e values are quantized to 0.25 s so E[S] ties happen often enough
// to exercise the tie-break, and probabilities to 0.1 for the same reason.
func randomMix(rng *rand.Rand) (*model.App, *fakeEstimator, *buffer.Buffer) {
	numJobs := 1 + rng.Intn(5)
	jobs := make([]*model.Job, numJobs)
	est := &fakeEstimator{se2e: map[[3]int]float64{}, prob: map[[2]int]float64{}}
	for j := 0; j < numJobs; j++ {
		numTasks := 1 + rng.Intn(3)
		tasks := make([]*model.Task, numTasks)
		for ti := 0; ti < numTasks; ti++ {
			numOpts := 1 + rng.Intn(model.MaxOptions)
			opts := make([]model.Option, numOpts)
			for oi := range opts {
				opts[oi] = model.Option{
					Name: fmt.Sprintf("j%dt%do%d", j, ti, oi),
					Texe: 0.1 + rng.Float64(), Pexe: 0.01,
				}
				// The estimator models the current input power P_in: Se2e
				// is what the policy actually consumes.
				est.se2e[[3]int{j, ti, oi}] = 0.25 * float64(1+rng.Intn(16))
			}
			tasks[ti] = &model.Task{Name: fmt.Sprintf("j%dt%d", j, ti), Options: opts}
			est.prob[[2]int{j, ti}] = 0.1 * float64(1+rng.Intn(10))
		}
		// At most one degradable task per job (§5.2): trim extras to 1 option.
		seen := false
		for _, task := range tasks {
			if task.Degradable() {
				if seen {
					task.Options = task.Options[:1]
				}
				seen = true
			}
		}
		jobs[j] = &model.Job{ID: j, Name: fmt.Sprintf("job%d", j), Tasks: tasks, SpawnJobID: model.NoSpawn}
	}
	app := &model.App{Name: "prop", Jobs: jobs, EntryJobID: 0}
	if err := app.Validate(); err != nil {
		panic("randomMix built an invalid app: " + err.Error())
	}

	buf := buffer.New(16)
	n := 1 + rng.Intn(12)
	for i := 0; i < n; i++ {
		buf.Push(buffer.Input{
			Seq: uint64(i),
			// Quantized capture times force same-age candidates too.
			CapturedAt: float64(rng.Intn(8)),
			JobID:      rng.Intn(numJobs),
		}, false)
	}
	return app, est, buf
}

// checkEnergySJFProperties runs Select once and verifies P1–P4. It reports a
// descriptive error rather than failing, so callers can attach the seed.
func checkEnergySJFProperties(app *model.App, est *fakeEstimator, buf *buffer.Buffer) error {
	d := EnergySJF{}.Select(app, buf, est)
	if buf.Len() == 0 {
		if d.BufferIndex != -1 {
			return fmt.Errorf("empty buffer but decision %+v", d)
		}
		return nil
	}
	if d.BufferIndex < 0 || d.BufferIndex >= buf.Len() {
		return fmt.Errorf("decision index %d out of range [0,%d)", d.BufferIndex, buf.Len())
	}
	picked, err := buf.At(d.BufferIndex)
	if err != nil {
		return err
	}
	if picked.JobID != d.JobID {
		return fmt.Errorf("decision job %d but buffered input at %d is tagged %d", d.JobID, d.BufferIndex, picked.JobID)
	}

	// P4: the reported estimate is the picked job's true E[S].
	es := ExpectedService(app.JobByID(d.JobID), est, nil)
	if d.ExpectedS != es {
		return fmt.Errorf("reported E[S] %g != computed %g", d.ExpectedS, es)
	}

	// P1: no schedulable alternative has a strictly smaller E[S].
	// P2: among E[S]-tied alternatives, none has a strictly older input.
	for _, id := range buf.JobIDs() {
		job := app.JobByID(id)
		if job == nil {
			continue
		}
		alt := ExpectedService(job, est, nil)
		if alt < es {
			return fmt.Errorf("picked job %d with E[S] %g, but job %d offers %g", d.JobID, es, id, alt)
		}
		if alt == es {
			oldest, err := buf.At(buf.OldestForJob(id))
			if err != nil {
				return err
			}
			if oldest.CapturedAt < picked.CapturedAt {
				return fmt.Errorf("tie at E[S] %g: picked capture t=%g from job %d, job %d has t=%g",
					es, picked.CapturedAt, d.JobID, id, oldest.CapturedAt)
			}
		}
	}

	// P3: within the picked job, the decision points at the oldest capture.
	for i := 0; i < buf.Len(); i++ {
		in, _ := buf.At(i)
		if in.JobID == d.JobID && in.CapturedAt < picked.CapturedAt {
			return fmt.Errorf("job %d input at t=%g scheduled before older t=%g", d.JobID, picked.CapturedAt, in.CapturedAt)
		}
	}

	// Determinism: a second call on unchanged state must agree exactly.
	if again := (EnergySJF{}).Select(app, buf, est); again != d {
		return fmt.Errorf("non-deterministic: %+v then %+v", d, again)
	}
	return nil
}

func TestEnergySJFProperties(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		app, est, buf := randomMix(rng)
		if err := checkEnergySJFProperties(app, est, buf); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestEnergySJFSeededRegressions pins the mixes that exercised the subtle
// paths while the property was being developed: dense E[S] ties (forcing the
// age tie-break), single-job buffers, and many-option tasks. Any future
// counterexample seed belongs in this list.
func TestEnergySJFSeededRegressions(t *testing.T) {
	for _, seed := range []int64{3, 7, 19, 42, 101, 255, 1009, 90210} {
		rng := rand.New(rand.NewSource(seed))
		// Several draws per seed walk the generator through different
		// buffer/app shapes from the same starting point.
		for draw := 0; draw < 5; draw++ {
			app, est, buf := randomMix(rng)
			if err := checkEnergySJFProperties(app, est, buf); err != nil {
				t.Fatalf("seed %d draw %d: %v", seed, draw, err)
			}
		}
	}
}

// TestEnergySJFTieBreakIsTotal pins the corner the randomizer rarely hits
// head-on: every candidate tied on both E[S] and capture time. The decision
// must still be deterministic and must pick one of the tied inputs.
func TestEnergySJFTieBreakIsTotal(t *testing.T) {
	app := twoJobApp()
	est := &fakeEstimator{se2e: map[[3]int]float64{
		{0, 0, 0}: 2, {0, 0, 1}: 2,
		{1, 0, 0}: 2, {1, 0, 1}: 2,
	}}
	b := buffer.New(10)
	push(b, 0, 1.5, 0)
	push(b, 1, 1.5, 1) // same capture time, same E[S]
	first := EnergySJF{}.Select(app, b, est)
	if first.BufferIndex == -1 {
		t.Fatal("no decision for a non-empty buffer")
	}
	for i := 0; i < 10; i++ {
		if got := (EnergySJF{}).Select(app, b, est); got != first {
			t.Fatalf("call %d: decision flipped from %+v to %+v", i, first, got)
		}
	}
}

// TestEnergySJFPowerShiftFlipsDecision is the paper's motivating scenario as
// a property: E[S] folds recharge time at the current P_in, so scaling every
// Se2e by the same power-dependent factor must never change the winner,
// while task-dependent shifts may. The invariant under uniform scaling is
// checked across random mixes.
func TestEnergySJFPowerShiftFlipsDecision(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		app, est, buf := randomMix(rng)
		if buf.Len() == 0 {
			continue
		}
		base := EnergySJF{}.Select(app, buf, est)

		// Uniform power scaling: all Se2e double (half the input power,
		// roughly). Relative order is preserved, so the winner must hold.
		scaled := &fakeEstimator{se2e: map[[3]int]float64{}, prob: est.prob}
		for k, v := range est.se2e {
			scaled.se2e[k] = 2 * v
		}
		got := EnergySJF{}.Select(app, buf, scaled)
		if got.BufferIndex != base.BufferIndex || got.JobID != base.JobID {
			t.Fatalf("seed %d: uniform Se2e scaling flipped the decision: %+v → %+v", seed, base, got)
		}
		if base.ExpectedS > 0 && math.Abs(got.ExpectedS-2*base.ExpectedS) > 1e-12 {
			t.Fatalf("seed %d: scaled E[S] = %g, want %g", seed, got.ExpectedS, 2*base.ExpectedS)
		}
	}
}
