package store

// FuzzStoreRecord drives arbitrary bytes through the on-disk codec: decode
// must never panic (either a record comes back or an error does), and any
// successful decode must re-encode to exactly the bytes it consumed — the
// canonical-framing property the whole torn-tail story rests on.
// TestCodecRoundTrip is the constructive half: encode(decode(x)) == x for
// generated records.

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func FuzzStoreRecord(f *testing.F) {
	// Seed corpus: a well-formed record, an empty-key/payload record, a
	// torn prefix, a corrupt-magic frame, and record-plus-garbage.
	enc, err := appendRecord(nil, Record{
		ID:      "00deadbeef00cafe",
		Key:     "qz/crowded events=7",
		Payload: []byte(`{"JobsCompleted":8}`),
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(enc)
	small, _ := appendRecord(nil, Record{ID: "0123456789abcdef"})
	f.Add(small)
	f.Add(enc[:len(enc)/2])
	f.Add(append([]byte("QZS0"), enc[4:]...))
	f.Add(append(append([]byte{}, enc...), 0xde, 0xad))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, b []byte) {
		rec, n, err := decodeRecord(b)
		if err != nil {
			if !errors.Is(err, ErrTornTail) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decode error is neither torn nor corrupt: %v", err)
			}
			return
		}
		if n < headerLen || n > len(b) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(b))
		}
		re, err := appendRecord(nil, rec)
		if err != nil {
			t.Fatalf("re-encode of a decoded record failed: %v", err)
		}
		if !bytes.Equal(re, b[:n]) {
			t.Fatalf("framing not canonical:\n in  %x\n out %x", b[:n], re)
		}
		// Decoding the re-encoding converges immediately.
		rec2, n2, err := decodeRecord(re)
		if err != nil || n2 != n || rec2.ID != rec.ID || rec2.Key != rec.Key ||
			!bytes.Equal(rec2.Payload, rec.Payload) {
			t.Fatalf("decode(encode(decode(x))) diverged: %v %+v", err, rec2)
		}
	})
}

func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	hex := []byte("0123456789abcdef")
	for i := 0; i < 500; i++ {
		id := make([]byte, 8+rng.Intn(56))
		for j := range id {
			id[j] = hex[rng.Intn(len(hex))]
		}
		key := make([]byte, rng.Intn(200))
		rng.Read(key)
		payload := make([]byte, rng.Intn(4096))
		rng.Read(payload)
		want := Record{ID: string(id), Key: string(key), Payload: payload}

		enc, err := appendRecord(nil, want)
		if err != nil {
			t.Fatal(err)
		}
		got, n, err := decodeRecord(enc)
		if err != nil || n != len(enc) {
			t.Fatalf("decode: n=%d err=%v", n, err)
		}
		if got.ID != want.ID || got.Key != want.Key || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("round trip diverged at iteration %d", i)
		}
	}
}

func TestCodecRejectsOversize(t *testing.T) {
	if _, err := appendRecord(nil, Record{ID: ""}); err == nil {
		t.Error("empty id encoded")
	}
	if _, err := appendRecord(nil, Record{ID: string(make([]byte, maxIDLen+1))}); err == nil {
		t.Error("oversized id encoded")
	}
	if _, err := appendRecord(nil, Record{ID: "0011223344556677", Key: string(make([]byte, maxKeyLen+1))}); err == nil {
		t.Error("oversized key encoded")
	}
	if _, err := appendRecord(nil, Record{ID: "0011223344556677", Payload: make([]byte, maxPayload+1)}); err == nil {
		t.Error("oversized payload encoded")
	}
}
