// Package store is the durable, shared, content-addressed result store
// behind quetzald's scale-out: run results keyed by the sha256 run/fleet
// ids the service already derives, persisted to disk so restarts lose
// nothing and replicas pointed at one directory share a cache with no
// coordination service.
//
// Layout (one directory, shared by any number of replicas):
//
//	VERSION            format marker, written atomically (temp+fsync+rename)
//	seg-<nonce>.qzs    append-only record segments, one per open handle
//	claims/<id>.claim  O_EXCL execution-claim files
//
// Each handle appends to its own O_EXCL-created segment and fsyncs after
// every record, so writers never interleave and a published record is
// durable. Readers index every segment in the directory; on a miss the
// index refreshes incrementally (re-scanning only bytes past the last
// valid prefix), which is how one replica sees another's results. A crash
// mid-append leaves a torn tail that reopen and refresh reject — complete
// records before it stay served byte-identically — and a tail that later
// completes (a live writer caught mid-append) is picked up by the next
// refresh.
//
// Claims are advisory duplicate-execution suppression, not locks: Claim
// atomically creates claims/<id>.claim, the winner executes and publishes,
// and losers poll for the record. A claim abandoned by a crashed replica
// goes stale after StaleClaimTTL and can be reclaimed; correctness never
// depends on a claim, because executions are deterministic and Put is
// first-wins idempotent.
package store

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

const (
	versionFile    = "VERSION"
	versionContent = "quetzal result store v1\n"
	segSuffix      = ".qzs"
	claimsDir      = "claims"
	claimSuffix    = ".claim"
)

// DefaultStaleClaimTTL is how old a claim file must be before Claim treats
// it as abandoned by a dead replica and takes it over.
const DefaultStaleClaimTTL = 2 * time.Minute

// Stats is a point-in-time summary of a handle's view of the store.
type Stats struct {
	Records  int   // distinct ids indexed
	Segments int   // segment files seen
	TornSegs int   // segments whose scan stopped before EOF
	Hits     int64 // Get calls served
	Misses   int64 // Get calls that found nothing even after refresh
	Puts     int64 // records this handle appended
	DupPuts  int64 // Puts dropped because the id was already stored
}

// loc addresses one record inside a segment file.
type loc struct {
	file string
	off  int64
	n    int
}

// segState tracks how far into a segment the index has validly scanned.
type segState struct {
	scanned int64 // valid record-prefix length
	torn    bool  // last scan stopped before EOF
}

// Store is one handle on a store directory. Handles are safe for
// concurrent use; any number of handles (across processes) may share a
// directory.
type Store struct {
	// StaleClaimTTL is the age beyond which Claim treats an existing claim
	// file as abandoned. Set before concurrent use; defaults to
	// DefaultStaleClaimTTL.
	StaleClaimTTL time.Duration

	dir   string
	nonce string

	mu     sync.Mutex
	idx    map[string]loc
	segs   map[string]*segState
	w      *os.File // this handle's append segment; nil until first Put
	wName  string
	wOff   int64
	closed bool
	stats  Stats

	// breakWriteAfter, when positive, makes the next Put write only that
	// many bytes of the encoded record and then fail — the injected
	// failpoint the crash-recovery test uses to manufacture a torn tail
	// through the real write path.
	breakWriteAfter int
}

// Open opens (creating if needed) the store directory and indexes every
// complete record already in it.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, claimsDir), 0o777); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	vpath := filepath.Join(dir, versionFile)
	switch v, err := os.ReadFile(vpath); {
	case errors.Is(err, os.ErrNotExist):
		if err := writeFileAtomic(vpath, []byte(versionContent)); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	case err != nil:
		return nil, fmt.Errorf("store: %w", err)
	case string(v) != versionContent:
		return nil, fmt.Errorf("store: %s is not a v1 store (VERSION = %q)", dir, v)
	}
	var nb [8]byte
	if _, err := rand.Read(nb[:]); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		StaleClaimTTL: DefaultStaleClaimTTL,
		dir:           dir,
		nonce:         hex.EncodeToString(nb[:]),
		idx:           make(map[string]loc),
		segs:          make(map[string]*segState),
	}
	s.mu.Lock()
	err := s.refreshLocked()
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Len returns the number of distinct ids indexed.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.idx)
}

// Stats returns a snapshot of the handle's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Records = len(s.idx)
	st.Segments = len(s.segs)
	st.TornSegs = 0
	for _, seg := range s.segs {
		if seg.torn {
			st.TornSegs++
		}
	}
	return st
}

// Get returns the record for id. On an index miss it refreshes the index
// from disk first, so results published by other replicas are visible with
// no coordination beyond the shared directory.
func (s *Store) Get(id string) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.idx[id]
	if !ok {
		s.refreshLocked() //nolint:errcheck // a failed refresh is just a miss
		l, ok = s.idx[id]
	}
	if !ok {
		s.stats.Misses++
		return Record{}, false
	}
	rec, err := s.readRecordLocked(l)
	if err != nil {
		s.stats.Misses++
		return Record{}, false
	}
	s.stats.Hits++
	return rec, true
}

// Has reports whether id is indexed, refreshing on a miss like Get but
// without reading the record back (and without moving the hit/miss
// counters — it is a peek, not a serve).
func (s *Store) Has(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.idx[id]; ok {
		return true
	}
	s.refreshLocked() //nolint:errcheck
	_, ok := s.idx[id]
	return ok
}

// Put durably appends a record. Ids are content addresses, so Put is
// first-wins idempotent: a duplicate id is dropped without touching disk.
func (s *Store) Put(id, key string, payload []byte) error {
	if err := validateID(id); err != nil {
		return err
	}
	enc, err := appendRecord(nil, Record{ID: id, Key: key, Payload: payload})
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("store: closed")
	}
	_, dup := s.idx[id]
	if !dup {
		// Another handle may have published this id since our last scan;
		// first-wins must hold across replicas, not just within a handle.
		s.refreshLocked() //nolint:errcheck
		_, dup = s.idx[id]
	}
	if dup {
		s.stats.DupPuts++
		return nil
	}
	if s.w == nil {
		if err := s.openSegmentLocked(); err != nil {
			return err
		}
	}
	if s.breakWriteAfter > 0 && s.breakWriteAfter < len(enc) {
		// Injected failpoint: emulate a crash mid-append by writing a
		// partial record through the real path and wedging the handle.
		s.w.Write(enc[:s.breakWriteAfter]) //nolint:errcheck
		s.w.Sync()                         //nolint:errcheck
		s.closed = true
		return fmt.Errorf("store: injected crash after %d bytes", s.breakWriteAfter)
	}
	if _, err := s.w.Write(enc); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := s.w.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.idx[id] = loc{file: s.wName, off: s.wOff, n: len(enc)}
	s.wOff += int64(len(enc))
	s.segs[s.wName].scanned = s.wOff
	s.stats.Puts++
	return nil
}

// Claim attempts to take the execution claim for id. The winner gets
// won=true and must call release (idempotent) once the result is published
// or the execution failed. Losers get won=false and a no-op release. An
// existing claim older than StaleClaimTTL is treated as abandoned and
// taken over.
func (s *Store) Claim(id string) (won bool, release func()) {
	if validateID(id) != nil {
		return false, func() {}
	}
	path := filepath.Join(s.dir, claimsDir, id+claimSuffix)
	for attempt := 0; attempt < 2; attempt++ {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o666)
		if err == nil {
			f.WriteString(s.nonce) //nolint:errcheck
			f.Close()              //nolint:errcheck
			var once sync.Once
			return true, func() { once.Do(func() { os.Remove(path) }) } //nolint:errcheck
		}
		if !errors.Is(err, os.ErrExist) {
			return false, func() {}
		}
		fi, serr := os.Stat(path)
		if serr != nil {
			continue // released between create and stat: retry once
		}
		if time.Since(fi.ModTime()) < s.staleTTL() {
			return false, func() {}
		}
		os.Remove(path) //nolint:errcheck // stale claim from a dead replica
	}
	return false, func() {}
}

// Claimed reports whether an execution claim for id currently exists.
func (s *Store) Claimed(id string) bool {
	if validateID(id) != nil {
		return false
	}
	_, err := os.Stat(filepath.Join(s.dir, claimsDir, id+claimSuffix))
	return err == nil
}

// Refresh rescans the directory for records published by other handles.
// Get and Has already refresh on miss; Refresh exists for callers that
// want the index warm before a burst.
func (s *Store) Refresh() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.refreshLocked()
}

// Close releases the handle's append segment. Reads keep working; further
// Puts fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	if s.w == nil {
		return nil
	}
	err := s.w.Close()
	s.w = nil
	return err
}

func (s *Store) staleTTL() time.Duration {
	if s.StaleClaimTTL > 0 {
		return s.StaleClaimTTL
	}
	return DefaultStaleClaimTTL
}

// openSegmentLocked creates this handle's own append-only segment. O_EXCL
// guarantees no two handles ever share a write fd, which is the whole
// multi-writer story: concurrent replicas append to disjoint files.
func (s *Store) openSegmentLocked() error {
	name := "seg-" + s.nonce + segSuffix
	f, err := os.OpenFile(filepath.Join(s.dir, name), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o666)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		f.Close() //nolint:errcheck
		return err
	}
	s.w, s.wName, s.wOff = f, name, 0
	s.segs[name] = &segState{}
	return nil
}

// refreshLocked incrementally indexes every segment in the directory:
// only bytes past each segment's last valid prefix are re-read, so a
// refresh against an unchanged directory is a readdir plus stats.
func (s *Store) refreshLocked() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	var firstErr error
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			continue // racing deletion
		}
		seg := s.segs[name]
		if seg == nil {
			seg = &segState{}
			s.segs[name] = seg
		}
		if fi.Size() <= seg.scanned {
			continue
		}
		if err := s.scanSegmentLocked(name, seg); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// scanSegmentLocked decodes records from seg.scanned onward, extending the
// valid prefix one complete record at a time. A torn or corrupt tail stops
// the scan — scanned is left at the last complete record, so the tail is
// re-examined (and a completed append picked up) on the next refresh.
func (s *Store) scanSegmentLocked(name string, seg *segState) error {
	f, err := os.Open(filepath.Join(s.dir, name))
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close() //nolint:errcheck
	if _, err := f.Seek(seg.scanned, io.SeekStart); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	buf, err := io.ReadAll(f)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	off := seg.scanned
	seg.torn = false
	for len(buf) > 0 {
		rec, n, err := decodeRecord(buf)
		if err != nil {
			seg.torn = true // torn or corrupt: serve the valid prefix only
			break
		}
		if _, dup := s.idx[rec.ID]; !dup {
			s.idx[rec.ID] = loc{file: name, off: off, n: n}
		}
		off += int64(n)
		buf = buf[n:]
	}
	seg.scanned = off
	return nil
}

// readRecordLocked reads one indexed record back from disk and re-verifies
// its checksum, so a served record is always byte-authentic.
func (s *Store) readRecordLocked(l loc) (Record, error) {
	f, err := os.Open(filepath.Join(s.dir, l.file))
	if err != nil {
		return Record{}, err
	}
	defer f.Close() //nolint:errcheck
	buf := make([]byte, l.n)
	if _, err := io.ReadFull(io.NewSectionReader(f, l.off, int64(l.n)), buf); err != nil {
		return Record{}, err
	}
	rec, _, err := decodeRecord(buf)
	return rec, err
}

// validateID keeps ids sane as filenames (claims) and index keys: lowercase
// hex, 8–128 chars — exactly what the service's sha256-derived ids look
// like.
func validateID(id string) error {
	if len(id) < 8 || len(id) > maxIDLen {
		return fmt.Errorf("store: id length %d outside [8, %d]", len(id), maxIDLen)
	}
	for _, c := range id {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return fmt.Errorf("store: id %q is not lowercase hex", id)
		}
	}
	return nil
}

// writeFileAtomic writes data to path crash-safely: temp file in the same
// directory, fsync, rename, fsync the directory.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) //nolint:errcheck // no-op after a clean rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close() //nolint:errcheck
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close() //nolint:errcheck
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so entry creations/renames are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close() //nolint:errcheck
	return d.Sync()
}
