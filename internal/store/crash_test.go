package store

// The crash-recovery satellite: kill a store mid-write — once through the
// injected failpoint (the real Put path stops after N bytes) and once by
// truncating the segment file directly — then reopen and require that the
// torn tail is rejected while every complete record is served back
// byte-identically. A third case covers the live-writer race: a tail that
// is torn only because the writer has not finished yet must be picked up
// by a later refresh once the bytes complete.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// segPath returns the single segment file a one-writer store produced.
func segPath(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range entries {
		if filepath.Ext(e.Name()) == segSuffix {
			segs = append(segs, filepath.Join(dir, e.Name()))
		}
	}
	if len(segs) != 1 {
		t.Fatalf("segment files = %d, want 1", len(segs))
	}
	return segs[0]
}

// requireIntact asserts that every record in recs is served byte-identically
// and that the store indexes exactly len(recs) ids.
func requireIntact(t *testing.T, s *Store, recs []Record) {
	t.Helper()
	if s.Len() != len(recs) {
		t.Fatalf("Len = %d, want %d (torn tail leaked into the index?)", s.Len(), len(recs))
	}
	for _, want := range recs {
		got, ok := s.Get(want.ID)
		if !ok {
			t.Fatalf("complete record %s lost after crash", want.ID)
		}
		if got.Key != want.Key || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("record %s not byte-identical after crash:\n got %q %q\nwant %q %q",
				want.ID, got.Key, got.Payload, want.Key, want.Payload)
		}
	}
}

func TestCrashMidWriteFailpoint(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]Record, 5)
	for i := range recs {
		recs[i] = testRecord(i)
		mustPut(t, s, recs[i])
	}

	// Inject the crash: the next Put writes 13 bytes of real frame (magic +
	// part of the header) and dies. 13 < headerLen, so the tail is torn
	// inside the header itself.
	before, err := os.Stat(segPath(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	s.breakWriteAfter = 13
	s.mu.Unlock()
	if err := s.Put("00000000000000aa", "doomed", []byte("never lands")); err == nil {
		t.Fatal("failpoint Put succeeded")
	}
	// The handle is wedged (the "process" died); prove bytes really hit disk.
	if fi, err := os.Stat(segPath(t, dir)); err != nil || fi.Size() != before.Size()+13 {
		t.Fatalf("expected a 13-byte partial frame on disk: size=%v err=%v", fi.Size(), err)
	}

	// Reopen: torn tail rejected, all complete records intact.
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer s2.Close()
	requireIntact(t, s2, recs)
	if st := s2.Stats(); st.TornSegs != 1 {
		t.Fatalf("TornSegs = %d, want 1", st.TornSegs)
	}
	if _, ok := s2.Get("00000000000000aa"); ok {
		t.Fatal("the torn record was served")
	}

	// The survivor keeps publishing: new records land in its own segment
	// and coexist with the torn one.
	extra := testRecord(99)
	mustPut(t, s2, extra)
	requireIntact(t, s2, append(append([]Record{}, recs...), extra))
}

// TestCrashRealPartialFile truncates the segment at every byte offset
// inside the last record — header boundaries, mid-id, mid-payload — and
// requires each prefix to reopen cleanly with the earlier records intact.
func TestCrashRealPartialFile(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]Record, 3)
	for i := range recs {
		recs[i] = testRecord(i)
		mustPut(t, s, recs[i])
	}
	last := testRecord(3)
	mustPut(t, s, last)
	s.Close()

	seg := segPath(t, dir)
	full, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	lastEnc, err := appendRecord(nil, last)
	if err != nil {
		t.Fatal(err)
	}
	prefix := len(full) - len(lastEnc)

	// Every truncation point strictly inside the last record is a valid
	// crash the store must survive.
	for cut := prefix + 1; cut < len(full); cut += 7 {
		if err := os.WriteFile(seg, full[:cut], 0o666); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(dir)
		if err != nil {
			t.Fatalf("reopen at cut %d: %v", cut, err)
		}
		requireIntact(t, s2, recs)
		if _, ok := s2.Get(last.ID); ok {
			t.Fatalf("cut %d: the torn last record was served", cut)
		}
		s2.Close()
	}
}

// TestTornTailCompletesLater covers the live-writer race torn tails also
// model: another replica is mid-append, our refresh sees a torn tail, and
// once the writer finishes the very same tail decodes on the next refresh.
func TestTornTailCompletesLater(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rec := testRecord(0)
	mustPut(t, s, rec)

	// Simulate a foreign replica mid-append: write half a record into its
	// own segment file.
	inflight := testRecord(7)
	enc, err := appendRecord(nil, inflight)
	if err != nil {
		t.Fatal(err)
	}
	foreign := filepath.Join(dir, "seg-feedfacecafebeef"+segSuffix)
	if err := os.WriteFile(foreign, enc[:len(enc)/2], 0o666); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(inflight.ID); ok {
		t.Fatal("half-written record was served")
	}
	if st := s.Stats(); st.TornSegs != 1 {
		t.Fatalf("TornSegs = %d, want 1", st.TornSegs)
	}

	// The writer finishes; the same id now resolves without reopening.
	f, err := os.OpenFile(foreign, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(enc[len(enc)/2:]); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, ok := s.Get(inflight.ID)
	if !ok || !bytes.Equal(got.Payload, inflight.Payload) {
		t.Fatalf("completed tail not picked up: ok=%v got=%+v", ok, got)
	}
	if st := s.Stats(); st.TornSegs != 0 {
		t.Fatalf("TornSegs = %d after completion, want 0", st.TornSegs)
	}
}

// TestCorruptMiddleStopsSegment flips a byte inside an interior record: the
// checksum must catch it, and the segment serves only the records before
// the corruption (framing past it is unrecoverable by design).
func TestCorruptMiddleStopsSegment(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]Record, 4)
	for i := range recs {
		recs[i] = testRecord(i)
		mustPut(t, s, recs[i])
	}
	s.Close()

	seg := segPath(t, dir)
	full, _ := os.ReadFile(seg)
	firstEnc, _ := appendRecord(nil, recs[0])
	full[len(firstEnc)+headerLen+2] ^= 0xFF // corrupt record 1 past its header
	if err := os.WriteFile(seg, full, 0o666); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen over corruption: %v", err)
	}
	defer s2.Close()
	requireIntact(t, s2, recs[:1])
	for _, lost := range recs[1:] {
		if _, ok := s2.Get(lost.ID); ok {
			t.Fatalf("record %s past the corruption was served", lost.ID)
		}
	}
}
