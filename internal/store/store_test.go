package store

// The store was specified by these tests before the service touched it:
// durable round-trips, first-wins idempotent puts, cross-handle sharing
// through nothing but the shared directory, claim-file semantics, and id
// hygiene (ids become claim filenames, so they must stay lowercase hex).

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func testRecord(i int) Record {
	return Record{
		ID:      fmt.Sprintf("%016x", i+1),
		Key:     fmt.Sprintf("qz/crowded seed=%d", i+1),
		Payload: []byte(fmt.Sprintf(`{"System":"qz","JobsCompleted":%d}`, i)),
	}
}

func mustPut(t *testing.T, s *Store, rec Record) {
	t.Helper()
	if err := s.Put(rec.ID, rec.Key, rec.Payload); err != nil {
		t.Fatalf("Put(%s): %v", rec.ID, err)
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	recs := make([]Record, 20)
	for i := range recs {
		recs[i] = testRecord(i)
		mustPut(t, s, recs[i])
	}
	if s.Len() != len(recs) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(recs))
	}
	for _, want := range recs {
		got, ok := s.Get(want.ID)
		if !ok {
			t.Fatalf("Get(%s) missed", want.ID)
		}
		if got.ID != want.ID || got.Key != want.Key || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("Get(%s) = %+v, want %+v", want.ID, got, want)
		}
	}
	if _, ok := s.Get("00000000deadbeef"); ok {
		t.Fatal("Get of an unknown id succeeded")
	}
	st := s.Stats()
	if st.Puts != int64(len(recs)) || st.Hits != int64(len(recs)) || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestReopenServesEverything(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]Record, 8)
	for i := range recs {
		recs[i] = testRecord(i)
		mustPut(t, s, recs[i])
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != len(recs) {
		t.Fatalf("reopened Len = %d, want %d", s2.Len(), len(recs))
	}
	for _, want := range recs {
		got, ok := s2.Get(want.ID)
		if !ok || !bytes.Equal(got.Payload, want.Payload) || got.Key != want.Key {
			t.Fatalf("reopened Get(%s) = %+v ok=%v, want %+v", want.ID, got, ok, want)
		}
	}
}

// TestCrossHandleSharing is the two-replica contract in miniature: two
// handles on one directory, and a record published through one is readable
// through the other with no coordination — Get refreshes on miss.
func TestCrossHandleSharing(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Open(dir) // opened BEFORE a writes: must pick up growth
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	rec := testRecord(1)
	mustPut(t, a, rec)
	got, ok := b.Get(rec.ID)
	if !ok || !bytes.Equal(got.Payload, rec.Payload) {
		t.Fatalf("handle b did not see handle a's record: ok=%v got=%+v", ok, got)
	}

	// And the reverse: b appends to its own segment, a sees it.
	rec2 := testRecord(2)
	mustPut(t, b, rec2)
	if got, ok := a.Get(rec2.ID); !ok || !bytes.Equal(got.Payload, rec2.Payload) {
		t.Fatalf("handle a did not see handle b's record: ok=%v got=%+v", ok, got)
	}

	// Two segments on disk, one per writing handle.
	segs := 0
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if filepath.Ext(e.Name()) == segSuffix {
			segs++
		}
	}
	if segs != 2 {
		t.Fatalf("segment files = %d, want 2", segs)
	}
}

func TestPutFirstWinsIdempotent(t *testing.T) {
	dir := t.TempDir()
	a, _ := Open(dir)
	defer a.Close()
	b, _ := Open(dir)
	defer b.Close()

	rec := testRecord(1)
	mustPut(t, a, rec)
	// A duplicate publish (claim race, replica restart) is dropped, even
	// through a different handle with different bytes on offer.
	if err := b.Put(rec.ID, rec.Key, []byte(`{"other":"bytes"}`)); err != nil {
		t.Fatalf("duplicate Put: %v", err)
	}
	got, ok := b.Get(rec.ID)
	if !ok || !bytes.Equal(got.Payload, rec.Payload) {
		t.Fatalf("duplicate Put replaced the record: %+v", got)
	}
	if st := b.Stats(); st.DupPuts != 1 {
		t.Fatalf("DupPuts = %d, want 1", st.DupPuts)
	}
}

func TestClaimProtocol(t *testing.T) {
	dir := t.TempDir()
	a, _ := Open(dir)
	defer a.Close()
	b, _ := Open(dir)
	defer b.Close()

	id := testRecord(1).ID
	won, release := a.Claim(id)
	if !won {
		t.Fatal("first claim lost")
	}
	if w2, _ := b.Claim(id); w2 {
		t.Fatal("second claim won while the first was held")
	}
	if !b.Claimed(id) {
		t.Fatal("Claimed = false while a claim is held")
	}
	release()
	release() // idempotent
	if b.Claimed(id) {
		t.Fatal("Claimed = true after release")
	}
	if w3, rel3 := b.Claim(id); !w3 {
		t.Fatal("claim after release lost")
	} else {
		rel3()
	}
}

func TestClaimStaleTakeover(t *testing.T) {
	dir := t.TempDir()
	a, _ := Open(dir)
	defer a.Close()
	id := testRecord(1).ID
	if won, _ := a.Claim(id); !won {
		t.Fatal("first claim lost")
	}
	// Age the claim file past the TTL: the claimant "crashed".
	path := filepath.Join(dir, claimsDir, id+claimSuffix)
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(path, old, old); err != nil {
		t.Fatal(err)
	}
	b, _ := Open(dir)
	defer b.Close()
	b.StaleClaimTTL = time.Minute
	won, release := b.Claim(id)
	if !won {
		t.Fatal("stale claim was not taken over")
	}
	release()
}

func TestIDValidation(t *testing.T) {
	s, _ := Open(t.TempDir())
	defer s.Close()
	for _, id := range []string{
		"", "short", "UPPERHEX00000000", "../../../etc/pwn", "0123456789abcdeg",
		"deadbeef/../../x",
	} {
		if err := s.Put(id, "k", []byte("v")); err == nil {
			t.Errorf("Put accepted id %q", id)
		}
		if won, _ := s.Claim(id); won {
			t.Errorf("Claim accepted id %q", id)
		}
	}
	// Claims never leave files for rejected ids.
	entries, _ := os.ReadDir(filepath.Join(s.Dir(), claimsDir))
	if len(entries) != 0 {
		t.Fatalf("rejected ids left %d claim files", len(entries))
	}
}

func TestClosedPutFails(t *testing.T) {
	s, _ := Open(t.TempDir())
	mustPut(t, s, testRecord(1))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("00000000000000ff", "k", []byte("v")); err == nil {
		t.Fatal("Put succeeded on a closed store")
	}
	// Reads still work after Close.
	if _, ok := s.Get(testRecord(1).ID); !ok {
		t.Fatal("Get failed after Close")
	}
}

func TestVersionMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, versionFile), []byte("something else\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("Open accepted a foreign VERSION file")
	}
}
