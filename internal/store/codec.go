package store

// The on-disk record codec. A segment file is a plain concatenation of
// records, each framed as:
//
//	offset  size  field
//	0       4     magic "QZS1"
//	4       4     id length      (uint32 LE, 1..128)
//	8       4     key length     (uint32 LE, 0..64 KiB)
//	12      4     payload length (uint32 LE, 0..16 MiB)
//	16      4     CRC-32C over id ∥ key ∥ payload
//	20      ...   id bytes, key bytes, payload bytes
//
// The framing is canonical: encoding a decoded record reproduces the input
// bytes exactly (FuzzStoreRecord holds this). Decoding distinguishes a
// *torn* tail — the bytes so far are a valid prefix of a record that has
// not been fully written yet — from a *corrupt* one whose framing or
// checksum can never become valid. Torn tails are retried on a later
// refresh (the writer may still be mid-append); corrupt ones end the
// segment permanently.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Record is one stored result: an id (the content address — the sha256 run
// or fleet id the service already derives), the human-readable key string
// the id hashes, and an opaque payload (the service stores JSON results).
type Record struct {
	ID      string
	Key     string
	Payload []byte
}

const (
	headerLen  = 20
	maxIDLen   = 128
	maxKeyLen  = 1 << 16
	maxPayload = 16 << 20
)

var recMagic = [4]byte{'Q', 'Z', 'S', '1'}

// ErrTornTail marks bytes that are a strict prefix of a well-formed record:
// the writer crashed mid-append, or is still appending.
var ErrTornTail = errors.New("store: torn record tail")

// ErrCorrupt marks bytes that can never decode: bad magic, absurd lengths,
// or a checksum mismatch.
var ErrCorrupt = errors.New("store: corrupt record")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

func recordCRC(id, key string, payload []byte) uint32 {
	c := crc32.Update(0, crcTable, []byte(id))
	c = crc32.Update(c, crcTable, []byte(key))
	return crc32.Update(c, crcTable, payload)
}

// appendRecord appends the canonical encoding of rec to dst.
func appendRecord(dst []byte, rec Record) ([]byte, error) {
	if n := len(rec.ID); n < 1 || n > maxIDLen {
		return dst, fmt.Errorf("store: id length %d outside [1, %d]", n, maxIDLen)
	}
	if n := len(rec.Key); n > maxKeyLen {
		return dst, fmt.Errorf("store: key length %d exceeds %d", n, maxKeyLen)
	}
	if n := len(rec.Payload); n > maxPayload {
		return dst, fmt.Errorf("store: payload length %d exceeds %d", n, maxPayload)
	}
	dst = append(dst, recMagic[:]...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(rec.ID)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(rec.Key)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(rec.Payload)))
	dst = binary.LittleEndian.AppendUint32(dst, recordCRC(rec.ID, rec.Key, rec.Payload))
	dst = append(dst, rec.ID...)
	dst = append(dst, rec.Key...)
	dst = append(dst, rec.Payload...)
	return dst, nil
}

// decodeRecord parses one record from the front of b, returning the record
// and the number of bytes it occupied. The returned Payload aliases b.
func decodeRecord(b []byte) (Record, int, error) {
	if len(b) < len(recMagic) {
		if string(b) != string(recMagic[:len(b)]) {
			return Record{}, 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
		}
		return Record{}, 0, ErrTornTail
	}
	if [4]byte(b[:4]) != recMagic {
		return Record{}, 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if len(b) < headerLen {
		return Record{}, 0, ErrTornTail
	}
	idLen := binary.LittleEndian.Uint32(b[4:8])
	keyLen := binary.LittleEndian.Uint32(b[8:12])
	payLen := binary.LittleEndian.Uint32(b[12:16])
	crc := binary.LittleEndian.Uint32(b[16:20])
	if idLen < 1 || idLen > maxIDLen || keyLen > maxKeyLen || payLen > maxPayload {
		return Record{}, 0, fmt.Errorf("%w: lengths id=%d key=%d payload=%d", ErrCorrupt, idLen, keyLen, payLen)
	}
	total := headerLen + int(idLen) + int(keyLen) + int(payLen)
	if len(b) < total {
		return Record{}, 0, ErrTornTail
	}
	id := string(b[headerLen : headerLen+int(idLen)])
	key := string(b[headerLen+int(idLen) : headerLen+int(idLen)+int(keyLen)])
	payload := b[headerLen+int(idLen)+int(keyLen) : total]
	if recordCRC(id, key, payload) != crc {
		return Record{}, 0, fmt.Errorf("%w: checksum mismatch for id %q", ErrCorrupt, id)
	}
	return Record{ID: id, Key: key, Payload: payload}, total, nil
}
