package device

import (
	"testing"

	"quetzal/internal/model"
)

func TestProfilesValidate(t *testing.T) {
	for _, p := range []Profile{Apollo4(), MSP430()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.MCU.Name, err)
		}
	}
}

func TestValidateRejectsBrokenProfiles(t *testing.T) {
	p := Apollo4()
	p.BufferCapacity = 0
	if err := p.Validate(); err == nil {
		t.Error("accepted zero buffer capacity")
	}
	p = Apollo4()
	p.CaptureTexe = 0
	if err := p.Validate(); err == nil {
		t.Error("accepted zero capture cost")
	}
	p = Apollo4()
	p.MLOptions = nil
	if err := p.Validate(); err == nil {
		t.Error("accepted missing ML options")
	}
	p = Apollo4()
	p.RadioOptions[0].Texe = -1
	if err := p.Validate(); err == nil {
		t.Error("accepted invalid radio option")
	}
	p = Apollo4()
	p.Compress.Pexe = 0
	if err := p.Validate(); err == nil {
		t.Error("accepted invalid compress option")
	}
}

// The paper's §2.2 anchor: the radio task's end-to-end time ranges from
// 0.8 s at high power to over 50 s at low power. With our calibration,
// S_e2e = max(0.8, 80 mJ / P_in): at 1.5 mW that is ≈ 53 s.
func TestRadioTaskAnchors(t *testing.T) {
	radio := Apollo4().RadioOptions[0]
	if radio.Texe != 0.8 {
		t.Errorf("full-image radio Texe = %g, want 0.8 (paper anchor)", radio.Texe)
	}
	lowPower := radio.Eexe() / 0.0015
	if lowPower < 50 {
		t.Errorf("radio S_e2e at 1.5 mW = %g s, want > 50 (paper anchor)", lowPower)
	}
}

func TestQualityOrdering(t *testing.T) {
	for _, p := range []Profile{Apollo4(), MSP430()} {
		// High-quality ML must be more accurate (lower FN) and more
		// expensive than the degraded option.
		ml := p.MLOptions
		if ml[0].FalseNegative >= ml[1].FalseNegative {
			t.Errorf("%s: high-Q ML FN %g not better than low-Q %g",
				p.MCU.Name, ml[0].FalseNegative, ml[1].FalseNegative)
		}
		if ml[0].Eexe() <= ml[1].Eexe() {
			t.Errorf("%s: high-Q ML energy %g not above low-Q %g",
				p.MCU.Name, ml[0].Eexe(), ml[1].Eexe())
		}
		r := p.RadioOptions
		if !r[0].HighQuality || r[1].HighQuality {
			t.Errorf("%s: radio quality flags wrong", p.MCU.Name)
		}
		if r[0].Eexe() <= r[1].Eexe() {
			t.Errorf("%s: full-image radio energy %g not above single-byte %g",
				p.MCU.Name, r[0].Eexe(), r[1].Eexe())
		}
	}
}

func TestMSP430SlowerThanApollo(t *testing.T) {
	a, m := Apollo4(), MSP430()
	if m.CaptureTexe <= a.CaptureTexe {
		t.Error("MSP430 capture should be slower than Apollo 4")
	}
	if m.MLOptions[0].Texe <= a.MLOptions[1].Texe {
		t.Error("MSP430 high-Q ML should be slower than Apollo 4 LeNet")
	}
}

// Paper §5.1 ratio-cost anchors, verbatim.
func TestRatioCostAnchors(t *testing.T) {
	msp := MSP430MCU()
	if msp.HasDivider {
		t.Error("MSP430 must not have a hardware divider")
	}
	// Software division: 158 cycles, 49.37 nJ; module: 12 cycles, 3.75 nJ.
	if got := msp.DivRatioTime * msp.ClockHz; got < 157.9 || got > 158.1 {
		t.Errorf("MSP430 division cycles = %g, want 158", got)
	}
	if msp.DivRatioEnergy != 49.37e-9 || msp.ModuleRatioEnergy != 3.75e-9 {
		t.Errorf("MSP430 ratio energies = %g/%g", msp.DivRatioEnergy, msp.ModuleRatioEnergy)
	}
	// Energy saving ≈ 92.5 %.
	saving := 1 - msp.ModuleRatioEnergy/msp.DivRatioEnergy
	if saving < 0.92 || saving > 0.93 {
		t.Errorf("MSP430 module energy saving = %.3f, want ≈ 0.925", saving)
	}

	ap := Apollo4MCU()
	if !ap.HasDivider {
		t.Error("Apollo 4 must have a hardware divider")
	}
	// Divider: 13 cycles, 0.4 nJ; module: 5 cycles, 0.16 nJ → 60 % saving.
	saving = 1 - ap.ModuleRatioEnergy/ap.DivRatioEnergy
	if saving < 0.55 || saving > 0.65 {
		t.Errorf("Apollo module energy saving = %.3f, want ≈ 0.6", saving)
	}
}

func TestPersonDetectionAppStructure(t *testing.T) {
	app := Apollo4().PersonDetectionApp()
	if err := app.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(app.Jobs) != 2 {
		t.Fatalf("jobs = %d, want 2", len(app.Jobs))
	}
	detect := app.JobByID(DetectJobID)
	if detect.SpawnJobID != ReportJobID {
		t.Errorf("detect spawns %d, want %d", detect.SpawnJobID, ReportJobID)
	}
	if di := detect.DegradableTask(); di != 0 || detect.Tasks[di].Kind != model.Classify {
		t.Errorf("detect degradable task = %d (%v)", di, detect.Tasks[0].Kind)
	}
	report := app.JobByID(ReportJobID)
	if di := report.DegradableTask(); di != 1 || report.Tasks[di].Kind != model.Transmit {
		t.Errorf("report degradable task = %d", di)
	}
	if app.EntryJobID != DetectJobID {
		t.Errorf("entry job = %d, want %d", app.EntryJobID, DetectJobID)
	}
}

func TestFusedPipelineAppStructure(t *testing.T) {
	app := MSP430().FusedPipelineApp()
	if err := app.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(app.Jobs) != 1 {
		t.Fatalf("jobs = %d, want 1", len(app.Jobs))
	}
	job := app.Jobs[0]
	if len(job.Tasks) != 3 {
		t.Fatalf("tasks = %d, want 3", len(job.Tasks))
	}
	if !job.Tasks[1].Conditional || !job.Tasks[2].Conditional {
		t.Error("compress/radio must be conditional on the classifier")
	}
	if deg := job.DegradableTask(); deg != 0 {
		t.Errorf("degradable task = %d, want 0 (ML only)", deg)
	}
}

func TestRatioOpsPerInvocation(t *testing.T) {
	app := Apollo4().PersonDetectionApp()
	// 3 tasks total (ml, compress, radio) + 2 options on the widest
	// degradable task = 5.
	if got := RatioOpsPerInvocation(app); got != 5 {
		t.Errorf("RatioOpsPerInvocation = %d, want 5", got)
	}
}

func TestInvocationOverheadOrdering(t *testing.T) {
	for _, mcu := range []MCU{Apollo4MCU(), MSP430MCU()} {
		tm, em := mcu.InvocationOverhead(10, true)
		td, ed := mcu.InvocationOverhead(10, false)
		if tm <= 0 || em <= 0 {
			t.Errorf("%s: module overhead non-positive", mcu.Name)
		}
		if tm >= td || em >= ed {
			t.Errorf("%s: module overhead (%g s, %g J) not below division (%g s, %g J)",
				mcu.Name, tm, em, td, ed)
		}
	}
}

// The §5.1 claim shape: with 10 invocations/s and a 32-task/4-option app,
// module overhead on the MSP430 is far below 1 % of CPU time while the
// division path is several percent.
func TestOverheadClaimShape(t *testing.T) {
	mcu := MSP430MCU()
	ratioOps := 32 + 4
	tm, _ := mcu.InvocationOverhead(ratioOps, true)
	td, _ := mcu.InvocationOverhead(ratioOps, false)
	moduleCPU := tm * 10 // fraction of each second
	divCPU := td * 10
	if moduleCPU > 0.004 {
		t.Errorf("module CPU share = %.4f, want ≤ 0.004 (paper: 0.4%%)", moduleCPU)
	}
	if divCPU < 10*moduleCPU {
		t.Errorf("division CPU share %.5f not ≫ module share %.5f", divCPU, moduleCPU)
	}
}
