// Package device provides the hardware cost models the simulator consumes:
// per-task latency/energy profiles for the paper's two microcontrollers
// (Ambiq Apollo 4 and TI MSP430FR5994), peripheral costs (HM01B0 camera,
// RFM95W LoRa radio, JPEG), JIT-checkpoint costs, and the per-invocation
// runtime overhead of Quetzal's ratio computations with and without the
// hardware module.
//
// The paper's simulator "represented the actual device as a set of tasks
// characterized by their latency and energy values, measured on real
// hardware" (§6.3). Real measurements are unavailable here, so the numbers
// below are calibrated to every anchor the paper publishes:
//
//   - the radio task's end-to-end time ranges from 0.8 s at high power to
//     over 50 s at low power (§2.2) — so the full-image radio option costs
//     0.8 s × 100 mW = 80 mJ (80 mJ / 1.5 mW ≈ 53 s);
//   - the input buffer holds 10 images (Table 1);
//   - the MSP430 runs LeNet variants only (Table 1) and is roughly an
//     order of magnitude slower than the Apollo 4;
//   - ratio-computation costs come from §5.1 verbatim: on the MSP430 the
//     module takes 12 cycles / 3.75 nJ vs 158 cycles / 49.37 nJ for
//     software division; on the Apollo 4, 5 cycles / 0.16 nJ vs 13 cycles
//     / 0.4 nJ for the native divider.
package device

import (
	"fmt"

	"quetzal/internal/model"
)

// MCU describes a microcontroller's fixed characteristics.
type MCU struct {
	Name       string
	ClockHz    float64
	HasDivider bool

	// Per-ratio-computation cost using Quetzal's hardware module.
	ModuleRatioTime, ModuleRatioEnergy float64 // seconds, joules
	// Per-ratio-computation cost using division (software routine when
	// HasDivider is false, native divider otherwise).
	DivRatioTime, DivRatioEnergy float64

	// JIT checkpoint restore cost paid when resuming after a power failure.
	RestoreTime, RestorePower float64
	// IdlePower is the draw while on but waiting (sleep with RAM retained).
	IdlePower float64
}

// Apollo4MCU returns the Ambiq Apollo 4 characteristics (192 MHz, hardware
// divider). Ratio costs are the paper's §5.1 numbers.
func Apollo4MCU() MCU {
	const clock = 192e6
	return MCU{
		Name:              "apollo4",
		ClockHz:           clock,
		HasDivider:        true,
		ModuleRatioTime:   5 / clock,
		ModuleRatioEnergy: 0.16e-9,
		DivRatioTime:      13 / clock,
		DivRatioEnergy:    0.4e-9,
		RestoreTime:       0.005,
		RestorePower:      0.010,
		IdlePower:         50e-6,
	}
}

// MSP430MCU returns the TI MSP430FR5994 characteristics (16 MHz, no
// hardware divider). Ratio costs are the paper's §5.1 numbers.
func MSP430MCU() MCU {
	const clock = 16e6
	return MCU{
		Name:              "msp430fr5994",
		ClockHz:           clock,
		HasDivider:        false,
		ModuleRatioTime:   12 / clock,
		ModuleRatioEnergy: 3.75e-9,
		DivRatioTime:      158 / clock,
		DivRatioEnergy:    49.37e-9,
		RestoreTime:       0.012,
		RestorePower:      0.004,
		IdlePower:         30e-6,
	}
}

// STM32G0MCU returns the STM32G071 characteristics (64 MHz Cortex-M0+, no
// hardware divider — the paper lists it among the divider-less targets in
// §5.1). The software division routine on the M0+ runs in ~45 cycles.
func STM32G0MCU() MCU {
	const clock = 64e6
	return MCU{
		Name:              "stm32g071",
		ClockHz:           clock,
		HasDivider:        false,
		ModuleRatioTime:   8 / clock,
		ModuleRatioEnergy: 1.1e-9,
		DivRatioTime:      45 / clock,
		DivRatioEnergy:    9.6e-9,
		RestoreTime:       0.008,
		RestorePower:      0.006,
		IdlePower:         40e-6,
	}
}

// Profile bundles everything the simulator needs to model one platform
// running the person-detection application.
type Profile struct {
	MCU            MCU
	BufferCapacity int // input buffer size in images (Table 1: 10)

	// Capture pipeline cost per frame: camera readout + pixel differencing
	// + JPEG compression before storing (§6.4: "all systems therefore
	// always compress images before storing in the input buffer").
	CaptureTexe, CapturePexe float64

	// Task option tables, quality-ordered best-first.
	MLOptions    []model.Option
	Compress     model.Option
	RadioOptions []model.Option
}

// Apollo4 returns the Apollo 4 platform profile from Table 1: High-Q
// ML = MobileNetV2, Low-Q ML = LeNet, High-Q radio = full JPEG image,
// Low-Q radio = single byte.
func Apollo4() Profile {
	return Profile{
		MCU:            Apollo4MCU(),
		BufferCapacity: 10,
		CaptureTexe:    0.060,
		CapturePexe:    0.010,
		MLOptions: []model.Option{
			{Name: "mobilenetv2", Texe: 0.85, Pexe: 0.014, FalseNegative: 0.06, FalsePositive: 0.05},
			{Name: "lenet", Texe: 0.35, Pexe: 0.010, FalseNegative: 0.22, FalsePositive: 0.15},
		},
		Compress: model.Option{Name: "jpeg-package", Texe: 0.15, Pexe: 0.008},
		RadioOptions: []model.Option{
			{Name: "full-image", Texe: 0.80, Pexe: 0.150, HighQuality: true},
			{Name: "single-byte", Texe: 0.15, Pexe: 0.030},
		},
	}
}

// MSP430 returns the MSP430FR5994 platform profile from Table 1: High-Q
// ML = Int-16 LeNet, Low-Q ML = Int-8 LeNet, radio as on the Apollo.
func MSP430() Profile {
	return Profile{
		MCU:            MSP430MCU(),
		BufferCapacity: 10,
		CaptureTexe:    0.250,
		CapturePexe:    0.004,
		MLOptions: []model.Option{
			{Name: "lenet-int16", Texe: 1.8, Pexe: 0.0035, FalseNegative: 0.12, FalsePositive: 0.08},
			{Name: "lenet-int8", Texe: 0.7, Pexe: 0.0030, FalseNegative: 0.28, FalsePositive: 0.16},
		},
		Compress: model.Option{Name: "jpeg-package", Texe: 0.50, Pexe: 0.003},
		RadioOptions: []model.Option{
			{Name: "full-image", Texe: 0.80, Pexe: 0.150, HighQuality: true},
			{Name: "single-byte", Texe: 0.15, Pexe: 0.030},
		},
	}
}

// Validate sanity-checks a profile.
func (p Profile) Validate() error {
	if p.BufferCapacity <= 0 {
		return fmt.Errorf("device: buffer capacity must be positive, got %d", p.BufferCapacity)
	}
	if p.CaptureTexe <= 0 || p.CapturePexe <= 0 {
		return fmt.Errorf("device: capture costs must be positive")
	}
	if len(p.MLOptions) == 0 || len(p.RadioOptions) == 0 {
		return fmt.Errorf("device: profile needs ML and radio options")
	}
	for _, o := range append(append([]model.Option{}, p.MLOptions...), p.RadioOptions...) {
		if err := o.Validate(); err != nil {
			return err
		}
	}
	return p.Compress.Validate()
}

// Apollo4MultiQuality returns an Apollo 4 profile that exercises the full
// four-level degradation ladder the §5.1 library supports: three inference
// models and four radio payload sizes (full image, half-resolution,
// thumbnail, single byte). The IBO engine's "highest-quality option that
// clears" rule has real intermediate choices here.
func Apollo4MultiQuality() Profile {
	p := Apollo4()
	p.MLOptions = []model.Option{
		{Name: "mobilenetv2", Texe: 0.85, Pexe: 0.014, FalseNegative: 0.06, FalsePositive: 0.05},
		{Name: "mobilenet-lite", Texe: 0.55, Pexe: 0.012, FalseNegative: 0.12, FalsePositive: 0.09},
		{Name: "lenet", Texe: 0.35, Pexe: 0.010, FalseNegative: 0.22, FalsePositive: 0.15},
	}
	p.RadioOptions = []model.Option{
		{Name: "full-image", Texe: 0.80, Pexe: 0.150, HighQuality: true},
		{Name: "half-res", Texe: 0.40, Pexe: 0.150, HighQuality: true},
		{Name: "thumbnail", Texe: 0.20, Pexe: 0.120},
		{Name: "single-byte", Texe: 0.15, Pexe: 0.030},
	}
	return p
}

// STM32G0 returns an STM32G071 platform profile: between the Apollo 4 and
// the MSP430 in compute capability, with the same radio module. Not part
// of the paper's Table 1 — included to exercise Quetzal's claim of being
// microcontroller-agnostic on a third, divider-less target.
func STM32G0() Profile {
	return Profile{
		MCU:            STM32G0MCU(),
		BufferCapacity: 10,
		CaptureTexe:    0.120,
		CapturePexe:    0.007,
		MLOptions: []model.Option{
			{Name: "mobilenetv2-int8", Texe: 1.6, Pexe: 0.009, FalseNegative: 0.08, FalsePositive: 0.06},
			{Name: "lenet", Texe: 0.5, Pexe: 0.007, FalseNegative: 0.22, FalsePositive: 0.15},
		},
		Compress: model.Option{Name: "jpeg-package", Texe: 0.25, Pexe: 0.006},
		RadioOptions: []model.Option{
			{Name: "full-image", Texe: 0.80, Pexe: 0.150, HighQuality: true},
			{Name: "single-byte", Texe: 0.15, Pexe: 0.030},
		},
	}
}

// Job IDs used by the standard applications.
const (
	DetectJobID = 0
	ReportJobID = 1
)

// PersonDetectionApp assembles the paper's evaluation application for this
// profile as two jobs: a "detect" job whose degradable ML task classifies a
// stored image and spawns the "report" job on positives, and a "report" job
// that packages the image and transmits it with a degradable radio task.
func (p Profile) PersonDetectionApp() *model.App {
	ml := &model.Task{Name: "ml-inference", Kind: model.Classify, Options: p.MLOptions}
	compress := &model.Task{Name: "compress", Kind: model.Compute, Options: []model.Option{p.Compress}}
	// The radio task is resumable: the full-image transmission is a
	// multi-packet LoRa transfer that checkpoints at packet boundaries
	// (Camaroptera-style), so it is not marked Atomic — a single packet
	// fits comfortably within one charge of the 33 mF store.
	radio := &model.Task{Name: "radio", Kind: model.Transmit, Options: p.RadioOptions}
	return &model.App{
		Name: "person-detection",
		Jobs: []*model.Job{
			{ID: DetectJobID, Name: "detect", Tasks: []*model.Task{ml}, SpawnJobID: ReportJobID},
			{ID: ReportJobID, Name: "report", Tasks: []*model.Task{compress, radio}, SpawnJobID: model.NoSpawn},
		},
		EntryJobID:  DetectJobID,
		CaptureTexe: p.CaptureTexe,
		CapturePexe: p.CapturePexe,
	}
}

// FusedPipelineApp assembles a single-job variant where compression and
// radio are conditional on the ML result within the same job — the Figure 5
// structure that exercises per-task execution probabilities. Only the ML
// task is degradable (§5.2: exactly one degradable task per job), so the
// radio always transmits full images.
func (p Profile) FusedPipelineApp() *model.App {
	ml := &model.Task{Name: "ml-inference", Kind: model.Classify, Options: p.MLOptions}
	compress := &model.Task{Name: "compress", Kind: model.Compute, Conditional: true,
		Options: []model.Option{p.Compress}}
	radio := &model.Task{Name: "radio", Kind: model.Transmit, Conditional: true,
		Options: p.RadioOptions[:1]}
	return &model.App{
		Name: "person-detection-fused",
		Jobs: []*model.Job{
			{ID: DetectJobID, Name: "pipeline", Tasks: []*model.Task{ml, compress, radio},
				SpawnJobID: model.NoSpawn},
		},
		EntryJobID:  DetectJobID,
		CaptureTexe: p.CaptureTexe,
		CapturePexe: p.CapturePexe,
	}
}

// RatioOpsPerInvocation returns the number of P_exe/P_in ratio computations
// one scheduler+IBO-engine invocation performs for the given app: one per
// task for the SJF pass plus one per degradation option of the selected
// job's degradable task for the reaction pass (§5.1: "num_tasks +
// num_degradation_options").
func RatioOpsPerInvocation(app *model.App) int {
	n := 0
	maxOpts := 0
	for _, j := range app.Jobs {
		n += len(j.Tasks)
		if di := j.DegradableTask(); di >= 0 {
			if o := len(j.Tasks[di].Options); o > maxOpts {
				maxOpts = o
			}
		}
	}
	return n + maxOpts
}

// InvocationOverhead returns the (time, energy) cost of one scheduler
// invocation on this MCU. useModule selects Quetzal's hardware module;
// otherwise the MCU's division path is used. The bookkeeping factor covers
// the non-ratio work (window updates, comparisons), which profiling in the
// paper shows dominates neither path.
func (m MCU) InvocationOverhead(ratioOps int, useModule bool) (seconds, joules float64) {
	const bookkeepingFactor = 4.0
	var t, e float64
	if useModule {
		t, e = m.ModuleRatioTime, m.ModuleRatioEnergy
	} else {
		t, e = m.DivRatioTime, m.DivRatioEnergy
	}
	n := float64(ratioOps)
	return n * t * bookkeepingFactor, n * e * bookkeepingFactor
}
