package sim_test

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"quetzal/internal/sim"
	"quetzal/internal/simgen"
)

// The trace-export golden layer: the obs.Exporter's Chrome trace_event JSON
// and JSONL renderings of each golden scenario are sha256-pinned exactly
// like the raw event streams in golden.json. The exporter derives its
// output deterministically from the event-log stream, so these fixtures
// move only when the stream itself moves (regenerate both together) or
// when the export format changes. Regenerate with
//
//	go test ./internal/sim/ -run TestGoldenTraceExports -update
//
// (the shared -update flag from golden_test.go).
const goldenTracePath = "testdata/golden_trace.json"

// traceFingerprint runs one scenario with both export sinks attached and
// fingerprints each rendering.
func traceFingerprint(t *testing.T, p simgen.Params, engine sim.EngineKind) (chrome, jsonl goldenEntry) {
	t.Helper()
	cfg, err := p.Config(engine)
	if err != nil {
		t.Fatalf("%v: %v", p, err)
	}
	cw := &lineCountingHash{h: sha256.New()}
	jw := &lineCountingHash{h: sha256.New()}
	cb, jb := bufio.NewWriter(cw), bufio.NewWriter(jw)
	cfg.Trace = cb
	cfg.TraceJSONL = jb
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatalf("%v: %v", p, err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatalf("%v: %v", p, err)
	}
	if err := cb.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := jb.Flush(); err != nil {
		t.Fatal(err)
	}
	chrome = goldenEntry{SHA256: hex.EncodeToString(cw.h.Sum(nil)), Lines: cw.lines}
	jsonl = goldenEntry{SHA256: hex.EncodeToString(jw.h.Sum(nil)), Lines: jw.lines}
	return chrome, jsonl
}

func TestGoldenTraceExports(t *testing.T) {
	got := map[string]goldenEntry{}
	for _, sc := range goldenScenarios {
		p := sc.p.Normalize()
		for _, engine := range []sim.EngineKind{sim.FixedIncrement, sim.EventDriven} {
			chrome, jsonl := traceFingerprint(t, p, engine)
			got[fmt.Sprintf("%s/%s/chrome", sc.name, engine)] = chrome
			got[fmt.Sprintf("%s/%s/jsonl", sc.name, engine)] = jsonl
		}
	}

	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenTracePath), 0o755); err != nil {
			t.Fatal(err)
		}
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenTracePath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d fingerprints to %s", len(got), goldenTracePath)
		return
	}

	buf, err := os.ReadFile(goldenTracePath)
	if err != nil {
		t.Fatalf("no golden file (%v) — run: go test ./internal/sim/ -run TestGoldenTraceExports -update", err)
	}
	var want map[string]goldenEntry
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatalf("corrupt %s: %v", goldenTracePath, err)
	}

	keys := make([]string, 0, len(got))
	for k := range got {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		w, ok := want[k]
		if !ok {
			t.Errorf("%s: no committed fingerprint — run with -update and commit the diff", k)
			continue
		}
		if g := got[k]; g != w {
			t.Errorf("%s: trace export changed: %d lines sha %.12s…, committed %d lines sha %.12s…\n"+
				"  if this change is intended, rerun with -update and commit testdata/golden_trace.json alongside it",
				k, g.Lines, g.SHA256, w.Lines, w.SHA256)
		}
	}
	for k := range want {
		if _, ok := got[k]; !ok {
			t.Errorf("%s: committed fingerprint has no scenario (stale entry in %s)", k, goldenTracePath)
		}
	}
}

// TestGoldenTraceDeterminism pins the property the export fixtures depend
// on: tracing the same scenario twice yields byte-identical renderings.
func TestGoldenTraceDeterminism(t *testing.T) {
	p := goldenScenarios[2].p.Normalize()
	c1, j1 := traceFingerprint(t, p, sim.FixedIncrement)
	c2, j2 := traceFingerprint(t, p, sim.FixedIncrement)
	if c1 != c2 || j1 != j2 {
		t.Fatalf("trace export not deterministic: %+v/%+v vs %+v/%+v", c1, j1, c2, j2)
	}
}
