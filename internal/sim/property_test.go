package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"quetzal/internal/baseline"
	"quetzal/internal/core"
	"quetzal/internal/device"
	"quetzal/internal/energy"
	"quetzal/internal/trace"
)

// TestPropertyWholeSimulator drives the complete stack — random traces,
// random store sizes, random controllers, random checkpoint policies —
// and asserts the global invariants on every run:
//
//   - the run completes without an accounting error (metrics.Check);
//   - energy is conserved (consumed ≤ harvested + initial store);
//   - the buffer never exceeds capacity (checked inside buffer);
//   - every reported packet corresponds to a positive classification when
//     the app has a classifier;
//   - re-running the same configuration reproduces the same results.
func TestPropertyWholeSimulator(t *testing.T) {
	f := func(seed int64, sysRaw, envRaw, capRaw, ckptRaw uint8, powRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		prof := device.Apollo4()
		if sysRaw%4 == 3 {
			prof = device.MSP430()
		}
		app := prof.PersonDetectionApp()

		var ctl core.Controller
		var err error
		switch sysRaw % 3 {
		case 0:
			ctl, err = core.New(core.Config{App: app, CapturePeriod: 1})
		case 1:
			ctl, err = baseline.NoAdapt(app)
		default:
			ctl, err = baseline.Threshold(app, 0.5)
		}
		if err != nil {
			t.Log(err)
			return false
		}

		events := trace.GenerateEvents(trace.DefaultEventConfig(
			int(envRaw)%25+5, float64(envRaw%3)*25+10, seed))
		power := trace.SquareWave{
			High:   float64(powRaw%100)/1000 + 0.005, // 5–105 mW
			Low:    0.001,
			Period: float64(powRaw%50) + 20,
			Duty:   0.5,
		}
		store := energy.DefaultConfig()
		store.Capacitance = float64(capRaw%50)/1000 + 0.004 // 4–54 mF

		cfg := Config{
			Profile: prof, App: app, Controller: ctl,
			Power: power, Events: events,
			Store:      store,
			Checkpoint: CheckpointPolicy(int(ckptRaw) % 3),
			Seed:       seed + 1,
		}
		s, err := New(cfg)
		if err != nil {
			t.Log(err)
			return false
		}
		res, err := s.Run()
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if res.ConsumedJoules > res.HarvestedJoules+s.Store().UsableCapacity()+1e-6 {
			t.Logf("seed %d: energy conservation violated", seed)
			return false
		}
		if res.TruePositives+res.FalseNegatives > 0 &&
			res.TotalPackets() > res.TruePositives+res.FalsePositives {
			t.Logf("seed %d: packets without classifications", seed)
			return false
		}
		_ = rng
		return true
	}
	cfg := &quick.Config{MaxCount: 60}
	if testing.Short() {
		cfg.MaxCount = 10
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestPropertySimulatorDeterminism re-runs random configurations and
// requires bit-identical results.
func TestPropertySimulatorDeterminism(t *testing.T) {
	f := func(seed int64, envRaw uint8) bool {
		run := func() (string, bool) {
			prof := device.Apollo4()
			app := prof.PersonDetectionApp()
			ctl, err := core.New(core.Config{App: app, CapturePeriod: 1})
			if err != nil {
				return "", false
			}
			events := trace.GenerateEvents(trace.DefaultEventConfig(int(envRaw)%15+5, 30, seed))
			power := trace.GenerateSolar(trace.DefaultSolarConfig(events.Duration()+60, seed+2))
			s, err := New(Config{
				Profile: prof, App: app, Controller: ctl,
				Power: power, Events: events, Seed: seed + 3,
			})
			if err != nil {
				return "", false
			}
			res, err := s.Run()
			if err != nil {
				return "", false
			}
			return res.String(), true
		}
		a, okA := run()
		b, okB := run()
		return okA && okB && a == b
	}
	cfg := &quick.Config{MaxCount: 25}
	if testing.Short() {
		cfg.MaxCount = 5
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
