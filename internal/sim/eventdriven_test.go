package sim

import (
	"testing"
	"time"

	"quetzal/internal/core"
	"quetzal/internal/device"
	"quetzal/internal/metrics"
	"quetzal/internal/trace"
)

// runBothEngines executes the same configuration under both engines.
func runBothEngines(t *testing.T, mk func() Config) (fixed, event metrics.Results) {
	t.Helper()
	cfgF := mk()
	cfgF.Engine = FixedIncrement
	sf, err := New(cfgF)
	if err != nil {
		t.Fatal(err)
	}
	fixed, err = sf.Run()
	if err != nil {
		t.Fatalf("fixed engine: %v", err)
	}
	cfgE := mk()
	cfgE.Engine = EventDriven
	se, err := New(cfgE)
	if err != nil {
		t.Fatal(err)
	}
	event, err = se.Run()
	if err != nil {
		t.Fatalf("event engine: %v", err)
	}
	return fixed, event
}

// within asserts |a−b| ≤ tol·max(b, floor).
func within(t *testing.T, name string, a, b, tol, floor float64) {
	t.Helper()
	scale := b
	if scale < floor {
		scale = floor
	}
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	if diff > tol*scale {
		t.Errorf("%s: event-driven %.4g vs fixed %.4g (> %.0f%% apart)", name, a, b, tol*100)
	}
}

func TestEngineKindString(t *testing.T) {
	if FixedIncrement.String() != "fixed-increment" || EventDriven.String() != "event-driven" {
		t.Error("engine names wrong")
	}
	if EngineKind(7).String() != "EngineKind(7)" {
		t.Error("unknown engine name wrong")
	}
}

// The event-driven engine must reproduce the fixed-increment engine's
// metrics within tight statistical tolerance on the standard workload —
// for both Quetzal and the NoAdapt baseline, at easy and hard power levels.
func TestEventDrivenMatchesFixedIncrement(t *testing.T) {
	prof := device.Apollo4()
	events := steadyEvents(10, 30, 15, true)
	scenarios := []struct {
		name    string
		power   trace.PowerTrace
		quetzal bool
	}{
		{"noadapt-high-power", trace.Constant{P: 0.08}, false},
		{"noadapt-low-power", trace.Constant{P: 0.004}, false},
		{"quetzal-square-wave", trace.SquareWave{High: 0.06, Low: 0.004, Period: 60, Duty: 0.5}, true},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			mk := func() Config {
				app := prof.PersonDetectionApp()
				var ctl core.Controller
				if sc.quetzal {
					ctl = quetzalController(t, app)
				} else {
					ctl = noadaptController(t, app)
				}
				return Config{
					Profile: prof, App: app, Controller: ctl,
					Power: sc.power, Events: events, Seed: 17,
				}
			}
			fixed, event := runBothEngines(t, mk)
			if fixed.Arrivals == 0 {
				t.Fatal("no arrivals in reference run")
			}
			within(t, "arrivals", float64(event.Arrivals), float64(fixed.Arrivals), 0.02, 1)
			within(t, "jobs", float64(event.JobsCompleted), float64(fixed.JobsCompleted), 0.10, 20)
			within(t, "discarded-frac", event.DiscardedFraction(), fixed.DiscardedFraction(), 0.25, 0.05)
			within(t, "reported", float64(event.ReportedInteresting()), float64(fixed.ReportedInteresting()), 0.15, 20)
			within(t, "harvested", event.HarvestedJoules, fixed.HarvestedJoules, 0.05, 0.1)
		})
	}
}

// The event-driven engine must be dramatically faster.
func TestEventDrivenSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	prof := device.Apollo4()
	events := steadyEvents(20, 20, 20, true)
	mk := func(engine EngineKind) Config {
		app := prof.PersonDetectionApp()
		return Config{
			Profile: prof, App: app,
			Controller: noadaptController(t, app),
			Power:      trace.Constant{P: 0.03},
			Events:     events, Seed: 18,
			Engine: engine,
		}
	}
	timeRun := func(cfg Config) time.Duration {
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	tFixed := timeRun(mk(FixedIncrement))
	tEvent := timeRun(mk(EventDriven))
	if tEvent*5 > tFixed {
		t.Errorf("event-driven %v not ≥5x faster than fixed %v", tEvent, tFixed)
	}
	t.Logf("fixed %v, event-driven %v (%.0fx)", tFixed, tEvent, float64(tFixed)/float64(tEvent))
}

// Event-driven runs must terminate and stay consistent across the stress
// corners: checkpoint policies, atomic tasks, jitter, zero power.
func TestEventDrivenCorners(t *testing.T) {
	prof := device.Apollo4()
	app := prof.PersonDetectionApp()
	cases := []func(*Config){
		func(c *Config) { c.Checkpoint = NoCheckpoint },
		func(c *Config) { c.Checkpoint = PeriodicCheckpoint; c.CheckpointInterval = 0.25 },
		func(c *Config) { c.TexeJitterOverride = 0.4 },
		func(c *Config) { c.Power = trace.Constant{P: 0} },
	}
	for i, mutate := range cases {
		app := prof.PersonDetectionApp()
		cfg := Config{
			Profile: prof, App: app,
			Controller: noadaptController(t, app),
			Power:      trace.Constant{P: 0.01},
			Events:     steadyEvents(5, 10, 10, true),
			Seed:       int64(19 + i),
			Engine:     EventDriven,
		}
		mutate(&cfg)
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if err := res.Check(); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
	}
	_ = app
}
