package sim_test

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"quetzal/internal/sim"
	"quetzal/internal/simgen"
)

// The lockstep stepper's speed contract: it must reproduce the event
// engine's committed fingerprints, not earn its own golden entries. Every
// scenario in testdata/golden.json runs here through sim.Lockstep with
// checks off (so the crawl replay is actually active — observers disable
// it) and must hash to the pinned `<scenario>/event-driven` fingerprint
// byte for byte. A divergence means the fast path changed physics.
func TestGoldenLockstepParity(t *testing.T) {
	buf, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("no golden file (%v) — run: go test ./internal/sim/ -run TestGoldenTraces -update", err)
	}
	var want map[string]goldenEntry
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatalf("corrupt %s: %v", goldenPath, err)
	}
	for _, sc := range goldenScenarios {
		t.Run(sc.name, func(t *testing.T) {
			pinned, ok := want[fmt.Sprintf("%s/%s", sc.name, sim.EventDriven)]
			if !ok {
				t.Fatalf("no committed event-driven fingerprint for %s", sc.name)
			}
			got := fingerprintLockstep(t, sc.p.Normalize())
			if got != pinned {
				t.Errorf("lockstep stream diverged from the pinned event-driven fingerprint:\n"+
					"  lockstep: %d lines sha %.12s…\n  pinned:   %d lines sha %.12s…",
					got.Lines, got.SHA256, pinned.Lines, pinned.SHA256)
			}
		})
	}
}

// fingerprintLockstep mirrors fingerprint but forces the lockstep engine
// with checks off, the configuration under which the crawl replay engages.
func fingerprintLockstep(t *testing.T, p simgen.Params) goldenEntry {
	t.Helper()
	cfg, err := p.Config(sim.Lockstep)
	if err != nil {
		t.Fatalf("%v: %v", p, err)
	}
	cfg.Checks = sim.ChecksOff
	w := &lineCountingHash{h: sha256.New()}
	bw := bufio.NewWriter(w)
	cfg.EventLog = bw
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatalf("%v: %v", p, err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatalf("%v: %v", p, err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	return goldenEntry{SHA256: hex.EncodeToString(w.h.Sum(nil)), Lines: w.lines}
}
