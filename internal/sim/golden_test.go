package sim_test

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"hash"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"quetzal/internal/sim"
	"quetzal/internal/simgen"
)

// The golden-trace regression layer: each scenario's full event stream
// (every capture, arrival, scheduling decision, classification,
// transmission, job completion and power transition, with timestamps) is
// hashed into a fingerprint committed under testdata/. Any behavioral
// change to either engine — intended or not — moves a fingerprint and
// fails this test; run
//
//	go test ./internal/sim/ -run TestGoldenTraces -update
//
// to regenerate after an INTENDED change, and review the fingerprint diff
// together with the code change (see DESIGN.md §8).
//
// The stream is deterministic by construction (seeded RNG, no map
// iteration, no wall-clock); timestamps are %.6f-formatted float64s, so
// fingerprints are portable across platforms with IEEE-754 float64
// semantics (CI and the reference environment are both amd64).
var update = flag.Bool("update", false, "rewrite golden trace fingerprints")

// goldenScenarios name the runs whose event streams are pinned. Params are
// simgen integer-knob recipes: compact, printable, engine-independent.
var goldenScenarios = []struct {
	name string
	p    simgen.Params
}{
	{"quetzal-constant", simgen.Params{Seed: 101, System: 0, PowerMW: 40, NumEvents: 5, EventDurS: 10, CapMF: 33, BufCap: 10, CapturePerMS: 1000}},
	{"noadapt-constant", simgen.Params{Seed: 102, System: 1, PowerMW: 40, NumEvents: 5, EventDurS: 10, CapMF: 33, BufCap: 10, CapturePerMS: 1000}},
	{"quetzal-square-starved", simgen.Params{Seed: 103, System: 0, PowerKind: 1, PowerMW: 12, NumEvents: 5, EventDurS: 10, CapMF: 20, BufCap: 6, CapturePerMS: 800}},
	{"catnap-solar", simgen.Params{Seed: 104, System: 3, PowerKind: 2, PowerMW: 30, NumEvents: 5, EventDurS: 10, CapMF: 33, BufCap: 10, CapturePerMS: 1000}},
	{"noadapt-periodic-ckpt", simgen.Params{Seed: 105, System: 1, Checkpoint: 2, PowerMW: 10, NumEvents: 4, EventDurS: 8, CapMF: 15, BufCap: 8, CapturePerMS: 1000}},
	{"pzo-msp430-jitter", simgen.Params{Seed: 106, Profile: 1, System: 5, JitterPct: 20, PowerMW: 25, NumEvents: 5, EventDurS: 10, CapMF: 33, BufCap: 10, CapturePerMS: 1000}},
	// Hardware-realism scenarios (internal/faults): transient task faults
	// with a k=2 reserve plus a 10 s harvester dropout and the default
	// per-sample measurement cost; and a hot junction with a ±5 °C diurnal
	// swing around 45 °C so quantisation skew moves the event stream.
	{"faulty", simgen.Params{Seed: 107, System: 0, PowerMW: 40, NumEvents: 5, EventDurS: 10, CapMF: 33, BufCap: 10, CapturePerMS: 1000, FaultPct: 40, FaultLimit: 2, DropoutS: 10, MeasNJ: 250}},
	{"hot", simgen.Params{Seed: 108, System: 0, PowerMW: 25, NumEvents: 5, EventDurS: 10, CapMF: 33, BufCap: 10, CapturePerMS: 1000, TempC: 45, TempSwing: 5}},
}

// goldenEntry is one committed fingerprint.
type goldenEntry struct {
	SHA256 string `json:"sha256"`
	Lines  int    `json:"lines"`
}

const goldenPath = "testdata/golden.json"

// lineCountingHash tees the event stream into a hash and a line count.
type lineCountingHash struct {
	h     hash.Hash
	lines int
}

func (w *lineCountingHash) Write(p []byte) (int, error) {
	for _, b := range p {
		if b == '\n' {
			w.lines++
		}
	}
	return w.h.Write(p)
}

// fingerprint runs one scenario under one engine and hashes its event log.
func fingerprint(t *testing.T, p simgen.Params, engine sim.EngineKind) goldenEntry {
	t.Helper()
	cfg, err := p.Config(engine)
	if err != nil {
		t.Fatalf("%v: %v", p, err)
	}
	w := &lineCountingHash{h: sha256.New()}
	bw := bufio.NewWriter(w)
	cfg.EventLog = bw
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatalf("%v: %v", p, err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatalf("%v: %v", p, err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	return goldenEntry{SHA256: hex.EncodeToString(w.h.Sum(nil)), Lines: w.lines}
}

func TestGoldenTraces(t *testing.T) {
	got := map[string]goldenEntry{}
	for _, sc := range goldenScenarios {
		p := sc.p.Normalize()
		if p != sc.p {
			t.Errorf("scenario %s: params %v not normalized", sc.name, sc.p)
		}
		for _, engine := range []sim.EngineKind{sim.FixedIncrement, sim.EventDriven} {
			key := fmt.Sprintf("%s/%s", sc.name, engine)
			got[key] = fingerprint(t, p, engine)
		}
	}

	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d fingerprints to %s", len(got), goldenPath)
		return
	}

	buf, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("no golden file (%v) — run: go test ./internal/sim/ -run TestGoldenTraces -update", err)
	}
	var want map[string]goldenEntry
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatalf("corrupt %s: %v", goldenPath, err)
	}

	keys := make([]string, 0, len(got))
	for k := range got {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		w, ok := want[k]
		if !ok {
			t.Errorf("%s: no committed fingerprint — run with -update and commit the diff", k)
			continue
		}
		if g := got[k]; g != w {
			t.Errorf("%s: event stream changed: %d lines sha %.12s…, committed %d lines sha %.12s…\n"+
				"  if this change is intended, rerun with -update and commit testdata/golden.json alongside it",
				k, g.Lines, g.SHA256, w.Lines, w.SHA256)
		}
	}
	for k := range want {
		if _, ok := got[k]; !ok {
			t.Errorf("%s: committed fingerprint has no scenario (stale entry in %s)", k, goldenPath)
		}
	}
}

// TestGoldenDeterminism guards the property the fingerprints depend on:
// the same scenario hashed twice yields the same stream.
func TestGoldenDeterminism(t *testing.T) {
	p := goldenScenarios[0].p.Normalize()
	a := fingerprint(t, p, sim.EventDriven)
	b := fingerprint(t, p, sim.EventDriven)
	if a != b {
		t.Fatalf("event stream not deterministic: %+v vs %+v", a, b)
	}
}
