package sim

import (
	"strings"
	"testing"

	"quetzal/internal/device"
	"quetzal/internal/trace"
)

// Mutation tests: deliberately corrupt the simulation state mid-run and
// prove the invariant checker turns the corruption into a Run error. This
// is the acceptance check for the checker itself — if these fail, the
// "invariant tax" every other test pays is buying nothing.

// mutationConfig is a small, steady scenario that runs long enough for a
// mid-run mutation to land (60 s of simulated time).
func mutationConfig(t *testing.T, engine EngineKind) Config {
	t.Helper()
	prof := device.Apollo4()
	app := prof.PersonDetectionApp()
	return Config{
		Engine:     engine,
		Profile:    prof,
		App:        app,
		Controller: noadaptController(t, app),
		Power:      trace.Constant{P: 0.1},
		Events:     steadyEvents(3, 3, 15, true),
		Seed:       7,
	}
}

// TestMutationEnergyBugCaught injects an energy-accounting bug — the store
// is teleported to a different charge level without any harvest or draw
// being booked — and requires both engines to report it as an
// energy-conservation violation.
func TestMutationEnergyBugCaught(t *testing.T) {
	for _, engine := range []EngineKind{FixedIncrement, EventDriven} {
		t.Run(engine.String(), func(t *testing.T) {
			s, err := New(mutationConfig(t, engine))
			if err != nil {
				t.Fatal(err)
			}
			// Two opposite jumps so at least one moves the stored energy no
			// matter where the trajectory happens to sit when the hook fires.
			s.Machine().StepHook = func(step int) {
				switch step {
				case 50:
					s.Store().SetFraction(1)
				case 200:
					s.Store().SetFraction(0)
				}
			}
			_, err = s.Run()
			if err == nil {
				t.Fatal("injected energy-accounting bug not caught by invariant checker")
			}
			if !strings.Contains(err.Error(), "energy-conservation") {
				t.Fatalf("injected energy bug reported as %q, want an energy-conservation violation", err)
			}
			if c := s.Checker(); c == nil || c.MaxDriftJ() == 0 {
				t.Fatal("checker recorded no conservation drift for an injected jump")
			}
		})
	}
}

// TestMutationControlRunsClean is the control arm: the same scenario with
// no mutation must pass every invariant, so the test above fails for the
// injected bug and nothing else.
func TestMutationControlRunsClean(t *testing.T) {
	for _, engine := range []EngineKind{FixedIncrement, EventDriven} {
		t.Run(engine.String(), func(t *testing.T) {
			s, err := New(mutationConfig(t, engine))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Run(); err != nil {
				t.Fatalf("clean run violated invariants: %v", err)
			}
		})
	}
}
