package sim

import (
	"testing"

	"quetzal/internal/baseline"
	"quetzal/internal/core"
	"quetzal/internal/device"
	"quetzal/internal/energy"
	"quetzal/internal/metrics"
	"quetzal/internal/model"
	"quetzal/internal/trace"
)

// steadyEvents builds a trace of n back-to-back interesting events with
// gaps, deterministic and easy to reason about.
func steadyEvents(n int, dur, gap float64, interesting bool) *trace.EventTrace {
	tr := &trace.EventTrace{}
	t := gap
	for i := 0; i < n; i++ {
		tr.Events = append(tr.Events, trace.Event{Start: t, Duration: dur, Interesting: interesting})
		t += dur + gap
	}
	return tr
}

func quetzalController(t *testing.T, app *model.App) core.Controller {
	t.Helper()
	r, err := core.New(core.Config{App: app, CapturePeriod: 1})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func noadaptController(t *testing.T, app *model.App) core.Controller {
	t.Helper()
	c, err := baseline.NoAdapt(app)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	prof := device.Apollo4()
	app := prof.PersonDetectionApp()
	ctl := noadaptController(t, app)
	events := steadyEvents(1, 5, 5, true)
	power := trace.Constant{P: 0.02}

	cases := []Config{
		{},                              // no controller
		{Controller: ctl},               // no power
		{Controller: ctl, Power: power}, // no events
		{Controller: ctl, Power: power, Events: events, Profile: prof, CapturePeriod: -1},
		{Controller: ctl, Power: power, Events: events, Profile: prof, StepDt: -1},
		{Controller: ctl, Power: power, Events: events, Profile: prof, BufferCapacity: -1},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: New accepted invalid config", i)
		}
	}
	if _, err := New(Config{Controller: ctl, Power: power, Events: events, Profile: prof, App: app}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// With generous constant power and sparse events, NoAdapt should process
// everything: no IBO drops, interesting inputs reported at high quality.
func TestEasyConditionsNoLosses(t *testing.T) {
	prof := device.Apollo4()
	app := prof.PersonDetectionApp()
	cfg := Config{
		Profile:    prof,
		App:        app,
		Controller: noadaptController(t, app),
		Power:      trace.Constant{P: 0.2}, // 200 mW: everything compute-bound
		Events:     steadyEvents(5, 3, 30, true),
		Seed:       1,
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.InterestingArrivals == 0 {
		t.Fatal("no interesting arrivals; event wiring broken")
	}
	if got := res.IBOLossesInteresting(); got != 0 {
		t.Errorf("IBO losses = %d under easy conditions, want 0", got)
	}
	if res.CaptureMisses != 0 {
		t.Errorf("capture misses = %d at 200 mW, want 0", res.CaptureMisses)
	}
	// MobileNetV2 FN = 6 %: nearly all interesting inputs reported, all at
	// high quality (NoAdapt never degrades).
	if res.LowQInteresting != 0 {
		t.Errorf("NoAdapt sent %d low-quality packets", res.LowQInteresting)
	}
	if res.ReportedInteresting() < res.InterestingArrivals*3/4 {
		t.Errorf("reported %d of %d interesting", res.ReportedInteresting(), res.InterestingArrivals)
	}
	if res.Brownouts != 0 {
		t.Errorf("brownouts = %d at 200 mW, want 0", res.Brownouts)
	}
}

// Starving the device of power must produce brownouts, capture misses, and
// buffer overflows for a non-adaptive controller under sustained activity.
func TestStarvationCausesIBOs(t *testing.T) {
	prof := device.Apollo4()
	app := prof.PersonDetectionApp()
	cfg := Config{
		Profile:    prof,
		App:        app,
		Controller: noadaptController(t, app),
		Power:      trace.Constant{P: 0.002}, // 2 mW
		Events:     steadyEvents(3, 120, 20, true),
		Seed:       2,
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Brownouts == 0 {
		t.Error("no brownouts at 2 mW with MobileNetV2 + radio workload")
	}
	if res.IBOLossesInteresting() == 0 {
		t.Error("no IBO losses for NoAdapt under sustained events at 2 mW")
	}
	if res.DiscardedFraction() < 0.2 {
		t.Errorf("discarded fraction = %g, want substantial", res.DiscardedFraction())
	}
}

// Quetzal must discard fewer interesting inputs than NoAdapt under pressure
// — the paper's headline result, on a miniature workload.
func TestQuetzalBeatsNoAdapt(t *testing.T) {
	prof := device.Apollo4()
	events := steadyEvents(6, 60, 30, true)
	power := trace.SquareWave{High: 0.080, Low: 0.003, Period: 120, Duty: 0.5}

	run := func(ctl core.Controller) metrics.Results {
		app := prof.PersonDetectionApp()
		s, err := New(Config{
			Profile: prof, App: app, Controller: ctl,
			Power: power, Events: events, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	appQ := prof.PersonDetectionApp()
	qz := run(quetzalController(t, appQ))
	na := run(noadaptController(t, prof.PersonDetectionApp()))

	if qz.InterestingDiscarded() >= na.InterestingDiscarded() {
		t.Errorf("quetzal discarded %d (IBO %d, FN %d), noadapt %d (IBO %d, FN %d) — want quetzal lower",
			qz.InterestingDiscarded(), qz.IBOLossesInteresting(), qz.FalseNegatives,
			na.InterestingDiscarded(), na.IBOLossesInteresting(), na.FalseNegatives)
	}
	if qz.Degradations == 0 {
		t.Error("quetzal never degraded under pressure; IBO engine inert?")
	}
	if qz.IBOPredictions == 0 {
		t.Error("quetzal predicted no IBOs under pressure")
	}
}

// An infinite buffer (the Ideal baseline) must see zero IBO losses; only
// classifier false negatives remain.
func TestIdealInfiniteBuffer(t *testing.T) {
	prof := device.Apollo4()
	app := prof.PersonDetectionApp()
	s, err := New(Config{
		Profile: prof, App: app,
		Controller:     noadaptController(t, app),
		Power:          trace.Constant{P: 0.02},
		Events:         steadyEvents(3, 60, 20, true),
		BufferCapacity: 1 << 20,
		DrainTime:      600,
		Seed:           3,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := res.IBOLossesInteresting() + res.IBODropsOther + res.IBOReinsertOther; got != 0 {
		t.Errorf("IBO losses = %d with an infinite buffer", got)
	}
	if res.FalseNegatives == 0 {
		t.Error("no false negatives at all; classifier model inert?")
	}
}

// Capture misses: with the device starved completely, every frame during
// the off period is missed.
func TestCaptureMissesWhileOff(t *testing.T) {
	prof := device.Apollo4()
	app := prof.PersonDetectionApp()
	store := energy.DefaultConfig()
	s, err := New(Config{
		Profile: prof, App: app,
		Controller: noadaptController(t, app),
		Power:      trace.Constant{P: 0}, // never harvests
		Events:     steadyEvents(1, 30, 5, true),
		Store:      store,
		Seed:       4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Drain the store up front so the device is off for the whole run.
	s.Store().SetFraction(0)
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.CaptureMisses != res.Captures {
		t.Errorf("capture misses = %d of %d, want all", res.CaptureMisses, res.Captures)
	}
	if res.MissedInteresting == 0 {
		t.Error("no interesting capture misses recorded")
	}
	if res.Arrivals != 0 {
		t.Errorf("arrivals = %d with a dead device", res.Arrivals)
	}
}

// Lower capture rates must capture fewer interesting frames (Fig 2b).
func TestCaptureRateSweepShape(t *testing.T) {
	prof := device.Apollo4()
	events := steadyEvents(10, 8, 15, true)
	arrivalsAt := func(period float64) int {
		app := prof.PersonDetectionApp()
		s, err := New(Config{
			Profile: prof, App: app,
			Controller:    noadaptController(t, app),
			Power:         trace.Constant{P: 0.05},
			Events:        events,
			CapturePeriod: period,
			Seed:          5,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.InterestingArrivals
	}
	fast := arrivalsAt(1)
	slow := arrivalsAt(5)
	if slow >= fast {
		t.Errorf("5 s capture period saw %d interesting arrivals, 1 s saw %d — want fewer at slower rate",
			slow, fast)
	}
	if fast == 0 {
		t.Fatal("no interesting arrivals at 1 FPS")
	}
}

// Intermittent execution: a task bigger than the usable store must complete
// across multiple charge cycles via JIT checkpointing.
func TestIntermittentTaskCompletion(t *testing.T) {
	prof := device.Apollo4()
	// Shrink the store so one MobileNetV2+report pipeline spans several
	// charges: usable ≈ ½·3.3mF·(3²−1.8²) ≈ 9.5 mJ < 24 mJ ML energy.
	store := energy.DefaultConfig()
	store.Capacitance = 0.0033
	app := prof.PersonDetectionApp()
	s, err := New(Config{
		Profile: prof, App: app,
		Controller: noadaptController(t, app),
		Power:      trace.Constant{P: 0.004},
		Events:     steadyEvents(1, 2, 10, true),
		Store:      store,
		DrainTime:  300,
		Seed:       6,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Brownouts < 2 {
		t.Errorf("brownouts = %d, want several (store smaller than task energy)", res.Brownouts)
	}
	if res.JobsCompleted == 0 {
		t.Error("no jobs completed despite JIT checkpointing")
	}
}

// Energy conservation at the system level.
func TestEnergyAccounting(t *testing.T) {
	prof := device.Apollo4()
	app := prof.PersonDetectionApp()
	s, err := New(Config{
		Profile: prof, App: app,
		Controller: quetzalController(t, app),
		Power:      trace.Constant{P: 0.01},
		Events:     steadyEvents(3, 20, 10, true),
		Seed:       8,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.HarvestedJoules <= 0 || res.ConsumedJoules <= 0 {
		t.Errorf("energy accounting empty: harvested %g, consumed %g",
			res.HarvestedJoules, res.ConsumedJoules)
	}
	if res.ConsumedJoules > res.HarvestedJoules+s.Store().UsableCapacity()+1e-6 {
		t.Errorf("consumed %g J exceeds harvested %g J + initial store",
			res.ConsumedJoules, res.HarvestedJoules)
	}
}

// Overhead accounting: Quetzal (module) and Quetzal (division) must both
// charge overhead, with the division path charging more.
func TestOverheadAccounting(t *testing.T) {
	prof := device.MSP430()
	events := steadyEvents(5, 10, 10, true)
	run := func(kind core.EstimatorKind) metrics.Results {
		app := prof.PersonDetectionApp()
		r, err := core.New(core.Config{App: app, CapturePeriod: 1, Kind: kind})
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(Config{
			Profile: prof, App: app, Controller: r,
			Power:  trace.Constant{P: 0.02},
			Events: events,
			Seed:   9,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	mod := run(core.HardwareModule)
	div := run(core.ExactDivision)
	if mod.OverheadJoules <= 0 || div.OverheadJoules <= 0 {
		t.Fatalf("overheads not charged: module %g J, division %g J",
			mod.OverheadJoules, div.OverheadJoules)
	}
	if mod.SchedInvocations == 0 {
		t.Fatal("no scheduler invocations recorded")
	}
	perInvMod := mod.OverheadJoules / float64(mod.SchedInvocations)
	perInvDiv := div.OverheadJoules / float64(div.SchedInvocations)
	if perInvMod >= perInvDiv {
		t.Errorf("module per-invocation overhead %g J not below division %g J", perInvMod, perInvDiv)
	}
}

// The fused single-job app must work end to end and exercise conditional
// task probabilities.
func TestFusedAppRuns(t *testing.T) {
	prof := device.Apollo4()
	app := prof.FusedPipelineApp()
	r, err := core.New(core.Config{App: app, CapturePeriod: 1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Profile: prof, App: app, Controller: r,
		Power:  trace.Constant{P: 0.02},
		Events: steadyEvents(4, 15, 10, false), // uninteresting events: mostly TN
		Seed:   10,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.JobsCompleted == 0 {
		t.Fatal("fused app completed no jobs")
	}
	if res.TrueNegatives == 0 {
		t.Error("uninteresting events produced no true negatives")
	}
	// Conditional radio must fire only on (false) positives.
	if res.TotalPackets() != res.FalsePositives {
		t.Errorf("packets %d != false positives %d for uninteresting-only workload",
			res.TotalPackets(), res.FalsePositives)
	}
}

// Determinism: identical configs produce identical results.
func TestDeterminism(t *testing.T) {
	prof := device.Apollo4()
	events := steadyEvents(4, 30, 15, true)
	power := trace.SquareWave{High: 0.02, Low: 0.001, Period: 60, Duty: 0.5}
	run := func() metrics.Results {
		app := prof.PersonDetectionApp()
		s, err := New(Config{
			Profile: prof, App: app,
			Controller: quetzalController(t, app),
			Power:      power, Events: events, Seed: 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("two identical runs differ:\n%+v\n%+v", a, b)
	}
}
