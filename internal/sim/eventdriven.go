package sim

import (
	"context"
	"fmt"
)

// EngineKind selects the time-advance mechanism.
type EngineKind int

const (
	// FixedIncrement advances in constant StepDt steps — the paper's §6.3
	// simulator and the reference semantics.
	FixedIncrement EngineKind = iota
	// EventDriven advances in variable-length segments bounded by the next
	// discrete event (capture tick, activity completion, store threshold
	// crossing, power-sample boundary). Within such a segment the step
	// dynamics are piecewise-linear, so the same step() transition applies
	// exactly; runs are typically 50–200× faster with statistically
	// matching results (validated in tests). Use it for large sweeps; use
	// FixedIncrement for the paper-faithful reference.
	EventDriven
)

// String names the engine.
func (e EngineKind) String() string {
	switch e {
	case FixedIncrement:
		return "fixed-increment"
	case EventDriven:
		return "event-driven"
	default:
		return fmt.Sprintf("EngineKind(%d)", int(e))
	}
}

// maxSegment caps event-driven segments so that left-endpoint power
// sampling over the (1 s-gridded, linearly interpolated) trace stays close
// to the fixed-increment integral.
const maxSegment = 0.25

// minSegment guards against zero-length progress.
const minSegment = 1e-6

// runEventDriven advances the world to cfg.Duration in variable segments,
// polling ctx for cancellation between segments.
func (s *Simulator) runEventDriven(ctx context.Context) error {
	end := s.cfg.Duration
	for i := 0; s.now < end; i++ {
		if i%ctxCheckStride == 0 && ctx.Err() != nil {
			return s.canceled(ctx)
		}
		if s.stepHook != nil {
			s.stepHook(i)
		}
		dt := s.segment(end)
		s.step(dt)
		s.now += dt
		s.observe()
	}
	s.now = end
	return nil
}

// segment returns the largest dt that contains no discrete event.
func (s *Simulator) segment(end float64) float64 {
	dt := maxSegment
	limit := func(v float64) {
		if v < dt {
			dt = v
		}
	}
	limit(end - s.now)

	// Next camera tick: land exactly on it; when the tick fires within
	// this very step, bound the segment by the capture pipeline's own
	// length so the step charges it accurately.
	if s.nextCapture > s.now {
		limit(s.nextCapture - s.now)
	} else {
		limit(s.app.CaptureTexe)
	}
	// Timeline row boundary.
	if s.cfg.Timeline != nil && s.nextTimeline > s.now {
		limit(s.nextTimeline - s.now)
	}

	on := s.store.On()
	mcu := s.cfg.Profile.MCU

	switch {
	case len(s.captures) > 0:
		// Capture pipeline progress at CapturePexe from the priority path.
		c := s.captures[0]
		limit(c.remaining)
		limit(s.storeDepletion(s.app.CapturePexe, false))
	case !on:
		// Browned out: nothing but harvest until the store reaches VOn.
		limit(s.storeRestart())
	case s.restoreLeft > 0:
		limit(s.restoreLeft)
		limit(s.storeDepletion(mcu.RestorePower, true))
	case s.exec != nil:
		e := s.exec
		task := e.job.Tasks[e.taskIdx]
		opt := task.Options[e.options[e.taskIdx]]
		if e.aborted {
			limit(minSegment) // abort handled on the next step
			break
		}
		if task.Atomic && !e.started && s.store.UsableEnergy() < s.atomicEnergyBudget(opt) {
			// Waiting for the reservation: charge until it is met.
			limit(s.storeCharge(s.atomicEnergyBudget(opt) - s.store.UsableEnergy()))
			break
		}
		limit(e.remaining)
		limit(s.storeDepletion(opt.Pexe, true))
		if s.cfg.Checkpoint == PeriodicCheckpoint && !task.Atomic {
			// Do not skip a checkpoint boundary within one segment.
			progressed := e.ckptAt - e.remaining
			next := s.cfg.CheckpointInterval - progressed
			if next > 0 {
				limit(next)
			} else {
				limit(minSegment)
			}
		}
	case s.buf.Len() > 0:
		// Scheduler invocation: effectively instantaneous.
		limit(minSegment)
	default:
		// Idle until the next capture; the capture bound above covers it.
		limit(s.storeDepletion(mcu.IdlePower, true))
	}

	if dt < minSegment {
		dt = minSegment
	}
	return dt
}

// harvestRate returns the net power the store gains from the environment at
// the segment start (post-efficiency, pre-leakage).
func (s *Simulator) harvestRate() float64 {
	p := s.cfg.Power.Power(s.now) * s.cfg.Store.HarvestEfficiency
	return p - s.cfg.Store.LeakagePower
}

// storeDepletion returns the time until the store would cross the brown-out
// floor while drawing drawPower against the current harvest. It returns a
// large value when the store is charging on net. The clampedAtMax flag is
// unused today but kept for symmetry with storeCharge.
func (s *Simulator) storeDepletion(drawPower float64, _ bool) float64 {
	net := s.harvestRate() - drawPower
	if net >= 0 {
		return maxSegment
	}
	usable := s.store.UsableEnergy()
	if usable <= 0 {
		return minSegment
	}
	return usable / -net
}

// storeCharge returns the time to accumulate the given energy at the
// current net harvest rate (large when not charging).
func (s *Simulator) storeCharge(energy float64) float64 {
	if energy <= 0 {
		return minSegment
	}
	net := s.harvestRate()
	if net <= 0 {
		return maxSegment
	}
	return energy / net
}

// storeRestart returns the time until a browned-out store reaches the VOn
// restart threshold at the current harvest.
func (s *Simulator) storeRestart() float64 {
	cfg := s.cfg.Store
	eOn := 0.5 * cfg.Capacitance * cfg.VOn * cfg.VOn
	deficit := eOn - s.store.Energy()
	return s.storeCharge(deficit)
}
