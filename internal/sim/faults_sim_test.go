package sim

// Simulator-level tests for the hardware-realism layer (internal/faults):
// mutation tests proving the new invariant checks actually fire, the
// no-double-credit contract of fault re-execution, lockstep engagement with
// faults enabled, and the zero-spec no-op guarantee.

import (
	"bufio"
	"bytes"
	"strings"
	"testing"

	"quetzal/internal/device"
	"quetzal/internal/faults"
	"quetzal/internal/invariant"
	"quetzal/internal/trace"
)

// faultsConfig is mutationConfig plus a realism spec.
func faultsConfig(t *testing.T, engine EngineKind, spec faults.Spec) Config {
	cfg := mutationConfig(t, engine)
	cfg.Faults = spec
	return cfg
}

// TestMutationMeasDoubleChargeCaught proves the meas-conservation identity
// has teeth: a clean run's final state passes a fresh checker, and the same
// state with one sample's energy booked twice fails it — by exactly the
// double-charge bug class the identity was designed to catch.
func TestMutationMeasDoubleChargeCaught(t *testing.T) {
	spec := faults.Spec{MeasEnergyNJ: 250, MeasLatencyUS: 20}
	for _, engine := range []EngineKind{FixedIncrement, EventDriven} {
		t.Run(engine.String(), func(t *testing.T) {
			s, err := New(faultsConfig(t, engine, spec))
			if err != nil {
				t.Fatal(err)
			}
			res, err := s.Run()
			if err != nil {
				t.Fatalf("clean run violated invariants: %v", err)
			}
			if res.MeasSamples == 0 {
				t.Fatal("measurement cost configured but no samples charged")
			}
			perJ, _ := spec.MeasCost()
			m := s.Machine()
			fs := invariant.FinalState{
				StepState:       m.Snapshot(),
				Results:         res,
				PendingCaptures: m.PendingCaptures(),
			}

			// Control arm: the genuine final state satisfies every check.
			if err := invariant.New(invariant.Config{MeasPerSampleJ: perJ}).Finish(fs); err != nil {
				t.Fatalf("control arm: clean final state rejected: %v", err)
			}

			// Mutation: one sample charged twice.
			fs.Results.MeasJoules += perJ
			err = invariant.New(invariant.Config{MeasPerSampleJ: perJ}).Finish(fs)
			if err == nil {
				t.Fatal("injected measurement double-charge not caught")
			}
			if !strings.Contains(err.Error(), "meas-conservation") {
				t.Fatalf("double-charge reported as %q, want a meas-conservation violation", err)
			}
		})
	}
}

// TestMutationDropoutHarvestCaught injects a harvest into the store in the
// middle of a declared dropout window and requires the checker to flag it:
// dropout windows must harvest exactly 0 J, bitwise.
func TestMutationDropoutHarvestCaught(t *testing.T) {
	spec := faults.Spec{DropoutStartS: 5, DropoutDurS: 10}
	for _, engine := range []EngineKind{FixedIncrement, EventDriven} {
		t.Run(engine.String(), func(t *testing.T) {
			s, err := New(faultsConfig(t, engine, spec))
			if err != nil {
				t.Fatal(err)
			}
			injected := false
			s.Machine().StepHook = func(int) {
				// Well inside the [5,15) window, after the store has drained
				// enough that the injected energy is not clamped away.
				if now := s.Machine().Now(); !injected && now > 8 && now < 13 {
					injected = true
					s.Store().Harvest(0.05, 0.001)
				}
			}
			_, err = s.Run()
			if !injected {
				t.Fatal("mutation never fired (run too short?)")
			}
			if err == nil {
				t.Fatal("injected in-dropout harvest not caught by invariant checker")
			}
			if !strings.Contains(err.Error(), "dropout-harvest") {
				t.Fatalf("injected harvest reported as %q, want a dropout-harvest violation", err)
			}
		})
	}
}

// TestMutationFaultsControlRunsClean is the control arm for both mutation
// tests above under the full realism spec: no mutation, no violations.
func TestMutationFaultsControlRunsClean(t *testing.T) {
	spec := faults.Spec{
		TaskFaultPct: 100, TaskFaultLimit: 2,
		DropoutStartS: 5, DropoutDurS: 10,
		MeasEnergyNJ: 250, MeasLatencyUS: 20,
	}
	for _, engine := range []EngineKind{FixedIncrement, EventDriven} {
		t.Run(engine.String(), func(t *testing.T) {
			s, err := New(faultsConfig(t, engine, spec))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Run(); err != nil {
				t.Fatalf("clean faulty run violated invariants: %v", err)
			}
		})
	}
}

// TestFaultReexecutionNoDoubleCredit pins the re-execution accounting: in an
// uncontended scenario (generous power, sparse events) a k-fault run must
// deliver exactly the work of the fault-free run — same completions, same
// packets, same per-option usage — while paying for it in time. Faults delay
// credit; they never duplicate or destroy it.
func TestFaultReexecutionNoDoubleCredit(t *testing.T) {
	base := func(engine EngineKind) Config {
		prof := device.Apollo4()
		app := prof.PersonDetectionApp()
		return Config{
			Engine:     engine,
			Profile:    prof,
			App:        app,
			Controller: noadaptController(t, app),
			Power:      trace.Constant{P: 0.2}, // uncontended: everything compute-bound
			Events:     steadyEvents(4, 3, 30, true),
			Seed:       7,
		}
	}
	const k = 2
	for _, engine := range []EngineKind{FixedIncrement, EventDriven} {
		t.Run(engine.String(), func(t *testing.T) {
			clean, err := New(base(engine))
			if err != nil {
				t.Fatal(err)
			}
			cleanRes, err := clean.Run()
			if err != nil {
				t.Fatal(err)
			}

			cfg := base(engine)
			cfg.Faults = faults.Spec{TaskFaultPct: 100, TaskFaultLimit: k}
			faulty, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			faultyRes, err := faulty.Run()
			if err != nil {
				t.Fatal(err)
			}

			if faultyRes.TransientFaults != k {
				t.Errorf("TransientFaults = %d, want the full budget %d at 100%% fault rate", faultyRes.TransientFaults, k)
			}
			if cleanRes.TransientFaults != 0 {
				t.Errorf("fault-free run recorded %d transient faults", cleanRes.TransientFaults)
			}
			if faultyRes.JobsCompleted != cleanRes.JobsCompleted {
				t.Errorf("JobsCompleted %d != fault-free %d (re-execution must not duplicate or drop completions)",
					faultyRes.JobsCompleted, cleanRes.JobsCompleted)
			}
			if got, want := faultyRes.TotalPackets(), cleanRes.TotalPackets(); got != want {
				t.Errorf("TotalPackets %d != fault-free %d", got, want)
			}
			if faultyRes.OptionUsage != cleanRes.OptionUsage {
				t.Errorf("OptionUsage %v != fault-free %v (re-executed tasks double-counted credit)",
					faultyRes.OptionUsage, cleanRes.OptionUsage)
			}
			if faultyRes.SojournSum <= cleanRes.SojournSum {
				t.Errorf("faulty SojournSum %.6f ≤ fault-free %.6f; re-execution must cost time",
					faultyRes.SojournSum, cleanRes.SojournSum)
			}
			if faultyRes.ConsumedJoules <= cleanRes.ConsumedJoules {
				t.Errorf("faulty ConsumedJoules %.6f ≤ fault-free %.6f; re-execution must cost energy",
					faultyRes.ConsumedJoules, cleanRes.ConsumedJoules)
			}
		})
	}
}

// faultyStarvedConfig is a power-starved scenario with the full realism
// spec — the regime where the lockstep crawl replay matters.
func faultyStarvedConfig(t *testing.T, engine EngineKind) Config {
	t.Helper()
	prof := device.Apollo4()
	app := prof.PersonDetectionApp()
	return Config{
		Engine:     engine,
		Profile:    prof,
		App:        app,
		Controller: noadaptController(t, app),
		Power:      trace.Constant{P: 0.012}, // starved: long recharge crawls
		Events:     steadyEvents(5, 10, 5, true),
		Seed:       11,
		Checks:     ChecksOff, // observers disable the crawl replay
		Faults: faults.Spec{
			TaskFaultPct: 100, TaskFaultLimit: 2,
			DropoutStartS: 20, DropoutDurS: 10,
			MeasEnergyNJ: 250, MeasLatencyUS: 20,
		},
	}
}

// TestLockstepFaultsBitIdenticalAndEngaged proves two things at once: with
// the realism layer active the lockstep stepper still commits the event
// engine's exact trajectory (results and event stream bit-identical), and it
// does so while actually replaying crawl segments — not by silently falling
// back to the slow path.
func TestLockstepFaultsBitIdenticalAndEngaged(t *testing.T) {
	run := func(engine EngineKind) (Config, *Simulator, string) {
		cfg := faultyStarvedConfig(t, engine)
		var log bytes.Buffer
		bw := bufio.NewWriter(&log)
		cfg.EventLog = bw
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
		if err := bw.Flush(); err != nil {
			t.Fatal(err)
		}
		return cfg, s, log.String()
	}
	_, ev, evLog := run(EventDriven)
	_, ls, lsLog := run(Lockstep)

	if evRes, lsRes := ev.Results(), ls.Results(); evRes != lsRes {
		t.Errorf("lockstep results diverged from event-driven:\nevent:    %+v\nlockstep: %+v", evRes, lsRes)
	}
	if evLog != lsLog {
		t.Error("lockstep event stream diverged from event-driven under faults")
	}
	if ls.Machine().ReplayedSteps() == 0 {
		t.Error("lockstep crawl replay never engaged under faults; the fast path silently degraded to per-segment stepping")
	}
	if ls.Results().TransientFaults == 0 {
		t.Error("starved faulty scenario injected no transient faults; the test exercises nothing")
	}
}

// TestZeroSpecIsNoOp pins the zero-cost guarantee at the behavior level: an
// explicit zero Spec (even with a fault seed set) must produce the exact
// event stream of a config that never mentions faults.
func TestZeroSpecIsNoOp(t *testing.T) {
	stream := func(mutate func(*Config)) string {
		cfg := mutationConfig(t, EventDriven)
		if mutate != nil {
			mutate(&cfg)
		}
		var log bytes.Buffer
		bw := bufio.NewWriter(&log)
		cfg.EventLog = bw
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
		if err := bw.Flush(); err != nil {
			t.Fatal(err)
		}
		return log.String()
	}
	plain := stream(nil)
	zeroed := stream(func(c *Config) {
		c.Faults = faults.Spec{}
		c.FaultSeed = 999 // ignored: a zero spec disables the layer entirely
	})
	if plain != zeroed {
		t.Error("explicit zero faults.Spec changed the event stream; the disabled layer is not free")
	}
}
