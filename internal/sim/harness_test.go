package sim

import "testing"

// forEachEngine is the shared table harness for scenario tests: it runs the
// scenario once per time-advance engine as a named subtest, pinning that
// scenario-level behavior (restart counting, checkpoint ordering, queueing
// laws, quality-ladder coverage, spawn chains) is engine-independent.
// Scenario configs take the engine as a parameter and set Config.Engine.
func forEachEngine(t *testing.T, run func(t *testing.T, engine EngineKind)) {
	t.Helper()
	for _, engine := range []EngineKind{FixedIncrement, EventDriven} {
		engine := engine
		t.Run(engine.String(), func(t *testing.T) { run(t, engine) })
	}
}
