package sim

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"quetzal/internal/device"
	"quetzal/internal/energy"
	"quetzal/internal/metrics"
	"quetzal/internal/model"
	"quetzal/internal/trace"
)

// atomicApp builds a single-job app whose transmit task is atomic with an
// energy cost sized against the given store.
func atomicApp(texe, pexe float64) *model.App {
	tx := &model.Task{Name: "beacon", Kind: model.Transmit, Atomic: true,
		Options: []model.Option{{Name: "pkt", Texe: texe, Pexe: pexe, HighQuality: true}}}
	return &model.App{
		Name:        "atomic-beacon",
		Jobs:        []*model.Job{{ID: 0, Name: "send", Tasks: []*model.Task{tx}, SpawnJobID: model.NoSpawn}},
		EntryJobID:  0,
		CaptureTexe: 0.01, CapturePexe: 0.001,
	}
}

// An atomic task that browns out mid-transmission must restart from
// scratch, and the restarts must be counted.
func TestAtomicTaskRestartsOnBrownout(t *testing.T) {
	forEachEngine(t, func(t *testing.T, engine EngineKind) {
		prof := device.Apollo4()
		// Tiny store: usable ≈ ½·1.5mF·(3²−1.8²) = 4.3 mJ. The packet needs
		// 0.1 s × 50 mW = 5 mJ > 0.9×usable, so the reservation caps out and
		// the task starts, browns out, and restarts under weak harvest.
		store := energy.DefaultConfig()
		store.Capacitance = 0.0015
		app := atomicApp(0.1, 0.05)
		s, err := New(Config{
			Profile: prof, App: app,
			Engine:     engine,
			Controller: noadaptController(t, app),
			Power:      trace.Constant{P: 0.003},
			Events:     steadyEvents(2, 3, 30, true),
			Store:      store,
			DrainTime:  200,
			Seed:       1,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.AtomicRestarts == 0 {
			t.Error("no atomic restarts despite a store smaller than the packet energy")
		}
	})
}

// With enough banked energy the atomic task must wait for the reservation
// and then complete without restarts.
func TestAtomicTaskReservesEnergy(t *testing.T) {
	forEachEngine(t, func(t *testing.T, engine EngineKind) {
		prof := device.Apollo4()
		app := atomicApp(0.2, 0.12) // 24 mJ per packet, well within the 95 mJ store
		s, err := New(Config{
			Profile: prof, App: app,
			Engine:     engine,
			Controller: noadaptController(t, app),
			Power:      trace.Constant{P: 0.010},
			Events:     steadyEvents(3, 2, 20, true),
			DrainTime:  120,
			Seed:       2,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.TotalPackets() == 0 {
			t.Fatal("atomic transmit never completed")
		}
		if res.AtomicRestarts != 0 {
			t.Errorf("atomic restarts = %d with ample reserved energy, want 0", res.AtomicRestarts)
		}
	})
}

// Checkpoint policies: with progress lost on failure (NoCheckpoint), an
// intermittent workload completes fewer jobs than with JIT checkpointing;
// periodic checkpointing lands between them.
func TestCheckpointPolicyOrdering(t *testing.T) {
	forEachEngine(t, func(t *testing.T, engine EngineKind) {
		prof := device.Apollo4()
		store := energy.DefaultConfig()
		store.Capacitance = 0.004 // usable ≈ 11.5 mJ: MobileNetV2 (12 mJ) spans charges
		run := func(policy CheckpointPolicy) metrics.Results {
			app := prof.PersonDetectionApp()
			s, err := New(Config{
				Profile: prof, App: app,
				Engine:     engine,
				Controller: noadaptController(t, app),
				Power:      trace.Constant{P: 0.004},
				Events:     steadyEvents(4, 10, 20, true),
				Store:      store,
				Checkpoint: policy,
				DrainTime:  200,
				Seed:       3,
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := s.Run()
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		jit := run(JITCheckpoint)
		none := run(NoCheckpoint)
		periodic := run(PeriodicCheckpoint)
		if jit.JobsCompleted == 0 {
			t.Fatal("JIT run completed nothing; store/power calibration broken")
		}
		if none.JobsCompleted > jit.JobsCompleted {
			t.Errorf("NoCheckpoint completed %d > JIT %d", none.JobsCompleted, jit.JobsCompleted)
		}
		if periodic.JobsCompleted < none.JobsCompleted {
			t.Errorf("Periodic completed %d < NoCheckpoint %d", periodic.JobsCompleted, none.JobsCompleted)
		}
		t.Logf("jobs completed: jit=%d periodic=%d none=%d",
			jit.JobsCompleted, periodic.JobsCompleted, none.JobsCompleted)
	})
}

func TestCheckpointPolicyString(t *testing.T) {
	cases := map[CheckpointPolicy]string{
		JITCheckpoint: "jit", NoCheckpoint: "none", PeriodicCheckpoint: "periodic",
		CheckpointPolicy(9): "CheckpointPolicy(9)",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(p), got, want)
		}
	}
}

// Latency jitter: with a large override, observed job times vary, and the
// run still completes consistently (the PID absorbs the error).
func TestTexeJitter(t *testing.T) {
	prof := device.Apollo4()
	forEachEngine(t, func(t *testing.T, engine EngineKind) {
		app := prof.PersonDetectionApp()
		s, err := New(Config{
			Profile: prof, App: app,
			Engine:             engine,
			Controller:         quetzalController(t, app),
			Power:              trace.Constant{P: 0.05},
			Events:             steadyEvents(6, 10, 15, true),
			TexeJitterOverride: 0.5,
			Seed:               4,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.JobsCompleted == 0 {
			t.Fatal("no jobs completed under jitter")
		}
		if err := res.Check(); err != nil {
			t.Fatal(err)
		}
	})
	// Invalid override rejected.
	app := prof.PersonDetectionApp()
	if _, err := New(Config{
		Profile: prof, App: app, Controller: noadaptController(t, app),
		Power: trace.Constant{P: 0.05}, Events: steadyEvents(1, 2, 5, true),
		TexeJitterOverride: 1.5,
	}); err == nil {
		t.Error("New accepted jitter > 1")
	}
}

// Little's Law must hold on the simulator itself: for a stable workload,
// average occupancy ≈ throughput × average sojourn.
func TestLittlesLawHolds(t *testing.T) {
	forEachEngine(t, func(t *testing.T, engine EngineKind) {
		prof := device.Apollo4()
		app := prof.PersonDetectionApp()
		s, err := New(Config{
			Profile: prof, App: app,
			Engine:     engine,
			Controller: noadaptController(t, app),
			Power:      trace.Constant{P: 0.15}, // ample power: stable queue
			Events:     steadyEvents(40, 5, 10, true),
			DrainTime:  120,
			Seed:       5,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.SojournCount < 50 {
			t.Fatalf("only %d completions; workload too small for the law", res.SojournCount)
		}
		lhs := res.AvgOccupancy()
		rhs := res.Throughput() * res.AvgSojourn()
		if lhs <= 0 || rhs <= 0 {
			t.Fatalf("degenerate measurements: L=%g λW=%g", lhs, rhs)
		}
		if math.Abs(lhs-rhs)/rhs > 0.15 {
			t.Errorf("Little's Law violated: L=%.3f, λ·W=%.3f (>15%% apart)", lhs, rhs)
		}
		t.Logf("L=%.3f λ=%.3f W=%.3f λ·W=%.3f", lhs, res.Throughput(), res.AvgSojourn(), rhs)
	})
}

// Timeline output: rows at the configured cadence with a header, under
// either engine (the event engine lands segment boundaries on the row grid
// via the observer horizon).
func TestTimelineOutput(t *testing.T) {
	forEachEngine(t, func(t *testing.T, engine EngineKind) {
		prof := device.Apollo4()
		app := prof.PersonDetectionApp()
		var buf bytes.Buffer
		s, err := New(Config{
			Profile: prof, App: app,
			Engine:           engine,
			Controller:       noadaptController(t, app),
			Power:            trace.Constant{P: 0.02},
			Events:           steadyEvents(2, 5, 10, true),
			Timeline:         &buf,
			TimelineInterval: 2,
			Seed:             6,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
		if lines[0] != "t_s,power_mw,store_mj,occupancy,state" {
			t.Errorf("header = %q", lines[0])
		}
		wantRows := int(res.SimSeconds/2) + 1
		if got := len(lines) - 1; got < wantRows-2 || got > wantRows+2 {
			t.Errorf("timeline rows = %d, want ≈ %d", got, wantRows)
		}
		if !strings.Contains(buf.String(), ",exec:") && !strings.Contains(buf.String(), ",idle") {
			t.Error("timeline rows carry no state labels")
		}
	})
}
