// Package sim is the fixed-increment simulator the evaluation runs on,
// mirroring the paper's custom simulator (§6.3): time advances in 1 ms
// steps; harvested energy is added to the storage element every step; a
// task "runs" by draining the store at its profiled power until its
// profiled latency has elapsed; and a just-in-time checkpointing system
// preserves task progress across power failures (the device browns out at
// VOff, recharges to VOn, pays a restore cost and resumes).
//
// The simulated device runs in parallel to the simulated environment: a
// camera captures frames at a fixed rate regardless of energy or activity;
// frames that coincide with a sensing event pass the pixel-difference
// pre-filter and arrive at the input buffer; the controller under test
// (Quetzal or a baseline) picks buffered inputs to process and the quality
// to process them at. Before each selected job runs, the controller's
// scheduling/degradation logic is charged its own time and energy overhead
// (§6.3: "we evaluated any scheduling policy and degradation-logic
// pertaining to the simulated system, incurring its overheads").
package sim

import (
	"context"
	"fmt"
	"io"
	"math/rand"

	"quetzal/internal/buffer"
	"quetzal/internal/core"
	"quetzal/internal/device"
	"quetzal/internal/energy"
	"quetzal/internal/invariant"
	"quetzal/internal/metrics"
	"quetzal/internal/model"
	"quetzal/internal/trace"
)

// Config describes one simulation run.
type Config struct {
	Profile    device.Profile
	App        *model.App // nil → Profile.PersonDetectionApp()
	Controller core.Controller

	Power  trace.PowerTrace
	Events *trace.EventTrace

	Store energy.StoreConfig // zero → energy.DefaultConfig()

	// Engine selects the time-advance mechanism: the paper's fixed
	// 1 ms increments (default, reference semantics) or the event-driven
	// fast path (see EngineKind).
	Engine EngineKind

	CapturePeriod  float64 // seconds between captures; default 1 (1 FPS)
	StepDt         float64 // simulator step; default 0.001 (1 ms)
	Duration       float64 // simulated seconds; 0 → events end + DrainTime
	DrainTime      float64 // extra time after the last event; default 60 s
	BufferCapacity int     // 0 → Profile.BufferCapacity

	Seed int64 // classifier coin flips

	// Checkpoint selects how execution progress survives power failures;
	// the default is the paper's JIT checkpointing (§6.3). Atomic tasks
	// always restart regardless of policy.
	Checkpoint CheckpointPolicy
	// CheckpointInterval is the progress between periodic checkpoints in
	// seconds (PeriodicCheckpoint only; default 1 s).
	CheckpointInterval float64

	// TexeJitterOverride, when positive, applies the given fractional
	// latency jitter to every task option (the §8 variable-execution-cost
	// extension) regardless of the options' own TexeJitter.
	TexeJitterOverride float64

	// Timeline, when non-nil, receives one CSV row per TimelineInterval of
	// simulated time: time, input power, store energy, buffer occupancy,
	// device state. For plotting and debugging.
	Timeline         io.Writer
	TimelineInterval float64 // default 1 s

	// Checks toggles the runtime invariant checker (internal/invariant):
	// energy-store bounds and conservation, buffer bounds, monotonic time,
	// and end-of-run accounting identities, verified every step/segment.
	// The default (ChecksAuto) enables it, so every test and experiment
	// pays the invariant tax; benchmarks opt out with ChecksOff.
	Checks CheckMode

	// EventLog, when non-nil, receives one line per discrete simulation
	// event (capture, arrival, IBO drop, scheduling decision, classify
	// verdict, transmission, job completion/abort, power transitions).
	// The golden-trace regression layer hashes this stream to fingerprint
	// a run's full behavior; it is also readable for debugging.
	EventLog io.Writer

	Environment string // label copied into the results
}

// CheckMode selects whether the invariant checker runs.
type CheckMode int

const (
	// ChecksAuto (the zero value) enables the invariant checker.
	ChecksAuto CheckMode = iota
	// ChecksOff disables it — for hot benchmark loops only.
	ChecksOff
	// ChecksOn enables it explicitly (same behavior as ChecksAuto).
	ChecksOn
)

// CheckpointPolicy selects the intermittent-computing progress model.
type CheckpointPolicy int

const (
	// JITCheckpoint saves state just in time before the power failure:
	// progress is fully preserved, and only the restore cost is paid on
	// resume (the paper's simulator, citing [8, 9, 47, 61, 64]).
	JITCheckpoint CheckpointPolicy = iota
	// NoCheckpoint loses the current task's progress on every power
	// failure: the task restarts from scratch after the restore.
	NoCheckpoint
	// PeriodicCheckpoint saves progress every CheckpointInterval seconds
	// of execution, paying the restore-equivalent cost per checkpoint; a
	// power failure rolls back to the last checkpoint.
	PeriodicCheckpoint
)

// String names the policy.
func (p CheckpointPolicy) String() string {
	switch p {
	case JITCheckpoint:
		return "jit"
	case NoCheckpoint:
		return "none"
	case PeriodicCheckpoint:
		return "periodic"
	default:
		return fmt.Sprintf("CheckpointPolicy(%d)", int(p))
	}
}

// Simulator executes one configured run. Construct with New.
type Simulator struct {
	cfg   Config
	app   *model.App
	ctl   core.Controller
	store *energy.Store
	buf   *buffer.Buffer
	rng   *rand.Rand
	res   metrics.Results

	// Per-invocation controller overhead.
	ovhTime, ovhPower float64

	// Live execution state.
	now          float64
	nextCapture  float64
	nextSeq      uint64
	captures     []pendingCapture // capture pipeline work in flight
	exec         *jobExec         // job currently executing, nil if idle
	restoreLeft  float64          // restore time still owed after a brownout
	wasOn        bool
	nextTimeline float64
	debug        debugHook
	inv          *invariant.Checker
	// stepHook, when set (tests only), runs before every step/segment;
	// mutation tests use it to inject accounting bugs mid-run and prove
	// the invariant checker catches them.
	stepHook func(step int)
}

// pendingCapture is a frame whose capture pipeline (readout+diff+JPEG) is
// still running; the store/discard decision lands when it finishes.
type pendingCapture struct {
	remaining   float64
	different   bool // an event was active: frame passes the pre-filter
	interesting bool
	capturedAt  float64
}

// jobExec is one job execution in progress.
type jobExec struct {
	input      buffer.Input
	job        *model.Job
	options    []int
	taskIdx    int
	remaining  float64 // remaining latency of the current task
	fullTexe   float64 // this execution's sampled latency for the current task
	ckptAt     float64 // remaining-value at the last periodic checkpoint
	started    bool    // the current task has drawn its first energy
	executed   []bool
	positive   bool // classify-chain state; true until a classifier says no
	startedAt  float64
	predictedS float64
	modelS     float64
	degraded   bool
	restarts   int     // progress-losing restarts of the current task
	ckptFail   float64 // ckptAt at the previous power failure (-1: none yet)
	aborted    bool
}

// New validates the configuration and builds a Simulator.
func New(cfg Config) (*Simulator, error) {
	if cfg.Controller == nil {
		return nil, fmt.Errorf("sim: Controller is required")
	}
	if cfg.Power == nil {
		return nil, fmt.Errorf("sim: Power trace is required")
	}
	if cfg.Events == nil {
		return nil, fmt.Errorf("sim: Events trace is required")
	}
	if err := cfg.Events.Validate(); err != nil {
		return nil, err
	}
	if cfg.App == nil {
		cfg.App = cfg.Profile.PersonDetectionApp()
	}
	if err := cfg.App.Validate(); err != nil {
		return nil, err
	}
	if cfg.Store == (energy.StoreConfig{}) {
		cfg.Store = energy.DefaultConfig()
	}
	if cfg.CapturePeriod == 0 {
		cfg.CapturePeriod = 1
	}
	if cfg.CapturePeriod < 0 {
		return nil, fmt.Errorf("sim: capture period must be positive, got %g", cfg.CapturePeriod)
	}
	if cfg.StepDt == 0 {
		cfg.StepDt = 0.001
	}
	if cfg.StepDt < 0 {
		return nil, fmt.Errorf("sim: step must be positive, got %g", cfg.StepDt)
	}
	if cfg.DrainTime == 0 {
		cfg.DrainTime = 60
	}
	if cfg.Duration == 0 {
		cfg.Duration = cfg.Events.Duration() + cfg.DrainTime
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("sim: nothing to simulate (duration %g)", cfg.Duration)
	}
	if cfg.BufferCapacity == 0 {
		cfg.BufferCapacity = cfg.Profile.BufferCapacity
	}
	if cfg.CheckpointInterval == 0 {
		cfg.CheckpointInterval = 1
	}
	if cfg.CheckpointInterval < 0 {
		return nil, fmt.Errorf("sim: checkpoint interval must be positive, got %g", cfg.CheckpointInterval)
	}
	if cfg.TexeJitterOverride < 0 || cfg.TexeJitterOverride > 1 {
		return nil, fmt.Errorf("sim: jitter override must be in [0,1], got %g", cfg.TexeJitterOverride)
	}
	if cfg.TimelineInterval == 0 {
		cfg.TimelineInterval = 1
	}
	if cfg.BufferCapacity <= 0 {
		return nil, fmt.Errorf("sim: buffer capacity must be positive, got %d", cfg.BufferCapacity)
	}

	s := &Simulator{
		cfg:   cfg,
		app:   cfg.App,
		ctl:   cfg.Controller,
		store: energy.NewStore(cfg.Store),
		buf:   buffer.New(cfg.BufferCapacity),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		wasOn: true,
	}
	s.res.System = cfg.Controller.Name()
	s.res.Environment = cfg.Environment
	if cfg.Checks != ChecksOff {
		s.inv = invariant.New(invariant.Config{})
	}

	ops, usesModule := cfg.Controller.RatioOps()
	if ops > 0 {
		t, e := cfg.Profile.MCU.InvocationOverhead(ops, usesModule)
		s.ovhTime = t
		if t > 0 {
			s.ovhPower = e / t
		}
	}
	return s, nil
}

// Run executes the configured simulation and returns its results.
func (s *Simulator) Run() (metrics.Results, error) {
	return s.RunContext(context.Background())
}

// ctxCheckStride is how many steps/segments run between cancellation
// checks: frequent enough to cancel within microseconds of wall time,
// rare enough to keep ctx polling off the hot path.
const ctxCheckStride = 4096

// RunContext is Run with cooperative cancellation: the main loop polls ctx
// every few thousand steps and abandons the run with a wrapped context
// error noting the simulated time reached. Sweep drivers use this for
// per-run timeouts and ctrl-C.
func (s *Simulator) RunContext(ctx context.Context) (metrics.Results, error) {
	if s.cfg.Engine == EventDriven {
		if err := s.runEventDriven(ctx); err != nil {
			return s.res, err
		}
	} else {
		dt := s.cfg.StepDt
		steps := int(s.cfg.Duration / dt)
		for i := 0; i < steps; i++ {
			if i%ctxCheckStride == 0 && ctx.Err() != nil {
				return s.res, s.canceled(ctx)
			}
			if s.stepHook != nil {
				s.stepHook(i)
			}
			s.now = float64(i) * dt
			s.step(dt)
			s.observe()
		}
	}
	s.finish()
	if s.inv != nil {
		if err := s.inv.Finish(invariant.FinalState{
			StepState:       s.snapshot(),
			Results:         s.res,
			PendingCaptures: len(s.captures),
		}); err != nil {
			return s.res, fmt.Errorf("sim: %w", err)
		}
	} else if err := s.res.Check(); err != nil {
		return s.res, fmt.Errorf("sim: inconsistent accounting: %w", err)
	}
	return s.res, nil
}

// snapshot captures the live state the invariant checker observes.
func (s *Simulator) snapshot() invariant.StepState {
	st := s.store.Stats()
	return invariant.StepState{
		Now: s.now,
		Store: invariant.StoreState{
			Energy:    s.store.Energy(),
			Capacity:  s.store.Capacity(),
			Harvested: st.HarvestedJ,
			Consumed:  st.ConsumedJ,
			Leaked:    st.LeakedJ,
		},
		BufferLen: s.buf.Len(),
		BufferCap: s.buf.Capacity(),
	}
}

// observe feeds the per-step invariant checker, when enabled.
func (s *Simulator) observe() {
	if s.inv == nil {
		return
	}
	s.inv.Step(s.snapshot())
}

// Checker exposes the invariant checker for inspection in tests (nil when
// checks are off).
func (s *Simulator) Checker() *invariant.Checker { return s.inv }

// logf appends one line to the event log, when configured. The stream is
// the behavioral fingerprint the golden-trace layer hashes, so call sites
// must emit deterministically (no map iteration, no wall-clock).
func (s *Simulator) logf(format string, args ...any) {
	if s.cfg.EventLog == nil {
		return
	}
	fmt.Fprintf(s.cfg.EventLog, format, args...)
}

// canceled wraps the context's error with the simulated time reached.
func (s *Simulator) canceled(ctx context.Context) error {
	return fmt.Errorf("sim: run canceled at t=%.3fs: %w", s.now, context.Cause(ctx))
}

// step advances the world by dt.
func (s *Simulator) step(dt float64) {
	// Environment: harvest into the store (this may restart the device).
	s.store.Harvest(s.cfg.Power.Power(s.now), dt)

	on := s.store.On()
	if s.wasOn && !on {
		// Power failed: apply the checkpoint policy to in-flight work.
		s.logf("%.6f brownout\n", s.now)
		s.onPowerFailure()
	}
	if !s.wasOn && on {
		// Power came back: owe the checkpoint restore before any work.
		s.logf("%.6f poweron\n", s.now)
		s.restoreLeft = s.cfg.Profile.MCU.RestoreTime
	}
	s.wasOn = on

	// Little's-Law instrumentation: time-integral of queue occupancy.
	s.res.OccupancyIntegral += float64(s.buf.Len()) * dt
	if s.cfg.Timeline != nil && s.now >= s.nextTimeline {
		s.writeTimeline(on)
		s.nextTimeline += s.cfg.TimelineInterval
	}

	// Camera: captures fire at a fixed rate no matter what.
	for s.now >= s.nextCapture {
		s.capture()
		s.nextCapture += s.cfg.CapturePeriod
	}

	// The capture pipeline is an always-on priority subsystem: it keeps
	// sensing while the compute domain is browned out (that independence
	// is exactly why the buffer can overflow at low power). It preempts
	// job processing while active.
	if len(s.captures) > 0 {
		c := &s.captures[0]
		// Draw only for the time the pipeline can actually use: with
		// variable-length steps (the event-driven engine) dt may exceed
		// the remaining capture work.
		use := dt
		if c.remaining < use {
			use = c.remaining
		}
		frac := s.store.DrawPriority(s.app.CapturePexe, use)
		c.remaining -= use * frac
		if c.remaining <= 1e-12 {
			done := s.captures[0]
			s.captures = s.captures[1:]
			// The pipeline completes use seconds into this step, not at its
			// start; stamp the arrival there so both engines agree on when
			// the input joins the buffer (the event engine's segments make
			// the left endpoint up to CaptureTexe early otherwise).
			prev := s.now
			s.now = prev + use
			s.finishCapture(done)
			s.now = prev
		}
		return
	}

	if !on {
		return // compute browned out
	}

	switch {
	case s.restoreLeft > 0:
		frac := s.store.Draw(s.cfg.Profile.MCU.RestorePower, dt)
		s.restoreLeft -= dt * frac
	case s.exec != nil:
		s.runTask(dt)
	case s.buf.Len() > 0:
		s.invokeController(dt)
	default:
		s.store.Draw(s.cfg.Profile.MCU.IdlePower, dt)
	}
}

// capture registers one camera frame at the current instant.
func (s *Simulator) capture() {
	s.res.Captures++
	ev, active := s.cfg.Events.ActiveAt(s.now)
	different := active
	interesting := active && ev.Interesting

	// The camera runs from the priority path, so a frame is lost only when
	// the store is fully drained to the floor (no energy for even the
	// readout) or the pipeline has a starved backlog.
	if (s.store.UsableEnergy() <= 0 && !s.store.On()) || len(s.captures) >= 4 {
		s.res.CaptureMisses++
		if interesting {
			s.res.MissedInteresting++
		}
		s.logf("%.6f capture-miss interesting=%v\n", s.now, interesting)
		return
	}
	s.logf("%.6f capture different=%v interesting=%v\n", s.now, different, interesting)
	s.captures = append(s.captures, pendingCapture{
		remaining:   s.app.CaptureTexe,
		different:   different,
		interesting: interesting,
		capturedAt:  s.now,
	})
}

// finishCapture applies the pre-filter result once the pipeline completes.
func (s *Simulator) finishCapture(c pendingCapture) {
	s.ctl.ObserveCapture(c.different)
	if !c.different {
		return // unchanged frame, cheaply discarded
	}
	s.res.Arrivals++
	if c.interesting {
		s.res.InterestingArrivals++
	}
	in := buffer.Input{
		Seq:         s.nextSeq,
		CapturedAt:  c.capturedAt,
		Interesting: c.interesting,
		JobID:       s.app.EntryJobID,
		EnqueuedAt:  s.now,
	}
	s.nextSeq++
	if !s.buf.Push(in, false) {
		// Input buffer overflow: the event the paper fights.
		if c.interesting {
			s.res.IBODropsInteresting++
		} else {
			s.res.IBODropsOther++
		}
		s.logf("%.6f ibodrop seq=%d interesting=%v\n", s.now, in.Seq, c.interesting)
		return
	}
	s.logf("%.6f arrive seq=%d interesting=%v occ=%d\n", s.now, in.Seq, c.interesting, s.buf.Len())
}

// invokeController runs the scheduling + degradation logic, charging its
// overhead, and starts the selected job.
func (s *Simulator) invokeController(dt float64) {
	s.res.SchedInvocations++
	if s.ovhTime > 0 {
		// The overhead of one invocation is far below one step; charge it
		// as a lump of time and energy.
		s.res.OverheadSeconds += s.ovhTime
		s.res.OverheadJoules += s.ovhTime * s.ovhPower
		s.store.Draw(s.ovhPower, s.ovhTime)
		if !s.store.On() {
			return
		}
	}
	env := core.Env{
		Now:        s.now,
		InputPower: s.cfg.Power.Power(s.now),
		BufferLen:  s.buf.Len(),
		BufferCap:  s.buf.Capacity(),
	}
	dec, ok := s.ctl.NextJob(env, s.buf)
	if !ok {
		s.store.Draw(s.cfg.Profile.MCU.IdlePower, dt)
		return
	}
	// The input stays in its buffer slot while the job runs — the image
	// still occupies device memory. It leaves (or is re-tagged in place)
	// only when the job completes.
	in, err := s.buf.At(dec.BufferIndex)
	if err != nil {
		// The controller returned a stale index; drop the decision.
		return
	}
	job := s.app.JobByID(dec.JobID)
	if job == nil {
		return
	}
	options := dec.Options
	if len(options) != len(job.Tasks) {
		options = make([]int, len(job.Tasks))
	}
	for i := range options {
		if options[i] < 0 || options[i] >= len(job.Tasks[i].Options) {
			options[i] = 0
		}
	}
	if s.debug != nil {
		lam, corr := 0.0, 0.0
		if rt, ok := s.ctl.(*core.Runtime); ok {
			lam, corr = rt.Lambda(), rt.Correction()
		}
		s.debug(s.now, dec, lam, corr)
	}
	if dec.IBOPredicted {
		s.res.IBOPredictions++
		if dec.IBOAverted {
			s.res.IBOsAverted++
		}
	}
	s.logf("%.6f sched seq=%d job=%d opts=%v degraded=%v ibo=%v\n",
		s.now, in.Seq, dec.JobID, options, dec.Degraded, dec.IBOPredicted)
	s.exec = &jobExec{
		input:      in,
		job:        job,
		options:    options,
		taskIdx:    0,
		executed:   make([]bool, len(job.Tasks)),
		positive:   true,
		startedAt:  s.now,
		predictedS: dec.PredictedS,
		modelS:     dec.ModelS,
		degraded:   dec.Degraded,
	}
	s.startTask()
}

// startTask samples the current task's execution latency (the §8
// variable-cost extension) and initialises its progress state.
func (s *Simulator) startTask() {
	e := s.exec
	opt := e.job.Tasks[e.taskIdx].Options[e.options[e.taskIdx]]
	texe := opt.Texe
	jitter := opt.TexeJitter
	if s.cfg.TexeJitterOverride > 0 {
		jitter = s.cfg.TexeJitterOverride
	}
	if jitter > 0 {
		f := 1 + jitter*s.rng.NormFloat64()
		if f < 0.1 {
			f = 0.1
		}
		if f > 3 {
			f = 3
		}
		texe *= f
	}
	e.fullTexe = texe
	e.remaining = texe
	e.ckptAt = texe
	e.started = false
	e.restarts = 0
	e.ckptFail = -1
}

// atomicEnergyBudget returns the banked energy an atomic task must see
// before it starts: its full energy cost, capped below the store's usable
// capacity so an oversized task cannot livelock the device.
func (s *Simulator) atomicEnergyBudget(opt model.Option) float64 {
	need := opt.Eexe()
	if limit := 0.9 * s.store.UsableCapacity(); need > limit {
		need = limit
	}
	return need
}

// onPowerFailure applies the checkpoint policy when the store browns out
// mid-execution.
func (s *Simulator) onPowerFailure() {
	e := s.exec
	if e == nil || !e.started || e.remaining <= 0 {
		return
	}
	task := e.job.Tasks[e.taskIdx]
	switch {
	case task.Atomic:
		// Partial transmissions and other atomic work are lost entirely.
		e.remaining = e.fullTexe
		e.started = false
		e.restarts++
		s.res.AtomicRestarts++
	case s.cfg.Checkpoint == NoCheckpoint:
		e.remaining = e.fullTexe
		e.started = false
		e.restarts++
	case s.cfg.Checkpoint == PeriodicCheckpoint:
		// Roll back to the last periodic checkpoint. A failure that lands on
		// the same checkpoint as the previous one banked no net progress —
		// repeated, that is the same livelock as a full restart (the on-window
		// is too short to ever reach the next checkpoint), so it must feed
		// the watchdog too.
		e.remaining = e.ckptAt
		if e.ckptAt == e.fullTexe || e.ckptAt == e.ckptFail {
			e.restarts++
		}
		e.ckptFail = e.ckptAt
	default:
		// JIT checkpointing: progress preserved exactly.
	}
	// Watchdog: a task restarting indefinitely (its energy cost exceeds
	// what the store can ever bank) would deadlock the device; abandon the
	// job after a bounded number of progress-losing restarts.
	const maxRestarts = 10
	if e.restarts > maxRestarts {
		e.aborted = true
	}
}

// writeTimeline emits one CSV row (with a header on first use).
func (s *Simulator) writeTimeline(on bool) {
	if s.nextTimeline == 0 {
		fmt.Fprintln(s.cfg.Timeline, "t_s,power_mw,store_mj,occupancy,state")
	}
	state := "idle"
	switch {
	case !on:
		state = "off"
	case len(s.captures) > 0:
		state = "capture"
	case s.restoreLeft > 0:
		state = "restore"
	case s.exec != nil:
		state = fmt.Sprintf("exec:%s", s.exec.job.Name)
	}
	fmt.Fprintf(s.cfg.Timeline, "%.3f,%.3f,%.3f,%d,%s\n",
		s.now, s.cfg.Power.Power(s.now)*1e3, s.store.Energy()*1e3, s.buf.Len(), state)
}

// runTask advances the current task by dt, handling completion and task
// semantics.
func (s *Simulator) runTask(dt float64) {
	e := s.exec
	if e.aborted {
		s.abortJob()
		return
	}
	task := e.job.Tasks[e.taskIdx]
	opt := task.Options[e.options[e.taskIdx]]

	// Atomic tasks wait until the store has banked their full energy cost:
	// starting a radio packet that cannot finish within this charge would
	// waste the partial transmission (§8 atomicity contract).
	if task.Atomic && !e.started && s.store.UsableEnergy() < s.atomicEnergyBudget(opt) {
		s.store.Draw(s.cfg.Profile.MCU.IdlePower, dt)
		return
	}

	e.started = true
	frac := s.store.Draw(opt.Pexe, dt)
	e.remaining -= dt * frac

	// Periodic checkpointing: snapshot progress every CheckpointInterval
	// of execution, paying the save cost (symmetric to restore).
	if s.cfg.Checkpoint == PeriodicCheckpoint && !task.Atomic &&
		e.ckptAt-e.remaining >= s.cfg.CheckpointInterval {
		e.ckptAt = e.remaining
		s.store.Draw(s.cfg.Profile.MCU.RestorePower, s.cfg.Profile.MCU.RestoreTime)
	}

	if e.remaining > 0 {
		return
	}
	// Task complete.
	e.executed[e.taskIdx] = true
	if task.Degradable() {
		if oi := e.options[e.taskIdx]; oi >= 0 && oi < len(s.res.OptionUsage) {
			s.res.OptionUsage[oi]++
		}
	}
	switch task.Kind {
	case model.Classify:
		if e.input.Interesting {
			if s.rng.Float64() < opt.FalseNegative {
				e.positive = false
				s.res.FalseNegatives++
			} else {
				s.res.TruePositives++
			}
		} else {
			if s.rng.Float64() < opt.FalsePositive {
				s.res.FalsePositives++
			} else {
				e.positive = false
				s.res.TrueNegatives++
			}
		}
		s.logf("%.6f classify seq=%d opt=%d positive=%v\n",
			s.now, e.input.Seq, e.options[e.taskIdx], e.positive)
	case model.Transmit:
		s.recordPacket(opt, e.input.Interesting)
		s.logf("%.6f tx seq=%d hq=%v interesting=%v\n",
			s.now, e.input.Seq, opt.HighQuality, e.input.Interesting)
	}

	// Advance to the next runnable task.
	for {
		e.taskIdx++
		if e.taskIdx >= len(e.job.Tasks) {
			s.completeJob()
			return
		}
		next := e.job.Tasks[e.taskIdx]
		if next.Conditional && !e.positive {
			continue // classifier said no: skip the conditional chain
		}
		s.startTask()
		return
	}
}

// recordPacket accounts one radio transmission.
func (s *Simulator) recordPacket(opt model.Option, interesting bool) {
	switch {
	case opt.HighQuality && interesting:
		s.res.HighQInteresting++
	case opt.HighQuality:
		s.res.HighQUninteresting++
	case interesting:
		s.res.LowQInteresting++
	default:
		s.res.LowQUninteresting++
	}
}

// completeJob finalises the running job: spawn follow-up work, report
// feedback, update counters.
func (s *Simulator) completeJob() {
	e := s.exec
	s.exec = nil
	s.res.JobsCompleted++
	if e.degraded {
		s.res.Degradations++
	}

	// The input leaves the queue — or is re-tagged in place for the
	// follow-up job if the classify chain stayed positive. Re-tagging
	// cannot overflow: the image never left its memory slot.
	spawned := e.job.SpawnJobID != model.NoSpawn && e.positive
	s.logf("%.6f jobdone seq=%d job=%d spawned=%v restarts=%d\n",
		s.now, e.input.Seq, e.job.ID, spawned, e.restarts)
	idx := s.buf.IndexOfSeq(e.input.Seq)
	if idx >= 0 {
		if spawned {
			if err := s.buf.Retag(idx, e.job.SpawnJobID, s.now); err != nil {
				s.res.IBOReinsertOther++ // unreachable; keep accounting honest
			}
		} else if _, err := s.buf.RemoveAt(idx); err != nil {
			s.res.IBOReinsertOther++
		} else {
			// The input has left the system: record its sojourn for the
			// Little's-Law validation (capture → final departure).
			s.res.SojournSum += s.now - e.input.CapturedAt
			s.res.SojournCount++
		}
	}

	s.ctl.OnJobComplete(core.Feedback{
		JobID:      e.job.ID,
		Executed:   e.executed,
		Spawned:    spawned,
		PredictedS: e.modelS,
		ObservedS:  s.now - e.startedAt,
		Now:        s.now,
	})
}

// abortJob abandons the running job after the watchdog trips: the input is
// dropped (it cannot be processed on this store) and the controller is
// informed so its trackers keep moving.
func (s *Simulator) abortJob() {
	e := s.exec
	s.exec = nil
	s.res.JobAborts++
	if e.input.Interesting {
		s.res.AbortedInteresting++
	}
	s.logf("%.6f jobabort seq=%d job=%d\n", s.now, e.input.Seq, e.job.ID)
	if idx := s.buf.IndexOfSeq(e.input.Seq); idx >= 0 {
		s.buf.RemoveAt(idx)
	}
	s.ctl.OnJobComplete(core.Feedback{
		JobID:      e.job.ID,
		Executed:   e.executed,
		PredictedS: e.modelS,
		ObservedS:  s.now - e.startedAt,
		Now:        s.now,
	})
}

// finish copies store statistics into the results.
func (s *Simulator) finish() {
	st := s.store.Stats()
	s.res.Brownouts = st.Brownouts
	s.res.HarvestedJoules = st.HarvestedJ
	s.res.ConsumedJoules = st.ConsumedJ
	s.res.SimSeconds = s.cfg.Duration
}

// Results returns the accumulated results so far (useful mid-run in tests).
func (s *Simulator) Results() metrics.Results { return s.res }

// Buffer exposes the input buffer for inspection in tests.
func (s *Simulator) Buffer() *buffer.Buffer { return s.buf }

// Store exposes the energy store for inspection in tests.
func (s *Simulator) Store() *energy.Store { return s.store }

// debugHook is called after each controller decision when set (tests only).
type debugHook func(now float64, dec core.Decision, lambda, correction float64)
