// Package sim is the compatibility facade over internal/engine, keeping the
// original all-in-one configuration surface: one Config selects the device
// scenario, the time-advance engine, and the instrumentation (timeline,
// invariant checks, event log), and one Simulator runs it.
//
// The simulation itself mirrors the paper's custom simulator (§6.3): time
// advances in 1 ms steps (or event-bounded segments, see EngineKind);
// harvested energy is added to the storage element every step; a task
// "runs" by draining the store at its profiled power until its profiled
// latency has elapsed; and a just-in-time checkpointing system preserves
// task progress across power failures (the device browns out at VOff,
// recharges to VOn, pays a restore cost and resumes).
//
// All device physics lives in engine.Machine, the time-advance loops in
// engine.Stepper implementations, and the instrumentation in engine
// observers; callers that want to compose those layers differently (custom
// steppers, extra observers) should use internal/engine directly.
package sim

import (
	"context"
	"io"

	"quetzal/internal/buffer"
	"quetzal/internal/device"
	"quetzal/internal/energy"
	"quetzal/internal/engine"
	"quetzal/internal/faults"
	"quetzal/internal/invariant"
	"quetzal/internal/metrics"
	"quetzal/internal/model"
	"quetzal/internal/obs"
	"quetzal/internal/trace"

	"quetzal/internal/core"
)

// Config describes one simulation run.
type Config struct {
	Profile device.Profile
	App     *model.App // nil → Profile.PersonDetectionApp()
	// Controller is the decision-making brain; Policy names a registered
	// policy (internal/policy) to build instead. Exactly one must be set.
	Controller core.Controller
	Policy     string

	Power  trace.PowerTrace
	Events *trace.EventTrace

	Store energy.StoreConfig // zero → energy.DefaultConfig()

	// Engine selects the time-advance mechanism: the paper's fixed
	// 1 ms increments (default, reference semantics) or the event-driven
	// fast path (see EngineKind).
	Engine EngineKind

	CapturePeriod  float64 // seconds between captures; default 1 (1 FPS)
	StepDt         float64 // simulator step; default 0.001 (1 ms)
	Duration       float64 // simulated seconds; 0 → events end + DrainTime
	DrainTime      float64 // extra time after the last event; default 60 s
	BufferCapacity int     // 0 → Profile.BufferCapacity

	Seed int64 // classifier coin flips

	// Checkpoint selects how execution progress survives power failures;
	// the default is the paper's JIT checkpointing (§6.3). Atomic tasks
	// always restart regardless of policy.
	Checkpoint CheckpointPolicy
	// CheckpointInterval is the progress between periodic checkpoints in
	// seconds (PeriodicCheckpoint only; default 1 s).
	CheckpointInterval float64

	// TexeJitterOverride, when positive, applies the given fractional
	// latency jitter to every task option (the §8 variable-execution-cost
	// extension) regardless of the options' own TexeJitter.
	TexeJitterOverride float64

	// Timeline, when non-nil, receives one CSV row per TimelineInterval of
	// simulated time: time, input power, store energy, buffer occupancy,
	// device state. For plotting and debugging.
	Timeline         io.Writer
	TimelineInterval float64 // default 1 s

	// Checks toggles the runtime invariant checker (internal/invariant):
	// energy-store bounds and conservation, buffer bounds, monotonic time,
	// and end-of-run accounting identities, verified every step/segment.
	// The default (ChecksAuto) enables it, so every test and experiment
	// pays the invariant tax; benchmarks opt out with ChecksOff.
	Checks CheckMode

	// EventLog, when non-nil, receives one line per discrete simulation
	// event (capture, arrival, IBO drop, scheduling decision, classify
	// verdict, transmission, job completion/abort, power transitions,
	// checkpoint/rollback, PID update). The golden-trace regression layer
	// hashes this stream to fingerprint a run's full behavior; it is also
	// readable for debugging.
	EventLog io.Writer

	// Trace, when non-nil, receives the run rendered as Chrome trace_event
	// JSON (load in chrome://tracing or Perfetto); TraceJSONL receives the
	// same events as JSON objects, one per line. Both are derived from the
	// event-log stream by an obs.Exporter, which also audits it: a dropped
	// or reordered event fails the run at the end.
	Trace      io.Writer
	TraceJSONL io.Writer

	// Metrics, when non-nil, collects run metrics: per-step samples via an
	// obs.MachineObserver (step lengths, store level, buffer occupancy) and
	// the end-of-run aggregates. Dump with Registry.WriteText.
	Metrics *obs.Registry

	Environment string // label copied into the results

	// Faults declares the hardware-realism scenario (internal/faults):
	// transient task faults, harvester dropout windows, ADC stuck bits,
	// per-sample measurement cost and junction temperature. Zero = ideal
	// hardware, guaranteed cost-free.
	Faults faults.Spec
	// FaultSeed seeds the fault draws; 0 derives from Seed. Fleets pass a
	// shard-independent split seed (fleet.StreamFaults).
	FaultSeed int64
}

// CheckMode selects whether the invariant checker runs.
type CheckMode int

const (
	// ChecksAuto (the zero value) enables the invariant checker.
	ChecksAuto CheckMode = iota
	// ChecksOff disables it — for hot benchmark loops only.
	ChecksOff
	// ChecksOn enables it explicitly (same behavior as ChecksAuto).
	ChecksOn
)

// EngineKind selects the time-advance mechanism; see engine.Kind.
type EngineKind = engine.Kind

const (
	// FixedIncrement advances in constant StepDt steps — the paper's §6.3
	// simulator and the reference semantics.
	FixedIncrement = engine.FixedIncrement
	// EventDriven advances in variable-length segments bounded by the next
	// discrete event; typically 50–200× faster with statistically matching
	// results. See engine.EventDriven.
	EventDriven = engine.EventDriven
	// Lockstep commits the exact segment sequence of EventDriven — event
	// streams and results are bit-identical, pinned by golden parity — but
	// replays fixed-point crawl regimes as constant-addend updates, an
	// order of magnitude faster on starved sweep workloads. Fastest choice
	// for fleets and corpora; requires no observers on the hot path for the
	// replay to engage (checks, timelines and metrics sinks fall back to
	// the normal per-segment path). See engine.Lockstep and DESIGN.md §13.
	Lockstep = engine.Lockstep
)

// CheckpointPolicy selects the intermittent-computing progress model; see
// engine.CheckpointPolicy.
type CheckpointPolicy = engine.CheckpointPolicy

const (
	// JITCheckpoint saves state just in time before the power failure
	// (the paper's simulator, citing [8, 9, 47, 61, 64]).
	JITCheckpoint = engine.JITCheckpoint
	// NoCheckpoint loses the current task's progress on every power
	// failure.
	NoCheckpoint = engine.NoCheckpoint
	// PeriodicCheckpoint saves progress every CheckpointInterval seconds
	// of execution.
	PeriodicCheckpoint = engine.PeriodicCheckpoint
)

// Simulator executes one configured run. Construct with New. It wires a
// Config into the engine layers: an engine.Machine for the device physics,
// an engine.Stepper for the configured EngineKind, and observers for the
// timeline and invariant checks.
type Simulator struct {
	m        *engine.Machine
	stepper  engine.Stepper
	inv      *invariant.Checker
	exporter *obs.Exporter
}

// New validates the configuration and builds a Simulator.
func New(cfg Config) (*Simulator, error) {
	engCfg := engine.Config{
		Profile:            cfg.Profile,
		App:                cfg.App,
		Controller:         cfg.Controller,
		Policy:             cfg.Policy,
		Power:              cfg.Power,
		Events:             cfg.Events,
		Store:              cfg.Store,
		CapturePeriod:      cfg.CapturePeriod,
		StepDt:             cfg.StepDt,
		Duration:           cfg.Duration,
		DrainTime:          cfg.DrainTime,
		BufferCapacity:     cfg.BufferCapacity,
		Seed:               cfg.Seed,
		Checkpoint:         cfg.Checkpoint,
		CheckpointInterval: cfg.CheckpointInterval,
		TexeJitterOverride: cfg.TexeJitterOverride,
		EventLog:           cfg.EventLog,
		Environment:        cfg.Environment,
		Faults:             cfg.Faults,
		FaultSeed:          cfg.FaultSeed,
	}
	var exporter *obs.Exporter
	if cfg.Trace != nil || cfg.TraceJSONL != nil {
		exporter = obs.NewExporter(obs.ExporterConfig{
			Chrome:  cfg.Trace,
			JSONL:   cfg.TraceJSONL,
			Metrics: cfg.Metrics,
		})
		if engCfg.EventLog != nil {
			engCfg.EventLog = io.MultiWriter(engCfg.EventLog, exporter)
		} else {
			engCfg.EventLog = exporter
		}
	}
	m, err := engine.New(engCfg)
	if err != nil {
		return nil, err
	}
	s := &Simulator{m: m, stepper: engine.StepperFor(cfg.Engine), exporter: exporter}
	if cfg.Timeline != nil {
		m.Observe(engine.NewTimelineWriter(cfg.Timeline, cfg.TimelineInterval))
	}
	if cfg.Metrics != nil {
		m.Observe(obs.NewMachineObserver(cfg.Metrics))
	}
	if cfg.Checks != ChecksOff {
		icfg := invariant.Config{}
		if cfg.Faults.Enabled() {
			// Materialise the realism spec's checkable consequences: the
			// exact per-sample measurement-energy identity and the dropout
			// windows over the (normalised) run duration.
			icfg.MeasPerSampleJ, _ = cfg.Faults.MeasCost()
			icfg.DropoutWindows = cfg.Faults.Windows(m.Duration())
		}
		s.inv = invariant.New(icfg)
		m.Observe(engine.InvariantObserver{C: s.inv})
	}
	return s, nil
}

// Run executes the configured simulation and returns its results.
func (s *Simulator) Run() (metrics.Results, error) {
	return s.RunContext(context.Background())
}

// RunContext is Run with cooperative cancellation: the main loop polls ctx
// every few thousand steps and abandons the run with a wrapped context
// error noting the simulated time reached. Sweep drivers use this for
// per-run timeouts and ctrl-C.
func (s *Simulator) RunContext(ctx context.Context) (metrics.Results, error) {
	res, err := s.m.Run(ctx, s.stepper)
	if s.exporter != nil {
		// Close flushes the Chrome JSON trailer and surfaces the stream
		// audit: a dropped or reordered event line fails the run.
		if cerr := s.exporter.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return res, err
}

// RunIntoContext is RunContext through the engine's results-sink seam: on
// success the sink receives a pointer to the machine's own results (valid
// only inside the callback) instead of a by-value copy. Fleet runs use this
// to reduce each device to a metrics.Summary without copying Results.
func (s *Simulator) RunIntoContext(ctx context.Context, sink func(*metrics.Results)) error {
	err := s.m.RunInto(ctx, s.stepper, sink)
	if s.exporter != nil {
		if cerr := s.exporter.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// Machine exposes the underlying engine machine, for tests that hook or
// perturb the live device state.
func (s *Simulator) Machine() *engine.Machine { return s.m }

// Checker exposes the invariant checker for inspection in tests (nil when
// checks are off).
func (s *Simulator) Checker() *invariant.Checker { return s.inv }

// Results returns the accumulated results so far (useful mid-run in tests).
func (s *Simulator) Results() metrics.Results { return s.m.Results() }

// Buffer exposes the input buffer for inspection in tests.
func (s *Simulator) Buffer() *buffer.Buffer { return s.m.Buffer() }

// Store exposes the energy store for inspection in tests.
func (s *Simulator) Store() *energy.Store { return s.m.Store() }
