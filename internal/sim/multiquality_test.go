package sim

import (
	"testing"

	"quetzal/internal/core"
	"quetzal/internal/device"
	"quetzal/internal/model"
	"quetzal/internal/trace"
)

// With the four-level radio ladder, Quetzal must actually use intermediate
// options — not just the extremes — as pressure varies.
func TestMultiQualityLadderUsesIntermediateOptions(t *testing.T) {
	forEachEngine(t, func(t *testing.T, engine EngineKind) {
		prof := device.Apollo4MultiQuality()
		app := prof.PersonDetectionApp()
		if err := app.Validate(); err != nil {
			t.Fatal(err)
		}
		r, err := core.New(core.Config{App: app, CapturePeriod: 1})
		if err != nil {
			t.Fatal(err)
		}
		// A slow power ramp: pressure varies smoothly so the "highest quality
		// that clears" rule sweeps through the ladder.
		power := trace.SquareWave{High: 0.060, Low: 0.006, Period: 90, Duty: 0.5}
		s, err := New(Config{
			Profile: prof, App: app, Controller: r,
			Engine: engine,
			Power:  power,
			Events: steadyEvents(14, 25, 12, true),
			Seed:   21,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.OptionUsage[0] == 0 {
			t.Error("highest quality never used")
		}
		used := 0
		for i, n := range res.OptionUsage {
			t.Logf("option %d used %d times", i, n)
			if n > 0 {
				used++
			}
		}
		if used < 3 {
			t.Errorf("only %d of 4 quality levels used; ladder not exercised", used)
		}
		// The option histogram covers exactly the degradable-task executions.
		total := 0
		for _, n := range res.OptionUsage {
			total += n
		}
		if total == 0 || total > res.JobsCompleted*len(app.Jobs) {
			t.Errorf("OptionUsage total %d implausible vs %d jobs", total, res.JobsCompleted)
		}
	})
}

// A three-stage spawn chain (detect → enhance → report) must work end to
// end: reach probabilities multiply down the chain and re-tagging walks the
// input through all three jobs.
func TestThreeStageChain(t *testing.T) {
	forEachEngine(t, func(t *testing.T, engine EngineKind) {
		prof := device.Apollo4()
		ml := &model.Task{Name: "ml", Kind: model.Classify, Options: prof.MLOptions}
		enhance := &model.Task{Name: "enhance", Kind: model.Compute,
			Options: []model.Option{{Name: "sharpen", Texe: 0.3, Pexe: 0.009}}}
		verify := &model.Task{Name: "verify", Kind: model.Classify,
			Options: []model.Option{{Name: "second-look", Texe: 0.2, Pexe: 0.009, FalseNegative: 0.1, FalsePositive: 0.1}}}
		radio := &model.Task{Name: "radio", Kind: model.Transmit, Options: prof.RadioOptions}
		app := &model.App{
			Name: "three-stage",
			Jobs: []*model.Job{
				{ID: 0, Name: "detect", Tasks: []*model.Task{ml}, SpawnJobID: 1},
				{ID: 1, Name: "enhance", Tasks: []*model.Task{enhance, verify}, SpawnJobID: 2},
				{ID: 2, Name: "report", Tasks: []*model.Task{radio}, SpawnJobID: model.NoSpawn},
			},
			EntryJobID:  0,
			CaptureTexe: prof.CaptureTexe, CapturePexe: prof.CapturePexe,
		}
		if err := app.Validate(); err != nil {
			t.Fatal(err)
		}
		r, err := core.New(core.Config{App: app, CapturePeriod: 1})
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(Config{
			Profile: prof, App: app, Controller: r,
			Engine: engine,
			Power:  trace.Constant{P: 0.04},
			Events: steadyEvents(10, 15, 12, true),
			Seed:   22,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.TotalPackets() == 0 {
			t.Fatal("no packets survived the three-stage chain")
		}
		// Both classifiers contribute false negatives; the second stage's FN
		// applies only to inputs that passed the first.
		if res.FalseNegatives == 0 {
			t.Error("no false negatives across two classifiers")
		}
		// Every packet needed two positive classifications.
		if res.TotalPackets() > res.TruePositives+res.FalsePositives {
			t.Errorf("packets %d exceed positive classifications %d",
				res.TotalPackets(), res.TruePositives+res.FalsePositives)
		}
	})
}
