package sim

import (
	"math/rand"
	"testing"

	"quetzal/internal/device"
	"quetzal/internal/model"
	"quetzal/internal/queueing"
	"quetzal/internal/trace"
)

// singleStageApp is a one-task pipeline with deterministic service time s:
// the closest executable analogue of a single-server queue.
func singleStageApp(service float64) *model.App {
	work := &model.Task{Name: "work", Kind: model.Compute,
		Options: []model.Option{{Name: "only", Texe: service, Pexe: 0.005}}}
	return &model.App{
		Name:        "single-stage",
		Jobs:        []*model.Job{{ID: 0, Name: "serve", Tasks: []*model.Task{work}, SpawnJobID: model.NoSpawn}},
		EntryJobID:  0,
		CaptureTexe: 0.004, CapturePexe: 0.002,
	}
}

// bernoulliEvents builds an event trace where each event covers exactly one
// capture instant, with geometric gaps — a discrete-time approximation of
// Poisson arrivals at rate p per second.
func bernoulliEvents(n int, p float64, seed int64) *trace.EventTrace {
	rng := rand.New(rand.NewSource(seed))
	tr := &trace.EventTrace{}
	t := 0.5 // offset so each 1 s event straddles exactly one integer capture
	for i := 0; i < n; i++ {
		// Geometric gap with success probability p (in whole seconds).
		gap := 1
		for rng.Float64() >= p {
			gap++
		}
		t += float64(gap)
		tr.Events = append(tr.Events, trace.Event{Start: t - 0.999, Duration: 0.999, Interesting: true})
	}
	return tr
}

// The simulator's queue must track the analytic single-server models: with
// Bernoulli(p) arrivals and deterministic service s, the time-averaged
// occupancy should land near the M/D/1 prediction (between the M/D/1 value
// and the heavier-tailed M/M/1 value, with slack for the capture-pipeline
// interference and discrete arrivals).
func TestSimulatorMatchesSingleServerTheory(t *testing.T) {
	const service = 0.4
	app := singleStageApp(service)
	ctl := noadaptController(t, app)
	s, err := New(Config{
		Profile:        device.Apollo4(),
		App:            app,
		Controller:     ctl,
		Power:          trace.Constant{P: 0.2}, // ample: service is compute-bound
		Events:         bernoulliEvents(1500, 0.5, 11),
		BufferCapacity: 500, // effectively infinite: no blocking
		DrainTime:      60,
		Seed:           12,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.IBODropsInteresting+res.IBODropsOther != 0 {
		t.Fatalf("unexpected drops with a 500-slot buffer")
	}

	lambda := float64(res.Arrivals) / res.SimSeconds
	// Effective service includes the capture pipeline's preemption (~4 ms
	// per capture, i.e. per second).
	effService := service + 0.004
	rho := queueing.Utilization(lambda, effService)
	if rho <= 0.1 || rho >= 0.5 {
		t.Fatalf("calibration off: ρ = %.3f, want ≈ 0.2", rho)
	}

	measured := res.AvgOccupancy()
	lo := queueing.MD1System(rho) * 0.5
	hi := queueing.MM1Queue(rho) * 2.0
	if measured < lo || measured > hi {
		t.Errorf("avg occupancy %.4f outside analytic band [%.4f (M/D/1·0.5), %.4f (M/M/1·2)] at ρ=%.3f",
			measured, lo, hi, rho)
	}
	t.Logf("λ=%.3f ρ=%.3f measured L=%.4f, M/D/1=%.4f, M/M/1=%.4f",
		lambda, rho, measured, queueing.MD1System(rho), queueing.MM1Queue(rho))
}

// With a tiny buffer under overload, measured loss must approach the
// analytic heavy-traffic blocking of a finite queue.
func TestSimulatorBlockingMatchesFiniteQueueTheory(t *testing.T) {
	const service = 2.0 // ρ ≈ 1 at every-second arrivals: sustained overload
	app := singleStageApp(service)
	ctl := noadaptController(t, app)
	s, err := New(Config{
		Profile:        device.Apollo4(),
		App:            app,
		Controller:     ctl,
		Power:          trace.Constant{P: 0.2},
		Events:         steadyEvents(4, 300, 10, true), // near-continuous arrivals
		BufferCapacity: 5,
		Seed:           13,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	lambda := float64(res.Arrivals) / res.SimSeconds
	rho := queueing.Utilization(lambda, service+0.004)
	q, err := queueing.NewMM1K(rho, 5)
	if err != nil {
		t.Fatal(err)
	}
	dropped := float64(res.IBODropsInteresting + res.IBODropsOther)
	measured := dropped / float64(res.Arrivals)
	analytic := q.Blocking()
	// Deterministic service loses less than exponential at equal ρ, but in
	// heavy traffic both approach 1−1/ρ; allow a generous band.
	if measured < analytic*0.5 || measured > analytic*1.5 {
		t.Errorf("measured loss %.3f vs M/M/1/K blocking %.3f at ρ=%.2f: outside ±50%%",
			measured, analytic, rho)
	}
	t.Logf("ρ=%.2f measured loss %.3f, analytic blocking %.3f", rho, measured, analytic)
}
