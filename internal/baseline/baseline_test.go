package baseline

import (
	"math"
	"strings"
	"testing"

	"quetzal/internal/buffer"
	"quetzal/internal/core"
	"quetzal/internal/device"
	"quetzal/internal/model"
	"quetzal/internal/sched"
)

func app() *model.App { return device.Apollo4().PersonDetectionApp() }

func pushReport(b *buffer.Buffer, n int) {
	for i := 0; i < n; i++ {
		b.Push(buffer.Input{Seq: uint64(i), CapturedAt: float64(i), JobID: device.ReportJobID}, false)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, never{}, nil); err == nil {
		t.Error("New accepted nil app")
	}
	if _, err := New(app(), nil, nil); err == nil {
		t.Error("New accepted nil rule")
	}
	broken := app()
	broken.EntryJobID = 99
	if _, err := New(broken, never{}, nil); err == nil {
		t.Error("New accepted invalid app")
	}
}

func TestNoAdaptNeverDegrades(t *testing.T) {
	c, err := NoAdapt(app())
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "noadapt" {
		t.Errorf("Name = %q", c.Name())
	}
	b := buffer.New(10)
	pushReport(b, 10)
	dec, ok := c.NextJob(core.Env{InputPower: 0, BufferLen: 10, BufferCap: 10}, b)
	if !ok || dec.Degraded {
		t.Errorf("NoAdapt degraded under full buffer + no power: %+v", dec)
	}
	for _, o := range dec.Options {
		if o != 0 {
			t.Errorf("NoAdapt options = %v, want all 0", dec.Options)
		}
	}
}

func TestAlwaysDegrade(t *testing.T) {
	c, err := AlwaysDegrade(app())
	if err != nil {
		t.Fatal(err)
	}
	b := buffer.New(10)
	pushReport(b, 1)
	dec, _ := c.NextJob(core.Env{InputPower: 1, BufferLen: 1, BufferCap: 10}, b)
	if !dec.Degraded {
		t.Fatal("AlwaysDegrade did not degrade")
	}
	// report job: compress (1 option) stays 0, radio (2 options) → 1.
	if dec.Options[0] != 0 || dec.Options[1] != 1 {
		t.Errorf("options = %v, want [0 1]", dec.Options)
	}
}

func TestFCFSOrderingInBaselines(t *testing.T) {
	c, _ := NoAdapt(app())
	b := buffer.New(10)
	b.Push(buffer.Input{Seq: 7, CapturedAt: 9, JobID: device.DetectJobID}, false)
	b.Push(buffer.Input{Seq: 8, CapturedAt: 1, JobID: device.ReportJobID}, false)
	dec, _ := c.NextJob(core.Env{BufferLen: 2, BufferCap: 10}, b)
	if dec.BufferIndex != 0 || dec.JobID != device.DetectJobID {
		t.Errorf("decision = %+v, want front of queue", dec)
	}
}

func TestEmptyBuffer(t *testing.T) {
	c, _ := NoAdapt(app())
	if _, ok := c.NextJob(core.Env{BufferCap: 10}, buffer.New(10)); ok {
		t.Error("NextJob on empty buffer returned ok")
	}
}

func TestCatNapDegradesOnlyWhenFull(t *testing.T) {
	c, err := CatNap(app())
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "catnap" {
		t.Errorf("Name = %q", c.Name())
	}
	b := buffer.New(10)
	pushReport(b, 9)
	dec, _ := c.NextJob(core.Env{BufferLen: 9, BufferCap: 10}, b)
	if dec.Degraded {
		t.Error("CatNap degraded at 90% occupancy")
	}
	pushReport(b, 1)
	dec, _ = c.NextJob(core.Env{BufferLen: 10, BufferCap: 10}, b)
	if !dec.Degraded {
		t.Error("CatNap did not degrade at 100% occupancy")
	}
}

func TestFixedThreshold(t *testing.T) {
	for _, frac := range []float64{0.25, 0.5, 0.75} {
		c, err := Threshold(app(), frac)
		if err != nil {
			t.Fatal(err)
		}
		atLen := int(math.Ceil(frac * 10))
		below := core.Env{BufferLen: atLen - 1, BufferCap: 10}
		at := core.Env{BufferLen: atLen, BufferCap: 10}
		if c.rule.Degrade(below) {
			t.Errorf("threshold %g degraded below threshold", frac)
		}
		if !c.rule.Degrade(at) {
			t.Errorf("threshold %g did not degrade at threshold", frac)
		}
	}
	if _, err := Threshold(app(), 0); err == nil {
		t.Error("Threshold accepted 0")
	}
	if _, err := Threshold(app(), 1.5); err == nil {
		t.Error("Threshold accepted 1.5")
	}
	if got := (FixedThreshold{Frac: 0.25}).Name(); !strings.Contains(got, "25%") {
		t.Errorf("Name = %q", got)
	}
	if (FixedThreshold{Frac: 0.5}).Degrade(core.Env{BufferCap: 0}) {
		t.Error("zero-capacity env degraded")
	}
}

func TestPZOAlmostAlwaysDegrades(t *testing.T) {
	// Datasheet max 150 mW → threshold 75 mW; a real solar trace peaking at
	// 30 mW never crosses it.
	c, err := PZO(app(), 0.150)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "pzo" {
		t.Errorf("Name = %q", c.Name())
	}
	for _, p := range []float64{0, 0.005, 0.030} {
		if !c.rule.Degrade(core.Env{InputPower: p}) {
			t.Errorf("PZO did not degrade at %g W (threshold 75 mW)", p)
		}
	}
	if _, err := PZO(app(), 0); err == nil {
		t.Error("PZO accepted non-positive max")
	}
}

func TestPZIUsesObservedMax(t *testing.T) {
	c, err := PZI(app(), 0.030) // threshold 15 mW
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "pzi" {
		t.Errorf("Name = %q", c.Name())
	}
	if !c.rule.Degrade(core.Env{InputPower: 0.010}) {
		t.Error("PZI did not degrade below threshold")
	}
	if c.rule.Degrade(core.Env{InputPower: 0.020}) {
		t.Error("PZI degraded above threshold")
	}
	if _, err := PZI(app(), -1); err == nil {
		t.Error("PZI accepted non-positive max")
	}
}

func TestCustomPolicyInjection(t *testing.T) {
	c, err := New(app(), never{}, sched.LCFS{})
	if err != nil {
		t.Fatal(err)
	}
	b := buffer.New(10)
	b.Push(buffer.Input{Seq: 0, JobID: device.DetectJobID}, false)
	b.Push(buffer.Input{Seq: 1, JobID: device.DetectJobID}, false)
	dec, _ := c.NextJob(core.Env{BufferLen: 2, BufferCap: 10}, b)
	if dec.BufferIndex != 1 {
		t.Errorf("LCFS baseline selected index %d, want 1", dec.BufferIndex)
	}
}

func TestControllerInterfaceNoops(t *testing.T) {
	c, _ := NoAdapt(app())
	c.ObserveCapture(true)           // must not panic
	c.OnJobComplete(core.Feedback{}) // must not panic
	if ops, uses := c.RatioOps(); ops != 0 || uses {
		t.Errorf("RatioOps = (%d,%v), want (0,false)", ops, uses)
	}
}

// Compile-time interface checks.
var _ core.Controller = (*Controller)(nil)
