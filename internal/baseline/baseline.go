// Package baseline implements the comparison systems from the paper's
// evaluation (§6.1):
//
//   - NoAdapt (NA): run every task at highest quality, FCFS — the behaviour
//     of most prior energy-harvesting systems.
//   - AlwaysDegrade (AD): run every degradable task at its lowest quality.
//   - FixedThreshold: degrade when the input buffer is filled to a static
//     fraction; CatNap (CN) is the 100 % special case (degrade only once
//     the buffer is already full).
//   - PowerThreshold: degrade when input power falls below a static
//     threshold — the Protean/Zygarde policy. PZO derives the threshold
//     from the harvester datasheet maximum (which real traces rarely
//     approach, so it degrades nearly always); PZI is the idealised,
//     unimplementable variant whose threshold comes from the maximum power
//     actually observed in the experiment (oracular knowledge).
//
// All baselines schedule FCFS and perform no ratio computations, so they
// carry no Quetzal runtime overhead.
package baseline

import (
	"fmt"

	"quetzal/internal/buffer"
	"quetzal/internal/core"
	"quetzal/internal/model"
	"quetzal/internal/sched"
)

// Rule decides whether the next job execution runs degraded.
type Rule interface {
	Name() string
	Degrade(env core.Env) bool
}

// Controller adapts a Rule into a core.Controller with FCFS scheduling.
type Controller struct {
	app    *model.App
	policy sched.Policy
	rule   Rule
}

// New builds a baseline controller for the app. policy nil defaults to FCFS.
func New(app *model.App, rule Rule, policy sched.Policy) (*Controller, error) {
	if app == nil {
		return nil, fmt.Errorf("baseline: app is required")
	}
	if err := app.Validate(); err != nil {
		return nil, err
	}
	if rule == nil {
		return nil, fmt.Errorf("baseline: rule is required")
	}
	if policy == nil {
		policy = sched.FCFS{}
	}
	return &Controller{app: app, policy: policy, rule: rule}, nil
}

// Name implements core.Controller.
func (c *Controller) Name() string { return c.rule.Name() }

// NextJob implements core.Controller.
func (c *Controller) NextJob(env core.Env, buf *buffer.Buffer) (core.Decision, bool) {
	sd := c.policy.Select(c.app, buf, nil)
	if sd.BufferIndex < 0 {
		return core.Decision{BufferIndex: -1, JobID: -1}, false
	}
	job := c.app.JobByID(sd.JobID)
	dec := core.Decision{
		BufferIndex: sd.BufferIndex,
		JobID:       sd.JobID,
		Options:     make([]int, len(job.Tasks)),
	}
	if c.rule.Degrade(env) {
		for i, task := range job.Tasks {
			if task.Degradable() {
				dec.Options[i] = len(task.Options) - 1
				dec.Degraded = true
			}
		}
	}
	return dec, true
}

// ObserveCapture implements core.Controller (baselines track nothing).
func (c *Controller) ObserveCapture(bool) {}

// OnJobComplete implements core.Controller (baselines learn nothing).
func (c *Controller) OnJobComplete(core.Feedback) {}

// RatioOps implements core.Controller: baselines never evaluate the
// P_exe/P_in ratio.
func (c *Controller) RatioOps() (int, bool) { return 0, false }

// never is the NoAdapt rule.
type never struct{}

func (never) Name() string          { return "noadapt" }
func (never) Degrade(core.Env) bool { return false }

// always is the AlwaysDegrade rule.
type always struct{}

func (always) Name() string          { return "alwaysdegrade" }
func (always) Degrade(core.Env) bool { return true }

// NoAdapt returns the NA baseline controller.
func NoAdapt(app *model.App) (*Controller, error) { return New(app, never{}, nil) }

// AlwaysDegrade returns the AD baseline controller.
func AlwaysDegrade(app *model.App) (*Controller, error) { return New(app, always{}, nil) }

// FixedThreshold degrades when buffer occupancy reaches Frac (0–1].
type FixedThreshold struct {
	Frac float64
}

// Name implements Rule.
func (f FixedThreshold) Name() string {
	return fmt.Sprintf("fixed-threshold-%d%%", int(f.Frac*100+0.5))
}

// Degrade implements Rule.
func (f FixedThreshold) Degrade(env core.Env) bool {
	if env.BufferCap == 0 {
		return false
	}
	return float64(env.BufferLen)/float64(env.BufferCap) >= f.Frac
}

// CatNap returns the CN baseline: degrade only when the buffer is 100 %
// full (Maeng & Lucia's CatNap reacts after the buffer fills, §6.1).
func CatNap(app *model.App) (*Controller, error) {
	return New(app, catnapRule{}, nil)
}

type catnapRule struct{}

func (catnapRule) Name() string { return "catnap" }
func (catnapRule) Degrade(env core.Env) bool {
	return env.BufferCap > 0 && env.BufferLen >= env.BufferCap
}

// Threshold returns a fixed-buffer-threshold baseline controller.
func Threshold(app *model.App, frac float64) (*Controller, error) {
	if frac <= 0 || frac > 1 {
		return nil, fmt.Errorf("baseline: threshold fraction must be in (0,1], got %g", frac)
	}
	return New(app, FixedThreshold{Frac: frac}, nil)
}

// PowerThreshold degrades when input power is below Watts.
type PowerThreshold struct {
	Label string
	Watts float64
}

// Name implements Rule.
func (p PowerThreshold) Name() string { return p.Label }

// Degrade implements Rule.
func (p PowerThreshold) Degrade(env core.Env) bool { return env.InputPower < p.Watts }

// PZOFraction is the fraction of the harvester's datasheet maximum used as
// the Protean/Zygarde threshold.
const PZOFraction = 0.5

// PZO returns the Protean/Zygarde baseline as proposed: threshold at
// PZOFraction of the harvester's datasheet maximum output. Real traces
// commonly stay below it, so PZO degrades almost always.
func PZO(app *model.App, datasheetMaxWatts float64) (*Controller, error) {
	if datasheetMaxWatts <= 0 {
		return nil, fmt.Errorf("baseline: datasheet max must be positive, got %g", datasheetMaxWatts)
	}
	return New(app, PowerThreshold{Label: "pzo", Watts: PZOFraction * datasheetMaxWatts}, nil)
}

// PZI returns the idealised Protean/Zygarde baseline: threshold at
// PZOFraction of the maximum power observed in this very experiment, which
// requires oracular knowledge of the future (§6.1).
func PZI(app *model.App, observedMaxWatts float64) (*Controller, error) {
	if observedMaxWatts <= 0 {
		return nil, fmt.Errorf("baseline: observed max must be positive, got %g", observedMaxWatts)
	}
	return New(app, PowerThreshold{Label: "pzi", Watts: PZOFraction * observedMaxWatts}, nil)
}
