package buffer

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func in(seq uint64, t float64, interesting bool, job int) Input {
	return Input{Seq: seq, CapturedAt: t, Interesting: interesting, JobID: job}
}

func TestNewPanicsOnBadCapacity(t *testing.T) {
	for _, c := range []int{0, -5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", c)
				}
			}()
			New(c)
		}()
	}
}

func TestFIFOOrder(t *testing.T) {
	b := New(3)
	for i := uint64(0); i < 3; i++ {
		if !b.Push(in(i, float64(i), false, 0), false) {
			t.Fatalf("Push %d rejected", i)
		}
	}
	for i := uint64(0); i < 3; i++ {
		got, err := b.Pop()
		if err != nil {
			t.Fatalf("Pop: %v", err)
		}
		if got.Seq != i {
			t.Errorf("Pop seq = %d, want %d", got.Seq, i)
		}
	}
	if _, err := b.Pop(); err != ErrEmpty {
		t.Errorf("Pop on empty = %v, want ErrEmpty", err)
	}
}

func TestPopNewestLIFO(t *testing.T) {
	b := New(3)
	for i := uint64(0); i < 3; i++ {
		b.Push(in(i, float64(i), false, 0), false)
	}
	got, err := b.PopNewest()
	if err != nil || got.Seq != 2 {
		t.Errorf("PopNewest = (%v, %v), want seq 2", got.Seq, err)
	}
	if _, err := New(1).PopNewest(); err != ErrEmpty {
		t.Errorf("PopNewest on empty = %v, want ErrEmpty", err)
	}
}

func TestOverflowAccounting(t *testing.T) {
	b := New(2)
	b.Push(in(0, 0, false, 0), false)
	b.Push(in(1, 1, false, 0), false)
	// Buffer full: interesting drop, uninteresting drop, lost reinsertion.
	if b.Push(in(2, 2, true, 0), false) {
		t.Fatal("Push into full buffer succeeded")
	}
	b.Push(in(3, 3, false, 0), false)
	b.Push(in(4, 4, true, 1), true)
	d := b.Drops()
	if d.Total != 3 || d.Interesting != 2 || d.Uninteresting != 1 {
		t.Errorf("drops = %+v, want Total 3 / Interesting 2 / Uninteresting 1", d)
	}
	if d.ReinsertionsLost != 1 {
		t.Errorf("ReinsertionsLost = %d, want 1", d.ReinsertionsLost)
	}
	if d.OverflowIncidents != 1 {
		t.Errorf("OverflowIncidents = %d, want 1 (one contiguous episode)", d.OverflowIncidents)
	}
	// Drain one, refill, overflow again: second episode.
	if _, err := b.Pop(); err != nil {
		t.Fatal(err)
	}
	b.Push(in(5, 5, false, 0), false)
	b.Push(in(6, 6, false, 0), false)
	if got := b.Drops().OverflowIncidents; got != 2 {
		t.Errorf("OverflowIncidents = %d, want 2", got)
	}
}

func TestPeakOccupancy(t *testing.T) {
	b := New(5)
	b.Push(in(0, 0, false, 0), false)
	b.Push(in(1, 0, false, 0), false)
	b.Push(in(2, 0, false, 0), false)
	b.Pop()
	b.Pop()
	if got := b.Drops().PeakOccupancy; got != 3 {
		t.Errorf("PeakOccupancy = %d, want 3", got)
	}
}

func TestOccupancyFraction(t *testing.T) {
	b := New(4)
	if b.Occupancy() != 0 {
		t.Errorf("empty Occupancy = %g, want 0", b.Occupancy())
	}
	b.Push(in(0, 0, false, 0), false)
	if b.Occupancy() != 0.25 {
		t.Errorf("Occupancy = %g, want 0.25", b.Occupancy())
	}
	if b.Free() != 3 {
		t.Errorf("Free = %d, want 3", b.Free())
	}
}

func TestJobSelection(t *testing.T) {
	b := New(10)
	// Inputs awaiting job 0 and job 1, interleaved and out of capture order.
	b.Push(Input{Seq: 5, CapturedAt: 5, JobID: 1}, false)
	b.Push(Input{Seq: 1, CapturedAt: 1, JobID: 0}, false)
	b.Push(Input{Seq: 3, CapturedAt: 3, JobID: 1, EnqueuedAt: 9}, false)
	b.Push(Input{Seq: 2, CapturedAt: 2, JobID: 0}, false)

	if got := b.PendingForJob(0); got != 2 {
		t.Errorf("PendingForJob(0) = %d, want 2", got)
	}
	if got := b.PendingForJob(7); got != 0 {
		t.Errorf("PendingForJob(7) = %d, want 0", got)
	}
	ids := b.JobIDs()
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 0 {
		t.Errorf("JobIDs = %v, want [1 0] (first-seen order)", ids)
	}
	// Oldest-by-capture for job 1 is seq 3 at index 2.
	idx := b.OldestForJob(1)
	got, err := b.At(idx)
	if err != nil || got.Seq != 3 {
		t.Errorf("OldestForJob(1) -> seq %d (err %v), want 3", got.Seq, err)
	}
	if b.OldestForJob(99) != -1 {
		t.Errorf("OldestForJob(99) = %d, want -1", b.OldestForJob(99))
	}
	// RemoveAt preserves order of the rest.
	rm, err := b.RemoveAt(idx)
	if err != nil || rm.Seq != 3 {
		t.Fatalf("RemoveAt(%d) = (%v, %v), want seq 3", idx, rm.Seq, err)
	}
	want := []uint64{5, 1, 2}
	for i, w := range want {
		got, _ := b.At(i)
		if got.Seq != w {
			t.Errorf("After RemoveAt, At(%d).Seq = %d, want %d", i, got.Seq, w)
		}
	}
}

func TestAtAndRemoveAtBounds(t *testing.T) {
	b := New(2)
	b.Push(in(0, 0, false, 0), false)
	if _, err := b.At(-1); err == nil {
		t.Error("At(-1) did not error")
	}
	if _, err := b.At(1); err == nil {
		t.Error("At(1) past end did not error")
	}
	if _, err := b.RemoveAt(5); err == nil {
		t.Error("RemoveAt(5) did not error")
	}
}

func TestPeek(t *testing.T) {
	b := New(2)
	if _, err := b.Peek(); err != ErrEmpty {
		t.Errorf("Peek empty = %v, want ErrEmpty", err)
	}
	b.Push(in(9, 0, false, 0), false)
	got, err := b.Peek()
	if err != nil || got.Seq != 9 {
		t.Errorf("Peek = (%v, %v), want seq 9", got.Seq, err)
	}
	if b.Len() != 1 {
		t.Errorf("Peek consumed the input: Len = %d", b.Len())
	}
}

func TestReset(t *testing.T) {
	b := New(1)
	b.Push(in(0, 0, true, 0), false)
	b.Push(in(1, 0, true, 0), false) // dropped
	b.Reset()
	if b.Len() != 0 || b.Drops() != (DropStats{}) {
		t.Errorf("after Reset: Len=%d Drops=%+v", b.Len(), b.Drops())
	}
}

func TestHugeCapacityDoesNotPreallocate(t *testing.T) {
	b := New(1 << 30) // the Ideal baseline's "infinite" buffer
	if cap(b.items) > 64 {
		t.Errorf("preallocated cap = %d, want ≤ 64", cap(b.items))
	}
	if !b.Push(in(0, 0, false, 0), false) {
		t.Error("Push into huge buffer rejected")
	}
}

// Property: occupancy never exceeds capacity, and conservation holds —
// pushes = pops + drops + remaining.
func TestPropertyConservation(t *testing.T) {
	f := func(seed int64, capRaw uint8, ops uint16) bool {
		capacity := int(capRaw)%10 + 1
		rng := rand.New(rand.NewSource(seed))
		b := New(capacity)
		pushes, pops := 0, 0
		for i := 0; i < int(ops); i++ {
			if rng.Intn(3) != 0 {
				b.Push(in(uint64(i), float64(i), rng.Intn(2) == 0, rng.Intn(3)), false)
				pushes++
			} else if _, err := b.Pop(); err == nil {
				pops++
			}
			if b.Len() > capacity {
				return false
			}
		}
		return pushes == pops+b.Drops().Total+b.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: interesting + uninteresting drops always sum to total drops.
func TestPropertyDropSplit(t *testing.T) {
	f := func(seed int64, ops uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		b := New(3)
		for i := 0; i < int(ops); i++ {
			if rng.Intn(4) == 0 {
				b.Pop()
			} else {
				b.Push(in(uint64(i), float64(i), rng.Intn(2) == 0, 0), rng.Intn(2) == 0)
			}
		}
		d := b.Drops()
		return d.Interesting+d.Uninteresting == d.Total && d.ReinsertionsLost <= d.Total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
