package buffer

import "testing"

// FuzzBufferOps drives the buffer with an arbitrary op stream and checks
// the conservation invariant (pushes = pops + drops + len) plus bounds.
func FuzzBufferOps(f *testing.F) {
	f.Add(uint8(3), []byte{0, 1, 2, 0, 3})
	f.Add(uint8(1), []byte{0, 0, 0, 1, 1, 1})
	f.Fuzz(func(t *testing.T, capRaw uint8, ops []byte) {
		capacity := int(capRaw)%12 + 1
		b := New(capacity)
		pushes, removals := 0, 0
		for i, op := range ops {
			switch op % 5 {
			case 0, 1:
				b.Push(Input{Seq: uint64(i), CapturedAt: float64(i), Interesting: op%2 == 0, JobID: int(op) % 3}, op%3 == 0)
				pushes++
			case 2:
				if _, err := b.Pop(); err == nil {
					removals++
				}
			case 3:
				if _, err := b.PopNewest(); err == nil {
					removals++
				}
			case 4:
				if b.Len() > 0 {
					if _, err := b.RemoveAt(int(op) % b.Len()); err == nil {
						removals++
					}
				}
			}
			if b.Len() > capacity {
				t.Fatalf("len %d exceeds capacity %d", b.Len(), capacity)
			}
			d := b.Drops()
			if d.Interesting+d.Uninteresting != d.Total {
				t.Fatalf("drop split broken: %+v", d)
			}
		}
		if got := removals + b.Drops().Total + b.Len(); got != pushes {
			t.Fatalf("conservation: pushes %d != pops %d + drops %d + len %d",
				pushes, removals, b.Drops().Total, b.Len())
		}
	})
}
