// Package buffer implements the on-device input buffer that Quetzal models
// as a queue (paper §3.1). The buffer has a fixed capacity limited by device
// memory (e.g. 10 images on the evaluated platforms, Table 1). Inputs that
// arrive to a full buffer are lost — those losses are the input buffer
// overflows (IBOs) the paper exists to prevent — so the buffer counts every
// drop, split by whether the dropped input was "interesting".
package buffer

import (
	"errors"
	"fmt"
)

// ErrEmpty is returned when removing from an empty buffer.
var ErrEmpty = errors.New("buffer: empty")

// Input is one buffered sensor input (e.g. a compressed image awaiting
// processing) together with the metadata the scheduler and the metrics
// accounting need.
type Input struct {
	// Seq is the capture sequence number, globally unique and increasing.
	Seq uint64
	// CapturedAt is the simulation time of capture, in seconds.
	CapturedAt float64
	// Interesting is the ground-truth label: the input was captured during
	// an event the application cares about. The device never reads this
	// directly; classifiers observe it only through their error rates.
	Interesting bool
	// JobID identifies the job that must process this input next. A job
	// that spawns follow-up work re-inserts the input with a new JobID
	// (paper §3.1: "it can be re-inserted into the queue by the previous
	// job").
	JobID int
	// EnqueuedAt is the simulation time the input (re-)entered the buffer.
	EnqueuedAt float64
}

// DropStats counts inputs lost at the buffer boundary.
type DropStats struct {
	Total             int // all inputs dropped due to a full buffer
	Interesting       int // dropped inputs that were interesting (the paper's "IBO" losses)
	Uninteresting     int // dropped inputs that were not
	ReinsertionsLost  int // dropped re-insertions (input survived stage 1 but its follow-up job was lost)
	PeakOccupancy     int // high-water mark of buffer occupancy
	OverflowIncidents int // number of distinct full→drop episodes
}

// Buffer is a bounded FIFO of Inputs with drop accounting. It is not
// concurrency-safe; the simulator is single-threaded like the device.
type Buffer struct {
	items    []Input
	capacity int
	drops    DropStats
	wasFull  bool // tracks overflow episode boundaries
}

// New returns an empty buffer with the given capacity in inputs.
func New(capacity int) *Buffer {
	if capacity <= 0 {
		panic(fmt.Sprintf("buffer: capacity must be positive, got %d", capacity))
	}
	// Cap the preallocation: the Ideal baseline models an effectively
	// infinite buffer with a huge capacity, and must not reserve it all.
	prealloc := capacity
	if prealloc > 64 {
		prealloc = 64
	}
	return &Buffer{items: make([]Input, 0, prealloc), capacity: capacity}
}

// Capacity returns the maximum number of buffered inputs.
func (b *Buffer) Capacity() int { return b.capacity }

// Len returns the current occupancy.
func (b *Buffer) Len() int { return len(b.items) }

// Free returns the remaining space.
func (b *Buffer) Free() int { return b.capacity - len(b.items) }

// Full reports whether the buffer is at capacity.
func (b *Buffer) Full() bool { return len(b.items) == b.capacity }

// Occupancy returns Len/Capacity in [0,1].
func (b *Buffer) Occupancy() float64 { return float64(len(b.items)) / float64(b.capacity) }

// Push appends an input. If the buffer is full the input is dropped, the
// drop statistics are updated, and Push reports false. reinsertion marks
// pushes that re-enter an input for a follow-up job.
func (b *Buffer) Push(in Input, reinsertion bool) bool {
	if b.Full() {
		b.drops.Total++
		if in.Interesting {
			b.drops.Interesting++
		} else {
			b.drops.Uninteresting++
		}
		if reinsertion {
			b.drops.ReinsertionsLost++
		}
		if !b.wasFull {
			b.drops.OverflowIncidents++
			b.wasFull = true
		}
		return false
	}
	b.wasFull = false
	b.items = append(b.items, in)
	if len(b.items) > b.drops.PeakOccupancy {
		b.drops.PeakOccupancy = len(b.items)
	}
	return true
}

// Peek returns the oldest input without removing it.
func (b *Buffer) Peek() (Input, error) {
	if len(b.items) == 0 {
		return Input{}, ErrEmpty
	}
	return b.items[0], nil
}

// Pop removes and returns the oldest input (FIFO order).
func (b *Buffer) Pop() (Input, error) {
	if len(b.items) == 0 {
		return Input{}, ErrEmpty
	}
	in := b.items[0]
	copy(b.items, b.items[1:])
	b.items = b.items[:len(b.items)-1]
	return in, nil
}

// PopNewest removes and returns the most recent input (LIFO order, used by
// the LCFS scheduling baseline).
func (b *Buffer) PopNewest() (Input, error) {
	if len(b.items) == 0 {
		return Input{}, ErrEmpty
	}
	in := b.items[len(b.items)-1]
	b.items = b.items[:len(b.items)-1]
	return in, nil
}

// OldestForJob returns the index of the oldest input awaiting the given job,
// or -1 if none is buffered. "Oldest" is by capture time, so a scheduler that
// breaks E[S] ties by input age (paper §4.1) can use it directly.
func (b *Buffer) OldestForJob(jobID int) int {
	best := -1
	for i, in := range b.items {
		if in.JobID != jobID {
			continue
		}
		if best == -1 || in.CapturedAt < b.items[best].CapturedAt {
			best = i
		}
	}
	return best
}

// PendingForJob counts buffered inputs awaiting the given job.
func (b *Buffer) PendingForJob(jobID int) int {
	n := 0
	for _, in := range b.items {
		if in.JobID == jobID {
			n++
		}
	}
	return n
}

// JobIDs returns the distinct JobIDs with at least one pending input, in
// first-seen (FIFO) order.
func (b *Buffer) JobIDs() []int {
	var ids []int
	seen := map[int]bool{}
	for _, in := range b.items {
		if !seen[in.JobID] {
			seen[in.JobID] = true
			ids = append(ids, in.JobID)
		}
	}
	return ids
}

// RemoveAt removes and returns the input at index i (0 = oldest).
func (b *Buffer) RemoveAt(i int) (Input, error) {
	if i < 0 || i >= len(b.items) {
		return Input{}, fmt.Errorf("buffer: index %d out of range [0,%d)", i, len(b.items))
	}
	in := b.items[i]
	copy(b.items[i:], b.items[i+1:])
	b.items = b.items[:len(b.items)-1]
	return in, nil
}

// Retag re-labels the input at index i for a follow-up job without moving
// it: the paper's "re-inserted into the queue by the previous job" keeps
// the image in the same memory slot, so re-tagging can never overflow.
func (b *Buffer) Retag(i, newJobID int, now float64) error {
	if i < 0 || i >= len(b.items) {
		return fmt.Errorf("buffer: index %d out of range [0,%d)", i, len(b.items))
	}
	b.items[i].JobID = newJobID
	b.items[i].EnqueuedAt = now
	return nil
}

// IndexOfSeq returns the index of the input with the given sequence number,
// or -1 if it is not buffered.
func (b *Buffer) IndexOfSeq(seq uint64) int {
	for i, in := range b.items {
		if in.Seq == seq {
			return i
		}
	}
	return -1
}

// At returns the input at index i without removing it.
func (b *Buffer) At(i int) (Input, error) {
	if i < 0 || i >= len(b.items) {
		return Input{}, fmt.Errorf("buffer: index %d out of range [0,%d)", i, len(b.items))
	}
	return b.items[i], nil
}

// Drops returns a copy of the drop statistics.
func (b *Buffer) Drops() DropStats { return b.drops }

// Reset empties the buffer and clears statistics.
func (b *Buffer) Reset() {
	b.items = b.items[:0]
	b.drops = DropStats{}
	b.wasFull = false
}
