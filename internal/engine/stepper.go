package engine

import "context"

// Stepper is the time-advance strategy: it owns the main loop, choosing
// step lengths and committing the clock, while delegating all physics to
// Machine.Step. Implementations must call, per committed step, in order:
// m.Hook(i), m.Step(dt), the clock advance, m.EndStep(dt).
type Stepper interface {
	// Kind reports which engine this stepper implements.
	Kind() Kind
	// Run advances m from t=0 to its configured duration, polling ctx for
	// cancellation between steps.
	Run(ctx context.Context, m *Machine) error
}

// ctxCheckStride is how many steps/segments run between cancellation
// checks: frequent enough to cancel within microseconds of wall time,
// rare enough to keep ctx polling off the hot path.
const ctxCheckStride = 4096

// FixedStepper advances in constant StepDt increments — the paper's §6.3
// reference loop.
type FixedStepper struct{}

// Kind reports FixedIncrement.
func (FixedStepper) Kind() Kind { return FixedIncrement }

// Run executes the fixed-increment main loop. Time is stamped as i*dt
// (not accumulated) so the step count is exact and float drift cannot
// shift capture ticks. The clock is advanced to the step's end before the
// observers run, so both steppers deliver OnStep at the same semantic
// instant: the state at the committed step's end.
func (FixedStepper) Run(ctx context.Context, m *Machine) error {
	dt := m.cfg.StepDt
	steps := int(m.cfg.Duration / dt)
	for i := 0; i < steps; i++ {
		if i%ctxCheckStride == 0 && ctx.Err() != nil {
			return m.canceled(ctx)
		}
		m.Hook(i)
		m.now = float64(i) * dt
		m.Step(dt)
		m.now = float64(i+1) * dt
		m.EndStep(dt)
	}
	return nil
}
