package engine

import (
	"bytes"
	"context"
	"errors"
	"math"
	"strconv"
	"strings"
	"testing"

	"quetzal/internal/baseline"
	"quetzal/internal/core"
	"quetzal/internal/device"
	"quetzal/internal/invariant"
	"quetzal/internal/model"
	"quetzal/internal/trace"
)

// steadyEvents builds a trace of n back-to-back interesting events with
// gaps, deterministic and easy to reason about.
func steadyEvents(n int, dur, gap float64, interesting bool) *trace.EventTrace {
	tr := &trace.EventTrace{}
	t := gap
	for i := 0; i < n; i++ {
		tr.Events = append(tr.Events, trace.Event{Start: t, Duration: dur, Interesting: interesting})
		t += dur + gap
	}
	return tr
}

func noadaptController(t *testing.T, app *model.App) core.Controller {
	t.Helper()
	c, err := baseline.NoAdapt(app)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func quetzalController(t *testing.T, app *model.App) core.Controller {
	t.Helper()
	r, err := core.New(core.Config{App: app, CapturePeriod: 1})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// testConfig is a small brownout-heavy scenario both steppers handle.
func testConfig(t *testing.T, app *model.App, ctl core.Controller) Config {
	t.Helper()
	prof := device.Apollo4()
	if app == nil {
		app = prof.PersonDetectionApp()
	}
	if ctl == nil {
		ctl = noadaptController(t, app)
	}
	return Config{
		Profile:    prof,
		App:        app,
		Controller: ctl,
		Power:      trace.SquareWave{High: 0.05, Low: 0.004, Period: 60, Duty: 0.5},
		Events:     steadyEvents(5, 10, 10, true),
		Seed:       42,
	}
}

func mustRun(t *testing.T, cfg Config, s Stepper, obs ...Observer) (mRes *Machine, _ error) {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Observe(obs...)
	_, err = m.Run(context.Background(), s)
	return m, err
}

func TestNewValidation(t *testing.T) {
	prof := device.Apollo4()
	app := prof.PersonDetectionApp()
	ctl := noadaptController(t, app)
	events := steadyEvents(1, 5, 5, true)
	power := trace.Constant{P: 0.02}

	cases := []Config{
		{},                              // no controller
		{Controller: ctl},               // no power
		{Controller: ctl, Power: power}, // no events
		{Controller: ctl, Power: power, Events: events, Profile: prof, CapturePeriod: -1},
		{Controller: ctl, Power: power, Events: events, Profile: prof, StepDt: -1},
		{Controller: ctl, Power: power, Events: events, Profile: prof, BufferCapacity: -1},
		{Controller: ctl, Power: power, Events: events, Profile: prof, CheckpointInterval: -1},
		{Controller: ctl, Power: power, Events: events, Profile: prof, TexeJitterOverride: 2},
		{Controller: ctl, Power: power, Events: events, Profile: prof, Duration: -5},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: New accepted invalid config", i)
		}
	}
	if _, err := New(Config{Controller: ctl, Power: power, Events: events, Profile: prof, App: app}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestKindString(t *testing.T) {
	if FixedIncrement.String() != "fixed-increment" || EventDriven.String() != "event-driven" {
		t.Errorf("kind names: %q, %q", FixedIncrement, EventDriven)
	}
	if got := Kind(7).String(); got != "EngineKind(7)" {
		t.Errorf("unknown kind = %q", got)
	}
}

func TestStepperFor(t *testing.T) {
	if k := StepperFor(EventDriven).Kind(); k != EventDriven {
		t.Errorf("StepperFor(EventDriven).Kind() = %v", k)
	}
	if k := StepperFor(FixedIncrement).Kind(); k != FixedIncrement {
		t.Errorf("StepperFor(FixedIncrement).Kind() = %v", k)
	}
	if k := StepperFor(Kind(9)).Kind(); k != FixedIncrement {
		t.Errorf("unknown kind should fall back to fixed, got %v", k)
	}
}

func TestCheckpointPolicyString(t *testing.T) {
	for want, p := range map[string]CheckpointPolicy{
		"jit": JITCheckpoint, "none": NoCheckpoint, "periodic": PeriodicCheckpoint,
	} {
		if p.String() != want {
			t.Errorf("%v.String() = %q, want %q", int(p), p, want)
		}
	}
	if got := CheckpointPolicy(9).String(); got != "CheckpointPolicy(9)" {
		t.Errorf("unknown policy = %q", got)
	}
}

// TestStoreDepletionSemantics pins the meaning of the event stepper's
// store-depletion horizon (the old signature carried an unused bool that
// suggested the caller's subsystem mattered — it never did and now cannot):
// the time to brown-out depends only on the draw power against the current
// net harvest, regardless of which subsystem draws.
func TestStoreDepletionSemantics(t *testing.T) {
	cfg := testConfig(t, nil, nil)
	cfg.Power = trace.Constant{P: 0.2}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// DefaultConfig: 80% efficiency, no leakage → net harvest 160 mW.
	if got := m.harvestRate(); math.Abs(got-0.16) > 1e-12 {
		t.Fatalf("harvestRate = %g, want 0.16", got)
	}

	// Charging on net: no depletion horizon, the cap applies.
	if got := m.storeDepletion(0.06); got != maxSegment {
		t.Errorf("net-charging depletion horizon = %g, want maxSegment %g", got, maxSegment)
	}

	// Draining: the horizon is exactly usable energy over net drain, for
	// any draw power — capture pipeline, restore, execution, and idle draws
	// all share this one rule.
	usable := m.Store().UsableEnergy()
	if usable <= 0 {
		t.Fatal("fresh store has no usable energy")
	}
	for _, draw := range []float64{0.26, 0.66, 1.16} {
		net := 0.16 - draw
		want := usable / -net
		if got := m.storeDepletion(draw); math.Abs(got-want) > 1e-9*want {
			t.Errorf("storeDepletion(%g) = %g, want usable/-net = %g", draw, got, want)
		}
	}

	// Fully drained while draining on net: minimal progress, never zero.
	m.Store().SetFraction(0)
	if got := m.storeDepletion(0.66); got != minSegment {
		t.Errorf("drained depletion horizon = %g, want minSegment %g", got, minSegment)
	}
}

func TestStoreChargeAndRestart(t *testing.T) {
	cfg := testConfig(t, nil, nil)
	cfg.Power = trace.Constant{P: 0.2} // net 160 mW
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.storeCharge(0.016); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("storeCharge(16 mJ) = %g s, want 0.1", got)
	}
	if got := m.storeCharge(0); got != minSegment {
		t.Errorf("storeCharge(0) = %g, want minSegment", got)
	}
	m.Store().SetFraction(0)
	// Restart horizon is uncapped here; segment() applies the maxSegment
	// clamp. From empty at 160 mW the VOn deficit takes a finite charge.
	if got := m.storeRestart(); got <= 0 || got > 10 {
		t.Errorf("storeRestart from empty = %g, want a finite positive horizon", got)
	}
	// Not harvesting: restart never comes within this segment.
	cfg.Power = trace.Constant{P: 0}
	m2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2.Store().SetFraction(0)
	if got := m2.storeRestart(); got != maxSegment {
		t.Errorf("storeRestart without harvest = %g, want maxSegment", got)
	}
}

// TestHotPathZeroAlloc is the observer pipeline's zero-cost claim: with no
// observers (and even with the invariant checker, which snapshots by
// value), steady-state stepping allocates nothing.
func TestHotPathZeroAlloc(t *testing.T) {
	for _, tc := range []struct {
		name string
		obs  []Observer
	}{
		{"bare", nil},
		{"invariant", []Observer{InvariantObserver{C: invariant.New(invariant.Config{})}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig(t, nil, nil)
			cfg.Events = &trace.EventTrace{} // no events: no arrivals, no controller work
			cfg.Power = trace.Constant{P: 0.02}
			m, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			m.Observe(tc.obs...)
			const dt = 0.001
			step := 0
			run := func() {
				m.now = float64(step) * dt
				m.Step(dt)
				m.now = float64(step+1) * dt
				m.EndStep(dt)
				step++
			}
			for i := 0; i < 2000; i++ { // warm up past the first capture ticks
				run()
			}
			if allocs := testing.AllocsPerRun(2000, run); allocs != 0 {
				t.Errorf("hot path allocates %.1f per step, want 0", allocs)
			}
		})
	}
}

func TestObserverPipeline(t *testing.T) {
	for _, s := range []Stepper{FixedStepper{}, EventStepper{}} {
		t.Run(s.Kind().String(), func(t *testing.T) {
			var steps, finishes int
			var lastNow float64
			m, err := mustRun(t, testConfig(t, nil, nil), s, FuncObserver{
				Step: func(m *Machine, dt float64) {
					steps++
					if m.Now() < lastNow {
						t.Fatalf("observer clock went backwards: %g after %g", m.Now(), lastNow)
					}
					lastNow = m.Now()
				},
				Finish: func(m *Machine) error { finishes++; return nil },
			})
			if err != nil {
				t.Fatal(err)
			}
			if steps == 0 || finishes != 1 {
				t.Errorf("observer saw %d steps, %d finishes", steps, finishes)
			}
			if math.Abs(lastNow-m.Duration()) > 1e-9 {
				t.Errorf("last observed step at t=%g, want duration %g", lastNow, m.Duration())
			}
		})
	}
}

func TestObserverFinishErrorFailsRun(t *testing.T) {
	boom := errors.New("boom")
	_, err := mustRun(t, testConfig(t, nil, nil), FixedStepper{},
		FuncObserver{Finish: func(*Machine) error { return boom }})
	if !errors.Is(err, boom) {
		t.Fatalf("OnFinish error not propagated: %v", err)
	}
}

// TestTimelineGrid: under the event stepper, the timeline observer's
// Horizon forces segment boundaries onto the row grid, so every row is
// stamped exactly on a multiple of the interval.
func TestTimelineGrid(t *testing.T) {
	for _, s := range []Stepper{FixedStepper{}, EventStepper{}} {
		t.Run(s.Kind().String(), func(t *testing.T) {
			var buf bytes.Buffer
			cfg := testConfig(t, nil, nil)
			_, err := mustRun(t, cfg, s, NewTimelineWriter(&buf, 0.5))
			if err != nil {
				t.Fatal(err)
			}
			lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
			if lines[0] != "t_s,power_mw,store_mj,occupancy,state" {
				t.Fatalf("header = %q", lines[0])
			}
			if len(lines) < 10 {
				t.Fatalf("only %d timeline rows", len(lines)-1)
			}
			offGrid := 0
			for _, ln := range lines[1:] {
				ts, err := strconv.ParseFloat(strings.SplitN(ln, ",", 2)[0], 64)
				if err != nil {
					t.Fatalf("bad row %q: %v", ln, err)
				}
				if r := math.Mod(ts, 0.5); math.Min(r, 0.5-r) > 1e-3 {
					offGrid++
				}
			}
			// The fixed stepper's first row lands one step after t=0; allow
			// stray boundary rows but require the grid to dominate.
			if offGrid > 1 {
				t.Errorf("%d of %d rows off the 0.5 s grid", offGrid, len(lines)-1)
			}
		})
	}
}

// TestInvariantObserverCatchesCorruption is the engine-level mutation test:
// teleporting the store's charge without accounting must fail the run.
func TestInvariantObserverCatchesCorruption(t *testing.T) {
	for _, s := range []Stepper{FixedStepper{}, EventStepper{}} {
		t.Run(s.Kind().String(), func(t *testing.T) {
			m, err := New(testConfig(t, nil, nil))
			if err != nil {
				t.Fatal(err)
			}
			m.Observe(InvariantObserver{C: invariant.New(invariant.Config{})})
			// Two opposite jumps so at least one moves the stored energy no
			// matter where the trajectory sits when the hook fires.
			m.StepHook = func(step int) {
				switch step {
				case 100:
					m.Store().SetFraction(1)
				case 400:
					m.Store().SetFraction(0)
				}
			}
			if _, err := m.Run(context.Background(), s); err == nil ||
				!strings.Contains(err.Error(), "energy-conservation") {
				t.Fatalf("corruption not caught, err = %v", err)
			}
		})
	}
}

// TestSteppersProduceConsistentRuns drives a full brownout-heavy scenario
// through both steppers, with the quetzal runtime for controller-path
// coverage, under the invariant checker. Exact agreement is the
// differential oracle's job (internal/simgen); here both runs must be
// clean and within coarse agreement.
func TestSteppersProduceConsistentRuns(t *testing.T) {
	results := map[Kind]float64{}
	for _, s := range []Stepper{FixedStepper{}, EventStepper{}} {
		prof := device.Apollo4()
		app := prof.PersonDetectionApp()
		cfg := testConfig(t, app, quetzalController(t, app))
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m.Observe(InvariantObserver{C: invariant.New(invariant.Config{})})
		res, err := m.Run(context.Background(), s)
		if err != nil {
			t.Fatalf("%v: %v", s.Kind(), err)
		}
		if res.Captures == 0 || res.Arrivals == 0 || res.JobsCompleted == 0 {
			t.Fatalf("%v: degenerate run: %+v", s.Kind(), res)
		}
		if res.Brownouts == 0 {
			t.Errorf("%v: scenario intended to brown out never did", s.Kind())
		}
		results[s.Kind()] = float64(res.Arrivals)
	}
	f, e := results[FixedIncrement], results[EventDriven]
	if math.Abs(f-e) > 0.25*math.Max(f, e) {
		t.Errorf("arrivals diverge between steppers: fixed %g vs event %g", f, e)
	}
}

// TestCheckpointPolicies exercises every progress model under intermittent
// power; all must produce clean, invariant-checked runs.
func TestCheckpointPolicies(t *testing.T) {
	for _, p := range []CheckpointPolicy{JITCheckpoint, NoCheckpoint, PeriodicCheckpoint} {
		for _, s := range []Stepper{FixedStepper{}, EventStepper{}} {
			t.Run(p.String()+"/"+s.Kind().String(), func(t *testing.T) {
				cfg := testConfig(t, nil, nil)
				cfg.Checkpoint = p
				cfg.CheckpointInterval = 0.2
				m, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				m.Observe(InvariantObserver{C: invariant.New(invariant.Config{})})
				res, err := m.Run(context.Background(), s)
				if err != nil {
					t.Fatal(err)
				}
				if res.Brownouts == 0 {
					t.Error("scenario intended to brown out never did")
				}
			})
		}
	}
}

// TestJitterOverride covers the §8 variable-cost path.
func TestJitterOverride(t *testing.T) {
	cfg := testConfig(t, nil, nil)
	cfg.TexeJitterOverride = 0.3
	if _, err := mustRun(t, cfg, EventStepper{},
		InvariantObserver{C: invariant.New(invariant.Config{})}); err != nil {
		t.Fatal(err)
	}
}

func TestCancellation(t *testing.T) {
	for _, s := range []Stepper{FixedStepper{}, EventStepper{}} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		m, err := New(testConfig(t, nil, nil))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(ctx, s); !errors.Is(err, context.Canceled) {
			t.Errorf("%v: canceled run returned %v", s.Kind(), err)
		}
	}
}

func TestAccessors(t *testing.T) {
	cfg := testConfig(t, nil, nil)
	cfg.Power = trace.Constant{P: 0.02}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Now() != 0 || m.PendingCaptures() != 0 {
		t.Errorf("fresh machine: now %g, pending %d", m.Now(), m.PendingCaptures())
	}
	if got := m.InputPower(); got != 0.02 {
		t.Errorf("InputPower = %g", got)
	}
	if m.Phase() != "idle" {
		t.Errorf("fresh machine phase = %q, want idle", m.Phase())
	}
	if m.Buffer() == nil || m.Store() == nil || m.Duration() <= 0 {
		t.Error("nil subsystem accessors")
	}
	st := m.Snapshot()
	if st.BufferCap != m.Buffer().Capacity() || st.Store.Capacity != m.Store().Capacity() {
		t.Errorf("snapshot disagrees with accessors: %+v", st)
	}
}

// TestNilStepperDefaultsToFixed pins Run's nil-stepper fallback.
func TestNilStepperDefaultsToFixed(t *testing.T) {
	m, err := New(testConfig(t, nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
}

func TestCaptureRing(t *testing.T) {
	var r captureRing
	for i := 0; i < maxPendingCaptures; i++ {
		if r.Full() {
			t.Fatalf("ring full after %d pushes", i)
		}
		r.Push(pendingCapture{capturedAt: float64(i)})
	}
	if !r.Full() || r.Len() != maxPendingCaptures {
		t.Fatalf("ring not full after %d pushes (len %d)", maxPendingCaptures, r.Len())
	}
	if got := r.PopFront().capturedAt; got != 0 {
		t.Errorf("FIFO violated: popped %g first", got)
	}
	r.Push(pendingCapture{capturedAt: 9}) // wraps around the array
	want := []float64{1, 2, 3, 9}
	for i, w := range want {
		if got := r.PopFront().capturedAt; got != w {
			t.Errorf("pop %d = %g, want %g", i, got, w)
		}
	}
	if r.Len() != 0 {
		t.Errorf("ring not empty after draining, len %d", r.Len())
	}
}
