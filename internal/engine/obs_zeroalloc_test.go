package engine

import (
	"testing"

	"quetzal/internal/trace"
)

// TestObsDisabledZeroAlloc is ISSUE 4's acceptance guard: with the
// observability layer disabled (no EventLog sink, no observers — exactly
// what a run without -trace/-metrics wires up), the steady-state engine
// loop must allocate nothing per step, including across brownout/poweron
// transitions and capture activity, both of which pass through logf call
// sites. The obs layer lives outside this package (internal/obs imports
// engine), so "disabled" here is the nil pipeline those flags leave behind;
// the enabled path's cost is measured by BenchmarkObs* in internal/obs and
// recorded in BENCH_obs.json.
func TestObsDisabledZeroAlloc(t *testing.T) {
	cfg := testConfig(t, nil, nil)
	// Events drive arrivals, scheduling, classification and transmission —
	// every logf site on the decision path — while the low square wave
	// forces brownout/poweron cycles through the power-transition sites.
	cfg.Events = &trace.EventTrace{Events: []trace.Event{{Start: 0, Duration: 3600, Interesting: true}}}
	cfg.Power = trace.SquareWave{High: 0.05, Low: 0.002, Period: 2, Duty: 0.5}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.cfg.EventLog != nil {
		t.Fatal("test requires the event log disabled")
	}
	const dt = 0.001
	step := 0
	run := func() {
		m.now = float64(step) * dt
		m.Step(dt)
		m.now = float64(step+1) * dt
		m.EndStep(dt)
		step++
	}
	for i := 0; i < 5000; i++ { // warm up: first captures, first jobs, first brownouts
		run()
	}
	if allocs := testing.AllocsPerRun(5000, run); allocs != 0 {
		t.Errorf("engine loop with obs disabled allocates %.4f per step, want 0", allocs)
	}
}
