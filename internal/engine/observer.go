package engine

import (
	"fmt"
	"io"

	"quetzal/internal/invariant"
)

// Observer is per-step instrumentation. Observers never mutate the machine;
// they read its accessors after each committed step and once at end of run.
type Observer interface {
	// OnStep runs after every committed step, with the machine's clock at
	// the step's end (both steppers).
	OnStep(m *Machine, dt float64)
	// Horizon returns the next future instant this observer needs a step
	// boundary at, or a value ≤ now when it has none. The event stepper
	// caps segments so they land exactly on observer horizons; the fixed
	// stepper ignores them (its grid is already fixed).
	Horizon(now float64) float64
	// OnFinish runs once after the run completes; a non-nil error fails
	// the run (the invariant checker reports violations this way).
	OnFinish(m *Machine) error
}

// TimelineWriter is an Observer that emits one CSV row per interval of
// simulated time: time, input power, store energy, buffer occupancy,
// device phase. For plotting and debugging.
type TimelineWriter struct {
	w        io.Writer
	interval float64
	next     float64
	wrote    bool
}

// NewTimelineWriter builds a timeline observer writing to w every interval
// simulated seconds (0 → 1 s).
func NewTimelineWriter(w io.Writer, interval float64) *TimelineWriter {
	if interval == 0 {
		interval = 1
	}
	return &TimelineWriter{w: w, interval: interval}
}

// OnStep writes a row whenever the clock has reached the next boundary.
func (t *TimelineWriter) OnStep(m *Machine, _ float64) {
	if m.Now() < t.next {
		return
	}
	if !t.wrote {
		fmt.Fprintln(t.w, "t_s,power_mw,store_mj,occupancy,state")
		t.wrote = true
	}
	fmt.Fprintf(t.w, "%.3f,%.3f,%.3f,%d,%s\n",
		m.Now(), m.InputPower()*1e3, m.Store().Energy()*1e3, m.Buffer().Len(), m.Phase())
	t.next += t.interval
}

// Horizon asks the event stepper to land a boundary on the next row time.
func (t *TimelineWriter) Horizon(float64) float64 { return t.next }

// OnFinish is a no-op; the timeline has no end-of-run row.
func (t *TimelineWriter) OnFinish(*Machine) error { return nil }

// InvariantObserver feeds every step to an invariant.Checker and verifies
// the end-of-run accounting identities. Registering one marks the run as
// verified, replacing the machine's own fallback Results.Check.
type InvariantObserver struct {
	C *invariant.Checker
}

// OnStep checks the per-step invariants against the machine snapshot.
func (o InvariantObserver) OnStep(m *Machine, _ float64) { o.C.Step(m.Snapshot()) }

// Horizon reports no boundary needs.
func (o InvariantObserver) Horizon(float64) float64 { return 0 }

// OnFinish checks the end-of-run identities.
func (o InvariantObserver) OnFinish(m *Machine) error {
	return o.C.Finish(invariant.FinalState{
		StepState:       m.Snapshot(),
		Results:         m.Results(),
		PendingCaptures: m.PendingCaptures(),
	})
}

// FuncObserver adapts plain functions to the Observer interface; nil
// fields behave as no-ops. Tests and ad-hoc metrics collectors use it.
type FuncObserver struct {
	Step   func(m *Machine, dt float64)
	Bound  func(now float64) float64
	Finish func(m *Machine) error
}

// OnStep calls Step when set.
func (f FuncObserver) OnStep(m *Machine, dt float64) {
	if f.Step != nil {
		f.Step(m, dt)
	}
}

// Horizon calls Bound when set.
func (f FuncObserver) Horizon(now float64) float64 {
	if f.Bound != nil {
		return f.Bound(now)
	}
	return 0
}

// OnFinish calls Finish when set.
func (f FuncObserver) OnFinish(m *Machine) error {
	if f.Finish != nil {
		return f.Finish(m)
	}
	return nil
}
