package engine

import (
	"context"
	"fmt"
	"math"

	"quetzal/internal/faults"
	"quetzal/internal/metrics"
	"quetzal/internal/trace"
)

// LockstepStepper is the batch-throughput stepper. It commits the exact
// segment sequence of EventStepper — same segment chooser, same Step
// transition, same clock accumulation — so event streams and results are
// bit-identical to the event-driven engine (pinned by the golden-parity
// test and the three-way differential oracle in internal/simgen). What it
// adds is the crawl replay: when the machine enters a fixed-point regime in
// which every segment is provably minSegment and every step repeats the
// same float arithmetic (see replayCrawl), it commits those steps out of
// line as constant-addend updates instead of full segment/step dispatch.
//
// NewBatch runs many machines under this stepper in lockstep rounds over
// shared power-segment walls, amortizing construction and dispatch across
// the batch. See DESIGN.md §13.
type LockstepStepper struct{}

// Kind reports Lockstep.
func (LockstepStepper) Kind() Kind { return Lockstep }

// Run executes the lockstep main loop for a single machine: the event-driven
// loop with the crawl replay spliced in.
func (LockstepStepper) Run(ctx context.Context, m *Machine) error {
	step := 0
	if err := lockstepRun(ctx, m, m.cfg.Duration, &step); err != nil {
		return err
	}
	m.now = m.cfg.Duration
	return nil
}

// lockstepRun advances m until its clock reaches min(wall, duration). It is
// the loop shared by the single-run stepper (wall = duration) and Batch
// rounds; step carries the step index across rounds so the test hook and the
// cancellation stride see one continuous run. The wall only pauses the loop —
// segment choice never depends on it — so any wall schedule commits the
// identical step sequence.
func lockstepRun(ctx context.Context, m *Machine, wall float64, step *int) error {
	end := m.cfg.Duration
	if wall > end {
		wall = end
	}
	i := *step
	defer func() { *step = i }()
	for m.now < wall {
		if i%ctxCheckStride == 0 && ctx.Err() != nil {
			return m.canceled(ctx)
		}
		if n := m.replayCrawl(wall); n > 0 {
			// The replay commits steps in bulk; keep the index honest and
			// re-check cancellation here since the stride check above may
			// now be skipped over.
			i += n
			if ctx.Err() != nil {
				return m.canceled(ctx)
			}
			continue
		}
		m.Hook(i)
		dt := segment(m, end)
		m.Step(dt)
		m.now += dt
		m.EndStep(dt)
		i++
	}
	return nil
}

// crawlWindowMargin shrinks constant-power windows so float drift between
// the replay clock and the trace's own phase arithmetic can never reach a
// waveform edge; boundary neighborhoods always go through the normal path.
const crawlWindowMargin = 1e-9

// replayCrawl advances the machine through a brown-out capture crawl: the
// store pinned at its floor, a pending capture draining every harvested
// joule within the step it arrives, the segment chooser returning exactly
// minSegment. This regime dominates starved runs (>95% of all segments on
// the square-wave bench workload), and inside it each step's float
// arithmetic is a closed form of the previous step's, so the loop below
// commits the same values Step would — expression by expression, in the
// same order, bit-identical by induction — without segment choice, interface
// dispatch, or store calls. When the power trace is additionally
// bitwise-constant over a window (constantWindow) the regime is a fixed
// point and steps reduce to five constant-addend additions.
//
// It returns the number of steps committed, 0 when the regime does not
// apply; the caller resumes the normal loop either way, so every boundary
// (capture tick, restart threshold, regulation clamp, capture completion,
// sub-step tails) is handled by the ordinary segment/step path.
func (m *Machine) replayCrawl(limit float64) int {
	// Regime gate. Each condition either defines the crawl or excludes a
	// side effect the replay does not reproduce: UsableEnergy()==0 is what
	// forces segment()==minSegment; a pending on/off transition would logf
	// and run checkpoint policy; observers/hooks must see every step;
	// leakage adds a per-step drain Step applies and this loop does not;
	// CapturePexe<=0 flips DrawPriority into its free-progress branch;
	// a replay-sensitive controller reads state the replay does not freeze.
	//
	// The fault layer needs no extra gate: every realism effect fires from
	// a site the crawl regime excludes. Measurement charges, temperature
	// updates, and stuck-bit corruption happen only in invokeController,
	// which cannot run while a capture is pending (captures.Len() > 0 is
	// the first gate condition, and Step's capture branch returns before
	// the controller dispatch); task-fault injection happens only at task
	// completion inside runTask, equally unreachable here. Dropout windows
	// are a property of the power trace itself, which the replay samples
	// every probe step and whose constantWindow case below bounds the
	// fixed-point fast path away from window edges.
	if m.captures.Len() == 0 ||
		m.store.UsableEnergy() > 0 ||
		m.wasOn != m.store.On() ||
		m.replaySensitive ||
		m.StepHook != nil ||
		len(m.observers) != 0 ||
		m.cfg.Store.LeakagePower != 0 ||
		m.app.CapturePexe <= 0 {
		return 0
	}
	const dt = minSegment
	stop := limit
	if m.nextCapture < stop {
		stop = m.nextCapture
	}
	now := m.now
	if !(now < stop) {
		return 0
	}

	st := m.store
	stored, harvested, consumed := st.ReplayLedger()
	eOff := st.Floor()
	eOn := st.RestartThreshold()
	eMax := st.Capacity()
	on := st.On()
	eff := m.cfg.Store.HarvestEfficiency
	pexe := m.app.CapturePexe
	need := pexe * dt // DrawPriority's need for a full minSegment step
	c := m.captures.Front()
	rem := c.remaining
	oi := float64(m.buf.Len()) * dt // occupancy-integral addend (buffer untouched)
	occInt := m.res.OccupancyIntegral
	tr := m.cfg.Power
	n := 0

loop:
	for now < stop {
		p := tr.Power(now)
		// segment() returns minSegment only while storeDepletion sees a
		// net-negative rate; same expression, same floats.
		if p*eff-pexe >= 0 {
			break
		}
		// One step of Machine.Step's capture branch, symbolically. Every
		// expression mirrors Harvest/DrawPriority verbatim so the committed
		// floats are the ones the real call chain would produce.
		pre := stored
		e := 0.0
		s1 := stored
		if p > 0 {
			e = p * dt * eff
			if e > eMax-stored {
				break // regulation clamp: normal path accounts wasted energy
			}
			s1 = stored + e
			if !on && s1 >= eOn {
				break // restart threshold: normal path logs the transition
			}
		}
		var ca, d float64
		s2 := s1
		avail := s1 - eOff
		if avail > 0 {
			if need <= avail {
				break // full-rate capture progress: not a crawl
			}
			ca = avail
			d = dt * (avail / need)
			s2 = eOff
		}
		if rem < dt {
			break // sub-step capture tail: Step draws for use=remaining there
		}
		nr := rem - d
		if nr <= dt {
			break // completion margin: let the normal path finish the frame
		}
		stored = s2
		harvested += e
		consumed += ca
		occInt += oi
		now += dt
		rem = nr
		n++

		// Fixed point: the step returned the store bit-identical to its
		// pre-step value (everything harvested drained back to the floor in
		// the same step). If the trace is also bitwise-constant over a
		// window, every further step repeats exactly these addends; replay
		// them without re-probing.
		if s2 == pre {
			if cp, until, ok := constantWindow(tr, now); ok && cp == p {
				cstop := stop
				if until < cstop {
					cstop = until
				}
				for now < cstop {
					nr = rem - d
					if nr <= dt {
						break loop
					}
					harvested += e
					consumed += ca
					occInt += oi
					now += dt
					rem = nr
					n++
				}
			}
		}
	}

	if n > 0 {
		st.SetReplayLedger(stored, harvested, consumed)
		c.remaining = rem
		m.res.OccupancyIntegral = occInt
		m.now = now
		m.replaySteps += n
	}
	return n
}

// constantWindow reports a window [t, until) over which tr.Power returns the
// bitwise-constant value p. ok=false means no such window is known: sampled
// traces interpolate, so even visually flat regions are not bitwise-constant,
// and unknown trace types are never assumed constant.
func constantWindow(tr trace.PowerTrace, t float64) (p, until float64, ok bool) {
	switch s := tr.(type) {
	case trace.Constant:
		return s.P, math.Inf(1), true
	case trace.SquareWave:
		if s.Period <= 0 {
			return s.High, math.Inf(1), true
		}
		phase := math.Mod(t, s.Period)
		if phase < 0 {
			phase += s.Period
		}
		// Same edge expression as SquareWave.Power, so the classification
		// here is the one the trace itself would make at t.
		edge := s.Duty * s.Period
		var left float64
		if phase < edge {
			p, left = s.High, edge-phase
		} else {
			p, left = s.Low, s.Period-phase
		}
		left -= crawlWindowMargin
		if left <= 0 {
			return 0, 0, false
		}
		return p, t + left, true
	case trace.Scaled:
		pb, until, ok := constantWindow(s.Base, t)
		if !ok {
			return 0, 0, false
		}
		return pb * s.Factor, until, true
	case faults.Dropout:
		lo, hi, inside := s.WindowAt(t)
		if inside {
			// Inside a dropout window the trace is bitwise 0 up to the
			// window's end; stay clear of the edge like the square wave.
			until := hi - crawlWindowMargin
			if until <= t {
				return 0, 0, false
			}
			return 0, until, true
		}
		pb, until, ok := constantWindow(s.Base, t)
		if !ok {
			return 0, 0, false
		}
		if !math.IsInf(lo, 1) {
			// Outside, the base value holds only until the next window
			// opens; bound the fast path away from that edge too.
			if edge := lo - crawlWindowMargin; edge < until {
				until = edge
			}
			if until <= t {
				return 0, 0, false
			}
		}
		return pb, until, true
	}
	return 0, 0, false
}

// PowerSegment is one span of a piecewise-linear decomposition of a power
// trace: over [T0, T1) the power ramps linearly from P0 to P1.
type PowerSegment struct {
	T0, T1 float64
	P0, P1 float64
}

// Energy returns the closed-form (trapezoid) energy delivered over the
// segment, in joules, pre-harvester-efficiency.
func (s PowerSegment) Energy() float64 {
	return 0.5 * (s.P0 + s.P1) * (s.T1 - s.T0)
}

// maxBuildSegments bounds a decomposition's size: degenerate traces (a
// millisecond-period square wave over hours) are reported undecomposable
// rather than materialized.
const maxBuildSegments = 1 << 20

// BuildSegments decomposes tr over [0, duration) into contiguous
// piecewise-linear segments: the first T0 is 0, each T1 equals the next
// segment's T0, the last T1 equals duration, and within each span the trace
// is linear between the endpoint powers. It returns nil when the trace's
// dynamic type is unknown or the decomposition would exceed
// maxBuildSegments. Batch uses the edges as lockstep round walls;
// FuzzSegments pins the coverage and closed-form-energy properties.
func BuildSegments(tr trace.PowerTrace, duration float64) []PowerSegment {
	if duration <= 0 {
		return nil
	}
	switch s := tr.(type) {
	case trace.Constant:
		return []PowerSegment{{T0: 0, T1: duration, P0: s.P, P1: s.P}}
	case trace.SquareWave:
		if s.Period <= 0 || s.Duty <= 0 || s.Duty >= 1 {
			// Degenerate waves are constant for all t ≥ 0.
			p := s.Power(0)
			return []PowerSegment{{T0: 0, T1: duration, P0: p, P1: p}}
		}
		if duration/s.Period*2 > maxBuildSegments {
			return nil
		}
		segs := make([]PowerSegment, 0, int(duration/s.Period)*2+2)
		t := 0.0
		for k := 0; t < duration; k++ {
			hi := (float64(k) + s.Duty) * s.Period // high→low edge
			lo := float64(k+1) * s.Period          // period end
			for _, edgeT := range [2]float64{hi, lo} {
				if edgeT <= t {
					continue // zero-length sliver (duty edge at a period edge)
				}
				t1 := edgeT
				if t1 > duration {
					t1 = duration
				}
				p := s.Power((t + t1) / 2)
				segs = append(segs, PowerSegment{T0: t, T1: t1, P0: p, P1: p})
				t = t1
				if t >= duration {
					break
				}
			}
		}
		return segs
	case trace.Scaled:
		segs := BuildSegments(s.Base, duration)
		for i := range segs {
			segs[i].P0 *= s.Factor
			segs[i].P1 *= s.Factor
		}
		return segs
	case *trace.Sampled:
		if len(s.Samples) == 0 {
			return []PowerSegment{{T0: 0, T1: duration}}
		}
		if s.Dt <= 0 || len(s.Samples) == 1 {
			p := s.Samples[0]
			return []PowerSegment{{T0: 0, T1: duration, P0: p, P1: p}}
		}
		if duration/s.Dt+1 > maxBuildSegments {
			return nil
		}
		segs := make([]PowerSegment, 0, int(duration/s.Dt)+2)
		t := 0.0
		for i := 0; t < duration && i < len(s.Samples)-1; i++ {
			t1 := float64(i+1) * s.Dt
			if t1 > duration {
				t1 = duration
			}
			segs = append(segs, PowerSegment{T0: t, T1: t1, P0: s.Power(t), P1: s.Power(t1)})
			t = t1
		}
		if t < duration {
			// Past the sample grid the trace clamps to its last sample.
			p := s.Samples[len(s.Samples)-1]
			segs = append(segs, PowerSegment{T0: t, T1: duration, P0: p, P1: p})
		}
		return segs
	}
	return nil
}

// Batch runs many machines under the lockstep stepper in shared rounds. The
// machines live in one slab (construction amortizes), and each round
// advances every unfinished machine to the next shared wall, so the batch
// sweeps the same stretch of simulated time together. Walls never influence
// segment choice — results are bit-identical to running each machine alone.
type Batch struct {
	machines []Machine
	steps    []int
	walls    []float64
	ran      bool
}

// NewBatch validates every config and builds the machine slab. Configs may
// differ arbitrarily; sharing a power trace merely aligns the rounds with
// its piecewise-linear edges.
func NewBatch(cfgs []Config) (*Batch, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("engine: empty batch")
	}
	b := &Batch{
		machines: make([]Machine, len(cfgs)),
		steps:    make([]int, len(cfgs)),
	}
	maxEnd := 0.0
	for i := range cfgs {
		if err := initMachine(&b.machines[i], cfgs[i]); err != nil {
			return nil, fmt.Errorf("engine: batch config %d: %w", i, err)
		}
		if d := b.machines[i].cfg.Duration; d > maxEnd {
			maxEnd = d
		}
	}
	b.walls = batchWalls(&b.machines[0], maxEnd)
	return b, nil
}

// batchWalls derives the round boundaries: the first machine's power-segment
// edges when the builder can decompose its trace (merged below a floor so
// fine-grained traces do not cause per-sample pauses), else a uniform grid.
func batchWalls(m0 *Machine, maxEnd float64) []float64 {
	const minRound = 0.5
	var walls []float64
	if segs := BuildSegments(m0.cfg.Power, maxEnd); segs != nil {
		last := 0.0
		for _, s := range segs {
			if s.T1-last >= minRound {
				walls = append(walls, s.T1)
				last = s.T1
			}
		}
	} else {
		for t := minRound; t < maxEnd; t += minRound {
			walls = append(walls, t)
		}
	}
	if len(walls) == 0 || walls[len(walls)-1] < maxEnd {
		walls = append(walls, maxEnd)
	}
	return walls
}

// Len returns the number of machines in the batch.
func (b *Batch) Len() int { return len(b.machines) }

// Machine returns machine i, for observer registration before Run and
// inspection after. Registering observers disables that machine's crawl
// replay (they must see every step), exactly as with the single-run stepper.
func (b *Batch) Machine(i int) *Machine { return &b.machines[i] }

// Results returns a pointer to machine i's results. Valid after Run; the
// pointer aliases the machine's own accumulator, so fleet-scale callers can
// reduce through it without copying the ~90-field struct.
func (b *Batch) Results(i int) *metrics.Results { return &b.machines[i].res }

// Run advances all machines to completion in lockstep rounds and finalises
// each exactly as Machine.RunInto would: finish, observer OnFinish, and the
// accounting self-check when no invariant observer subsumes it.
func (b *Batch) Run(ctx context.Context) error {
	if b.ran {
		return fmt.Errorf("engine: batch already run")
	}
	b.ran = true
	active := make([]int, len(b.machines))
	for i := range active {
		active[i] = i
	}
	walls := append(b.walls, math.Inf(1)) // defensive final round
	for _, wall := range walls {
		if len(active) == 0 {
			break
		}
		next := active[:0]
		for _, idx := range active {
			m := &b.machines[idx]
			if err := lockstepRun(ctx, m, wall, &b.steps[idx]); err != nil {
				return fmt.Errorf("engine: batch machine %d: %w", idx, err)
			}
			if m.now < m.cfg.Duration {
				next = append(next, idx)
				continue
			}
			if err := b.finalize(m); err != nil {
				return fmt.Errorf("engine: batch machine %d: %w", idx, err)
			}
		}
		active = next
	}
	return nil
}

// finalize mirrors the tail of Machine.RunInto for one completed machine.
func (b *Batch) finalize(m *Machine) error {
	m.now = m.cfg.Duration
	m.finish()
	for _, o := range m.observers {
		if err := o.OnFinish(m); err != nil {
			return err
		}
	}
	if !m.verified {
		if err := m.res.Check(); err != nil {
			return fmt.Errorf("inconsistent accounting: %w", err)
		}
	}
	return nil
}
