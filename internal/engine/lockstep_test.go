package engine

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"math"
	"testing"

	"quetzal/internal/baseline"
	"quetzal/internal/device"
	"quetzal/internal/energy"
	"quetzal/internal/metrics"
	"quetzal/internal/trace"
)

// lockstepScenario is one workload the lockstep stepper must reproduce
// bit-for-bit against the event stepper: same event-log stream, same
// results, field for field.
type lockstepScenario struct {
	name  string
	power trace.PowerTrace
	store func(*energy.StoreConfig)
	// replay: +1 the crawl replay must engage, -1 it must stay off, 0 either
	// way (the bit-identity check is what matters on every scenario).
	replay int
}

func lockstepScenarios() []lockstepScenario {
	solar := trace.GenerateSolar(trace.DefaultSolarConfig(500, 7))
	return []lockstepScenario{
		{name: "bench-square", replay: 1,
			power: trace.SquareWave{High: 0.05, Low: 0.004, Period: 60, Duty: 0.5}},
		{name: "constant-starved", replay: 1,
			power: trace.Constant{P: 0.003}},
		{name: "constant-rich", replay: -1,
			power: trace.Constant{P: 0.5}},
		// A solar run rarely pins the store at the floor with captures
		// pending (starved phases brown the device out instead, where
		// segments are long); replay engagement is workload-dependent here.
		{name: "solar-sampled", power: solar},
		{name: "scaled-square", replay: 1,
			power: trace.Scaled{Base: trace.SquareWave{High: 0.06, Low: 0.002, Period: 45, Duty: 0.4}, Factor: 0.7}},
		{name: "leaky-store", replay: -1,
			power: trace.SquareWave{High: 0.05, Low: 0.004, Period: 60, Duty: 0.5},
			store: func(sc *energy.StoreConfig) { sc.LeakagePower = 0.0005 }},
	}
}

// lockstepConfig builds the shared test workload (the bench scenario's 20
// events) over the given power trace.
func lockstepConfig(t testing.TB, sc lockstepScenario) Config {
	t.Helper()
	prof := device.Apollo4()
	events := &trace.EventTrace{}
	at := 10.0
	for i := 0; i < 20; i++ {
		events.Events = append(events.Events, trace.Event{Start: at, Duration: 10, Interesting: true})
		at += 20
	}
	app := prof.PersonDetectionApp()
	ctl, err := baseline.NoAdapt(app)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Profile: prof, App: app, Controller: ctl,
		Power: sc.power, Events: events,
		Seed: 42,
	}
	if sc.store != nil {
		store := energy.DefaultConfig()
		sc.store(&store)
		cfg.Store = store
	}
	return cfg
}

// runFingerprint executes one machine under the given stepper with the event
// log hashed, returning the stream digest and the results.
func runFingerprint(t testing.TB, cfg Config, s Stepper) (string, metrics.Results, *Machine) {
	t.Helper()
	h := sha256.New()
	w := bufio.NewWriter(h)
	cfg.EventLog = w
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return hex.EncodeToString(h.Sum(nil)), res, m
}

// TestLockstepBitIdentical pins the lockstep stepper's core contract: for
// every scenario the event-log stream and every results field are
// bit-identical to the event stepper's — the crawl replay may only commit
// steps whose outcomes are provably the ones the normal path would produce.
func TestLockstepBitIdentical(t *testing.T) {
	for _, sc := range lockstepScenarios() {
		t.Run(sc.name, func(t *testing.T) {
			eventHash, eventRes, _ := runFingerprint(t, lockstepConfig(t, sc), EventStepper{})
			lockHash, lockRes, lm := runFingerprint(t, lockstepConfig(t, sc), LockstepStepper{})
			if eventHash != lockHash {
				t.Errorf("event-log stream diverged: event %s vs lockstep %s", eventHash, lockHash)
			}
			// Empty tolerance: every field must match exactly.
			if diffs := metrics.Diff(eventRes, lockRes, metrics.Tolerance{}); len(diffs) > 0 {
				t.Errorf("results diverged:\n%v", diffs)
			}
			if sc.replay > 0 && lm.ReplayedSteps() == 0 {
				t.Errorf("crawl replay never engaged (want fast path active)")
			}
			if sc.replay < 0 && lm.ReplayedSteps() != 0 {
				t.Errorf("crawl replay engaged (%d steps) on a scenario that must take the normal path",
					lm.ReplayedSteps())
			}
		})
	}
}

// TestLockstepReplayDominates asserts the fast path carries the starved
// bench workload — the speedup mechanism, not just its correctness.
func TestLockstepReplayDominates(t *testing.T) {
	sc := lockstepScenarios()[0] // bench-square
	m, err := New(lockstepConfig(t, sc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(context.Background(), LockstepStepper{}); err != nil {
		t.Fatal(err)
	}
	if m.ReplayedSteps() < 100000 {
		t.Fatalf("replayed %d steps, want ≥100000 on the crawl-heavy bench workload", m.ReplayedSteps())
	}
}

// TestLockstepObserverDisablesReplay: observers must see every step, so
// registering one forces the normal path (and results stay identical).
func TestLockstepObserverDisablesReplay(t *testing.T) {
	sc := lockstepScenarios()[0]
	m, err := New(lockstepConfig(t, sc))
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	m.Observe(FuncObserver{Step: func(*Machine, float64) { steps++ }})
	res, err := m.Run(context.Background(), LockstepStepper{})
	if err != nil {
		t.Fatal(err)
	}
	if m.ReplayedSteps() != 0 {
		t.Fatalf("replay committed %d steps with an observer registered", m.ReplayedSteps())
	}
	if steps == 0 {
		t.Fatal("observer saw no steps")
	}
	_, eventRes, _ := runFingerprint(t, lockstepConfig(t, sc), EventStepper{})
	if diffs := metrics.Diff(eventRes, res, metrics.Tolerance{}); len(diffs) > 0 {
		t.Fatalf("observed lockstep run diverged from event run:\n%v", diffs)
	}
}

// TestLockstepBatchMatchesIndividual: a batch run must produce, per config,
// exactly the results of running that config alone — under either stepper.
func TestLockstepBatchMatchesIndividual(t *testing.T) {
	scs := lockstepScenarios()
	cfgs := make([]Config, 0, len(scs)+2)
	for _, sc := range scs {
		cfgs = append(cfgs, lockstepConfig(t, sc))
	}
	// Two extra machines with distinct seeds/stores to vary the mix.
	extra := lockstepConfig(t, scs[0])
	extra.Seed = 1234
	cfgs = append(cfgs, extra)
	extra2 := lockstepConfig(t, scs[3])
	st := energy.DefaultConfig()
	st.Capacitance = 0.02
	extra2.Store = st
	cfgs = append(cfgs, extra2)

	batch, err := NewBatch(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if err := batch.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i, cfg := range cfgs {
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		solo, err := m.Run(context.Background(), EventStepper{})
		if err != nil {
			t.Fatal(err)
		}
		if diffs := metrics.Diff(solo, *batch.Results(i), metrics.Tolerance{}); len(diffs) > 0 {
			t.Errorf("batch machine %d diverged from solo event run:\n%v", i, diffs)
		}
	}
	if batch.Run(context.Background()) == nil {
		t.Fatal("second Run on the same batch must error")
	}
}

// TestLockstepBatchAllocs pins the amortized construction cost of the batch
// path: per config it must stay far below the ~1621 allocs/run the
// single-run path pays (BENCH_engine.json), since batch construction shares
// the machine slab and per-run plumbing.
func TestLockstepBatchAllocs(t *testing.T) {
	const n = 32
	base := lockstepConfig(t, lockstepScenarios()[0])
	prof := base.Profile
	app := base.App
	mkCfgs := func() []Config {
		cfgs := make([]Config, n)
		for i := range cfgs {
			ctl, err := baseline.NoAdapt(app)
			if err != nil {
				t.Fatal(err)
			}
			cfgs[i] = Config{
				Profile: prof, App: app, Controller: ctl,
				Power: base.Power, Events: base.Events,
				Seed: int64(100 + i),
			}
		}
		return cfgs
	}
	avg := testing.AllocsPerRun(3, func() {
		batch, err := NewBatch(mkCfgs())
		if err != nil {
			t.Fatal(err)
		}
		if err := batch.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
	})
	perConfig := avg / n
	// Floor with headroom over the measured ~40/config (store, buffer, rng,
	// controller internals); a regression to per-run construction costs
	// (~1621) must trip this.
	if perConfig > 400 {
		t.Fatalf("batch path allocates %.1f allocs/config (total %.0f), want ≤ 400", perConfig, avg)
	}
}

// TestLockstepCancellation: both the main loop and the replay path must
// notice a canceled context promptly.
func TestLockstepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m, err := New(lockstepConfig(t, lockstepScenarios()[0]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(ctx, LockstepStepper{}); err == nil {
		t.Fatal("want cancellation error, got nil")
	}
	batch, err := NewBatch([]Config{lockstepConfig(t, lockstepScenarios()[0])})
	if err != nil {
		t.Fatal(err)
	}
	if err := batch.Run(ctx); err == nil {
		t.Fatal("want batch cancellation error, got nil")
	}
}

// TestBuildSegmentsKnownShapes spot-checks the decomposition on the shapes
// the fuzz target explores, plus the nil cases.
func TestBuildSegmentsKnownShapes(t *testing.T) {
	segs := BuildSegments(trace.Constant{P: 2}, 10)
	if len(segs) != 1 || segs[0].T0 != 0 || segs[0].T1 != 10 || segs[0].Energy() != 20 {
		t.Fatalf("constant decomposition wrong: %+v", segs)
	}
	sq := trace.SquareWave{High: 1, Low: 0, Period: 2, Duty: 0.5}
	segs = BuildSegments(sq, 5)
	total := 0.0
	for _, s := range segs {
		total += s.Energy()
	}
	// High windows [0,1), [2,3), [4,5): 3 s at 1 W.
	if math.Abs(total-3) > 1e-9 {
		t.Fatalf("square-wave energy %g, want 3 (segments %+v)", total, segs)
	}
	if BuildSegments(powerFunc(func(float64) float64 { return 1 }), 10) != nil {
		t.Fatal("unknown trace type must not decompose")
	}
	if BuildSegments(trace.SquareWave{High: 1, Period: 1e-9, Duty: 0.5}, 1000) != nil {
		t.Fatal("oversized decomposition must be reported nil")
	}
}

// powerFunc adapts a func to trace.PowerTrace for the unknown-type case.
type powerFunc func(float64) float64

func (f powerFunc) Power(t float64) float64 { return f(t) }

// FuzzSegments fuzzes BuildSegments over the known trace shapes and pins the
// two structural properties the batch walls and the closed-form math rely
// on: the segments cover [0, duration) exactly once, and each segment's
// trapezoid Energy() equals a tick-summed integral of the real trace within
// tolerance (which also verifies the trace is linear inside the segment).
func FuzzSegments(f *testing.F) {
	f.Add(uint8(0), uint32(50), uint32(4), uint32(60000), uint8(50), uint16(600), uint8(8), int64(1))
	f.Add(uint8(1), uint32(50), uint32(4), uint32(60000), uint8(50), uint16(4600), uint8(8), int64(2))
	f.Add(uint8(2), uint32(120), uint32(9), uint32(333), uint8(13), uint16(77), uint8(5), int64(3))
	f.Add(uint8(3), uint32(75), uint32(2), uint32(1000), uint8(99), uint16(123), uint8(40), int64(4))
	f.Add(uint8(4), uint32(75), uint32(2), uint32(1000), uint8(1), uint16(999), uint8(3), int64(5))
	f.Fuzz(func(t *testing.T, kind uint8, a, b, periodMs uint32, dutyPct uint8, durDs uint16, nSamp uint8, seed int64) {
		mkPow := func(v uint32) float64 { return float64(v%5000) / 1000.0 }
		duration := 0.1 + float64(durDs%1000)/10.0
		sq := trace.SquareWave{
			High:   mkPow(a),
			Low:    mkPow(b),
			Period: 0.001 + float64(periodMs%120000)/1000.0,
			Duty:   float64(dutyPct%101) / 100.0,
		}
		sampled := func() *trace.Sampled {
			n := int(nSamp%64) + 2
			s := &trace.Sampled{Dt: 0.25 + float64(periodMs%4000)/1000.0, Samples: make([]float64, n)}
			x := uint64(seed)
			for i := range s.Samples {
				x = x*6364136223846793005 + 1442695040888963407
				s.Samples[i] = float64(x%5000) / 1000.0
			}
			return s
		}
		var tr trace.PowerTrace
		switch kind % 5 {
		case 0:
			tr = trace.Constant{P: mkPow(a)}
		case 1:
			tr = sq
		case 2:
			tr = trace.Scaled{Base: sq, Factor: mkPow(b)/2 + 0.1}
		case 3:
			tr = sampled()
		case 4:
			tr = trace.Scaled{Base: sampled(), Factor: mkPow(a)/2 + 0.1}
		}
		segs := BuildSegments(tr, duration)
		if segs == nil {
			t.Fatalf("known shape %T must decompose (duration %g)", tr, duration)
		}
		// Coverage: [0, duration) exactly once, in order, no gaps/overlaps.
		if segs[0].T0 != 0 {
			t.Fatalf("first segment starts at %g, want 0", segs[0].T0)
		}
		if last := segs[len(segs)-1].T1; last != duration {
			t.Fatalf("last segment ends at %g, want %g", last, duration)
		}
		for i, s := range segs {
			if !(s.T1 > s.T0) {
				t.Fatalf("segment %d empty or inverted: %+v", i, s)
			}
			if i > 0 && s.T0 != segs[i-1].T1 {
				t.Fatalf("segment %d starts at %g, previous ended at %g", i, s.T0, segs[i-1].T1)
			}
		}
		// Closed-form energy vs tick-summed energy, per segment. Midpoint
		// ticks of a linear function integrate it exactly in real
		// arithmetic, so the tolerance only absorbs float rounding.
		for i, s := range segs {
			ticks := 64
			h := (s.T1 - s.T0) / float64(ticks)
			sum := 0.0
			for j := 0; j < ticks; j++ {
				sum += tr.Power(s.T0+(float64(j)+0.5)*h) * h
			}
			cf := s.Energy()
			tol := 1e-9*(math.Abs(cf)+math.Abs(sum)) + 1e-12
			if math.Abs(sum-cf) > tol {
				t.Fatalf("segment %d [%g,%g): closed-form energy %g vs tick-summed %g (tol %g)",
					i, s.T0, s.T1, cf, sum, tol)
			}
		}
	})
}

// BenchmarkEngineLockstep is the single-run lockstep figure on the shared
// bench workload (comparable to BenchmarkEngineEvent row for row).
func BenchmarkEngineLockstep(b *testing.B) { benchEngineRun(b, LockstepStepper{}) }

// BenchmarkLockstepBatch is the sweep headline BENCH_lockstep.json records:
// batches of 64 bench-workload configs (distinct seeds) through NewBatch,
// the shape fleet sweeps and oracle corpora actually run.
func BenchmarkLockstepBatch(b *testing.B) {
	const size = 64
	prof := device.Apollo4()
	events := &trace.EventTrace{}
	at := 10.0
	for i := 0; i < 20; i++ {
		events.Events = append(events.Events, trace.Event{Start: at, Duration: 10, Interesting: true})
		at += 20
	}
	power := trace.SquareWave{High: 0.05, Low: 0.004, Period: 60, Duty: 0.5}
	app := prof.PersonDetectionApp()
	b.ReportAllocs()
	simulated := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfgs := make([]Config, size)
		for j := range cfgs {
			ctl, err := baseline.NoAdapt(app)
			if err != nil {
				b.Fatal(err)
			}
			cfgs[j] = Config{
				Profile: prof, App: app, Controller: ctl,
				Power: power, Events: events,
				Seed: int64(j + 1),
			}
		}
		batch, err := NewBatch(cfgs)
		if err != nil {
			b.Fatal(err)
		}
		if err := batch.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
		for j := 0; j < size; j++ {
			simulated += batch.Results(j).SimSeconds
		}
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(simulated/sec, "sim-s/s")
	}
	if b.N > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/simulated, "ns/sim-s")
	}
}
