package engine

import (
	"context"
	"testing"

	"quetzal/internal/baseline"
	"quetzal/internal/device"
	"quetzal/internal/trace"
)

// benchEngineRun measures end-to-end runs of the shared benchmark workload:
// a duty-cycled square-wave harvest over 20 interesting events (460
// simulated seconds), the same scenario (including per-iteration app,
// controller, and machine construction) BENCH_engine.json's pre-refactor
// baseline was recorded with. No observers are registered: this is the bare
// machine + stepper hot path.
func benchEngineRun(b *testing.B, s Stepper) {
	prof := device.Apollo4()
	events := &trace.EventTrace{}
	t := 10.0
	for i := 0; i < 20; i++ {
		events.Events = append(events.Events, trace.Event{Start: t, Duration: 10, Interesting: true})
		t += 20
	}
	power := trace.SquareWave{High: 0.05, Low: 0.004, Period: 60, Duty: 0.5}
	b.ReportAllocs()
	simulated := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		app := prof.PersonDetectionApp()
		ctl, err := baseline.NoAdapt(app)
		if err != nil {
			b.Fatal(err)
		}
		m, err := New(Config{
			Profile: prof, App: app, Controller: ctl,
			Power: power, Events: events,
			Seed: 42,
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := m.Run(context.Background(), s)
		if err != nil {
			b.Fatal(err)
		}
		simulated += res.SimSeconds
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(simulated/sec, "sim-s/s")
	}
	if b.N > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/simulated, "ns/sim-s")
	}
}

func BenchmarkEngineFixed(b *testing.B) { benchEngineRun(b, FixedStepper{}) }
func BenchmarkEngineEvent(b *testing.B) { benchEngineRun(b, EventStepper{}) }
