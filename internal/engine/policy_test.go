package engine

import (
	"strings"
	"testing"

	"quetzal/internal/baseline"
	"quetzal/internal/metrics"
	"quetzal/internal/policy"
)

// policyConfig is lockstepConfig with the controller replaced by a registry
// policy name.
func policyConfig(t testing.TB, sc lockstepScenario, name string) Config {
	t.Helper()
	cfg := lockstepConfig(t, sc)
	cfg.Controller = nil
	cfg.Policy = name
	return cfg
}

// TestConfigPolicySeam pins the Config.Policy resolution rules: exactly one
// of Controller/Policy, unknown names rejected, known names built through
// the registry.
func TestConfigPolicySeam(t *testing.T) {
	sc := lockstepScenarios()[0]

	t.Run("policy builds", func(t *testing.T) {
		m, err := New(policyConfig(t, sc, policy.NoAdapt))
		if err != nil {
			t.Fatalf("New with Policy=na: %v", err)
		}
		if got := m.cfg.Controller.Name(); got == "" {
			t.Fatal("resolved controller has no name")
		}
	})
	t.Run("both rejected", func(t *testing.T) {
		cfg := lockstepConfig(t, sc)
		cfg.Policy = policy.NoAdapt
		if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
			t.Fatalf("err = %v, want 'mutually exclusive'", err)
		}
	})
	t.Run("neither rejected", func(t *testing.T) {
		cfg := lockstepConfig(t, sc)
		cfg.Controller = nil
		if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "Controller or Policy") {
			t.Fatalf("err = %v, want 'Controller or Policy is required'", err)
		}
	})
	t.Run("unknown rejected", func(t *testing.T) {
		if _, err := New(policyConfig(t, sc, "magic")); err == nil || !strings.Contains(err.Error(), "unknown policy") {
			t.Fatalf("err = %v, want 'unknown policy'", err)
		}
	})
	t.Run("ideal buffer capacity", func(t *testing.T) {
		m, err := New(policyConfig(t, sc, policy.Ideal))
		if err != nil {
			t.Fatal(err)
		}
		if got := m.buf.Capacity(); got != policy.IdealBufferCapacity {
			t.Fatalf("buffer capacity = %d, want the ideal policy's %d", got, policy.IdealBufferCapacity)
		}
	})
	t.Run("explicit buffer capacity wins", func(t *testing.T) {
		cfg := policyConfig(t, sc, policy.Ideal)
		cfg.BufferCapacity = 9
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := m.buf.Capacity(); got != 9 {
			t.Fatalf("buffer capacity = %d, want the explicit 9", got)
		}
	})
}

// TestPolicyMatchesController pins that a policy-built run is the same run
// as its hand-built controller: identical event-log fingerprints and
// results, so the registry seam adds no behavior.
func TestPolicyMatchesController(t *testing.T) {
	sc := lockstepScenarios()[0]

	viaName := policyConfig(t, sc, policy.NoAdapt)
	nameHash, nameRes, _ := runFingerprint(t, viaName, EventStepper{})

	viaCtl := lockstepConfig(t, sc)
	ctl, err := baseline.NoAdapt(viaCtl.App)
	if err != nil {
		t.Fatal(err)
	}
	viaCtl.Controller = ctl
	ctlHash, ctlRes, _ := runFingerprint(t, viaCtl, EventStepper{})

	if nameHash != ctlHash {
		t.Errorf("event-log stream diverged: policy %s vs controller %s", nameHash, ctlHash)
	}
	if diffs := metrics.Diff(nameRes, ctlRes, metrics.Tolerance{}); len(diffs) > 0 {
		t.Errorf("results diverged:\n%v", diffs)
	}
}

// TestReplaySensitivePolicyDisablesReplay: a strategy that reads the energy
// store (MDP) must keep the lockstep crawl replay off — the replay does not
// freeze store state — while staying bit-identical to the event stepper.
func TestReplaySensitivePolicyDisablesReplay(t *testing.T) {
	sc := lockstepScenarios()[0] // bench-square: replay engages for insensitive controllers

	// Control: the insensitive baseline replays on this workload.
	base, err := New(lockstepConfig(t, sc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := base.Run(t.Context(), LockstepStepper{}); err != nil {
		t.Fatal(err)
	}
	if base.ReplayedSteps() == 0 {
		t.Fatal("control run never engaged the replay; the scenario no longer exercises the gate")
	}

	for _, name := range []string{policy.MDPName, policy.InterweaveName} {
		t.Run(name, func(t *testing.T) {
			eventHash, eventRes, _ := runFingerprint(t, policyConfig(t, sc, name), EventStepper{})
			lockHash, lockRes, lm := runFingerprint(t, policyConfig(t, sc, name), LockstepStepper{})
			if lm.ReplayedSteps() != 0 {
				t.Errorf("replay committed %d steps for replay-sensitive policy %s", lm.ReplayedSteps(), name)
			}
			if eventHash != lockHash {
				t.Errorf("event-log stream diverged: event %s vs lockstep %s", eventHash, lockHash)
			}
			if diffs := metrics.Diff(eventRes, lockRes, metrics.Tolerance{}); len(diffs) > 0 {
				t.Errorf("results diverged:\n%v", diffs)
			}
		})
	}

	// EnSuRe reads only λ and the quantized pin, both frozen by the crawl
	// classifier, so it keeps the fast path.
	_, _, em := runFingerprint(t, policyConfig(t, sc, policy.EnSuReName), LockstepStepper{})
	if em.ReplayedSteps() == 0 {
		t.Error("ensure (replay-insensitive) never engaged the replay on the crawl-heavy workload")
	}
}
