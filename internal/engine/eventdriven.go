package engine

import "context"

// maxSegment caps event-driven segments so that left-endpoint power
// sampling over the (1 s-gridded, linearly interpolated) trace stays close
// to the fixed-increment integral.
const maxSegment = 0.25

// minSegment guards against zero-length progress.
const minSegment = 1e-6

// EventStepper advances the world in variable-length segments bounded by
// the next discrete event; see the Kind documentation for when to use it.
type EventStepper struct{}

// Kind reports EventDriven.
func (EventStepper) Kind() Kind { return EventDriven }

// Run executes the event-driven main loop: each iteration picks the
// largest event-free segment, applies the same Machine.Step transition
// over it, and accumulates the clock.
func (EventStepper) Run(ctx context.Context, m *Machine) error {
	end := m.cfg.Duration
	for i := 0; m.now < end; i++ {
		if i%ctxCheckStride == 0 && ctx.Err() != nil {
			return m.canceled(ctx)
		}
		m.Hook(i)
		dt := segment(m, end)
		m.Step(dt)
		m.now += dt
		m.EndStep(dt)
	}
	m.now = end
	return nil
}

// segment returns the largest dt that contains no discrete event.
func segment(m *Machine, end float64) float64 {
	dt := maxSegment
	limit := func(v float64) {
		if v < dt {
			dt = v
		}
	}
	limit(end - m.now)

	// Next camera tick: land exactly on it; when the tick fires within
	// this very step, bound the segment by the capture pipeline's own
	// length so the step charges it accurately.
	if m.nextCapture > m.now {
		limit(m.nextCapture - m.now)
	} else {
		limit(m.app.CaptureTexe)
	}
	// Observer horizons (e.g. the next timeline row boundary): land the
	// segment end exactly on them so periodic observers sample on grid.
	for _, o := range m.observers {
		if h := o.Horizon(m.now); h > m.now {
			limit(h - m.now)
		}
	}

	on := m.store.On()
	mcu := m.cfg.Profile.MCU

	switch {
	case m.captures.Len() > 0:
		// Capture pipeline progress at CapturePexe from the priority path.
		limit(m.captures.Front().remaining)
		limit(m.storeDepletion(m.app.CapturePexe))
	case !on:
		// Browned out: nothing but harvest until the store reaches VOn.
		limit(m.storeRestart())
	case m.restoreLeft > 0:
		limit(m.restoreLeft)
		limit(m.storeDepletion(mcu.RestorePower))
	case m.exec != nil:
		e := m.exec
		task := e.job.Tasks[e.taskIdx]
		opt := task.Options[e.options[e.taskIdx]]
		if e.aborted {
			limit(minSegment) // abort handled on the next step
			break
		}
		if task.Atomic && !e.started && m.store.UsableEnergy() < m.atomicEnergyBudget(opt) {
			// Waiting for the reservation: charge until it is met.
			limit(m.storeCharge(m.atomicEnergyBudget(opt) - m.store.UsableEnergy()))
			break
		}
		limit(e.remaining)
		limit(m.storeDepletion(opt.Pexe))
		if m.cfg.Checkpoint == PeriodicCheckpoint && !task.Atomic {
			// Do not skip a checkpoint boundary within one segment.
			progressed := e.ckptAt - e.remaining
			next := m.cfg.CheckpointInterval - progressed
			if next > 0 {
				limit(next)
			} else {
				limit(minSegment)
			}
		}
	case m.buf.Len() > 0:
		// Scheduler invocation: effectively instantaneous.
		limit(minSegment)
	default:
		// Idle until the next capture; the capture bound above covers it.
		limit(m.storeDepletion(mcu.IdlePower))
	}

	if dt < minSegment {
		dt = minSegment
	}
	return dt
}

// harvestRate returns the net power the store gains from the environment at
// the segment start (post-efficiency, pre-leakage).
func (m *Machine) harvestRate() float64 {
	p := m.cfg.Power.Power(m.now) * m.cfg.Store.HarvestEfficiency
	return p - m.cfg.Store.LeakagePower
}

// storeDepletion returns the time until the store would cross the brown-out
// floor while drawing drawPower against the current harvest. It returns a
// large value when the store is charging on net.
func (m *Machine) storeDepletion(drawPower float64) float64 {
	net := m.harvestRate() - drawPower
	if net >= 0 {
		return maxSegment
	}
	usable := m.store.UsableEnergy()
	if usable <= 0 {
		return minSegment
	}
	return usable / -net
}

// storeCharge returns the time to accumulate the given energy at the
// current net harvest rate (large when not charging).
func (m *Machine) storeCharge(energy float64) float64 {
	if energy <= 0 {
		return minSegment
	}
	net := m.harvestRate()
	if net <= 0 {
		return maxSegment
	}
	return energy / net
}

// storeRestart returns the time until a browned-out store reaches the VOn
// restart threshold at the current harvest.
func (m *Machine) storeRestart() float64 {
	cfg := m.cfg.Store
	eOn := 0.5 * cfg.Capacitance * cfg.VOn * cfg.VOn
	deficit := eOn - m.store.Energy()
	return m.storeCharge(deficit)
}
