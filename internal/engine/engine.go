// Package engine is the simulation core the sim facade runs on, split into
// three orthogonal layers so that new scenarios, new time-advance
// strategies, and new instrumentation compose instead of multiplying:
//
//   - Machine is the pure device state machine: energy store draw/charge/
//     restart, brownout and checkpoint policy, the always-on capture
//     pipeline, input-buffer arrivals, and controller invocation. It knows
//     how to advance across one step of any length (Step), but nothing
//     about how step lengths are chosen.
//
//   - Stepper is the pluggable time-advance strategy. FixedStepper is the
//     paper's §6.3 reference (constant 1 ms increments); EventStepper
//     advances in variable piecewise-linear segments bounded by the next
//     discrete event and runs ~50–200× faster with statistically matching
//     results. Both drive the same Machine transition, so the physics
//     cannot diverge between engines by construction.
//
//   - Observer is the instrumentation pipeline: registered observers are
//     invoked from one site after every committed step (EndStep) and once
//     at end of run. Timeline CSV writing and the internal/invariant
//     checker are observers; the hot path pays zero allocations when no
//     observer is registered.
//
// Package sim wraps this package in a compatibility facade (sim.Config,
// sim.Simulator) that keeps the original public API; new code that wants
// to compose its own steppers or observers can use this package directly.
package engine

import "fmt"

// Kind selects the time-advance strategy (the Stepper implementation).
type Kind int

const (
	// FixedIncrement advances in constant StepDt steps — the paper's §6.3
	// simulator and the reference semantics.
	FixedIncrement Kind = iota
	// EventDriven advances in variable-length segments bounded by the next
	// discrete event (capture tick, activity completion, store threshold
	// crossing, observer horizon). Within such a segment the step dynamics
	// are piecewise-linear, so the same Step transition applies exactly;
	// runs are typically 50–200× faster with statistically matching
	// results (validated in internal/simgen's differential oracle). Use it
	// for large sweeps; use FixedIncrement for the paper-faithful
	// reference.
	EventDriven
	// Lockstep is the batch-throughput stepper: it commits the exact same
	// segment sequence as EventDriven (the event stream and results are
	// bit-identical — pinned by golden parity and the three-way differential
	// oracle), but detects fixed-point "crawl" regimes — a store pinned at
	// the brown-out floor with a pending capture, advancing in minSegment
	// steps — and replays them as closed-form runs of constant-addend
	// updates instead of full segment/step dispatch. Batch (NewBatch) runs
	// many machines under it in lockstep rounds over shared power segments.
	// See DESIGN.md §13.
	Lockstep
)

// String names the engine kind. The public name of this type through the
// sim facade is EngineKind, which the unknown-value form preserves.
func (k Kind) String() string {
	switch k {
	case FixedIncrement:
		return "fixed-increment"
	case EventDriven:
		return "event-driven"
	case Lockstep:
		return "lockstep"
	default:
		return fmt.Sprintf("EngineKind(%d)", int(k))
	}
}

// StepperFor returns the stepper implementing the given kind; unknown
// values fall back to the fixed-increment reference, mirroring the
// facade's historical switch.
func StepperFor(k Kind) Stepper {
	switch k {
	case EventDriven:
		return EventStepper{}
	case Lockstep:
		return LockstepStepper{}
	}
	return FixedStepper{}
}

// CheckpointPolicy selects the intermittent-computing progress model.
type CheckpointPolicy int

const (
	// JITCheckpoint saves state just in time before the power failure:
	// progress is fully preserved, and only the restore cost is paid on
	// resume (the paper's simulator, citing [8, 9, 47, 61, 64]).
	JITCheckpoint CheckpointPolicy = iota
	// NoCheckpoint loses the current task's progress on every power
	// failure: the task restarts from scratch after the restore.
	NoCheckpoint
	// PeriodicCheckpoint saves progress every CheckpointInterval seconds
	// of execution, paying the restore-equivalent cost per checkpoint; a
	// power failure rolls back to the last checkpoint.
	PeriodicCheckpoint
)

// String names the policy.
func (p CheckpointPolicy) String() string {
	switch p {
	case JITCheckpoint:
		return "jit"
	case NoCheckpoint:
		return "none"
	case PeriodicCheckpoint:
		return "periodic"
	default:
		return fmt.Sprintf("CheckpointPolicy(%d)", int(p))
	}
}
