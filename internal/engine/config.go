package engine

import (
	"fmt"
	"io"

	"quetzal/internal/device"
	"quetzal/internal/energy"
	"quetzal/internal/faults"
	"quetzal/internal/model"
	"quetzal/internal/policy"
	"quetzal/internal/trace"

	"quetzal/internal/core"
)

// Config describes one device-machine run. It carries only what the state
// machine needs: time-advance strategy and instrumentation are chosen
// separately (Stepper, Observer) by the caller — see sim.Config for the
// all-in-one facade.
type Config struct {
	Profile device.Profile
	App     *model.App // nil → Profile.PersonDetectionApp()
	// Controller is the decision-making brain. Alternatively set Policy to a
	// registered policy name (internal/policy) and normalize builds the
	// controller — exactly one of the two must be provided.
	Controller core.Controller
	Policy     string

	Power  trace.PowerTrace
	Events *trace.EventTrace

	Store energy.StoreConfig // zero → energy.DefaultConfig()

	CapturePeriod  float64 // seconds between captures; default 1 (1 FPS)
	StepDt         float64 // fixed-increment step; default 0.001 (1 ms)
	Duration       float64 // simulated seconds; 0 → events end + DrainTime
	DrainTime      float64 // extra time after the last event; default 60 s
	BufferCapacity int     // 0 → Profile.BufferCapacity

	Seed int64 // classifier coin flips

	// Checkpoint selects how execution progress survives power failures;
	// the default is the paper's JIT checkpointing (§6.3). Atomic tasks
	// always restart regardless of policy.
	Checkpoint CheckpointPolicy
	// CheckpointInterval is the progress between periodic checkpoints in
	// seconds (PeriodicCheckpoint only; default 1 s).
	CheckpointInterval float64

	// TexeJitterOverride, when positive, applies the given fractional
	// latency jitter to every task option (the §8 variable-execution-cost
	// extension) regardless of the options' own TexeJitter.
	TexeJitterOverride float64

	// EventLog, when non-nil, receives one line per discrete simulation
	// event (capture, arrival, IBO drop, scheduling decision, classify
	// verdict, transmission, job completion/abort, power transitions).
	// The golden-trace regression layer hashes this stream to fingerprint
	// a run's full behavior; it is also readable for debugging. The log is
	// part of the machine, not an observer, because its lines are emitted
	// at the discrete events themselves, interleaved within a step.
	EventLog io.Writer

	Environment string // label copied into the results

	// Faults declares the hardware-realism scenario (internal/faults):
	// transient task faults, harvester dropout windows, ADC stuck bits,
	// per-sample measurement cost and junction temperature. The zero value
	// is ideal hardware and costs nothing in the hot path.
	Faults faults.Spec
	// FaultSeed seeds the fault draws. 0 derives it from Seed
	// (faults.DeriveSeed); fleets pass a shard-independent split seed
	// instead so re-sharding replays identical faults.
	FaultSeed int64
}

// normalize validates the configuration and fills in defaults, in place.
func (cfg *Config) normalize() error {
	if cfg.Controller != nil && cfg.Policy != "" {
		return fmt.Errorf("engine: Controller and Policy are mutually exclusive (got both)")
	}
	if cfg.Power == nil {
		return fmt.Errorf("engine: Power trace is required")
	}
	if cfg.Events == nil {
		return fmt.Errorf("engine: Events trace is required")
	}
	if err := cfg.Events.Validate(); err != nil {
		return err
	}
	if cfg.App == nil {
		cfg.App = cfg.Profile.PersonDetectionApp()
	}
	if err := cfg.App.Validate(); err != nil {
		return err
	}
	if cfg.Store == (energy.StoreConfig{}) {
		cfg.Store = energy.DefaultConfig()
	}
	if cfg.CapturePeriod == 0 {
		cfg.CapturePeriod = 1
	}
	if cfg.CapturePeriod < 0 {
		return fmt.Errorf("engine: capture period must be positive, got %g", cfg.CapturePeriod)
	}
	if cfg.Controller == nil && cfg.Policy != "" {
		ctl, bufCap, err := policy.Build(cfg.Policy, policy.Context{
			App:           cfg.App,
			Power:         cfg.Power,
			Events:        cfg.Events,
			CapturePeriod: cfg.CapturePeriod,
		})
		if err != nil {
			return err
		}
		cfg.Controller = ctl
		if cfg.BufferCapacity == 0 && bufCap != 0 {
			cfg.BufferCapacity = bufCap
		}
	}
	if cfg.Controller == nil {
		return fmt.Errorf("engine: Controller or Policy is required")
	}
	if cfg.StepDt == 0 {
		cfg.StepDt = 0.001
	}
	if cfg.StepDt < 0 {
		return fmt.Errorf("engine: step must be positive, got %g", cfg.StepDt)
	}
	if cfg.DrainTime == 0 {
		cfg.DrainTime = 60
	}
	if cfg.Duration == 0 {
		cfg.Duration = cfg.Events.Duration() + cfg.DrainTime
	}
	if cfg.Duration <= 0 {
		return fmt.Errorf("engine: nothing to simulate (duration %g)", cfg.Duration)
	}
	if cfg.BufferCapacity == 0 {
		cfg.BufferCapacity = cfg.Profile.BufferCapacity
	}
	if cfg.CheckpointInterval == 0 {
		cfg.CheckpointInterval = 1
	}
	if cfg.CheckpointInterval < 0 {
		return fmt.Errorf("engine: checkpoint interval must be positive, got %g", cfg.CheckpointInterval)
	}
	if cfg.TexeJitterOverride < 0 || cfg.TexeJitterOverride > 1 {
		return fmt.Errorf("engine: jitter override must be in [0,1], got %g", cfg.TexeJitterOverride)
	}
	if cfg.BufferCapacity <= 0 {
		return fmt.Errorf("engine: buffer capacity must be positive, got %d", cfg.BufferCapacity)
	}
	if err := cfg.Faults.Validate(); err != nil {
		return err
	}
	if cfg.Faults.DropoutDurS > 0 {
		// Layer the dropout mask here, once, so every stepper — including
		// lockstep's constant-window analysis — samples the same trace
		// object. Idempotent across re-normalisation: never re-wrap.
		if _, ok := cfg.Power.(faults.Dropout); !ok {
			cfg.Power = faults.Dropout{
				Base:   cfg.Power,
				Start:  float64(cfg.Faults.DropoutStartS),
				Dur:    float64(cfg.Faults.DropoutDurS),
				Period: float64(cfg.Faults.DropoutPeriodS),
			}
		}
	}
	if cfg.FaultSeed == 0 && cfg.Faults.Enabled() {
		cfg.FaultSeed = faults.DeriveSeed(cfg.Seed)
	}
	return nil
}
