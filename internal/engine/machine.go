package engine

import (
	"context"
	"fmt"
	"math/rand"

	"quetzal/internal/buffer"
	"quetzal/internal/core"
	"quetzal/internal/energy"
	"quetzal/internal/faults"
	"quetzal/internal/invariant"
	"quetzal/internal/metrics"
	"quetzal/internal/model"
)

// Machine is the pure device state machine: the simulated sensor node (energy
// store, capture pipeline, input buffer, task execution with checkpointing)
// advanced across steps of arbitrary length by a Stepper. Construct with New,
// register instrumentation with Observe, execute with Run.
//
// The simulated device runs in parallel to the simulated environment: a
// camera captures frames at a fixed rate regardless of energy or activity;
// frames that coincide with a sensing event pass the pixel-difference
// pre-filter and arrive at the input buffer; the controller under test
// (Quetzal or a baseline) picks buffered inputs to process and the quality
// to process them at. Before each selected job runs, the controller's
// scheduling/degradation logic is charged its own time and energy overhead
// (§6.3: "we evaluated any scheduling policy and degradation-logic
// pertaining to the simulated system, incurring its overheads").
type Machine struct {
	cfg   Config
	app   *model.App
	ctl   core.Controller
	store *energy.Store
	buf   *buffer.Buffer
	rng   *rand.Rand
	res   metrics.Results

	// Per-invocation controller overhead.
	ovhTime, ovhPower float64

	// flt is the hardware-realism state (nil when cfg.Faults is the zero
	// Spec — the disabled path costs exactly two nil checks per step at
	// most, pinned by the zero-cost fingerprint/alloc tests).
	flt *faultState

	// Live execution state.
	now         float64
	nextCapture float64
	nextSeq     uint64
	captures    captureRing // capture pipeline work in flight
	exec        *jobExec    // job currently executing, nil if idle
	execState   jobExec     // backing storage for exec, reused across jobs
	restoreLeft float64     // restore time still owed after a brownout
	wasOn       bool

	observers []Observer
	verified  bool // an InvariantObserver subsumes the end-of-run Check

	// replaySteps counts steps committed by the lockstep crawl replay
	// (lockstep.go) instead of the full segment/step path; tests assert the
	// fast path actually engages on crawl-heavy workloads.
	replaySteps int
	// replaySensitive disables the crawl replay: the controller declared
	// (via core.ReplaySensitive) that its decisions read state the replay's
	// crawl-regime classifier does not freeze.
	replaySensitive bool

	// StepHook, when set (tests only), runs before every step/segment;
	// mutation tests use it to inject accounting bugs mid-run and prove
	// the invariant checker catches them.
	StepHook func(step int)
	// DebugHook, when set (tests only), runs after each controller
	// decision.
	DebugHook func(now float64, dec core.Decision, lambda, correction float64)
}

// pendingCapture is a frame whose capture pipeline (readout+diff+JPEG) is
// still running; the store/discard decision lands when it finishes.
type pendingCapture struct {
	remaining   float64
	different   bool // an event was active: frame passes the pre-filter
	interesting bool
	capturedAt  float64
}

// maxPendingCaptures bounds the capture pipeline's backlog: frames arriving
// while it is full are lost (a starved pipeline cannot keep sensing).
const maxPendingCaptures = 4

// captureRing is a fixed-capacity FIFO for in-flight captures. The bound is
// part of the device model (see maxPendingCaptures), so the ring replaces
// the old append/reslice queue and keeps the hot path allocation-free.
type captureRing struct {
	buf     [maxPendingCaptures]pendingCapture
	head, n int
}

func (r *captureRing) Len() int               { return r.n }
func (r *captureRing) Full() bool             { return r.n == maxPendingCaptures }
func (r *captureRing) Front() *pendingCapture { return &r.buf[r.head] }

func (r *captureRing) Push(c pendingCapture) {
	r.buf[(r.head+r.n)%maxPendingCaptures] = c
	r.n++
}

func (r *captureRing) PopFront() pendingCapture {
	c := r.buf[r.head]
	r.head = (r.head + 1) % maxPendingCaptures
	r.n--
	return c
}

// jobExec is one job execution in progress. The machine keeps a single
// backing instance and reuses its slices, so starting a job allocates
// nothing once the slices have grown to the app's largest task count.
type jobExec struct {
	input      buffer.Input
	job        *model.Job
	options    []int
	taskIdx    int
	remaining  float64 // remaining latency of the current task
	fullTexe   float64 // this execution's sampled latency for the current task
	ckptAt     float64 // remaining-value at the last periodic checkpoint
	started    bool    // the current task has drawn its first energy
	executed   []bool
	positive   bool // classify-chain state; true until a classifier says no
	startedAt  float64
	predictedS float64
	modelS     float64
	degraded   bool
	restarts   int     // progress-losing restarts of the current task
	ckptFail   float64 // ckptAt at the previous power failure (-1: none yet)
	aborted    bool
	faults     int // transient faults this job absorbed (→ Feedback.Faults)
}

// faultState is the live hardware-realism state derived from Config.Faults.
// Everything it draws is a pure function of (spec, seed, completion index,
// time) so every stepper — and every shard layout of the same fleet —
// replays the identical fault sequence.
type faultState struct {
	spec         faults.Spec
	seed         int64
	left         int    // injectable task faults remaining; -1 = unlimited
	idx          uint64 // monotone task-completion counter (fault draw index)
	measJ, measT float64
	corrupt      bool // spec has stuck ADC bits
	tempCtl      core.TemperatureAware
	lastTemp     float64
}

// New validates the configuration and builds a Machine.
func New(cfg Config) (*Machine, error) {
	m := new(Machine)
	if err := initMachine(m, cfg); err != nil {
		return nil, err
	}
	return m, nil
}

// initMachine initialises a Machine in place — the construction seam NewBatch
// uses to build a slab of machines with one allocation for the structs.
func initMachine(m *Machine, cfg Config) error {
	if err := cfg.normalize(); err != nil {
		return err
	}
	*m = Machine{
		cfg:   cfg,
		app:   cfg.App,
		ctl:   cfg.Controller,
		store: energy.NewStore(cfg.Store),
		buf:   buffer.New(cfg.BufferCapacity),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		wasOn: true,
	}
	m.res.System = cfg.Controller.Name()
	m.res.Environment = cfg.Environment
	if rs, ok := cfg.Controller.(core.ReplaySensitive); ok {
		m.replaySensitive = rs.ReplaySensitive()
	}
	if cfg.Faults.Enabled() {
		f := &faultState{spec: cfg.Faults, seed: cfg.FaultSeed}
		switch {
		case cfg.Faults.TaskFaultPct == 0:
			f.left = 0
		case cfg.Faults.TaskFaultLimit > 0:
			f.left = cfg.Faults.TaskFaultLimit
		default:
			f.left = -1
		}
		f.measJ, f.measT = cfg.Faults.MeasCost()
		f.corrupt = cfg.Faults.StuckHigh != 0 || cfg.Faults.StuckLow != 0
		if tc, ok := cfg.Controller.(core.TemperatureAware); ok && cfg.Faults.TempC != 0 {
			// Propagate the scenario temperature before any decision. The
			// controller keeps its 25 °C profiling codes (core.Runtime
			// documents why), so the excursion skews the code difference
			// exactly as it would on hardware.
			f.tempCtl = tc
			f.lastTemp = cfg.Faults.TemperatureAt(0)
			tc.SetTemperature(f.lastTemp)
		}
		m.flt = f
	}

	ops, usesModule := cfg.Controller.RatioOps()
	if ops > 0 {
		t, e := cfg.Profile.MCU.InvocationOverhead(ops, usesModule)
		m.ovhTime = t
		if t > 0 {
			m.ovhPower = e / t
		}
	}
	return nil
}

// Observe appends observers to the pipeline. Register before Run; the
// registration order is the per-step invocation order.
func (m *Machine) Observe(obs ...Observer) {
	for _, o := range obs {
		if _, ok := o.(InvariantObserver); ok {
			m.verified = true
		}
		m.observers = append(m.observers, o)
	}
}

// Run executes the machine under the given stepper (nil → fixed-increment)
// until cfg.Duration, then finalises: store statistics are copied into the
// results and every observer's OnFinish runs. When no InvariantObserver is
// registered, the results' own accounting identities are still verified.
func (m *Machine) Run(ctx context.Context, s Stepper) (metrics.Results, error) {
	err := m.RunInto(ctx, s, nil)
	return m.res, err
}

// RunInto is the results-sink form of Run: instead of returning the ~90-field
// Results by value, it executes the run and, on success, hands the sink a
// pointer into the machine's own results. Fleet-scale callers reduce through
// the pointer (e.g. metrics.Summarize) and let the machine go, so nothing the
// size of Results outlives the device. The pointer is only valid inside the
// callback; sink may be nil.
func (m *Machine) RunInto(ctx context.Context, s Stepper, sink func(*metrics.Results)) error {
	if s == nil {
		s = FixedStepper{}
	}
	if err := s.Run(ctx, m); err != nil {
		return err
	}
	m.finish()
	for _, o := range m.observers {
		if err := o.OnFinish(m); err != nil {
			return err
		}
	}
	if !m.verified {
		if err := m.res.Check(); err != nil {
			return fmt.Errorf("engine: inconsistent accounting: %w", err)
		}
	}
	if sink != nil {
		sink(&m.res)
	}
	return nil
}

// Duration returns the configured simulated run length in seconds.
func (m *Machine) Duration() float64 { return m.cfg.Duration }

// Now returns the current simulated time. Within a step this is the step's
// start; steppers commit the advance.
func (m *Machine) Now() float64 { return m.now }

// InputPower returns the harvestable input power at the current instant.
func (m *Machine) InputPower() float64 { return m.cfg.Power.Power(m.now) }

// Results returns the accumulated results so far (useful mid-run).
func (m *Machine) Results() metrics.Results { return m.res }

// Buffer exposes the input buffer for observers and tests.
func (m *Machine) Buffer() *buffer.Buffer { return m.buf }

// Store exposes the energy store for observers and tests.
func (m *Machine) Store() *energy.Store { return m.store }

// PendingCaptures counts frames still inside the capture pipeline.
func (m *Machine) PendingCaptures() int { return m.captures.Len() }

// ReplayedSteps counts steps the lockstep crawl replay committed without
// full segment/step dispatch (0 under the other steppers or when the fast
// path never engaged).
func (m *Machine) ReplayedSteps() int { return m.replaySteps }

// Phase names the machine's current activity, in the device's priority
// order: "off", "capture", "restore", "exec:<job>", or "idle".
func (m *Machine) Phase() string {
	switch {
	case !m.store.On():
		return "off"
	case m.captures.Len() > 0:
		return "capture"
	case m.restoreLeft > 0:
		return "restore"
	case m.exec != nil:
		return "exec:" + m.exec.job.Name
	default:
		return "idle"
	}
}

// Snapshot captures the live state the invariant checker observes.
func (m *Machine) Snapshot() invariant.StepState {
	st := m.store.Stats()
	return invariant.StepState{
		Now: m.now,
		Store: invariant.StoreState{
			Energy:    m.store.Energy(),
			Capacity:  m.store.Capacity(),
			Harvested: st.HarvestedJ,
			Consumed:  st.ConsumedJ,
			Leaked:    st.LeakedJ,
		},
		BufferLen: m.buf.Len(),
		BufferCap: m.buf.Capacity(),
	}
}

// EndStep commits one step to the observer pipeline. Steppers call it
// exactly once per committed step, after the clock bookkeeping; it is the
// single site observers are invoked from.
func (m *Machine) EndStep(dt float64) {
	for _, o := range m.observers {
		o.OnStep(m, dt)
	}
}

// Hook runs the test-only StepHook, when set. Steppers call it before every
// step/segment with the step index.
func (m *Machine) Hook(step int) {
	if m.StepHook != nil {
		m.StepHook(step)
	}
}

// logging reports whether an event log is configured. Hot call sites guard
// logf calls with it: the variadic args are boxed at the call site, so an
// unguarded logf heap-allocates even when no log is attached (that boxing
// was the entire 1.6k-allocs/run cost of the pre-guard hot path).
func (m *Machine) logging() bool { return m.cfg.EventLog != nil }

// logf appends one line to the event log, when configured. The stream is
// the behavioral fingerprint the golden-trace layer hashes, so call sites
// must emit deterministically (no map iteration, no wall-clock).
func (m *Machine) logf(format string, args ...any) {
	if m.cfg.EventLog == nil {
		return
	}
	fmt.Fprintf(m.cfg.EventLog, format, args...)
}

// canceled wraps the context's error with the simulated time reached.
func (m *Machine) canceled(ctx context.Context) error {
	return fmt.Errorf("engine: run canceled at t=%.3fs: %w", m.now, context.Cause(ctx))
}

// Step advances the world by dt from the current instant. The transition is
// exact for any dt over which the dynamics are piecewise-linear: the fixed
// stepper uses a constant 1 ms, the event stepper the longest event-free
// segment. Step does not advance the clock — the stepper owns that
// bookkeeping (the two disciplines stamp time differently).
func (m *Machine) Step(dt float64) {
	// Environment: harvest into the store (this may restart the device).
	m.store.Harvest(m.cfg.Power.Power(m.now), dt)

	on := m.store.On()
	if m.wasOn && !on {
		// Power failed: apply the checkpoint policy to in-flight work.
		if m.logging() {
			m.logf("%.6f brownout\n", m.now)
		}
		m.onPowerFailure()
	}
	if !m.wasOn && on {
		// Power came back: owe the checkpoint restore before any work.
		if m.logging() {
			m.logf("%.6f poweron\n", m.now)
		}
		m.restoreLeft = m.cfg.Profile.MCU.RestoreTime
	}
	m.wasOn = on

	// Little's-Law instrumentation: time-integral of queue occupancy. This
	// is results accounting — part of the machine's own bookkeeping, not an
	// observer — because every consumer of Results depends on it.
	m.res.OccupancyIntegral += float64(m.buf.Len()) * dt

	// Camera: captures fire at a fixed rate no matter what.
	for m.now >= m.nextCapture {
		m.capture()
		m.nextCapture += m.cfg.CapturePeriod
	}

	// The capture pipeline is an always-on priority subsystem: it keeps
	// sensing while the compute domain is browned out (that independence
	// is exactly why the buffer can overflow at low power). It preempts
	// job processing while active.
	if m.captures.Len() > 0 {
		c := m.captures.Front()
		// Draw only for the time the pipeline can actually use: with
		// variable-length steps (the event-driven engine) dt may exceed
		// the remaining capture work.
		use := dt
		if c.remaining < use {
			use = c.remaining
		}
		frac := m.store.DrawPriority(m.app.CapturePexe, use)
		c.remaining -= use * frac
		if c.remaining <= 1e-12 {
			done := m.captures.PopFront()
			// The pipeline completes use seconds into this step, not at its
			// start; stamp the arrival there so both engines agree on when
			// the input joins the buffer (the event engine's segments make
			// the left endpoint up to CaptureTexe early otherwise).
			prev := m.now
			m.now = prev + use
			m.finishCapture(done)
			m.now = prev
		}
		return
	}

	if !on {
		return // compute browned out
	}

	switch {
	case m.restoreLeft > 0:
		frac := m.store.Draw(m.cfg.Profile.MCU.RestorePower, dt)
		m.restoreLeft -= dt * frac
	case m.exec != nil:
		m.runTask(dt)
	case m.buf.Len() > 0:
		m.invokeController(dt)
	default:
		m.store.Draw(m.cfg.Profile.MCU.IdlePower, dt)
	}
}

// capture registers one camera frame at the current instant.
func (m *Machine) capture() {
	m.res.Captures++
	ev, active := m.cfg.Events.ActiveAt(m.now)
	different := active
	interesting := active && ev.Interesting

	// The camera runs from the priority path, so a frame is lost only when
	// the store is fully drained to the floor (no energy for even the
	// readout) or the pipeline has a starved backlog.
	if (m.store.UsableEnergy() <= 0 && !m.store.On()) || m.captures.Full() {
		m.res.CaptureMisses++
		if interesting {
			m.res.MissedInteresting++
		}
		if m.logging() {
			m.logf("%.6f capture-miss interesting=%v\n", m.now, interesting)
		}
		return
	}
	if m.logging() {
		m.logf("%.6f capture different=%v interesting=%v\n", m.now, different, interesting)
	}
	m.captures.Push(pendingCapture{
		remaining:   m.app.CaptureTexe,
		different:   different,
		interesting: interesting,
		capturedAt:  m.now,
	})
}

// finishCapture applies the pre-filter result once the pipeline completes.
func (m *Machine) finishCapture(c pendingCapture) {
	m.ctl.ObserveCapture(c.different)
	if !c.different {
		return // unchanged frame, cheaply discarded
	}
	m.res.Arrivals++
	if c.interesting {
		m.res.InterestingArrivals++
	}
	in := buffer.Input{
		Seq:         m.nextSeq,
		CapturedAt:  c.capturedAt,
		Interesting: c.interesting,
		JobID:       m.app.EntryJobID,
		EnqueuedAt:  m.now,
	}
	m.nextSeq++
	if !m.buf.Push(in, false) {
		// Input buffer overflow: the event the paper fights.
		if c.interesting {
			m.res.IBODropsInteresting++
		} else {
			m.res.IBODropsOther++
		}
		if m.logging() {
			m.logf("%.6f ibodrop seq=%d interesting=%v\n", m.now, in.Seq, c.interesting)
		}
		return
	}
	if m.logging() {
		m.logf("%.6f arrive seq=%d interesting=%v occ=%d\n", m.now, in.Seq, c.interesting, m.buf.Len())
	}
}

// invokeController runs the scheduling + degradation logic, charging its
// overhead, and starts the selected job.
func (m *Machine) invokeController(dt float64) {
	m.res.SchedInvocations++
	if m.ovhTime > 0 {
		// The overhead of one invocation is far below one step; charge it
		// as a lump of time and energy.
		m.res.OverheadSeconds += m.ovhTime
		m.res.OverheadJoules += m.ovhTime * m.ovhPower
		m.store.Draw(m.ovhPower, m.ovhTime)
		if !m.store.On() {
			return
		}
	}
	if f := m.flt; f != nil {
		if f.measJ > 0 || f.measT > 0 {
			// Measurement is not free (Ashraf et al.): charge the ADC
			// sample(s) this invocation performs — one for input power,
			// plus one for the store level when the policy reads it
			// (store-reading policies are exactly the ReplaySensitive
			// ones). Like the overhead lump, MeasJoules records the
			// INTENDED energy regardless of what the store could supply,
			// which makes MeasJoules == MeasSamples × per-sample J an
			// exact end-of-run identity the invariant checker holds.
			reads := 1
			if m.replaySensitive {
				reads = 2
			}
			t := f.measT * float64(reads)
			j := f.measJ * float64(reads)
			m.res.MeasSamples += reads
			m.res.MeasSeconds += t
			m.res.MeasJoules += j
			if j > 0 {
				effT := t
				if effT <= 0 {
					effT = 1e-9 // zero-latency spec: draw as a spike
				}
				m.store.Draw(j/effT, effT)
				if !m.store.On() {
					return
				}
			}
		}
		if f.tempCtl != nil {
			if temp := f.spec.TemperatureAt(m.now); temp != f.lastTemp {
				f.tempCtl.SetTemperature(temp)
				f.lastTemp = temp
			}
		}
	}
	env := core.Env{
		Now:           m.now,
		InputPower:    m.cfg.Power.Power(m.now),
		BufferLen:     m.buf.Len(),
		BufferCap:     m.buf.Capacity(),
		StoreEnergy:   m.store.UsableEnergy(),
		StoreCapacity: m.store.Capacity() - m.store.Floor(),
	}
	if f := m.flt; f != nil && f.corrupt {
		// Stuck ADC bits corrupt only the MEASURED store level the
		// controller sees, never the physical store. Quetzal deliberately
		// ignores StoreEnergy (§4), so only store-reading policies feel it.
		env.StoreEnergy = f.spec.CorruptStore(env.StoreEnergy, env.StoreCapacity)
	}
	dec, ok := m.ctl.NextJob(env, m.buf)
	if !ok {
		m.store.Draw(m.cfg.Profile.MCU.IdlePower, dt)
		return
	}
	// The input stays in its buffer slot while the job runs — the image
	// still occupies device memory. It leaves (or is re-tagged in place)
	// only when the job completes.
	in, err := m.buf.At(dec.BufferIndex)
	if err != nil {
		// The controller returned a stale index; drop the decision.
		return
	}
	job := m.app.JobByID(dec.JobID)
	if job == nil {
		return
	}
	if m.DebugHook != nil {
		lam, corr := 0.0, 0.0
		if rt, ok := m.ctl.(*core.Runtime); ok {
			lam, corr = rt.Lambda(), rt.Correction()
		}
		m.DebugHook(m.now, dec, lam, corr)
	}
	if dec.IBOPredicted {
		m.res.IBOPredictions++
		if dec.IBOAverted {
			m.res.IBOsAverted++
		}
	}
	e := &m.execState
	e.input = in
	e.job = job
	// The decision's option vector is copied (never aliased) into the
	// reused slice, then clamped to each task's valid range.
	if cap(e.options) < len(job.Tasks) {
		e.options = make([]int, len(job.Tasks))
		e.executed = make([]bool, len(job.Tasks))
	}
	e.options = e.options[:len(job.Tasks)]
	e.executed = e.executed[:len(job.Tasks)]
	for i := range e.options {
		e.options[i] = 0
		e.executed[i] = false
	}
	if len(dec.Options) == len(job.Tasks) {
		copy(e.options, dec.Options)
	}
	for i := range e.options {
		if e.options[i] < 0 || e.options[i] >= len(job.Tasks[i].Options) {
			e.options[i] = 0
		}
	}
	if rt, ok := m.ctl.(*core.Runtime); ok && m.logging() {
		m.logf("%.6f pid lambda=%.6f corr=%.6f\n", m.now, rt.Lambda(), rt.Correction())
	}
	if m.logging() {
		m.logf("%.6f sched seq=%d job=%d opts=%v degraded=%v ibo=%v\n",
			m.now, in.Seq, dec.JobID, e.options, dec.Degraded, dec.IBOPredicted)
	}
	e.taskIdx = 0
	e.positive = true
	e.startedAt = m.now
	e.predictedS = dec.PredictedS
	e.modelS = dec.ModelS
	e.degraded = dec.Degraded
	e.aborted = false
	e.faults = 0
	m.exec = e
	m.startTask()
}

// startTask samples the current task's execution latency (the §8
// variable-cost extension) and initialises its progress state.
func (m *Machine) startTask() {
	e := m.exec
	opt := e.job.Tasks[e.taskIdx].Options[e.options[e.taskIdx]]
	texe := opt.Texe
	jitter := opt.TexeJitter
	if m.cfg.TexeJitterOverride > 0 {
		jitter = m.cfg.TexeJitterOverride
	}
	if jitter > 0 {
		f := 1 + jitter*m.rng.NormFloat64()
		if f < 0.1 {
			f = 0.1
		}
		if f > 3 {
			f = 3
		}
		texe *= f
	}
	e.fullTexe = texe
	e.remaining = texe
	e.ckptAt = texe
	e.started = false
	e.restarts = 0
	e.ckptFail = -1
}

// atomicEnergyBudget returns the banked energy an atomic task must see
// before it starts: its full energy cost, capped below the store's usable
// capacity so an oversized task cannot livelock the device.
func (m *Machine) atomicEnergyBudget(opt model.Option) float64 {
	need := opt.Eexe()
	if limit := 0.9 * m.store.UsableCapacity(); need > limit {
		need = limit
	}
	return need
}

// onPowerFailure applies the checkpoint policy when the store browns out
// mid-execution.
func (m *Machine) onPowerFailure() {
	e := m.exec
	if e == nil || !e.started || e.remaining <= 0 {
		return
	}
	task := e.job.Tasks[e.taskIdx]
	rolled := true
	switch {
	case task.Atomic:
		// Partial transmissions and other atomic work are lost entirely.
		e.remaining = e.fullTexe
		e.started = false
		e.restarts++
		m.res.AtomicRestarts++
	case m.cfg.Checkpoint == NoCheckpoint:
		e.remaining = e.fullTexe
		e.started = false
		e.restarts++
	case m.cfg.Checkpoint == PeriodicCheckpoint:
		// Roll back to the last periodic checkpoint. A failure that lands on
		// the same checkpoint as the previous one banked no net progress —
		// repeated, that is the same livelock as a full restart (the on-window
		// is too short to ever reach the next checkpoint), so it must feed
		// the watchdog too.
		e.remaining = e.ckptAt
		if e.ckptAt == e.fullTexe || e.ckptAt == e.ckptFail {
			e.restarts++
		}
		e.ckptFail = e.ckptAt
	default:
		// JIT checkpointing: progress preserved exactly.
		rolled = false
	}
	if rolled && m.logging() {
		m.logf("%.6f rollback job=%d task=%d left=%.6f restarts=%d\n",
			m.now, e.job.ID, e.taskIdx, e.remaining, e.restarts)
	}
	// Watchdog: a task restarting indefinitely (its energy cost exceeds
	// what the store can ever bank) would deadlock the device; abandon the
	// job after a bounded number of progress-losing restarts.
	const maxRestarts = 10
	if e.restarts > maxRestarts {
		e.aborted = true
	}
}

// runTask advances the current task by dt, handling completion and task
// semantics.
func (m *Machine) runTask(dt float64) {
	e := m.exec
	if e.aborted {
		m.abortJob()
		return
	}
	task := e.job.Tasks[e.taskIdx]
	opt := task.Options[e.options[e.taskIdx]]

	// Atomic tasks wait until the store has banked their full energy cost:
	// starting a radio packet that cannot finish within this charge would
	// waste the partial transmission (§8 atomicity contract).
	if task.Atomic && !e.started && m.store.UsableEnergy() < m.atomicEnergyBudget(opt) {
		m.store.Draw(m.cfg.Profile.MCU.IdlePower, dt)
		return
	}

	e.started = true
	frac := m.store.Draw(opt.Pexe, dt)
	e.remaining -= dt * frac

	// Periodic checkpointing: snapshot progress every CheckpointInterval
	// of execution, paying the save cost (symmetric to restore).
	if m.cfg.Checkpoint == PeriodicCheckpoint && !task.Atomic &&
		e.ckptAt-e.remaining >= m.cfg.CheckpointInterval {
		e.ckptAt = e.remaining
		m.store.Draw(m.cfg.Profile.MCU.RestorePower, m.cfg.Profile.MCU.RestoreTime)
		if m.logging() {
			m.logf("%.6f ckpt job=%d task=%d left=%.6f\n", m.now, e.job.ID, e.taskIdx, e.remaining)
		}
	}

	if e.remaining > 0 {
		return
	}
	// Transient fault injection: the fault is DETECTED at completion
	// (EnSuRe's detection model), before any credit is recorded — no
	// executed mark, no option usage, no classifier coin, no packet — so a
	// re-executed task can never double-count quality or deadline credit.
	// The draw indexes a monotone completion counter, not the rng stream,
	// so fault-free completions consume identical randomness whether or
	// not injection is configured.
	if f := m.flt; f != nil && f.left != 0 {
		idx := f.idx
		f.idx++
		if f.spec.TaskFaultAt(f.seed, idx) {
			if f.left > 0 {
				f.left--
			}
			m.res.TransientFaults++
			e.faults++
			e.remaining = e.fullTexe
			e.ckptAt = e.fullTexe
			e.started = false
			e.restarts++
			if m.logging() {
				m.logf("%.6f fault job=%d task=%d faults=%d\n", m.now, e.job.ID, e.taskIdx, e.faults)
			}
			// The watchdog bounds unlimited-fault configs the same way it
			// bounds restart livelock: abandon the job eventually.
			const maxRestarts = 10
			if e.restarts > maxRestarts {
				e.aborted = true
			}
			return
		}
	}
	// Task complete.
	e.executed[e.taskIdx] = true
	if task.Degradable() {
		if oi := e.options[e.taskIdx]; oi >= 0 && oi < len(m.res.OptionUsage) {
			m.res.OptionUsage[oi]++
		}
	}
	switch task.Kind {
	case model.Classify:
		if e.input.Interesting {
			if m.rng.Float64() < opt.FalseNegative {
				e.positive = false
				m.res.FalseNegatives++
			} else {
				m.res.TruePositives++
			}
		} else {
			if m.rng.Float64() < opt.FalsePositive {
				m.res.FalsePositives++
			} else {
				e.positive = false
				m.res.TrueNegatives++
			}
		}
		if m.logging() {
			m.logf("%.6f classify seq=%d opt=%d positive=%v\n",
				m.now, e.input.Seq, e.options[e.taskIdx], e.positive)
		}
	case model.Transmit:
		m.recordPacket(opt, e.input.Interesting)
		if m.logging() {
			m.logf("%.6f tx seq=%d hq=%v interesting=%v\n",
				m.now, e.input.Seq, opt.HighQuality, e.input.Interesting)
		}
	}

	// Advance to the next runnable task.
	for {
		e.taskIdx++
		if e.taskIdx >= len(e.job.Tasks) {
			m.completeJob()
			return
		}
		next := e.job.Tasks[e.taskIdx]
		if next.Conditional && !e.positive {
			continue // classifier said no: skip the conditional chain
		}
		m.startTask()
		return
	}
}

// recordPacket accounts one radio transmission.
func (m *Machine) recordPacket(opt model.Option, interesting bool) {
	switch {
	case opt.HighQuality && interesting:
		m.res.HighQInteresting++
	case opt.HighQuality:
		m.res.HighQUninteresting++
	case interesting:
		m.res.LowQInteresting++
	default:
		m.res.LowQUninteresting++
	}
}

// completeJob finalises the running job: spawn follow-up work, report
// feedback, update counters.
func (m *Machine) completeJob() {
	e := m.exec
	m.exec = nil
	m.res.JobsCompleted++
	if e.degraded {
		m.res.Degradations++
	}

	// The input leaves the queue — or is re-tagged in place for the
	// follow-up job if the classify chain stayed positive. Re-tagging
	// cannot overflow: the image never left its memory slot.
	spawned := e.job.SpawnJobID != model.NoSpawn && e.positive
	if m.logging() {
		m.logf("%.6f jobdone seq=%d job=%d spawned=%v restarts=%d\n",
			m.now, e.input.Seq, e.job.ID, spawned, e.restarts)
	}
	idx := m.buf.IndexOfSeq(e.input.Seq)
	if idx >= 0 {
		if spawned {
			if err := m.buf.Retag(idx, e.job.SpawnJobID, m.now); err != nil {
				m.res.IBOReinsertOther++ // unreachable; keep accounting honest
			}
		} else if _, err := m.buf.RemoveAt(idx); err != nil {
			m.res.IBOReinsertOther++
		} else {
			// The input has left the system: record its sojourn for the
			// Little's-Law validation (capture → final departure).
			m.res.SojournSum += m.now - e.input.CapturedAt
			m.res.SojournCount++
		}
	}

	m.ctl.OnJobComplete(core.Feedback{
		JobID:      e.job.ID,
		Executed:   e.executed,
		Spawned:    spawned,
		PredictedS: e.modelS,
		ObservedS:  m.now - e.startedAt,
		Now:        m.now,
		Faults:     e.faults,
	})
}

// abortJob abandons the running job after the watchdog trips: the input is
// dropped (it cannot be processed on this store) and the controller is
// informed so its trackers keep moving.
func (m *Machine) abortJob() {
	e := m.exec
	m.exec = nil
	m.res.JobAborts++
	if e.input.Interesting {
		m.res.AbortedInteresting++
	}
	if m.logging() {
		m.logf("%.6f jobabort seq=%d job=%d\n", m.now, e.input.Seq, e.job.ID)
	}
	if idx := m.buf.IndexOfSeq(e.input.Seq); idx >= 0 {
		m.buf.RemoveAt(idx)
	}
	m.ctl.OnJobComplete(core.Feedback{
		JobID:      e.job.ID,
		Executed:   e.executed,
		PredictedS: e.modelS,
		ObservedS:  m.now - e.startedAt,
		Now:        m.now,
		Faults:     e.faults,
	})
}

// finish copies store statistics into the results.
func (m *Machine) finish() {
	st := m.store.Stats()
	m.res.Brownouts = st.Brownouts
	m.res.HarvestedJoules = st.HarvestedJ
	m.res.ConsumedJoules = st.ConsumedJ
	m.res.WastedJoules = st.WastedJ
	m.res.SimSeconds = m.cfg.Duration
}
