package service

// Admission control, the paper's discipline turned on the service itself.
// Quetzal's Algorithm 2 predicts input-buffer overflow from Little's Law
// (E[N] = λ·E[S]) and degrades work instead of dropping it blindly; quetzald
// predicts whether a new request can clear the admission queue before its
// deadline, and sheds it with 429 + Retry-After — an explicit, retryable
// signal — instead of letting it camp on a worker slot it can never use.
//
// The residence prediction is the queueing estimate W ≈ (N+1)/c · E[S]: a
// newcomer behind N queued-or-running requests on c workers waits roughly
// N/c service times, then needs one more for itself. E[S] is an EWMA over
// executed runs (cache hits are ~free and deliberately excluded). λ is
// tracked the same way from interarrival gaps, giving the Little's-Law
// occupancy prediction λ·E[S] that /metrics exports for operators.

import (
	"math"
	"sync"
	"time"
)

// ewmaAlpha weights new observations; ~10 observations to converge.
const ewmaAlpha = 0.3

// admission is the load-shedding gate. One per server; safe for concurrent
// use.
type admission struct {
	workers  int
	maxQueue int
	now      func() time.Time

	mu      sync.Mutex
	queued  int       // admitted requests not yet released
	ewmaS   float64   // EWMA of executed-run service time, seconds
	ewmaGap float64   // EWMA of interarrival gap, seconds
	lastArr time.Time // previous arrival, for the gap estimate
	shed    int64     // total requests shed (mirrored to metrics by the caller)
}

// admissionStats is a snapshot for /metrics and logs.
type admissionStats struct {
	Queued       int
	ServiceEWMA  float64 // seconds
	Lambda       float64 // arrivals/second
	PredictedOcc float64 // Little's Law E[N] = λ·E[S]
}

func newAdmission(workers, maxQueue int, now func() time.Time) *admission {
	return &admission{workers: workers, maxQueue: maxQueue, now: now}
}

// tryAdmit asks to enqueue n new executions under the given deadline. It
// either admits them (caller must release(n) when done) or returns shed
// with a Retry-After hint and the predicted queue residence that justified
// the rejection.
func (a *admission) tryAdmit(n int, deadline time.Duration) (ok bool, retryAfter time.Duration, predicted time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()

	// Track λ on every admission attempt — shed traffic is still offered
	// load, which is exactly what Little's Law wants to know about.
	t := a.now()
	if !a.lastArr.IsZero() {
		gap := t.Sub(a.lastArr).Seconds()
		if a.ewmaGap == 0 {
			a.ewmaGap = gap
		} else {
			a.ewmaGap += ewmaAlpha * (gap - a.ewmaGap)
		}
	}
	a.lastArr = t

	predicted = a.residenceLocked(n)
	switch {
	case a.queued+n > a.maxQueue:
		a.shed++
		return false, a.retryHintLocked(predicted, deadline), predicted
	case a.ewmaS > 0 && deadline > 0 && predicted > deadline:
		a.shed++
		return false, a.retryHintLocked(predicted, deadline), predicted
	}
	a.queued += n
	return true, 0, predicted
}

// residenceLocked predicts how long the last of n newcomers would wait in
// system: ceil((queued+n)/workers) service times.
func (a *admission) residenceLocked(n int) time.Duration {
	if a.ewmaS <= 0 {
		return 0 // cold start: no estimate yet, admit freely up to maxQueue
	}
	turns := math.Ceil(float64(a.queued+n) / float64(a.workers))
	return time.Duration(turns * a.ewmaS * float64(time.Second))
}

// retryHintLocked sizes the Retry-After hint: long enough for the backlog
// the client would have faced to drain, never less than a second (a shorter
// hint just invites an immediate re-shed).
func (a *admission) retryHintLocked(predicted, deadline time.Duration) time.Duration {
	hint := predicted - deadline
	if floor := time.Duration(a.ewmaS * float64(time.Second)); hint < floor {
		hint = floor
	}
	if hint < time.Second {
		hint = time.Second
	}
	return hint.Round(time.Second)
}

// release returns n admitted slots.
func (a *admission) release(n int) {
	a.mu.Lock()
	a.queued -= n
	if a.queued < 0 {
		a.queued = 0
	}
	a.mu.Unlock()
}

// observe folds one executed run's wall time into the service-time EWMA.
func (a *admission) observe(d time.Duration) {
	s := d.Seconds()
	a.mu.Lock()
	if a.ewmaS == 0 {
		a.ewmaS = s
	} else {
		a.ewmaS += ewmaAlpha * (s - a.ewmaS)
	}
	a.mu.Unlock()
}

// snapshot reports the gate's current estimates.
func (a *admission) snapshot() admissionStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := admissionStats{Queued: a.queued, ServiceEWMA: a.ewmaS}
	if a.ewmaGap > 0 {
		st.Lambda = 1 / a.ewmaGap
	}
	st.PredictedOcc = st.Lambda * st.ServiceEWMA
	return st
}

// shedCount returns the total shed so far.
func (a *admission) shedCount() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.shed
}
