package service

// The stream-audit satellite. The JSONL streams carry a contract — start
// first, monotonic progress, heartbeats while idle, exactly one terminal
// event — and a mid-stream disconnect must cancel the work without leaking
// a goroutine. There is no goleak dependency in this repo, so the leak
// check is the direct form: count goroutines at rest, run the scenario,
// and require the count to settle back.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"quetzal/internal/experiments"
	"quetzal/internal/metrics"
	"quetzal/internal/store"
)

// collectStream posts body and decodes every JSONL line until EOF.
func collectStream(t *testing.T, ts *httptest.Server, path, body string) (*http.Response, []streamEvent) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b := make([]byte, 512)
		n, _ := resp.Body.Read(b)
		t.Fatalf("POST %s = %d: %s", path, resp.StatusCode, b[:n])
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type = %q", ct)
	}
	var events []streamEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev streamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	return resp, events
}

// auditStream enforces the shared stream contract on a complete event log.
func auditStream(t *testing.T, events []streamEvent) (terminal streamEvent) {
	t.Helper()
	if len(events) == 0 || events[0].Event != "start" {
		t.Fatalf("stream did not open with start: %+v", events)
	}
	terminals := 0
	lastDone := 0
	var lastDevices int64
	for i, ev := range events {
		switch ev.Event {
		case "done", "error":
			terminals++
			terminal = ev
			if i != len(events)-1 {
				t.Fatalf("terminal event at index %d of %d: something followed it", i, len(events))
			}
		case "run":
			if ev.Done != lastDone+1 {
				t.Fatalf("run progress jumped %d -> %d", lastDone, ev.Done)
			}
			lastDone = ev.Done
			if ev.Entry == nil {
				t.Fatalf("run event without an entry: %+v", ev)
			}
		case "snapshot", "heartbeat":
			if ev.Done < lastDone || ev.DevicesDone < lastDevices {
				t.Fatalf("progress went backwards at event %d: %+v", i, ev)
			}
			lastDevices = ev.DevicesDone
		case "start":
			if i != 0 {
				t.Fatalf("second start event at index %d", i)
			}
		default:
			t.Fatalf("unknown event type %q", ev.Event)
		}
	}
	if terminals != 1 {
		t.Fatalf("stream carried %d terminal events, want exactly 1", terminals)
	}
	return terminal
}

func TestSweepStreamContract(t *testing.T) {
	_, ts := newTestServer(t, Config{
		StreamHeartbeat: 20 * time.Millisecond,
		Run: func(ctx context.Context, key experiments.RunKey) (metrics.Results, error) {
			// Stagger completions so progress arrives as distinct events and
			// the stream lives long enough to need heartbeats.
			select {
			case <-time.After(time.Duration(key.NumEvents) * 40 * time.Millisecond):
			case <-ctx.Done():
				return metrics.Results{}, ctx.Err()
			}
			return stubResults(key), nil
		},
	})
	body := `{"runs":[
		{"system":"qz","env":"crowded","events":1},
		{"system":"qz","env":"crowded","events":2},
		{"system":"qz","env":"crowded","events":4}
	]}`
	_, events := collectStream(t, ts, "/v1/sweep/stream", body)
	terminal := auditStream(t, events)
	if terminal.Event != "done" || terminal.Done != 3 || terminal.Failed != 0 {
		t.Fatalf("terminal = %+v", terminal)
	}
	runs, heartbeats := 0, 0
	for _, ev := range events {
		switch ev.Event {
		case "run":
			runs++
		case "heartbeat":
			heartbeats++
		}
	}
	if runs != 3 {
		t.Fatalf("run events = %d, want 3", runs)
	}
	// The slowest key holds the stream open for ~160ms; at a 20ms cadence
	// several heartbeats must have landed (>=3 leaves slack for CI jitter).
	if heartbeats < 3 {
		t.Fatalf("heartbeats = %d, want >= 3 over a ~160ms stream at 20ms cadence", heartbeats)
	}
}

func TestSweepStreamReportsFailures(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Run: func(_ context.Context, key experiments.RunKey) (metrics.Results, error) {
			if key.NumEvents == 2 {
				return metrics.Results{}, fmt.Errorf("synthetic failure")
			}
			return stubResults(key), nil
		},
	})
	body := `{"runs":[{"system":"qz","env":"crowded","events":1},{"system":"qz","env":"crowded","events":2}]}`
	_, events := collectStream(t, ts, "/v1/sweep/stream", body)
	terminal := auditStream(t, events)
	if terminal.Failed != 1 || terminal.Done != 2 {
		t.Fatalf("terminal = %+v", terminal)
	}
	failed := 0
	for _, ev := range events {
		if ev.Event == "run" && ev.Entry.Status == StatusFailed {
			failed++
			if !strings.Contains(ev.Entry.Error, "synthetic failure") {
				t.Fatalf("failed entry error = %q", ev.Entry.Error)
			}
		}
	}
	if failed != 1 {
		t.Fatalf("failed run events = %d, want 1", failed)
	}
}

func TestSweepStreamValidatesBeforeStreaming(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSweepKeys: 2, MaxQueue: 100})
	for _, tc := range []struct{ name, body, wantErr string }{
		{"empty", `{"runs":[]}`, "runs is empty"},
		{"bad entry", `{"runs":[{"system":"nope","env":"crowded"}]}`, "runs[0]"},
		{"too many", `{"runs":[{"system":"qz","env":"crowded"},{"system":"na","env":"crowded"},{"system":"cn","env":"crowded"}]}`, "per-sweep limit"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts, "/v1/sweep/stream", tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 before any stream bytes; body = %s", resp.StatusCode, body)
			}
			if !strings.Contains(body, tc.wantErr) {
				t.Fatalf("body %q missing %q", body, tc.wantErr)
			}
		})
	}
}

// TestSweepStreamDisconnectNoLeak cancels the client mid-stream and
// requires (a) the in-flight executions to be cancelled, (b) the goroutine
// count to settle back to its pre-request level, and (c) the server to
// stay fully serviceable — the memo must not be poisoned by the cancelled
// runs.
func TestSweepStreamDisconnectNoLeak(t *testing.T) {
	started := make(chan struct{}, 8)
	s, ts := newTestServer(t, Config{
		StreamHeartbeat: 10 * time.Millisecond,
		Run: func(ctx context.Context, key experiments.RunKey) (metrics.Results, error) {
			started <- struct{}{}
			<-ctx.Done() // blocks until the disconnect propagates
			return metrics.Results{}, ctx.Err()
		},
	})
	base := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/sweep/stream",
		strings.NewReader(`{"runs":[{"system":"qz","env":"crowded","events":1},{"system":"qz","env":"crowded","events":2}]}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Both executions are live and at least one stream event is out.
	<-started
	<-started
	buf := make([]byte, 256)
	if _, err := resp.Body.Read(buf); err != nil {
		t.Fatalf("first stream read: %v", err)
	}

	cancel()
	resp.Body.Close()

	// Every goroutine the stream spawned must retire.
	waitUntil(t, "goroutines to settle after disconnect", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= base+2
	})
	waitUntil(t, "admission queue to drain", func() bool { return s.adm.snapshot().Queued == 0 })

	// The server is intact: the same keys run to completion now.
	_, ts2body := postJSON(t, ts, "/v1/run", `{"system":"qz","env":"crowded","events":3,"timeout_ms":100}`)
	if !strings.Contains(ts2body, "deadline") && !strings.Contains(ts2body, StatusFailed) {
		// The stub blocks forever by design, so this run times out — the
		// point is the handler answered at all.
		t.Fatalf("post-disconnect run answered strangely: %s", ts2body)
	}
	if resp, _ := get(t, ts, "/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after disconnect = %d", resp.StatusCode)
	}
}

func TestFleetStreamContract(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	_, ts := newTestServer(t, Config{Store: st, StreamHeartbeat: time.Millisecond})

	body := `{"devices": 16, "system": "qz", "env": "less-crowded", "events": 2}`
	_, events := collectStream(t, ts, "/v1/fleet/stream", body)
	terminal := auditStream(t, events)
	if terminal.Event != "done" || terminal.Aggregate == nil || terminal.Stats == nil {
		t.Fatalf("terminal = %+v", terminal)
	}
	if terminal.Cached || terminal.Stats.Devices != 16 {
		t.Fatalf("fresh fleet stream: cached=%v devices=%d", terminal.Cached, terminal.Stats.Devices)
	}
	if events[0].DevicesTotal != 16 {
		t.Fatalf("start event devices_total = %d", events[0].DevicesTotal)
	}
	fresh, err := json.Marshal(terminal.Aggregate)
	if err != nil {
		t.Fatal(err)
	}

	// The identical plan now streams a cached terminal immediately — same
	// aggregate bytes, no second simulation.
	_, events2 := collectStream(t, ts, "/v1/fleet/stream", body)
	terminal2 := auditStream(t, events2)
	if !terminal2.Cached {
		t.Fatalf("second identical fleet stream not served from store: %+v", terminal2)
	}
	cached, err := json.Marshal(terminal2.Aggregate)
	if err != nil {
		t.Fatal(err)
	}
	if string(fresh) != string(cached) {
		t.Fatalf("cached aggregate diverged:\n%s\n%s", fresh, cached)
	}

	// And the plain /v1/fleet endpoint shares the same cache.
	resp, out := postJSON(t, ts, "/v1/fleet", body)
	if resp.StatusCode != http.StatusOK || !strings.Contains(out, `"cached":true`) {
		t.Fatalf("/v1/fleet after stream = %d %s", resp.StatusCode, out)
	}
}
