package service

// Streaming endpoints: POST /v1/sweep/stream and POST /v1/fleet/stream
// answer with chunked JSONL (application/x-ndjson) — one event object per
// line, flushed as it happens. The stream contract every client and test
// can rely on:
//
//   - the first event is "start";
//   - progress events are monotonic ("done" never decreases, per-run
//     events arrive as runs finish);
//   - an idle stream still emits a "heartbeat" at the configured cadence,
//     so proxies and clients can tell a slow sweep from a dead one;
//   - exactly one terminal event ("done" or "error") ends the stream, and
//     nothing follows it.
//
// A client that disconnects mid-stream cancels the work it was waiting on
// (sweeps) or detaches from it (fleets keep running — a fleet sweep is too
// expensive to throw away because one observer left); either way no
// goroutine outlives the cleanup, which stream_test.go pins with
// goroutine-count leak checks.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"quetzal/internal/experiments"
	"quetzal/internal/fleet"
)

// streamEvent is one JSONL line on a streaming response. A single flat
// schema serves both endpoints; unset fields are omitted.
type streamEvent struct {
	Event     string  `json:"event"` // start | run | snapshot | heartbeat | done | error
	ElapsedMs float64 `json:"elapsed_ms"`

	// Sweep fields.
	Done   int          `json:"done,omitempty"`
	Total  int          `json:"total,omitempty"`
	Failed int          `json:"failed,omitempty"`
	Entry  *runResponse `json:"entry,omitempty"`

	// Fleet fields.
	DevicesDone   int64            `json:"devices_done,omitempty"`
	DevicesTotal  int64            `json:"devices_total,omitempty"`
	PeakHeapBytes uint64           `json:"peak_heap_bytes,omitempty"`
	Aggregate     *fleet.Aggregate `json:"aggregate,omitempty"`
	Stats         *fleet.RunStats  `json:"stats,omitempty"`
	Cached        bool             `json:"cached,omitempty"`

	Error string `json:"error,omitempty"`
}

// Unwrap lets http.NewResponseController reach the real connection through
// the metrics-capturing statusWriter, so streams can flush per event.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// streamWriter emits JSONL events with an immediate flush per line.
type streamWriter struct {
	enc  *json.Encoder
	rc   *http.ResponseController
	fail bool // a write failed: the client is gone, stop emitting
}

func newStreamWriter(w http.ResponseWriter) *streamWriter {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	sw := &streamWriter{enc: json.NewEncoder(w), rc: http.NewResponseController(w)}
	return sw
}

// event writes one line and reports whether the stream is still alive.
func (sw *streamWriter) event(ev streamEvent) bool {
	if sw.fail {
		return false
	}
	if err := sw.enc.Encode(ev); err != nil {
		sw.fail = true
		return false
	}
	if err := sw.rc.Flush(); err != nil {
		sw.fail = true
		return false
	}
	return true
}

// handleSweepStream is POST /v1/sweep/stream: the same validation and
// admission as /v1/sweep, but results stream back one line per finished
// run instead of one document at the end.
func (s *Server) handleSweepStream(w http.ResponseWriter, r *http.Request) {
	var req sweepRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		decodeBodyError(w, err)
		return
	}
	if len(req.Runs) == 0 {
		writeError(w, http.StatusBadRequest, "bad request: runs is empty", 0)
		return
	}
	if len(req.Runs) > s.cfg.MaxSweepKeys {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("bad request: %d runs exceeds the per-sweep limit %d", len(req.Runs), s.cfg.MaxSweepKeys), 0)
		return
	}
	keys := make([]experiments.RunKey, len(req.Runs))
	for i, sp := range req.Runs {
		k, err := sp.RunKey()
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request: runs[%d]: %v", i, err), 0)
			return
		}
		keys[i] = k
	}
	timeout := s.timeoutFor(req.TimeoutMs)

	seen := make(map[experiments.RunKey]bool, len(keys))
	newExecs := 0
	for _, k := range keys {
		if !seen[k] && !s.pool.Known(k) {
			newExecs++
		}
		seen[k] = true
	}
	if newExecs > 0 {
		ok, retry, predicted := s.adm.tryAdmit(newExecs, timeout)
		if !ok {
			s.mShed.Inc()
			writeError(w, http.StatusTooManyRequests,
				fmt.Sprintf("saturated: %d new runs, predicted queue residence %v exceeds deadline %v",
					newExecs, predicted.Round(time.Millisecond), timeout), retry)
			return
		}
		defer s.adm.release(newExecs)
	}

	// Headers are committed from here on: failures become error events, not
	// status codes.
	sw := newStreamWriter(w)
	start := s.cfg.Now()
	elapsed := func() float64 {
		return float64(s.cfg.Now().Sub(start)) / float64(time.Millisecond)
	}
	sw.event(streamEvent{Event: "start", Total: len(keys), ElapsedMs: elapsed()})

	// Each run sends its finished entry on a channel sized for every key:
	// producers never block, so a mid-stream disconnect cannot strand them.
	results := make(chan runResponse, len(keys))
	var wg sync.WaitGroup
	for _, k := range keys {
		wg.Add(1)
		go func(k experiments.RunKey) {
			defer wg.Done()
			entry, _ := s.execute(r.Context(), k, timeout)
			results <- entry
		}(k)
	}
	// A disconnect cancels r.Context(), which cancels the executions above;
	// wait for them so the handler never returns with workers still queued.
	defer wg.Wait()

	tick := time.NewTicker(s.cfg.StreamHeartbeat)
	defer tick.Stop()
	done, failed := 0, 0
	for done < len(keys) {
		select {
		case entry := <-results:
			done++
			if entry.Status == StatusFailed {
				failed++
			}
			e := entry
			sw.event(streamEvent{Event: "run", Entry: &e, Done: done, Total: len(keys), ElapsedMs: elapsed()})
		case <-tick.C:
			sw.event(streamEvent{Event: "heartbeat", Done: done, Total: len(keys), ElapsedMs: elapsed()})
		case <-r.Context().Done():
			// The client is gone; the canceled executions drain via wg.Wait.
			return
		}
	}
	sw.event(streamEvent{Event: "done", Done: done, Total: len(keys), Failed: failed, ElapsedMs: elapsed()})
}

// handleFleetStream is POST /v1/fleet/stream: one fleet sweep with progress
// snapshots at the heartbeat cadence and the aggregate in the terminal
// event. A cached plan (same resolved plan already in the shared store)
// answers with an immediate terminal event.
func (s *Server) handleFleetStream(w http.ResponseWriter, r *http.Request) {
	var req fleetRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		decodeBodyError(w, err)
		return
	}
	plan, err := req.FleetSpec.Plan()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad request: "+err.Error(), 0)
		return
	}
	start := s.cfg.Now()
	elapsed := func() float64 {
		return float64(s.cfg.Now().Sub(start)) / float64(time.Millisecond)
	}

	if agg, stats, ok := s.fleetLookup(plan); ok {
		sw := newStreamWriter(w)
		sw.event(streamEvent{Event: "start", DevicesTotal: int64(plan.Devices), ElapsedMs: elapsed()})
		sw.event(streamEvent{Event: "done", Aggregate: agg, Stats: &stats, Cached: true,
			DevicesDone: int64(plan.Devices), DevicesTotal: int64(plan.Devices), ElapsedMs: elapsed()})
		return
	}

	if !s.fleetBusy.CompareAndSwap(false, true) {
		s.mShed.Inc()
		writeError(w, http.StatusTooManyRequests, "a fleet sweep is already running", s.cfg.FleetTimeout/4)
		return
	}
	defer s.fleetBusy.Store(false)

	timeout := s.cfg.FleetTimeout
	if req.TimeoutMs > 0 {
		if t := time.Duration(req.TimeoutMs) * time.Millisecond; t < timeout {
			timeout = t
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	s.fleetTotal.Store(int64(plan.Devices))
	s.fleetDone.Store(0)
	s.fleetPeakHeap.Store(0)
	s.cfg.Logf("quetzald: fleet stream start: %s", plan)

	sw := newStreamWriter(w)
	sw.event(streamEvent{Event: "start", DevicesTotal: int64(plan.Devices), ElapsedMs: elapsed()})

	type fleetOutcome struct {
		agg   *fleet.Aggregate
		stats fleet.RunStats
		err   error
	}
	outcome := make(chan fleetOutcome, 1)
	go func() {
		agg, stats, err := fleet.Run(ctx, plan, fleet.Options{
			Workers: s.cfg.Workers,
			OnProgress: func(done, _ int) {
				s.fleetDone.Store(int64(done))
			},
			OnHeapSample: func(heap uint64) {
				for {
					prev := s.fleetPeakHeap.Load()
					if heap <= prev || s.fleetPeakHeap.CompareAndSwap(prev, heap) {
						return
					}
				}
			},
		})
		outcome <- fleetOutcome{agg, stats, err}
	}()

	tick := time.NewTicker(s.cfg.StreamHeartbeat)
	defer tick.Stop()
	for {
		select {
		case o := <-outcome:
			if o.err != nil {
				s.mRunErrors.Inc()
				s.cfg.Logf("quetzald: fleet stream failed: %v", o.err)
				sw.event(streamEvent{Event: "error", Error: o.err.Error(), ElapsedMs: elapsed()})
				return
			}
			s.mFleetsExecuted.Inc()
			s.fleetPublish(plan, o.agg, o.stats)
			sw.event(streamEvent{Event: "done", Aggregate: o.agg, Stats: &o.stats,
				DevicesDone: s.fleetDone.Load(), DevicesTotal: int64(plan.Devices), ElapsedMs: elapsed()})
			return
		case <-tick.C:
			sw.event(streamEvent{Event: "snapshot",
				DevicesDone:   s.fleetDone.Load(),
				DevicesTotal:  int64(plan.Devices),
				PeakHeapBytes: s.fleetPeakHeap.Load(),
				ElapsedMs:     elapsed()})
		case <-ctx.Done():
			// Client gone or budget spent: wait for the run to notice the
			// cancellation so the handler leaves nothing behind.
			o := <-outcome
			if o.err == nil {
				// The run beat the cancellation: keep the result anyway.
				s.mFleetsExecuted.Inc()
				s.fleetPublish(plan, o.agg, o.stats)
			}
			return
		}
	}
}
