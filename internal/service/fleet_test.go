package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"

	"quetzal/internal/fleet"
)

// TestFleetEndpoint runs a small real fleet end to end through the wire:
// the response must carry the resolved plan, a populated aggregate, and
// run stats, and the progress gauges must land on done == total.
func TestFleetEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real fleet")
	}
	s, ts := newTestServer(t, Config{})
	body := `{"devices": 16, "system": "qz", "env": "less-crowded", "events": 2}`
	resp, out := postJSON(t, ts, "/v1/fleet", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	var fr fleetResponse
	if err := json.Unmarshal([]byte(out), &fr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !strings.Contains(fr.Plan, "fleet 16×qz/less-crowded") {
		t.Fatalf("plan echo = %q", fr.Plan)
	}
	if fr.Aggregate == nil || fr.Aggregate.Totals.Devices != 16 {
		t.Fatalf("aggregate = %+v", fr.Aggregate)
	}
	if fr.Stats.Devices != 16 || fr.Stats.ElapsedSec <= 0 || fr.Stats.PeakHeapBytes == 0 {
		t.Fatalf("stats = %+v", fr.Stats)
	}
	if len(fr.Aggregate.Histograms) != 5 {
		t.Fatalf("got %d histograms, want 5", len(fr.Aggregate.Histograms))
	}

	if done, total := s.fleetDone.Load(), s.fleetTotal.Load(); done != 16 || total != 16 {
		t.Fatalf("progress gauges %d/%d, want 16/16", done, total)
	}
	// The gauges surface through /metrics.
	mResp, metricsOut := get(t, ts, "/metrics")
	if mResp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", mResp.StatusCode)
	}
	for _, want := range []string{
		"quetzald_fleet_devices_done 16",
		"quetzald_fleet_devices_total 16",
		"quetzald_fleets_executed_total 1",
	} {
		if !strings.Contains(metricsOut, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metricsOut)
		}
	}
}

// TestFleetEndpointValidation pins the 400 surface: FleetSpec.Plan guards
// the route exactly as KeySpec guards /v1/run.
func TestFleetEndpointValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, body, want string
	}{
		{"malformed", `{`, "bad request"},
		{"unknown field", `{"devices": 1, "system": "qz", "env": "crowded", "warp": 9}`, "unknown field"},
		{"zero devices", `{"devices": 0, "system": "qz", "env": "crowded"}`, "devices must be positive"},
		{"ideal system", `{"devices": 5, "system": "ideal", "env": "crowded"}`, "no fleet form"},
		{"work cap", fmt.Sprintf(`{"devices": %d, "system": "qz", "env": "crowded", "events": 100}`, 2_000_000), "work cap"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, out := postJSON(t, ts, "/v1/fleet", tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d: %s", resp.StatusCode, out)
			}
			if !strings.Contains(out, tc.want) {
				t.Fatalf("body %q does not mention %q", out, tc.want)
			}
		})
	}
}

// TestFleetSingleFlight pins the concurrency gate: while one sweep runs,
// a second request sheds with 429 instead of stacking onto the same cores.
func TestFleetSingleFlight(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	// Hold the slot as if a sweep were in flight.
	if !s.fleetBusy.CompareAndSwap(false, true) {
		t.Fatal("fleet slot unexpectedly taken")
	}
	defer s.fleetBusy.Store(false)

	var wg sync.WaitGroup
	codes := make([]int, 3)
	for i := range codes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, _ := http.Post(ts.URL+"/v1/fleet", "application/json",
				strings.NewReader(`{"devices": 8, "system": "qz", "env": "less-crowded"}`))
			if resp != nil {
				codes[i] = resp.StatusCode
				resp.Body.Close()
			}
		}(i)
	}
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusTooManyRequests {
			t.Fatalf("request %d: status %d, want 429", i, code)
		}
	}
}

// TestFleetTimeout pins that a request deadline shorter than the sweep
// cancels it and reports a timeout-class error.
func TestFleetTimeout(t *testing.T) {
	if testing.Short() {
		t.Skip("starts a real fleet")
	}
	_, ts := newTestServer(t, Config{})
	// 1 ms cannot complete even one device.
	resp, out := postJSON(t, ts, "/v1/fleet",
		`{"devices": 1000, "system": "qz", "env": "less-crowded", "timeout_ms": 1}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
}

// TestFleetResponseRoundTrips ensures the wire aggregate decodes back into
// fleet.Aggregate without loss of the determinism surface (totals and
// histogram buckets).
func TestFleetResponseRoundTrips(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real fleet")
	}
	_, ts := newTestServer(t, Config{})
	_, out := postJSON(t, ts, "/v1/fleet", `{"devices": 4, "system": "na", "env": "less-crowded", "events": 2}`)
	var fr fleetResponse
	if err := json.Unmarshal([]byte(out), &fr); err != nil {
		t.Fatalf("decode: %v (%s)", err, out)
	}
	var check fleet.Aggregate
	b, _ := json.Marshal(fr.Aggregate)
	if err := json.Unmarshal(b, &check); err != nil {
		t.Fatalf("re-decode: %v", err)
	}
	if check.Totals != fr.Aggregate.Totals {
		t.Fatal("totals did not survive a JSON round trip")
	}
}
