package service

// POST /v1/fleet: one request simulates a whole device population. Fleet
// sweeps differ from /v1/run in kind, not just size — minutes-long, bounded
// memory by construction, results already aggregated — so they get their own
// execution budget, a single-concurrency gate instead of the per-run
// admission queue, and progress gauges (devices done/total, peak heap)
// published through /metrics while the sweep runs.

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"quetzal/internal/experiments"
	"quetzal/internal/fleet"
)

// fleetRequest is the body of POST /v1/fleet: a FleetSpec plus transport
// knobs.
type fleetRequest struct {
	experiments.FleetSpec
	// TimeoutMs shortens the server's fleet budget; it can never extend it.
	TimeoutMs int `json:"timeout_ms,omitempty"`
}

// fleetResponse is the body of a successful POST /v1/fleet.
type fleetResponse struct {
	// Plan echoes the fully resolved plan (defaults applied), so the caller
	// can reproduce the sweep bit-for-bit from the response alone.
	Plan      string           `json:"plan"`
	Aggregate *fleet.Aggregate `json:"aggregate"`
	Stats     fleet.RunStats   `json:"stats"`
}

// handleFleet is POST /v1/fleet: decode, validate through FleetSpec.Plan,
// take the single-fleet slot, run.
func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	var req fleetRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		decodeBodyError(w, err)
		return
	}
	plan, err := req.FleetSpec.Plan()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad request: "+err.Error(), 0)
		return
	}

	// One fleet at a time: a second sweep would not queue behind the first in
	// any useful way on the same cores — shed it with a hint instead.
	if !s.fleetBusy.CompareAndSwap(false, true) {
		s.mShed.Inc()
		writeError(w, http.StatusTooManyRequests, "a fleet sweep is already running", s.cfg.FleetTimeout/4)
		return
	}
	defer s.fleetBusy.Store(false)

	timeout := s.cfg.FleetTimeout
	if req.TimeoutMs > 0 {
		if t := time.Duration(req.TimeoutMs) * time.Millisecond; t < timeout {
			timeout = t
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	s.fleetTotal.Store(int64(plan.Devices))
	s.fleetDone.Store(0)
	s.fleetPeakHeap.Store(0)
	s.cfg.Logf("quetzald: fleet start: %s", plan)

	agg, stats, err := fleet.Run(ctx, plan, fleet.Options{
		Workers: s.cfg.Workers,
		OnProgress: func(done, _ int) {
			s.fleetDone.Store(int64(done))
		},
		OnHeapSample: func(heap uint64) {
			for {
				prev := s.fleetPeakHeap.Load()
				if heap <= prev || s.fleetPeakHeap.CompareAndSwap(prev, heap) {
					return
				}
			}
		},
	})
	if err != nil {
		s.mRunErrors.Inc()
		s.cfg.Logf("quetzald: fleet failed: %v", err)
		writeError(w, runErrorStatus(err), fmt.Sprintf("fleet: %v", err), 0)
		return
	}
	s.mFleetsExecuted.Inc()
	s.cfg.Logf("quetzald: fleet done: %d devices in %.1fs (%.0f devices/s, peak heap %.1f MiB)",
		stats.Devices, stats.ElapsedSec, stats.DevicesPerSec, float64(stats.PeakHeapBytes)/(1<<20))
	writeJSON(w, http.StatusOK, fleetResponse{Plan: plan.String(), Aggregate: agg, Stats: stats})
}
