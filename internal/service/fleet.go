package service

// POST /v1/fleet: one request simulates a whole device population. Fleet
// sweeps differ from /v1/run in kind, not just size — minutes-long, bounded
// memory by construction, results already aggregated — so they get their own
// execution budget, a single-concurrency gate instead of the per-run
// admission queue, and progress gauges (devices done/total, peak heap)
// published through /metrics while the sweep runs.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"quetzal/internal/experiments"
	"quetzal/internal/fleet"
)

// fleetRequest is the body of POST /v1/fleet: a FleetSpec plus transport
// knobs.
type fleetRequest struct {
	experiments.FleetSpec
	// TimeoutMs shortens the server's fleet budget; it can never extend it.
	TimeoutMs int `json:"timeout_ms,omitempty"`
}

// fleetResponse is the body of a successful POST /v1/fleet.
type fleetResponse struct {
	// Plan echoes the fully resolved plan (defaults applied), so the caller
	// can reproduce the sweep bit-for-bit from the response alone.
	Plan      string           `json:"plan"`
	Aggregate *fleet.Aggregate `json:"aggregate"`
	Stats     fleet.RunStats   `json:"stats"`
	// Cached marks responses served from the shared store: some replica
	// already ran this exact resolved plan, so no devices were simulated.
	Cached bool `json:"cached,omitempty"`
}

// fleetID derives the store id for a resolved plan. The "f0" prefix keeps
// fleet records disjoint from run records, which hash the RunKey instead.
func fleetID(plan experiments.FleetPlan) string {
	sum := sha256.Sum256([]byte("fleet\x00" + plan.String()))
	return "f0" + hex.EncodeToString(sum[:8])
}

// fleetStored is the store payload for one finished fleet sweep. Stats ride
// along so a cached response is shaped like a fresh one; they describe the
// original execution, not the cache hit.
type fleetStored struct {
	Aggregate *fleet.Aggregate `json:"aggregate"`
	Stats     fleet.RunStats   `json:"stats"`
}

// fleetLookup consults the shared store for a finished identical plan.
func (s *Server) fleetLookup(plan experiments.FleetPlan) (*fleet.Aggregate, fleet.RunStats, bool) {
	if s.cfg.Store == nil {
		return nil, fleet.RunStats{}, false
	}
	rec, ok := s.cfg.Store.Get(fleetID(plan))
	if !ok {
		return nil, fleet.RunStats{}, false
	}
	var st fleetStored
	if err := json.Unmarshal(rec.Payload, &st); err != nil || st.Aggregate == nil {
		s.cfg.Logf("quetzald: fleet store record %s undecodable: %v", rec.ID, err)
		return nil, fleet.RunStats{}, false
	}
	s.mStoreHits.Inc()
	return st.Aggregate, st.Stats, true
}

// fleetPublish durably records a finished fleet sweep; failures are logged,
// never fatal.
func (s *Server) fleetPublish(plan experiments.FleetPlan, agg *fleet.Aggregate, stats fleet.RunStats) {
	if s.cfg.Store == nil || agg == nil {
		return
	}
	payload, err := json.Marshal(fleetStored{Aggregate: agg, Stats: stats})
	if err != nil {
		s.cfg.Logf("quetzald: fleet store marshal: %v", err)
		return
	}
	if err := s.cfg.Store.Put(fleetID(plan), "fleet "+plan.String(), payload); err != nil {
		s.cfg.Logf("quetzald: fleet store put: %v", err)
		return
	}
	s.mStorePuts.Inc()
}

// handleFleet is POST /v1/fleet: decode, validate through FleetSpec.Plan,
// take the single-fleet slot, run.
func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	var req fleetRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		decodeBodyError(w, err)
		return
	}
	plan, err := req.FleetSpec.Plan()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad request: "+err.Error(), 0)
		return
	}

	// A plan some replica already ran is served from the shared store before
	// the single-fleet gate: cache hits are cheap and can overlap a live sweep.
	if agg, stats, ok := s.fleetLookup(plan); ok {
		writeJSON(w, http.StatusOK, fleetResponse{Plan: plan.String(), Aggregate: agg, Stats: stats, Cached: true})
		return
	}

	// One fleet at a time: a second sweep would not queue behind the first in
	// any useful way on the same cores — shed it with a hint instead.
	if !s.fleetBusy.CompareAndSwap(false, true) {
		s.mShed.Inc()
		writeError(w, http.StatusTooManyRequests, "a fleet sweep is already running", s.cfg.FleetTimeout/4)
		return
	}
	defer s.fleetBusy.Store(false)

	timeout := s.cfg.FleetTimeout
	if req.TimeoutMs > 0 {
		if t := time.Duration(req.TimeoutMs) * time.Millisecond; t < timeout {
			timeout = t
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	s.fleetTotal.Store(int64(plan.Devices))
	s.fleetDone.Store(0)
	s.fleetPeakHeap.Store(0)
	s.cfg.Logf("quetzald: fleet start: %s", plan)

	agg, stats, err := fleet.Run(ctx, plan, fleet.Options{
		Workers: s.cfg.Workers,
		OnProgress: func(done, _ int) {
			s.fleetDone.Store(int64(done))
		},
		OnHeapSample: func(heap uint64) {
			for {
				prev := s.fleetPeakHeap.Load()
				if heap <= prev || s.fleetPeakHeap.CompareAndSwap(prev, heap) {
					return
				}
			}
		},
	})
	if err != nil {
		s.mRunErrors.Inc()
		s.cfg.Logf("quetzald: fleet failed: %v", err)
		writeError(w, runErrorStatus(err), fmt.Sprintf("fleet: %v", err), 0)
		return
	}
	s.mFleetsExecuted.Inc()
	s.fleetPublish(plan, agg, stats)
	s.cfg.Logf("quetzald: fleet done: %d devices in %.1fs (%.0f devices/s, peak heap %.1f MiB)",
		stats.Devices, stats.ElapsedSec, stats.DevicesPerSec, float64(stats.PeakHeapBytes)/(1<<20))
	writeJSON(w, http.StatusOK, fleetResponse{Plan: plan.String(), Aggregate: agg, Stats: stats})
}
