package service

// HTTP handlers and middleware. Every API route goes through wrap(), which
// refuses work while draining, counts requests and responses, isolates
// panics, and tracks in-flight requests for Drain. Handlers never talk to
// the simulator directly: they decode into experiments.KeySpec (the one
// validation gate for untrusted input), pass the admission gate, and submit
// to the single-flight pool under a context deadline.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"quetzal/internal/experiments"
	"quetzal/internal/metrics"
	"quetzal/internal/obs"
	"quetzal/internal/runner"
)

// runRequest is the body of POST /v1/run: a KeySpec plus transport knobs.
type runRequest struct {
	experiments.KeySpec
	// TimeoutMs shortens the server's per-request budget; it can never
	// extend it.
	TimeoutMs int `json:"timeout_ms,omitempty"`
}

// runResponse is the body of a successful POST /v1/run and of
// GET /v1/runs/{id} for a finished run.
type runResponse struct {
	ID     string `json:"id"`
	Key    string `json:"key"`
	Status string `json:"status"`
	// Coalesced marks responses served without a fresh execution: the run
	// was already memoized or joined an in-flight duplicate.
	Coalesced bool `json:"coalesced,omitempty"`
	// Stored marks GET /v1/runs/{id} responses reconstructed from the
	// durable store rather than this replica's in-memory records — the
	// warm-restart path.
	Stored    bool             `json:"stored,omitempty"`
	ElapsedMs float64          `json:"elapsed_ms,omitempty"`
	Results   *metrics.Results `json:"results,omitempty"`
	Error     string           `json:"error,omitempty"`
}

// sweepRequest is the body of POST /v1/sweep.
type sweepRequest struct {
	Runs      []experiments.KeySpec `json:"runs"`
	TimeoutMs int                   `json:"timeout_ms,omitempty"`
}

// sweepResponse is the body of a POST /v1/sweep reply; entries are in
// request order.
type sweepResponse struct {
	Count   int           `json:"count"`
	Failed  int           `json:"failed"`
	Entries []runResponse `json:"entries"`
}

// errorResponse is every non-2xx JSON body.
type errorResponse struct {
	Error string `json:"error"`
	// RetryAfterMs accompanies 429s, mirroring the Retry-After header.
	RetryAfterMs int64 `json:"retry_after_ms,omitempty"`
}

// Handler returns the service's routing table. The mux uses Go 1.22 method
// patterns, so wrong-method requests get 405 from the mux itself.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("POST /v1/run", s.wrap("run", s.handleRun))
	mux.Handle("POST /v1/batch", s.wrap("batch", s.handleBatch))
	mux.Handle("POST /v1/sweep", s.wrap("sweep", s.handleSweep))
	mux.Handle("POST /v1/sweep/stream", s.wrap("sweep_stream", s.handleSweepStream))
	mux.Handle("POST /v1/fleet", s.wrap("fleet", s.handleFleet))
	mux.Handle("POST /v1/fleet/stream", s.wrap("fleet_stream", s.handleFleetStream))
	mux.Handle("GET /v1/runs/{id}", s.wrap("get_run", s.handleGetRun))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// statusWriter captures the response code for metrics and whether the
// handler started writing (a panic after that point cannot be turned into
// a clean 500).
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// wrap is the middleware stack shared by the API routes.
func (s *Server) wrap(route string, h http.HandlerFunc) http.Handler {
	reqs := s.reg.Counter("quetzald_http_requests_total_" + route)
	lat := s.reg.Histogram("quetzald_request_seconds_"+route, obs.LatencyBuckets())
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqs.Inc()
		if s.draining.Load() {
			writeError(w, http.StatusServiceUnavailable, "draining: not accepting new work", 0)
			s.countClass(route, http.StatusServiceUnavailable)
			return
		}
		s.inflight.Add(1)
		defer s.inflight.Done()

		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := s.cfg.Now()
		defer func() {
			if p := recover(); p != nil {
				s.mPanics.Inc()
				s.cfg.Logf("quetzald: panic in %s: %v", route, p)
				// The handler died before writing: report 500. If it had
				// started writing, the connection is torn anyway.
				if !sw.wrote {
					writeError(sw, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", p), 0)
				}
			}
			s.countClass(route, sw.code)
			lat.Observe(s.cfg.Now().Sub(start).Seconds())
		}()
		r.Body = http.MaxBytesReader(sw, r.Body, s.cfg.MaxBodyBytes)
		h(sw, r)
	})
}

// countClass bumps quetzald_http_responses_total_<route>_<N>xx.
func (s *Server) countClass(route string, code int) {
	idx := code / 100
	if idx < 1 || idx > 5 {
		idx = 5
	}
	s.reg.Counter(fmt.Sprintf("quetzald_http_responses_total_%s_%dxx", route, idx)).Inc()
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v) //nolint:errcheck // client disconnects are not actionable
}

func writeError(w http.ResponseWriter, code int, msg string, retryAfter time.Duration) {
	if retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.FormatInt(int64(retryAfter/time.Second), 10))
	}
	writeJSON(w, code, errorResponse{Error: msg, RetryAfterMs: int64(retryAfter / time.Millisecond)})
}

// decodeStrict decodes exactly one JSON value, rejecting unknown fields and
// trailing garbage — the wire must match the schema byte for byte.
func decodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON body")
	}
	return nil
}

// decodeBodyError maps a decode failure to a status code: oversized bodies
// are 413, everything else malformed is 400.
func decodeBodyError(w http.ResponseWriter, err error) {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("body exceeds %d bytes", tooBig.Limit), 0)
		return
	}
	writeError(w, http.StatusBadRequest, "bad request: "+err.Error(), 0)
}

// timeoutFor resolves the effective deadline: the server budget, shortened
// (never extended) by the request's timeout_ms.
func (s *Server) timeoutFor(timeoutMs int) time.Duration {
	t := s.cfg.RunTimeout
	if timeoutMs > 0 {
		if req := time.Duration(timeoutMs) * time.Millisecond; req < t {
			t = req
		}
	}
	return t
}

// runErrorStatus maps an execution error to a response code.
func runErrorStatus(err error) int {
	switch {
	case errors.Is(err, runner.ErrSaturated):
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// The client went away; the code is advisory at this point.
		return 499
	default:
		return http.StatusInternalServerError
	}
}

// execute submits one validated key under the deadline and remembers the
// outcome. Shared by run and sweep; the raw error is returned alongside the
// wire response so callers can map it to a status code.
func (s *Server) execute(ctx context.Context, key experiments.RunKey, timeout time.Duration) (runResponse, error) {
	id := runID(key)
	coalesced := s.pool.Known(key)
	s.remember(id, record{Key: key, Status: StatusRunning})

	runCtx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	start := s.cfg.Now()
	res, err := s.pool.Do(runCtx, key)
	elapsed := s.cfg.Now().Sub(start)

	out := runResponse{
		ID:        id,
		Key:       key.String(),
		Coalesced: coalesced,
		ElapsedMs: float64(elapsed) / float64(time.Millisecond),
	}
	if err != nil {
		out.Status = StatusFailed
		out.Error = err.Error()
		s.remember(id, record{Key: key, Status: StatusFailed, Err: err.Error()})
		return out, err
	}
	out.Status = StatusDone
	out.Results = &res
	s.remember(id, record{Key: key, Status: StatusDone, Results: res})
	return out, nil
}

// handleRun is POST /v1/run: decode, validate, admit, execute.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req runRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		decodeBodyError(w, err)
		return
	}
	key, err := req.KeySpec.RunKey()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad request: "+err.Error(), 0)
		return
	}
	timeout := s.timeoutFor(req.TimeoutMs)

	// Known keys (memoized or in-flight) bypass admission: joining costs no
	// worker slot, so duplicates coalesce even when the queue is saturated.
	if !s.pool.Known(key) {
		ok, retry, predicted := s.adm.tryAdmit(1, timeout)
		if !ok {
			s.mShed.Inc()
			s.cfg.Logf("quetzald: shed %s (predicted residence %v > deadline %v)",
				key, predicted.Round(time.Millisecond), timeout)
			writeError(w, http.StatusTooManyRequests,
				fmt.Sprintf("saturated: predicted queue residence %v exceeds deadline %v",
					predicted.Round(time.Millisecond), timeout), retry)
			return
		}
		defer s.adm.release(1)
	}

	out, err := s.execute(r.Context(), key, timeout)
	if err != nil {
		writeError(w, runErrorStatus(err), out.Error, 0)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

// handleSweep is POST /v1/sweep: decode and validate every spec up front
// (one bad entry fails the whole request in milliseconds), admit the new
// executions as a unit, then run them concurrently on the pool.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req sweepRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		decodeBodyError(w, err)
		return
	}
	if len(req.Runs) == 0 {
		writeError(w, http.StatusBadRequest, "bad request: runs is empty", 0)
		return
	}
	if len(req.Runs) > s.cfg.MaxSweepKeys {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("bad request: %d runs exceeds the per-sweep limit %d", len(req.Runs), s.cfg.MaxSweepKeys), 0)
		return
	}
	keys := make([]experiments.RunKey, len(req.Runs))
	for i, sp := range req.Runs {
		k, err := sp.RunKey()
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request: runs[%d]: %v", i, err), 0)
			return
		}
		keys[i] = k
	}
	timeout := s.timeoutFor(req.TimeoutMs)

	// Admission charges only the distinct unknown keys: duplicates within
	// the sweep single-flight onto one execution, and known keys join free.
	seen := make(map[experiments.RunKey]bool, len(keys))
	newExecs := 0
	for _, k := range keys {
		if !seen[k] && !s.pool.Known(k) {
			newExecs++
		}
		seen[k] = true
	}
	if newExecs > 0 {
		ok, retry, predicted := s.adm.tryAdmit(newExecs, timeout)
		if !ok {
			s.mShed.Inc()
			writeError(w, http.StatusTooManyRequests,
				fmt.Sprintf("saturated: %d new runs, predicted queue residence %v exceeds deadline %v",
					newExecs, predicted.Round(time.Millisecond), timeout), retry)
			return
		}
		defer s.adm.release(newExecs)
	}

	out := sweepResponse{Count: len(keys), Entries: make([]runResponse, len(keys))}
	var wg sync.WaitGroup
	for i, k := range keys {
		wg.Add(1)
		go func(i int, k experiments.RunKey) {
			defer wg.Done()
			out.Entries[i], _ = s.execute(r.Context(), k, timeout)
		}(i, k)
	}
	wg.Wait()
	for _, e := range out.Entries {
		if e.Status == StatusFailed {
			out.Failed++
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleGetRun is GET /v1/runs/{id}.
func (s *Server) handleGetRun(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.lookup(id)
	if !ok {
		// Fall back to the durable store: a freshly restarted replica (or a
		// sibling that never saw the original request) still serves any id
		// the fleet has computed.
		if s.cfg.Store != nil {
			// Fleet records share the store but are not runs; their keys are
			// namespaced so they can never masquerade as one here.
			if srec, found := s.cfg.Store.Get(id); found && !strings.HasPrefix(srec.Key, "fleet ") {
				if res, okRes := s.storeLookup(id); okRes {
					s.mStoreHits.Inc()
					writeJSON(w, http.StatusOK, runResponse{
						ID: id, Key: srec.Key, Status: StatusDone, Stored: true, Results: &res,
					})
					return
				}
			}
		}
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown run id %q", id), 0)
		return
	}
	out := runResponse{ID: id, Key: rec.Key.String(), Status: rec.Status, Error: rec.Err}
	switch rec.Status {
	case StatusDone:
		res := rec.Results
		out.Results = &res
		writeJSON(w, http.StatusOK, out)
	case StatusRunning:
		writeJSON(w, http.StatusAccepted, out)
	default:
		writeJSON(w, http.StatusOK, out)
	}
}

// handleHealthz reports liveness; a draining server answers 503 so load
// balancers stop routing to it while in-flight runs finish.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleMetrics refreshes the gauges and serves the registry. It stays up
// during drain: the final scrape is how operators confirm the ledger and
// the counters agree.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.refreshGauges()
	s.reg.ServeHTTP(w, r)
}
