package service

// The load test from the issue: N goroutine clients hammer /v1/run with a
// mix of duplicate and distinct configs while the race detector watches.
// Afterwards the books must balance three ways at once — client-side
// responses, the pool's ledger, and the /metrics counters all describe the
// same set of executions, with duplicates provably coalesced.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"quetzal/internal/experiments"
	"quetzal/internal/metrics"
)

func TestConcurrentLoad(t *testing.T) {
	const (
		clients      = 16
		reqPerClient = 25
		distinctKeys = 8 // far fewer keys than requests → heavy duplication
	)

	var executions atomic.Int64
	s, ts := newTestServer(t, Config{
		Workers:  4,
		MaxQueue: clients * reqPerClient, // shedding is not under test here
		Run: func(_ context.Context, key experiments.RunKey) (metrics.Results, error) {
			executions.Add(1)
			time.Sleep(time.Duration(key.Seed%3) * time.Millisecond)
			return stubResults(key), nil
		},
	})

	type tally struct {
		ok, other int
		byKey     map[string]int // response id → count, to catch lost answers
	}
	tallies := make([]tally, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tallies[c].byKey = make(map[string]int)
			for i := 0; i < reqPerClient; i++ {
				seed := (c*reqPerClient + i) % distinctKeys
				body := fmt.Sprintf(`{"system":"qz","env":"crowded","seed":%d}`, seed+1)
				resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
				if err != nil {
					tallies[c].other++
					continue
				}
				var out runResponse
				derr := json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK && derr == nil && out.Results != nil {
					tallies[c].ok++
					tallies[c].byKey[out.ID]++
				} else {
					tallies[c].other++
				}
			}
		}(c)
	}
	wg.Wait()

	// Every request got exactly one well-formed answer: none lost, none
	// duplicated, none shed (the queue was sized for the full load).
	totalOK, ids := 0, make(map[string]bool)
	for c := range tallies {
		if tallies[c].other != 0 {
			t.Fatalf("client %d: %d non-OK responses", c, tallies[c].other)
		}
		totalOK += tallies[c].ok
		for id := range tallies[c].byKey {
			ids[id] = true
		}
	}
	if want := clients * reqPerClient; totalOK != want {
		t.Fatalf("responses = %d, want %d", totalOK, want)
	}
	if len(ids) != distinctKeys {
		t.Fatalf("distinct response ids = %d, want %d", len(ids), distinctKeys)
	}

	// The ledger balances against both the stub and the clients: every
	// request either executed or was a cache hit, and with far more
	// requests than keys, coalescing must have done almost all the work.
	l := s.Ledger()
	if int64(l.Executed) != executions.Load() {
		t.Fatalf("ledger executed %d != stub executions %d", l.Executed, executions.Load())
	}
	if l.Executed < distinctKeys {
		t.Fatalf("executed %d < %d distinct keys", l.Executed, distinctKeys)
	}
	if l.Executed+l.CacheHits != clients*reqPerClient {
		t.Fatalf("executed %d + cache hits %d != %d requests", l.Executed, l.CacheHits, clients*reqPerClient)
	}
	// Memoization means a key can execute at most once; joins and memo hits
	// absorb the other ~390 requests.
	if l.Executed != distinctKeys {
		t.Fatalf("executed %d, want exactly %d (one per distinct key)", l.Executed, distinctKeys)
	}

	// /metrics reconciles with the ledger at quiescence: the OnEvent stream
	// is serialized, so after all responses are in, the counters are exact.
	_, body := get(t, ts, "/metrics")
	for _, want := range []string{
		fmt.Sprintf("quetzald_runs_executed_total %d", l.Executed),
		fmt.Sprintf("quetzald_run_cache_hits_total %d", l.CacheHits),
		fmt.Sprintf("quetzald_http_requests_total_run %d", clients*reqPerClient),
		fmt.Sprintf("quetzald_http_responses_total_run_2xx %d", clients*reqPerClient),
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestConcurrentLoadWithShedding saturates a tiny server on purpose: the
// invariant is not that everyone wins but that every request gets a clean
// 200 or 429 — no deadlocks, no lost responses — and the shed count in
// /metrics matches the client-side 429 tally exactly.
func TestConcurrentLoadWithShedding(t *testing.T) {
	const clients = 12
	s, ts := newTestServer(t, Config{
		Workers:  1,
		MaxQueue: 2,
		Run: func(_ context.Context, key experiments.RunKey) (metrics.Results, error) {
			time.Sleep(2 * time.Millisecond)
			return stubResults(key), nil
		},
	})

	var ok, shed, other atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				body := fmt.Sprintf(`{"system":"qz","env":"crowded","seed":%d}`, c*100+i+1)
				resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
				if err != nil {
					other.Add(1)
					continue
				}
				retryAfter := resp.Header.Get("Retry-After")
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					ok.Add(1)
				case http.StatusTooManyRequests:
					if retryAfter == "" {
						other.Add(1) // a 429 without Retry-After is a bug
					} else {
						shed.Add(1)
					}
				default:
					other.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()

	if other.Load() != 0 {
		t.Fatalf("%d responses were neither 200 nor 429-with-Retry-After", other.Load())
	}
	if ok.Load()+shed.Load() != clients*10 {
		t.Fatalf("accounted %d responses, want %d", ok.Load()+shed.Load(), clients*10)
	}
	if ok.Load() == 0 {
		t.Fatal("everything shed; the queue admitted nothing")
	}
	if shed.Load() == 0 {
		t.Fatal("nothing shed; the load test did not saturate the queue")
	}
	if got := s.reg.Counter("quetzald_shed_total").Value(); got != shed.Load() {
		t.Fatalf("quetzald_shed_total = %d, client-side 429s = %d", got, shed.Load())
	}
	// All distinct keys → every 200 cost one execution; the ledger agrees
	// with the client tally.
	if l := s.Ledger(); int64(l.Executed) != ok.Load() {
		t.Fatalf("executed %d != 200s %d", l.Executed, ok.Load())
	}
}
