package service

// POST /v1/batch: submit many runs in one request, get one admission
// decision and per-key status back immediately. Unlike /v1/sweep (which
// holds the connection until every run finishes), a batch is asynchronous:
// the response is 202 with one id per key, executions proceed in the
// background under the server's base context, and callers poll
// GET /v1/runs/{id} (or just resubmit — the single-flight pool and the
// shared store make duplicates free). This is the shape quetzalbench
// drives: an open-loop generator cannot afford a connection per in-flight
// run.

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"quetzal/internal/experiments"
)

// batchRequest is the body of POST /v1/batch.
type batchRequest struct {
	Runs []experiments.KeySpec `json:"runs"`
	// TimeoutMs shortens the per-run background budget; never extends it.
	TimeoutMs int `json:"timeout_ms,omitempty"`
}

// batchEntry is the immediate status of one submitted key.
type batchEntry struct {
	ID  string `json:"id"`
	Key string `json:"key"`
	// Status is the record state at submission time: "accepted" for a key
	// this request started, otherwise the live record state (running, done,
	// failed) the key already had.
	Status string `json:"status"`
	// Coalesced marks keys that cost this batch nothing: already memoized,
	// in flight, or a duplicate of an earlier key in the same batch.
	Coalesced bool `json:"coalesced,omitempty"`
}

// batchResponse is the body of a 202 from POST /v1/batch.
type batchResponse struct {
	Count     int          `json:"count"`
	Accepted  int          `json:"accepted"`
	Coalesced int          `json:"coalesced"`
	Entries   []batchEntry `json:"entries"`
}

// StatusAccepted is the batchEntry state for a key this request admitted.
const StatusAccepted = "accepted"

// handleBatch is POST /v1/batch: validate every spec, admit the distinct
// unknown keys as one unit, answer 202, execute in the background.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		decodeBodyError(w, err)
		return
	}
	if len(req.Runs) == 0 {
		writeError(w, http.StatusBadRequest, "bad request: runs is empty", 0)
		return
	}
	if len(req.Runs) > s.cfg.MaxBatchKeys {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("bad request: %d runs exceeds the per-batch limit %d", len(req.Runs), s.cfg.MaxBatchKeys), 0)
		return
	}
	keys := make([]experiments.RunKey, len(req.Runs))
	for i, sp := range req.Runs {
		k, err := sp.RunKey()
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request: runs[%d]: %v", i, err), 0)
			return
		}
		keys[i] = k
	}
	timeout := s.timeoutFor(req.TimeoutMs)

	// One admission decision for the whole batch, charging only the distinct
	// keys no one is already computing — same accounting as /v1/sweep.
	seen := make(map[experiments.RunKey]bool, len(keys))
	var fresh []experiments.RunKey
	for _, k := range keys {
		if !seen[k] && !s.pool.Known(k) {
			fresh = append(fresh, k)
		}
		seen[k] = true
	}
	if len(fresh) > 0 {
		ok, retry, predicted := s.adm.tryAdmit(len(fresh), timeout)
		if !ok {
			s.mShed.Inc()
			writeError(w, http.StatusTooManyRequests,
				fmt.Sprintf("saturated: %d new runs, predicted queue residence %v exceeds deadline %v",
					len(fresh), predicted.Round(time.Millisecond), timeout), retry)
			return
		}
	}

	// Build the reply before launching anything, so "accepted" vs
	// "coalesced" reflects the decision this request actually made.
	out := batchResponse{Count: len(keys), Entries: make([]batchEntry, len(keys))}
	freshSet := make(map[experiments.RunKey]bool, len(fresh))
	for _, k := range fresh {
		freshSet[k] = true
	}
	claimed := make(map[experiments.RunKey]bool, len(fresh))
	for i, k := range keys {
		e := batchEntry{ID: runID(k), Key: k.String(), Status: StatusAccepted}
		if !freshSet[k] || claimed[k] {
			e.Coalesced = true
			out.Coalesced++
			if rec, ok := s.lookup(e.ID); ok {
				e.Status = rec.Status
			} else {
				e.Status = StatusRunning
			}
		} else {
			claimed[k] = true
			out.Accepted++
			s.remember(e.ID, record{Key: k, Status: StatusRunning})
		}
		out.Entries[i] = e
	}

	// Detach execution from the request: the submitter may disconnect the
	// moment it has the ids. Each run releases its own admission slot, so
	// the queue drains as the batch progresses rather than all at once.
	for _, k := range fresh {
		s.bg.Add(1)
		go func(k experiments.RunKey) {
			defer s.bg.Done()
			defer s.adm.release(1)
			ctx, cancel := context.WithTimeout(s.baseCtx, timeout)
			defer cancel()
			id := runID(k)
			res, err := s.pool.Do(ctx, k)
			if err != nil {
				s.remember(id, record{Key: k, Status: StatusFailed, Err: err.Error()})
				return
			}
			s.remember(id, record{Key: k, Status: StatusDone, Results: res})
		}(k)
	}
	writeJSON(w, http.StatusAccepted, out)
}
