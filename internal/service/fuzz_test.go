package service

// FuzzDecodeRequest throws arbitrary bytes at the two POST endpoints. The
// contract under fuzz: malformed input earns a 4xx and never a panic, a
// 5xx, or a spawned simulation; input the decoder accepts must have passed
// every bound in experiments.KeySpec.RunKey. The run function counts
// invocations so the fuzzer itself verifies "no run without a valid spec".

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"quetzal/internal/experiments"
	"quetzal/internal/metrics"
)

func FuzzDecodeRequest(f *testing.F) {
	// Seed corpus: the interesting shapes, valid and hostile.
	seeds := []string{
		`{"system":"qz","env":"crowded"}`,                                // minimal valid run
		`{"system":"qz","env":"crowded","events":40,"seed":7}`,           // valid with knobs
		`{"system":"fixed-25","env":"less-crowded","engine":"event"}`,    // parameterized system
		`{"system":"qz","env":"lab","max_duration":2.5}`,                 // custom environment
		`{"runs":[{"system":"qz","env":"crowded"}]}`,                     // valid sweep shape
		`{"system":"qz","env":`,                                          // truncated body
		`{"system":"qz","env":"crowded","jitter":NaN}`,                   // NaN literal (illegal JSON)
		`{"system":"qz","env":"crowded","jitter":1e999}`,                 // overflows to +Inf
		`{"system":"qz","env":"crowded","max_duration":1e300}`,           // absurd duration
		`{"system":"qz","env":"crowded","events":-5}`,                    // negative count
		`{"system":"qz","env":"crowded","timeout_ms":-1}`,                // negative timeout
		`{"system":"qz","env":"crowded","unknown_field":true}`,           // schema violation
		`{"system":"qz","env":"crowded"}{"system":"na","env":"crowded"}`, // trailing object
		`[{"system":"qz","env":"crowded"}]`,                              // wrong top-level type
		`null`, `""`, `0`, `{}`,                                          // degenerate JSON
		"\x00\xff\xfe", strings.Repeat("{", 1000), // binary noise, nesting
		`{"system":"` + strings.Repeat("q", 500) + `","env":"crowded"}`, // oversized system id
		`{"runs":[]}`, // empty sweep
		`{"runs":[{"system":"qz","env":"crowded","store_capacitance":99}]}`, // out-of-range nested
	}
	for _, s := range seeds {
		f.Add("/v1/run", s)
		f.Add("/v1/sweep", s)
	}

	var runs atomic.Int64
	srv := New(Config{
		Workers:  2,
		MaxQueue: 1 << 20, // shedding off: admission 429s would mask decode bugs
		Run: func(_ context.Context, key experiments.RunKey) (metrics.Results, error) {
			runs.Add(1)
			// Re-validate: only keys that round-trip through the gate may run.
			if _, err := (experiments.KeySpec{
				System:      key.System,
				Env:         key.Env.Name,
				MaxDuration: key.Env.MaxDuration,
			}).RunKey(); err != nil {
				// Known envs carry their canonical MaxDuration; retry bare.
				if _, err2 := (experiments.KeySpec{System: key.System, Env: key.Env.Name}).RunKey(); err2 != nil {
					panic("executed a key that fails validation: " + err.Error())
				}
			}
			return metrics.Results{System: key.System}, nil
		},
	})
	handler := srv.Handler()

	f.Fuzz(func(t *testing.T, path string, body string) {
		// Constrain the path to the two POST routes; everything else is
		// mux territory, not decode territory.
		if path != "/v1/run" && path != "/v1/sweep" {
			path = "/v1/run"
		}
		before := runs.Load()

		req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req) // any panic here fails the fuzzer

		code := rec.Code
		switch {
		case code >= 200 && code < 300:
			// Accepted: the body must decode as a valid spec (or sweep of
			// specs) by the same gate the handler used.
			if path == "/v1/run" {
				var rr runRequest
				if err := decodeStrict(strings.NewReader(body), &rr); err != nil {
					t.Fatalf("200 for undecodable body %q: %v", body, err)
				}
				if _, err := rr.KeySpec.RunKey(); err != nil {
					t.Fatalf("200 for invalid spec %q: %v", body, err)
				}
			}
		case code >= 400 && code < 500:
			// Rejected: must not have cost a simulation.
			if runs.Load() != before {
				t.Fatalf("4xx response but a run executed for body %q", body)
			}
		default:
			t.Fatalf("status %d for body %q (want 2xx or 4xx)", code, body)
		}
	})
}
