package service

// The service was specified by these tables before the handlers existed:
// every route, the shedding policy, coalescing, panic isolation and drain
// are pinned here against stub run functions, plus one end-to-end test
// against the real simulator so the wire format provably carries real
// results.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"quetzal/internal/experiments"
	"quetzal/internal/metrics"
	"quetzal/internal/sim"
)

// stubResults fabricates a distinguishable result for a key.
func stubResults(key experiments.RunKey) metrics.Results {
	return metrics.Results{
		System:        key.System,
		Environment:   key.Env.Name,
		JobsCompleted: 1 + key.NumEvents,
	}
}

// instantRun is the fast default stub.
func instantRun(_ context.Context, key experiments.RunKey) (metrics.Results, error) {
	return stubResults(key), nil
}

// newTestServer builds a server + httptest frontend around a stub RunFunc.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Run == nil {
		cfg.Run = instantRun
	}
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// postJSON posts body to path and returns the response with its body read.
func postJSON(t *testing.T, ts *httptest.Server, path, body string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, string(b)
}

// postJSONQuiet is postJSON without t, for goroutines that only need the
// request issued; failures surface through the assertions on shared state.
func postJSONQuiet(ts *httptest.Server, path, body string) {
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		return
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
}

func get(t *testing.T, ts *httptest.Server, path string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, string(b)
}

func TestRunEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts, "/v1/run", `{"system":"qz","env":"crowded","events":7}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body = %s", resp.StatusCode, body)
	}
	var out runResponse
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("decode: %v\n%s", err, body)
	}
	if out.ID == "" || out.Status != StatusDone || out.Results == nil {
		t.Fatalf("bad response: %+v", out)
	}
	if out.Results.JobsCompleted != 8 || out.Results.System != "qz" {
		t.Fatalf("results did not round-trip: %+v", out.Results)
	}
	if out.Key != "qz/crowded events=7" {
		t.Fatalf("key = %q", out.Key)
	}
}

func TestRunValidationTable(t *testing.T) {
	ran := 0
	s, ts := newTestServer(t, Config{Run: func(_ context.Context, key experiments.RunKey) (metrics.Results, error) {
		ran++
		return stubResults(key), nil
	}})
	cases := []struct {
		name     string
		body     string
		wantCode int
		wantErr  string
	}{
		{"empty body", ``, http.StatusBadRequest, "bad request"},
		{"not json", `hello`, http.StatusBadRequest, "bad request"},
		{"truncated", `{"system":"qz","env":`, http.StatusBadRequest, "bad request"},
		{"wrong type", `{"system":42,"env":"crowded"}`, http.StatusBadRequest, "bad request"},
		{"unknown field", `{"system":"qz","env":"crowded","cheat":1}`, http.StatusBadRequest, "cheat"},
		{"trailing garbage", `{"system":"qz","env":"crowded"}{"again":true}`, http.StatusBadRequest, "trailing"},
		{"nan literal", `{"system":"qz","env":"crowded","jitter":NaN}`, http.StatusBadRequest, "bad request"},
		{"inf via exponent", `{"system":"qz","env":"crowded","jitter":1e999}`, http.StatusBadRequest, "bad request"},
		{"unknown system", `{"system":"hal9000","env":"crowded"}`, http.StatusBadRequest, "unknown system"},
		{"unknown env", `{"system":"qz","env":"mars"}`, http.StatusBadRequest, "max_duration"},
		{"absurd duration", `{"system":"qz","env":"x","max_duration":1e11}`, http.StatusBadRequest, "max_duration"},
		{"events too big", `{"system":"qz","env":"crowded","events":999999}`, http.StatusBadRequest, "events"},
		{"negative events", `{"system":"qz","env":"crowded","events":-1}`, http.StatusBadRequest, "events"},
		{"bad engine", `{"system":"qz","env":"crowded","engine":"warp"}`, http.StatusBadRequest, "engine"},
		{"array body", `[1,2,3]`, http.StatusBadRequest, "bad request"},
		{"null body", `null`, http.StatusBadRequest, "missing system"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			before := ran
			resp, body := postJSON(t, ts, "/v1/run", tc.body)
			if resp.StatusCode != tc.wantCode {
				t.Fatalf("status = %d, want %d; body = %s", resp.StatusCode, tc.wantCode, body)
			}
			if !strings.Contains(body, tc.wantErr) {
				t.Fatalf("body %q missing %q", body, tc.wantErr)
			}
			if ran != before {
				t.Fatalf("invalid request spawned a run")
			}
		})
	}
	if n := s.Ledger().Executed; n != 0 {
		t.Fatalf("ledger shows %d executions after invalid requests only", n)
	}
}

func TestRunMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/run")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/run status = %d, want 405", resp.StatusCode)
	}
}

func TestRunBodyTooLarge(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 128})
	big := `{"system":"qz","env":"crowded","profile":"` + strings.Repeat("a", 200) + `"}`
	resp, body := postJSON(t, ts, "/v1/run", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413; body = %s", resp.StatusCode, body)
	}
}

func TestRunTimeout(t *testing.T) {
	_, ts := newTestServer(t, Config{
		RunTimeout: 50 * time.Millisecond,
		Run: func(ctx context.Context, key experiments.RunKey) (metrics.Results, error) {
			<-ctx.Done()
			return metrics.Results{}, ctx.Err()
		},
	})
	start := time.Now()
	resp, body := postJSON(t, ts, "/v1/run", `{"system":"qz","env":"crowded"}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504; body = %s", resp.StatusCode, body)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("timeout took %v; deadline not enforced", took)
	}
	// The server must still serve after a timed-out run.
	resp2, _ := get(t, ts, "/healthz")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("healthz after timeout = %d", resp2.StatusCode)
	}
}

func TestRequestTimeoutMsShortensOnly(t *testing.T) {
	var got time.Duration
	var mu sync.Mutex
	_, ts := newTestServer(t, Config{
		RunTimeout: time.Second,
		Run: func(ctx context.Context, key experiments.RunKey) (metrics.Results, error) {
			if dl, ok := ctx.Deadline(); ok {
				mu.Lock()
				got = time.Until(dl)
				mu.Unlock()
			}
			return stubResults(key), nil
		},
	})
	// timeout_ms larger than the server budget must be clamped down.
	postJSON(t, ts, "/v1/run", `{"system":"qz","env":"crowded","timeout_ms":3600000}`)
	mu.Lock()
	d := got
	mu.Unlock()
	if d > time.Second {
		t.Fatalf("request extended the deadline to %v; server budget is 1s", d)
	}
}

func TestPanicIsolation(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Run: func(_ context.Context, key experiments.RunKey) (metrics.Results, error) {
			if key.System == "cn" {
				panic("synthetic failure")
			}
			return stubResults(key), nil
		},
	})
	resp, body := postJSON(t, ts, "/v1/run", `{"system":"cn","env":"crowded"}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking run status = %d, want 500; body = %s", resp.StatusCode, body)
	}
	if got := s.reg.Counter("quetzald_panics_total").Value(); got != 1 {
		t.Fatalf("quetzald_panics_total = %d, want 1", got)
	}
	// The server survives and serves unrelated work.
	resp2, body2 := postJSON(t, ts, "/v1/run", `{"system":"qz","env":"crowded"}`)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-panic run status = %d; body = %s", resp2.StatusCode, body2)
	}
}

func TestGetRunLifecycle(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	_, ts := newTestServer(t, Config{
		Run: func(_ context.Context, key experiments.RunKey) (metrics.Results, error) {
			started <- struct{}{}
			<-gate
			return stubResults(key), nil
		},
	})
	// Unknown id → 404.
	resp, _ := get(t, ts, "/v1/runs/deadbeef")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id status = %d, want 404", resp.StatusCode)
	}

	key, err := experiments.KeySpec{System: "qz", Env: "crowded"}.RunKey()
	if err != nil {
		t.Fatal(err)
	}
	id := runID(key)

	done := make(chan string, 1)
	go func() {
		_, body := postJSON(t, ts, "/v1/run", `{"system":"qz","env":"crowded"}`)
		done <- body
	}()
	<-started
	// In flight → 202 running.
	resp, body := get(t, ts, "/v1/runs/"+id)
	if resp.StatusCode != http.StatusAccepted || !strings.Contains(body, StatusRunning) {
		t.Fatalf("in-flight lookup = %d %s, want 202 running", resp.StatusCode, body)
	}
	close(gate)
	<-done
	// Finished → 200 done with results, id matches the POST's.
	resp, body = get(t, ts, "/v1/runs/"+id)
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, StatusDone) {
		t.Fatalf("finished lookup = %d %s", resp.StatusCode, body)
	}
	var out runResponse
	if err := json.Unmarshal([]byte(body), &out); err != nil || out.Results == nil {
		t.Fatalf("finished lookup body: %v / %s", err, body)
	}
}

func TestRecordEviction(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxRecords: 3})
	var firstID string
	for i := 0; i < 5; i++ {
		_, body := postJSON(t, ts, "/v1/run",
			fmt.Sprintf(`{"system":"qz","env":"crowded","events":%d}`, i+1))
		if firstID == "" {
			var out runResponse
			if err := json.Unmarshal([]byte(body), &out); err != nil {
				t.Fatal(err)
			}
			firstID = out.ID
		}
	}
	if resp, _ := get(t, ts, "/v1/runs/"+firstID); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted record still served: %d", resp.StatusCode)
	}
	s.mu.Lock()
	n := len(s.records)
	s.mu.Unlock()
	if n != 3 {
		t.Fatalf("record index holds %d entries, want 3", n)
	}
}

func TestSweepEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	body := `{"runs":[
		{"system":"qz","env":"crowded"},
		{"system":"na","env":"crowded"},
		{"system":"qz","env":"crowded"}
	]}`
	resp, out := postJSON(t, ts, "/v1/sweep", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d; body = %s", resp.StatusCode, out)
	}
	var sr sweepResponse
	if err := json.Unmarshal([]byte(out), &sr); err != nil {
		t.Fatalf("decode: %v\n%s", err, out)
	}
	if sr.Count != 3 || sr.Failed != 0 || len(sr.Entries) != 3 {
		t.Fatalf("sweep response: %+v", sr)
	}
	// Entries are in request order and the duplicate shares an id.
	if sr.Entries[0].ID != sr.Entries[2].ID || sr.Entries[0].ID == sr.Entries[1].ID {
		t.Fatalf("id sharing wrong: %q %q %q", sr.Entries[0].ID, sr.Entries[1].ID, sr.Entries[2].ID)
	}
	if sr.Entries[1].Results.System != "na" {
		t.Fatalf("entry order broken: %+v", sr.Entries[1])
	}
	// The duplicate coalesced: two executions for three requested runs.
	if l := s.Ledger(); l.Executed != 2 {
		t.Fatalf("executed = %d, want 2", l.Executed)
	}
}

func TestSweepValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxQueue: 100, MaxSweepKeys: 2})
	cases := []struct {
		name    string
		body    string
		wantErr string
	}{
		{"empty runs", `{"runs":[]}`, "runs is empty"},
		{"missing runs", `{}`, "runs is empty"},
		{"too many", `{"runs":[{"system":"qz","env":"crowded"},{"system":"na","env":"crowded"},{"system":"cn","env":"crowded"}]}`, "per-sweep limit"},
		{"bad entry indexed", `{"runs":[{"system":"qz","env":"crowded"},{"system":"nope","env":"crowded"}]}`, "runs[1]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts, "/v1/sweep", tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400; body = %s", resp.StatusCode, body)
			}
			if !strings.Contains(body, tc.wantErr) {
				t.Fatalf("body %q missing %q", body, tc.wantErr)
			}
		})
	}
}

func TestCoalescingConcurrentDuplicates(t *testing.T) {
	gate := make(chan struct{})
	arrived := make(chan struct{}, 16)
	s, ts := newTestServer(t, Config{
		Workers: 4,
		Run: func(_ context.Context, key experiments.RunKey) (metrics.Results, error) {
			arrived <- struct{}{}
			<-gate
			return stubResults(key), nil
		},
	})
	const dupes = 8
	var wg sync.WaitGroup
	codes := make([]int, dupes)
	for i := 0; i < dupes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, _ := postJSON(t, ts, "/v1/run", `{"system":"qz","env":"crowded","seed":99}`)
			codes[i] = resp.StatusCode
		}(i)
	}
	<-arrived // exactly one execution started
	close(gate)
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Fatalf("duplicate %d got status %d", i, c)
		}
	}
	l := s.Ledger()
	if l.Executed != 1 {
		t.Fatalf("executed = %d, want 1 (coalescing broken)", l.Executed)
	}
	if l.CacheHits != dupes-1 {
		t.Fatalf("cache hits = %d, want %d", l.CacheHits, dupes-1)
	}
	select {
	case <-arrived:
		t.Fatal("a second execution started for identical requests")
	default:
	}
}

func TestSheddingQueueCap(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	arrived := make(chan struct{}, 4)
	s, ts := newTestServer(t, Config{
		Workers:  1,
		MaxQueue: 2,
		Run: func(_ context.Context, key experiments.RunKey) (metrics.Results, error) {
			arrived <- struct{}{}
			<-gate
			return stubResults(key), nil
		},
	})
	// Fill the queue: one running + one admitted-waiting.
	resps := make(chan int, 2)
	for i := 0; i < 2; i++ {
		body := fmt.Sprintf(`{"system":"qz","env":"crowded","seed":%d}`, i+1)
		go func(body string) {
			resp, _ := postJSON(t, ts, "/v1/run", body)
			resps <- resp.StatusCode
		}(body)
	}
	<-arrived // first is running; second is queued or about to be
	waitUntil(t, "queue to fill", func() bool { return s.adm.snapshot().Queued == 2 })

	// Third distinct run must shed with 429 + Retry-After.
	resp, body := postJSON(t, ts, "/v1/run", `{"system":"qz","env":"crowded","seed":3}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429; body = %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After header")
	}
	if !strings.Contains(body, "saturated") {
		t.Fatalf("shed body = %s", body)
	}
	// A duplicate of the running key coalesces instead of shedding.
	dupDone := make(chan int, 1)
	go func() {
		resp, _ := postJSON(t, ts, "/v1/run", `{"system":"qz","env":"crowded","seed":1}`)
		dupDone <- resp.StatusCode
	}()
	gate <- struct{}{} // release first run
	gate <- struct{}{} // release second run
	for i := 0; i < 2; i++ {
		if code := <-resps; code != http.StatusOK {
			t.Fatalf("admitted run %d got %d", i, code)
		}
	}
	<-arrived // second run executed
	if code := <-dupDone; code != http.StatusOK {
		t.Fatalf("duplicate under saturation got %d, want 200", code)
	}
	if got := s.reg.Counter("quetzald_shed_total").Value(); got != 1 {
		t.Fatalf("quetzald_shed_total = %d, want 1", got)
	}
}

// TestSheddingLittlesLaw pins the predictive path: once the service-time
// EWMA says the queue cannot be cleared before the deadline, requests shed
// even though the queue cap itself has room.
func TestSheddingLittlesLaw(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	arrived := make(chan struct{}, 2)
	s, ts := newTestServer(t, Config{
		Workers:  1,
		MaxQueue: 100, // roomy: only the residence prediction can shed
		Run: func(_ context.Context, key experiments.RunKey) (metrics.Results, error) {
			arrived <- struct{}{}
			<-gate
			return stubResults(key), nil
		},
	})
	// Teach the gate that runs take ~2s each.
	s.adm.observe(2 * time.Second)

	go postJSONQuiet(ts, "/v1/run", `{"system":"qz","env":"crowded","seed":1}`)
	<-arrived
	waitUntil(t, "first run admitted", func() bool { return s.adm.snapshot().Queued == 1 })

	// Predicted residence for a newcomer: 2 turns × 2s = 4s > 100ms budget.
	resp, body := postJSON(t, ts, "/v1/run",
		`{"system":"qz","env":"crowded","seed":2,"timeout_ms":100}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429; body = %s", resp.StatusCode, body)
	}
	if !strings.Contains(body, "predicted queue residence") {
		t.Fatalf("shed body = %s", body)
	}
	gate <- struct{}{}
}

func TestHealthzAndDrain(t *testing.T) {
	gate := make(chan struct{})
	arrived := make(chan struct{}, 1)
	s, ts := newTestServer(t, Config{
		Run: func(_ context.Context, key experiments.RunKey) (metrics.Results, error) {
			arrived <- struct{}{}
			<-gate
			return stubResults(key), nil
		},
	})
	if resp, body := get(t, ts, "/healthz"); resp.StatusCode != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz = %d %s", resp.StatusCode, body)
	}

	// Start a run, then drain while it is in flight.
	done := make(chan int, 1)
	go func() {
		resp, _ := postJSON(t, ts, "/v1/run", `{"system":"qz","env":"crowded"}`)
		done <- resp.StatusCode
	}()
	<-arrived

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	waitUntil(t, "draining flag", s.Draining)

	// New work is refused while draining...
	if resp, _ := postJSON(t, ts, "/v1/run", `{"system":"na","env":"crowded"}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining run status = %d, want 503", resp.StatusCode)
	}
	if resp, _ := get(t, ts, "/healthz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz = %d, want 503", resp.StatusCode)
	}
	// ...but metrics stay reachable for the final scrape.
	if resp, _ := get(t, ts, "/metrics"); resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics during drain = %d", resp.StatusCode)
	}
	select {
	case err := <-drained:
		t.Fatalf("Drain returned %v with a run still in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(gate)
	if code := <-done; code != http.StatusOK {
		t.Fatalf("in-flight run finished with %d, want 200", code)
	}
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	// After a clean drain the ledger and metrics agree.
	l := s.Ledger()
	if exec := s.reg.Counter("quetzald_runs_executed_total").Value(); exec != int64(l.Executed) {
		t.Fatalf("metrics executed %d != ledger %d", exec, l.Executed)
	}
}

func TestDrainTimeout(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	arrived := make(chan struct{}, 1)
	s, ts := newTestServer(t, Config{
		Run: func(_ context.Context, key experiments.RunKey) (metrics.Results, error) {
			arrived <- struct{}{}
			<-gate
			return stubResults(key), nil
		},
	})
	go postJSONQuiet(ts, "/v1/run", `{"system":"qz","env":"crowded"}`)
	<-arrived
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Drain with stuck run = %v, want DeadlineExceeded", err)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	postJSON(t, ts, "/v1/run", `{"system":"qz","env":"crowded"}`)
	postJSON(t, ts, "/v1/run", `{"system":"qz","env":"crowded"}`) // memo hit
	resp, body := get(t, ts, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics = %d", resp.StatusCode)
	}
	for _, want := range []string{
		"quetzald_runs_executed_total 1",
		"quetzald_run_cache_hits_total 1",
		"quetzald_http_requests_total_run 2",
		"quetzald_http_responses_total_run_2xx 2",
		"quetzald_queue_depth 0",
		"quetzald_request_seconds_run_count 2",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

// TestRealSimulatorEndToEnd runs one genuine simulation through the wire
// and checks the response equals a direct experiments execution.
func TestRealSimulatorEndToEnd(t *testing.T) {
	setup := experiments.DefaultSetup()
	setup.NumEvents = 40
	_, ts := newTestServer(t, Config{Setup: setup, Run: setup.Execute})

	resp, body := postJSON(t, ts, "/v1/run", `{"system":"na","env":"less-crowded","engine":"event"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d; body = %s", resp.StatusCode, body)
	}
	var out runResponse
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	key := experiments.RunKey{System: experiments.SysNoAdapt, Env: experiments.LessCrowded, Engine: sim.EventDriven}
	want, err := setup.Execute(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}
	if *out.Results != want {
		t.Fatalf("service results differ from direct execution:\n got %+v\nwant %+v", *out.Results, want)
	}
}

// waitUntil polls cond until it holds or the test deadline approaches.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}
