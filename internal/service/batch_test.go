package service

// POST /v1/batch contract tests: one admission decision for the whole
// request, an immediate 202 with per-key status, background execution that
// Drain waits for, and duplicate keys that cost nothing.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"quetzal/internal/experiments"
	"quetzal/internal/metrics"
)

func decodeBatch(t *testing.T, body string) batchResponse {
	t.Helper()
	var out batchResponse
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("decode batch response: %v\n%s", err, body)
	}
	return out
}

func TestBatchEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	body := `{"runs":[
		{"system":"qz","env":"crowded","events":1},
		{"system":"na","env":"crowded","events":2},
		{"system":"qz","env":"crowded","events":1}
	]}`
	resp, raw := postJSON(t, ts, "/v1/batch", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d, want 202; body = %s", resp.StatusCode, raw)
	}
	out := decodeBatch(t, raw)
	if out.Count != 3 || out.Accepted != 2 || out.Coalesced != 1 {
		t.Fatalf("batch accounting: %+v", out)
	}
	if out.Entries[0].ID != out.Entries[2].ID {
		t.Fatalf("duplicate keys got different ids: %q %q", out.Entries[0].ID, out.Entries[2].ID)
	}
	if !out.Entries[2].Coalesced || out.Entries[0].Coalesced {
		t.Fatalf("coalesced flags wrong: %+v", out.Entries)
	}

	// Every id resolves to done with results once the background runs land.
	for _, e := range out.Entries {
		e := e
		waitUntil(t, "batch run "+e.ID, func() bool {
			resp, body := get(t, ts, "/v1/runs/"+e.ID)
			return resp.StatusCode == http.StatusOK && strings.Contains(body, StatusDone)
		})
	}
	if l := s.Ledger(); l.Executed != 2 {
		t.Fatalf("executed = %d, want 2 (batch duplicate ran?)", l.Executed)
	}
}

func TestBatchValidation(t *testing.T) {
	ran := 0
	_, ts := newTestServer(t, Config{
		MaxQueue: 100, MaxBatchKeys: 2,
		Run: func(_ context.Context, key experiments.RunKey) (metrics.Results, error) {
			ran++
			return stubResults(key), nil
		},
	})
	for _, tc := range []struct{ name, body, wantErr string }{
		{"empty runs", `{"runs":[]}`, "runs is empty"},
		{"missing runs", `{}`, "runs is empty"},
		{"too many", `{"runs":[{"system":"qz","env":"crowded"},{"system":"na","env":"crowded"},{"system":"cn","env":"crowded"}]}`, "per-batch limit"},
		{"bad entry indexed", `{"runs":[{"system":"qz","env":"crowded"},{"system":"nope","env":"crowded"}]}`, "runs[1]"},
		{"unknown field", `{"runs":[{"system":"qz","env":"crowded"}],"cheat":1}`, "cheat"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts, "/v1/batch", tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400; body = %s", resp.StatusCode, body)
			}
			if !strings.Contains(body, tc.wantErr) {
				t.Fatalf("body %q missing %q", body, tc.wantErr)
			}
		})
	}
	if ran != 0 {
		t.Fatalf("invalid batches spawned %d runs", ran)
	}
}

func TestBatchShedsAsOneUnit(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	arrived := make(chan struct{}, 8)
	s, ts := newTestServer(t, Config{
		Workers:  1,
		MaxQueue: 2,
		Run: func(ctx context.Context, key experiments.RunKey) (metrics.Results, error) {
			arrived <- struct{}{}
			select {
			case <-gate:
			case <-ctx.Done():
			}
			return stubResults(key), nil
		},
	})
	// Saturate: one running plus one queued.
	for i := 0; i < 2; i++ {
		go postJSONQuiet(ts, "/v1/run", fmt.Sprintf(`{"system":"qz","env":"crowded","seed":%d}`, i+1))
	}
	<-arrived
	waitUntil(t, "queue to fill", func() bool { return s.adm.snapshot().Queued == 2 })

	// A batch with two fresh keys cannot be half-admitted: the whole request
	// sheds with 429 + Retry-After and no entry executes.
	resp, body := postJSON(t, ts, "/v1/batch",
		`{"runs":[{"system":"na","env":"crowded"},{"system":"cn","env":"crowded"}]}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429; body = %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}

	// A batch made solely of the already-running key coalesces for free even
	// at full saturation.
	resp, raw := postJSON(t, ts, "/v1/batch", `{"runs":[{"system":"qz","env":"crowded","seed":1}]}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("coalescing batch status = %d; body = %s", resp.StatusCode, raw)
	}
	out := decodeBatch(t, raw)
	if out.Coalesced != 1 || out.Accepted != 0 || out.Entries[0].Status != StatusRunning {
		t.Fatalf("coalescing batch: %+v", out)
	}
}

// TestBatchDrainWaitsForBackgroundRuns pins the lifecycle: Drain must not
// return while detached batch executions are still running, and after a
// clean drain their records and the ledger agree.
func TestBatchDrainWaitsForBackgroundRuns(t *testing.T) {
	gate := make(chan struct{})
	arrived := make(chan struct{}, 1)
	var finished atomic.Int64
	s, ts := newTestServer(t, Config{
		Run: func(_ context.Context, key experiments.RunKey) (metrics.Results, error) {
			arrived <- struct{}{}
			<-gate
			finished.Add(1)
			return stubResults(key), nil
		},
	})
	resp, raw := postJSON(t, ts, "/v1/batch", `{"runs":[{"system":"qz","env":"crowded"}]}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch status = %d", resp.StatusCode)
	}
	out := decodeBatch(t, raw)
	<-arrived // the background run is live; the 202 has long been sent

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	select {
	case err := <-drained:
		t.Fatalf("Drain returned %v with a batch run in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(gate)
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if finished.Load() != 1 {
		t.Fatalf("background run did not finish before Drain returned")
	}
	// The record is durable in the index even though the submitter never
	// polled: a post-drain GET (metrics-style introspection) can read it.
	rec, ok := s.lookup(out.Entries[0].ID)
	if !ok || rec.Status != StatusDone {
		t.Fatalf("batch record after drain: ok=%v rec=%+v", ok, rec)
	}
}

// TestBatchAbandonedOnDrainTimeout: if Drain's context expires first, the
// base context is cancelled and the stuck background run is abandoned
// without wedging future work.
func TestBatchAbandonedOnDrainTimeout(t *testing.T) {
	arrived := make(chan struct{}, 1)
	released := make(chan struct{})
	s, ts := newTestServer(t, Config{
		Run: func(ctx context.Context, key experiments.RunKey) (metrics.Results, error) {
			arrived <- struct{}{}
			<-ctx.Done() // honours cancellation, but nothing else
			close(released)
			return metrics.Results{}, ctx.Err()
		},
	})
	postJSON(t, ts, "/v1/batch", `{"runs":[{"system":"qz","env":"crowded"}]}`)
	<-arrived

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Drain = %v, want DeadlineExceeded", err)
	}
	// Drain's exit cancelled the base context, which released the run.
	select {
	case <-released:
	case <-time.After(5 * time.Second):
		t.Fatal("base context cancellation never reached the background run")
	}
}
