// Package service is quetzald's HTTP layer: a long-lived JSON API that
// executes simulation runs on a single-flight, memoizing runner.Pool, so
// identical concurrent requests coalesce into one simulation and repeated
// requests are served from the memo.
//
// The service is hardened the way the paper hardens the device. Quetzal's
// reactor predicts input-buffer overflow from Little's Law and degrades
// work instead of dropping it; quetzald predicts whether a request can
// clear its admission queue before its deadline and sheds it early with
// 429 + Retry-After (see admission.go). Every request runs under a context
// deadline, every handler is panic-isolated, run records are bounded, and
// SIGTERM drains gracefully: in-flight runs finish, new work is refused
// with 503, and the ledger and metrics stay consistent to the last event.
package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"quetzal/internal/experiments"
	"quetzal/internal/metrics"
	"quetzal/internal/obs"
	"quetzal/internal/runner"
	"quetzal/internal/store"
)

// RunFunc executes one resolved run. The default is Setup.Execute; tests
// inject stubs to script latency, panics and failures.
type RunFunc func(ctx context.Context, key experiments.RunKey) (metrics.Results, error)

// Config tunes a Server. The zero value of every field is a usable default.
type Config struct {
	// Setup is the base experiment setup requests deviate from.
	Setup experiments.Setup
	// Workers bounds concurrent simulations; 0 → one per CPU.
	Workers int
	// RunTimeout is the per-request execution budget; requests may shorten
	// it (timeout_ms) but never extend it. 0 → 60s.
	RunTimeout time.Duration
	// FleetTimeout is the POST /v1/fleet execution budget — fleet sweeps are
	// minutes-long by design, so they get their own clock. 0 → 30m.
	FleetTimeout time.Duration
	// MaxQueue bounds the admission queue (requests admitted but not yet
	// finished); beyond it requests shed with 429. 0 → 4 × workers.
	MaxQueue int
	// MaxSweepKeys bounds the runs in one /v1/sweep request. 0 → 64.
	MaxSweepKeys int
	// MaxBatchKeys bounds the runs in one /v1/batch request. Batch runs
	// execute in the background, so the bound is independent of the sweep
	// one. 0 → 256.
	MaxBatchKeys int
	// MaxBodyBytes bounds request bodies. 0 → 1 MiB.
	MaxBodyBytes int64
	// MaxRecords bounds the run-record index served by /v1/runs/{id};
	// oldest records are evicted first. 0 → 4096.
	MaxRecords int
	// Store, when set, is the durable shared result store: completed runs
	// are published to it and consulted before executing, so replicas
	// pointed at one store directory share a cache and a restart serves
	// previously computed run ids from disk. Nil → in-memory memo only.
	Store *store.Store
	// StoreClaimWait bounds how long a run that lost the store's execution
	// claim polls for the winner's result before executing anyway (the
	// claim is advisory; a crashed winner must not wedge the loser).
	// 0 → 5s.
	StoreClaimWait time.Duration
	// StreamHeartbeat is the keepalive cadence of the streaming endpoints:
	// an idle stream emits a heartbeat event this often. 0 → 5s.
	StreamHeartbeat time.Duration
	// Registry receives the service metrics; nil → a fresh registry.
	Registry *obs.Registry
	// Run overrides the execution function; nil → Setup.Execute.
	Run RunFunc
	// Logf, when set, receives one line per notable event (shed, panic,
	// drain). Nil → silent.
	Logf func(format string, args ...any)
	// Now overrides the clock for tests; nil → time.Now.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.RunTimeout <= 0 {
		c.RunTimeout = 60 * time.Second
	}
	if c.FleetTimeout <= 0 {
		c.FleetTimeout = 30 * time.Minute
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.Workers
	}
	if c.MaxSweepKeys <= 0 {
		c.MaxSweepKeys = 64
	}
	// A sweep's new executions are admitted as a unit, so a sweep larger
	// than the admission queue could never be admitted at all.
	if c.MaxSweepKeys > c.MaxQueue {
		c.MaxSweepKeys = c.MaxQueue
	}
	if c.MaxBatchKeys <= 0 {
		c.MaxBatchKeys = 256
	}
	// Same argument for batches: the whole batch is one admission decision.
	if c.MaxBatchKeys > c.MaxQueue {
		c.MaxBatchKeys = c.MaxQueue
	}
	if c.StoreClaimWait <= 0 {
		c.StoreClaimWait = 5 * time.Second
	}
	if c.StreamHeartbeat <= 0 {
		c.StreamHeartbeat = 5 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxRecords <= 0 {
		c.MaxRecords = 4096
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	if c.Run == nil {
		c.Run = c.Setup.Execute
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Run-record lifecycle states surfaced by GET /v1/runs/{id}.
const (
	StatusRunning = "running"
	StatusDone    = "done"
	StatusFailed  = "failed"
)

// record is one remembered run outcome.
type record struct {
	Key     experiments.RunKey
	Status  string
	Results metrics.Results
	Err     string
}

// Server is the quetzald HTTP service. Construct with New; all methods are
// safe for concurrent use.
type Server struct {
	cfg  Config
	pool *runner.Pool[experiments.RunKey, metrics.Results]
	adm  *admission
	reg  *obs.Registry

	draining atomic.Bool
	inflight sync.WaitGroup // live HTTP requests, for Drain
	bg       sync.WaitGroup // background batch executions, for Drain

	// baseCtx outlives individual requests: /v1/batch detaches executions
	// from the submitting request's context and runs them under this one.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	// Fleet-sweep state: one sweep at a time, with progress published as
	// gauges so /metrics shows a minutes-long sweep moving.
	fleetBusy     atomic.Bool
	fleetDone     atomic.Int64
	fleetTotal    atomic.Int64
	fleetPeakHeap atomic.Uint64

	mu      sync.Mutex
	records map[string]*record
	order   []string // insertion order, for bounded eviction

	// Metric handles, resolved once (hot paths pay one atomic op).
	mRunsExecuted   *obs.Counter
	mCacheHits      *obs.Counter
	mRunErrors      *obs.Counter
	mShed           *obs.Counter
	mPanics         *obs.Counter
	mFleetsExecuted *obs.Counter

	// Store-layer counters (zero and never scraped false when no store is
	// configured). A "hit" is a run served from the shared store instead of
	// simulated; a "miss" is a run that had to execute; claim losses count
	// runs that found another replica already computing their key.
	mStoreHits        *obs.Counter
	mStoreMisses      *obs.Counter
	mStorePuts        *obs.Counter
	mStoreClaimLosses *obs.Counter
}

// New builds a Server around cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		adm:     newAdmission(cfg.Workers, cfg.MaxQueue, cfg.Now),
		reg:     cfg.Registry,
		records: make(map[string]*record),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.mRunsExecuted = s.reg.Counter("quetzald_runs_executed_total")
	s.mCacheHits = s.reg.Counter("quetzald_run_cache_hits_total")
	s.mRunErrors = s.reg.Counter("quetzald_run_errors_total")
	s.mShed = s.reg.Counter("quetzald_shed_total")
	s.mPanics = s.reg.Counter("quetzald_panics_total")
	s.mFleetsExecuted = s.reg.Counter("quetzald_fleets_executed_total")
	s.mStoreHits = s.reg.Counter("quetzald_store_hits_total")
	s.mStoreMisses = s.reg.Counter("quetzald_store_misses_total")
	s.mStorePuts = s.reg.Counter("quetzald_store_puts_total")
	s.mStoreClaimLosses = s.reg.Counter("quetzald_store_claim_losses_total")

	// The pool consults the store before executing: the store wrapper sits
	// between the single-flight layer and the simulator, so a key that any
	// replica has already computed is served from disk instead of re-run.
	runFn := cfg.Run
	if cfg.Store != nil {
		runFn = s.withStore(runFn)
	}
	s.pool = runner.New(runner.Func[experiments.RunKey, metrics.Results](runFn),
		runner.Config[experiments.RunKey]{
			Workers: cfg.Workers,
			// Backstop under the admission gate: even if every admitted
			// request lands in the pool at once, waiters stay bounded and
			// overflow fails fast as 429 instead of blocking.
			MaxWaiters: cfg.MaxQueue,
			// OnEvent is serialized by the pool, so these counters move in
			// lockstep with the ledger: at any quiescent point
			// quetzald_runs_executed_total == Ledger().Executed exactly.
			OnEvent: func(ev runner.Event[experiments.RunKey]) {
				if ev.Cached {
					s.mCacheHits.Inc()
					return
				}
				s.mRunsExecuted.Inc()
				if ev.Err != nil {
					s.mRunErrors.Inc()
				}
				s.adm.observe(ev.Duration)
			},
		})
	return s
}

// Ledger returns the underlying pool's work summary.
func (s *Server) Ledger() runner.Ledger { return s.pool.Ledger() }

// runID derives the stable identifier for a key: requests for the same run
// share an id, matching the pool's coalescing.
func runID(key experiments.RunKey) string {
	sum := sha256.Sum256([]byte(key.String()))
	return hex.EncodeToString(sum[:8])
}

// remember upserts a record, evicting the oldest entries beyond MaxRecords.
// A completed record is never downgraded back to running by a late
// duplicate request.
func (s *Server) remember(id string, upd record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.records[id]; ok {
		if upd.Status == StatusRunning && prev.Status != StatusRunning {
			return
		}
		*prev = upd
		return
	}
	r := upd
	s.records[id] = &r
	s.order = append(s.order, id)
	for len(s.order) > s.cfg.MaxRecords {
		delete(s.records, s.order[0])
		s.order = s.order[1:]
	}
}

// lookup fetches a record snapshot by id.
func (s *Server) lookup(id string) (record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.records[id]
	if !ok {
		return record{}, false
	}
	return *r, true
}

// BeginDrain flips the server into draining mode: /healthz turns 503 and
// new API requests are refused, while in-flight requests keep running and
// /metrics stays up for the final scrape.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain enters draining mode and waits for in-flight requests — and any
// background batch executions — to finish, or for ctx to expire. On a
// clean drain the ledger and metrics agree: the pool's OnEvent stream is
// serialized, so the last event lands before the last handler returns.
// Results published to a configured store survive the drain by
// construction: Put fsyncs before the execution is reported done.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		s.bg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.baseCancel()
		return nil
	case <-ctx.Done():
		s.baseCancel() // abandon stuck background work; the memo is not poisoned
		return ctx.Err()
	}
}

// WriteMetrics refreshes the gauges and dumps the registry to path —
// the shutdown flush behind quetzald's -metrics flag.
func (s *Server) WriteMetrics(path string) error {
	s.refreshGauges()
	return obs.WriteMetricsFile(path, s.reg)
}

// refreshGauges publishes point-in-time state (queue depth, Little's-Law
// estimates, ledger timings) into the registry before a scrape.
func (s *Server) refreshGauges() {
	st := s.adm.snapshot()
	ps := s.pool.Stats()
	s.reg.Gauge("quetzald_queue_depth").Set(float64(st.Queued))
	s.reg.Gauge("quetzald_pool_waiting").Set(float64(ps.Waiting))
	s.reg.Gauge("quetzald_pool_running").Set(float64(ps.Running))
	s.reg.Gauge("quetzald_service_seconds_ewma").Set(st.ServiceEWMA)
	s.reg.Gauge("quetzald_lambda").Set(st.Lambda)
	s.reg.Gauge("quetzald_predicted_occupancy").Set(st.PredictedOcc)
	s.reg.Gauge("quetzald_fleet_devices_done").Set(float64(s.fleetDone.Load()))
	s.reg.Gauge("quetzald_fleet_devices_total").Set(float64(s.fleetTotal.Load()))
	s.reg.Gauge("quetzald_fleet_peak_heap_bytes").Set(float64(s.fleetPeakHeap.Load()))
	if s.cfg.Store != nil {
		st := s.cfg.Store.Stats()
		s.reg.Gauge("quetzald_store_records").Set(float64(st.Records))
		s.reg.Gauge("quetzald_store_segments").Set(float64(st.Segments))
		s.reg.Gauge("quetzald_store_torn_segments").Set(float64(st.TornSegs))
	}
	l := s.pool.Ledger()
	s.reg.Gauge("quetzald_run_seconds_total").Set(l.RunTime.Seconds())
	s.reg.Gauge("quetzald_queue_wait_seconds_total").Set(l.QueueWait.Seconds())
	if l.Latency != nil {
		s.reg.AddHistogram("quetzald_run_seconds", l.Latency)
	}
}

var _ http.Handler = (*obs.Registry)(nil) // the /metrics mount below relies on this
