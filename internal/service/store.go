package service

// The store layer under the single-flight pool. Within one replica the
// pool already guarantees at-most-one execution per key; across replicas
// the shared store plays the same role with no coordination service:
//
//	1. consult the store — a hit is served from disk, byte-authentic;
//	2. take the O_EXCL claim file — the winner simulates and publishes;
//	3. a loser polls for the winner's record (bounded by StoreClaimWait),
//	   reclaims if the claim vanishes without a record, and executes
//	   anyway once the budget is spent — claims are advisory, so a
//	   crashed winner can never wedge a loser.
//
// Runs are deterministic, so a duplicate execution after a lost race is
// wasted work, never wrong work; Put is first-wins idempotent.

import (
	"context"
	"encoding/json"
	"time"

	"quetzal/internal/experiments"
	"quetzal/internal/metrics"
)

// storePollInterval is how often a claim loser re-checks for the winner's
// published record.
const storePollInterval = 10 * time.Millisecond

// withStore wraps the run function with the shared-store protocol above.
func (s *Server) withStore(inner RunFunc) RunFunc {
	st := s.cfg.Store
	return func(ctx context.Context, key experiments.RunKey) (metrics.Results, error) {
		id := runID(key)
		if res, ok := s.storeLookup(id); ok {
			s.mStoreHits.Inc()
			return res, nil
		}
		execute := func() (metrics.Results, error) {
			s.mStoreMisses.Inc()
			res, err := inner(ctx, key)
			if err == nil {
				s.storePublish(id, key, res)
			}
			return res, err
		}
		deadline := time.Now().Add(s.cfg.StoreClaimWait)
		for {
			won, release := st.Claim(id)
			if won {
				res, err := execute()
				release() // after Put: a loser that sees the claim gone sees the record
				return res, err
			}
			// Another replica is computing this key: poll for its result.
			s.mStoreClaimLosses.Inc()
			for time.Now().Before(deadline) && ctx.Err() == nil && st.Claimed(id) && !st.Has(id) {
				select {
				case <-ctx.Done():
				case <-time.After(storePollInterval):
				}
			}
			if res, ok := s.storeLookup(id); ok {
				s.mStoreHits.Inc()
				return res, nil
			}
			if !time.Now().Before(deadline) || ctx.Err() != nil {
				// The claim went stale (winner crashed?) or our budget is
				// spent: compute without a claim rather than wait forever.
				return execute()
			}
			// The claim vanished without a record (the winner failed):
			// loop and try to take the claim ourselves.
		}
	}
}

// storeLookup fetches and decodes a stored result. A record that fails to
// decode (foreign schema, bit rot the checksum cannot see) is treated as a
// miss and logged — the run re-executes and republishes nothing (first
// wins), so a poisoned record is loud but not fatal.
func (s *Server) storeLookup(id string) (metrics.Results, bool) {
	rec, ok := s.cfg.Store.Get(id)
	if !ok {
		return metrics.Results{}, false
	}
	var res metrics.Results
	if err := json.Unmarshal(rec.Payload, &res); err != nil {
		s.cfg.Logf("quetzald: store record %s undecodable: %v", id, err)
		return metrics.Results{}, false
	}
	return res, true
}

// storePublish durably appends one completed result. Failures are logged,
// not returned: the caller still has the in-memory result, and the next
// replica to compute the key will publish it instead.
func (s *Server) storePublish(id string, key experiments.RunKey, res metrics.Results) {
	payload, err := json.Marshal(res)
	if err != nil {
		s.cfg.Logf("quetzald: store marshal %s: %v", id, err)
		return
	}
	if err := s.cfg.Store.Put(id, key.String(), payload); err != nil {
		s.cfg.Logf("quetzald: store put %s: %v", id, err)
		return
	}
	s.mStorePuts.Inc()
}
