package service

// The scale-out satellite: two Server replicas share one store directory
// with no coordination beyond the store's claim files. The tests here are
// accounting proofs, not smoke tests — client-observed tallies, each
// replica's ledger, the /metrics counters, and the store's hit/miss
// counters must reconcile exactly, with no "approximately consistent"
// escape hatch.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"quetzal/internal/experiments"
	"quetzal/internal/metrics"
	"quetzal/internal/store"
)

// replica is one quetzald instance bound to a shared store.
type replica struct {
	srv  *Server
	ts   *httptest.Server
	sims atomic.Int64 // stub simulator invocations — the costly thing replicas share
}

// newReplica builds a server whose stub counts real simulations and runs
// slowly enough (delay) that cross-replica races actually happen.
func newReplica(t *testing.T, dir string, delay time.Duration, cfg Config) *replica {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	r := &replica{}
	cfg.Store = st
	if cfg.Run == nil {
		cfg.Run = func(ctx context.Context, key experiments.RunKey) (metrics.Results, error) {
			r.sims.Add(1)
			if delay > 0 {
				select {
				case <-time.After(delay):
				case <-ctx.Done():
					return metrics.Results{}, ctx.Err()
				}
			}
			return stubResults(key), nil
		}
	}
	if cfg.Workers == 0 {
		cfg.Workers = 4
	}
	r.srv = New(cfg)
	r.ts = httptest.NewServer(r.srv.Handler())
	t.Cleanup(r.ts.Close)
	return r
}

// metricValue scrapes one counter/gauge out of a /metrics body.
func metricValue(t *testing.T, body, name string) int64 {
	t.Helper()
	m := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (-?\d+(?:\.\d+)?)$`).FindStringSubmatch(body)
	if m == nil {
		return 0
	}
	f, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("metric %s = %q: %v", name, m[1], err)
	}
	return int64(f)
}

// reconcile asserts the exact accounting identity for one replica at
// quiescence: pool executions = local simulations + store hits, and the
// /metrics scrape agrees with both.
func reconcile(t *testing.T, name string, r *replica) (sims, hits int64) {
	t.Helper()
	_, body := get(t, r.ts, "/metrics")
	hits = r.srv.mStoreHits.Value()
	misses := r.srv.mStoreMisses.Value()
	sims = r.sims.Load()
	executed := int64(r.srv.Ledger().Executed)

	if sims != misses {
		t.Errorf("%s: stub simulations %d != store misses %d", name, sims, misses)
	}
	if executed != sims+hits {
		t.Errorf("%s: pool executions %d != simulations %d + store hits %d", name, executed, sims, hits)
	}
	for metric, want := range map[string]int64{
		"quetzald_store_hits_total":    hits,
		"quetzald_store_misses_total":  misses,
		"quetzald_runs_executed_total": executed,
	} {
		if got := metricValue(t, body, metric); got != want {
			t.Errorf("%s: /metrics %s = %d, counter says %d", name, metric, got, want)
		}
	}
	return sims, hits
}

// TestColdWarmReplicaAB is the A/B half of the satellite: replica A runs a
// key set cold, replica B runs the identical set against the same store
// directory, and B's simulation count is exactly zero — every one of its
// runs is a cross-replica store hit.
func TestColdWarmReplicaAB(t *testing.T) {
	dir := t.TempDir()
	a := newReplica(t, dir, 0, Config{})
	b := newReplica(t, dir, 0, Config{})

	const keys = 12
	for i := 0; i < keys; i++ {
		body := fmt.Sprintf(`{"system":"qz","env":"crowded","events":%d}`, i+1)
		if resp, out := postJSON(t, a.ts, "/v1/run", body); resp.StatusCode != http.StatusOK {
			t.Fatalf("cold run %d: %d %s", i, resp.StatusCode, out)
		}
	}
	simsA, hitsA := reconcile(t, "A", a)
	if simsA != keys || hitsA != 0 {
		t.Fatalf("cold replica: sims=%d hits=%d, want %d/0", simsA, hitsA, keys)
	}
	if puts := a.srv.mStorePuts.Value(); puts != keys {
		t.Fatalf("cold replica published %d records, want %d", puts, keys)
	}

	// Warm pass on the second replica: same keys, different process.
	for i := 0; i < keys; i++ {
		body := fmt.Sprintf(`{"system":"qz","env":"crowded","events":%d}`, i+1)
		resp, out := postJSON(t, b.ts, "/v1/run", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("warm run %d: %d %s", i, resp.StatusCode, out)
		}
		var rr runResponse
		if err := json.Unmarshal([]byte(out), &rr); err != nil {
			t.Fatal(err)
		}
		if rr.Results == nil || rr.Results.JobsCompleted != 1+(i+1) {
			t.Fatalf("warm run %d served wrong results: %+v", i, rr.Results)
		}
	}
	simsB, hitsB := reconcile(t, "B", b)
	if simsB != 0 {
		t.Fatalf("warm replica simulated %d times, want 0 (store sharing broken)", simsB)
	}
	if hitsB != keys {
		t.Fatalf("warm replica store hits = %d, want %d", hitsB, keys)
	}
}

// TestTwoReplicaRaceReconciles is the race half, meant for -race runs: both
// replicas take concurrent overlapping traffic against one store. At
// quiescence the client tallies, both ledgers, both /metrics scrapes and
// the store counters must balance exactly — and the fleet-wide simulation
// count must equal the number of distinct keys, because the claim protocol
// makes duplicate execution across replicas impossible while both are
// willing to wait out a claim.
func TestTwoReplicaRaceReconciles(t *testing.T) {
	dir := t.TempDir()
	// Claim wait far above stub latency: losers always outwait winners.
	cfg := Config{StoreClaimWait: 30 * time.Second, MaxQueue: 256}
	a := newReplica(t, dir, 3*time.Millisecond, cfg)
	b := newReplica(t, dir, 3*time.Millisecond, cfg)
	replicas := []*replica{a, b}

	const distinct = 24
	const clients = 6
	const perClient = 16
	var ok200 atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				r := replicas[(c+i)%2]
				body := fmt.Sprintf(`{"system":"qz","env":"crowded","events":%d}`, (c*perClient+i)%distinct+1)
				resp, err := http.Post(r.ts.URL+"/v1/run", "application/json",
					strings.NewReader(body))
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					ok200.Add(1)
				} else {
					t.Errorf("client %d got %d", c, resp.StatusCode)
				}
			}
		}(c)
	}
	wg.Wait()

	if got := ok200.Load(); got != clients*perClient {
		t.Fatalf("client tally: %d OK responses, want %d", got, clients*perClient)
	}
	simsA, _ := reconcile(t, "A", a)
	simsB, _ := reconcile(t, "B", b)
	if simsA+simsB != distinct {
		t.Fatalf("fleet simulated %d+%d times for %d distinct keys (cross-replica dedup broken)",
			simsA, simsB, distinct)
	}

	// Every id is now durable: both replicas serve every run id, including
	// ids only the *other* replica computed (the store fallback).
	for i := 0; i < distinct; i++ {
		key, err := experiments.KeySpec{System: "qz", Env: "crowded", Events: i + 1}.RunKey()
		if err != nil {
			t.Fatal(err)
		}
		for name, r := range map[string]*replica{"A": a, "B": b} {
			resp, body := get(t, r.ts, "/v1/runs/"+runID(key))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s: GET run %d = %d %s", name, i, resp.StatusCode, body)
			}
		}
	}
}

// TestWarmRestartServesFromDisk pins the recovery story end to end: compute
// on one server, tear the whole process-equivalent down (Close the store,
// drop the server), open a brand-new replica on the directory, and demand
// both the run id lookup and a re-run come back without simulating.
func TestWarmRestartServesFromDisk(t *testing.T) {
	dir := t.TempDir()
	a := newReplica(t, dir, 0, Config{})
	_, out := postJSON(t, a.ts, "/v1/run", `{"system":"qz","env":"crowded","events":7}`)
	var first runResponse
	if err := json.Unmarshal([]byte(out), &first); err != nil {
		t.Fatal(err)
	}
	if err := a.srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	a.ts.Close()

	b := newReplica(t, dir, 0, Config{})
	// The restarted replica has never seen this id, yet serves it from disk.
	resp, body := get(t, b.ts, "/v1/runs/"+first.ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restart lookup = %d %s", resp.StatusCode, body)
	}
	var got runResponse
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatal(err)
	}
	if !got.Stored || got.Results == nil || *got.Results != *first.Results {
		t.Fatalf("restart lookup diverged: %+v vs %+v", got, first)
	}
	// A fresh POST for the same key is a store hit, not a simulation.
	if resp, _ := postJSON(t, b.ts, "/v1/run", `{"system":"qz","env":"crowded","events":7}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("restart rerun = %d", resp.StatusCode)
	}
	if sims := b.sims.Load(); sims != 0 {
		t.Fatalf("restarted replica simulated %d times, want 0", sims)
	}
}
