// Package host adapts a core.Controller (the Quetzal runtime or a
// baseline) to a real execution environment: instead of the fixed-increment
// simulator, the Loop drives actual task implementations supplied by the
// embedding program and is paced by a caller-provided clock.
//
// This is the "firmware glue" layer: a port to a real device implements
// Executor (run this task at this quality on this input) and PowerSensor
// (read the harvest meter), wires sensor interrupts to OnCapture, and calls
// Step from its main loop. Everything Quetzal needs — measurements,
// scheduling, feedback — flows through the same Controller interface the
// simulator uses, so behaviour validated in simulation carries over.
package host

import (
	"errors"
	"fmt"

	"quetzal/internal/buffer"
	"quetzal/internal/core"
	"quetzal/internal/model"
)

// Outcome reports what a task execution produced.
type Outcome struct {
	// Positive is the classification result for Classify tasks; ignored
	// for other kinds.
	Positive bool
}

// Executor runs application tasks for real. Implementations wrap the actual
// inference/compression/radio code on the device (or test doubles).
type Executor interface {
	// ExecuteTask runs the given task of the job at the option's quality
	// on the input. Blocking; returns when the task completes.
	ExecuteTask(job *model.Job, taskIdx int, opt model.Option, in buffer.Input) (Outcome, error)
}

// ExecutorFunc adapts a function to the Executor interface.
type ExecutorFunc func(job *model.Job, taskIdx int, opt model.Option, in buffer.Input) (Outcome, error)

// ExecuteTask implements Executor.
func (f ExecutorFunc) ExecuteTask(job *model.Job, taskIdx int, opt model.Option, in buffer.Input) (Outcome, error) {
	return f(job, taskIdx, opt, in)
}

// Config assembles a Loop.
type Config struct {
	App        *model.App
	Controller core.Controller
	Executor   Executor
	// BufferCapacity sizes the input buffer (e.g. 10 images).
	BufferCapacity int
	// Now returns the current time in seconds (monotonic). Injected so
	// tests and non-realtime hosts control pacing.
	Now func() float64
	// MeasurePower returns the instantaneous harvest power in watts (on
	// real hardware, the Quetzal module's input-path reading).
	MeasurePower func() float64
}

// Loop drives one device's processing.
type Loop struct {
	cfg Config
	buf *buffer.Buffer
	seq uint64

	// Counters for observability.
	Captures, Stored, Dropped, JobsRun int
}

// New validates cfg and builds a Loop.
func New(cfg Config) (*Loop, error) {
	if cfg.App == nil || cfg.Controller == nil || cfg.Executor == nil {
		return nil, errors.New("host: App, Controller and Executor are required")
	}
	if err := cfg.App.Validate(); err != nil {
		return nil, err
	}
	if cfg.BufferCapacity <= 0 {
		return nil, fmt.Errorf("host: buffer capacity must be positive, got %d", cfg.BufferCapacity)
	}
	if cfg.Now == nil || cfg.MeasurePower == nil {
		return nil, errors.New("host: Now and MeasurePower are required")
	}
	return &Loop{cfg: cfg, buf: buffer.New(cfg.BufferCapacity)}, nil
}

// Buffer exposes the input buffer (e.g. for occupancy displays).
func (l *Loop) Buffer() *buffer.Buffer { return l.buf }

// OnCapture feeds one captured input. stored=false marks frames the cheap
// pre-filter discarded (they still train the arrival-rate tracker). It
// returns whether the input was accepted into the buffer.
func (l *Loop) OnCapture(interesting bool, stored bool) bool {
	l.Captures++
	l.cfg.Controller.ObserveCapture(stored)
	if !stored {
		return false
	}
	l.Stored++
	in := buffer.Input{
		Seq:         l.seq,
		CapturedAt:  l.cfg.Now(),
		Interesting: interesting,
		JobID:       l.cfg.App.EntryJobID,
		EnqueuedAt:  l.cfg.Now(),
	}
	l.seq++
	if !l.buf.Push(in, false) {
		l.Dropped++
		return false
	}
	return true
}

// Step runs at most one job to completion: it asks the controller for the
// next decision, executes the job's tasks through the Executor, applies
// spawn semantics, and reports feedback. It returns false when the buffer
// is empty (nothing to do).
func (l *Loop) Step() (bool, error) {
	env := core.Env{
		Now:        l.cfg.Now(),
		InputPower: l.cfg.MeasurePower(),
		BufferLen:  l.buf.Len(),
		BufferCap:  l.buf.Capacity(),
	}
	dec, ok := l.cfg.Controller.NextJob(env, l.buf)
	if !ok {
		return false, nil
	}
	in, err := l.buf.At(dec.BufferIndex)
	if err != nil {
		return false, fmt.Errorf("host: controller returned stale index %d: %w", dec.BufferIndex, err)
	}
	job := l.cfg.App.JobByID(dec.JobID)
	if job == nil {
		return false, fmt.Errorf("host: controller selected unknown job %d", dec.JobID)
	}
	options := dec.Options
	if len(options) != len(job.Tasks) {
		options = make([]int, len(job.Tasks))
	}

	started := l.cfg.Now()
	executed := make([]bool, len(job.Tasks))
	positive := true
	for ti, task := range job.Tasks {
		if task.Conditional && !positive {
			continue
		}
		opt := options[ti]
		if opt < 0 || opt >= len(task.Options) {
			opt = 0
		}
		out, err := l.cfg.Executor.ExecuteTask(job, ti, task.Options[opt], in)
		if err != nil {
			return false, fmt.Errorf("host: task %s/%s: %w", job.Name, task.Name, err)
		}
		executed[ti] = true
		if task.Kind == model.Classify && !out.Positive {
			positive = false
		}
	}

	// Departure or re-tag for the follow-up job.
	spawned := job.SpawnJobID != model.NoSpawn && positive
	if idx := l.buf.IndexOfSeq(in.Seq); idx >= 0 {
		if spawned {
			if err := l.buf.Retag(idx, job.SpawnJobID, l.cfg.Now()); err != nil {
				return false, err
			}
		} else if _, err := l.buf.RemoveAt(idx); err != nil {
			return false, err
		}
	}

	l.JobsRun++
	l.cfg.Controller.OnJobComplete(core.Feedback{
		JobID:      job.ID,
		Executed:   executed,
		Spawned:    spawned,
		PredictedS: dec.ModelS,
		ObservedS:  l.cfg.Now() - started,
		Now:        l.cfg.Now(),
	})
	return true, nil
}

// Drain calls Step until the buffer is empty or maxJobs have run, returning
// how many jobs executed.
func (l *Loop) Drain(maxJobs int) (int, error) {
	ran := 0
	for ran < maxJobs {
		ok, err := l.Step()
		if err != nil {
			return ran, err
		}
		if !ok {
			break
		}
		ran++
	}
	return ran, nil
}
