package host

import (
	"errors"
	"strings"
	"testing"

	"quetzal/internal/buffer"
	"quetzal/internal/core"
	"quetzal/internal/device"
	"quetzal/internal/model"
)

// fakeClock advances a configurable amount per task execution.
type fakeClock struct{ t float64 }

func (c *fakeClock) now() float64 { return c.t }

// scriptedExecutor advances the clock by each option's Texe and classifies
// by a fixed script.
type scriptedExecutor struct {
	clock     *fakeClock
	positives map[uint64]bool // input seq → classification
	calls     []string
	fail      bool
}

func (e *scriptedExecutor) ExecuteTask(job *model.Job, taskIdx int, opt model.Option, in buffer.Input) (Outcome, error) {
	if e.fail {
		return Outcome{}, errors.New("boom")
	}
	e.clock.t += opt.Texe
	e.calls = append(e.calls, job.Name+"/"+job.Tasks[taskIdx].Name+"@"+opt.Name)
	return Outcome{Positive: e.positives[in.Seq]}, nil
}

func newLoop(t *testing.T, exec Executor, clock *fakeClock, app *model.App) *Loop {
	t.Helper()
	rt, err := core.New(core.Config{App: app, CapturePeriod: 1})
	if err != nil {
		t.Fatal(err)
	}
	l, err := New(Config{
		App:            app,
		Controller:     rt,
		Executor:       exec,
		BufferCapacity: 10,
		Now:            clock.now,
		MeasurePower:   func() float64 { return 0.05 },
	})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestNewValidation(t *testing.T) {
	app := device.Apollo4().PersonDetectionApp()
	rt, _ := core.New(core.Config{App: app, CapturePeriod: 1})
	exec := ExecutorFunc(func(*model.Job, int, model.Option, buffer.Input) (Outcome, error) {
		return Outcome{}, nil
	})
	now := func() float64 { return 0 }
	pow := func() float64 { return 0.01 }
	cases := []Config{
		{},
		{App: app, Controller: rt, Executor: exec, BufferCapacity: 0, Now: now, MeasurePower: pow},
		{App: app, Controller: rt, Executor: exec, BufferCapacity: 10, MeasurePower: pow},
		{App: app, Controller: rt, Executor: exec, BufferCapacity: 10, Now: now},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: New accepted invalid config", i)
		}
	}
	bad := device.Apollo4().PersonDetectionApp()
	bad.EntryJobID = 99
	if _, err := New(Config{App: bad, Controller: rt, Executor: exec,
		BufferCapacity: 10, Now: now, MeasurePower: pow}); err == nil {
		t.Error("New accepted invalid app")
	}
}

// A positive detect must run through the whole chain: detect, re-tag,
// report (compress + radio), departure.
func TestPositiveChainExecutes(t *testing.T) {
	clock := &fakeClock{}
	app := device.Apollo4().PersonDetectionApp()
	exec := &scriptedExecutor{clock: clock, positives: map[uint64]bool{0: true}}
	l := newLoop(t, exec, clock, app)

	if !l.OnCapture(true, true) {
		t.Fatal("capture rejected")
	}
	ran, err := l.Drain(10)
	if err != nil {
		t.Fatal(err)
	}
	if ran != 2 {
		t.Fatalf("ran %d jobs, want 2 (detect then report)", ran)
	}
	want := []string{
		"detect/ml-inference@mobilenetv2",
		"report/compress@jpeg-package",
		"report/radio@full-image",
	}
	if len(exec.calls) != len(want) {
		t.Fatalf("calls = %v, want %v", exec.calls, want)
	}
	for i := range want {
		if exec.calls[i] != want[i] {
			t.Errorf("call %d = %q, want %q", i, exec.calls[i], want[i])
		}
	}
	if l.Buffer().Len() != 0 {
		t.Errorf("buffer len = %d after chain, want 0", l.Buffer().Len())
	}
	if l.JobsRun != 2 || l.Stored != 1 {
		t.Errorf("counters: %+v", l)
	}
}

// A negative classification ends the chain: no report job runs.
func TestNegativeClassificationStopsChain(t *testing.T) {
	clock := &fakeClock{}
	app := device.Apollo4().PersonDetectionApp()
	exec := &scriptedExecutor{clock: clock, positives: map[uint64]bool{}}
	l := newLoop(t, exec, clock, app)
	l.OnCapture(false, true)
	ran, err := l.Drain(10)
	if err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Fatalf("ran %d jobs, want 1 (detect only)", ran)
	}
	if len(exec.calls) != 1 || !strings.HasPrefix(exec.calls[0], "detect/") {
		t.Errorf("calls = %v", exec.calls)
	}
	if l.Buffer().Len() != 0 {
		t.Error("negative input not removed")
	}
}

func TestPreFilteredCapturesTrainLambdaOnly(t *testing.T) {
	clock := &fakeClock{}
	app := device.Apollo4().PersonDetectionApp()
	exec := &scriptedExecutor{clock: clock, positives: map[uint64]bool{}}
	l := newLoop(t, exec, clock, app)
	if l.OnCapture(false, false) {
		t.Error("pre-filtered capture reported as stored")
	}
	if l.Buffer().Len() != 0 {
		t.Error("pre-filtered capture entered the buffer")
	}
	if ok, _ := l.Step(); ok {
		t.Error("Step ran a job with an empty buffer")
	}
}

func TestBufferOverflowCounted(t *testing.T) {
	clock := &fakeClock{}
	app := device.Apollo4().PersonDetectionApp()
	exec := &scriptedExecutor{clock: clock, positives: map[uint64]bool{}}
	l := newLoop(t, exec, clock, app)
	for i := 0; i < 12; i++ {
		l.OnCapture(true, true)
	}
	if l.Dropped != 2 {
		t.Errorf("Dropped = %d, want 2", l.Dropped)
	}
}

func TestExecutorErrorPropagates(t *testing.T) {
	clock := &fakeClock{}
	app := device.Apollo4().PersonDetectionApp()
	exec := &scriptedExecutor{clock: clock, fail: true}
	l := newLoop(t, exec, clock, app)
	l.OnCapture(true, true)
	if _, err := l.Step(); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("Step error = %v, want executor failure", err)
	}
}

// Under pressure the controller's decisions flow through: flood the buffer
// at low power and verify degraded options reach the executor.
func TestDegradationReachesExecutor(t *testing.T) {
	clock := &fakeClock{}
	app := device.Apollo4().PersonDetectionApp()
	exec := &scriptedExecutor{clock: clock, positives: map[uint64]bool{}}
	rt, err := core.New(core.Config{App: app, CapturePeriod: 1})
	if err != nil {
		t.Fatal(err)
	}
	l, err := New(Config{
		App: app, Controller: rt, Executor: exec,
		BufferCapacity: 10,
		Now:            clock.now,
		MeasurePower:   func() float64 { return 0.001 }, // 1 mW: charge-bound
	})
	if err != nil {
		t.Fatal(err)
	}
	// Teach λ ≈ 1 and fill the buffer.
	for i := 0; i < 32; i++ {
		l.OnCapture(true, true)
		clock.t++
	}
	if _, err := l.Drain(5); err != nil {
		t.Fatal(err)
	}
	degraded := false
	for _, c := range exec.calls {
		if strings.HasSuffix(c, "@lenet") || strings.HasSuffix(c, "@single-byte") {
			degraded = true
		}
	}
	if !degraded {
		t.Errorf("no degraded option reached the executor under pressure: %v", exec.calls)
	}
}

var _ Executor = ExecutorFunc(nil)
