package policy

import (
	"fmt"
	"sort"

	"quetzal/internal/buffer"
	"quetzal/internal/core"
	"quetzal/internal/model"
	"quetzal/internal/window"
)

// EnSuRe is a k-fault backup-window scheduler in the style of the EnSuRe
// real-time scheduler: pending inputs get pseudo-deadlines (capture time
// plus the time the buffer takes to fill at the tracked arrival rate),
// primaries run earliest-deadline-first, and each deadline reserves a
// backup window — slack sized to re-execute the k largest high-quality
// executions among the inputs due by then (BB overloading: the k backup
// slots share one reserved region rather than each fault reserving its
// own). An input runs at high quality only while its primary finishes
// before its backup window opens; once the reserved slack would be eaten,
// the input runs degraded — trading quality for the guarantee that a
// burst of k re-executions still meets the remaining deadlines.
//
// PlanBackups/FaultFreeFeasible expose the window arithmetic for direct
// property testing (reserved slack ≥ the k largest re-execution times;
// fault-free schedules meet every deadline).
type EnSuRe struct {
	app     *model.App
	arrival *window.RateTracker
	period  float64
	k       int

	items []EnSuReItem // scratch, reused across decisions
}

// DefaultEnSuReFaults is the registry's k: the backup slack covers up to
// two high-quality re-executions per window.
const DefaultEnSuReFaults = 2

// maxDeadlineSlack caps the pseudo-deadline horizon when the tracked
// arrival rate approaches zero (an idle window means no overflow pressure;
// an unbounded deadline would lose float precision for nothing).
const maxDeadlineSlack = 1e6 // seconds

// EnSuReItem is one schedulable unit handed to the backup planner.
type EnSuReItem struct {
	ID       int     // caller's identifier (buffer index)
	Deadline float64 // absolute completion deadline, seconds
	Exec     float64 // high-quality (re-)execution time, seconds
}

// BackupWindow is the reserved re-execution region for one item.
type BackupWindow struct {
	ID       int
	Start    float64 // deadline − reserved slack
	Deadline float64
	Exec     float64 // the item's high-quality execution time
}

// NewEnSuRe builds the strategy. capturePeriod (seconds) sets the
// arrival-rate tracker's clock; k is the number of faults the backup
// windows must absorb (k ≥ 1).
func NewEnSuRe(app *model.App, capturePeriod float64, k int) (*EnSuRe, error) {
	if app == nil {
		return nil, fmt.Errorf("policy: ensure: app is required")
	}
	if err := app.Validate(); err != nil {
		return nil, err
	}
	if capturePeriod <= 0 {
		return nil, fmt.Errorf("policy: ensure: capture period must be positive, got %g", capturePeriod)
	}
	if k < 1 {
		return nil, fmt.Errorf("policy: ensure: k must be at least 1, got %d", k)
	}
	return &EnSuRe{
		app:     app,
		arrival: window.NewRateTracker(window.DefaultArrivalWindow, capturePeriod, 0.5),
		period:  capturePeriod,
		k:       k,
	}, nil
}

// Name implements Strategy.
func (e *EnSuRe) Name() string { return EnSuReName }

// ObserveCapture implements Strategy.
func (e *EnSuRe) ObserveCapture(stored bool) { e.arrival.Observe(stored) }

// Feedback implements Strategy (deadlines are re-derived every decision).
func (e *EnSuRe) Feedback(core.Feedback) {}

// DecisionCost implements Strategy: one ratio per task (the service
// estimates) plus one per pending input (the deadline sort is comparisons,
// the window arithmetic one multiply-add each).
func (e *EnSuRe) DecisionCost() (int, bool) {
	n := 0
	for _, j := range e.app.Jobs {
		n += len(j.Tasks)
	}
	return n + e.k, false
}

// Decide implements Strategy: earliest pseudo-deadline first, degraded
// once the primary would run into its backup window.
func (e *EnSuRe) Decide(env core.Env, buf *buffer.Buffer) (core.Decision, bool) {
	n := buf.Len()
	if n == 0 {
		return core.Decision{BufferIndex: -1, JobID: -1}, false
	}

	// Pseudo-deadline slack: the time the buffer takes to fill at the
	// tracked arrival rate — past it, holding this input risks an IBO.
	slack := maxDeadlineSlack
	if lam := e.arrival.Lambda(); lam > 0 {
		if s := float64(env.BufferCap) / lam; s < slack {
			slack = s
		}
	}

	e.items = e.items[:0]
	selected := -1
	var selJob *model.Job
	for i := 0; i < n; i++ {
		in, err := buf.At(i)
		if err != nil {
			continue
		}
		job := e.app.JobByID(in.JobID)
		if job == nil {
			continue
		}
		it := EnSuReItem{
			ID:       i,
			Deadline: in.CapturedAt + slack,
			Exec:     serviceAt(job, -1, 0, env.InputPower),
		}
		e.items = append(e.items, it)
		if selected < 0 || it.Deadline < e.items[indexOf(e.items, selected)].Deadline {
			selected = i
			selJob = job
		}
	}
	if selected < 0 {
		return core.Decision{BufferIndex: -1, JobID: -1}, false
	}

	windows := PlanBackups(e.items, e.k)
	start := 0.0
	for _, w := range windows {
		if w.ID == selected {
			start = w.Start
			break
		}
	}

	di, nOpts := degradableOptions(selJob)
	choice := 0
	if di >= 0 && nOpts > 1 && env.Now+serviceAt(selJob, di, 0, env.InputPower) > start {
		choice = nOpts - 1 // primary would eat the reserved backup slack
	}
	dec := core.Decision{
		BufferIndex: selected,
		JobID:       selJob.ID,
		Options:     make([]int, len(selJob.Tasks)),
		PredictedS:  serviceAt(selJob, di, choice, env.InputPower),
	}
	dec.ModelS = dec.PredictedS
	if choice > 0 {
		dec.Options[di] = choice
		dec.Degraded = true
	}
	return dec, true
}

// indexOf finds the items slot whose ID is id (items are appended in
// buffer order, but stale-tag skips can shift positions).
func indexOf(items []EnSuReItem, id int) int {
	for i, it := range items {
		if it.ID == id {
			return i
		}
	}
	return 0
}

// PlanBackups computes each item's backup window. Items are taken in
// deadline-ascending order (ties by ID); item i's reserved slack is the sum
// of the min(k, i+1) largest high-quality execution times among the items
// due no later than it, and its backup window starts at deadline − slack.
// The input slice is not modified.
func PlanBackups(items []EnSuReItem, k int) []BackupWindow {
	if k < 1 {
		k = 1
	}
	sorted := append([]EnSuReItem(nil), items...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Deadline != sorted[j].Deadline {
			return sorted[i].Deadline < sorted[j].Deadline
		}
		return sorted[i].ID < sorted[j].ID
	})
	out := make([]BackupWindow, len(sorted))
	top := make([]float64, 0, k) // k largest Exec over the prefix, ascending
	for i, it := range sorted {
		// Insert it.Exec, keeping the k largest.
		pos := sort.SearchFloat64s(top, it.Exec)
		if len(top) < k {
			top = append(top, 0)
			copy(top[pos+1:], top[pos:])
			top[pos] = it.Exec
		} else if pos > 0 {
			copy(top[:pos-1], top[1:pos])
			top[pos-1] = it.Exec
		}
		reserve := 0.0
		for _, v := range top {
			reserve += v
		}
		out[i] = BackupWindow{ID: it.ID, Start: it.Deadline - reserve, Deadline: it.Deadline, Exec: it.Exec}
	}
	return out
}

// FaultFreeFeasible reports whether the deadline-ordered primaries, run
// back-to-back from now, each finish before their backup window opens —
// the admission condition under which the fault-free schedule provably
// meets every deadline while keeping k re-executions' worth of slack in
// reserve.
func FaultFreeFeasible(items []EnSuReItem, k int, now float64) bool {
	t := now
	for _, w := range PlanBackups(items, k) {
		t += w.Exec
		if t > w.Start {
			return false
		}
	}
	return true
}
