package policy

import (
	"fmt"

	"quetzal/internal/baseline"
	"quetzal/internal/core"
	"quetzal/internal/model"
	"quetzal/internal/sched"
	"quetzal/internal/trace"
)

// Canonical policy names. These are the system ids the whole harness
// accepts — experiments figures, the run-plan/KeySpec layer, simgen's
// generated dimension, the fleet layer and every cmd -policy/-system flag.
const (
	Quetzal        = "qz"
	QuetzalDiv     = "qz-div"     // exact-division estimator (no hardware module)
	QuetzalAvg     = "qz-avg"     // Avg-S_e2e estimator (§7.3)
	QuetzalFCFS    = "qz-fcfs"    // IBO engine with FCFS scheduling (Fig 12)
	QuetzalLCFS    = "qz-lcfs"    // IBO engine with LCFS scheduling (Fig 12)
	QuetzalCapture = "qz-capture" // IBO engine with capture-order scheduling (Fig 12)
	QuetzalNoPID   = "qz-nopid"   // ablation: PID disabled
	QuetzalNoIBO   = "qz-noibo"   // ablation: pure Energy-aware SJF, no degradation
	NoAdapt        = "na"
	AlwaysDegrade  = "ad"
	CatNap         = "cn"
	PZO            = "pzo"
	PZI            = "pzi"
	Ideal          = "ideal" // NoAdapt with an effectively infinite buffer

	// Competitor strategies (post-paper, implemented against Strategy).
	MDPName        = "mdp"        // finite-horizon value iteration (arXiv 2510.23820 family)
	EnSuReName     = "ensure"     // k-fault backup-window scheduling (EnSuRe)
	InterweaveName = "interweave" // greedy throughput interweaving (arXiv 2212.07002 family)
)

// DefaultDatasheetMaxWatts is the 6-cell harvester's datasheet maximum
// output — the oracle-free threshold source the PZO baseline uses (§6.1).
const DefaultDatasheetMaxWatts = 0.5

// IdealBufferCapacity is the "infinite" buffer the Ideal system simulates
// with when it is not computed analytically.
const IdealBufferCapacity = 1 << 20

// Context carries everything a policy builder may need. App is required;
// Power and Events are required only by policies that derive thresholds
// from the trace (PZI). Zero-valued knobs mean "use the defaults".
type Context struct {
	App    *model.App
	Power  trace.PowerTrace  // pzi only: observed-maximum threshold source
	Events *trace.EventTrace // pzi only: observation horizon

	CapturePeriod float64 // seconds between captures; 0 → 1
	TaskWindow    int     // quetzal bit-vector windows; 0 → defaults
	ArrivalWindow int

	// DatasheetMaxWatts overrides the PZO threshold source; 0 → the
	// DefaultDatasheetMaxWatts harvester.
	DatasheetMaxWatts float64
}

func (c Context) capturePeriod() float64 {
	if c.CapturePeriod > 0 {
		return c.CapturePeriod
	}
	return 1
}

// Spec is one registry entry.
type Spec struct {
	Name string
	Doc  string // one-line description for listings
	// BufferCapacity, when non-zero, overrides the device profile's input
	// buffer capacity (the Ideal system's "infinite" buffer).
	BufferCapacity int
	Build          func(Context) (core.Controller, error)
}

// quetzal builds the Quetzal runtime with an optional config mutation. The
// returned controller is the unwrapped *core.Runtime: the engine
// type-asserts it for the golden-pinned "pid" event-log line.
func quetzal(mutate func(*core.Config)) func(Context) (core.Controller, error) {
	return func(ctx Context) (core.Controller, error) {
		cfg := core.Config{
			App:           ctx.App,
			CapturePeriod: ctx.capturePeriod(),
			TaskWindow:    ctx.TaskWindow,
			ArrivalWindow: ctx.ArrivalWindow,
		}
		if mutate != nil {
			mutate(&cfg)
		}
		return core.New(cfg)
	}
}

// registry is the ordered policy table; order is the deterministic Names()
// order. The fixed-NN family is parameterized and resolved by Lookup.
var registry = []Spec{
	{Name: Quetzal, Doc: "Energy-aware SJF + IBO engine + PID (the paper's full design)",
		Build: quetzal(nil)},
	{Name: QuetzalDiv, Doc: "quetzal with exact-division S_e2e (no hardware module)",
		Build: quetzal(func(c *core.Config) { c.Kind = core.ExactDivision })},
	{Name: QuetzalAvg, Doc: "quetzal with the Avg-S_e2e estimator (§7.3)",
		Build: quetzal(func(c *core.Config) { c.Kind = core.AveragedSe2e })},
	{Name: QuetzalFCFS, Doc: "IBO engine with FCFS scheduling (Fig 12)",
		Build: quetzal(func(c *core.Config) { c.Policy = sched.FCFS{} })},
	{Name: QuetzalLCFS, Doc: "IBO engine with LCFS scheduling (Fig 12)",
		Build: quetzal(func(c *core.Config) { c.Policy = sched.LCFS{} })},
	{Name: QuetzalCapture, Doc: "IBO engine with capture-order scheduling (Fig 12)",
		Build: quetzal(func(c *core.Config) { c.Policy = sched.CaptureOrder{} })},
	{Name: QuetzalNoPID, Doc: "ablation: PID prediction-error correction disabled",
		Build: quetzal(func(c *core.Config) { c.DisablePID = true })},
	{Name: QuetzalNoIBO, Doc: "ablation: pure Energy-aware SJF, no degradation",
		Build: quetzal(func(c *core.Config) { c.DisableIBOEngine = true })},
	{Name: NoAdapt, Doc: "highest quality always, FCFS (most prior systems)",
		Build: func(ctx Context) (core.Controller, error) { return baseline.NoAdapt(ctx.App) }},
	{Name: AlwaysDegrade, Doc: "lowest quality always",
		Build: func(ctx Context) (core.Controller, error) { return baseline.AlwaysDegrade(ctx.App) }},
	{Name: CatNap, Doc: "degrade only once the buffer is 100% full",
		Build: func(ctx Context) (core.Controller, error) { return baseline.CatNap(ctx.App) }},
	{Name: PZO, Doc: "Protean/Zygarde threshold from the harvester datasheet maximum",
		Build: func(ctx Context) (core.Controller, error) {
			max := ctx.DatasheetMaxWatts
			if max == 0 {
				max = DefaultDatasheetMaxWatts
			}
			return baseline.PZO(ctx.App, max)
		}},
	{Name: PZI, Doc: "idealised Protean/Zygarde: threshold from the trace's observed maximum",
		Build: func(ctx Context) (core.Controller, error) {
			if ctx.Power == nil || ctx.Events == nil {
				return nil, fmt.Errorf("policy: %s needs the power and event traces (oracular threshold)", PZI)
			}
			return baseline.PZI(ctx.App, trace.MaxPower(ctx.Power, ctx.Events.Duration(), 1))
		}},
	{Name: Ideal, Doc: "NoAdapt with an effectively infinite buffer",
		BufferCapacity: IdealBufferCapacity,
		Build:          func(ctx Context) (core.Controller, error) { return baseline.NoAdapt(ctx.App) }},
	{Name: MDPName, Doc: "finite-horizon value iteration over quantized store × buffer occupancy",
		Build: func(ctx Context) (core.Controller, error) {
			s, err := NewMDP(ctx.App, ctx.capturePeriod())
			if err != nil {
				return nil, err
			}
			return Adapt(s), nil
		}},
	{Name: EnSuReName, Doc: "k-fault backup-window scheduling: deadline-sorted with reserved re-execution slack",
		Build: func(ctx Context) (core.Controller, error) {
			s, err := NewEnSuRe(ctx.App, ctx.capturePeriod(), DefaultEnSuReFaults)
			if err != nil {
				return nil, err
			}
			return Adapt(s), nil
		}},
	{Name: InterweaveName, Doc: "greedy throughput interweaver: min-service-time capture, never idles",
		Build: func(ctx Context) (core.Controller, error) {
			s, err := NewInterweave(ctx.App)
			if err != nil {
				return nil, err
			}
			return Adapt(s), nil
		}},
}

// Names returns every non-parameterized registered policy name in the
// registry's deterministic order (the parameterized fixed-NN family is
// accepted by Lookup/Build but not enumerated).
func Names() []string {
	out := make([]string, len(registry))
	for i, s := range registry {
		out[i] = s.Name
	}
	return out
}

// FixedThresholdID names the fixed-buffer-threshold policy at the given
// occupancy fraction (e.g. 0.25 → "fixed-25").
func FixedThresholdID(frac float64) string {
	return fmt.Sprintf("fixed-%d", int(frac*100+0.5))
}

// fixedPct parses a "fixed-NN" id; ok is false unless 1 ≤ NN ≤ 100 and the
// id round-trips exactly ("fixed-007" and "fixed-25x" are rejected, not
// leniently parsed — two spellings of one policy would split the run cache
// and the sha256 run-id space).
func fixedPct(name string) (int, bool) {
	var pct int
	if n, _ := fmt.Sscanf(name, "fixed-%d", &pct); n != 1 || pct <= 0 || pct > 100 {
		return 0, false
	}
	return pct, FixedThresholdID(float64(pct)/100) == name
}

// Lookup resolves a policy name to its Spec. Parameterized fixed-NN names
// resolve to a synthesized Spec.
func Lookup(name string) (Spec, bool) {
	for _, s := range registry {
		if s.Name == name {
			return s, true
		}
	}
	if pct, ok := fixedPct(name); ok {
		frac := float64(pct) / 100
		return Spec{
			Name: name,
			Doc:  fmt.Sprintf("degrade at %d%% buffer occupancy", pct),
			Build: func(ctx Context) (core.Controller, error) {
				return baseline.Threshold(ctx.App, frac)
			},
		}, true
	}
	return Spec{}, false
}

// Known reports whether name resolves to a registered policy.
func Known(name string) bool {
	_, ok := Lookup(name)
	return ok
}

// Build constructs the named policy's controller. The returned buffer
// capacity is 0 (profile default) except for policies that demand a
// specific one (Ideal); it mirrors the Spec's BufferCapacity.
func Build(name string, ctx Context) (core.Controller, int, error) {
	spec, ok := Lookup(name)
	if !ok {
		return nil, 0, fmt.Errorf("policy: unknown policy %q", name)
	}
	if ctx.App == nil {
		return nil, 0, fmt.Errorf("policy: Context.App is required")
	}
	ctl, err := spec.Build(ctx)
	if err != nil {
		return nil, 0, err
	}
	return ctl, spec.BufferCapacity, nil
}
