package policy

import (
	"fmt"

	"quetzal/internal/buffer"
	"quetzal/internal/circuit"
	"quetzal/internal/core"
	"quetzal/internal/model"
	"quetzal/internal/window"
)

// MDP is a finite-horizon value-iteration energy-aware scheduler in the
// style of MDP-based task scheduling for energy-harvesting nodes (arXiv
// 2510.23820): the decision state is the quantized energy-store level × the
// input-buffer occupancy, the actions are the degradable task's quality
// options, and the reward trades delivered quality against predicted buffer
// overflow. Inputs are served FCFS (the MDP chooses *how well* to process,
// the dominant energy lever); per decision the policy evaluates H epochs of
// lookahead with deterministic dynamics:
//
//	store' = clamp(store − E(a) + P_in·S(a))
//	occ'   = clamp(occ − 1 + λ·S(a))   (excess beyond the capacity is the
//	                                    overflow penalty)
//
// Input power is quantized through the hardware module's ADC code (the same
// log-domain levels Algorithm 3 uses) and λ through a fixed grid, so the
// value function is computed once per observed (power, rate) cell and
// memoized — the per-decision cost is a table lookup, with the planning
// cost amortized across the run.
//
// The policy never knowingly overcommits the store: when the chosen
// option's execution energy exceeds the usable store energy and some other
// option fits, the highest-quality fitting option runs instead (pinned by
// TestMDPNeverOvercommitsStore).
type MDP struct {
	app     *model.App
	arrival *window.RateTracker
	module  *circuit.Module
	period  float64

	memo map[mdpKey][]uint8 // state → best option, per quantized (job, power, λ)
}

const (
	mdpHorizon     = 8    // lookahead epochs
	mdpStoreLevels = 12   // energy-store quantization
	mdpLamLevels   = 16   // stored-fraction quantization
	mdpDiscount    = 0.9  // per-epoch discount
	mdpOverflowW   = 2.0  // penalty per predicted overflowed input
	mdpInfeasibleW = 10.0 // penalty for overcommitting the store in-plan
)

// mdpKey identifies one memoized value table.
type mdpKey struct {
	jobID  int
	pin    uint8 // hardware-module ADC code of the input power
	lam    int   // stored-fraction grid cell
	bufCap int
}

// NewMDP builds the MDP strategy for the app. capturePeriod (seconds) sets
// the arrival-rate tracker's clock.
func NewMDP(app *model.App, capturePeriod float64) (*MDP, error) {
	if app == nil {
		return nil, fmt.Errorf("policy: mdp: app is required")
	}
	if err := app.Validate(); err != nil {
		return nil, err
	}
	if capturePeriod <= 0 {
		return nil, fmt.Errorf("policy: mdp: capture period must be positive, got %g", capturePeriod)
	}
	return &MDP{
		app:     app,
		arrival: window.NewRateTracker(window.DefaultArrivalWindow, capturePeriod, 0.5),
		module:  circuit.New(circuit.DefaultConfig()),
		period:  capturePeriod,
		memo:    map[mdpKey][]uint8{},
	}, nil
}

// Name implements Strategy.
func (m *MDP) Name() string { return MDPName }

// ObserveCapture implements Strategy.
func (m *MDP) ObserveCapture(stored bool) { m.arrival.Observe(stored) }

// Feedback implements Strategy (the value function is model-based, not
// learned from feedback).
func (m *MDP) Feedback(core.Feedback) {}

// DecisionCost implements Strategy: the FCFS scan plus the state lookup is
// one ratio per task plus one per option of the degradable task — the same
// order as the Quetzal runtime; the value-iteration itself is memoized per
// quantized (power, λ) cell and amortizes to noise.
func (m *MDP) DecisionCost() (int, bool) {
	n, maxOpts := 0, 0
	for _, j := range m.app.Jobs {
		n += len(j.Tasks)
		if di := j.DegradableTask(); di >= 0 && len(j.Tasks[di].Options) > maxOpts {
			maxOpts = len(j.Tasks[di].Options)
		}
	}
	return n + maxOpts, false
}

// ReplaySensitive implements core.ReplaySensitive: decisions read the
// store level, which the lockstep crawl-regime classifier does not freeze.
func (m *MDP) ReplaySensitive() bool { return true }

// Decide implements Strategy.
func (m *MDP) Decide(env core.Env, buf *buffer.Buffer) (core.Decision, bool) {
	if buf.Len() == 0 {
		return core.Decision{BufferIndex: -1, JobID: -1}, false
	}
	in, err := buf.Peek()
	if err != nil {
		return core.Decision{BufferIndex: -1, JobID: -1}, false
	}
	job := m.app.JobByID(in.JobID)
	if job == nil {
		return core.Decision{BufferIndex: -1, JobID: -1}, false
	}
	choice := m.Choose(env, job)
	di, _ := degradableOptions(job)
	dec := core.Decision{
		BufferIndex: 0,
		JobID:       job.ID,
		Options:     make([]int, len(job.Tasks)),
		PredictedS:  serviceAt(job, di, choice, env.InputPower),
	}
	dec.ModelS = dec.PredictedS
	if di >= 0 && choice > 0 {
		dec.Options[di] = choice
		dec.Degraded = true
	}
	return dec, true
}

// Choose returns the quality option the MDP selects for job in env: the
// value-table action at the current (store level, occupancy) state, demoted
// to the highest-quality energy-feasible option when the table's choice
// would overcommit the store and a feasible option exists.
func (m *MDP) Choose(env core.Env, job *model.Job) int {
	di, nOpts := degradableOptions(job)
	if nOpts <= 1 {
		return 0
	}
	pinCode := m.module.CodeForPower(env.InputPower)
	pinQ := m.module.PowerForCode(pinCode)
	frac := m.arrival.StoredFraction()
	lamCell := int(frac * float64(mdpLamLevels))
	if lamCell >= mdpLamLevels {
		lamCell = mdpLamLevels - 1
	}
	cap := env.BufferCap
	if cap < 1 {
		cap = 1
	}
	key := mdpKey{jobID: job.ID, pin: pinCode, lam: lamCell, bufCap: cap}
	table, ok := m.memo[key]
	if !ok {
		lamQ := (float64(lamCell) + 0.5) / float64(mdpLamLevels) / m.period
		table = m.solve(job, di, nOpts, pinQ, lamQ, cap, env.StoreCapacity)
		m.memo[key] = table
	}

	level := storeLevel(env.StoreEnergy, env.StoreCapacity)
	occ := env.BufferLen
	if occ > cap {
		occ = cap
	}
	choice := int(table[level*(cap+1)+occ])

	// Feasibility filter: never overcommit the store when an option fits.
	if energyAt(job, di, choice) > env.StoreEnergy {
		for a := 0; a < nOpts; a++ {
			if energyAt(job, di, a) <= env.StoreEnergy {
				return a // highest-quality fitting option
			}
		}
	}
	return choice
}

// storeLevel quantizes usable store energy into mdpStoreLevels cells.
func storeLevel(energy, capacity float64) int {
	if capacity <= 0 || energy <= 0 {
		return 0
	}
	l := int(energy / capacity * mdpStoreLevels)
	if l >= mdpStoreLevels {
		l = mdpStoreLevels - 1
	}
	return l
}

// solve runs finite-horizon value iteration for one quantized (power, λ)
// cell and returns the greedy action per (store level, occupancy) state.
// All arithmetic is plain float64 on quantized inputs, so the table is a
// pure function of its key — decisions replay bit-identically across
// engines.
func (m *MDP) solve(job *model.Job, di, nOpts int, pinQ, lamQ float64, bufCap int, storeCap float64) []uint8 {
	if storeCap <= 0 {
		storeCap = 1e-3 // degenerate store: plan over a nominal 1 mJ span
	}
	nStates := mdpStoreLevels * (bufCap + 1)
	value := make([]float64, nStates)
	next := make([]float64, nStates)
	best := make([]uint8, nStates)

	// Per-action service time, energy and quality reward at this power.
	svc := make([]float64, nOpts)
	nrg := make([]float64, nOpts)
	qual := make([]float64, nOpts)
	for a := 0; a < nOpts; a++ {
		svc[a] = serviceAt(job, di, a, pinQ)
		nrg[a] = energyAt(job, di, a)
		qual[a] = 1 - float64(a)/float64(nOpts)
	}

	for h := 0; h < mdpHorizon; h++ {
		for level := 0; level < mdpStoreLevels; level++ {
			e := (float64(level) + 0.5) / mdpStoreLevels * storeCap
			for occ := 0; occ <= bufCap; occ++ {
				idx := level*(bufCap+1) + occ
				bestVal := 0.0
				bestAct := uint8(0)
				for a := 0; a < nOpts; a++ {
					gain := pinQ * svc[a]
					// Store transition.
					ne := e - nrg[a] + gain
					if ne < 0 {
						ne = 0
					}
					if ne > storeCap {
						ne = storeCap
					}
					// Occupancy transition: one served, λ·S arriving.
					nb := float64(occ) - 1 + lamQ*svc[a]
					if nb < 0 {
						nb = 0
					}
					overflow := 0.0
					if nb > float64(bufCap) {
						overflow = nb - float64(bufCap)
						nb = float64(bufCap)
					}
					r := qual[a] - mdpOverflowW*overflow
					if nrg[a] > e+gain {
						// In-plan infeasibility: the store cannot supply the
						// option even counting harvest during the run.
						r -= mdpInfeasibleW
					}
					nl := storeLevel(ne, storeCap)
					no := int(nb + 0.5)
					if no > bufCap {
						no = bufCap
					}
					val := r + mdpDiscount*value[nl*(bufCap+1)+no]
					if a == 0 || val > bestVal {
						bestVal = val
						bestAct = uint8(a)
					}
				}
				next[idx] = bestVal
				best[idx] = bestAct
			}
		}
		value, next = next, value
	}
	return best
}
