package policy

import (
	"fmt"

	"quetzal/internal/buffer"
	"quetzal/internal/core"
	"quetzal/internal/model"
)

// Interweave is a greedy throughput interweaver in the style of
// task-interweaving schedulers for intermittently-powered nodes (arXiv
// 2212.07002 family): whenever any captured input is pending it picks, over
// every (buffered input × quality option) pair, the assignment with the
// smallest end-to-end service time among those the energy budget can
// interleave — execution energy covered by the store plus the harvest that
// arrives while the job runs. Feasible assignments beat infeasible ones;
// within a class, strictly smaller service time wins and ties keep the
// earliest (lowest buffer index, then highest quality), so decisions are
// deterministic. It never idles on a runnable capture: if no assignment is
// energy-feasible it still dispatches the fastest one rather than waiting
// (pinned by TestInterweaveNeverIdles).
type Interweave struct {
	app *model.App
}

// NewInterweave builds the strategy.
func NewInterweave(app *model.App) (*Interweave, error) {
	if app == nil {
		return nil, fmt.Errorf("policy: interweave: app is required")
	}
	if err := app.Validate(); err != nil {
		return nil, err
	}
	return &Interweave{app: app}, nil
}

// Name implements Strategy.
func (w *Interweave) Name() string { return InterweaveName }

// ObserveCapture implements Strategy (the interweaver is stateless).
func (w *Interweave) ObserveCapture(bool) {}

// Feedback implements Strategy.
func (w *Interweave) Feedback(core.Feedback) {}

// DecisionCost implements Strategy: the scan computes one service/energy
// estimate per (job, option) pair.
func (w *Interweave) DecisionCost() (int, bool) {
	n := 0
	for _, j := range w.app.Jobs {
		_, nOpts := degradableOptions(j)
		n += len(j.Tasks) * nOpts
	}
	return n, false
}

// ReplaySensitive implements core.ReplaySensitive: feasibility reads the
// store level, which the lockstep crawl-regime classifier does not freeze.
func (w *Interweave) ReplaySensitive() bool { return true }

// Decide implements Strategy.
func (w *Interweave) Decide(env core.Env, buf *buffer.Buffer) (core.Decision, bool) {
	n := buf.Len()
	if n == 0 {
		return core.Decision{BufferIndex: -1, JobID: -1}, false
	}
	bestIdx, bestOpt := -1, 0
	var bestJob *model.Job
	bestS, bestFeasible := 0.0, false
	for i := 0; i < n; i++ {
		in, err := buf.At(i)
		if err != nil {
			continue
		}
		job := w.app.JobByID(in.JobID)
		if job == nil {
			continue
		}
		di, nOpts := degradableOptions(job)
		for a := 0; a < nOpts; a++ {
			s := serviceAt(job, di, a, env.InputPower)
			feasible := energyAt(job, di, a) <= env.StoreEnergy+env.InputPower*s
			if bestIdx >= 0 {
				if bestFeasible && !feasible {
					continue
				}
				if feasible == bestFeasible && s >= bestS {
					continue
				}
			}
			bestIdx, bestOpt, bestJob, bestS, bestFeasible = i, a, job, s, feasible
		}
	}
	if bestIdx < 0 {
		return core.Decision{BufferIndex: -1, JobID: -1}, false
	}
	di, _ := degradableOptions(bestJob)
	dec := core.Decision{
		BufferIndex: bestIdx,
		JobID:       bestJob.ID,
		Options:     make([]int, len(bestJob.Tasks)),
		PredictedS:  bestS,
	}
	dec.ModelS = bestS
	if di >= 0 && bestOpt > 0 {
		dec.Options[di] = bestOpt
		dec.Degraded = true
	}
	return dec, true
}
