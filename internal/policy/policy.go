// Package policy is the controller registry and strategy layer: every
// decision-making "brain" the simulator can drive — the Quetzal runtime
// (Algorithms 1/2), its estimator/scheduling/ablation variants, the paper's
// comparison baselines, and the post-paper competitor strategies (MDP
// value iteration, EnSuRe backup windows, greedy interweaving) — is
// constructed through one deterministic name registry.
//
// Two kinds of entry coexist:
//
//   - Wrapped existing controllers: the registry builds core.Runtime and
//     internal/baseline controllers exactly as the experiment harness always
//     did (the quetzal entries return the unwrapped *core.Runtime, which the
//     engine type-asserts for PID event-log lines — golden traces depend on
//     it).
//   - Strategies: new brains implement the small Strategy interface below
//     and are adapted to core.Controller by Adapt. A Strategy makes the
//     scheduling decision (which buffered input) and the degradation/
//     clearing decision (which quality option per task) in one Decide call,
//     and declares its per-decision energy charge through DecisionCost.
//
// The registry is the single source of policy names: experiments.Setup,
// engine.Config.Policy, simgen's generated dimension, the fleet layer and
// the KeySpec/FleetSpec validation gates all resolve through it, so adding
// a brain here makes it reachable from every harness surface at once.
package policy

import (
	"quetzal/internal/buffer"
	"quetzal/internal/core"
)

// Strategy is the interface new policies implement. It mirrors
// core.Controller but folds the scheduling and degradation decisions into
// one call and names the decision's energy cost explicitly; Adapt turns a
// Strategy into a core.Controller the engine can drive.
type Strategy interface {
	Name() string
	// Decide combines the scheduling decision (which buffered input runs
	// next) with the degradation/clearing decision (the per-task option
	// assignment). ok is false when nothing is runnable.
	Decide(env core.Env, buf *buffer.Buffer) (core.Decision, bool)
	// ObserveCapture records whether a captured frame was stored, feeding
	// arrival-rate trackers.
	ObserveCapture(stored bool)
	// Feedback reports a completed job execution.
	Feedback(fb core.Feedback)
	// DecisionCost is the per-decision energy charge, expressed in the same
	// units core.Controller.RatioOps uses: equivalent P_exe/P_in ratio
	// computations per Decide call, and whether the hardware module
	// performs them. The host charges the corresponding time and energy
	// before every invocation.
	DecisionCost() (ops int, usesModule bool)
}

// adapted wraps a Strategy as a core.Controller.
type adapted struct{ s Strategy }

// Adapt turns a Strategy into a core.Controller.
func Adapt(s Strategy) core.Controller { return adapted{s} }

func (a adapted) Name() string { return a.s.Name() }

func (a adapted) NextJob(env core.Env, buf *buffer.Buffer) (core.Decision, bool) {
	return a.s.Decide(env, buf)
}

func (a adapted) ObserveCapture(stored bool) { a.s.ObserveCapture(stored) }

func (a adapted) OnJobComplete(fb core.Feedback) { a.s.Feedback(fb) }

func (a adapted) RatioOps() (int, bool) { return a.s.DecisionCost() }

// ReplaySensitive forwards the strategy's marker (see core.ReplaySensitive):
// the lockstep crawl replay must not engage for strategies whose decisions
// read state the crawl-regime classifier does not freeze.
func (a adapted) ReplaySensitive() bool {
	rs, ok := a.s.(core.ReplaySensitive)
	return ok && rs.ReplaySensitive()
}
