package policy

import (
	"strings"
	"testing"

	"quetzal/internal/core"
	"quetzal/internal/device"
	"quetzal/internal/trace"
)

func testContext() Context {
	events := trace.GenerateEvents(trace.DefaultEventConfig(5, 20, 1))
	return Context{
		App:    device.Apollo4().PersonDetectionApp(),
		Power:  trace.Constant{P: 0.02},
		Events: events,
	}
}

// TestLookupRejects pins the registry's reject behavior: unknown names,
// near-miss spellings of the fixed-NN family, and case/whitespace variants
// must all fail, mirroring the strictness of ParseEngineKind — two spellings
// of one policy would split the run cache and the sha256 run-id space.
func TestLookupRejects(t *testing.T) {
	cases := []struct {
		name string
		id   string
	}{
		{name: "empty", id: ""},
		{name: "unknown", id: "magic"},
		{name: "long form", id: "quetzal"},
		{name: "upper case", id: "QZ"},
		{name: "trailing space", id: "qz "},
		{name: "leading space", id: " qz"},
		{name: "fixed zero", id: "fixed-0"},
		{name: "fixed above 100", id: "fixed-101"},
		{name: "fixed padded", id: "fixed-007"},
		{name: "fixed suffixed", id: "fixed-25x"},
		{name: "fixed negative", id: "fixed--5"},
		{name: "fixed bare", id: "fixed-"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, ok := Lookup(tc.id); ok {
				t.Fatalf("Lookup(%q) resolved, want reject", tc.id)
			}
			if Known(tc.id) {
				t.Fatalf("Known(%q) = true, want false", tc.id)
			}
			if _, _, err := Build(tc.id, testContext()); err == nil {
				t.Fatalf("Build(%q) succeeded, want error", tc.id)
			} else if !strings.Contains(err.Error(), "unknown policy") {
				t.Fatalf("Build(%q) error = %v, want 'unknown policy'", tc.id, err)
			}
		})
	}
}

// TestNamesDeterministic pins the enumeration order: it is the registry
// declaration order, stable across calls (league tables and CLI listings
// render from it).
func TestNamesDeterministic(t *testing.T) {
	a, b := Names(), Names()
	if len(a) == 0 {
		t.Fatal("Names() is empty")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Names() order unstable at %d: %q vs %q", i, a[i], b[i])
		}
	}
	if a[0] != Quetzal {
		t.Fatalf("Names()[0] = %q, want %q", a[0], Quetzal)
	}
}

// TestEveryRegisteredPolicyBuilds constructs every enumerable policy plus a
// fixed-NN sample through the one Build path the whole harness uses.
func TestEveryRegisteredPolicyBuilds(t *testing.T) {
	ids := append(Names(), "fixed-25", "fixed-1", "fixed-100")
	for _, id := range ids {
		ctl, bufCap, err := Build(id, testContext())
		if err != nil {
			t.Fatalf("Build(%q): %v", id, err)
		}
		if ctl == nil {
			t.Fatalf("Build(%q) returned nil controller", id)
		}
		if ctl.Name() == "" {
			t.Fatalf("Build(%q): empty controller name", id)
		}
		if id == Ideal && bufCap != IdealBufferCapacity {
			t.Fatalf("Build(%q) buffer capacity = %d, want %d", id, bufCap, IdealBufferCapacity)
		}
		if ops, _ := ctl.RatioOps(); ops < 0 {
			t.Fatalf("Build(%q): negative RatioOps %d", id, ops)
		}
	}
}

// TestQuetzalUnwrapped pins that the quetzal family builds the raw
// *core.Runtime, not an adapter: the engine type-asserts it for the
// golden-pinned "pid" event-log line, so wrapping would silently change
// every golden fingerprint.
func TestQuetzalUnwrapped(t *testing.T) {
	for _, id := range []string{Quetzal, QuetzalDiv, QuetzalAvg, QuetzalFCFS,
		QuetzalLCFS, QuetzalCapture, QuetzalNoPID, QuetzalNoIBO} {
		ctl, _, err := Build(id, testContext())
		if err != nil {
			t.Fatalf("Build(%q): %v", id, err)
		}
		if _, ok := ctl.(*core.Runtime); !ok {
			t.Fatalf("Build(%q) = %T, want *core.Runtime", id, ctl)
		}
	}
}

// TestBuildRequiresApp pins the one Context requirement every policy shares.
func TestBuildRequiresApp(t *testing.T) {
	if _, _, err := Build(Quetzal, Context{}); err == nil || !strings.Contains(err.Error(), "App is required") {
		t.Fatalf("Build without App: err = %v, want 'App is required'", err)
	}
}

// TestPZIRequiresTraces pins the oracular baseline's extra requirement.
func TestPZIRequiresTraces(t *testing.T) {
	ctx := testContext()
	ctx.Power, ctx.Events = nil, nil
	if _, _, err := Build(PZI, ctx); err == nil {
		t.Fatal("Build(pzi) without traces succeeded, want error")
	}
}

// TestFixedThresholdRoundTrip pins the id form used across the harness.
func TestFixedThresholdRoundTrip(t *testing.T) {
	if id := FixedThresholdID(0.25); id != "fixed-25" {
		t.Fatalf("FixedThresholdID(0.25) = %q, want fixed-25", id)
	}
	if id := FixedThresholdID(1.0); id != "fixed-100" {
		t.Fatalf("FixedThresholdID(1.0) = %q, want fixed-100", id)
	}
}

// TestReplaySensitivity pins which strategies opt out of the lockstep crawl
// replay: the store-reading ones must, EnSuRe (λ- and pin-driven only) must
// not, and the adapter must forward the marker faithfully.
func TestReplaySensitivity(t *testing.T) {
	cases := []struct {
		id   string
		want bool
	}{
		{MDPName, true},
		{InterweaveName, true},
		{EnSuReName, false},
	}
	for _, tc := range cases {
		ctl, _, err := Build(tc.id, testContext())
		if err != nil {
			t.Fatalf("Build(%q): %v", tc.id, err)
		}
		rs, ok := ctl.(core.ReplaySensitive)
		if !ok {
			t.Fatalf("Build(%q) = %T does not implement core.ReplaySensitive", tc.id, ctl)
		}
		if got := rs.ReplaySensitive(); got != tc.want {
			t.Fatalf("%s ReplaySensitive() = %v, want %v", tc.id, got, tc.want)
		}
	}
}
