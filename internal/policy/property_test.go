package policy

// Property tests for the three competitor strategies. Each pins the
// invariant named in its strategy's doc comment against randomized inputs,
// so a refactor that weakens the guarantee fails loudly with a seedable
// reproducer.

import (
	"math/rand"
	"sort"
	"testing"

	"quetzal/internal/buffer"
	"quetzal/internal/core"
	"quetzal/internal/device"
)

// TestMDPNeverOvercommitsStore: for every (store level, occupancy, power,
// rate) state, when at least one quality option's execution energy fits the
// usable store, the option the MDP selects must fit too — the feasibility
// filter beats whatever the value table prefers.
func TestMDPNeverOvercommitsStore(t *testing.T) {
	app := device.Apollo4().PersonDetectionApp()
	m, err := NewMDP(app, 1)
	if err != nil {
		t.Fatalf("NewMDP: %v", err)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		job := app.Jobs[rng.Intn(len(app.Jobs))]
		di, nOpts := degradableOptions(job)
		capJ := 0.001 + rng.Float64()*0.2
		env := core.Env{
			Now:           float64(trial),
			InputPower:    rng.Float64() * 0.1,
			BufferLen:     rng.Intn(17),
			BufferCap:     1 + rng.Intn(16),
			StoreEnergy:   rng.Float64() * capJ,
			StoreCapacity: capJ,
		}
		// Feed the tracker a random observation stream so λ cells vary.
		m.ObserveCapture(rng.Intn(2) == 0)

		choice := m.Choose(env, job)
		if choice < 0 || choice >= nOpts {
			t.Fatalf("trial %d: Choose returned %d, want [0,%d)", trial, choice, nOpts)
		}
		anyFits := false
		for a := 0; a < nOpts; a++ {
			if energyAt(job, di, a) <= env.StoreEnergy {
				anyFits = true
				break
			}
		}
		if anyFits && energyAt(job, di, choice) > env.StoreEnergy {
			t.Fatalf("trial %d: chose option %d costing %g J with only %g J usable while a fitting option exists (job %s)",
				trial, choice, energyAt(job, di, choice), env.StoreEnergy, job.Name)
		}
	}
}

// TestEnSuReBackupReserve: every planned backup window must reserve at
// least the min(k, prefix) largest high-quality re-execution times among
// the items due by its deadline — the k-fault guarantee's arithmetic.
func TestEnSuReBackupReserve(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 500; trial++ {
		k := 1 + rng.Intn(4)
		n := 1 + rng.Intn(12)
		items := make([]EnSuReItem, n)
		for i := range items {
			items[i] = EnSuReItem{
				ID:       i,
				Deadline: rng.Float64() * 100,
				Exec:     0.01 + rng.Float64()*5,
			}
		}
		windows := PlanBackups(items, k)
		if len(windows) != n {
			t.Fatalf("trial %d: %d windows for %d items", trial, len(windows), n)
		}
		// Recompute the reserve oracle: sort a copy by (deadline, id), take
		// the top-k execs over each prefix by brute force.
		sorted := append([]EnSuReItem(nil), items...)
		sort.SliceStable(sorted, func(i, j int) bool {
			if sorted[i].Deadline != sorted[j].Deadline {
				return sorted[i].Deadline < sorted[j].Deadline
			}
			return sorted[i].ID < sorted[j].ID
		})
		for i, w := range windows {
			if w.ID != sorted[i].ID || w.Deadline != sorted[i].Deadline {
				t.Fatalf("trial %d: window %d is %+v, want item %+v order", trial, i, w, sorted[i])
			}
			execs := make([]float64, 0, i+1)
			for j := 0; j <= i; j++ {
				execs = append(execs, sorted[j].Exec)
			}
			sort.Sort(sort.Reverse(sort.Float64Slice(execs)))
			want := 0.0
			for j := 0; j < k && j < len(execs); j++ {
				want += execs[j]
			}
			got := w.Deadline - w.Start
			if diff := got - want; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("trial %d window %d (k=%d): reserved %g, want top-k sum %g", trial, i, k, got, want)
			}
		}
	}
}

// TestEnSuReFaultFreeMeetsDeadlines: whenever FaultFreeFeasible admits an
// item set, running the primaries back-to-back in deadline order must meet
// every deadline with the backup window untouched — and the reserve must
// still cover the k largest re-executions due by each deadline.
func TestEnSuReFaultFreeMeetsDeadlines(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	admitted := 0
	for trial := 0; trial < 2000; trial++ {
		k := 1 + rng.Intn(3)
		n := 1 + rng.Intn(8)
		now := rng.Float64() * 10
		items := make([]EnSuReItem, n)
		for i := range items {
			items[i] = EnSuReItem{
				ID:       i,
				Deadline: now + rng.Float64()*200,
				Exec:     0.01 + rng.Float64()*3,
			}
		}
		if !FaultFreeFeasible(items, k, now) {
			continue
		}
		admitted++
		windows := PlanBackups(items, k)
		tAt := now
		for i, w := range windows {
			tAt += w.Exec
			if tAt > w.Start {
				t.Fatalf("trial %d: admitted set's primary %d finishes at %g, inside its backup window [%g, %g]",
					trial, i, tAt, w.Start, w.Deadline)
			}
			if tAt > w.Deadline {
				t.Fatalf("trial %d: admitted set misses deadline %d (%g > %g)", trial, i, tAt, w.Deadline)
			}
		}
	}
	if admitted == 0 {
		t.Fatal("no trial was admitted; the property was never exercised")
	}
}

// TestInterweaveNeverIdles: with any runnable capture pending — whatever
// the store level, including fully drained — the interweaver dispatches.
func TestInterweaveNeverIdles(t *testing.T) {
	app := device.Apollo4().PersonDetectionApp()
	w, err := NewInterweave(app)
	if err != nil {
		t.Fatalf("NewInterweave: %v", err)
	}
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 1000; trial++ {
		buf := buffer.New(1 + rng.Intn(16))
		n := 1 + rng.Intn(buf.Capacity())
		for i := 0; i < n; i++ {
			buf.Push(buffer.Input{
				Seq:        uint64(i),
				CapturedAt: float64(i),
				JobID:      app.Jobs[rng.Intn(len(app.Jobs))].ID,
			}, false)
		}
		env := core.Env{
			Now:           float64(trial),
			InputPower:    rng.Float64() * 0.05,
			BufferLen:     buf.Len(),
			BufferCap:     buf.Capacity(),
			StoreEnergy:   rng.Float64() * 0.01 * float64(rng.Intn(2)), // often exactly 0
			StoreCapacity: 0.01,
		}
		dec, ok := w.Decide(env, buf)
		if !ok {
			t.Fatalf("trial %d: idle with %d runnable captures pending (store %g J)",
				trial, buf.Len(), env.StoreEnergy)
		}
		if dec.BufferIndex < 0 || dec.BufferIndex >= buf.Len() {
			t.Fatalf("trial %d: buffer index %d out of range [0,%d)", trial, dec.BufferIndex, buf.Len())
		}
		in, err := buf.At(dec.BufferIndex)
		if err != nil {
			t.Fatalf("trial %d: At(%d): %v", trial, dec.BufferIndex, err)
		}
		if in.JobID != dec.JobID {
			t.Fatalf("trial %d: decision job %d does not match buffered input's job %d",
				trial, dec.JobID, in.JobID)
		}
	}

	// The empty buffer is the one legitimate idle.
	if _, ok := w.Decide(core.Env{BufferCap: 4}, buffer.New(4)); ok {
		t.Fatal("Decide on an empty buffer returned ok")
	}
}
