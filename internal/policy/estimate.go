package policy

import (
	"quetzal/internal/circuit"
	"quetzal/internal/model"
)

// serviceAt estimates a job's end-to-end service time in seconds with the
// degradable task at option a and every other task at highest quality,
// folding the energy-recharge time at input power pin into each task
// (circuit.Se2eExact). Execution probability is taken as 1 for every task —
// the conservative prior the Quetzal runtime also starts from.
func serviceAt(job *model.Job, di, a int, pin float64) float64 {
	var s float64
	for ti, task := range job.Tasks {
		oi := 0
		if ti == di {
			oi = a
		}
		opt := task.Options[oi]
		s += circuit.Se2eExact(opt.Texe, opt.Pexe, pin)
	}
	return s
}

// energyAt is the execution energy in joules of the same assignment: the
// store must supply it (less what is harvested while the job runs).
func energyAt(job *model.Job, di, a int) float64 {
	var e float64
	for ti, task := range job.Tasks {
		oi := 0
		if ti == di {
			oi = a
		}
		e += task.Options[oi].Eexe()
	}
	return e
}

// degradableOptions returns the job's degradable task index and its option
// count (1 when the job has no degradable task, so option loops still run
// once, at full quality).
func degradableOptions(job *model.Job) (di, count int) {
	di = job.DegradableTask()
	if di < 0 {
		return -1, 1
	}
	return di, len(job.Tasks[di].Options)
}
