package faults

import (
	"math"
	"strings"
	"testing"

	"quetzal/internal/trace"
)

func TestValidateAcceptsZeroAndRepresentativeSpecs(t *testing.T) {
	good := []Spec{
		{},
		{TaskFaultPct: 100, TaskFaultLimit: 2},
		{TaskFaultPct: 5},
		{DropoutDurS: 5},
		{DropoutStartS: 10, DropoutDurS: 5, DropoutPeriodS: 60},
		{StuckHigh: 0x80},
		{StuckHigh: 0x08, StuckLow: 0x01},
		{MeasEnergyNJ: 250, MeasLatencyUS: 20},
		{TempC: 25},
		{TempC: 45, TempSwingC: 5},
		{TempC: 40, TempSwingC: 10, TempPeriodS: 3600},
	}
	for _, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", s, err)
		}
	}
}

func TestValidateRejectsInconsistentSpecs(t *testing.T) {
	bad := []Spec{
		{TaskFaultPct: 101},
		{TaskFaultPct: -1},
		{TaskFaultLimit: 2}, // limit without probability
		{TaskFaultPct: 10, TaskFaultLimit: -1},
		{DropoutStartS: 10}, // start without duration
		{DropoutDurS: -1},
		{DropoutDurS: 5, DropoutPeriodS: 5}, // period must exceed duration
		{DropoutPeriodS: 60},                // period without duration
		{StuckHigh: 256},
		{StuckLow: -1},
		{StuckHigh: 0x0c, StuckLow: 0x04}, // overlapping masks
		{MeasEnergyNJ: -1},
		{MeasEnergyNJ: 2_000_000},
		{MeasLatencyUS: -1},
		{TempC: 24},                   // below the characterised band
		{TempC: 51},                   // above the characterised band
		{TempSwingC: 5},               // swing without base temperature
		{TempC: 48, TempSwingC: 5},    // excursion exits the band
		{TempC: 27, TempSwingC: 5},    // excursion exits the band (low side)
		{TempC: 40, TempPeriodS: 600}, // period without swing
		{TempC: 40, TempSwingC: -1},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", s)
		}
	}
}

func TestEnabledMatchesZeroValue(t *testing.T) {
	if (Spec{}).Enabled() {
		t.Fatal("zero Spec reports Enabled")
	}
	if !(Spec{TempC: 30}).Enabled() {
		t.Fatal("nonzero Spec reports disabled")
	}
}

func TestTaskFaultAtIsDeterministicAndRateAccurate(t *testing.T) {
	s := Spec{TaskFaultPct: 30}
	const n = 20000
	hits := 0
	for i := uint64(0); i < n; i++ {
		a := s.TaskFaultAt(42, i)
		if b := s.TaskFaultAt(42, i); a != b {
			t.Fatalf("TaskFaultAt(42, %d) not deterministic", i)
		}
		if a {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.30) > 0.02 {
		t.Fatalf("fault rate %.3f, want ~0.30", rate)
	}
	// Different seeds must draw different fault sets.
	same := 0
	for i := uint64(0); i < 1000; i++ {
		if s.TaskFaultAt(42, i) == s.TaskFaultAt(43, i) {
			same++
		}
	}
	if same == 1000 {
		t.Fatal("seeds 42 and 43 produced identical fault sequences")
	}
	if (Spec{}).TaskFaultAt(42, 7) {
		t.Fatal("zero spec injected a fault")
	}
}

func TestTemperatureAt(t *testing.T) {
	if got := (Spec{}).TemperatureAt(1e6); got != 25 {
		t.Fatalf("zero spec temperature = %v, want 25", got)
	}
	if got := (Spec{TempC: 45}).TemperatureAt(123); got != 45 {
		t.Fatalf("constant temperature = %v, want 45", got)
	}
	s := Spec{TempC: 40, TempSwingC: 10, TempPeriodS: 100}
	if got := s.TemperatureAt(25); math.Abs(got-50) > 1e-9 {
		t.Fatalf("peak temperature = %v, want 50", got)
	}
	if got := s.TemperatureAt(75); math.Abs(got-30) > 1e-9 {
		t.Fatalf("trough temperature = %v, want 30", got)
	}
	// Default period: quarter-period of 86400 s reaches the peak.
	d := Spec{TempC: 40, TempSwingC: 5}
	if got := d.TemperatureAt(86400.0 / 4); math.Abs(got-45) > 1e-9 {
		t.Fatalf("default-period peak = %v, want 45", got)
	}
	// The whole trajectory of any valid spec stays inside the band.
	for _, s := range []Spec{{TempC: 45, TempSwingC: 5}, {TempC: 30, TempSwingC: 5, TempPeriodS: 60}} {
		for tt := 0.0; tt < 200; tt += 1.7 {
			got := s.TemperatureAt(tt)
			if got < MinTempC-1e-9 || got > MaxTempC+1e-9 {
				t.Fatalf("TemperatureAt(%v) = %v leaves [%d, %d]", tt, got, MinTempC, MaxTempC)
			}
		}
	}
}

func TestCorruptStore(t *testing.T) {
	// No stuck bits: exact passthrough, no quantisation.
	if got := (Spec{}).CorruptStore(0.123456789, 1); got != 0.123456789 {
		t.Fatalf("passthrough changed the value: %v", got)
	}
	s := Spec{StuckHigh: 0x80}
	// With bit 7 stuck high every reading lands in the upper half-scale.
	if got := s.CorruptStore(0, 1); got < 0.5 {
		t.Fatalf("stuck-high measurement %v below half scale", got)
	}
	low := Spec{StuckLow: 0xFF}
	if got := low.CorruptStore(0.9, 1); got != 0 {
		t.Fatalf("all-bits-low measurement %v, want 0", got)
	}
	// Corrupted readings stay inside [0, capacity] for hostile inputs.
	for _, e := range []float64{-5, 0, 0.3, 1, 7} {
		got := s.CorruptStore(e, 1)
		if got < 0 || got > 1 {
			t.Fatalf("CorruptStore(%v, 1) = %v outside [0, 1]", e, got)
		}
	}
	// Zero capacity: passthrough rather than dividing by zero.
	if got := s.CorruptStore(0.4, 0); got != 0.4 {
		t.Fatalf("zero-capacity corrupt = %v, want passthrough", got)
	}
}

func TestMeasCost(t *testing.T) {
	j, sec := (Spec{MeasEnergyNJ: 250, MeasLatencyUS: 20}).MeasCost()
	if math.Abs(j-250e-9) > 1e-18 || math.Abs(sec-20e-6) > 1e-15 {
		t.Fatalf("MeasCost = (%v, %v), want (2.5e-7, 2e-5)", j, sec)
	}
	if j, sec := (Spec{}).MeasCost(); j != 0 || sec != 0 {
		t.Fatalf("zero-spec MeasCost = (%v, %v)", j, sec)
	}
}

func TestDropoutTrace(t *testing.T) {
	base := trace.Constant{P: 0.04}
	d := Dropout{Base: base, Start: 10, Dur: 5}
	for _, tc := range []struct {
		t    float64
		want float64
	}{
		{0, 0.04}, {9.999, 0.04}, {10, 0}, {12.5, 0}, {14.999, 0}, {15, 0.04}, {100, 0.04},
	} {
		if got := d.Power(tc.t); got != tc.want {
			t.Errorf("one-shot Power(%v) = %v, want %v", tc.t, got, tc.want)
		}
	}
	p := Dropout{Base: base, Start: 10, Dur: 5, Period: 60}
	for _, tc := range []struct {
		t    float64
		want float64
	}{
		{9, 0.04}, {12, 0}, {15, 0.04}, {69, 0.04}, {70, 0}, {74.9, 0}, {75, 0.04}, {130.1, 0},
	} {
		if got := p.Power(tc.t); got != tc.want {
			t.Errorf("periodic Power(%v) = %v, want %v", tc.t, got, tc.want)
		}
	}
}

func TestDropoutWindowAt(t *testing.T) {
	d := Dropout{Base: trace.Constant{P: 1}, Start: 10, Dur: 5, Period: 60}
	lo, hi, inside := d.WindowAt(12)
	if !inside || lo != 10 || hi != 15 {
		t.Fatalf("WindowAt(12) = (%v, %v, %v), want (10, 15, true)", lo, hi, inside)
	}
	lo, hi, inside = d.WindowAt(20)
	if inside || lo != 70 || hi != 75 {
		t.Fatalf("WindowAt(20) = (%v, %v, %v), want next window (70, 75, false)", lo, hi, inside)
	}
	lo, _, inside = d.WindowAt(3)
	if inside || lo != 10 {
		t.Fatalf("WindowAt(3) = (%v, _, %v), want (10, false)", lo, inside)
	}
	one := Dropout{Base: trace.Constant{P: 1}, Start: 10, Dur: 5}
	if lo, _, inside := one.WindowAt(30); inside || !math.IsInf(lo, 1) {
		t.Fatalf("one-shot WindowAt(30) = (%v, _, %v), want (+Inf, false)", lo, inside)
	}
	// WindowAt must agree with Power everywhere.
	for tt := 0.0; tt < 200; tt += 0.37 {
		_, _, inside := d.WindowAt(tt)
		if inside != (d.Power(tt) == 0) {
			t.Fatalf("WindowAt(%v) inside=%v disagrees with Power=%v", tt, inside, d.Power(tt))
		}
	}
}

func TestWindows(t *testing.T) {
	s := Spec{DropoutStartS: 10, DropoutDurS: 5, DropoutPeriodS: 60}
	got := s.Windows(140)
	want := [][2]float64{{10, 15}, {70, 75}, {130, 135}}
	if len(got) != len(want) {
		t.Fatalf("Windows(140) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Windows(140)[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	one := Spec{DropoutStartS: 10, DropoutDurS: 5}
	if got := one.Windows(1000); len(got) != 1 || got[0] != [2]float64{10, 15} {
		t.Fatalf("one-shot Windows = %v", got)
	}
	if got := (Spec{}).Windows(1000); got != nil {
		t.Fatalf("zero-spec Windows = %v, want nil", got)
	}
}

func TestDeriveSeedSpreads(t *testing.T) {
	seen := map[int64]bool{}
	for s := int64(0); s < 1000; s++ {
		d := DeriveSeed(s)
		if d == s {
			t.Fatalf("DeriveSeed(%d) is the identity", s)
		}
		if seen[d] {
			t.Fatalf("DeriveSeed collision at %d", s)
		}
		seen[d] = true
	}
}

func TestFlagParsers(t *testing.T) {
	var s Spec
	if err := s.SetFaultsFlag("task=30,limit=2,dropout=10+5/60,stuck=0x08:0x01"); err != nil {
		t.Fatal(err)
	}
	want := Spec{TaskFaultPct: 30, TaskFaultLimit: 2, DropoutStartS: 10, DropoutDurS: 5,
		DropoutPeriodS: 60, StuckHigh: 8, StuckLow: 1}
	if s != want {
		t.Fatalf("SetFaultsFlag = %+v, want %+v", s, want)
	}
	var tmp Spec
	if err := tmp.SetTempFlag("45+5/3600"); err != nil {
		t.Fatal(err)
	}
	if (tmp != Spec{TempC: 45, TempSwingC: 5, TempPeriodS: 3600}) {
		t.Fatalf("SetTempFlag = %+v", tmp)
	}
	var m Spec
	if err := m.SetMeasFlag("250:20"); err != nil {
		t.Fatal(err)
	}
	if (m != Spec{MeasEnergyNJ: 250, MeasLatencyUS: 20}) {
		t.Fatalf("SetMeasFlag = %+v", m)
	}
	for _, bad := range []string{"task", "task=x", "dropout=5", "dropout=a+b", "stuck=zz", "bogus=1"} {
		var s Spec
		if err := s.SetFaultsFlag(bad); err == nil {
			t.Errorf("SetFaultsFlag(%q) accepted", bad)
		}
	}
	var s2 Spec
	if err := s2.SetTempFlag("warm"); err == nil {
		t.Error("SetTempFlag(warm) accepted")
	}
	if err := s2.SetMeasFlag("a:b"); err == nil {
		t.Error("SetMeasFlag(a:b) accepted")
	}
}

func TestStringRoundsTrips(t *testing.T) {
	if got := (Spec{}).String(); got != "none" {
		t.Fatalf("zero String = %q", got)
	}
	s := Spec{TaskFaultPct: 100, TaskFaultLimit: 2, DropoutStartS: 10, DropoutDurS: 5,
		TempC: 45, TempSwingC: 5, MeasEnergyNJ: 250, MeasLatencyUS: 20, StuckHigh: 8}
	got := s.String()
	for _, frag := range []string{"task=100%x2", "drop=10+5", "stuck=0x8:0", "meas=250nJ:20us", "temp=45+5"} {
		if !strings.Contains(got, frag) {
			t.Errorf("String() = %q missing %q", got, frag)
		}
	}
}
