// Package faults is the hardware-realism layer: a declarative, validated
// fault/realism specification (Spec) plus the deterministic machinery the
// engine needs to apply it — per-sample measurement cost, junction
// temperature as a function of time, transient task-execution faults,
// harvester dropout windows, and ADC stuck-bit corruption of measured
// store levels.
//
// Everything here is a pure function of (Spec, seed, time or index): no
// package state, no wall clock, no math/rand streams shared with the
// simulator. Fault draws hash a dedicated split-seed (DeriveSeed /
// fleet.StreamFaults) so the same Spec produces bit-identical fault
// sequences across the fixed, event, and lockstep steppers and across any
// fleet shard layout. DESIGN.md §15 documents the full model.
package faults

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"quetzal/internal/trace"
)

// Temperature band the paper characterises the circuit model over
// (25–50 °C, ≤5.5 % energy-ratio error). Specs outside the band are
// rejected rather than extrapolated.
const (
	MinTempC = 25
	MaxTempC = 50

	// DefaultTempPeriodS is the diurnal period assumed when a swing is
	// requested without an explicit period.
	DefaultTempPeriodS = 86400
)

// Spec declares the realism knobs for one run. The zero value means "ideal
// hardware": free instantaneous measurement, 25 °C, no faults — and is
// guaranteed to cost nothing in the engine hot path. All fields are small
// integers so Spec is comparable (usable in RunKey and memo-pool keys) and
// trivially expressible as simgen lattice knobs.
type Spec struct {
	// TaskFaultPct is the per-task-completion transient-fault probability
	// in percent [0, 100]. A faulted task is detected at completion and
	// re-executed from the start (EnSuRe-style), visible to the policy via
	// core.Feedback.Faults.
	TaskFaultPct int `json:"task_fault_pct,omitempty"`
	// TaskFaultLimit caps the total number of injected task faults per
	// run (0 = unlimited). Requires TaskFaultPct > 0.
	TaskFaultLimit int `json:"task_fault_limit,omitempty"`

	// DropoutStartS is the start (seconds) of the first harvester dropout
	// window. Requires DropoutDurS > 0.
	DropoutStartS int `json:"dropout_start_s,omitempty"`
	// DropoutDurS is the dropout window length in seconds; > 0 enables
	// dropout windows during which harvested input power is exactly 0 W.
	DropoutDurS int `json:"dropout_dur_s,omitempty"`
	// DropoutPeriodS repeats the window every period seconds (0 =
	// one-shot). Must exceed DropoutDurS when set.
	DropoutPeriodS int `json:"dropout_period_s,omitempty"`

	// StuckHigh / StuckLow are 8-bit masks of ADC result bits stuck at
	// 1 / 0. They corrupt only the *measured* store level reported to the
	// controller (core.Env.StoreEnergy), never the physical store.
	StuckHigh int `json:"stuck_high,omitempty"`
	StuckLow  int `json:"stuck_low,omitempty"`

	// MeasEnergyNJ / MeasLatencyUS are the per-ADC-sample measurement
	// cost: energy in nanojoules drawn from the store and latency in
	// microseconds added to controller overhead, charged once per sample
	// the controller reads.
	MeasEnergyNJ  int `json:"meas_energy_nj,omitempty"`
	MeasLatencyUS int `json:"meas_latency_us,omitempty"`

	// TempC is the junction temperature in °C (0 = default 25 °C;
	// otherwise 25–50). TempSwingC adds a sinusoidal swing of ±swing °C
	// (the whole excursion must stay inside 25–50) with period
	// TempPeriodS seconds (0 = DefaultTempPeriodS).
	TempC       int `json:"temp_c,omitempty"`
	TempSwingC  int `json:"temp_swing_c,omitempty"`
	TempPeriodS int `json:"temp_period_s,omitempty"`
}

// Enabled reports whether any realism knob is set. The engine skips all
// fault bookkeeping when false.
func (s Spec) Enabled() bool { return s != Spec{} }

// Validate rejects out-of-range and internally inconsistent specs with the
// same error style as experiments.KeySpec. A valid spec either runs
// deterministically or is the zero value.
func (s Spec) Validate() error {
	if s.TaskFaultPct < 0 || s.TaskFaultPct > 100 {
		return fmt.Errorf("faults: task_fault_pct %d outside [0, 100]", s.TaskFaultPct)
	}
	if s.TaskFaultLimit < 0 {
		return fmt.Errorf("faults: task_fault_limit %d negative", s.TaskFaultLimit)
	}
	if s.TaskFaultLimit > 0 && s.TaskFaultPct == 0 {
		return fmt.Errorf("faults: task_fault_limit %d requires task_fault_pct > 0", s.TaskFaultLimit)
	}
	if s.DropoutDurS < 0 {
		return fmt.Errorf("faults: dropout_dur_s %d negative", s.DropoutDurS)
	}
	if s.DropoutStartS < 0 {
		return fmt.Errorf("faults: dropout_start_s %d negative", s.DropoutStartS)
	}
	if s.DropoutStartS > 0 && s.DropoutDurS == 0 {
		return fmt.Errorf("faults: dropout_start_s %d requires dropout_dur_s > 0", s.DropoutStartS)
	}
	if s.DropoutPeriodS < 0 {
		return fmt.Errorf("faults: dropout_period_s %d negative", s.DropoutPeriodS)
	}
	if s.DropoutPeriodS > 0 && s.DropoutPeriodS <= s.DropoutDurS {
		return fmt.Errorf("faults: dropout_period_s %d must exceed dropout_dur_s %d", s.DropoutPeriodS, s.DropoutDurS)
	}
	if s.DropoutPeriodS > 0 && s.DropoutDurS == 0 {
		return fmt.Errorf("faults: dropout_period_s %d requires dropout_dur_s > 0", s.DropoutPeriodS)
	}
	if s.StuckHigh < 0 || s.StuckHigh > 255 {
		return fmt.Errorf("faults: stuck_high %d outside [0, 255]", s.StuckHigh)
	}
	if s.StuckLow < 0 || s.StuckLow > 255 {
		return fmt.Errorf("faults: stuck_low %d outside [0, 255]", s.StuckLow)
	}
	if s.StuckHigh&s.StuckLow != 0 {
		return fmt.Errorf("faults: stuck_high %#x and stuck_low %#x overlap", s.StuckHigh, s.StuckLow)
	}
	if s.MeasEnergyNJ < 0 || s.MeasEnergyNJ > 1e6 {
		return fmt.Errorf("faults: meas_energy_nj %d outside [0, 1e6]", s.MeasEnergyNJ)
	}
	if s.MeasLatencyUS < 0 || s.MeasLatencyUS > 1e6 {
		return fmt.Errorf("faults: meas_latency_us %d outside [0, 1e6]", s.MeasLatencyUS)
	}
	if s.TempC != 0 && (s.TempC < MinTempC || s.TempC > MaxTempC) {
		return fmt.Errorf("faults: temp_c %d outside [%d, %d]", s.TempC, MinTempC, MaxTempC)
	}
	if s.TempSwingC < 0 {
		return fmt.Errorf("faults: temp_swing_c %d negative", s.TempSwingC)
	}
	if s.TempSwingC > 0 {
		if s.TempC == 0 {
			return fmt.Errorf("faults: temp_swing_c %d requires temp_c", s.TempSwingC)
		}
		if s.TempC-s.TempSwingC < MinTempC || s.TempC+s.TempSwingC > MaxTempC {
			return fmt.Errorf("faults: temp_c %d ± swing %d leaves [%d, %d]",
				s.TempC, s.TempSwingC, MinTempC, MaxTempC)
		}
	}
	if s.TempPeriodS < 0 {
		return fmt.Errorf("faults: temp_period_s %d negative", s.TempPeriodS)
	}
	if s.TempPeriodS > 0 && s.TempSwingC == 0 {
		return fmt.Errorf("faults: temp_period_s %d requires temp_swing_c > 0", s.TempPeriodS)
	}
	return nil
}

// String renders the spec compactly for run-key strings and logs; the zero
// value renders as "none".
func (s Spec) String() string {
	if !s.Enabled() {
		return "none"
	}
	var parts []string
	if s.TaskFaultPct > 0 {
		p := fmt.Sprintf("task=%d%%", s.TaskFaultPct)
		if s.TaskFaultLimit > 0 {
			p += fmt.Sprintf("x%d", s.TaskFaultLimit)
		}
		parts = append(parts, p)
	}
	if s.DropoutDurS > 0 {
		p := fmt.Sprintf("drop=%d+%d", s.DropoutStartS, s.DropoutDurS)
		if s.DropoutPeriodS > 0 {
			p += fmt.Sprintf("/%d", s.DropoutPeriodS)
		}
		parts = append(parts, p)
	}
	if s.StuckHigh != 0 || s.StuckLow != 0 {
		parts = append(parts, fmt.Sprintf("stuck=%#x:%#x", s.StuckHigh, s.StuckLow))
	}
	if s.MeasEnergyNJ > 0 || s.MeasLatencyUS > 0 {
		parts = append(parts, fmt.Sprintf("meas=%dnJ:%dus", s.MeasEnergyNJ, s.MeasLatencyUS))
	}
	if s.TempC > 0 {
		p := fmt.Sprintf("temp=%d", s.TempC)
		if s.TempSwingC > 0 {
			p += fmt.Sprintf("+%d", s.TempSwingC)
			if s.TempPeriodS > 0 {
				p += fmt.Sprintf("/%d", s.TempPeriodS)
			}
		}
		parts = append(parts, p)
	}
	return strings.Join(parts, ",")
}

// splitmix64 is the same finalizer the fleet's split-seed scheme uses
// (deliberately duplicated: faults must not depend on internal/fleet).
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// faultSalt separates the standalone fault stream from the simulation
// seed's other derived uses.
const faultSalt = 0xFA017 // "fault"

// DeriveSeed maps a simulation seed to its fault stream seed. Fleet
// devices get theirs from fleet.DeviceSeed(..., StreamFaults) instead so
// the draw is shard-independent; this is the standalone-run equivalent.
func DeriveSeed(simSeed int64) int64 {
	return int64(splitmix64(splitmix64(uint64(simSeed)) ^ faultSalt))
}

// TaskFaultAt reports whether the idx-th task completion of the run (a
// monotone counter the engine maintains) suffers a transient fault, as a
// pure hash of (seed, idx): no stream state, so every stepper agrees
// regardless of how it interleaves other randomness.
func (s Spec) TaskFaultAt(seed int64, idx uint64) bool {
	if s.TaskFaultPct <= 0 {
		return false
	}
	h := splitmix64(uint64(seed) ^ splitmix64(idx))
	return int(h%100) < s.TaskFaultPct
}

// TemperatureAt returns the junction temperature (°C) at simulation time
// t. The zero spec pins the paper's 25 °C characterisation point.
func (s Spec) TemperatureAt(t float64) float64 {
	if s.TempC == 0 {
		return MinTempC
	}
	temp := float64(s.TempC)
	if s.TempSwingC > 0 {
		period := float64(s.TempPeriodS)
		if period == 0 {
			period = DefaultTempPeriodS
		}
		temp += float64(s.TempSwingC) * math.Sin(2*math.Pi*t/period)
	}
	return temp
}

// CorruptStore passes a measured store level (joules, within [0, capacity])
// through an 8-bit ADC with the spec's stuck bits: quantise to a code,
// force the stuck bits, convert back. With no stuck bits the value is
// returned untouched (no quantisation), preserving the ideal-measurement
// baseline bit-for-bit.
func (s Spec) CorruptStore(energy, capacity float64) float64 {
	if s.StuckHigh == 0 && s.StuckLow == 0 {
		return energy
	}
	if capacity <= 0 {
		return energy
	}
	frac := energy / capacity
	if frac < 0 {
		frac = 0
	} else if frac > 1 {
		frac = 1
	}
	code := int(frac*255 + 0.5)
	code = (code | s.StuckHigh) &^ s.StuckLow
	return float64(code) / 255 * capacity
}

// MeasCost returns the per-sample measurement cost in SI units: joules
// drawn from the store and seconds of controller latency.
func (s Spec) MeasCost() (joules, seconds float64) {
	return float64(s.MeasEnergyNJ) * 1e-9, float64(s.MeasLatencyUS) * 1e-6
}

// Dropout wraps a power trace with harvester dropout windows: inside a
// window the harvestable input power is exactly 0 W, outside it the base
// trace is untouched. Windows start at Start, last Dur seconds, and repeat
// every Period seconds (Period 0 = one-shot). It is layered by
// engine.Config normalisation so every stepper samples the same object.
type Dropout struct {
	Base               trace.PowerTrace
	Start, Dur, Period float64
}

// Power returns the base power, masked to exactly 0 inside dropout
// windows. Like SquareWave, the left edge of a window is inside and the
// right edge is outside.
func (d Dropout) Power(t float64) float64 {
	if _, _, inside := d.WindowAt(t); inside {
		return 0
	}
	return d.Base.Power(t)
}

// WindowAt reports the dropout window governing time t. If t is inside a
// window, inside is true and [lo, hi) bounds that window. Otherwise inside
// is false and [lo, hi) bounds the NEXT window (lo = +Inf when no window
// ever starts after t). The lockstep stepper uses the bounds to prove a
// crawl-replay segment cannot straddle a window edge.
func (d Dropout) WindowAt(t float64) (lo, hi float64, inside bool) {
	if d.Dur <= 0 {
		return math.Inf(1), math.Inf(1), false
	}
	if d.Period <= 0 {
		lo, hi = d.Start, d.Start+d.Dur
		if t >= lo && t < hi {
			return lo, hi, true
		}
		if t < lo {
			return lo, hi, false
		}
		return math.Inf(1), math.Inf(1), false
	}
	rel := t - d.Start
	if rel < 0 {
		return d.Start, d.Start + d.Dur, false
	}
	k := math.Floor(rel / d.Period)
	lo = d.Start + k*d.Period
	hi = lo + d.Dur
	if t < hi {
		return lo, hi, true
	}
	return lo + d.Period, lo + d.Period + d.Dur, false
}

// Windows lists the dropout windows as [start, end) pairs that intersect
// [0, horizon), for the invariant checker's harvest-exactly-0 assertion.
func (s Spec) Windows(horizon float64) [][2]float64 {
	if s.DropoutDurS <= 0 || horizon <= 0 {
		return nil
	}
	var out [][2]float64
	start, dur := float64(s.DropoutStartS), float64(s.DropoutDurS)
	period := float64(s.DropoutPeriodS)
	for lo := start; lo < horizon; lo += period {
		out = append(out, [2]float64{lo, lo + dur})
		if period <= 0 {
			break
		}
	}
	return out
}

// SetFaultsFlag parses the -faults CLI syntax into the spec: a
// comma-separated list of task=PCT[%] · limit=K · dropout=START+DUR[/PERIOD]
// · stuck=HIGH[:LOW], e.g. "task=30,limit=2,dropout=10+5/60,stuck=8:1".
// Parsed values overwrite the corresponding fields; Validate still runs
// afterwards via the caller.
func (s *Spec) SetFaultsFlag(v string) error {
	for _, item := range strings.Split(v, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		key, val, ok := strings.Cut(item, "=")
		if !ok {
			return fmt.Errorf("faults: %q is not key=value", item)
		}
		switch key {
		case "task":
			n, err := strconv.Atoi(strings.TrimSuffix(val, "%"))
			if err != nil {
				return fmt.Errorf("faults: task=%q: %v", val, err)
			}
			s.TaskFaultPct = n
		case "limit":
			n, err := strconv.Atoi(val)
			if err != nil {
				return fmt.Errorf("faults: limit=%q: %v", val, err)
			}
			s.TaskFaultLimit = n
		case "dropout":
			spec, period, hasPeriod := strings.Cut(val, "/")
			start, dur, ok := strings.Cut(spec, "+")
			if !ok {
				return fmt.Errorf("faults: dropout=%q wants START+DUR[/PERIOD]", val)
			}
			var err error
			if s.DropoutStartS, err = strconv.Atoi(start); err != nil {
				return fmt.Errorf("faults: dropout start %q: %v", start, err)
			}
			if s.DropoutDurS, err = strconv.Atoi(dur); err != nil {
				return fmt.Errorf("faults: dropout duration %q: %v", dur, err)
			}
			if hasPeriod {
				if s.DropoutPeriodS, err = strconv.Atoi(period); err != nil {
					return fmt.Errorf("faults: dropout period %q: %v", period, err)
				}
			}
		case "stuck":
			high, low, hasLow := strings.Cut(val, ":")
			var err error
			if s.StuckHigh, err = parseMask(high); err != nil {
				return fmt.Errorf("faults: stuck high %q: %v", high, err)
			}
			if hasLow {
				if s.StuckLow, err = parseMask(low); err != nil {
					return fmt.Errorf("faults: stuck low %q: %v", low, err)
				}
			}
		default:
			return fmt.Errorf("faults: unknown key %q (want task, limit, dropout, stuck)", key)
		}
	}
	return nil
}

// parseMask accepts decimal or 0x-prefixed hex bit masks.
func parseMask(v string) (int, error) {
	n, err := strconv.ParseInt(v, 0, 32)
	return int(n), err
}

// SetTempFlag parses the -temp CLI syntax: "C" for a constant junction
// temperature, "C+S" for a diurnal ±S swing, "C+S/PERIOD" for an explicit
// period in seconds — e.g. "45+5/3600".
func (s *Spec) SetTempFlag(v string) error {
	base, rest, hasSwing := strings.Cut(v, "+")
	n, err := strconv.Atoi(strings.TrimSpace(base))
	if err != nil {
		return fmt.Errorf("faults: temp %q: %v", base, err)
	}
	s.TempC = n
	if !hasSwing {
		return nil
	}
	swing, period, hasPeriod := strings.Cut(rest, "/")
	if s.TempSwingC, err = strconv.Atoi(swing); err != nil {
		return fmt.Errorf("faults: temp swing %q: %v", swing, err)
	}
	if hasPeriod {
		if s.TempPeriodS, err = strconv.Atoi(period); err != nil {
			return fmt.Errorf("faults: temp period %q: %v", period, err)
		}
	}
	return nil
}

// SetMeasFlag parses the -meascost CLI syntax: "NJ" or "NJ:US" — the
// per-sample measurement energy in nanojoules and latency in microseconds,
// e.g. "250:20".
func (s *Spec) SetMeasFlag(v string) error {
	nj, us, hasLatency := strings.Cut(v, ":")
	n, err := strconv.Atoi(strings.TrimSpace(nj))
	if err != nil {
		return fmt.Errorf("faults: meascost energy %q: %v", nj, err)
	}
	s.MeasEnergyNJ = n
	if hasLatency {
		if s.MeasLatencyUS, err = strconv.Atoi(strings.TrimSpace(us)); err != nil {
			return fmt.Errorf("faults: meascost latency %q: %v", us, err)
		}
	}
	return nil
}

// FromFlags folds the three CLI realism flags (-faults, -temp, -meascost;
// empty = unset) into one validated Spec — the shared entry point for every
// command-line front end.
func FromFlags(faultsF, tempF, measF string) (Spec, error) {
	var spec Spec
	if faultsF != "" {
		if err := spec.SetFaultsFlag(faultsF); err != nil {
			return Spec{}, fmt.Errorf("-faults: %w", err)
		}
	}
	if tempF != "" {
		if err := spec.SetTempFlag(tempF); err != nil {
			return Spec{}, fmt.Errorf("-temp: %w", err)
		}
	}
	if measF != "" {
		if err := spec.SetMeasFlag(measF); err != nil {
			return Spec{}, fmt.Errorf("-meascost: %w", err)
		}
	}
	if err := spec.Validate(); err != nil {
		return Spec{}, err
	}
	return spec, nil
}
