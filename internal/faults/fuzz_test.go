package faults

import (
	"math"
	"testing"

	"quetzal/internal/trace"
)

// FuzzFaultSpec holds the spec layer to its contract: a spec either fails
// Validate (rejected ⇒ nothing runs) or is accepted, in which case every
// derived quantity must replay deterministically and stay inside its
// physical bounds — the same guarantee the engine relies on for
// cross-stepper and cross-shard bit-identity.
func FuzzFaultSpec(f *testing.F) {
	f.Add(0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, int64(1))
	f.Add(100, 2, 10, 5, 0, 0, 0, 0, 0, 0, 0, 0, int64(42))
	f.Add(30, 0, 10, 5, 60, 8, 1, 250, 20, 45, 5, 3600, int64(7))
	f.Add(5, 1, 0, 0, 0, 255, 0, 1000000, 1000000, 50, 0, 0, int64(-3))
	f.Add(-1, 0, 0, -5, 3, 256, -1, -7, 2000000, 24, 99, -1, int64(0))
	f.Fuzz(func(t *testing.T, pct, limit, dropStart, dropDur, dropPeriod,
		stuckHigh, stuckLow, measNJ, measUS, tempC, tempSwing, tempPeriod int, seed int64) {
		s := Spec{
			TaskFaultPct: pct, TaskFaultLimit: limit,
			DropoutStartS: dropStart, DropoutDurS: dropDur, DropoutPeriodS: dropPeriod,
			StuckHigh: stuckHigh, StuckLow: stuckLow,
			MeasEnergyNJ: measNJ, MeasLatencyUS: measUS,
			TempC: tempC, TempSwingC: tempSwing, TempPeriodS: tempPeriod,
		}
		if err := s.Validate(); err != nil {
			if err.Error() == "" {
				t.Fatal("rejection with empty error")
			}
			return // rejected ⇒ no run
		}
		if s.Enabled() != (s != Spec{}) {
			t.Fatalf("Enabled()=%v disagrees with zero test", s.Enabled())
		}
		if s.String() == "" {
			t.Fatal("accepted spec renders empty String")
		}
		// Deterministic replay: identical draws on a second pass.
		for i := uint64(0); i < 64; i++ {
			if s.TaskFaultAt(seed, i) != s.TaskFaultAt(seed, i) {
				t.Fatalf("TaskFaultAt(%d, %d) not deterministic", seed, i)
			}
		}
		// Temperature stays inside the characterised band.
		for _, tt := range []float64{0, 1, 17.3, 86400.0 / 4, 123456} {
			temp := s.TemperatureAt(tt)
			if temp != s.TemperatureAt(tt) {
				t.Fatalf("TemperatureAt(%v) not deterministic", tt)
			}
			if temp < MinTempC-1e-9 || temp > MaxTempC+1e-9 {
				t.Fatalf("TemperatureAt(%v) = %v leaves [%d, %d]", tt, temp, MinTempC, MaxTempC)
			}
		}
		// Corrupted measurements stay inside the store's range.
		for _, e := range []float64{-1, 0, 0.25, 0.5, 1, 2} {
			got := s.CorruptStore(e, 1)
			if got != s.CorruptStore(e, 1) {
				t.Fatalf("CorruptStore(%v) not deterministic", e)
			}
			if s.StuckHigh != 0 || s.StuckLow != 0 {
				if got < 0 || got > 1 {
					t.Fatalf("CorruptStore(%v, 1) = %v outside [0, 1]", e, got)
				}
			} else if got != e {
				t.Fatalf("CorruptStore passthrough changed %v to %v", e, got)
			}
		}
		j, sec := s.MeasCost()
		if j < 0 || j > 1e-3 || sec < 0 || sec > 1 {
			t.Fatalf("MeasCost = (%v, %v) outside physical bounds", j, sec)
		}
		// Dropout trace: Power is 0 exactly inside WindowAt windows, the
		// base value outside, and Windows() tiles the same intervals.
		d := Dropout{Base: trace.Constant{P: 0.04},
			Start:  float64(s.DropoutStartS),
			Dur:    float64(s.DropoutDurS),
			Period: float64(s.DropoutPeriodS)}
		for tt := 0.0; tt < 200; tt += 0.7 {
			lo, hi, inside := d.WindowAt(tt)
			p := d.Power(tt)
			if inside != (p == 0) && s.DropoutDurS > 0 {
				t.Fatalf("WindowAt(%v) inside=%v disagrees with Power=%v", tt, inside, p)
			}
			if inside && (tt < lo || tt >= hi) {
				t.Fatalf("WindowAt(%v) inside but bounds [%v, %v) exclude t", tt, lo, hi)
			}
			if !inside && !math.IsInf(lo, 1) && lo <= tt {
				t.Fatalf("WindowAt(%v) next window [%v, %v) starts in the past", tt, lo, hi)
			}
		}
		for _, w := range s.Windows(200) {
			mid := (w[0] + w[1]) / 2
			if d.Power(mid) != 0 {
				t.Fatalf("Windows() interval %v not dropped at %v", w, mid)
			}
		}
	})
}
