package window

import "fmt"

// RateTracker estimates the input-arrival rate λ (inputs stored per second)
// from a window of capture outcomes, as described in paper §3.3/§5.1: "the
// system tracks the number of times an input was stored in the input buffer
// from a previous window of captured inputs."
//
// Captures happen at a fixed period; λ is the stored fraction divided by the
// capture period.
// Burst sensitivity: a long window smooths λ across activity gaps, but a
// buffer overflow builds within seconds of a burst starting — long before a
// 256-capture window reflects it. The tracker therefore also maintains a
// short sub-window over the most recent captures and reports the more
// conservative (larger) of the two estimates. The device cost is one more
// bit-vector with its 1-counter, the same §5.1 machinery.
const burstWindow = 16

type RateTracker struct {
	win           *BitWindow
	burst         *BitWindow
	capturePeriod float64 // seconds between captures
	prior         float64 // fraction assumed before any observation
}

// NewRateTracker builds a tracker over windowSize captures at the given
// capture period in seconds. prior is the stored-fraction assumed until the
// first capture is observed.
func NewRateTracker(windowSize int, capturePeriod, prior float64) *RateTracker {
	if capturePeriod <= 0 {
		panic(fmt.Sprintf("window: capture period must be positive, got %g", capturePeriod))
	}
	if prior < 0 || prior > 1 {
		panic(fmt.Sprintf("window: prior must be in [0,1], got %g", prior))
	}
	bw := burstWindow
	if bw > windowSize {
		bw = windowSize
	}
	return &RateTracker{win: New(windowSize), burst: New(bw), capturePeriod: capturePeriod, prior: prior}
}

// Observe records whether a captured input was stored in the buffer.
func (r *RateTracker) Observe(stored bool) {
	r.win.Push(stored)
	r.burst.Push(stored)
}

// StoredFraction returns the conservative (larger) of the long-window and
// burst-window stored fractions.
func (r *RateTracker) StoredFraction() float64 {
	f := r.win.Fraction(r.prior)
	if b := r.burst.Fraction(r.prior); b > f {
		return b
	}
	return f
}

// Lambda returns the estimated arrival rate λ in inputs per second.
func (r *RateTracker) Lambda() float64 { return r.StoredFraction() / r.capturePeriod }

// SetCapturePeriod updates the capture period (used by capture-rate sweeps).
func (r *RateTracker) SetCapturePeriod(period float64) {
	if period <= 0 {
		panic(fmt.Sprintf("window: capture period must be positive, got %g", period))
	}
	r.capturePeriod = period
}

// Window exposes the underlying bit window for inspection in tests.
func (r *RateTracker) Window() *BitWindow { return r.win }

// ProbTracker estimates a task's execution probability from a window of job
// completions (paper §4.1): the fraction of recently completed jobs in which
// the task ran.
type ProbTracker struct {
	win   *BitWindow
	prior float64
}

// NewProbTracker builds a tracker over windowSize job completions. prior is
// the probability assumed until the first completion is observed; the paper
// profiles each task once up front, so a prior of 1 (always runs) is the
// conservative default used by the runtime.
func NewProbTracker(windowSize int, prior float64) *ProbTracker {
	if prior < 0 || prior > 1 {
		panic(fmt.Sprintf("window: prior must be in [0,1], got %g", prior))
	}
	return &ProbTracker{win: New(windowSize), prior: prior}
}

// Observe records whether the task executed for a completed job.
func (p *ProbTracker) Observe(executed bool) { p.win.Push(executed) }

// Probability returns the task's estimated execution probability.
func (p *ProbTracker) Probability() float64 { return p.win.Fraction(p.prior) }

// Window exposes the underlying bit window for inspection in tests.
func (p *ProbTracker) Window() *BitWindow { return p.win }
