// Package window implements the fixed-size bit-vector history windows that
// Quetzal's software library uses to track task execution probability and
// input-arrival rate (paper §5.1).
//
// A BitWindow records the most recent N boolean observations. A set bit
// means "the task executed for this input" (task windows) or "this captured
// input was stored in the memory queue" (arrival windows). The window keeps
// a running count of set bits — the paper's "1-counter" — so that reading
// the current probability or rate is O(1) and updating on job completion is
// O(1) amortised.
//
// Paper defaults: <task-window> = 64, <arrival-window> = 256 (Table 1).
package window

import (
	"fmt"
	"math/bits"
)

// Default window sizes from Table 1 of the paper.
const (
	DefaultTaskWindow    = 64
	DefaultArrivalWindow = 256
)

const wordBits = 64

// BitWindow is a ring of the most recent Size boolean observations with an
// O(1) population count. The zero value is not usable; construct with New.
type BitWindow struct {
	words []uint64
	size  int // capacity in bits
	head  int // index of the next bit to be written
	n     int // number of observations recorded, saturates at size
	ones  int // the 1-counter: set bits among the recorded observations
}

// New returns a BitWindow holding up to size observations.
// It panics if size is not positive (a configuration error).
func New(size int) *BitWindow {
	if size <= 0 {
		panic(fmt.Sprintf("window: size must be positive, got %d", size))
	}
	nwords := (size + wordBits - 1) / wordBits
	return &BitWindow{words: make([]uint64, nwords), size: size}
}

// Size returns the window capacity in observations.
func (w *BitWindow) Size() int { return w.size }

// Len returns how many observations have been recorded, at most Size.
func (w *BitWindow) Len() int { return w.n }

// Ones returns the number of set bits among the recorded observations.
func (w *BitWindow) Ones() int { return w.ones }

// Push records one observation, evicting the oldest if the window is full.
func (w *BitWindow) Push(v bool) {
	word, bit := w.head/wordBits, uint(w.head%wordBits)
	mask := uint64(1) << bit
	if w.n == w.size {
		// Evict the bit currently stored at head (the oldest observation).
		if w.words[word]&mask != 0 {
			w.ones--
		}
	} else {
		w.n++
	}
	if v {
		w.words[word] |= mask
		w.ones++
	} else {
		w.words[word] &^= mask
	}
	w.head++
	if w.head == w.size {
		w.head = 0
	}
}

// Fraction returns Ones()/Len(), the empirical probability of a set
// observation. Before any observation is recorded it returns fallback, so a
// fresh system can start from a configured prior instead of 0/0.
func (w *BitWindow) Fraction(fallback float64) float64 {
	if w.n == 0 {
		return fallback
	}
	return float64(w.ones) / float64(w.n)
}

// Reset clears all recorded observations.
func (w *BitWindow) Reset() {
	for i := range w.words {
		w.words[i] = 0
	}
	w.head, w.n, w.ones = 0, 0, 0
}

// Recount recomputes the 1-counter from the raw bits. It exists so tests can
// verify the incremental counter never drifts; it is O(size/64).
func (w *BitWindow) Recount() int {
	if w.n == w.size {
		total := 0
		for _, wd := range w.words {
			total += bits.OnesCount64(wd)
		}
		// All size bits are live; mask away bits beyond size in the last word.
		if rem := w.size % wordBits; rem != 0 {
			last := w.words[len(w.words)-1]
			total -= bits.OnesCount64(last &^ (1<<uint(rem) - 1))
		}
		return total
	}
	// Only the n bits before head (wrapping) are live; with n < size those
	// are exactly bits [0, head) since we have never wrapped.
	total := 0
	for i := 0; i < w.n; i++ {
		word, bit := i/wordBits, uint(i%wordBits)
		if w.words[word]&(1<<bit) != 0 {
			total++
		}
	}
	return total
}

// String renders a compact summary for debugging.
func (w *BitWindow) String() string {
	return fmt.Sprintf("window{%d/%d ones=%d}", w.n, w.size, w.ones)
}
