package window

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewPanicsOnNonPositiveSize(t *testing.T) {
	for _, size := range []int{0, -1, -64} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", size)
				}
			}()
			New(size)
		}()
	}
}

func TestEmptyWindow(t *testing.T) {
	w := New(8)
	if got := w.Len(); got != 0 {
		t.Errorf("Len() = %d, want 0", got)
	}
	if got := w.Ones(); got != 0 {
		t.Errorf("Ones() = %d, want 0", got)
	}
	if got := w.Fraction(0.5); got != 0.5 {
		t.Errorf("Fraction(0.5) on empty window = %g, want fallback 0.5", got)
	}
}

func TestPushBelowCapacity(t *testing.T) {
	w := New(8)
	w.Push(true)
	w.Push(false)
	w.Push(true)
	if w.Len() != 3 || w.Ones() != 2 {
		t.Errorf("after 3 pushes: Len=%d Ones=%d, want 3, 2", w.Len(), w.Ones())
	}
	if got, want := w.Fraction(0), 2.0/3.0; got != want {
		t.Errorf("Fraction = %g, want %g", got, want)
	}
}

func TestEvictionAtCapacity(t *testing.T) {
	w := New(4)
	for _, v := range []bool{true, true, false, false} {
		w.Push(v)
	}
	if w.Ones() != 2 {
		t.Fatalf("Ones = %d, want 2", w.Ones())
	}
	// Next push evicts the oldest (true).
	w.Push(false)
	if w.Len() != 4 || w.Ones() != 1 {
		t.Errorf("after eviction: Len=%d Ones=%d, want 4, 1", w.Len(), w.Ones())
	}
	// Evict the second-oldest (true) while pushing a true: count unchanged.
	w.Push(true)
	if w.Ones() != 1 {
		t.Errorf("after swap push: Ones=%d, want 1", w.Ones())
	}
}

func TestAllOnesThenAllZeros(t *testing.T) {
	w := New(100)
	for i := 0; i < 100; i++ {
		w.Push(true)
	}
	if w.Ones() != 100 {
		t.Fatalf("Ones = %d, want 100", w.Ones())
	}
	for i := 0; i < 100; i++ {
		w.Push(false)
	}
	if w.Ones() != 0 {
		t.Errorf("Ones = %d after flushing with zeros, want 0", w.Ones())
	}
	if w.Len() != 100 {
		t.Errorf("Len = %d, want 100", w.Len())
	}
}

func TestReset(t *testing.T) {
	w := New(16)
	for i := 0; i < 20; i++ {
		w.Push(i%2 == 0)
	}
	w.Reset()
	if w.Len() != 0 || w.Ones() != 0 {
		t.Errorf("after Reset: Len=%d Ones=%d, want 0, 0", w.Len(), w.Ones())
	}
	w.Push(true)
	if w.Ones() != 1 || w.Len() != 1 {
		t.Errorf("push after Reset: Len=%d Ones=%d, want 1, 1", w.Len(), w.Ones())
	}
}

func TestString(t *testing.T) {
	w := New(8)
	w.Push(true)
	if got, want := w.String(), "window{1/8 ones=1}"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// TestOnesMatchesRecount verifies the incremental 1-counter never drifts from
// a ground-truth popcount, across window sizes including non-multiples of 64.
func TestOnesMatchesRecount(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, size := range []int{1, 3, 63, 64, 65, 100, 128, 200, 256} {
		w := New(size)
		for i := 0; i < 3*size+17; i++ {
			w.Push(rng.Intn(2) == 0)
			if got, want := w.Ones(), w.Recount(); got != want {
				t.Fatalf("size=%d push=%d: Ones=%d, Recount=%d", size, i, got, want)
			}
		}
	}
}

// Property: a window of size N fed K≥N observations reports exactly the
// number of set values among the last N observations.
func TestPropertyWindowMatchesSuffix(t *testing.T) {
	f := func(seed int64, sizeRaw uint8, extraRaw uint16) bool {
		size := int(sizeRaw)%200 + 1
		total := size + int(extraRaw)%500
		rng := rand.New(rand.NewSource(seed))
		w := New(size)
		history := make([]bool, 0, total)
		for i := 0; i < total; i++ {
			v := rng.Intn(2) == 0
			history = append(history, v)
			w.Push(v)
		}
		want := 0
		for _, v := range history[len(history)-size:] {
			if v {
				want++
			}
		}
		return w.Ones() == want && w.Len() == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Fraction is always within [0,1] and Ones ≤ Len ≤ Size.
func TestPropertyInvariants(t *testing.T) {
	f := func(seed int64, sizeRaw uint8, nRaw uint16) bool {
		size := int(sizeRaw)%300 + 1
		n := int(nRaw) % 700
		rng := rand.New(rand.NewSource(seed))
		w := New(size)
		for i := 0; i < n; i++ {
			w.Push(rng.Intn(3) == 0)
			frac := w.Fraction(0)
			if frac < 0 || frac > 1 {
				return false
			}
			if w.Ones() > w.Len() || w.Len() > w.Size() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestDefaultSizesMatchPaper(t *testing.T) {
	if DefaultTaskWindow != 64 {
		t.Errorf("DefaultTaskWindow = %d, want 64 (Table 1)", DefaultTaskWindow)
	}
	if DefaultArrivalWindow != 256 {
		t.Errorf("DefaultArrivalWindow = %d, want 256 (Table 1)", DefaultArrivalWindow)
	}
}

func BenchmarkPush(b *testing.B) {
	w := New(DefaultArrivalWindow)
	for i := 0; i < b.N; i++ {
		w.Push(i&1 == 0)
	}
}
