package window

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRateTrackerLambda(t *testing.T) {
	r := NewRateTracker(8, 1.0, 0.5)
	// Before observations, prior applies: λ = 0.5 / 1s.
	if got := r.Lambda(); got != 0.5 {
		t.Errorf("prior Lambda = %g, want 0.5", got)
	}
	// 3 of 4 captures stored at 1 capture/s → λ = 0.75/s.
	for _, stored := range []bool{true, true, true, false} {
		r.Observe(stored)
	}
	if got := r.Lambda(); got != 0.75 {
		t.Errorf("Lambda = %g, want 0.75", got)
	}
}

func TestRateTrackerCapturePeriodScaling(t *testing.T) {
	r := NewRateTracker(4, 2.0, 0)
	r.Observe(true)
	r.Observe(true)
	// Every capture stored, one capture per 2 s → λ = 0.5/s.
	if got := r.Lambda(); got != 0.5 {
		t.Errorf("Lambda = %g, want 0.5", got)
	}
	r.SetCapturePeriod(4.0)
	if got := r.Lambda(); got != 0.25 {
		t.Errorf("Lambda after period change = %g, want 0.25", got)
	}
}

func TestRateTrackerPanics(t *testing.T) {
	cases := []func(){
		func() { NewRateTracker(8, 0, 0.5) },
		func() { NewRateTracker(8, -1, 0.5) },
		func() { NewRateTracker(8, 1, -0.1) },
		func() { NewRateTracker(8, 1, 1.1) },
		func() { NewRateTracker(8, 1, 0.5).SetCapturePeriod(0) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestProbTrackerPriorAndConvergence(t *testing.T) {
	p := NewProbTracker(16, 1.0)
	if got := p.Probability(); got != 1.0 {
		t.Errorf("prior Probability = %g, want 1", got)
	}
	// Observe the task running on 1 of every 4 completions.
	for i := 0; i < 16; i++ {
		p.Observe(i%4 == 0)
	}
	if got := p.Probability(); got != 0.25 {
		t.Errorf("Probability = %g, want 0.25", got)
	}
}

func TestProbTrackerPriorValidation(t *testing.T) {
	for _, prior := range []float64{-0.01, 1.01} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewProbTracker(prior=%g) did not panic", prior)
				}
			}()
			NewProbTracker(8, prior)
		}()
	}
}

// Property: λ is non-negative, and never exceeds 1/capturePeriod (a device
// cannot store inputs faster than it captures them).
func TestPropertyLambdaBounded(t *testing.T) {
	f := func(seed int64, periodRaw uint8, n uint8) bool {
		period := float64(periodRaw%10) + 0.5
		r := NewRateTracker(32, period, 1)
		for i := 0; i < int(n); i++ {
			r.Observe(seed>>uint(i%60)&1 == 0)
		}
		l := r.Lambda()
		return l >= 0 && l <= 1/period+1e-12 && !math.IsNaN(l)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: probability tracked over a window equals the set fraction of the
// window suffix, so it always lies in [0,1].
func TestPropertyProbabilityBounded(t *testing.T) {
	f := func(bitsRaw uint64, n uint8) bool {
		p := NewProbTracker(64, 0.5)
		for i := 0; i < int(n); i++ {
			p.Observe(bitsRaw>>uint(i%64)&1 == 1)
		}
		prob := p.Probability()
		return prob >= 0 && prob <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
