package window

import (
	"math/bits"
	"testing"
)

// FuzzBitWindow drives a window with an arbitrary op stream and checks the
// incremental 1-counter against a reference popcount after every step.
func FuzzBitWindow(f *testing.F) {
	f.Add(uint16(64), []byte{0x2f, 0x81, 0x00})
	f.Add(uint16(1), []byte{0xff})
	f.Add(uint16(200), []byte{})
	f.Fuzz(func(t *testing.T, sizeRaw uint16, ops []byte) {
		size := int(sizeRaw)%300 + 1
		w := New(size)
		var history []bool
		for _, op := range ops {
			for b := 0; b < 8; b++ {
				v := op>>uint(b)&1 == 1
				w.Push(v)
				history = append(history, v)
			}
			if got, want := w.Ones(), suffixOnes(history, size); got != want {
				t.Fatalf("size=%d after %d pushes: Ones=%d, want %d", size, len(history), got, want)
			}
			if w.Len() > size {
				t.Fatalf("Len %d exceeds size %d", w.Len(), size)
			}
		}
		_ = bits.OnesCount8(0) // keep the import honest
	})
}

func suffixOnes(history []bool, size int) int {
	start := 0
	if len(history) > size {
		start = len(history) - size
	}
	n := 0
	for _, v := range history[start:] {
		if v {
			n++
		}
	}
	return n
}
