package fleet

import (
	"math"

	"quetzal/internal/metrics"
	"quetzal/internal/obs"
)

// FractionLayout is the histogram layout for [0,1] ratio metrics: 50 linear
// buckets of width 0.02 plus the implicit overflow bucket.
func FractionLayout() obs.Layout { return obs.LinearBuckets(0.02, 0.02, 50) }

// EnergyLayout is the histogram layout for per-device wasted energy in
// joules: 1 mJ doubling up to ~8.4 kJ.
func EnergyLayout() obs.Layout { return obs.ExpBuckets(0.001, 2, 24) }

// Totals are the fleet's exact integer counters. Integer addition is
// associative, so totals may be subtotaled per shard and combined in any
// grouping without changing a single bit — they carry no fold-order caveat.
type Totals struct {
	Devices              int `json:"devices"`
	Captures             int `json:"captures"`
	CaptureMisses        int `json:"capture_misses"`
	MissedInteresting    int `json:"missed_interesting"`
	Arrivals             int `json:"arrivals"`
	InterestingArrivals  int `json:"interesting_arrivals"`
	IBOLossesInteresting int `json:"ibo_losses_interesting"`
	FalseNegatives       int `json:"false_negatives"`
	ReportedInteresting  int `json:"reported_interesting"`
	HighQInteresting     int `json:"highq_interesting"`
	JobsCompleted        int `json:"jobs_completed"`
	Degradations         int `json:"degradations"`
	Brownouts            int `json:"brownouts"`
	TransientFaults      int `json:"transient_faults"`
	MeasSamples          int `json:"meas_samples"`
}

func (t *Totals) add(o Totals) {
	t.Devices += o.Devices
	t.Captures += o.Captures
	t.CaptureMisses += o.CaptureMisses
	t.MissedInteresting += o.MissedInteresting
	t.Arrivals += o.Arrivals
	t.InterestingArrivals += o.InterestingArrivals
	t.IBOLossesInteresting += o.IBOLossesInteresting
	t.FalseNegatives += o.FalseNegatives
	t.ReportedInteresting += o.ReportedInteresting
	t.HighQInteresting += o.HighQInteresting
	t.JobsCompleted += o.JobsCompleted
	t.Degradations += o.Degradations
	t.Brownouts += o.Brownouts
	t.TransientFaults += o.TransientFaults
	t.MeasSamples += o.MeasSamples
}

// Block is one shard's results in columnar form: one entry per device, in
// device-index order, per metric — the unit of transfer between shard
// workers and the fold loop. A Block for a 512-device shard is ~33 KiB
// regardless of how much state each device's full Results would hold.
type Block struct {
	SimSeconds          []float64
	IBOFraction         []float64
	DiscardedFraction   []float64
	HighQualityShare    []float64
	CaptureMissFraction []float64
	WastedJoules        []float64
	HarvestedJoules     []float64
	ConsumedJoules      []float64
	Totals              Totals
}

// NewBlock preallocates a block for n devices.
func NewBlock(n int) *Block {
	return &Block{
		SimSeconds:          make([]float64, 0, n),
		IBOFraction:         make([]float64, 0, n),
		DiscardedFraction:   make([]float64, 0, n),
		HighQualityShare:    make([]float64, 0, n),
		CaptureMissFraction: make([]float64, 0, n),
		WastedJoules:        make([]float64, 0, n),
		HarvestedJoules:     make([]float64, 0, n),
		ConsumedJoules:      make([]float64, 0, n),
	}
}

// Push appends one device's summary as the block's next row.
func (b *Block) Push(s metrics.Summary) {
	b.SimSeconds = append(b.SimSeconds, s.SimSeconds)
	b.IBOFraction = append(b.IBOFraction, s.IBOFraction)
	b.DiscardedFraction = append(b.DiscardedFraction, s.DiscardedFraction)
	b.HighQualityShare = append(b.HighQualityShare, s.HighQualityShare)
	b.CaptureMissFraction = append(b.CaptureMissFraction, s.CaptureMissFraction)
	b.WastedJoules = append(b.WastedJoules, s.WastedJoules)
	b.HarvestedJoules = append(b.HarvestedJoules, s.HarvestedJoules)
	b.ConsumedJoules = append(b.ConsumedJoules, s.ConsumedJoules)
	b.Totals.add(Totals{
		Devices:              1,
		Captures:             s.Captures,
		CaptureMisses:        s.CaptureMisses,
		MissedInteresting:    s.MissedInteresting,
		Arrivals:             s.Arrivals,
		InterestingArrivals:  s.InterestingArrivals,
		IBOLossesInteresting: s.IBOLossesInteresting,
		FalseNegatives:       s.FalseNegatives,
		ReportedInteresting:  s.ReportedInteresting,
		HighQInteresting:     s.HighQInteresting,
		JobsCompleted:        s.JobsCompleted,
		Degradations:         s.Degradations,
		Brownouts:            s.Brownouts,
		TransientFaults:      s.TransientFaults,
		MeasSamples:          s.MeasSamples,
	})
}

// Len returns the number of device rows in the block.
func (b *Block) Len() int { return len(b.SimSeconds) }

// Accumulator folds device summaries into fixed-size state: five fleet
// histograms, the exact integer totals, and ordered floating-point sums.
// Its memory is constant — fleet RSS stays O(window · block), never
// O(devices · Results).
//
// Byte-identity contract: histogram counts and integer totals are exact
// under any fold grouping, but the float sums (and histogram internal sums
// feeding Dist.Mean) are ordered — the fleet runner folds blocks strictly
// in shard order so Aggregate is byte-identical across worker counts and
// shard windows. Merge preserves exactness for counts/totals but adds the
// float sums in merge order; merge composition is deterministic only for a
// fixed merge order.
type Accumulator struct {
	hIBO    *obs.Histogram
	hDisc   *obs.Histogram
	hHQ     *obs.Histogram
	hMiss   *obs.Histogram
	hWasted *obs.Histogram

	totals     Totals
	simSeconds float64
	harvested  float64
	consumed   float64
	wasted     float64
}

// NewAccumulator builds an empty accumulator.
func NewAccumulator() *Accumulator {
	return &Accumulator{
		hIBO:    obs.NewHistogram(FractionLayout()),
		hDisc:   obs.NewHistogram(FractionLayout()),
		hHQ:     obs.NewHistogram(FractionLayout()),
		hMiss:   obs.NewHistogram(FractionLayout()),
		hWasted: obs.NewHistogram(EnergyLayout()),
	}
}

// Fold adds one device's summary.
func (a *Accumulator) Fold(s metrics.Summary) {
	a.hIBO.Observe(s.IBOFraction)
	a.hDisc.Observe(s.DiscardedFraction)
	a.hHQ.Observe(s.HighQualityShare)
	a.hMiss.Observe(s.CaptureMissFraction)
	a.hWasted.Observe(s.WastedJoules)
	a.simSeconds += s.SimSeconds
	a.harvested += s.HarvestedJoules
	a.consumed += s.ConsumedJoules
	a.wasted += s.WastedJoules
	a.totals.add(Totals{
		Devices:              1,
		Captures:             s.Captures,
		CaptureMisses:        s.CaptureMisses,
		MissedInteresting:    s.MissedInteresting,
		Arrivals:             s.Arrivals,
		InterestingArrivals:  s.InterestingArrivals,
		IBOLossesInteresting: s.IBOLossesInteresting,
		FalseNegatives:       s.FalseNegatives,
		ReportedInteresting:  s.ReportedInteresting,
		HighQInteresting:     s.HighQInteresting,
		JobsCompleted:        s.JobsCompleted,
		Degradations:         s.Degradations,
		Brownouts:            s.Brownouts,
		TransientFaults:      s.TransientFaults,
		MeasSamples:          s.MeasSamples,
	})
}

// FoldBlock folds a shard block row by row, in the block's device order.
func (a *Accumulator) FoldBlock(b *Block) {
	for i := range b.SimSeconds {
		a.hIBO.Observe(b.IBOFraction[i])
		a.hDisc.Observe(b.DiscardedFraction[i])
		a.hHQ.Observe(b.HighQualityShare[i])
		a.hMiss.Observe(b.CaptureMissFraction[i])
		a.hWasted.Observe(b.WastedJoules[i])
		a.simSeconds += b.SimSeconds[i]
		a.harvested += b.HarvestedJoules[i]
		a.consumed += b.ConsumedJoules[i]
		a.wasted += b.WastedJoules[i]
	}
	a.totals.add(b.Totals)
}

// Merge adds another accumulator's state into a. Histogram counts and
// integer totals merge exactly (any grouping agrees); the float sums add in
// merge order (see the type comment's byte-identity contract).
func (a *Accumulator) Merge(o *Accumulator) error {
	for _, m := range []struct{ dst, src *obs.Histogram }{
		{a.hIBO, o.hIBO}, {a.hDisc, o.hDisc}, {a.hHQ, o.hHQ},
		{a.hMiss, o.hMiss}, {a.hWasted, o.hWasted},
	} {
		if err := m.dst.Merge(m.src); err != nil {
			return err
		}
	}
	a.totals.add(o.totals)
	a.simSeconds += o.simSeconds
	a.harvested += o.harvested
	a.consumed += o.consumed
	a.wasted += o.wasted
	return nil
}

// Dist is one fleet histogram rendered for the wire: exact per-bucket
// counts plus min/mean/max and interpolated quantiles.
type Dist struct {
	Count   uint64    `json:"count"`
	Min     float64   `json:"min"`
	Max     float64   `json:"max"`
	Mean    float64   `json:"mean"`
	P50     float64   `json:"p50"`
	P90     float64   `json:"p90"`
	P99     float64   `json:"p99"`
	Buckets []uint64  `json:"buckets"`
	Bounds  []float64 `json:"bounds"` // bucket upper bounds; +Inf implicit
}

func distOf(h *obs.Histogram) Dist {
	d := Dist{
		Count:   h.Count(),
		Min:     h.Min(),
		Max:     h.Max(),
		Buckets: h.BucketCounts(),
	}
	if d.Count > 0 {
		d.Mean = h.Sum() / float64(d.Count)
		d.P50 = h.Quantile(0.50)
		d.P90 = h.Quantile(0.90)
		d.P99 = h.Quantile(0.99)
	}
	return d
}

// Aggregate is the deterministic fleet-level result: exact totals, ordered
// energy sums, population ratios computed from the integer totals, and the
// five distribution histograms. Marshaling an Aggregate to JSON is the
// byte-identity surface the determinism tests pin.
type Aggregate struct {
	Totals Totals `json:"totals"`

	SimSeconds      float64 `json:"sim_seconds_total"`
	HarvestedJoules float64 `json:"harvested_joules_total"`
	ConsumedJoules  float64 `json:"consumed_joules_total"`
	WastedJoules    float64 `json:"wasted_joules_total"`

	// Fleet-level ratios over the pooled integer totals (exact): e.g.
	// IBOFraction is all interesting IBO losses over all interesting
	// arrivals, fleet-wide — not the mean of per-device fractions (that
	// lives in Histograms["ibo_fraction"].Mean).
	IBOFraction         float64 `json:"ibo_fraction"`
	DiscardedFraction   float64 `json:"discarded_fraction"`
	HighQualityShare    float64 `json:"high_quality_share"`
	CaptureMissFraction float64 `json:"capture_miss_fraction"`

	Histograms map[string]Dist `json:"histograms"`
}

func ratio(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Aggregate renders the accumulator's state.
func (a *Accumulator) Aggregate() *Aggregate {
	t := a.totals
	return &Aggregate{
		Totals:              t,
		SimSeconds:          a.simSeconds,
		HarvestedJoules:     a.harvested,
		ConsumedJoules:      a.consumed,
		WastedJoules:        a.wasted,
		IBOFraction:         ratio(t.IBOLossesInteresting, t.InterestingArrivals),
		DiscardedFraction:   ratio(t.IBOLossesInteresting+t.FalseNegatives, t.InterestingArrivals),
		HighQualityShare:    ratio(t.HighQInteresting, t.ReportedInteresting),
		CaptureMissFraction: ratio(t.MissedInteresting, t.MissedInteresting+t.InterestingArrivals),
		Histograms: map[string]Dist{
			"ibo_fraction":          distOf(a.hIBO),
			"discarded_fraction":    distOf(a.hDisc),
			"high_quality_share":    distOf(a.hHQ),
			"capture_miss_fraction": distOf(a.hMiss),
			"wasted_joules":         distOf(a.hWasted),
		},
	}
}

// sanity guard: the fraction layout must cover [0,1] so ratio observations
// never land in the overflow bucket (quantile interpolation stays tight).
var _ = func() struct{} {
	b := FractionLayout().Bounds()
	if b[len(b)-1] < 1 || math.Abs(b[len(b)-1]-1) > 1e-9 {
		panic("fleet: fraction layout must end at 1")
	}
	return struct{}{}
}()
