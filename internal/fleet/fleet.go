// Package fleet scales the simulator from one device to a city of them: one
// fleet run instantiates N engine machines from heterogeneous device
// profiles (per-device parameter jitter, correlated solar skies), shards
// them across a batch runner, and streams every finished device through a
// columnar fold into fixed-size aggregate state (internal histograms +
// exact counters), so memory stays bounded at any fleet size.
//
// Determinism is the design center. Every per-device random stream is
// derived from (fleet seed, device index, stream id) by a SplitMix64-style
// mixer — never from shard id, worker id, or execution order — and the
// aggregate fold runs strictly in device order (see runner.RunBatch). The
// resulting Aggregate is byte-identical across shard sizes and worker
// counts, which the package tests pin.
package fleet

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"time"

	"quetzal/internal/energy"
	"quetzal/internal/experiments"
	"quetzal/internal/metrics"
	"quetzal/internal/runner"
	"quetzal/internal/sim"
	"quetzal/internal/trace"
)

// Stream identifies one independent per-device random stream.
type Stream uint64

const (
	// StreamSolar seeds the device's local cloud/noise draw.
	StreamSolar Stream = 1 + iota
	// StreamEvents seeds the device's sensing-event trace.
	StreamEvents
	// StreamSim seeds the simulator (classifier coin flips).
	StreamSim
	// StreamJitter seeds the device's parameter-jitter draws.
	StreamJitter
	// StreamRegional seeds the fleet's shared regional sky (device index
	// ignored — one series per fleet).
	StreamRegional
	// StreamFaults seeds the device's transient-fault draws
	// (internal/faults). Appended after StreamRegional so every earlier
	// stream keeps its historical values.
	StreamFaults
)

func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// DeviceSeed derives the seed for one device's stream. It depends only on
// (fleetSeed, device, stream) — not on shard layout or execution order — so
// any re-sharding of the same fleet replays identical devices.
func DeviceSeed(fleetSeed int64, device int, stream Stream) int64 {
	h := splitmix64(uint64(fleetSeed))
	h = splitmix64(h ^ (uint64(device) + 1))
	h = splitmix64(h ^ uint64(stream))
	return int64(h)
}

// Options tunes fleet execution. The zero value of every field is a usable
// default. None of these fields may change the Aggregate — only how fast it
// is produced (pinned by TestFleetDeterminism).
type Options struct {
	// Workers bounds concurrent shard executions; 0 → runtime.NumCPU().
	Workers int
	// Window bounds shards dispatched ahead of the fold cursor; 0 → 2 ×
	// Workers. Peak residency is O(Window · Block).
	Window int
	// DrainTime is the per-device tail after its last event, seconds;
	// 0 → 15. Shorter than the single-run default 60 s: fleet sweeps study
	// population distributions, and the tail only needs to let in-flight
	// work settle.
	DrainTime float64
	// Checks enables the per-device invariant checker (sim.ChecksOn). The
	// default runs fleets with checks off: the identities are pinned by the
	// single-device test layers, and a population sweep optimizes for
	// throughput.
	Checks sim.CheckMode
	// OnProgress, when set, receives (devices done, total) after each shard
	// folds; calls are serialized and arrive in shard order.
	OnProgress func(done, total int)
	// OnHeapSample, when set, receives runtime heap-alloc samples taken
	// during the fold loop (for peak-RSS accounting in services/benches).
	OnHeapSample func(heapAlloc uint64)
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	if o.Window <= 0 {
		o.Window = 2 * o.Workers
	}
	if o.DrainTime <= 0 {
		o.DrainTime = 15
	}
	return o
}

// RunStats is the nondeterministic half of a fleet run's outcome: timing,
// throughput and memory, separated from the deterministic Aggregate.
type RunStats struct {
	Devices       int           `json:"devices"`
	Shards        int           `json:"shards"`
	Elapsed       time.Duration `json:"-"`
	ElapsedSec    float64       `json:"elapsed_sec"`
	DevicesPerSec float64       `json:"devices_per_sec"`
	// PeakHeapBytes is the largest runtime.MemStats.HeapAlloc observed at
	// fold points — the bounded-RSS evidence BENCH_fleet.json records.
	PeakHeapBytes uint64 `json:"peak_heap_bytes"`
}

// fleetRun carries the per-fleet shared state device builds draw from.
type fleetRun struct {
	plan  experiments.FleetPlan
	opts  Options
	setup experiments.Setup
	solar *trace.FleetSolar
	check sim.CheckMode
}

// newFleetRun resolves the plan into shared fleet state.
func newFleetRun(plan experiments.FleetPlan, opts Options) (*fleetRun, error) {
	profile, ok := experiments.ProfileByName(plan.Profile)
	if !ok {
		return nil, fmt.Errorf("fleet: unknown profile %q", plan.Profile)
	}
	if plan.Devices <= 0 || plan.Events <= 0 || plan.ShardSize <= 0 {
		return nil, fmt.Errorf("fleet: plan not resolved (devices/events/shard must be positive): %s", plan)
	}
	if plan.Correlation <= 0 || plan.Correlation > 1 {
		return nil, fmt.Errorf("fleet: plan correlation must be in (0,1], got %g", plan.Correlation)
	}

	// The shared sky's envelope shape derives from a deterministic
	// reference horizon (expected event span + drain); individual devices
	// may run longer — the regional series extends on demand.
	refDur := float64(plan.Events)*(5+math.Min(25, plan.Env.MaxDuration)) + opts.DrainTime + 120
	solarCfg := trace.DefaultSolarConfig(refDur, DeviceSeed(plan.Seed, 0, StreamRegional))
	checks := sim.ChecksOff
	if opts.Checks == sim.ChecksOn {
		checks = sim.ChecksOn
	}
	return &fleetRun{
		plan: plan,
		opts: opts,
		setup: experiments.Setup{
			Profile:   profile,
			NumEvents: plan.Events,
			Seed:      plan.Seed,
			Cells:     experiments.ReferenceCells,
			Engine:    plan.Engine,
		},
		solar: trace.NewFleetSolar(solarCfg, plan.Correlation),
		check: checks,
	}, nil
}

// jittered applies symmetric fractional jitter: base × (1 + j·u), u ∈ [-1,1].
func jittered(base, j, u float64) float64 { return base * (1 + j*u) }

// deviceConfig assembles device i's simulation config: its own event trace,
// its correlated solar draw, and its jittered physical parameters.
func (f *fleetRun) deviceConfig(i int) (sim.Config, error) {
	plan := f.plan
	events := trace.GenerateEvents(trace.DefaultEventConfig(
		plan.Events, plan.Env.MaxDuration, DeviceSeed(plan.Seed, i, StreamEvents)))
	duration := events.Duration() + f.opts.DrainTime
	power := f.solar.Device(DeviceSeed(plan.Seed, i, StreamSolar), duration)

	// Heterogeneity: each parameter draws from its own fixed slot in the
	// jitter stream (always consumed, so adding a parameter later shifts
	// nothing before it, and jitter=0 devices share streams with jittered
	// ones).
	jr := rand.New(rand.NewSource(DeviceSeed(plan.Seed, i, StreamJitter)))
	uPeriod := 2*jr.Float64() - 1
	uCap := 2*jr.Float64() - 1
	uBuf := 2*jr.Float64() - 1
	uCells := 2*jr.Float64() - 1
	j := plan.Jitter

	capturePeriod := jittered(1.0, j, uPeriod)
	store := energy.DefaultConfig()
	store.Capacitance = jittered(store.Capacitance, j, uCap)
	bufCap := int(math.Round(jittered(float64(f.setup.Profile.BufferCapacity), j, uBuf)))
	if bufCap < 1 {
		bufCap = 1
	}
	var pw trace.PowerTrace = power
	if scale := jittered(1.0, j, uCells); scale != 1 {
		pw = trace.Scaled{Base: power, Factor: scale}
	}

	app := f.setup.Profile.PersonDetectionApp()
	setup := f.setup
	setup.CapturePeriod = capturePeriod
	ctl, ctlBufCap, err := setup.Controller(plan.System, app, pw, events)
	if err != nil {
		return sim.Config{}, fmt.Errorf("fleet: device %d: %w", i, err)
	}
	if ctlBufCap > 0 {
		bufCap = ctlBufCap
	}
	cfg := sim.Config{
		Profile:        setup.Profile,
		App:            app,
		Controller:     ctl,
		Power:          pw,
		Events:         events,
		Store:          store,
		Engine:         plan.Engine,
		CapturePeriod:  capturePeriod,
		DrainTime:      f.opts.DrainTime,
		BufferCapacity: bufCap,
		Seed:           DeviceSeed(plan.Seed, i, StreamSim),
		Checks:         f.check,
		Environment:    plan.Env.Name,
	}
	// Hardware realism: a plan-level spec overrides the environment's own.
	// The fault seed derives from (fleet seed, device, stream) like every
	// other per-device stream, so aggregates stay byte-identical across
	// shard sizes and worker counts.
	cfg.Faults = plan.Env.Faults
	if plan.Faults.Enabled() {
		cfg.Faults = plan.Faults
	}
	if cfg.Faults.Enabled() {
		cfg.FaultSeed = DeviceSeed(plan.Seed, i, StreamFaults)
	}
	return cfg, nil
}

// runShard simulates devices [s.Start, s.End) in device order and returns
// their columnar block.
func (f *fleetRun) runShard(ctx context.Context, s runner.Shard) (*Block, error) {
	b := NewBlock(s.Len())
	for i := s.Start; i < s.End; i++ {
		cfg, err := f.deviceConfig(i)
		if err != nil {
			return nil, err
		}
		simulator, err := sim.New(cfg)
		if err != nil {
			return nil, fmt.Errorf("fleet: device %d: %w", i, err)
		}
		err = simulator.RunIntoContext(ctx, func(res *metrics.Results) {
			b.Push(metrics.Summarize(res))
		})
		if err != nil {
			return nil, fmt.Errorf("fleet: device %d: %w", i, err)
		}
	}
	return b, nil
}

// Run executes one fleet plan: plan.Devices simulations sharded plan.
// ShardSize at a time over opts.Workers, folded in device order into one
// Accumulator. The returned Aggregate depends only on the plan; RunStats
// carries the wall-clock/memory side.
func Run(ctx context.Context, plan experiments.FleetPlan, opts Options) (*Aggregate, RunStats, error) {
	opts = opts.withDefaults()
	f, err := newFleetRun(plan, opts)
	if err != nil {
		return nil, RunStats{}, err
	}

	acc := NewAccumulator()
	var peakHeap uint64
	folds := 0
	sampleHeap := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > peakHeap {
			peakHeap = ms.HeapAlloc
		}
		if opts.OnHeapSample != nil {
			opts.OnHeapSample(ms.HeapAlloc)
		}
	}

	start := time.Now()
	_, err = runner.RunBatch(ctx, plan.Devices, runner.BatchConfig{
		Workers:    opts.Workers,
		ShardSize:  plan.ShardSize,
		Window:     opts.Window,
		OnProgress: opts.OnProgress,
	}, f.runShard, func(s runner.Shard, b *Block) error {
		if b.Len() != s.Len() {
			return fmt.Errorf("fleet: shard %d produced %d rows for %d devices", s.Index, b.Len(), s.Len())
		}
		acc.FoldBlock(b)
		// Heap sampling is cheap relative to a shard of simulations, but
		// not to a fold; sample sparsely plus once at the end.
		if folds%8 == 0 {
			sampleHeap()
		}
		folds++
		return nil
	})
	sampleHeap()
	elapsed := time.Since(start)
	if err != nil {
		return nil, RunStats{}, err
	}

	stats := RunStats{
		Devices:       plan.Devices,
		Shards:        runner.Shards(plan.Devices, plan.ShardSize),
		Elapsed:       elapsed,
		ElapsedSec:    elapsed.Seconds(),
		PeakHeapBytes: peakHeap,
	}
	if sec := elapsed.Seconds(); sec > 0 {
		stats.DevicesPerSec = float64(plan.Devices) / sec
	}
	return acc.Aggregate(), stats, nil
}
