package fleet

import (
	"context"
	"encoding/json"
	"testing"

	"quetzal/internal/experiments"
)

// testPlan resolves a small fleet plan through the same FleetSpec gate the
// service and CLI use.
func testPlan(t *testing.T, devices int, mutate func(*experiments.FleetSpec)) experiments.FleetPlan {
	t.Helper()
	spec := experiments.FleetSpec{
		Devices: devices,
		System:  experiments.SysQuetzal,
		Env:     experiments.LessCrowded.Name,
		Events:  3,
		Jitter:  0.2,
	}
	if mutate != nil {
		mutate(&spec)
	}
	plan, err := spec.Plan()
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	return plan
}

// TestFleetDeterminism is the acceptance pin for the whole fleet path: the
// marshaled Aggregate must be byte-identical across worker counts, shard
// sizes, and window depths — resharding or reparallelizing a fleet may not
// move a single bit of its result.
func TestFleetDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet determinism sweep is seconds-long")
	}
	const devices = 96
	var reference []byte
	for _, cfg := range []struct {
		workers, shard, window int
	}{
		{1, devices, 0}, // single worker, single shard: the ground truth
		{4, 16, 0},
		{16, 7, 3}, // ragged final shard + tight window
	} {
		plan := testPlan(t, devices, func(sp *experiments.FleetSpec) {
			sp.ShardSize = cfg.shard
		})
		agg, stats, err := Run(context.Background(), plan, Options{
			Workers: cfg.workers,
			Window:  cfg.window,
		})
		if err != nil {
			t.Fatalf("workers=%d shard=%d: %v", cfg.workers, cfg.shard, err)
		}
		if stats.Devices != devices || agg.Totals.Devices != devices {
			t.Fatalf("workers=%d shard=%d: ran %d/%d devices, want %d",
				cfg.workers, cfg.shard, stats.Devices, agg.Totals.Devices, devices)
		}
		got, err := json.Marshal(agg)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		if reference == nil {
			reference = got
			// The reference run must describe a live fleet, not a vacuum.
			if agg.Totals.Arrivals == 0 || agg.SimSeconds <= 0 {
				t.Fatalf("degenerate reference aggregate: %s", got)
			}
			continue
		}
		if string(got) != string(reference) {
			t.Errorf("workers=%d shard=%d window=%d: aggregate diverged from reference\n got: %s\nwant: %s",
				cfg.workers, cfg.shard, cfg.window, got, reference)
		}
	}
}

// TestFleetDeterminismLockstep pins the engine half of the fleet contract:
// swapping the stepper between event-driven and lockstep may not move a
// single bit of the marshaled Aggregate. With TestFleetDeterminism (which
// runs under the default lockstep engine) this proves the fleet default can
// change speed without changing physics.
func TestFleetDeterminismLockstep(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two small fleets")
	}
	run := func(engine string) string {
		plan := testPlan(t, 48, func(sp *experiments.FleetSpec) { sp.Engine = engine })
		agg, _, err := Run(context.Background(), plan, Options{Workers: 4})
		if err != nil {
			t.Fatalf("engine %s: %v", engine, err)
		}
		if agg.Totals.Arrivals == 0 || agg.SimSeconds <= 0 {
			t.Fatalf("engine %s: degenerate aggregate", engine)
		}
		b, err := json.Marshal(agg)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return string(b)
	}
	event, lockstep := run("event"), run("lockstep")
	if event != lockstep {
		t.Errorf("lockstep aggregate diverged from event-driven\n   event: %s\nlockstep: %s",
			event, lockstep)
	}
}

// TestFleetSeedChangesAggregate guards against the failure mode where device
// seeds collapse to a constant (every device identical) or the fleet seed is
// ignored.
func TestFleetSeedChangesAggregate(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two small fleets")
	}
	run := func(seed int64) string {
		plan := testPlan(t, 24, func(sp *experiments.FleetSpec) { sp.Seed = seed })
		agg, _, err := Run(context.Background(), plan, Options{Workers: 2})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, err := json.Marshal(agg)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return string(b)
	}
	if run(42) == run(1042) {
		t.Fatal("different fleet seeds produced identical aggregates")
	}
}

// TestDeviceSeedProperties pins the seed-derivation contract: distinct
// (device, stream) pairs get distinct seeds, and the derivation depends on
// nothing else.
func TestDeviceSeedProperties(t *testing.T) {
	const fleetSeed = 42
	streams := []Stream{StreamSolar, StreamEvents, StreamSim, StreamJitter, StreamRegional}
	seen := make(map[int64][2]int)
	for dev := 0; dev < 2000; dev++ {
		for _, st := range streams {
			s := DeviceSeed(fleetSeed, dev, st)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: device %d stream %d == device %d stream %d",
					dev, st, prev[0], prev[1])
			}
			seen[s] = [2]int{dev, int(st)}
			// Pure function of its inputs: recomputation agrees.
			if again := DeviceSeed(fleetSeed, dev, st); again != s {
				t.Fatalf("DeviceSeed not deterministic for device %d stream %d", dev, st)
			}
		}
	}
	// A different fleet seed relabels everything.
	if DeviceSeed(1, 0, StreamSolar) == DeviceSeed(2, 0, StreamSolar) {
		t.Fatal("fleet seed does not reach the derived seed")
	}
}

// TestFleetSolarOrderInvariance pins the correlated-sky contract: the trace a
// device draws depends only on its seed and duration, not on the order
// devices ask. Two fleets generating the same devices in opposite order must
// produce identical traces.
func TestFleetSolarOrderInvariance(t *testing.T) {
	plan := testPlan(t, 8, nil)
	fwd, err := newFleetRun(plan, Options{}.withDefaults())
	if err != nil {
		t.Fatalf("newFleetRun: %v", err)
	}
	rev, err := newFleetRun(plan, Options{}.withDefaults())
	if err != nil {
		t.Fatalf("newFleetRun: %v", err)
	}

	type sample struct{ t, p float64 }
	probe := func(f *fleetRun, i int) []sample {
		cfg, err := f.deviceConfig(i)
		if err != nil {
			t.Fatalf("deviceConfig(%d): %v", i, err)
		}
		out := make([]sample, 0, 40)
		for ts := 0.0; ts < 20; ts += 0.5 {
			out = append(out, sample{ts, cfg.Power.Power(ts)})
		}
		return out
	}

	forward := make([][]sample, plan.Devices)
	for i := 0; i < plan.Devices; i++ {
		forward[i] = probe(fwd, i)
	}
	for i := plan.Devices - 1; i >= 0; i-- {
		got := probe(rev, i)
		for k := range got {
			if got[k] != forward[i][k] {
				t.Fatalf("device %d trace differs at t=%g under reversed generation order: %g vs %g",
					i, got[k].t, got[k].p, forward[i][k].p)
			}
		}
	}
}

// TestFleetFaultyShardInvariance extends the determinism pin to the
// hardware-realism layer: a faulty fleet (transient faults, dropouts,
// measurement cost) must stay byte-identical across shard sizes and worker
// counts, which requires every fault draw to derive from the split fault
// stream (StreamFaults) and not from shard-local state. The CI faults-smoke
// job runs the same check at 10k devices.
func TestFleetFaultyShardInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet determinism sweep is seconds-long")
	}
	const devices = 96
	faulty := func(sp *experiments.FleetSpec) {
		sp.Env = "faulty" // the league's realism environment
	}
	var reference []byte
	for _, cfg := range []struct {
		workers, shard int
	}{
		{1, devices},
		{4, 16},
		{16, 7}, // ragged final shard
	} {
		plan := testPlan(t, devices, func(sp *experiments.FleetSpec) {
			faulty(sp)
			sp.ShardSize = cfg.shard
		})
		if !plan.Env.Faults.Enabled() {
			t.Fatal("faulty environment resolved without a realism spec")
		}
		agg, _, err := Run(context.Background(), plan, Options{Workers: cfg.workers})
		if err != nil {
			t.Fatalf("workers=%d shard=%d: %v", cfg.workers, cfg.shard, err)
		}
		got, err := json.Marshal(agg)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		if reference == nil {
			reference = got
			if agg.Totals.Arrivals == 0 || agg.Totals.TransientFaults == 0 {
				t.Fatalf("degenerate faulty reference (no arrivals or no faults): %s", got)
			}
			continue
		}
		if string(got) != string(reference) {
			t.Errorf("workers=%d shard=%d: faulty aggregate diverged from reference\n got: %s\nwant: %s",
				cfg.workers, cfg.shard, got, reference)
		}
	}
}

// TestFleetRejectsUnresolvedPlan pins that fleet.Run refuses a hand-built
// plan that skipped FleetSpec.Plan.
func TestFleetRejectsUnresolvedPlan(t *testing.T) {
	_, _, err := Run(context.Background(), experiments.FleetPlan{Devices: 10}, Options{})
	if err == nil {
		t.Fatal("Run accepted an unresolved plan")
	}
}
