package fleet

import (
	"encoding/json"
	"math/rand"
	"testing"

	"quetzal/internal/metrics"
)

// randSummary draws one plausible device summary.
func randSummary(rng *rand.Rand) metrics.Summary {
	return metrics.Summary{
		SimSeconds:           10 + rng.Float64()*100,
		IBOFraction:          rng.Float64(),
		DiscardedFraction:    rng.Float64(),
		HighQualityShare:     rng.Float64(),
		CaptureMissFraction:  rng.Float64(),
		HarvestedJoules:      rng.Float64() * 5,
		ConsumedJoules:       rng.Float64() * 5,
		WastedJoules:         rng.Float64() * 2,
		Captures:             rng.Intn(50),
		CaptureMisses:        rng.Intn(10),
		MissedInteresting:    rng.Intn(5),
		Arrivals:             rng.Intn(40),
		InterestingArrivals:  rng.Intn(20),
		IBOLossesInteresting: rng.Intn(5),
		FalseNegatives:       rng.Intn(5),
		ReportedInteresting:  rng.Intn(15),
		HighQInteresting:     rng.Intn(10),
		JobsCompleted:        rng.Intn(60),
		Degradations:         rng.Intn(8),
		Brownouts:            rng.Intn(3),
	}
}

// TestAccumulatorFoldBlockMatchesFold pins that the columnar block path and
// the scalar fold path agree bit-for-bit when rows arrive in the same order.
func TestAccumulatorFoldBlockMatchesFold(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	summaries := make([]metrics.Summary, 300)
	for i := range summaries {
		summaries[i] = randSummary(rng)
	}

	scalar := NewAccumulator()
	for _, s := range summaries {
		scalar.Fold(s)
	}

	blocked := NewAccumulator()
	for start := 0; start < len(summaries); start += 64 {
		end := start + 64
		if end > len(summaries) {
			end = len(summaries)
		}
		b := NewBlock(end - start)
		for _, s := range summaries[start:end] {
			b.Push(s)
		}
		blocked.FoldBlock(b)
	}

	a, err := json.Marshal(scalar.Aggregate())
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	b, err := json.Marshal(blocked.Aggregate())
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if string(a) != string(b) {
		t.Fatalf("block fold diverged from scalar fold\nscalar: %s\nblock:  %s", a, b)
	}
}

// TestAccumulatorMergeOfSplits pins Merge's exactness contract: counts,
// totals and quantiles from merged per-shard accumulators equal the whole;
// float sums agree within rounding.
func TestAccumulatorMergeOfSplits(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	summaries := make([]metrics.Summary, 500)
	for i := range summaries {
		summaries[i] = randSummary(rng)
	}

	whole := NewAccumulator()
	for _, s := range summaries {
		whole.Fold(s)
	}

	merged := NewAccumulator()
	for start := 0; start < len(summaries); start += 125 {
		part := NewAccumulator()
		for _, s := range summaries[start : start+125] {
			part.Fold(s)
		}
		if err := merged.Merge(part); err != nil {
			t.Fatalf("merge: %v", err)
		}
	}

	wa, ma := whole.Aggregate(), merged.Aggregate()
	if wa.Totals != ma.Totals {
		t.Fatalf("totals diverged: %+v vs %+v", wa.Totals, ma.Totals)
	}
	for name, wd := range wa.Histograms {
		md := ma.Histograms[name]
		if wd.Count != md.Count || wd.Min != md.Min || wd.Max != md.Max {
			t.Fatalf("%s: count/min/max diverged", name)
		}
		if wd.P50 != md.P50 || wd.P90 != md.P90 || wd.P99 != md.P99 {
			t.Fatalf("%s: quantiles diverged: (%g,%g,%g) vs (%g,%g,%g)",
				name, wd.P50, wd.P90, wd.P99, md.P50, md.P90, md.P99)
		}
		for i := range wd.Buckets {
			if wd.Buckets[i] != md.Buckets[i] {
				t.Fatalf("%s: bucket %d diverged", name, i)
			}
		}
	}
	const tol = 1e-9
	for _, c := range []struct {
		name string
		w, m float64
	}{
		{"sim_seconds", wa.SimSeconds, ma.SimSeconds},
		{"harvested", wa.HarvestedJoules, ma.HarvestedJoules},
		{"consumed", wa.ConsumedJoules, ma.ConsumedJoules},
		{"wasted", wa.WastedJoules, ma.WastedJoules},
	} {
		if diff := c.w - c.m; diff > tol*c.w || diff < -tol*c.w {
			t.Fatalf("%s sum diverged: %g vs %g", c.name, c.w, c.m)
		}
	}
}

// TestAggregateRatiosFromTotals pins that fleet-level ratios come from the
// pooled integer totals, not from averaging per-device fractions.
func TestAggregateRatiosFromTotals(t *testing.T) {
	a := NewAccumulator()
	a.Fold(metrics.Summary{InterestingArrivals: 10, IBOLossesInteresting: 1, FalseNegatives: 1,
		ReportedInteresting: 8, HighQInteresting: 4, MissedInteresting: 2})
	a.Fold(metrics.Summary{InterestingArrivals: 30, IBOLossesInteresting: 9,
		ReportedInteresting: 21, HighQInteresting: 7, MissedInteresting: 2})
	agg := a.Aggregate()
	if got, want := agg.IBOFraction, 10.0/40.0; got != want {
		t.Fatalf("IBOFraction = %g, want %g", got, want)
	}
	if got, want := agg.DiscardedFraction, 11.0/40.0; got != want {
		t.Fatalf("DiscardedFraction = %g, want %g", got, want)
	}
	if got, want := agg.HighQualityShare, 11.0/29.0; got != want {
		t.Fatalf("HighQualityShare = %g, want %g", got, want)
	}
	if got, want := agg.CaptureMissFraction, 4.0/44.0; got != want {
		t.Fatalf("CaptureMissFraction = %g, want %g", got, want)
	}
}

// TestAggregateEmpty pins the zero-devices rendering: all ratios zero, no
// NaNs leaking into JSON.
func TestAggregateEmpty(t *testing.T) {
	agg := NewAccumulator().Aggregate()
	if agg.Totals.Devices != 0 {
		t.Fatalf("empty accumulator reports %d devices", agg.Totals.Devices)
	}
	if _, err := json.Marshal(agg); err != nil {
		t.Fatalf("empty aggregate does not marshal: %v", err)
	}
}
