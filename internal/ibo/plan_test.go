package ibo

import (
	"testing"

	"quetzal/internal/model"
)

// Additional coverage for the plan resolver's corner cases.

// A job unreachable from the entry chain contributes nothing to utilization
// and keeps quality 0 in the plan.
func TestUnreachableJobIgnoredInUtilization(t *testing.T) {
	app := chainApp()
	orphan := &model.Job{ID: 9, Name: "orphan", Tasks: []*model.Task{
		{Name: "heavy", Kind: model.Compute, Options: []model.Option{opt("h", 100), opt("l", 1)}},
	}, SpawnJobID: model.NoSpawn}
	app.Jobs = append(app.Jobs, orphan)

	est := &fakeEstimator{se2e: map[[3]int]float64{
		{0, 0, 0}: 0.2,
		{1, 0, 0}: 0.1,
		{1, 1, 0}: 0.1,
		{9, 0, 0}: 100, // would dominate ρ if it counted
	}}
	d := Decide(app.JobByID(0), input(app, est, 1, 5, 10, 0))
	if d.IBOPredicted {
		t.Errorf("orphan job's cost leaked into the utilization check: %+v", d)
	}
}

// When the orphan job itself is scheduled (it has buffered inputs via some
// out-of-band path), the burst check still applies to it.
func TestOrphanJobStillBurstChecked(t *testing.T) {
	app := chainApp()
	orphan := &model.Job{ID: 9, Name: "orphan", Tasks: []*model.Task{
		{Name: "heavy", Kind: model.Compute, Options: []model.Option{opt("h", 50), opt("l", 1)}},
	}, SpawnJobID: model.NoSpawn}
	app.Jobs = append(app.Jobs, orphan)
	est := &fakeEstimator{se2e: map[[3]int]float64{
		{9, 0, 0}: 50, {9, 0, 1}: 1,
	}}
	d := Decide(orphan, input(app, est, 1, 3, 10, 0))
	if !d.IBOPredicted {
		t.Fatal("burst check silent for λ·50 ≥ 3")
	}
	if d.OptionIdx != 1 || !d.Averted {
		t.Errorf("decision = %+v, want degraded to option 1 and averted", d)
	}
}

// The spawn-probability clamp: out-of-range values from the tracker hook
// are clamped into [0,1].
func TestSpawnProbClamped(t *testing.T) {
	app := chainApp()
	in := input(app, &fakeEstimator{}, 1, 5, 10, 0)
	in.SpawnProb = func(int) float64 { return 7 }
	if got := in.spawnProb(0); got != 1 {
		t.Errorf("spawnProb clamped high = %g, want 1", got)
	}
	in.SpawnProb = func(int) float64 { return -3 }
	if got := in.spawnProb(0); got != 0 {
		t.Errorf("spawnProb clamped low = %g, want 0", got)
	}
	in.SpawnProb = nil
	if got := in.spawnProb(0); got != 1 {
		t.Errorf("nil SpawnProb = %g, want 1", got)
	}
}

// resolvePlan with an unstable system pins every degradable job to its
// cheapest option.
func TestResolvePlanUnstablePinsCheapest(t *testing.T) {
	app := chainApp()
	est := &fakeEstimator{se2e: map[[3]int]float64{
		{0, 0, 0}: 50, {0, 0, 1}: 10, // even LQ ML can't stabilise
		{1, 0, 0}: 5,
		{1, 1, 0}: 50, {1, 1, 1}: 30, {1, 1, 2}: 20,
	}}
	in := input(app, est, 1, 2, 10, 0)
	plan, stable := resolvePlan(in)
	if stable {
		t.Fatal("system reported stable at ρ ≫ 1")
	}
	if plan[0] != 1 {
		t.Errorf("detect pinned to %d, want cheapest (1)", plan[0])
	}
	if plan[1] != 2 {
		t.Errorf("report pinned to %d, want cheapest (2)", plan[1])
	}
}

// The occupancy gate boundary: occupancy exactly at 20 % of capacity
// activates the utilization check.
func TestOccupancyGateBoundary(t *testing.T) {
	app := chainApp()
	est := &fakeEstimator{se2e: map[[3]int]float64{
		{0, 0, 0}: 3, // ρ = 3 with the default 1s elsewhere
	}}
	// Capacity 10: occupancy 1 (free 9) is below the gate → no prediction.
	if d := Decide(app.JobByID(0), input(app, est, 1, 9, 10, 0)); d.IBOPredicted {
		t.Error("gate failed to suppress at 10% occupancy")
	}
	// Occupancy 2 (free 8) hits the 20% gate → utilization fires.
	if d := Decide(app.JobByID(0), input(app, est, 1, 8, 10, 0)); !d.IBOPredicted {
		t.Error("utilization silent at the 20% gate boundary")
	}
}

// Zero-capacity input (no gate information) falls back to always applying
// the utilization check.
func TestZeroCapacityAppliesUtilization(t *testing.T) {
	app := chainApp()
	est := &fakeEstimator{se2e: map[[3]int]float64{{0, 0, 0}: 5}}
	d := Decide(app.JobByID(0), Input{App: app, Est: est, Lambda: 1, FreeSlots: 100})
	if !d.IBOPredicted {
		t.Error("utilization skipped when capacity unknown")
	}
}
