package ibo

// Property tests for Algorithm 2's reaction contract, over randomized
// monotone option tables. Degradation options are generated with strictly
// decreasing S_e2e (a degradation that is slower than the quality it
// replaces would never be profiled into a device), which is what makes the
// properties total:
//
//	P1  if any option at or past the plan clears the burst check, the
//	    reactor picks one that clears it — never an overflow-predicted
//	    option while a safe one exists
//	P2  among the clearing options it picks the highest quality (lowest
//	    index at or past the plan)
//	P3  if nothing clears, it falls back to the argmin-E[S] option ("in
//	    order to reduce E[N]")
//	P4  no prediction → no degradation, and the plan is empty
//	P5  resolvePlan returns a stable assignment whenever one exists
//	    (checked by exhaustive enumeration of the option space)

import (
	"fmt"
	"math/rand"
	"testing"

	"quetzal/internal/model"
)

// randomReactorCase builds a 1–3 job spawn chain whose degradable tasks have
// 2–4 options with strictly decreasing Se2e, plus a random Input.
func randomReactorCase(rng *rand.Rand) (*model.App, Input) {
	numJobs := 1 + rng.Intn(3)
	est := &fakeEstimator{se2e: map[[3]int]float64{}, prob: map[[2]int]float64{}}
	jobs := make([]*model.Job, numJobs)
	for j := 0; j < numJobs; j++ {
		numOpts := 2 + rng.Intn(model.MaxOptions-1)
		opts := make([]model.Option, numOpts)
		// Strictly decreasing Se2e: start high, shave a random positive
		// amount per degradation step.
		se := 2 + 6*rng.Float64()
		for oi := range opts {
			opts[oi] = model.Option{Name: fmt.Sprintf("j%do%d", j, oi), Texe: se, Pexe: 0.01}
			est.se2e[[3]int{j, 0, oi}] = se
			se -= (0.2 + rng.Float64()) * se / 2
		}
		est.prob[[2]int{j, 0}] = 0.2 + 0.8*rng.Float64()
		spawn := model.NoSpawn
		if j+1 < numJobs {
			spawn = j + 1
		}
		jobs[j] = &model.Job{
			ID: j, Name: fmt.Sprintf("job%d", j),
			Tasks:      []*model.Task{{Name: fmt.Sprintf("t%d", j), Options: opts}},
			SpawnJobID: spawn,
		}
	}
	app := &model.App{Name: "reactor", Jobs: jobs, EntryJobID: 0}
	if err := app.Validate(); err != nil {
		panic("randomReactorCase built an invalid app: " + err.Error())
	}
	capacity := 4 + rng.Intn(12)
	in := Input{
		App:        app,
		Est:        est,
		Lambda:     0.05 + 3*rng.Float64(),
		FreeSlots:  rng.Intn(capacity + 1),
		Capacity:   capacity,
		Correction: (rng.Float64() - 0.5) * 2, // ±1 s of PID correction
	}
	if rng.Intn(2) == 0 {
		p := rng.Float64()
		in.SpawnProb = func(int) float64 { return p }
	}
	return app, in
}

// checkReactorProperties verifies P1–P4 for the entry job of one case.
func checkReactorProperties(app *model.App, in Input) error {
	job := app.JobByID(app.EntryJobID)
	d := Decide(job, in)

	di := job.DegradableTask()
	numOpts := len(job.Tasks[di].Options)
	if d.OptionIdx < 0 || d.OptionIdx >= numOpts {
		return fmt.Errorf("option %d out of range [0,%d)", d.OptionIdx, numOpts)
	}
	if d.ExpectedS != jobES(in, job, d.OptionIdx) {
		return fmt.Errorf("ExpectedS %g != E[S] at chosen option %g", d.ExpectedS, jobES(in, job, d.OptionIdx))
	}

	if !d.IBOPredicted {
		// P4: no prediction means full quality and no chain-wide plan.
		if d.OptionIdx != 0 {
			return fmt.Errorf("no prediction but degraded to option %d", d.OptionIdx)
		}
		if len(d.Plan) != 0 {
			return fmt.Errorf("no prediction but non-empty plan %v", d.Plan)
		}
		if burstOverflow(in, jobES(in, job, 0)) {
			return fmt.Errorf("burst check fires at full quality but IBOPredicted is false")
		}
		return nil
	}

	// The escalation scan starts at the plan's option for this job.
	start := plannedOpt(d.Plan, job)
	clearing := -1 // highest-quality option at/past the plan that clears
	for opt := start; opt < numOpts; opt++ {
		if !burstOverflow(in, jobES(in, job, opt)) {
			clearing = opt
			break
		}
	}

	if clearing >= 0 {
		// P1: a safe option exists, so the reactor must not pick an
		// overflow-predicted one.
		if burstOverflow(in, d.ExpectedS) {
			return fmt.Errorf("picked option %d predicted to overflow while option %d clears", d.OptionIdx, clearing)
		}
		if !d.Averted {
			return fmt.Errorf("option %d clears the burst check but Averted is false", d.OptionIdx)
		}
		// P2: and among the safe options, the highest quality one.
		if d.OptionIdx != clearing {
			return fmt.Errorf("picked option %d, but %d is the highest quality that clears", d.OptionIdx, clearing)
		}
		return nil
	}

	// P3: nothing clears — fall back to the E[S]-argmin option.
	if d.Averted {
		return fmt.Errorf("no option clears the burst check but Averted is true")
	}
	for opt := 0; opt < numOpts; opt++ {
		if jobES(in, job, opt) < d.ExpectedS {
			return fmt.Errorf("fallback picked option %d (E[S] %g) but option %d has %g",
				d.OptionIdx, d.ExpectedS, opt, jobES(in, job, opt))
		}
	}
	return nil
}

func TestReactorProperties(t *testing.T) {
	for seed := int64(0); seed < 400; seed++ {
		rng := rand.New(rand.NewSource(seed))
		app, in := randomReactorCase(rng)
		if err := checkReactorProperties(app, in); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestReactorSeededRegressions freezes the generator states that covered the
// reaction paths during development: saturated buffers (fallback), roomy
// buffers with diverging utilization (plan-driven starts), and corrections
// large enough to flip the burst check. Future counterexamples join here.
func TestReactorSeededRegressions(t *testing.T) {
	for _, seed := range []int64{2, 11, 33, 77, 128, 512, 4096, 31337} {
		rng := rand.New(rand.NewSource(seed))
		for draw := 0; draw < 5; draw++ {
			app, in := randomReactorCase(rng)
			if err := checkReactorProperties(app, in); err != nil {
				t.Fatalf("seed %d draw %d: %v", seed, draw, err)
			}
		}
	}
}

// TestResolvePlanProperties checks P5: whenever *some* assignment keeps
// ρ < 1 (verified by exhaustively enumerating the whole option space, which
// is tiny by the §5.1 limits), resolvePlan must find a stable one; and
// whatever plan it returns must itself be stable.
func TestResolvePlanProperties(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed ^ 0x91a4))
		app, in := randomReactorCase(rng)
		// Force the occupancy gate open so utilizationOK really tests ρ.
		in.FreeSlots = 0

		plan, ok := resolvePlan(in)
		if ok && !utilizationOK(in, plan) {
			t.Fatalf("seed %d: resolvePlan returned ok with unstable plan %v (ρ = %g)", seed, plan, in.utilization(plan))
		}

		// Exhaustive oracle over every full assignment.
		exists := false
		var walk func(idx int, a assignment)
		walk = func(idx int, a assignment) {
			if exists {
				return
			}
			if idx == len(app.Jobs) {
				if utilizationOK(in, a) {
					exists = true
				}
				return
			}
			j := app.Jobs[idx]
			di := j.DegradableTask()
			if di < 0 {
				walk(idx+1, a)
				return
			}
			for opt := 0; opt < len(j.Tasks[di].Options); opt++ {
				a[j.ID] = opt
				walk(idx+1, a)
			}
			delete(a, j.ID)
		}
		walk(0, assignment{})

		if exists && !ok {
			t.Fatalf("seed %d: a stable assignment exists but resolvePlan reported none", seed)
		}
		if !exists && ok {
			t.Fatalf("seed %d: resolvePlan claims stability where exhaustive search finds none", seed)
		}
	}
}
