package ibo

import (
	"testing"
	"testing/quick"

	"quetzal/internal/model"
)

// fakeEstimator returns canned Se2e values per (jobID, taskIdx, optIdx) and
// probability 1 unless overridden.
type fakeEstimator struct {
	se2e map[[3]int]float64
	prob map[[2]int]float64
}

func (f *fakeEstimator) Se2e(jobID, taskIdx, optIdx int) float64 {
	if v, ok := f.se2e[[3]int{jobID, taskIdx, optIdx}]; ok {
		return v
	}
	return 1
}

func (f *fakeEstimator) Probability(jobID, taskIdx int) float64 {
	if v, ok := f.prob[[2]int{jobID, taskIdx}]; ok {
		return v
	}
	return 1
}

func opt(name string, texe float64) model.Option {
	return model.Option{Name: name, Texe: texe, Pexe: 0.01}
}

// chainApp builds the person-detection shape: detect (ML, 2 options) spawns
// report (compress + radio with 3 options).
func chainApp() *model.App {
	ml := &model.Task{Name: "ml", Kind: model.Classify,
		Options: []model.Option{opt("hq", 2), opt("lq", 0.2)}}
	compress := &model.Task{Name: "compress", Kind: model.Compute, Options: []model.Option{opt("c", 0.2)}}
	radio := &model.Task{Name: "radio", Kind: model.Transmit,
		Options: []model.Option{opt("full", 0.8), opt("half", 0.3), opt("byte", 0.05)}}
	return &model.App{
		Name: "chain",
		Jobs: []*model.Job{
			{ID: 0, Name: "detect", Tasks: []*model.Task{ml}, SpawnJobID: 1},
			{ID: 1, Name: "report", Tasks: []*model.Task{compress, radio}, SpawnJobID: model.NoSpawn},
		},
		EntryJobID: 0, CaptureTexe: 0.01, CapturePexe: 0.01,
	}
}

func input(app *model.App, est *fakeEstimator, lambda float64, free, capacity int, corr float64) Input {
	return Input{App: app, Est: est, Lambda: lambda, FreeSlots: free, Capacity: capacity, Correction: corr}
}

func TestNoIBOWhenIdle(t *testing.T) {
	app := chainApp()
	est := &fakeEstimator{}
	// λ tiny, buffer nearly empty: no prediction, highest quality.
	d := Decide(app.JobByID(0), input(app, est, 0.05, 9, 10, 0))
	if d.IBOPredicted || d.OptionIdx != 0 {
		t.Errorf("decision = %+v, want no IBO at full quality", d)
	}
	if len(d.Plan) != 0 {
		t.Errorf("plan = %v, want empty (no degradation)", d.Plan)
	}
}

func TestBurstCheckBoundaryInclusive(t *testing.T) {
	app := chainApp()
	est := &fakeEstimator{se2e: map[[3]int]float64{
		{0, 0, 0}: 6, {0, 0, 1}: 0.5,
	}}
	// λ·E[S] = 1·6 = 6 ≥ 6 free: Algorithm 2 line 6 uses ≥ — predicted.
	// Occupancy 4/10 is above the 20 % utilization gate, but stability is
	// fine at LQ; the burst escalation lands on option 1.
	d := Decide(app.JobByID(0), input(app, est, 1, 6, 10, 0))
	if !d.IBOPredicted {
		t.Error("IBO not predicted at the ≥ boundary")
	}
	if d.OptionIdx != 1 || !d.Averted {
		t.Errorf("decision = %+v, want degraded to option 1 and averted", d)
	}
}

func TestUtilizationDetectsDivergence(t *testing.T) {
	app := chainApp()
	// Per-input work at full quality: detect 2 + report (0.2+0.8) = 3 s at
	// λ = 1 → ρ = 3 ≥ 1. Plenty of free slots (6), so the burst check alone
	// would stay silent — the utilization check must fire once occupancy
	// (4/10) is past the gate.
	est := &fakeEstimator{se2e: map[[3]int]float64{
		{0, 0, 0}: 2, {0, 0, 1}: 0.2,
		{1, 0, 0}: 0.2,
		{1, 1, 0}: 0.8, {1, 1, 1}: 0.3, {1, 1, 2}: 0.05,
	}}
	d := Decide(app.JobByID(0), input(app, est, 1, 6, 10, 0))
	if !d.IBOPredicted {
		t.Fatal("utilization divergence not predicted")
	}
	// The plan degrades the radio first (leaves-first); with the radio at
	// byte quality, ρ = 1·(2 + 0.2 + 0.05) = 2.25 ≥ 1, so the ML degrades
	// too: ρ = 0.2+0.25 = 0.45 < 1.
	if d.Plan[1] == 0 {
		t.Errorf("plan = %v, want report radio degraded", d.Plan)
	}
	if d.OptionIdx == 0 {
		t.Errorf("detect not degraded despite ρ ≥ 1 at ML HQ: %+v", d)
	}
}

func TestLeavesFirstPrefersRadioDegradation(t *testing.T) {
	app := chainApp()
	// Radio degradation alone stabilises: detect 0.4 + report 0.2+0.05 =
	// 0.65 < 1 at λ=1, while all-HQ is 0.4+1.0 = 1.4 ≥ 1. The ML must stay
	// at high quality.
	est := &fakeEstimator{se2e: map[[3]int]float64{
		{0, 0, 0}: 0.4, {0, 0, 1}: 0.1,
		{1, 0, 0}: 0.2,
		{1, 1, 0}: 0.8, {1, 1, 1}: 0.3, {1, 1, 2}: 0.05,
	}}
	d := Decide(app.JobByID(0), input(app, est, 1, 5, 10, 0))
	if !d.IBOPredicted {
		t.Fatal("no prediction despite ρ = 1.4 at full quality")
	}
	if d.OptionIdx != 0 {
		t.Errorf("ML degraded to %d, want 0 (radio degradation suffices)", d.OptionIdx)
	}
	if d.Plan[1] != 1 {
		t.Errorf("plan = %v, want radio at option 1 (highest stable quality)", d.Plan)
	}
}

func TestOccupancyGateSuppressesUtilizationCheck(t *testing.T) {
	app := chainApp()
	est := &fakeEstimator{se2e: map[[3]int]float64{
		{0, 0, 0}: 2,
		{1, 1, 0}: 2,
	}}
	// ρ ≈ 5 at λ=1, but the buffer is nearly empty (1/10 used): the slack
	// absorbs the burst, no prediction yet.
	d := Decide(app.JobByID(0), input(app, est, 1, 9, 10, 0))
	if d.IBOPredicted {
		t.Errorf("predicted with 9 free slots and E[S]=2: %+v", d)
	}
}

func TestSpawnProbabilityScalesDownstreamWork(t *testing.T) {
	app := chainApp()
	est := &fakeEstimator{se2e: map[[3]int]float64{
		{0, 0, 0}: 0.4,
		{1, 0, 0}: 0.2,
		{1, 1, 0}: 1.0,
	}}
	in := input(app, est, 1, 5, 10, 0)
	// With certain spawning, ρ = 0.4 + 1.2 = 1.6 ≥ 1 → predicted.
	if d := Decide(app.JobByID(0), in); !d.IBOPredicted {
		t.Error("no prediction with spawn probability 1")
	}
	// With rare spawning, ρ = 0.4 + 0.1·1.2 = 0.52 < 1 → clean.
	in.SpawnProb = func(jobID int) float64 { return 0.1 }
	if d := Decide(app.JobByID(0), in); d.IBOPredicted {
		t.Error("predicted despite spawn probability 0.1")
	}
}

func TestFallbackToCheapestWhenNothingClears(t *testing.T) {
	app := chainApp()
	est := &fakeEstimator{se2e: map[[3]int]float64{
		{0, 0, 0}: 9, {0, 0, 1}: 6,
	}}
	// Full buffer: free 0 → λ·E[S] ≥ 0 for every option; choose lowest S_e2e.
	d := Decide(app.JobByID(0), input(app, est, 1, 0, 10, 0))
	if !d.IBOPredicted || d.Averted {
		t.Fatalf("decision = %+v, want predicted and not averted", d)
	}
	if d.OptionIdx != 1 {
		t.Errorf("OptionIdx = %d, want cheapest (1)", d.OptionIdx)
	}
}

func TestNonDegradableJobKeepsPrediction(t *testing.T) {
	fixed := &model.Job{ID: 2, Name: "fixed", Tasks: []*model.Task{
		{Name: "t", Kind: model.Compute, Options: []model.Option{opt("only", 5)}},
	}, SpawnJobID: model.NoSpawn}
	app := &model.App{Name: "a", Jobs: []*model.Job{fixed}, EntryJobID: 2,
		CaptureTexe: 0.01, CapturePexe: 0.01}
	est := &fakeEstimator{se2e: map[[3]int]float64{{2, 0, 0}: 5}}
	d := Decide(fixed, input(app, est, 1, 3, 10, 0))
	if !d.IBOPredicted || d.Averted || d.OptionIdx != 0 {
		t.Errorf("decision = %+v, want predicted, not averted, option 0", d)
	}
}

func TestPIDCorrectionInflates(t *testing.T) {
	app := chainApp()
	est := &fakeEstimator{se2e: map[[3]int]float64{
		{0, 0, 0}: 2,
	}}
	// Without correction: λ·2 = 2 < 4 free, occupancy below gate... use
	// occupancy 6 (free 4): gate passed; ρ = 1·(2+1) = 3 ≥ 1 → predicted
	// anyway. Use lambda 0.2 to keep ρ < 1: ρ = 0.64, burst 0.4 < 4.
	d := Decide(app.JobByID(0), input(app, est, 0.2, 4, 10, 0))
	if d.IBOPredicted {
		t.Fatalf("unexpected prediction without correction: %+v", d)
	}
	// A +20 s correction inflates E[S]: burst check 0.2·22 = 4.4 ≥ 4.
	d = Decide(app.JobByID(0), input(app, est, 0.2, 4, 10, 20))
	if !d.IBOPredicted {
		t.Error("positive PID correction did not inflate the prediction")
	}
}

func TestNegativeCorrectionClamps(t *testing.T) {
	app := chainApp()
	est := &fakeEstimator{}
	d := Decide(app.JobByID(0), input(app, est, 1, 1, 10, -100))
	if d.ExpectedS < 0 {
		t.Errorf("ExpectedS = %g, want clamped ≥ 0", d.ExpectedS)
	}
}

func TestFullBufferAlwaysPredicts(t *testing.T) {
	app := chainApp()
	d := Decide(app.JobByID(0), input(app, &fakeEstimator{}, 0.5, 0, 10, 0))
	if !d.IBOPredicted {
		t.Error("full buffer (0 free slots) must always predict an IBO")
	}
}

// Property: the decision is internally consistent — option in range,
// non-negative E[S], degradation only under prediction, and an averted
// decision really clears the burst check.
func TestPropertyDecisionConsistent(t *testing.T) {
	app := chainApp()
	f := func(lambdaRaw, s0, s1, base uint8, free uint8, corrRaw int8) bool {
		lambda := float64(lambdaRaw%40) / 10
		est := &fakeEstimator{se2e: map[[3]int]float64{
			{0, 0, 0}: float64(s0%40)/2 + 0.01,
			{0, 0, 1}: float64(s1%40)/8 + 0.01,
			{1, 0, 0}: float64(base%20)/4 + 0.01,
		}}
		slots := int(free % 11)
		corr := float64(corrRaw) / 16
		d := Decide(app.JobByID(0), input(app, est, lambda, slots, 10, corr))
		if d.OptionIdx < 0 || d.OptionIdx >= 2 {
			return false
		}
		if d.ExpectedS < 0 {
			return false
		}
		if !d.IBOPredicted && d.OptionIdx != 0 {
			return false
		}
		if d.Averted && lambda*d.ExpectedS >= float64(slots) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestReachProbsChain(t *testing.T) {
	app := chainApp()
	in := input(app, &fakeEstimator{}, 1, 5, 10, 0)
	in.SpawnProb = func(jobID int) float64 { return 0.4 }
	reach := reachProbs(in)
	if reach[0] != 1 {
		t.Errorf("entry reach = %g, want 1", reach[0])
	}
	if reach[1] != 0.4 {
		t.Errorf("spawned reach = %g, want 0.4", reach[1])
	}
}

func TestLeavesFirstOrder(t *testing.T) {
	app := chainApp()
	order := leavesFirst(app)
	if len(order) != 2 || order[0].ID != 1 || order[1].ID != 0 {
		ids := []int{}
		for _, j := range order {
			ids = append(ids, j.ID)
		}
		t.Errorf("order = %v, want [1 0] (spawn target first)", ids)
	}
}
