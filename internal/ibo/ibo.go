// Package ibo implements Quetzal's IBO-detection and reaction engine
// (paper §4.2, Algorithm 2), completed with the queueing-theoretic
// stability condition the algorithm needs to act early.
//
// Detection has two parts:
//
//  1. The burst check, Algorithm 2 verbatim: the expected arrivals during
//     the scheduled job, λ·E[S], must not exceed the free buffer space
//     (Little's Law over the job's horizon).
//
//  2. The utilization check: Little's Law in steady state says the queue
//     diverges — guaranteeing an eventual overflow no matter how much
//     space is free today — whenever the total work per arriving input
//     exceeds the interarrival time, i.e. when
//
//     ρ = λ · Σ_jobs reach(job) · E[S](job) ≥ 1
//
//     where reach(job) is the probability an arriving input eventually
//     needs that job (1 for the entry job, the tracked spawn probability
//     for follow-up jobs). The paper's hardware/sim task costs are
//     multi-second, so its burst check fires with room to spare; with
//     sub-second tasks the burst check alone degenerates to a
//     full-buffer trigger (CatNap), and the utilization check is what
//     preserves the published behaviour.
//
// Reaction resolves a quality assignment for the whole spawn chain,
// leaves first: each job takes the highest-quality option that keeps ρ
// below 1 given the qualities already resolved downstream. Degradation
// therefore lands on the task where it buys the most sustainable
// throughput (typically the radio) before touching classifier quality,
// exactly the "degrade only as much as required" contract of §4.2. If no
// assignment stabilises the queue, every job runs its lowest-S_e2e option
// "in order to reduce E[N]".
package ibo

import (
	"quetzal/internal/model"
	"quetzal/internal/queueing"
	"quetzal/internal/sched"
)

// Input bundles what one engine evaluation needs.
type Input struct {
	App *model.App
	Est sched.Estimator
	// Lambda is the tracked input arrival rate (inputs/second).
	Lambda float64
	// FreeSlots is buffer_limit − current_occupancy.
	FreeSlots int
	// Capacity is buffer_limit. The utilization check is gated on the
	// queue actually building (occupancy ≥ 20 % of capacity): a diverging
	// arrival/service balance only matters once the buffer's slack can no
	// longer absorb the remaining burst, and sub-capacity occupancy is
	// exactly that slack.
	Capacity int
	// Correction is the PID output added to E[S] predictions (§4.3).
	Correction float64
	// SpawnProb returns the tracked probability that the given job's
	// completion spawns its follow-up job. Ignored for jobs that spawn
	// nothing. Nil means 1 (conservative).
	SpawnProb func(jobID int) float64
}

// Decision is the engine's output for one scheduled job.
type Decision struct {
	// IBOPredicted reports whether an overflow was predicted with every
	// job at its highest quality.
	IBOPredicted bool
	// Averted reports whether some quality assignment cleared both checks.
	Averted bool
	// OptionIdx is the selected option for the scheduled job's degradable
	// task (0 = highest quality).
	OptionIdx int
	// ExpectedS is the scheduled job's E[S] at the chosen quality,
	// including the PID correction.
	ExpectedS float64
	// Plan is the chain-wide quality assignment (jobID → option index for
	// that job's degradable task).
	Plan map[int]int
}

// Decide runs the engine for the scheduled job.
func Decide(job *model.Job, in Input) Decision {
	plan, _ := resolvePlan(in)

	esBest := jobES(in, job, 0)
	esPlanned := jobES(in, job, plannedOpt(plan, job))

	d := Decision{
		OptionIdx: plannedOpt(plan, job),
		ExpectedS: esPlanned,
		Plan:      plan,
	}

	bestOverflow := burstOverflow(in, esBest) || !utilizationOK(in, assignment{})
	if !bestOverflow {
		// No overflow at full quality: run the job undegraded.
		d.OptionIdx = 0
		d.ExpectedS = esBest
		d.Plan = map[int]int{}
		return d
	}
	d.IBOPredicted = true

	// Escalate the scheduled job past the planned option until the burst
	// check clears, preferring the highest quality that does.
	di := job.DegradableTask()
	if di >= 0 {
		for opt := d.OptionIdx; opt < len(job.Tasks[di].Options); opt++ {
			es := jobES(in, job, opt)
			if !burstOverflow(in, es) {
				d.OptionIdx = opt
				d.ExpectedS = es
				// The imminent (burst) overflow is averted at this option;
				// long-run stability is the plan's concern.
				d.Averted = true
				return d
			}
		}
		// Nothing clears the burst check: lowest S_e2e reduces E[N].
		lowest, lowestES := 0, jobES(in, job, 0)
		for opt := 1; opt < len(job.Tasks[di].Options); opt++ {
			if es := jobES(in, job, opt); es < lowestES {
				lowest, lowestES = opt, es
			}
		}
		d.OptionIdx = lowest
		d.ExpectedS = lowestES
		return d
	}
	// No degradable task: the prediction stands, quality is fixed.
	d.OptionIdx = 0
	d.ExpectedS = esBest
	return d
}

// burstOverflow is Algorithm 2 line 6: λ·E[S] ≥ free slots.
func burstOverflow(in Input, es float64) bool {
	return in.Lambda*es >= float64(in.FreeSlots)
}

// jobES returns the job's probability-weighted E[S] with its degradable
// task at option opt, plus the PID correction, clamped non-negative.
func jobES(in Input, job *model.Job, opt int) float64 {
	di := job.DegradableTask()
	es := sched.ExpectedService(job, in.Est, func(ti int) int {
		if ti == di {
			return opt
		}
		return 0
	}) + in.Correction
	if es < 0 {
		return 0
	}
	return es
}

// spawnProb returns the tracked spawn probability for a job.
func (in Input) spawnProb(jobID int) float64 {
	if in.SpawnProb == nil {
		return 1
	}
	p := in.SpawnProb(jobID)
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// reachProbs computes, for every job, the probability that an arriving
// input eventually requires it, following spawn edges from the entry job.
func reachProbs(in Input) map[int]float64 {
	reach := map[int]float64{in.App.EntryJobID: 1}
	// Spawn chains are acyclic and short; walk until fixpoint.
	for i := 0; i < len(in.App.Jobs); i++ {
		changed := false
		for _, j := range in.App.Jobs {
			r, ok := reach[j.ID]
			if !ok || j.SpawnJobID == model.NoSpawn {
				continue
			}
			contrib := r * in.spawnProb(j.ID)
			if contrib > reach[j.SpawnJobID] {
				reach[j.SpawnJobID] = contrib
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return reach
}

// assignment maps jobID → option index for that job's degradable task.
type assignment map[int]int

func plannedOpt(a assignment, job *model.Job) int {
	if opt, ok := a[job.ID]; ok {
		return opt
	}
	return 0
}

// utilization computes ρ = λ · Σ reach(job)·E[S](job@assignment).
func (in Input) utilization(a assignment) float64 {
	reach := reachProbs(in)
	total := 0.0
	for _, j := range in.App.Jobs {
		r := reach[j.ID]
		if r == 0 {
			continue
		}
		total += r * jobES(in, j, plannedOpt(a, j))
	}
	return queueing.Utilization(in.Lambda, total)
}

// utilizationOK reports whether the assignment keeps the queue stable.
// Below the occupancy gate the check passes trivially: the buffer still has
// slack to absorb a finite burst even if ρ ≥ 1.
func utilizationOK(in Input, a assignment) bool {
	occupancy := in.Capacity - in.FreeSlots
	if in.Capacity > 0 && occupancy*5 < in.Capacity {
		return true
	}
	return in.utilization(a) < 1
}

// resolvePlan picks the chain-wide quality assignment: jobs are visited
// leaves-first (deepest spawn first) and each takes the highest-quality
// option that keeps ρ < 1 given what is already resolved. Returns the plan
// and whether a stable assignment exists; when none does, every degradable
// job is pinned to its lowest-S_e2e option.
func resolvePlan(in Input) (assignment, bool) {
	plan := assignment{}
	if utilizationOK(in, plan) {
		return plan, true // full quality is sustainable
	}

	order := leavesFirst(in.App)
	// Start from the most degraded state, then raise each job (leaves
	// first) to the best quality that keeps the system stable.
	for _, j := range order {
		if di := j.DegradableTask(); di >= 0 {
			plan[j.ID] = cheapestOpt(in, j)
		}
	}
	if !utilizationOK(in, plan) {
		return plan, false // even fully degraded the queue diverges
	}
	for _, j := range order {
		di := j.DegradableTask()
		if di < 0 {
			continue
		}
		for opt := 0; opt < len(j.Tasks[di].Options); opt++ {
			trial := assignment{}
			for k, v := range plan {
				trial[k] = v
			}
			trial[j.ID] = opt
			if utilizationOK(in, trial) {
				plan[j.ID] = opt
				break
			}
		}
	}
	return plan, true
}

// cheapestOpt returns the option index minimising the job's E[S].
func cheapestOpt(in Input, job *model.Job) int {
	di := job.DegradableTask()
	best, bestES := 0, jobES(in, job, 0)
	for opt := 1; opt < len(job.Tasks[di].Options); opt++ {
		if es := jobES(in, job, opt); es < bestES {
			best, bestES = opt, es
		}
	}
	return best
}

// leavesFirst orders jobs so that spawn targets come before their spawners
// (deepest first), starting from the entry chain; unreachable jobs follow in
// definition order.
func leavesFirst(app *model.App) []*model.Job {
	var order []*model.Job
	seen := map[int]bool{}
	var walk func(j *model.Job)
	walk = func(j *model.Job) {
		if j == nil || seen[j.ID] {
			return
		}
		seen[j.ID] = true
		if j.SpawnJobID != model.NoSpawn {
			walk(app.JobByID(j.SpawnJobID))
		}
		// Post-order: the spawn target lands before the spawner.
		order = append(order, j)
	}
	walk(app.JobByID(app.EntryJobID))
	for _, j := range app.Jobs {
		walk(j)
	}
	return order
}
