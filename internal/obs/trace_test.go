package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

// sampleStream exercises every event kind the engine emits, in a
// lifecycle-valid order (a brownout interrupting a job that later
// completes, an arrival that overflows the buffer, a PID update).
const sampleStream = `0.500000 capture different=true interesting=true
0.600000 arrive seq=0 interesting=true occ=1
0.700000 pid lambda=0.500000 corr=0.010000
0.700000 sched seq=0 job=1 opts=[0 1] degraded=false ibo=false
0.800000 classify seq=0 opt=0 positive=true
0.900000 brownout
0.950000 rollback job=1 task=1 left=0.123456 restarts=1
1.000000 poweron
1.100000 ckpt job=1 task=1 left=0.100000
1.200000 tx seq=0 hq=true interesting=true
1.300000 jobdone seq=0 job=1 spawned=false restarts=1
1.400000 capture-miss interesting=false
1.500000 capture different=true interesting=false
1.600000 ibodrop seq=1 interesting=false
1.700000 arrive seq=2 interesting=false occ=1
1.800000 sched seq=2 job=1 opts=[0 1] degraded=false ibo=false
1.900000 jobdone seq=2 job=1 spawned=false restarts=0
`

// export runs a stream through a fresh exporter, returning both renderings
// and the Close error.
func export(t *testing.T, stream string, chunked bool) (chrome, jsonl string, err error) {
	t.Helper()
	var cb, jb strings.Builder
	reg := NewRegistry()
	e := NewExporter(ExporterConfig{Chrome: &cb, JSONL: &jb, Metrics: reg})
	if chunked {
		// Feed byte-by-byte: line reassembly must not change the output.
		for i := 0; i < len(stream); i++ {
			if _, werr := e.Write([]byte{stream[i]}); werr != nil {
				break
			}
		}
	} else if _, werr := e.Write([]byte(stream)); werr != nil {
		_ = werr // surfaced again by Close
	}
	err = e.Close() // before reading the builders: Close writes the trailer
	return cb.String(), jb.String(), err
}

func TestExporterRendersAllKinds(t *testing.T) {
	chrome, jsonl, err := export(t, sampleStream, false)
	if err != nil {
		t.Fatalf("export failed: %v", err)
	}

	// The Chrome rendering must be valid JSON with µs timestamps.
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if jerr := json.Unmarshal([]byte(chrome), &doc); jerr != nil {
		t.Fatalf("chrome output is not valid JSON: %v\n%s", jerr, chrome)
	}
	// 5 metadata + 17 events + 2 occupancy counters + 2 pid counters.
	if got := len(doc.TraceEvents); got != 26 {
		t.Errorf("chrome events = %d, want 26\n%s", got, chrome)
	}
	byName := map[string]int{}
	for _, ev := range doc.TraceEvents {
		byName[ev["name"].(string)]++
	}
	for name, want := range map[string]int{
		"job:1": 4, "off": 2, "capture": 2, "capture-miss": 1, "arrive": 2,
		"ibodrop": 1, "pid": 1, "lambda": 1, "correction": 1, "buffer": 2,
		"ckpt": 1, "rollback": 1, "classify": 1, "tx": 1,
	} {
		if byName[name] != want {
			t.Errorf("chrome event %q count = %d, want %d", name, byName[name], want)
		}
	}
	// Timestamp conversion is exact: 0.500000 s → 500000 µs.
	for _, ev := range doc.TraceEvents {
		if ev["name"] == "capture" {
			if ts := ev["ts"].(float64); ts != 500000 {
				t.Errorf("first capture ts = %v µs, want 500000", ts)
			}
			break
		}
	}

	// The JSONL rendering is one valid object per event line.
	lines := strings.Split(strings.TrimSuffix(jsonl, "\n"), "\n")
	if len(lines) != 17 {
		t.Fatalf("jsonl lines = %d, want 17", len(lines))
	}
	var first map[string]any
	if jerr := json.Unmarshal([]byte(lines[0]), &first); jerr != nil {
		t.Fatalf("jsonl line not valid JSON: %v\n%s", jerr, lines[0])
	}
	if first["t_us"].(float64) != 500000 || first["event"] != "capture" ||
		first["interesting"] != true {
		t.Errorf("jsonl first line = %v", first)
	}
	// Bracketed option vectors survive as strings.
	var sched map[string]any
	if jerr := json.Unmarshal([]byte(lines[3]), &sched); jerr != nil {
		t.Fatal(jerr)
	}
	if sched["opts"] != "[0 1]" {
		t.Errorf("sched opts = %v, want the literal string \"[0 1]\"", sched["opts"])
	}
}

// TestExporterByteStableUnderChunking pins that output depends only on the
// stream content, not on Write-call boundaries.
func TestExporterByteStableUnderChunking(t *testing.T) {
	c1, j1, err1 := export(t, sampleStream, false)
	c2, j2, err2 := export(t, sampleStream, true)
	if err1 != nil || err2 != nil {
		t.Fatalf("export errors: %v / %v", err1, err2)
	}
	if c1 != c2 || j1 != j2 {
		t.Error("exporter output changed with Write chunking")
	}
}

func TestExporterCountsEvents(t *testing.T) {
	var cb strings.Builder
	reg := NewRegistry()
	e := NewExporter(ExporterConfig{Chrome: &cb, Metrics: reg})
	if _, err := e.Write([]byte(sampleStream)); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if got := e.Events(); got != 17 {
		t.Errorf("Events() = %d, want 17", got)
	}
	if got := reg.Counter("trace_events_total").Value(); got != 17 {
		t.Errorf("trace_events_total = %d, want 17", got)
	}
	if got := reg.Counter("trace_capture_events_total").Value(); got != 2 {
		t.Errorf("trace_capture_events_total = %d, want 2", got)
	}
}

// TestExporterClosesOpenSpans: a run may end browned out or mid-job; the
// trailer must close both spans so the trace stays well-formed.
func TestExporterClosesOpenSpans(t *testing.T) {
	stream := "0.100000 arrive seq=0 interesting=true occ=1\n" +
		"0.200000 sched seq=0 job=2 opts=[0] degraded=false ibo=false\n" +
		"0.300000 brownout\n"
	chrome, _, err := export(t, stream, false)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(chrome, `"end":"run-end"`) {
		t.Errorf("open job span not closed at end of run:\n%s", chrome)
	}
	if got := strings.Count(chrome, `"name":"off"`); got != 2 {
		t.Errorf("open off span not closed: %d off events, want 2\n%s", got, chrome)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if jerr := json.Unmarshal([]byte(chrome), &doc); jerr != nil {
		t.Fatalf("trailer left invalid JSON: %v", jerr)
	}
}

// TestExporterCatchesDroppedEvent is the mutation test the tentpole asks
// for: deleting a sequenced line (arrival, drop, sched, completion) from an
// otherwise valid stream must surface as a Close error, so a silently lossy
// instrumentation path cannot produce a plausible trace. The stream's final
// event is exempt: a drop at the very end is indistinguishable from the run
// simply ending there, which is why the check is a sequence audit rather
// than a completeness proof.
func TestExporterCatchesDroppedEvent(t *testing.T) {
	lines := strings.SplitAfter(sampleStream, "\n")
	dropped := 0
	for i, l := range lines[:len(lines)-1] {
		if i == len(lines)-2 {
			break // trailing event: undetectable by construction
		}
		if !strings.Contains(l, " arrive ") && !strings.Contains(l, " ibodrop ") &&
			!strings.Contains(l, " sched ") && !strings.Contains(l, " jobdone ") {
			continue
		}
		dropped++
		mutated := strings.Join(append(append([]string{}, lines[:i]...), lines[i+1:]...), "")
		if _, _, err := export(t, mutated, false); err == nil {
			t.Errorf("dropping line %d (%q) went undetected", i, strings.TrimSpace(l))
		}
	}
	if dropped != 6 {
		t.Fatalf("mutation test dropped %d lines, want 6 (stream changed?)", dropped)
	}
}

func TestExporterStreamErrors(t *testing.T) {
	cases := []struct {
		name, stream, wantErr string
	}{
		{"backwards-time",
			"1.000000 capture different=true interesting=true\n0.900000 brownout\n",
			"timestamp went backwards"},
		{"seq-gap",
			"0.100000 arrive seq=1 interesting=true occ=1\n",
			"sequence gap"},
		{"orphan-jobdone",
			"0.100000 jobdone seq=0 job=1 spawned=false restarts=0\n",
			"without matching sched"},
		{"sched-unknown-seq",
			"0.100000 sched seq=5 job=1 opts=[0] degraded=false ibo=false\n",
			"unknown arrival seq"},
		{"double-sched",
			"0.100000 arrive seq=0 interesting=true occ=1\n" +
				"0.200000 sched seq=0 job=1 opts=[0] degraded=false ibo=false\n" +
				"0.300000 sched seq=0 job=1 opts=[0] degraded=false ibo=false\n",
			"still open"},
		{"double-brownout",
			"0.100000 brownout\n0.200000 brownout\n",
			"already off"},
		{"orphan-poweron",
			"0.100000 poweron\n",
			"already on"},
		{"unknown-kind",
			"0.100000 frobnicate x=1\n",
			"unknown event kind"},
		{"bad-timestamp",
			"0.1 capture different=true interesting=true\n",
			"not %.6f-formatted"},
		{"malformed-field",
			"0.100000 capture different\n",
			"malformed field"},
		{"truncated-stream",
			"0.100000 capture different=true interesting=true\n0.200000 brow",
			"ended mid-line"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := export(t, tc.stream, false)
			if err == nil {
				t.Fatalf("stream accepted, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

// TestExporterErrorSticky: after a stream error, Write keeps reporting it
// and no further output is rendered.
func TestExporterErrorSticky(t *testing.T) {
	var cb strings.Builder
	e := NewExporter(ExporterConfig{Chrome: &cb})
	if _, err := e.Write([]byte("0.100000 frobnicate\n")); err == nil {
		t.Fatal("bad line accepted")
	}
	before := cb.String()
	if _, err := e.Write([]byte("0.200000 capture different=true interesting=true\n")); err == nil {
		t.Fatal("error not sticky across Write calls")
	}
	if cb.String() != before {
		t.Error("output rendered after a stream error")
	}
	if e.Close() == nil {
		t.Fatal("Close lost the stream error")
	}
}

func TestJSONValue(t *testing.T) {
	for in, want := range map[string]string{
		"true":     "true",
		"false":    "false",
		"12":       "12",
		"0.500000": "0.500000",
		"-3.5":     "-3.5",
		"[0 1]":    `"[0 1]"`,
		"abc":      `"abc"`,
	} {
		if got := jsonValue(in); got != want {
			t.Errorf("jsonValue(%q) = %s, want %s", in, got, want)
		}
	}
}
