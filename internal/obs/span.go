package obs

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// SpanTrace renders wall-clock work spans (sweep runs, not simulated time)
// as Chrome trace_event JSON. Spans are reported at completion — the shape
// the runner pool's OnEvent callback delivers — and assigned greedily to
// the first free lane, so a sweep's trace shows its real parallelism.
//
// SpanTrace is not safe for concurrent use; the pool serializes OnEvent
// callbacks, which is exactly the discipline it needs.
type SpanTrace struct {
	w           io.Writer
	epoch       time.Time
	lanes       []time.Time // per-lane busy-until
	wroteHeader bool
	spans       int
	err         error
}

// NewSpanTrace builds a span trace writing to w; timestamps are relative to
// epoch (pass the sweep's start time).
func NewSpanTrace(w io.Writer, epoch time.Time) *SpanTrace {
	return &SpanTrace{w: w, epoch: epoch}
}

// Spans returns how many spans have been recorded.
func (t *SpanTrace) Spans() int { return t.spans }

// Record adds one completed span. Attrs are rendered into the event's args;
// values pass through jsonValue, so numbers stay numbers.
func (t *SpanTrace) Record(name string, start time.Time, d time.Duration, attrs ...[2]string) {
	if t.err != nil {
		return
	}
	if start.Before(t.epoch) {
		start = t.epoch
	}
	lane := -1
	for i, busy := range t.lanes {
		if !busy.After(start) {
			lane = i
			break
		}
	}
	if lane < 0 {
		lane = len(t.lanes)
		t.lanes = append(t.lanes, time.Time{})
	}
	t.lanes[lane] = start.Add(d)

	if !t.wroteHeader {
		t.wroteHeader = true
		if _, err := io.WriteString(t.w, `{"displayTimeUnit":"ms","traceEvents":[`+"\n"+
			`{"name":"process_name","ph":"M","pid":1,"args":{"name":"sweep"}}`); err != nil {
			t.err = err
			return
		}
	}
	var args strings.Builder
	for i, a := range attrs {
		if i > 0 {
			args.WriteByte(',')
		}
		fmt.Fprintf(&args, "%q:%s", a[0], jsonValue(a[1]))
	}
	ts := start.Sub(t.epoch).Microseconds()
	dur := d.Microseconds()
	if dur < 1 {
		dur = 1 // Chrome hides zero-width spans entirely
	}
	if _, err := fmt.Fprintf(t.w, ",\n{\"name\":%q,\"ph\":\"X\",\"ts\":%d,\"dur\":%d,\"pid\":1,\"tid\":%d,\"args\":{%s}}",
		name, ts, dur, lane+1, args.String()); err != nil {
		t.err = err
	}
	t.spans++
}

// Close writes the JSON trailer and reports any write error.
func (t *SpanTrace) Close() error {
	if t.wroteHeader && t.err == nil {
		if _, err := io.WriteString(t.w, "\n]}\n"); err != nil {
			t.err = err
		}
	}
	return t.err
}
