package obs_test

import (
	"bufio"
	"context"
	"io"
	"testing"

	"quetzal/internal/baseline"
	"quetzal/internal/device"
	"quetzal/internal/obs"
	"quetzal/internal/sim"
	"quetzal/internal/trace"
)

// benchObsRun measures the observability layer's cost on the shared
// benchmark workload from internal/engine/bench_test.go (Apollo4, NoAdapt,
// 20 interesting events over 460 simulated seconds, duty-cycled square
// wave), with invariant checks off so the obs delta is not buried under the
// checker. mutate attaches the sinks under test; BENCH_obs.json records the
// disabled/metrics/trace numbers next to BENCH_engine.json's baseline.
func benchObsRun(b *testing.B, mutate func(*sim.Config)) {
	prof := device.Apollo4()
	events := &trace.EventTrace{}
	t := 10.0
	for i := 0; i < 20; i++ {
		events.Events = append(events.Events, trace.Event{Start: t, Duration: 10, Interesting: true})
		t += 20
	}
	power := trace.SquareWave{High: 0.05, Low: 0.004, Period: 60, Duty: 0.5}
	b.ReportAllocs()
	simulated := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		app := prof.PersonDetectionApp()
		ctl, err := baseline.NoAdapt(app)
		if err != nil {
			b.Fatal(err)
		}
		cfg := sim.Config{
			Profile: prof, App: app, Controller: ctl,
			Power: power, Events: events,
			Seed:   42,
			Engine: sim.EventDriven,
			Checks: sim.ChecksOff,
		}
		if mutate != nil {
			mutate(&cfg)
		}
		s, err := sim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := s.RunContext(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		simulated += res.SimSeconds
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(simulated/sec, "sim-s/s")
	}
	if b.N > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/simulated, "ns/sim-s")
	}
}

// BenchmarkObsDisabled is the baseline every other variant is compared to:
// no obs sinks wired at all.
func BenchmarkObsDisabled(b *testing.B) {
	benchObsRun(b, nil)
}

// BenchmarkObsMetrics adds the per-step metrics observer.
func BenchmarkObsMetrics(b *testing.B) {
	reg := obs.NewRegistry()
	benchObsRun(b, func(cfg *sim.Config) { cfg.Metrics = reg })
}

// BenchmarkObsTrace adds the full Chrome trace exporter (rendered and
// discarded, buffered like a real file write).
func BenchmarkObsTrace(b *testing.B) {
	benchObsRun(b, func(cfg *sim.Config) {
		cfg.Trace = bufio.NewWriter(io.Discard)
	})
}

// BenchmarkObsJSONL adds the JSONL event-log exporter.
func BenchmarkObsJSONL(b *testing.B) {
	benchObsRun(b, func(cfg *sim.Config) {
		cfg.TraceJSONL = bufio.NewWriter(io.Discard)
	})
}
