package obs

import (
	"fmt"
	"io"
	"math"
	"sync"
)

func floatBits(v float64) uint64     { return math.Float64bits(v) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }

// Layout is a histogram's fixed bucket layout: strictly increasing upper
// bounds, with an implicit +Inf overflow bucket. Layouts are fixed at
// construction so histograms with the same layout merge exactly.
type Layout struct {
	bounds []float64
}

// Buckets builds a layout from explicit upper bounds, which must be
// strictly increasing and finite.
func Buckets(bounds ...float64) Layout {
	for i, b := range bounds {
		if math.IsInf(b, 0) || math.IsNaN(b) {
			panic("obs: bucket bounds must be finite")
		}
		if i > 0 && b <= bounds[i-1] {
			panic("obs: bucket bounds must be strictly increasing")
		}
	}
	out := make([]float64, len(bounds))
	copy(out, bounds)
	return Layout{bounds: out}
}

// LinearBuckets builds n buckets with upper bounds start, start+width, ….
func LinearBuckets(start, width float64, n int) Layout {
	if width <= 0 || n <= 0 {
		panic("obs: linear buckets need positive width and count")
	}
	bounds := make([]float64, n)
	for i := range bounds {
		bounds[i] = start + float64(i)*width
	}
	return Layout{bounds: bounds}
}

// ExpBuckets builds n buckets with upper bounds start, start·factor, ….
func ExpBuckets(start, factor float64, n int) Layout {
	if start <= 0 || factor <= 1 || n <= 0 {
		panic("obs: exponential buckets need positive start and factor > 1")
	}
	bounds := make([]float64, n)
	b := start
	for i := range bounds {
		bounds[i] = b
		b *= factor
	}
	return Layout{bounds: bounds}
}

// LatencyBuckets is the canonical run-latency layout: 1 ms doubling up to
// ~2 minutes (18 buckets), matching the spread between a cached sweep run
// and a paper-scale fixed-increment simulation.
func LatencyBuckets() Layout { return ExpBuckets(0.001, 2, 18) }

// Equal reports whether two layouts have identical bounds.
func (l Layout) Equal(o Layout) bool {
	if len(l.bounds) != len(o.bounds) {
		return false
	}
	for i, b := range l.bounds {
		if b != o.bounds[i] {
			return false
		}
	}
	return true
}

// Bounds returns a copy of the upper bounds (the +Inf bucket is implicit).
func (l Layout) Bounds() []float64 {
	out := make([]float64, len(l.bounds))
	copy(out, l.bounds)
	return out
}

// Histogram is a fixed-bucket-layout histogram. Observing is a short
// critical section with no allocation; all methods are safe for concurrent
// use.
type Histogram struct {
	mu     sync.Mutex
	layout Layout
	counts []uint64 // len(bounds)+1; last is the +Inf overflow bucket
	count  uint64
	sum    float64
	min    float64
	max    float64
}

// NewHistogram builds an empty histogram with the given layout.
func NewHistogram(layout Layout) *Histogram {
	return &Histogram{layout: layout, counts: make([]uint64, len(layout.bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	i := 0
	for i < len(h.layout.bounds) && v > h.layout.bounds[i] {
		i++
	}
	h.counts[i]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Min returns the smallest observed value (0 when empty).
func (h *Histogram) Min() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max returns the largest observed value (0 when empty).
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// BucketCounts returns a copy of the per-bucket counts; the last entry is
// the +Inf overflow bucket.
func (h *Histogram) BucketCounts() []uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]uint64, len(h.counts))
	copy(out, h.counts)
	return out
}

// Clone returns an independent snapshot of the histogram.
func (h *Histogram) Clone() *Histogram {
	h.mu.Lock()
	defer h.mu.Unlock()
	c := NewHistogram(h.layout)
	copy(c.counts, h.counts)
	c.count, c.sum, c.min, c.max = h.count, h.sum, h.min, h.max
	return c
}

// Merge adds o's observations into h. Both histograms must share a layout;
// merge is commutative on counts, sum, min and max (pinned by
// FuzzHistogram). o is snapshotted first, so h.Merge(h) is safe.
func (h *Histogram) Merge(o *Histogram) error {
	s := o.Clone()
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.layout.Equal(s.layout) {
		return fmt.Errorf("obs: cannot merge histograms with different layouts")
	}
	if s.count == 0 {
		return nil
	}
	for i, c := range s.counts {
		h.counts[i] += c
	}
	if h.count == 0 || s.min < h.min {
		h.min = s.min
	}
	if h.count == 0 || s.max > h.max {
		h.max = s.max
	}
	h.count += s.count
	h.sum += s.sum
	return nil
}

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// within the bucket containing the target rank. The estimate is off by at
// most one bucket width for in-range values (pinned by FuzzHistogram); for
// the overflow bucket, and for q at the extremes, the exact observed
// min/max are returned. Returns NaN on an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := q * float64(h.count)
	cum := uint64(0)
	for i, c := range h.counts {
		cum += c
		if float64(cum) < target || c == 0 {
			continue
		}
		if i == len(h.layout.bounds) {
			return h.max // overflow bucket: no finite upper bound
		}
		lo := h.min
		if i > 0 && h.layout.bounds[i-1] > lo {
			// The first populated bucket's floor is min itself, not the
			// bucket edge below it — otherwise Quantile(ε) < Quantile(0).
			lo = h.layout.bounds[i-1]
		}
		hi := h.layout.bounds[i]
		if hi > h.max {
			hi = h.max
		}
		if lo > hi {
			lo = hi
		}
		frac := (target - float64(cum-c)) / float64(c)
		return lo + frac*(hi-lo)
	}
	return h.max
}

// writeText renders the histogram in Prometheus text style (cumulative
// buckets), under the registry lock.
func (h *Histogram) writeText(w io.Writer, name string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	cum := uint64(0)
	for i, c := range h.counts {
		cum += c
		le := "+Inf"
		if i < len(h.layout.bounds) {
			le = fmt.Sprintf("%g", h.layout.bounds[i])
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", name, h.sum, name, h.count)
	return err
}
