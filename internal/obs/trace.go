package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The trace exporter consumes the engine's event-log stream — the same
// deterministic, golden-fingerprinted line format internal/sim hashes —
// and renders it as Chrome trace_event JSON (chrome://tracing, Perfetto)
// and/or a JSONL event log. Working from the committed stream rather than
// a parallel instrumentation path means the export is byte-stable by
// construction: identical event streams yield identical exports, so the
// golden-trace layer can pin exports with sha256 fixtures exactly like the
// raw streams.
//
// The exporter also audits the stream: timestamps must be non-decreasing,
// arrival sequence numbers contiguous, and job lifecycles well-formed
// (sched → classify/tx → jobdone|jobabort, one job at a time). A dropped
// or reordered line surfaces as a Close error (pinned by the mutation test
// in trace_test.go), so a broken instrumentation path cannot silently
// produce a plausible-looking trace.

// Chrome trace thread ids: one lane per device subsystem.
const (
	tidCompute    = 1 // job execution spans, classify/tx/ckpt/rollback instants
	tidPower      = 2 // brownout → poweron "off" spans
	tidCapture    = 3 // capture/arrive/ibodrop instants
	tidController = 4 // pid updates
)

// ExporterConfig selects the exporter's sinks; any may be nil.
type ExporterConfig struct {
	// Chrome receives the run as Chrome trace_event JSON.
	Chrome io.Writer
	// JSONL receives one JSON object per event line.
	JSONL io.Writer
	// Metrics, when set, counts exported events per kind
	// (trace_events_total, trace_<kind>_events_total).
	Metrics *Registry
}

// Exporter is an io.Writer for the engine event-log stream (wire it as — or
// tee it into — sim.Config.EventLog / engine.Config.EventLog). It is not
// safe for concurrent use; one exporter serves one run. Close flushes the
// Chrome JSON trailer and reports any stream-integrity violation.
type Exporter struct {
	cfg ExporterConfig

	carry []byte // partial trailing line between Write calls
	err   error  // first stream error, sticky

	wroteHeader bool
	events      int

	// Stream-integrity state.
	lastTS   int64  // µs, non-decreasing
	nextSeq  uint64 // next expected arrival sequence number
	openJob  string // job id of the in-flight sched span, "" if none
	openSeq  string // seq of the in-flight sched span
	powerOff bool   // inside a brownout → poweron span

	total  *Counter
	byKind map[string]*Counter

	// Per-exporter scratch, reused line to line so the enabled-export hot
	// path stays near-zero-alloc (pinned by TestExporterAllocs): token and
	// field slices for the parser, one byte buffer for rendered output.
	// Nothing here survives a line except via explicit string copies.
	toks   []string
	fields [][2]string
	buf    []byte
}

// NewExporter builds an exporter over the given sinks.
func NewExporter(cfg ExporterConfig) *Exporter {
	e := &Exporter{cfg: cfg}
	if cfg.Metrics != nil {
		e.total = cfg.Metrics.Counter("trace_events_total")
		e.byKind = make(map[string]*Counter)
	}
	return e
}

// Events returns how many event lines the exporter has rendered.
func (e *Exporter) Events() int { return e.events }

// Write consumes event-log bytes, rendering every complete line. The first
// malformed or out-of-order line poisons the exporter; the error is
// returned here and again from Close.
func (e *Exporter) Write(p []byte) (int, error) {
	data := p
	if len(e.carry) > 0 {
		data = append(e.carry, p...)
		e.carry = nil
	}
	for {
		nl := -1
		for i, b := range data {
			if b == '\n' {
				nl = i
				break
			}
		}
		if nl < 0 {
			break
		}
		if e.err == nil {
			e.line(string(data[:nl]))
		}
		data = data[nl+1:]
	}
	if len(data) > 0 {
		e.carry = append(e.carry, data...)
	}
	return len(p), e.err
}

// Close finalises the Chrome JSON (closing any spans still open at end of
// run — a device may legitimately finish browned out or mid-job) and
// returns the first stream-integrity error, if any.
func (e *Exporter) Close() error {
	if e.err == nil {
		if e.openJob != "" {
			e.chrome(`{"name":"job:%s","ph":"E","ts":%d,"pid":1,"tid":%d,"args":{"seq":%s,"end":"run-end"}}`,
				e.openJob, e.lastTS, tidCompute, e.openSeq)
			e.openJob = ""
		}
		if e.powerOff {
			e.chrome(`{"name":"off","ph":"E","ts":%d,"pid":1,"tid":%d}`, e.lastTS, tidPower)
			e.powerOff = false
		}
	}
	if e.cfg.Chrome != nil && e.wroteHeader {
		if _, err := io.WriteString(e.cfg.Chrome, "\n]}\n"); err != nil && e.err == nil {
			e.err = err
		}
	}
	if len(e.carry) > 0 && e.err == nil {
		e.err = fmt.Errorf("obs: trace stream ended mid-line: %q", e.carry)
	}
	return e.err
}

// fail records the first stream error.
func (e *Exporter) fail(format string, args ...any) {
	if e.err == nil {
		e.err = fmt.Errorf("obs: "+format, args...)
	}
}

// field returns the value of key in the parsed k=v fields, or fails.
func field(fields [][2]string, key string) (string, bool) {
	for _, f := range fields {
		if f[0] == key {
			return f[1], true
		}
	}
	return "", false
}

// line parses and renders one event line: "<seconds> <kind> [k=v ...]".
func (e *Exporter) line(s string) {
	ts, kind, fields, err := e.parseLineScratch(s)
	if err != nil {
		e.fail("%v", err)
		return
	}
	if ts < e.lastTS {
		e.fail("timestamp went backwards: %s (last %d µs)", s, e.lastTS)
		return
	}
	e.lastTS = ts

	// Stream-integrity checks per kind, before rendering.
	switch kind {
	case "arrive", "ibodrop":
		seq, ok := field(fields, "seq")
		if !ok {
			e.fail("%s line without seq: %q", kind, s)
			return
		}
		n, perr := strconv.ParseUint(seq, 10, 64)
		if perr != nil {
			e.fail("bad seq in %q: %v", s, perr)
			return
		}
		if n != e.nextSeq {
			e.fail("arrival sequence gap: got seq=%d, want %d (a line was dropped or reordered)", n, e.nextSeq)
			return
		}
		e.nextSeq = n + 1
	case "sched":
		if e.openJob != "" {
			e.fail("sched while job %s (seq %s) still open: %q", e.openJob, e.openSeq, s)
			return
		}
		seq, _ := field(fields, "seq")
		job, _ := field(fields, "job")
		if n, perr := strconv.ParseUint(seq, 10, 64); perr != nil || n >= e.nextSeq {
			e.fail("sched references unknown arrival seq=%s (have %d arrivals): %q", seq, e.nextSeq, s)
			return
		}
		e.openJob, e.openSeq = job, seq
	case "classify", "tx":
		if seq, _ := field(fields, "seq"); e.openJob == "" || seq != e.openSeq {
			e.fail("%s outside its job span (open seq %q): %q", kind, e.openSeq, s)
			return
		}
	case "jobdone", "jobabort":
		if seq, _ := field(fields, "seq"); e.openJob == "" || seq != e.openSeq {
			e.fail("%s without matching sched (open seq %q): %q", kind, e.openSeq, s)
			return
		}
		e.openJob, e.openSeq = "", ""
	case "brownout":
		if e.powerOff {
			e.fail("brownout while already off: %q", s)
			return
		}
		// A job interrupted by the brownout stays open: execution resumes
		// (or rolls back) after poweron without a fresh sched line. The off
		// span lives on its own lane, so the overlap renders fine.
		e.powerOff = true
	case "poweron":
		if !e.powerOff {
			e.fail("poweron while already on: %q", s)
			return
		}
		e.powerOff = false
	case "capture", "capture-miss", "ckpt", "rollback", "pid", "fault":
		// Instant events, no lifecycle state. (A transient task fault leaves
		// its job span open — the task re-executes inside the same job.)
	default:
		e.fail("unknown event kind %q in %q", kind, s)
		return
	}

	e.events++
	if e.cfg.Metrics != nil {
		e.total.Inc()
		c, ok := e.byKind[kind]
		if !ok {
			c = e.cfg.Metrics.Counter("trace_" + kind + "_events_total")
			e.byKind[kind] = c
		}
		c.Inc()
	}
	e.jsonl(ts, kind, fields)
	e.render(ts, kind, fields)
}

// render emits the Chrome trace_event entries for one event. Entries are
// assembled by append into the exporter's scratch buffer — no fmt verbs on
// the per-event path — producing bytes identical to the former
// fmt.Fprintf-based renderer (the golden-trace fixtures pin this).
func (e *Exporter) render(ts int64, kind string, fields [][2]string) {
	instant := func(tid int64) {
		b, ok := e.beginChrome()
		if !ok {
			return
		}
		b = append(b, `{"name":`...)
		b = strconv.AppendQuote(b, kind)
		b = append(b, `,"ph":"i","ts":`...)
		b = strconv.AppendInt(b, ts, 10)
		b = append(b, `,"pid":1,"tid":`...)
		b = strconv.AppendInt(b, tid, 10)
		b = append(b, `,"s":"t","args":{`...)
		b = appendArgs(b, fields)
		b = append(b, `}}`...)
		e.endChrome(b)
	}
	jobSpan := func(ph byte, abort bool) {
		b, ok := e.beginChrome()
		if !ok {
			return
		}
		job, _ := field(fields, "job")
		b = append(b, `{"name":"job:`...)
		b = append(b, job...)
		b = append(b, `","ph":"`...)
		b = append(b, ph)
		b = append(b, `","ts":`...)
		b = strconv.AppendInt(b, ts, 10)
		b = append(b, `,"pid":1,"tid":`...)
		b = strconv.AppendInt(b, tidCompute, 10)
		b = append(b, `,"args":{`...)
		if abort {
			b = append(b, `"abort":true,`...)
		}
		b = appendArgs(b, fields)
		b = append(b, `}}`...)
		e.endChrome(b)
	}
	counter := func(name, valueKey, value string) {
		b, ok := e.beginChrome()
		if !ok {
			return
		}
		b = append(b, `{"name":"`...)
		b = append(b, name...)
		b = append(b, `","ph":"C","ts":`...)
		b = strconv.AppendInt(b, ts, 10)
		b = append(b, `,"pid":1,"args":{"`...)
		b = append(b, valueKey...)
		b = append(b, `":`...)
		b = append(b, value...)
		b = append(b, `}}`...)
		e.endChrome(b)
	}
	offSpan := func(ph byte) {
		b, ok := e.beginChrome()
		if !ok {
			return
		}
		b = append(b, `{"name":"off","ph":"`...)
		b = append(b, ph)
		b = append(b, `","ts":`...)
		b = strconv.AppendInt(b, ts, 10)
		b = append(b, `,"pid":1,"tid":`...)
		b = strconv.AppendInt(b, tidPower, 10)
		b = append(b, `}`...)
		e.endChrome(b)
	}
	switch kind {
	case "brownout":
		offSpan('B')
	case "poweron":
		offSpan('E')
	case "sched":
		jobSpan('B', false)
	case "jobdone":
		jobSpan('E', false)
	case "jobabort":
		jobSpan('E', true)
	case "capture", "capture-miss", "arrive", "ibodrop":
		instant(tidCapture)
		if kind == "arrive" {
			if occ, ok := field(fields, "occ"); ok {
				counter("buffer", "occupancy", occ)
			}
		}
	case "classify", "tx", "ckpt", "rollback", "fault":
		instant(tidCompute)
	case "pid":
		instant(tidController)
		if lam, ok := field(fields, "lambda"); ok {
			counter("lambda", "lambda", lam)
		}
		if corr, ok := field(fields, "corr"); ok {
			counter("correction", "correction", corr)
		}
	}
}

// appendArgs renders the k=v fields as JSON object members.
func appendArgs(b []byte, fields [][2]string) []byte {
	for i, f := range fields {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendQuote(b, f[0])
		b = append(b, ':')
		b = appendJSONValue(b, f[1])
	}
	return b
}

// appendJSONValue is jsonValue in append form, with a first-byte screen so
// the common non-numeric case never pays strconv.ParseFloat's error
// allocation.
func appendJSONValue(b []byte, v string) []byte {
	if v == "true" || v == "false" {
		return append(b, v...)
	}
	if len(v) > 0 {
		switch c := v[0]; {
		case c == '-' || c == '+' || c == '.' || ('0' <= c && c <= '9'),
			c == 'n' || c == 'N' || c == 'i' || c == 'I': // NaN/Inf spellings
			if _, err := strconv.ParseFloat(v, 64); err == nil {
				return append(b, v...)
			}
		}
	}
	return strconv.AppendQuote(b, v)
}

// beginChrome starts one trace_event entry in the scratch buffer, emitting
// the stream header first if needed; ok is false when the Chrome sink is
// absent or the exporter is poisoned.
func (e *Exporter) beginChrome() ([]byte, bool) {
	if e.cfg.Chrome == nil || e.err != nil {
		return nil, false
	}
	if !e.wroteHeader {
		e.wroteHeader = true
		header := `{"displayTimeUnit":"ms","traceEvents":[` + "\n" +
			`{"name":"process_name","ph":"M","pid":1,"args":{"name":"quetzal-sim"}},` + "\n" +
			fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":"compute"}},`, tidCompute) + "\n" +
			fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":"power"}},`, tidPower) + "\n" +
			fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":"capture"}},`, tidCapture) + "\n" +
			fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":"controller"}}`, tidController)
		if _, err := io.WriteString(e.cfg.Chrome, header); err != nil {
			e.err = err
			return nil, false
		}
	}
	return append(e.buf[:0], ',', '\n'), true
}

// endChrome flushes one assembled entry and returns the buffer to scratch.
func (e *Exporter) endChrome(b []byte) {
	if _, err := e.cfg.Chrome.Write(b); err != nil {
		e.err = err
	}
	e.buf = b[:0]
}

// chrome writes one fmt-formatted trace_event entry — the cold path Close
// uses for its end-of-run span closers; the per-event path renders by
// append in render().
func (e *Exporter) chrome(format string, args ...any) {
	b, ok := e.beginChrome()
	if !ok {
		return
	}
	b = fmt.Appendf(b, format, args...)
	e.endChrome(b)
}

// jsonl writes one event as a single JSON object line, echoing the parsed
// fields in stream order.
func (e *Exporter) jsonl(ts int64, kind string, fields [][2]string) {
	if e.cfg.JSONL == nil || e.err != nil {
		return
	}
	b := append(e.buf[:0], `{"t_us":`...)
	b = strconv.AppendInt(b, ts, 10)
	b = append(b, `,"event":`...)
	b = strconv.AppendQuote(b, kind)
	for _, f := range fields {
		b = append(b, ',')
		b = strconv.AppendQuote(b, f[0])
		b = append(b, ':')
		b = appendJSONValue(b, f[1])
	}
	b = append(b, '}', '\n')
	if _, err := e.cfg.JSONL.Write(b); err != nil {
		e.err = err
	}
	e.buf = b[:0]
}

// jsonValue renders a k=v value as JSON: booleans and numbers pass through
// verbatim (preserving the stream's exact float formatting — byte-stability
// depends on never reformatting), anything else is quoted.
func jsonValue(v string) string {
	if v == "true" || v == "false" {
		return v
	}
	if _, err := strconv.ParseFloat(v, 64); err == nil {
		return v
	}
	return strconv.Quote(v)
}

// parseLineScratch splits "<seconds> <kind> [k=v ...]" into a µs timestamp,
// the event kind, and the field pairs, reusing the exporter's token/field
// scratch so a well-formed line parses without allocating. Timestamps are
// converted from the %.6f-second format by digit manipulation, not float
// arithmetic, so the conversion is exact and platform-independent.
// Bracketed values ("opts=[0 1]") may contain spaces. The returned slices
// and strings alias s and the scratch — valid only until the next line.
func (e *Exporter) parseLineScratch(s string) (int64, string, [][2]string, error) {
	tokens := e.splitFieldsScratch(s)
	if len(tokens) < 2 {
		return 0, "", nil, fmt.Errorf("malformed event line %q", s)
	}
	ts, err := microseconds(tokens[0])
	if err != nil {
		return 0, "", nil, fmt.Errorf("bad timestamp in %q: %v", s, err)
	}
	kind := tokens[1]
	fields := e.fields[:0]
	for _, tok := range tokens[2:] {
		k, v, ok := strings.Cut(tok, "=")
		if !ok || k == "" {
			return 0, "", nil, fmt.Errorf("malformed field %q in %q", tok, s)
		}
		fields = append(fields, [2]string{k, v})
	}
	e.fields = fields
	return ts, kind, fields, nil
}

// splitFieldsScratch splits on whitespace, joining bracketed groups
// ("opts=[0 1]") by substring — tokens alias s, so splitting allocates
// nothing beyond scratch growth.
func (e *Exporter) splitFieldsScratch(s string) []string {
	isSpace := func(c byte) bool {
		return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\v' || c == '\f'
	}
	out := e.toks[:0]
	for i, n := 0, len(s); i < n; {
		for i < n && isSpace(s[i]) {
			i++
		}
		if i >= n {
			break
		}
		start := i
		for i < n && !isSpace(s[i]) {
			i++
		}
		tok := s[start:i]
		if strings.Contains(tok, "[") && !strings.Contains(tok, "]") {
			for i < n {
				for i < n && isSpace(s[i]) {
					i++
				}
				if i >= n {
					break
				}
				next := i
				for i < n && !isSpace(s[i]) {
					i++
				}
				tok = s[start:i]
				if strings.Contains(s[next:i], "]") {
					break
				}
			}
		}
		out = append(out, tok)
	}
	e.toks = out
	return out
}

// microseconds converts a "%.6f"-formatted seconds string to integer µs.
func microseconds(s string) (int64, error) {
	whole, frac, ok := strings.Cut(s, ".")
	if !ok || len(frac) != 6 {
		return 0, fmt.Errorf("timestamp %q is not %%.6f-formatted", s)
	}
	w, err := strconv.ParseInt(whole, 10, 64)
	if err != nil {
		return 0, err
	}
	f, err := strconv.ParseInt(frac, 10, 64)
	if err != nil || f < 0 {
		return 0, fmt.Errorf("timestamp %q has a bad fraction", s)
	}
	if w < 0 {
		return 0, fmt.Errorf("timestamp %q is negative", s)
	}
	return w*1_000_000 + f, nil
}
