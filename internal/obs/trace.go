package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The trace exporter consumes the engine's event-log stream — the same
// deterministic, golden-fingerprinted line format internal/sim hashes —
// and renders it as Chrome trace_event JSON (chrome://tracing, Perfetto)
// and/or a JSONL event log. Working from the committed stream rather than
// a parallel instrumentation path means the export is byte-stable by
// construction: identical event streams yield identical exports, so the
// golden-trace layer can pin exports with sha256 fixtures exactly like the
// raw streams.
//
// The exporter also audits the stream: timestamps must be non-decreasing,
// arrival sequence numbers contiguous, and job lifecycles well-formed
// (sched → classify/tx → jobdone|jobabort, one job at a time). A dropped
// or reordered line surfaces as a Close error (pinned by the mutation test
// in trace_test.go), so a broken instrumentation path cannot silently
// produce a plausible-looking trace.

// Chrome trace thread ids: one lane per device subsystem.
const (
	tidCompute    = 1 // job execution spans, classify/tx/ckpt/rollback instants
	tidPower      = 2 // brownout → poweron "off" spans
	tidCapture    = 3 // capture/arrive/ibodrop instants
	tidController = 4 // pid updates
)

// ExporterConfig selects the exporter's sinks; any may be nil.
type ExporterConfig struct {
	// Chrome receives the run as Chrome trace_event JSON.
	Chrome io.Writer
	// JSONL receives one JSON object per event line.
	JSONL io.Writer
	// Metrics, when set, counts exported events per kind
	// (trace_events_total, trace_<kind>_events_total).
	Metrics *Registry
}

// Exporter is an io.Writer for the engine event-log stream (wire it as — or
// tee it into — sim.Config.EventLog / engine.Config.EventLog). It is not
// safe for concurrent use; one exporter serves one run. Close flushes the
// Chrome JSON trailer and reports any stream-integrity violation.
type Exporter struct {
	cfg ExporterConfig

	carry []byte // partial trailing line between Write calls
	err   error  // first stream error, sticky

	wroteHeader bool
	events      int

	// Stream-integrity state.
	lastTS  int64  // µs, non-decreasing
	nextSeq uint64 // next expected arrival sequence number
	openJob string // job id of the in-flight sched span, "" if none
	openSeq string // seq of the in-flight sched span
	powerOff bool  // inside a brownout → poweron span

	total  *Counter
	byKind map[string]*Counter
}

// NewExporter builds an exporter over the given sinks.
func NewExporter(cfg ExporterConfig) *Exporter {
	e := &Exporter{cfg: cfg}
	if cfg.Metrics != nil {
		e.total = cfg.Metrics.Counter("trace_events_total")
		e.byKind = make(map[string]*Counter)
	}
	return e
}

// Events returns how many event lines the exporter has rendered.
func (e *Exporter) Events() int { return e.events }

// Write consumes event-log bytes, rendering every complete line. The first
// malformed or out-of-order line poisons the exporter; the error is
// returned here and again from Close.
func (e *Exporter) Write(p []byte) (int, error) {
	data := p
	if len(e.carry) > 0 {
		data = append(e.carry, p...)
		e.carry = nil
	}
	for {
		nl := -1
		for i, b := range data {
			if b == '\n' {
				nl = i
				break
			}
		}
		if nl < 0 {
			break
		}
		if e.err == nil {
			e.line(string(data[:nl]))
		}
		data = data[nl+1:]
	}
	if len(data) > 0 {
		e.carry = append(e.carry, data...)
	}
	return len(p), e.err
}

// Close finalises the Chrome JSON (closing any spans still open at end of
// run — a device may legitimately finish browned out or mid-job) and
// returns the first stream-integrity error, if any.
func (e *Exporter) Close() error {
	if e.err == nil {
		if e.openJob != "" {
			e.chrome(`{"name":"job:%s","ph":"E","ts":%d,"pid":1,"tid":%d,"args":{"seq":%s,"end":"run-end"}}`,
				e.openJob, e.lastTS, tidCompute, e.openSeq)
			e.openJob = ""
		}
		if e.powerOff {
			e.chrome(`{"name":"off","ph":"E","ts":%d,"pid":1,"tid":%d}`, e.lastTS, tidPower)
			e.powerOff = false
		}
	}
	if e.cfg.Chrome != nil && e.wroteHeader {
		if _, err := io.WriteString(e.cfg.Chrome, "\n]}\n"); err != nil && e.err == nil {
			e.err = err
		}
	}
	if len(e.carry) > 0 && e.err == nil {
		e.err = fmt.Errorf("obs: trace stream ended mid-line: %q", e.carry)
	}
	return e.err
}

// fail records the first stream error.
func (e *Exporter) fail(format string, args ...any) {
	if e.err == nil {
		e.err = fmt.Errorf("obs: "+format, args...)
	}
}

// field returns the value of key in the parsed k=v fields, or fails.
func field(fields [][2]string, key string) (string, bool) {
	for _, f := range fields {
		if f[0] == key {
			return f[1], true
		}
	}
	return "", false
}

// line parses and renders one event line: "<seconds> <kind> [k=v ...]".
func (e *Exporter) line(s string) {
	ts, kind, fields, err := parseLine(s)
	if err != nil {
		e.fail("%v", err)
		return
	}
	if ts < e.lastTS {
		e.fail("timestamp went backwards: %s (last %d µs)", s, e.lastTS)
		return
	}
	e.lastTS = ts

	// Stream-integrity checks per kind, before rendering.
	switch kind {
	case "arrive", "ibodrop":
		seq, ok := field(fields, "seq")
		if !ok {
			e.fail("%s line without seq: %q", kind, s)
			return
		}
		n, perr := strconv.ParseUint(seq, 10, 64)
		if perr != nil {
			e.fail("bad seq in %q: %v", s, perr)
			return
		}
		if n != e.nextSeq {
			e.fail("arrival sequence gap: got seq=%d, want %d (a line was dropped or reordered)", n, e.nextSeq)
			return
		}
		e.nextSeq = n + 1
	case "sched":
		if e.openJob != "" {
			e.fail("sched while job %s (seq %s) still open: %q", e.openJob, e.openSeq, s)
			return
		}
		seq, _ := field(fields, "seq")
		job, _ := field(fields, "job")
		if n, perr := strconv.ParseUint(seq, 10, 64); perr != nil || n >= e.nextSeq {
			e.fail("sched references unknown arrival seq=%s (have %d arrivals): %q", seq, e.nextSeq, s)
			return
		}
		e.openJob, e.openSeq = job, seq
	case "classify", "tx":
		if seq, _ := field(fields, "seq"); e.openJob == "" || seq != e.openSeq {
			e.fail("%s outside its job span (open seq %q): %q", kind, e.openSeq, s)
			return
		}
	case "jobdone", "jobabort":
		if seq, _ := field(fields, "seq"); e.openJob == "" || seq != e.openSeq {
			e.fail("%s without matching sched (open seq %q): %q", kind, e.openSeq, s)
			return
		}
		e.openJob, e.openSeq = "", ""
	case "brownout":
		if e.powerOff {
			e.fail("brownout while already off: %q", s)
			return
		}
		// A job interrupted by the brownout stays open: execution resumes
		// (or rolls back) after poweron without a fresh sched line. The off
		// span lives on its own lane, so the overlap renders fine.
		e.powerOff = true
	case "poweron":
		if !e.powerOff {
			e.fail("poweron while already on: %q", s)
			return
		}
		e.powerOff = false
	case "capture", "capture-miss", "ckpt", "rollback", "pid":
		// Instant events, no lifecycle state.
	default:
		e.fail("unknown event kind %q in %q", kind, s)
		return
	}

	e.events++
	if e.cfg.Metrics != nil {
		e.total.Inc()
		c, ok := e.byKind[kind]
		if !ok {
			c = e.cfg.Metrics.Counter("trace_" + kind + "_events_total")
			e.byKind[kind] = c
		}
		c.Inc()
	}
	e.jsonl(ts, kind, fields)
	e.render(ts, kind, fields)
}

// render emits the Chrome trace_event entries for one event.
func (e *Exporter) render(ts int64, kind string, fields [][2]string) {
	args := func() string {
		var b strings.Builder
		for i, f := range fields {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%q:%s", f[0], jsonValue(f[1]))
		}
		return b.String()
	}
	switch kind {
	case "brownout":
		e.chrome(`{"name":"off","ph":"B","ts":%d,"pid":1,"tid":%d}`, ts, tidPower)
	case "poweron":
		e.chrome(`{"name":"off","ph":"E","ts":%d,"pid":1,"tid":%d}`, ts, tidPower)
	case "sched":
		job, _ := field(fields, "job")
		e.chrome(`{"name":"job:%s","ph":"B","ts":%d,"pid":1,"tid":%d,"args":{%s}}`, job, ts, tidCompute, args())
	case "jobdone":
		job, _ := field(fields, "job")
		e.chrome(`{"name":"job:%s","ph":"E","ts":%d,"pid":1,"tid":%d,"args":{%s}}`, job, ts, tidCompute, args())
	case "jobabort":
		job, _ := field(fields, "job")
		e.chrome(`{"name":"job:%s","ph":"E","ts":%d,"pid":1,"tid":%d,"args":{"abort":true,%s}}`, job, ts, tidCompute, args())
	case "capture", "capture-miss", "arrive", "ibodrop":
		e.chrome(`{"name":%q,"ph":"i","ts":%d,"pid":1,"tid":%d,"s":"t","args":{%s}}`, kind, ts, tidCapture, args())
		if kind == "arrive" {
			if occ, ok := field(fields, "occ"); ok {
				e.chrome(`{"name":"buffer","ph":"C","ts":%d,"pid":1,"args":{"occupancy":%s}}`, ts, occ)
			}
		}
	case "classify", "tx", "ckpt", "rollback":
		e.chrome(`{"name":%q,"ph":"i","ts":%d,"pid":1,"tid":%d,"s":"t","args":{%s}}`, kind, ts, tidCompute, args())
	case "pid":
		e.chrome(`{"name":"pid","ph":"i","ts":%d,"pid":1,"tid":%d,"s":"t","args":{%s}}`, ts, tidController, args())
		if lam, ok := field(fields, "lambda"); ok {
			e.chrome(`{"name":"lambda","ph":"C","ts":%d,"pid":1,"args":{"lambda":%s}}`, ts, lam)
		}
		if corr, ok := field(fields, "corr"); ok {
			e.chrome(`{"name":"correction","ph":"C","ts":%d,"pid":1,"args":{"correction":%s}}`, ts, corr)
		}
	}
}

// chrome writes one trace_event entry line, emitting the header (and the
// process/thread metadata naming the lanes) first.
func (e *Exporter) chrome(format string, args ...any) {
	if e.cfg.Chrome == nil || e.err != nil {
		return
	}
	if !e.wroteHeader {
		e.wroteHeader = true
		header := `{"displayTimeUnit":"ms","traceEvents":[` + "\n" +
			`{"name":"process_name","ph":"M","pid":1,"args":{"name":"quetzal-sim"}},` + "\n" +
			fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":"compute"}},`, tidCompute) + "\n" +
			fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":"power"}},`, tidPower) + "\n" +
			fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":"capture"}},`, tidCapture) + "\n" +
			fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":"controller"}}`, tidController)
		if _, err := io.WriteString(e.cfg.Chrome, header); err != nil {
			e.err = err
			return
		}
	}
	if _, err := fmt.Fprintf(e.cfg.Chrome, ",\n"+format, args...); err != nil {
		e.err = err
	}
}

// jsonl writes one event as a single JSON object line, echoing the parsed
// fields in stream order.
func (e *Exporter) jsonl(ts int64, kind string, fields [][2]string) {
	if e.cfg.JSONL == nil || e.err != nil {
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, `{"t_us":%d,"event":%q`, ts, kind)
	for _, f := range fields {
		fmt.Fprintf(&b, `,%q:%s`, f[0], jsonValue(f[1]))
	}
	b.WriteString("}\n")
	if _, err := io.WriteString(e.cfg.JSONL, b.String()); err != nil {
		e.err = err
	}
}

// jsonValue renders a k=v value as JSON: booleans and numbers pass through
// verbatim (preserving the stream's exact float formatting — byte-stability
// depends on never reformatting), anything else is quoted.
func jsonValue(v string) string {
	if v == "true" || v == "false" {
		return v
	}
	if _, err := strconv.ParseFloat(v, 64); err == nil {
		return v
	}
	return strconv.Quote(v)
}

// parseLine splits "<seconds> <kind> [k=v ...]" into a µs timestamp, the
// event kind, and the field pairs. Timestamps are converted from the
// %.6f-second format by digit manipulation, not float arithmetic, so the
// conversion is exact and platform-independent. Bracketed values
// ("opts=[0 1]") may contain spaces.
func parseLine(s string) (int64, string, [][2]string, error) {
	tokens := splitFields(s)
	if len(tokens) < 2 {
		return 0, "", nil, fmt.Errorf("malformed event line %q", s)
	}
	ts, err := microseconds(tokens[0])
	if err != nil {
		return 0, "", nil, fmt.Errorf("bad timestamp in %q: %v", s, err)
	}
	kind := tokens[1]
	var fields [][2]string
	for _, tok := range tokens[2:] {
		k, v, ok := strings.Cut(tok, "=")
		if !ok || k == "" {
			return 0, "", nil, fmt.Errorf("malformed field %q in %q", tok, s)
		}
		fields = append(fields, [2]string{k, v})
	}
	return ts, kind, fields, nil
}

// splitFields splits on spaces, joining bracketed groups ("opts=[0 1]").
func splitFields(s string) []string {
	raw := strings.Fields(s)
	var out []string
	for i := 0; i < len(raw); i++ {
		tok := raw[i]
		if strings.Contains(tok, "[") && !strings.Contains(tok, "]") {
			for i+1 < len(raw) {
				i++
				tok += " " + raw[i]
				if strings.Contains(raw[i], "]") {
					break
				}
			}
		}
		out = append(out, tok)
	}
	return out
}

// microseconds converts a "%.6f"-formatted seconds string to integer µs.
func microseconds(s string) (int64, error) {
	whole, frac, ok := strings.Cut(s, ".")
	if !ok || len(frac) != 6 {
		return 0, fmt.Errorf("timestamp %q is not %%.6f-formatted", s)
	}
	w, err := strconv.ParseInt(whole, 10, 64)
	if err != nil {
		return 0, err
	}
	f, err := strconv.ParseInt(frac, 10, 64)
	if err != nil || f < 0 {
		return 0, fmt.Errorf("timestamp %q has a bad fraction", s)
	}
	if w < 0 {
		return 0, fmt.Errorf("timestamp %q is negative", s)
	}
	return w*1_000_000 + f, nil
}
