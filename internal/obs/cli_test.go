package obs

import (
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCLIValidate(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name    string
		cli     CLI
		wantErr string
	}{
		{"empty", CLI{}, ""},
		{"all-valid", CLI{
			Trace:   filepath.Join(dir, "t.json"),
			Metrics: filepath.Join(dir, "m.txt"),
			Pprof:   "localhost:0",
		}, ""},
		{"same-file", CLI{
			Trace:   filepath.Join(dir, "out.json"),
			Metrics: filepath.Join(dir, "out.json"),
		}, "same file"},
		{"trace-bad-dir", CLI{
			Trace: filepath.Join(dir, "missing", "t.json"),
		}, "does not exist"},
		{"metrics-bad-dir", CLI{
			Metrics: filepath.Join(dir, "missing", "m.txt"),
		}, "does not exist"},
		{"pprof-no-port", CLI{Pprof: "localhost"}, "host:port"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cli.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestStartPprofDisabled(t *testing.T) {
	addr, stop, err := CLI{}.StartPprof()
	if err != nil {
		t.Fatal(err)
	}
	if addr != "" {
		t.Errorf("disabled pprof reported address %q", addr)
	}
	stop() // no-op
}

func TestStartPprofServes(t *testing.T) {
	addr, stop, err := CLI{Pprof: "127.0.0.1:0"}.StartPprof()
	if err != nil {
		t.Skipf("cannot listen in this environment: %v", err)
	}
	defer stop()
	resp, err := http.Get("http://" + addr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatalf("pprof endpoint unreachable: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof endpoint status %d, want 200", resp.StatusCode)
	}
}

func TestStartPprofBadAddress(t *testing.T) {
	if _, _, err := (CLI{Pprof: "256.256.256.256:99999"}).StartPprof(); err == nil {
		t.Fatal("bad listen address accepted")
	}
}

func TestWriteMetricsFile(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total").Inc()
	path := filepath.Join(t.TempDir(), "m.txt")
	if err := WriteMetricsFile(path, reg); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(buf), "x_total 1") {
		t.Errorf("metrics file missing counter:\n%s", buf)
	}
	if err := WriteMetricsFile(filepath.Join(t.TempDir(), "no", "dir", "m.txt"), reg); err == nil {
		t.Error("unwritable path accepted")
	}
}
