package obs

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"

	// Register the profiling handlers on http.DefaultServeMux; they are
	// only reachable when -pprof starts a listener.
	_ "net/http/pprof"
)

// CLI is the observability flag set the binaries share: -trace, -metrics
// and -pprof. Each binary registers the flags itself (usage strings differ)
// and funnels the values through Validate before opening any sinks.
type CLI struct {
	Trace   string // Chrome trace_event JSON output path
	Metrics string // metrics text-dump output path
	Pprof   string // net/http/pprof listen address (host:port)
}

// Validate rejects conflicting or unusable flag values before any work
// runs: the trace and metrics paths must differ and their parent
// directories must exist, and the pprof address must be a host:port.
func (c CLI) Validate() error {
	if c.Trace != "" && c.Trace == c.Metrics {
		return fmt.Errorf("-trace and -metrics point at the same file %q", c.Trace)
	}
	for _, p := range []struct{ flag, path string }{
		{"-trace", c.Trace},
		{"-metrics", c.Metrics},
	} {
		if p.path == "" {
			continue
		}
		dir := filepath.Dir(p.path)
		info, err := os.Stat(dir)
		if err != nil {
			return fmt.Errorf("%s: output directory %q does not exist", p.flag, dir)
		}
		if !info.IsDir() {
			return fmt.Errorf("%s: %q is not a directory", p.flag, dir)
		}
	}
	if c.Pprof != "" {
		if _, _, err := net.SplitHostPort(c.Pprof); err != nil {
			return fmt.Errorf("-pprof: %q is not a host:port address: %v", c.Pprof, err)
		}
	}
	return nil
}

// StartPprof starts the profiling server when -pprof was given, returning
// the bound address (useful with port 0) and a shutdown function; both are
// no-ops when the flag is empty. The listener is bound synchronously so a
// bad address fails the run up front.
func (c CLI) StartPprof() (addr string, stop func(), err error) {
	if c.Pprof == "" {
		return "", func() {}, nil
	}
	ln, err := net.Listen("tcp", c.Pprof)
	if err != nil {
		return "", nil, fmt.Errorf("-pprof: %v", err)
	}
	srv := &http.Server{Handler: http.DefaultServeMux}
	go srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return ln.Addr().String(), func() { srv.Close() }, nil
}

// WriteMetricsFile dumps reg to path; shared by the binaries' -metrics
// handling.
func WriteMetricsFile(path string, reg *Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteText(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
