package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestSpanTraceLanes(t *testing.T) {
	var sb strings.Builder
	epoch := time.Unix(1000, 0)
	tr := NewSpanTrace(&sb, epoch)

	// Two overlapping spans need two lanes; a third starting after both end
	// reuses lane 1.
	tr.Record("run-a", epoch, 100*time.Millisecond, [2]string{"key", "a"})
	tr.Record("run-b", epoch.Add(50*time.Millisecond), 100*time.Millisecond)
	tr.Record("run-c", epoch.Add(300*time.Millisecond), 50*time.Millisecond)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if got := tr.Spans(); got != 3 {
		t.Errorf("Spans() = %d, want 3", got)
	}

	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   int64          `json:"ts"`
			Dur  int64          `json:"dur"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("span trace is not valid JSON: %v\n%s", err, sb.String())
	}
	lanes := map[string]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			lanes[ev.Name] = ev.Tid
			if ev.Dur <= 0 {
				t.Errorf("%s: non-positive dur %d", ev.Name, ev.Dur)
			}
		}
	}
	if lanes["run-a"] == lanes["run-b"] {
		t.Errorf("overlapping spans share lane %d", lanes["run-a"])
	}
	if lanes["run-c"] != lanes["run-a"] {
		t.Errorf("run-c on lane %d, want to reuse lane %d", lanes["run-c"], lanes["run-a"])
	}
	for _, ev := range doc.TraceEvents {
		if ev.Name == "run-a" {
			if ev.Args["key"] != "a" {
				t.Errorf("run-a args = %v", ev.Args)
			}
		}
	}
}

func TestSpanTraceZeroDuration(t *testing.T) {
	var sb strings.Builder
	epoch := time.Unix(1000, 0)
	tr := NewSpanTrace(&sb, epoch)
	tr.Record("cache-hit", epoch, 0)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"dur":1`) {
		t.Errorf("zero-duration span not widened to 1 µs:\n%s", sb.String())
	}
}

func TestSpanTraceEmpty(t *testing.T) {
	var sb strings.Builder
	tr := NewSpanTrace(&sb, time.Unix(1000, 0))
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Errorf("empty trace wrote output: %q", sb.String())
	}
}
