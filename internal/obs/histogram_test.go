package obs

import (
	"math"
	"sort"
	"testing"
)

func TestLayoutConstructors(t *testing.T) {
	if got := LinearBuckets(0, 1, 4).Bounds(); len(got) != 4 || got[0] != 0 || got[3] != 3 {
		t.Errorf("LinearBuckets(0,1,4) = %v", got)
	}
	if got := ExpBuckets(1, 2, 3).Bounds(); len(got) != 3 || got[0] != 1 || got[2] != 4 {
		t.Errorf("ExpBuckets(1,2,3) = %v", got)
	}
	if !Buckets(1, 2, 3).Equal(Buckets(1, 2, 3)) {
		t.Error("identical layouts must be Equal")
	}
	if Buckets(1, 2).Equal(Buckets(1, 3)) {
		t.Error("different layouts must not be Equal")
	}
	for name, fn := range map[string]func(){
		"non-increasing": func() { Buckets(1, 1) },
		"nan":            func() { Buckets(math.NaN()) },
		"inf":            func() { Buckets(math.Inf(1)) },
		"zero-width":     func() { LinearBuckets(0, 0, 3) },
		"bad-factor":     func() { ExpBuckets(1, 1, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(Buckets(1, 2, 4))
	for _, v := range []float64{0.5, 1.5, 3, 10} {
		h.Observe(v)
	}
	if got := h.Count(); got != 4 {
		t.Errorf("count = %d, want 4", got)
	}
	if got := h.Sum(); got != 15 {
		t.Errorf("sum = %g, want 15", got)
	}
	if h.Min() != 0.5 || h.Max() != 10 {
		t.Errorf("min/max = %g/%g, want 0.5/10", h.Min(), h.Max())
	}
	want := []uint64{1, 1, 1, 1} // ≤1, ≤2, ≤4, +Inf
	got := h.BucketCounts()
	if len(got) != len(want) {
		t.Fatalf("bucket counts %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket counts %v, want %v", got, want)
		}
	}
	// A value exactly on a bound lands in that bound's bucket (le semantics).
	h2 := NewHistogram(Buckets(1, 2))
	h2.Observe(1)
	if got := h2.BucketCounts(); got[0] != 1 {
		t.Errorf("boundary value: buckets %v, want it in bucket 0", got)
	}
}

func TestHistogramMergeLayoutMismatch(t *testing.T) {
	a := NewHistogram(Buckets(1, 2))
	b := NewHistogram(Buckets(1, 3))
	if err := a.Merge(b); err == nil {
		t.Error("merging different layouts must error")
	}
}

func TestHistogramMergeSelf(t *testing.T) {
	h := NewHistogram(Buckets(1, 2))
	h.Observe(0.5)
	h.Observe(1.5)
	if err := h.Merge(h); err != nil {
		t.Fatal(err)
	}
	if got := h.Count(); got != 4 {
		t.Errorf("self-merge count = %d, want 4 (snapshot semantics)", got)
	}
}

func TestQuantileEmptyAndExtremes(t *testing.T) {
	h := NewHistogram(Buckets(1, 2))
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("empty histogram quantile must be NaN")
	}
	h.Observe(0.25)
	h.Observe(1.75)
	if got := h.Quantile(0); got != 0.25 {
		t.Errorf("q=0 → %g, want min 0.25", got)
	}
	if got := h.Quantile(1); got != 1.75 {
		t.Errorf("q=1 → %g, want max 1.75", got)
	}
	// Overflow-bucket quantiles report the observed max.
	h.Observe(100)
	if got := h.Quantile(0.99); got != 100 {
		t.Errorf("overflow quantile → %g, want 100", got)
	}
}

// histProperties asserts the invariants FuzzHistogram relies on, for one
// set of observed values split at mid.
func histProperties(t *testing.T, layout Layout, values []float64, mid int) {
	t.Helper()
	a, b := NewHistogram(layout), NewHistogram(layout)
	whole := NewHistogram(layout)
	var sum float64
	for i, v := range values {
		if i < mid {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
		whole.Observe(v)
		sum += v
	}

	// Merge commutativity: a+b and b+a agree with observing everything.
	ab := a.Clone()
	if err := ab.Merge(b); err != nil {
		t.Fatal(err)
	}
	ba := b.Clone()
	if err := ba.Merge(a); err != nil {
		t.Fatal(err)
	}
	for _, m := range []*Histogram{ab, ba} {
		if m.Count() != whole.Count() {
			t.Fatalf("merge count %d, want %d", m.Count(), whole.Count())
		}
		if math.Abs(m.Sum()-whole.Sum()) > 1e-9*(1+math.Abs(whole.Sum())) {
			t.Fatalf("merge sum %g, want %g", m.Sum(), whole.Sum())
		}
		if len(values) > 0 && (m.Min() != whole.Min() || m.Max() != whole.Max()) {
			t.Fatalf("merge min/max %g/%g, want %g/%g", m.Min(), m.Max(), whole.Min(), whole.Max())
		}
		mc, wc := m.BucketCounts(), whole.BucketCounts()
		for i := range wc {
			if mc[i] != wc[i] {
				t.Fatalf("merge buckets %v, want %v", mc, wc)
			}
		}
	}

	// Count and sum identities.
	counts := whole.BucketCounts()
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total != uint64(len(values)) || whole.Count() != uint64(len(values)) {
		t.Fatalf("bucket total %d, count %d, want %d", total, whole.Count(), len(values))
	}
	if math.Abs(whole.Sum()-sum) > 1e-9*(1+math.Abs(sum)) {
		t.Fatalf("sum %g, want %g", whole.Sum(), sum)
	}

	// Cumulative bucket counts are monotonic by construction; verify the
	// reported counts are all non-negative deltas of a monotone sequence.
	cum := uint64(0)
	for _, c := range counts {
		next := cum + c
		if next < cum {
			t.Fatal("cumulative bucket count overflowed")
		}
		cum = next
	}

	if len(values) == 0 {
		return
	}
	// Quantile accuracy: within one bucket width of the exact empirical
	// quantile, for values inside the finite bucket range. When q·n lands
	// exactly on a rank boundary the empirical quantile is ambiguous
	// between two order statistics, so the estimate may sit near either:
	// the allowed window spans both.
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	bounds := layout.Bounds()
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		target := q * float64(len(sorted))
		loIdx := int(math.Ceil(target)) - 1
		if loIdx < 0 {
			loIdx = 0
		}
		hiIdx := int(math.Floor(target))
		if hiIdx > len(sorted)-1 {
			hiIdx = len(sorted) - 1
		}
		if sorted[loIdx] > bounds[len(bounds)-1] {
			continue // overflow bucket has no width bound
		}
		got := whole.Quantile(q)
		width := maxBucketWidth(bounds, whole.Min())
		if got < sorted[loIdx]-width-1e-12 || got > sorted[hiIdx]+width+1e-12 {
			t.Fatalf("q=%g: estimate %g outside [%g, %g] ± bucket width %g; values %v",
				q, got, sorted[loIdx], sorted[hiIdx], width, values)
		}
	}
}

// maxBucketWidth is the widest interpolation interval the quantile
// estimator can land in: consecutive bound gaps plus the min→first-bound
// interval.
func maxBucketWidth(bounds []float64, min float64) float64 {
	w := bounds[0] - min
	if w < 0 {
		w = 0
	}
	for i := 1; i < len(bounds); i++ {
		if g := bounds[i] - bounds[i-1]; g > w {
			w = g
		}
	}
	return w
}

func TestHistogramProperties(t *testing.T) {
	layout := LinearBuckets(0, 1, 16)
	histProperties(t, layout, nil, 0)
	histProperties(t, layout, []float64{3.5}, 0)
	histProperties(t, layout, []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}, 8)
	histProperties(t, layout, []float64{15.9, 0.1, 7.7, 7.7, 7.7, 3.2}, 3)
}

// FuzzHistogram drives histProperties with arbitrary byte-derived values:
// merge commutativity, count/sum identities, bucket monotonicity, and
// quantile accuracy within one bucket width.
func FuzzHistogram(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{0, 1, 2, 3, 255, 254, 128, 128}, uint8(4))
	f.Add([]byte{10, 10, 10, 10, 10}, uint8(2))
	f.Add([]byte{0xff, 0x00, 0x80, 0x40, 0xc0, 0x20, 0xa0, 0x60, 0xe0}, uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, split uint8) {
		if len(data) > 256 {
			data = data[:256]
		}
		// Scale bytes into [0, 16): inside LinearBuckets(0,1,16) except the
		// top sliver, so most values exercise interpolation and a few the
		// overflow bucket.
		values := make([]float64, len(data))
		for i, b := range data {
			values[i] = float64(b) / 16.0
		}
		mid := 0
		if len(values) > 0 {
			mid = int(split) % (len(values) + 1)
		}
		histProperties(t, LinearBuckets(0, 1, 16), values, mid)
	})
}
