package obs

import (
	"io"
	"testing"
)

// TestExporterAllocs pins the enabled-exporter hot path's allocation cost:
// rendering one event line to both sinks must stay within a few allocations
// (the line-string conversion plus slack for occasional scratch growth).
// Before the scratch-buffer rewrite this path cost ~17 allocs/line (27k–40k
// per benchmark run); the reused token/field/byte scratch brings it to ~1.
func TestExporterAllocs(t *testing.T) {
	e := NewExporter(ExporterConfig{Chrome: io.Discard, JSONL: io.Discard})
	// Prime the header and scratch capacity.
	warm := []byte("0.001000 capture t=0.001\n")
	if _, err := e.Write(warm); err != nil {
		t.Fatalf("warm write: %v", err)
	}

	line := []byte("0.002000 capture t=0.002 diff=true\n")
	avg := testing.AllocsPerRun(200, func() {
		if _, err := e.Write(line); err != nil {
			t.Fatalf("write: %v", err)
		}
	})
	if avg > 3 {
		t.Fatalf("exporter hot path costs %.1f allocs/line, want ≤ 3", avg)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestExporterAllocsSched covers the span path (sched/jobdone with args),
// which exercises appendArgs and the job-lifecycle state.
func TestExporterAllocsSched(t *testing.T) {
	e := NewExporter(ExporterConfig{Chrome: io.Discard, JSONL: io.Discard})
	if _, err := e.Write([]byte("0.001000 arrive seq=0 occ=1\n")); err != nil {
		t.Fatalf("warm write: %v", err)
	}
	// Equal timestamps keep the stream valid across AllocsPerRun's repeats
	// (the audit requires non-decreasing, not strictly increasing).
	pair := []byte("0.001000 sched job=classify seq=0 opt=0\n" +
		"0.001000 jobdone job=classify seq=0\n")
	avg := testing.AllocsPerRun(200, func() {
		if _, err := e.Write(pair); err != nil {
			t.Fatalf("write: %v", err)
		}
	})
	// Two lines per write; sched retains job/seq strings but they alias the
	// line string, so the pair should cost ~2 line conversions.
	if avg > 6 {
		t.Fatalf("sched+jobdone pair costs %.1f allocs, want ≤ 6", avg)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}
