package obs

import (
	"quetzal/internal/engine"
)

// MachineObserver is the engine.Observer that feeds a run's per-step state
// into a Registry. Metric handles are resolved once at construction; OnStep
// then pays only atomic updates and short histogram critical sections, and
// allocates nothing (measured by BenchmarkObsMetrics).
type MachineObserver struct {
	steps     *Counter
	stepDT    *Histogram
	storeMJ   *Gauge
	occupancy *Histogram
	reg       *Registry
}

// NewMachineObserver builds an observer recording into reg.
func NewMachineObserver(reg *Registry) *MachineObserver {
	return &MachineObserver{
		steps: reg.Counter("sim_steps_total"),
		// Step lengths span the fixed 1 ms grid up to multi-second idle
		// segments under the event stepper.
		stepDT:    reg.Histogram("sim_step_seconds", ExpBuckets(0.0005, 2, 16)),
		storeMJ:   reg.Gauge("sim_store_millijoules"),
		occupancy: reg.Histogram("sim_buffer_occupancy", LinearBuckets(0, 1, 16)),
		reg:       reg,
	}
}

// OnStep records the step length, store level and buffer occupancy.
func (o *MachineObserver) OnStep(m *engine.Machine, dt float64) {
	o.steps.Inc()
	o.stepDT.Observe(dt)
	o.storeMJ.Set(m.Store().Energy() * 1e3)
	o.occupancy.Observe(float64(m.Buffer().Len()))
}

// Horizon reports no boundary needs; metrics sample whatever steps the
// stepper takes.
func (o *MachineObserver) Horizon(float64) float64 { return 0 }

// OnFinish copies the run's aggregate results into the registry.
func (o *MachineObserver) OnFinish(m *engine.Machine) error {
	res := m.Results()
	for _, c := range []struct {
		name string
		v    int
	}{
		{"sim_captures_total", res.Captures},
		{"sim_capture_misses_total", res.CaptureMisses},
		{"sim_arrivals_total", res.Arrivals},
		{"sim_ibo_drops_total", res.IBODropsInteresting + res.IBODropsOther},
		{"sim_jobs_completed_total", res.JobsCompleted},
		{"sim_job_aborts_total", res.JobAborts},
		{"sim_degradations_total", res.Degradations},
		{"sim_brownouts_total", res.Brownouts},
		{"sim_sched_invocations_total", res.SchedInvocations},
		{"sim_transient_faults_total", res.TransientFaults},
		{"sim_meas_samples_total", res.MeasSamples},
	} {
		o.reg.Counter(c.name).Add(int64(c.v))
	}
	o.reg.Gauge("sim_harvested_joules").Set(res.HarvestedJoules)
	o.reg.Gauge("sim_consumed_joules").Set(res.ConsumedJoules)
	o.reg.Gauge("sim_overhead_joules").Set(res.OverheadJoules)
	o.reg.Gauge("sim_meas_joules").Set(res.MeasJoules)
	o.reg.Gauge("sim_seconds").Set(res.SimSeconds)
	return nil
}
