package obs

import (
	"math"
	"math/rand"
	"testing"
)

// Merge is the correctness backbone of fleet aggregation: shard histograms
// merge into the fleet histogram, and the quantiles served from the merged
// result must match what a single whole-population histogram would report.
// These property tests pin that contract over randomized layouts and data.

// randLayout draws a random strictly-increasing bucket layout.
func randLayout(rng *rand.Rand) Layout {
	n := 1 + rng.Intn(40)
	bounds := make([]float64, n)
	b := rng.Float64() * 0.1
	for i := range bounds {
		b += 0.001 + rng.Float64()
		bounds[i] = b
	}
	return Buckets(bounds...)
}

// randValues draws observations spanning in-range, boundary and overflow.
func randValues(rng *rand.Rand, layout Layout, n int) []float64 {
	bounds := layout.Bounds()
	hi := bounds[len(bounds)-1] * 1.5
	vals := make([]float64, n)
	for i := range vals {
		switch rng.Intn(10) {
		case 0: // exact boundary
			vals[i] = bounds[rng.Intn(len(bounds))]
		case 1: // overflow bucket
			vals[i] = hi + rng.Float64()*hi
		default:
			vals[i] = rng.Float64() * hi
		}
	}
	return vals
}

// sameCounts asserts the count state (which quantiles read) is identical.
func sameCounts(t *testing.T, label string, a, b *Histogram) {
	t.Helper()
	if a.Count() != b.Count() {
		t.Fatalf("%s: count %d vs %d", label, a.Count(), b.Count())
	}
	if a.Min() != b.Min() || a.Max() != b.Max() {
		t.Fatalf("%s: min/max (%g,%g) vs (%g,%g)", label, a.Min(), a.Max(), b.Min(), b.Max())
	}
	ca, cb := a.BucketCounts(), b.BucketCounts()
	for i := range ca {
		if ca[i] != cb[i] {
			t.Fatalf("%s: bucket %d count %d vs %d", label, i, ca[i], cb[i])
		}
	}
}

func TestHistogramMergeOfSplitsEqualsWhole(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		layout := randLayout(rng)
		vals := randValues(rng, layout, 1+rng.Intn(500))

		whole := NewHistogram(layout)
		for _, v := range vals {
			whole.Observe(v)
		}

		// Split into k contiguous parts, histogram each, merge in order.
		k := 1 + rng.Intn(8)
		merged := NewHistogram(layout)
		start := 0
		for part := 0; part < k; part++ {
			end := start + (len(vals)-start)/(k-part)
			h := NewHistogram(layout)
			for _, v := range vals[start:end] {
				h.Observe(v)
			}
			if err := merged.Merge(h); err != nil {
				t.Fatalf("merge: %v", err)
			}
			start = end
		}

		sameCounts(t, "merge-of-splits", whole, merged)
		// Sum is float addition under different groupings: equal within
		// rounding, not bitwise.
		if diff := math.Abs(whole.Sum() - merged.Sum()); diff > 1e-9*math.Max(1, math.Abs(whole.Sum())) {
			t.Fatalf("sum diverged: whole %g merged %g", whole.Sum(), merged.Sum())
		}
		// Quantiles read only counts/min/max/bounds, so they must agree
		// exactly — this is what makes fleet quantiles shard-invariant.
		for _, q := range []float64{0, 0.01, 0.25, 0.5, 0.9, 0.99, 1} {
			if wq, mq := whole.Quantile(q), merged.Quantile(q); wq != mq {
				t.Fatalf("quantile(%g): whole %g merged %g", q, wq, mq)
			}
		}
	}
}

func TestHistogramMergeCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		layout := randLayout(rng)
		mk := func() *Histogram {
			h := NewHistogram(layout)
			for _, v := range randValues(rng, layout, rng.Intn(200)) {
				h.Observe(v)
			}
			return h
		}
		h1, h2 := mk(), mk()

		ab := h1.Clone()
		if err := ab.Merge(h2); err != nil {
			t.Fatalf("merge: %v", err)
		}
		ba := h2.Clone()
		if err := ba.Merge(h1); err != nil {
			t.Fatalf("merge: %v", err)
		}
		sameCounts(t, "commutativity", ab, ba)
	}
}

func TestHistogramQuantileMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		layout := randLayout(rng)
		h := NewHistogram(layout)
		for _, v := range randValues(rng, layout, 1+rng.Intn(300)) {
			h.Observe(v)
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.01 {
			cur := h.Quantile(q)
			if math.IsNaN(cur) {
				t.Fatalf("quantile(%g) = NaN on non-empty histogram", q)
			}
			if cur < prev {
				t.Fatalf("quantile not monotone: q=%g → %g after %g", q, cur, prev)
			}
			prev = cur
		}
		if got := h.Quantile(0); got != h.Min() {
			t.Fatalf("quantile(0) = %g, want min %g", got, h.Min())
		}
		if got := h.Quantile(1); got != h.Max() {
			t.Fatalf("quantile(1) = %g, want max %g", got, h.Max())
		}
	}
}
