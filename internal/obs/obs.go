// Package obs is the observability layer: a lightweight metrics registry
// (counters, gauges, fixed-layout histograms — no external dependencies), a
// streaming exporter that renders the engine's discrete-event stream as
// Chrome trace_event JSON and as a JSONL event log, and the CLI plumbing
// the binaries share (-trace/-metrics/-pprof).
//
// The layer is strictly opt-in and provably cheap when off: nothing in
// internal/engine references this package, so a run with no obs sinks pays
// the engine's bare observer pipeline (zero allocations in steady state,
// pinned by engine.TestObsDisabledZeroAlloc and measured in BENCH_obs.json).
// When enabled, the trace exporter consumes the same event-log stream the
// golden-trace regression fingerprints, so exports are deterministic and
// themselves pinned by sha256 fixtures (internal/sim/golden_trace_test.go).
package obs

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. Safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative; counters only go up).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down. Safe for concurrent use.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(floatBits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return floatFromBits(g.bits.Load()) }

// Registry is a process-local metrics registry. Metric handles are created
// on first use and live for the registry's lifetime, so hot paths resolve
// their handles once up front and then pay only an atomic op (or a short
// histogram critical section) per update.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given layout
// on first use. Asking for an existing histogram with a different layout is
// a programming error and panics.
func (r *Registry) Histogram(name string, layout Layout) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(layout)
		r.hists[name] = h
	} else if !h.layout.Equal(layout) {
		panic(fmt.Sprintf("obs: histogram %q re-registered with a different layout", name))
	}
	return h
}

// AddHistogram registers an externally built histogram (e.g. a runner
// ledger's latency histogram) under name, replacing any previous entry.
func (r *Registry) AddHistogram(name string, h *Histogram) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hists[name] = h
}

// WriteText renders every metric in a Prometheus-style text format, sorted
// by name so the dump is deterministic.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var names []string
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, r.counters[n].Value()); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range r.gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", n, n, r.gauges[n].Value()); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if err := r.hists[n].writeText(w, n); err != nil {
			return err
		}
	}
	return nil
}

// ServeHTTP renders the registry in the text format, so a registry mounts
// directly as a /metrics endpoint. The dump is buffered first: a mid-render
// failure becomes a clean 500 instead of a torn 200 body.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		http.Error(w, "metrics: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(buf.Bytes()) //nolint:errcheck // client disconnects are not actionable
}
