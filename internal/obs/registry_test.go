package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("jobs_total") != c {
		t.Error("same name must return the same counter handle")
	}

	g := r.Gauge("store_j")
	g.Set(0.125)
	if got := g.Value(); got != 0.125 {
		t.Errorf("gauge = %g, want 0.125", got)
	}
	g.Set(-3)
	if got := g.Value(); got != -3 {
		t.Errorf("gauge = %g, want -3", got)
	}
	if r.Gauge("store_j") != g {
		t.Error("same name must return the same gauge handle")
	}
}

func TestRegistryHistogramLayoutConflict(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", LinearBuckets(0, 1, 4))
	if r.Histogram("lat", LinearBuckets(0, 1, 4)) != h {
		t.Error("same name+layout must return the same histogram handle")
	}
	defer func() {
		if recover() == nil {
			t.Error("re-registering with a different layout must panic")
		}
	}()
	r.Histogram("lat", LinearBuckets(0, 2, 4))
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("n").Inc()
				r.Gauge("g").Set(float64(j))
				r.Histogram("h", LinearBuckets(0, 1, 4)).Observe(float64(j % 5))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("n").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h", LinearBuckets(0, 1, 4)).Count(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}

// TestWriteTextDeterministic pins the dump format and its ordering: the
// text output is the -metrics file surface, so it must be byte-stable.
func TestWriteTextDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Counter("a_total").Add(1)
	r.Gauge("z_level").Set(1.5)
	h := r.Histogram("m_seconds", Buckets(0.1, 1))
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(3)

	want := `# TYPE a_total counter
a_total 1
# TYPE b_total counter
b_total 2
# TYPE z_level gauge
z_level 1.5
# TYPE m_seconds histogram
m_seconds_bucket{le="0.1"} 1
m_seconds_bucket{le="1"} 2
m_seconds_bucket{le="+Inf"} 3
m_seconds_sum 3.55
m_seconds_count 3
`
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != want {
		t.Errorf("WriteText:\n%s\nwant:\n%s", sb.String(), want)
	}
	var sb2 strings.Builder
	if err := r.WriteText(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb.String() != sb2.String() {
		t.Error("WriteText is not deterministic across calls")
	}
}

func TestAddHistogram(t *testing.T) {
	r := NewRegistry()
	h := NewHistogram(LatencyBuckets())
	h.Observe(0.01)
	r.AddHistogram("run_latency_seconds", h)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "run_latency_seconds_count 1") {
		t.Errorf("external histogram missing from dump:\n%s", sb.String())
	}
}

func TestRegistryServeHTTP(t *testing.T) {
	r := NewRegistry()
	r.Counter("quetzald_runs_executed_total").Add(3)
	r.Gauge("quetzald_queue_depth").Set(2)

	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d, want 200", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE quetzald_runs_executed_total counter",
		"quetzald_runs_executed_total 3",
		"quetzald_queue_depth 2",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("body missing %q:\n%s", want, body)
		}
	}

	// The handler must agree byte-for-byte with WriteText: one format.
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if body != sb.String() {
		t.Error("ServeHTTP body differs from WriteText output")
	}
}
