package core

import (
	"strings"
	"testing"

	"quetzal/internal/buffer"
	"quetzal/internal/device"
	"quetzal/internal/model"
	"quetzal/internal/sched"
)

func newRuntime(t *testing.T, mutate func(*Config)) *Runtime {
	t.Helper()
	cfg := Config{
		App:           device.Apollo4().PersonDetectionApp(),
		CapturePeriod: 1.0,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return r
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New accepted nil app")
	}
	if _, err := New(Config{App: device.Apollo4().PersonDetectionApp()}); err == nil {
		t.Error("New accepted zero capture period")
	}
	bad := device.Apollo4().PersonDetectionApp()
	bad.EntryJobID = 99
	if _, err := New(Config{App: bad, CapturePeriod: 1}); err == nil {
		t.Error("New accepted invalid app")
	}
}

func TestName(t *testing.T) {
	if got := newRuntime(t, nil).Name(); got != "quetzal" {
		t.Errorf("Name = %q, want quetzal", got)
	}
	r := newRuntime(t, func(c *Config) { c.Policy = sched.FCFS{} })
	if got := r.Name(); !strings.Contains(got, "fcfs") {
		t.Errorf("Name = %q, want policy mentioned", got)
	}
	r = newRuntime(t, func(c *Config) { c.DisableIBOEngine = true })
	if got := r.Name(); !strings.Contains(got, "no-ibo") {
		t.Errorf("Name = %q, want no-ibo", got)
	}
	if got := (AveragedSe2e).String(); got != "avg-se2e" {
		t.Errorf("EstimatorKind.String = %q", got)
	}
	if got := EstimatorKind(42).String(); !strings.Contains(got, "42") {
		t.Errorf("unknown kind String = %q", got)
	}
}

func TestNextJobEmptyBuffer(t *testing.T) {
	r := newRuntime(t, nil)
	_, ok := r.NextJob(Env{InputPower: 0.01, BufferCap: 10}, buffer.New(10))
	if ok {
		t.Error("NextJob on empty buffer reported ok")
	}
}

func TestNextJobSelectsAndAssignsOptions(t *testing.T) {
	r := newRuntime(t, nil)
	buf := buffer.New(10)
	buf.Push(buffer.Input{Seq: 0, CapturedAt: 0, JobID: device.DetectJobID}, false)
	dec, ok := r.NextJob(Env{Now: 1, InputPower: 0.02, BufferLen: 1, BufferCap: 10}, buf)
	if !ok {
		t.Fatal("NextJob returned !ok with a buffered input")
	}
	if dec.JobID != device.DetectJobID {
		t.Errorf("JobID = %d, want detect", dec.JobID)
	}
	if len(dec.Options) != 1 {
		t.Fatalf("Options len = %d, want 1", len(dec.Options))
	}
	// Plenty of free space at high power: no IBO, option 0.
	if dec.IBOPredicted || dec.Degraded || dec.Options[0] != 0 {
		t.Errorf("decision = %+v, want undegraded", dec)
	}
	if dec.PredictedS <= 0 {
		t.Errorf("PredictedS = %g, want positive", dec.PredictedS)
	}
}

func TestNextJobDegradesUnderPressure(t *testing.T) {
	r := newRuntime(t, nil)
	buf := buffer.New(10)
	for i := 0; i < 9; i++ {
		buf.Push(buffer.Input{Seq: uint64(i), CapturedAt: float64(i), JobID: device.DetectJobID}, false)
	}
	// Teach the arrival tracker that every capture is stored (λ = 1/s).
	for i := 0; i < 64; i++ {
		r.ObserveCapture(true)
	}
	// Very low power: MobileNetV2 S_e2e = 24 mJ / 1 mW ≈ 24 s ⇒ λ·E[S] ≈ 24
	// against 1 free slot ⇒ IBO; LeNet at 1.8 mJ ≈ 1.8 s still ≥ 1 ⇒ even
	// the degraded option cannot avert, so Quetzal uses the cheapest.
	dec, ok := r.NextJob(Env{Now: 100, InputPower: 0.001, BufferLen: 9, BufferCap: 10}, buf)
	if !ok {
		t.Fatal("NextJob returned !ok")
	}
	if !dec.IBOPredicted {
		t.Error("IBO not predicted at λ=1, E[S]≈24 s, 1 free slot")
	}
	if !dec.Degraded || dec.Options[0] != 1 {
		t.Errorf("decision = %+v, want degraded to option 1", dec)
	}
}

func TestNextJobAvertsWithHeadroom(t *testing.T) {
	r := newRuntime(t, nil)
	buf := buffer.New(10)
	buf.Push(buffer.Input{Seq: 0, JobID: device.DetectJobID}, false)
	for i := 0; i < 64; i++ {
		r.ObserveCapture(i%4 == 0) // λ = 0.25/s
	}
	// At 1 mW: MNv2 ≈ 24 s ⇒ λ·E[S] = 6 ≥ 5 free ⇒ IBO predicted;
	// LeNet ≈ 1.8 s ⇒ 0.45 < 5 ⇒ averted at option 1.
	dec, _ := r.NextJob(Env{Now: 10, InputPower: 0.001, BufferLen: 5, BufferCap: 10}, buf)
	if !dec.IBOPredicted || !dec.IBOAverted {
		t.Errorf("decision = %+v, want predicted+averted", dec)
	}
	if dec.Options[0] != 1 {
		t.Errorf("option = %d, want 1", dec.Options[0])
	}
}

func TestDisableIBOEngine(t *testing.T) {
	r := newRuntime(t, func(c *Config) { c.DisableIBOEngine = true })
	buf := buffer.New(10)
	buf.Push(buffer.Input{Seq: 0, JobID: device.DetectJobID}, false)
	for i := 0; i < 64; i++ {
		r.ObserveCapture(true)
	}
	dec, _ := r.NextJob(Env{InputPower: 0.0005, BufferLen: 9, BufferCap: 10}, buf)
	if dec.IBOPredicted || dec.Degraded {
		t.Errorf("decision = %+v, want no IBO logic with engine disabled", dec)
	}
}

func TestEnergyAwareSJFOrdersByPower(t *testing.T) {
	// The paper's §1 example: with low input power, ML inference uses less
	// energy and is thus faster end-to-end than sending a radio packet;
	// with high input power, compute time dominates and the packet is
	// faster. Build that exact cost shape: ML 2 s / 24 mJ vs radio
	// 0.8 s / 80 mJ.
	ml := &model.Task{Name: "ml", Kind: model.Classify, Options: []model.Option{
		{Name: "mnv2", Texe: 2.0, Pexe: 0.012, FalseNegative: 0.06, FalsePositive: 0.05},
	}}
	radio := &model.Task{Name: "radio", Kind: model.Transmit, Options: []model.Option{
		{Name: "full", Texe: 0.8, Pexe: 0.100, HighQuality: true},
	}}
	app := &model.App{
		Name: "flip",
		Jobs: []*model.Job{
			{ID: 0, Name: "detect", Tasks: []*model.Task{ml}, SpawnJobID: 1},
			{ID: 1, Name: "report", Tasks: []*model.Task{radio}, SpawnJobID: model.NoSpawn},
		},
		EntryJobID: 0, CaptureTexe: 0.06, CapturePexe: 0.01,
	}
	r := newRuntime(t, func(c *Config) { c.App = app })
	buf := buffer.New(10)
	buf.Push(buffer.Input{Seq: 0, CapturedAt: 0, JobID: 0}, false)
	buf.Push(buffer.Input{Seq: 1, CapturedAt: 1, JobID: 1}, false)

	dec, _ := r.NextJob(Env{InputPower: 0.5, BufferLen: 2, BufferCap: 10}, buf)
	if dec.JobID != 1 {
		t.Errorf("high power: selected %d, want report (0.8 s < 2 s compute)", dec.JobID)
	}
	dec, _ = r.NextJob(Env{InputPower: 0.001, BufferLen: 2, BufferCap: 10}, buf)
	if dec.JobID != 0 {
		t.Errorf("low power: selected %d, want detect (24 mJ < 80 mJ)", dec.JobID)
	}
}

func TestLambdaTracking(t *testing.T) {
	r := newRuntime(t, nil)
	if got := r.Lambda(); got != 0.5 {
		t.Errorf("prior λ = %g, want 0.5", got)
	}
	for i := 0; i < 256; i++ {
		r.ObserveCapture(i%2 == 0)
	}
	if got := r.Lambda(); got != 0.5 {
		t.Errorf("λ = %g, want 0.5", got)
	}
	for i := 0; i < 256; i++ {
		r.ObserveCapture(true)
	}
	if got := r.Lambda(); got != 1.0 {
		t.Errorf("λ = %g, want 1.0", got)
	}
}

func TestProbabilityFeedback(t *testing.T) {
	r := newRuntime(t, func(c *Config) { c.App = device.Apollo4().FusedPipelineApp() })
	buf := buffer.New(10)
	buf.Push(buffer.Input{Seq: 0, JobID: device.DetectJobID}, false)

	// Before feedback, conditional tasks assume probability 1.
	dec, _ := r.NextJob(Env{InputPower: 0.5, BufferLen: 1, BufferCap: 10}, buf)
	before := dec.PredictedS

	// Report 64 completions where the conditional tasks never ran.
	for i := 0; i < 64; i++ {
		r.OnJobComplete(Feedback{
			JobID:    device.DetectJobID,
			Executed: []bool{true, false, false},
			Now:      float64(i),
		})
	}
	dec, _ = r.NextJob(Env{InputPower: 0.5, BufferLen: 1, BufferCap: 10}, buf)
	if dec.PredictedS >= before {
		t.Errorf("E[S] %g not reduced from %g after conditional tasks stopped running",
			dec.PredictedS, before)
	}
}

func TestPIDCorrectionFeedback(t *testing.T) {
	r := newRuntime(t, nil)
	if got := r.Correction(); got != 0 {
		t.Errorf("initial correction = %g, want 0", got)
	}
	// Jobs consistently run 10 s longer than predicted.
	for i := 1; i <= 50; i++ {
		r.OnJobComplete(Feedback{
			JobID: device.DetectJobID, Executed: []bool{true},
			PredictedS: 1, ObservedS: 11, Now: float64(i),
		})
	}
	if got := r.Correction(); got <= 0 {
		t.Errorf("correction = %g after persistent underprediction, want > 0", got)
	}

	off := newRuntime(t, func(c *Config) { c.DisablePID = true })
	for i := 1; i <= 50; i++ {
		off.OnJobComplete(Feedback{JobID: device.DetectJobID, Executed: []bool{true},
			PredictedS: 1, ObservedS: 11, Now: float64(i)})
	}
	if got := off.Correction(); got != 0 {
		t.Errorf("DisablePID correction = %g, want 0", got)
	}
}

func TestOnJobCompleteUnknownJobIsNoop(t *testing.T) {
	r := newRuntime(t, nil)
	r.OnJobComplete(Feedback{JobID: 99, Executed: []bool{true}}) // must not panic
}

func TestRatioOps(t *testing.T) {
	r := newRuntime(t, nil)
	ops, usesModule := r.RatioOps()
	// person-detection: 3 tasks + 2 options on the widest degradable task.
	if ops != 5 || !usesModule {
		t.Errorf("RatioOps = (%d, %v), want (5, true)", ops, usesModule)
	}
	ex := newRuntime(t, func(c *Config) { c.Kind = ExactDivision })
	if _, uses := ex.RatioOps(); uses {
		t.Error("ExactDivision runtime claims to use the module")
	}
}

func TestEstimatorKindsProduceDifferentEstimates(t *testing.T) {
	buf := buffer.New(10)
	buf.Push(buffer.Input{Seq: 0, JobID: device.DetectJobID}, false)
	env := Env{InputPower: 0.003, BufferLen: 1, BufferCap: 10}

	hw := newRuntime(t, nil)
	exact := newRuntime(t, func(c *Config) { c.Kind = ExactDivision })
	avg := newRuntime(t, func(c *Config) { c.Kind = AveragedSe2e })

	dh, _ := hw.NextJob(env, buf)
	de, _ := exact.NextJob(env, buf)
	da, _ := avg.NextJob(env, buf)

	// HW module approximates the exact division within the quantisation
	// error band (≈ ±14 %).
	if dh.PredictedS < de.PredictedS*0.8 || dh.PredictedS > de.PredictedS*1.25 {
		t.Errorf("hw E[S] %g vs exact %g: outside the quantisation band", dh.PredictedS, de.PredictedS)
	}
	// The averaged estimator has no observations, so it predicts pure
	// compute time (2 s) — blind to the 8 s of recharging the exact
	// estimator sees at 3 mW.
	if da.PredictedS >= de.PredictedS/2 {
		t.Errorf("avg E[S] %g not blind to power (exact %g)", da.PredictedS, de.PredictedS)
	}
}

func TestAveragedEstimatorLearnsFromObservations(t *testing.T) {
	// IBO engine disabled so PredictedS is the raw SJF estimate rather
	// than a post-degradation value.
	r := newRuntime(t, func(c *Config) { c.Kind = AveragedSe2e; c.DisableIBOEngine = true })
	buf := buffer.New(10)
	buf.Push(buffer.Input{Seq: 0, JobID: device.DetectJobID}, false)
	env := Env{InputPower: 0.003, BufferLen: 1, BufferCap: 10}

	before, _ := r.NextJob(env, buf)
	for i := 1; i <= 30; i++ {
		r.OnJobComplete(Feedback{JobID: device.DetectJobID, Executed: []bool{true},
			PredictedS: before.PredictedS, ObservedS: 20, Now: float64(i)})
	}
	after, _ := r.NextJob(env, buf)
	if after.PredictedS <= before.PredictedS*2 {
		t.Errorf("avg estimator E[S] = %g, want it to have learned ≈20 s (was %g)",
			after.PredictedS, before.PredictedS)
	}
}

func TestSetTemperatureDoesNotBreakEstimates(t *testing.T) {
	r := newRuntime(t, nil)
	buf := buffer.New(10)
	buf.Push(buffer.Input{Seq: 0, JobID: device.DetectJobID}, false)
	env := Env{InputPower: 0.002, BufferLen: 1, BufferCap: 10}
	d1, _ := r.NextJob(env, buf)
	r.SetTemperature(50)
	d2, _ := r.NextJob(env, buf)
	if d2.PredictedS <= 0 {
		t.Errorf("E[S] at 50°C = %g, want positive", d2.PredictedS)
	}
	// A 25 °C excursion between profiling and runtime skews the code
	// difference — that is physical, not a bug — but re-profiling at the
	// new temperature must restore the estimate to the same-temperature
	// band around the 25 °C value.
	r.Reprofile()
	d3, _ := r.NextJob(env, buf)
	if d3.PredictedS < d1.PredictedS*0.7 || d3.PredictedS > d1.PredictedS*1.4 {
		t.Errorf("after Reprofile E[S] = %g, want within the error band of %g", d3.PredictedS, d1.PredictedS)
	}
}

func TestSpawnProbabilityConverges(t *testing.T) {
	r := newRuntime(t, nil)
	// Prior: every completion spawns.
	if got := r.SpawnProbability(device.DetectJobID); got != 1 {
		t.Errorf("prior spawn probability = %g, want 1", got)
	}
	// Unknown job: conservative 1.
	if got := r.SpawnProbability(42); got != 1 {
		t.Errorf("unknown-job spawn probability = %g, want 1", got)
	}
	// Observe 64 completions, a quarter of which spawned.
	for i := 0; i < 64; i++ {
		r.OnJobComplete(Feedback{
			JobID:    device.DetectJobID,
			Executed: []bool{true},
			Spawned:  i%4 == 0,
			Now:      float64(i),
		})
	}
	if got := r.SpawnProbability(device.DetectJobID); got != 0.25 {
		t.Errorf("spawn probability = %g, want 0.25", got)
	}
	// The report job spawns nothing; its probability stays at the default.
	if got := r.SpawnProbability(device.ReportJobID); got != 1 {
		t.Errorf("non-spawning job probability = %g, want 1 (no tracker)", got)
	}
}

func TestAveragedEstimatorScalesOptionsByTexe(t *testing.T) {
	r := newRuntime(t, func(c *Config) { c.Kind = AveragedSe2e; c.DisableIBOEngine = true })
	// Teach the detect task an observed 10 s service at option 0
	// (MobileNetV2, Texe 0.85 s).
	for i := 1; i <= 30; i++ {
		r.OnJobComplete(Feedback{JobID: device.DetectJobID, Executed: []bool{true},
			PredictedS: 1, ObservedS: 10, Now: float64(i)})
	}
	est := r.estimator()
	hq := est.Se2e(device.DetectJobID, 0, 0)
	lq := est.Se2e(device.DetectJobID, 0, 1)
	// LeNet (Texe 0.35) scales from the learned value by the Texe ratio.
	wantRatio := 0.35 / 0.85
	if got := lq / hq; got < wantRatio*0.99 || got > wantRatio*1.01 {
		t.Errorf("avg option scaling = %g, want ≈ %g", got, wantRatio)
	}
}
