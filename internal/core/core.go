// Package core implements the Quetzal runtime (paper §4): the software a
// programmer links into an energy-harvesting application. It combines
//
//   - the Energy-aware SJF scheduling policy (Algorithm 1, via
//     internal/sched),
//   - the IBO-detection and reaction engine (Algorithm 2, via
//     internal/ibo),
//   - the PID prediction-error controller (§4.3, via internal/pid),
//   - the bit-vector trackers for task execution probability and input
//     arrival rate (§5.1, via internal/window), and
//   - the hardware power-measurement module (§5, via internal/circuit).
//
// The runtime is host-agnostic: it consumes an instantaneous input-power
// measurement and buffer occupancy through the Env argument and returns
// scheduling decisions. The discrete-event simulator (internal/sim) drives
// it exactly the way device firmware would.
package core

import (
	"fmt"

	"quetzal/internal/buffer"
	"quetzal/internal/circuit"
	"quetzal/internal/ibo"
	"quetzal/internal/model"
	"quetzal/internal/pid"
	"quetzal/internal/sched"
	"quetzal/internal/window"
)

// Env is the device state a Controller observes at a scheduling point.
type Env struct {
	Now        float64 // simulation/wall time, seconds
	InputPower float64 // instantaneous harvestable power, watts
	BufferLen  int     // current input buffer occupancy
	BufferCap  int     // input buffer capacity
	// Energy-store readings, for policies that budget against the store
	// (Quetzal itself deliberately ignores them — §4 assumes only the
	// power-measurement circuit).
	StoreEnergy   float64 // usable energy above the turn-off floor, joules
	StoreCapacity float64 // usable span: capacity − floor, joules
}

// Decision tells the host which buffered input to process next and at what
// quality.
type Decision struct {
	BufferIndex int   // index into the buffer; -1 when idle
	JobID       int   // job that will run
	Options     []int // per-task option indices for this execution
	PredictedS  float64
	// ModelS is the uncorrected model estimate of E[S] for the chosen
	// quality. Feedback must compare observations against this raw value,
	// not PredictedS: folding the PID output into its own reference would
	// close a positive feedback loop and make the controller hunt.
	ModelS float64
	// Quetzal diagnostics (zero-valued for baselines that skip them).
	IBOPredicted bool
	IBOAverted   bool
	Degraded     bool // some task runs below option 0
}

// Feedback reports a completed job execution back to the controller.
type Feedback struct {
	JobID      int
	Executed   []bool  // per task: whether it ran (conditional chains)
	Spawned    bool    // the job re-inserted its input for a follow-up job
	PredictedS float64 // the controller's E[S] at schedule time
	ObservedS  float64 // measured end-to-end service time
	Now        float64
	// Faults counts transient execution faults this job absorbed: each one
	// was detected at completion and forced a full re-execution, so
	// ObservedS includes the wasted passes. Policies with fault reserves
	// (e.g. EnSuRe) read this to validate their k-fault budget.
	Faults int
}

// Controller is the decision-making brain the simulator drives. core.Runtime
// implements Quetzal; internal/baseline implements the comparison systems.
type Controller interface {
	Name() string
	// NextJob selects the next buffered input and its quality assignment.
	// ok is false when the buffer is empty.
	NextJob(env Env, buf *buffer.Buffer) (Decision, bool)
	// ObserveCapture records whether a captured frame was stored.
	ObserveCapture(stored bool)
	// OnJobComplete feeds execution results back into the trackers.
	OnJobComplete(fb Feedback)
	// RatioOps returns how many P_exe/P_in ratio computations one NextJob
	// invocation performs, and whether the hardware module computes them;
	// the host charges the corresponding time/energy overhead.
	RatioOps() (ops int, usesModule bool)
}

// ReplaySensitive is an optional Controller marker: a controller whose
// decisions depend on state the lockstep engine's crawl-regime replay does
// not freeze (e.g. the energy-store level) returns true, and the engine
// disables the replay fast path for it. Controllers that do not implement
// the interface are treated as insensitive.
type ReplaySensitive interface {
	ReplaySensitive() bool
}

// TemperatureAware is an optional Controller marker: a controller whose
// measurement hardware models junction temperature (core.Runtime's circuit
// module) implements it, and the engine's fault layer propagates the
// scenario temperature before every scheduling decision so quantisation
// error moves with the thermal trajectory. Baselines without measurement
// hardware simply don't implement it.
type TemperatureAware interface {
	SetTemperature(tempC float64)
}

// EstimatorKind selects how the runtime computes S_e2e.
type EstimatorKind int

const (
	// HardwareModule uses the diode/ADC circuit and Algorithm 3 — the
	// full Quetzal design.
	HardwareModule EstimatorKind = iota
	// ExactDivision computes max(t_exe, E_exe/P_in) with floating-point
	// division — Quetzal without the hardware module.
	ExactDivision
	// AveragedSe2e ignores the current input power and uses an average of
	// past per-task S_e2e observations — the Avg-S_e2e baseline (§7.3).
	AveragedSe2e
)

// String names the estimator kind.
func (k EstimatorKind) String() string {
	switch k {
	case HardwareModule:
		return "hw-module"
	case ExactDivision:
		return "exact-division"
	case AveragedSe2e:
		return "avg-se2e"
	default:
		return fmt.Sprintf("EstimatorKind(%d)", int(k))
	}
}

// Config assembles a Runtime.
type Config struct {
	App    *model.App
	Policy sched.Policy  // nil defaults to Energy-aware SJF
	Kind   EstimatorKind // S_e2e estimation strategy

	TaskWindow    int     // defaults to window.DefaultTaskWindow (64)
	ArrivalWindow int     // defaults to window.DefaultArrivalWindow (256)
	CapturePeriod float64 // seconds between captures (for λ)

	PID        pid.Config // zero value defaults to pid.DefaultConfig
	DisablePID bool       // ablation: no prediction-error correction

	Circuit circuit.Config // zero value defaults to circuit.DefaultConfig

	// DisableIBOEngine runs pure Energy-aware SJF with no degradation
	// (ablation support).
	DisableIBOEngine bool
}

// Runtime is Quetzal. Construct with New.
type Runtime struct {
	cfg    Config
	app    *model.App
	policy sched.Policy

	module   *circuit.Module
	seTables map[int][][]circuit.SeTable // jobID → task → option
	d1       uint8                       // latest input-power ADC code
	pin      float64                     // latest input power (exact path)

	probs   map[int][]*window.ProbTracker // jobID → per-task tracker
	spawns  map[int]*window.ProbTracker   // jobID → spawn-probability tracker
	arrival *window.RateTracker
	ctrl    *pid.Controller

	// Averaged-S_e2e state: EWMA of observed per-task service time.
	avg map[[2]int]float64 // (jobID, taskIdx) → EWMA seconds

	lastFeedback float64 // time of the previous OnJobComplete (PID dt)
}

// New builds a Runtime and runs the profiling phase: every task option's
// execution power is measured once through the hardware module and its
// pre-multiplied t_exe table recorded (paper §4.1/§5.1).
func New(cfg Config) (*Runtime, error) {
	if cfg.App == nil {
		return nil, fmt.Errorf("core: Config.App is required")
	}
	if err := cfg.App.Validate(); err != nil {
		return nil, err
	}
	if cfg.CapturePeriod <= 0 {
		return nil, fmt.Errorf("core: capture period must be positive, got %g", cfg.CapturePeriod)
	}
	if cfg.TaskWindow <= 0 {
		cfg.TaskWindow = window.DefaultTaskWindow
	}
	if cfg.ArrivalWindow <= 0 {
		cfg.ArrivalWindow = window.DefaultArrivalWindow
	}
	if cfg.Policy == nil {
		cfg.Policy = sched.EnergySJF{}
	}
	if cfg.Circuit == (circuit.Config{}) {
		cfg.Circuit = circuit.DefaultConfig()
	}
	if cfg.PID == (pid.Config{}) {
		cfg.PID = pid.DefaultConfig()
	}

	r := &Runtime{
		cfg:      cfg,
		app:      cfg.App,
		policy:   cfg.Policy,
		module:   circuit.New(cfg.Circuit),
		seTables: map[int][][]circuit.SeTable{},
		probs:    map[int][]*window.ProbTracker{},
		spawns:   map[int]*window.ProbTracker{},
		arrival:  window.NewRateTracker(cfg.ArrivalWindow, cfg.CapturePeriod, 0.5),
		ctrl:     pid.New(cfg.PID),
		avg:      map[[2]int]float64{},
	}

	// Profiling phase: record V_D2 (execution-power code) per option and
	// pre-multiply its t_exe table.
	for _, job := range cfg.App.Jobs {
		tables := make([][]circuit.SeTable, len(job.Tasks))
		trackers := make([]*window.ProbTracker, len(job.Tasks))
		for ti, task := range job.Tasks {
			opts := make([]circuit.SeTable, len(task.Options))
			for oi, opt := range task.Options {
				code := r.module.CodeForPower(opt.Pexe)
				opts[oi] = circuit.NewSeTable(opt.Texe, code)
			}
			tables[ti] = opts
			// Conditional tasks start with the prior "always runs" (the
			// conservative assumption until history accumulates).
			trackers[ti] = window.NewProbTracker(cfg.TaskWindow, 1.0)
		}
		r.seTables[job.ID] = tables
		r.probs[job.ID] = trackers
		if job.SpawnJobID != model.NoSpawn {
			// Spawn probability starts at the conservative prior 1 (every
			// completion spawns follow-up work) and converges to the
			// observed rate.
			r.spawns[job.ID] = window.NewProbTracker(cfg.TaskWindow, 1.0)
		}
	}
	return r, nil
}

// Name implements Controller.
func (r *Runtime) Name() string {
	if r.cfg.DisableIBOEngine {
		return "quetzal-no-ibo[" + r.policy.Name() + "]"
	}
	if r.policy.Name() != "energy-sjf" || r.cfg.Kind != HardwareModule {
		return fmt.Sprintf("quetzal[%s,%s]", r.policy.Name(), r.cfg.Kind)
	}
	return "quetzal"
}

// SetTemperature adjusts the hardware module's junction temperature (°C).
// Profiled execution-power codes (V_D2) keep their recorded values: a large
// temperature excursion between profiling and runtime skews the code
// difference, which is why deployments re-profile periodically (Reprofile).
func (r *Runtime) SetTemperature(tempC float64) { r.module.SetTemperature(tempC) }

// Reprofile re-records every option's execution-power ADC code at the
// module's current temperature, restoring the same-temperature error bound
// of §5.1 after an excursion.
func (r *Runtime) Reprofile() {
	for _, job := range r.app.Jobs {
		for ti, task := range job.Tasks {
			for oi, opt := range task.Options {
				code := r.module.CodeForPower(opt.Pexe)
				r.seTables[job.ID][ti][oi] = circuit.NewSeTable(opt.Texe, code)
			}
		}
	}
}

// Lambda exposes the tracked arrival-rate estimate (inputs/second).
func (r *Runtime) Lambda() float64 { return r.arrival.Lambda() }

// Correction exposes the current PID output in seconds.
func (r *Runtime) Correction() float64 {
	if r.cfg.DisablePID {
		return 0
	}
	return r.ctrl.Output()
}

// ObserveCapture implements Controller.
func (r *Runtime) ObserveCapture(stored bool) { r.arrival.Observe(stored) }

// SpawnProbability returns the tracked probability that the given job's
// completion spawns its follow-up job (1 until history accumulates).
func (r *Runtime) SpawnProbability(jobID int) float64 {
	if t, ok := r.spawns[jobID]; ok {
		return t.Probability()
	}
	return 1
}

// NextJob implements Controller: measure input power, run Energy-aware SJF,
// then the IBO engine for the selected job.
func (r *Runtime) NextJob(env Env, buf *buffer.Buffer) (Decision, bool) {
	// "Measure" the instantaneous input power through the module (one mux
	// select + ADC read), also retaining the exact value for the
	// non-module estimator kinds.
	r.pin = env.InputPower
	r.d1 = r.module.CodeForPower(env.InputPower)

	est := r.estimator()
	sd := r.policy.Select(r.app, buf, est)
	if sd.BufferIndex < 0 {
		return Decision{BufferIndex: -1, JobID: -1}, false
	}
	job := r.app.JobByID(sd.JobID)
	dec := Decision{
		BufferIndex: sd.BufferIndex,
		JobID:       sd.JobID,
		Options:     make([]int, len(job.Tasks)),
		PredictedS:  sd.ExpectedS,
		ModelS:      sd.ExpectedS,
	}
	if r.cfg.DisableIBOEngine {
		return dec, true
	}

	free := env.BufferCap - env.BufferLen
	id := ibo.Decide(job, ibo.Input{
		App:        r.app,
		Est:        est,
		Lambda:     r.arrival.Lambda(),
		FreeSlots:  free,
		Capacity:   env.BufferCap,
		Correction: r.Correction(),
		SpawnProb:  r.SpawnProbability,
	})
	dec.IBOPredicted = id.IBOPredicted
	dec.IBOAverted = id.Averted
	dec.PredictedS = id.ExpectedS
	if di := job.DegradableTask(); di >= 0 && id.OptionIdx > 0 {
		dec.Options[di] = id.OptionIdx
		dec.Degraded = true
	}
	dec.ModelS = sched.ExpectedService(job, est, func(ti int) int { return dec.Options[ti] })
	return dec, true
}

// OnJobComplete implements Controller: update the per-task execution
// bit-vectors, the PID controller, and the averaged-S_e2e EWMAs.
func (r *Runtime) OnJobComplete(fb Feedback) {
	trackers, ok := r.probs[fb.JobID]
	if !ok {
		return
	}
	for i, tr := range trackers {
		ran := i < len(fb.Executed) && fb.Executed[i]
		tr.Observe(ran)
	}
	if st, ok := r.spawns[fb.JobID]; ok {
		st.Observe(fb.Spawned)
	}
	if !r.cfg.DisablePID && fb.ObservedS > 0 {
		dt := fb.Now - r.lastFeedback
		if dt <= 0 {
			dt = 1e-3
		}
		r.ctrl.Update(fb.PredictedS, fb.ObservedS, dt)
		r.lastFeedback = fb.Now
	}
	if r.cfg.Kind == AveragedSe2e && fb.ObservedS > 0 {
		// Attribute the whole observed service time to the job's executed
		// tasks proportionally to their profiled t_exe — the baseline has
		// no per-task timers, it averages what it can see.
		job := r.app.JobByID(fb.JobID)
		if job == nil {
			return
		}
		var texeSum float64
		for i, task := range job.Tasks {
			if i < len(fb.Executed) && fb.Executed[i] {
				texeSum += task.Options[0].Texe
			}
		}
		if texeSum <= 0 {
			return
		}
		const alpha = 0.2
		for i, task := range job.Tasks {
			if !(i < len(fb.Executed) && fb.Executed[i]) {
				continue
			}
			share := fb.ObservedS * task.Options[0].Texe / texeSum
			key := [2]int{fb.JobID, i}
			if old, ok := r.avg[key]; ok {
				r.avg[key] = old + alpha*(share-old)
			} else {
				r.avg[key] = share
			}
		}
	}
}

// RatioOps implements Controller: one ratio per task in the app (the SJF
// pass) plus one per option of the widest degradable task (the reaction
// pass), per §5.1.
func (r *Runtime) RatioOps() (int, bool) {
	n, maxOpts := 0, 0
	for _, j := range r.app.Jobs {
		n += len(j.Tasks)
		if di := j.DegradableTask(); di >= 0 && len(j.Tasks[di].Options) > maxOpts {
			maxOpts = len(j.Tasks[di].Options)
		}
	}
	return n + maxOpts, r.cfg.Kind == HardwareModule
}

// estimator returns the sched.Estimator for the configured kind.
func (r *Runtime) estimator() sched.Estimator {
	switch r.cfg.Kind {
	case ExactDivision:
		return &exactEstimator{r}
	case AveragedSe2e:
		return &avgEstimator{r}
	default:
		return &hwEstimator{r}
	}
}

// hwEstimator evaluates Algorithm 3 against the latest d1 code.
type hwEstimator struct{ r *Runtime }

func (e *hwEstimator) Se2e(jobID, taskIdx, optIdx int) float64 {
	return e.r.seTables[jobID][taskIdx][optIdx].Se2e(e.r.d1)
}

func (e *hwEstimator) Probability(jobID, taskIdx int) float64 {
	return e.r.probs[jobID][taskIdx].Probability()
}

// exactEstimator computes S_e2e with floating-point division.
type exactEstimator struct{ r *Runtime }

func (e *exactEstimator) Se2e(jobID, taskIdx, optIdx int) float64 {
	opt := e.r.app.JobByID(jobID).Tasks[taskIdx].Options[optIdx]
	return circuit.Se2eExact(opt.Texe, opt.Pexe, e.r.pin)
}

func (e *exactEstimator) Probability(jobID, taskIdx int) float64 {
	return e.r.probs[jobID][taskIdx].Probability()
}

// avgEstimator ignores input power: past observed service times only.
type avgEstimator struct{ r *Runtime }

func (e *avgEstimator) Se2e(jobID, taskIdx, optIdx int) float64 {
	task := e.r.app.JobByID(jobID).Tasks[taskIdx]
	opt := task.Options[optIdx]
	if v, ok := e.r.avg[[2]int{jobID, taskIdx}]; ok {
		// Scale the task-level average to the option by t_exe ratio: the
		// baseline assumes service time tracks compute time.
		return v * opt.Texe / task.Options[0].Texe
	}
	return opt.Texe
}

func (e *avgEstimator) Probability(jobID, taskIdx int) float64 {
	return e.r.probs[jobID][taskIdx].Probability()
}
