package experiments

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"

	"quetzal/internal/metrics"
	"quetzal/internal/report"
	"quetzal/internal/runner"
	"quetzal/internal/sim"
)

// sweepSetup is a fast base setup for sweep tests: few events on the
// event-driven engine.
func sweepSetup() Setup {
	s := DefaultSetup()
	s.NumEvents = 30
	s.Engine = sim.EventDriven
	return s
}

// TestSweepParallelDeterminism is the refactor's correctness bar: with a
// fixed Setup, a representative figure subset rendered through a 1-worker
// sweep and an 8-worker sweep (figures themselves also running
// concurrently) must be byte-identical.
func TestSweepParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("renders the figure subset twice")
	}
	figs := []func(*Sweep, context.Context) (*report.Table, error){
		(*Sweep).Fig2b,
		(*Sweep).Fig3,
		(*Sweep).Fig9,
		(*Sweep).Fig11c,
		(*Sweep).Fig12,
		(*Sweep).JitterStudy,
	}
	render := func(workers int) string {
		sw := NewSweepConfig(sweepSetup(), runner.Config[RunKey]{Workers: workers})
		ctx := context.Background()
		tables := make([]*report.Table, len(figs))
		errs := make([]error, len(figs))
		var wg sync.WaitGroup
		for i, fig := range figs {
			wg.Add(1)
			go func(i int, fig func(*Sweep, context.Context) (*report.Table, error)) {
				defer wg.Done()
				tables[i], errs[i] = fig(sw, ctx)
			}(i, fig)
		}
		wg.Wait()
		var buf bytes.Buffer
		for i := range figs {
			if errs[i] != nil {
				t.Fatalf("workers=%d fig %d: %v", workers, i, errs[i])
			}
			if err := tables[i].Render(&buf); err != nil {
				t.Fatal(err)
			}
		}
		return buf.String()
	}
	serial, parallel := render(1), render(8)
	if serial != parallel {
		t.Errorf("parallel sweep output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
}

// TestSweepCacheSharing: figures that need the same runs must share them —
// Fig3 and Fig11c both run quetzal/crowded, and JitterStudy's zero-jitter
// rows are exactly the base runs.
func TestSweepCacheSharing(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two figures")
	}
	sw := NewSweep(sweepSetup())
	ctx := context.Background()
	if _, err := sw.Fig3(ctx); err != nil {
		t.Fatal(err)
	}
	after3 := sw.Ledger()
	if after3.CacheHits != 0 {
		t.Errorf("first figure already has %d cache hits", after3.CacheHits)
	}
	if _, err := sw.Fig11c(ctx); err != nil {
		t.Fatal(err)
	}
	l := sw.Ledger()
	if l.CacheHits == 0 {
		t.Errorf("Fig3+Fig11c shared no runs: %v", l)
	}
	// quetzal/crowded must have executed exactly once across both figures.
	wantExecuted := after3.Executed + 8 // Fig11c adds 8 fixed-threshold runs
	if l.Executed != wantExecuted {
		t.Errorf("executed = %d, want %d (quetzal/crowded must not re-run)", l.Executed, wantExecuted)
	}
}

// TestSweepGet: direct key resolution works and hits the memo.
func TestSweepGet(t *testing.T) {
	sw := NewSweep(sweepSetup())
	ctx := context.Background()
	k := RunKey{System: SysNoAdapt, Env: LessCrowded}
	a, err := sw.Get(ctx, k)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sw.Get(ctx, k)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("memoized result differs from original")
	}
	if l := sw.Ledger(); l.Executed != 1 || l.CacheHits != 1 {
		t.Errorf("ledger = %+v, want 1 executed / 1 hit", l)
	}
}

// TestSweepCancellation: a canceled context aborts a sweep with a context
// error instead of running it to completion.
func TestSweepCancellation(t *testing.T) {
	s := DefaultSetup() // fixed-increment: slow enough to outlive the ctx
	s.NumEvents = 200
	sw := NewSweep(s)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sw.Get(ctx, RunKey{System: SysNoAdapt, Env: Crowded}); err == nil {
		t.Error("sweep ran to completion under a canceled context")
	}
}

// TestRunKeyResolve: deviations land in the resolved setup; unknown
// profiles fail.
func TestRunKeyResolve(t *testing.T) {
	base := sweepSetup()
	resolved, mutate, err := base.resolve(RunKey{
		System: SysQuetzal, Env: Crowded,
		Profile: ProfileMSP430, NumEvents: 99, Cells: 4, CapturePeriod: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resolved.Profile.MCU.Name != "msp430fr5994" {
		t.Errorf("profile = %s, want msp430fr5994", resolved.Profile.MCU.Name)
	}
	if resolved.NumEvents != 99 || resolved.Cells != 4 || resolved.CapturePeriod != 2 {
		t.Errorf("deviations not applied: %+v", resolved)
	}
	if mutate != nil {
		t.Error("setup-only key produced a simulator mutation")
	}

	// The zero key resolves to the base setup untouched.
	same, mutate, err := base.resolve(RunKey{System: SysQuetzal, Env: Crowded})
	if err != nil {
		t.Fatal(err)
	}
	if same.NumEvents != base.NumEvents || same.Seed != base.Seed || mutate != nil {
		t.Error("zero key changed the base setup")
	}

	if _, _, err := base.resolve(RunKey{System: SysQuetzal, Env: Crowded, Profile: "tms9900"}); err == nil {
		t.Error("resolve accepted an unknown profile")
	}
}

// TestRunKeyString: keys render compactly with only non-default fields.
func TestRunKeyString(t *testing.T) {
	k := RunKey{System: SysQuetzal, Env: Crowded}
	if got := k.String(); got != "qz/crowded" {
		t.Errorf("base key = %q, want qz/crowded", got)
	}
	k.NumEvents = 100
	k.Jitter = 0.2
	s := k.String()
	for _, frag := range []string{"qz/crowded", "events=100", "jitter=0.2"} {
		if !strings.Contains(s, frag) {
			t.Errorf("key string %q missing %q", s, frag)
		}
	}
}

// TestDiscardRowZeroDenominator: the regression for the old nz() helper —
// a run with zero interesting arrivals must render its false-negative rate
// as "n/a", not a misleading "0.0%".
func TestDiscardRowZeroDenominator(t *testing.T) {
	tbl := report.New("t", discardColumns...)
	discardRow(tbl, "env", metrics.Results{System: "x"})
	if len(tbl.Rows) != 1 {
		t.Fatal("no row")
	}
	if got := tbl.Rows[0][4]; got != "n/a" {
		t.Errorf("falseneg cell with zero arrivals = %q, want n/a", got)
	}
}
