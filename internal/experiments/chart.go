package experiments

import (
	"fmt"
	"strconv"
	"strings"

	"quetzal/internal/plot"
	"quetzal/internal/report"
)

// Chart converts a harness table into a grouped bar chart. categoryCol and
// seriesCol index the table's label columns (seriesCol < 0 renders a single
// series named after the value column); valueCol indexes the numeric column,
// whose cells the harness renders as "12.3%" or plain numbers.
func Chart(t *report.Table, categoryCol, seriesCol, valueCol int, yLabel string) (*plot.BarChart, error) {
	if t == nil || len(t.Rows) == 0 {
		return nil, fmt.Errorf("experiments: empty table for chart")
	}
	ncol := len(t.Columns)
	if categoryCol < 0 || categoryCol >= ncol || valueCol < 0 || valueCol >= ncol || seriesCol >= ncol {
		return nil, fmt.Errorf("experiments: chart columns out of range for %q", t.Title)
	}

	suffix := ""
	var categories []string
	catIdx := map[string]int{}
	seriesIdx := map[string]int{}
	var seriesNames []string
	cell := func(row []string, i int) string {
		if i < len(row) {
			return row[i]
		}
		return ""
	}
	for _, row := range t.Rows {
		cat := cell(row, categoryCol)
		if _, ok := catIdx[cat]; !ok {
			catIdx[cat] = len(categories)
			categories = append(categories, cat)
		}
		name := t.Columns[valueCol]
		if seriesCol >= 0 {
			name = cell(row, seriesCol)
		}
		if _, ok := seriesIdx[name]; !ok {
			seriesIdx[name] = len(seriesNames)
			seriesNames = append(seriesNames, name)
		}
	}

	values := make([][]float64, len(seriesNames))
	for i := range values {
		values[i] = make([]float64, len(categories))
	}
	for _, row := range t.Rows {
		v, sfx, err := parseCell(cell(row, valueCol))
		if err != nil {
			return nil, fmt.Errorf("experiments: table %q: %w", t.Title, err)
		}
		if sfx != "" {
			suffix = sfx
		}
		si := 0
		if seriesCol >= 0 {
			si = seriesIdx[cell(row, seriesCol)]
		}
		values[si][catIdx[cell(row, categoryCol)]] = v
	}

	c := &plot.BarChart{
		Title:       t.Title,
		YLabel:      yLabel,
		Categories:  categories,
		ValueSuffix: suffix,
	}
	for i, name := range seriesNames {
		c.Series = append(c.Series, plot.Series{Name: name, Values: values[i]})
	}
	return c, nil
}

// parseCell reads the harness's numeric cell formats: "12.3%", "1769",
// "2.50x".
func parseCell(s string) (float64, string, error) {
	s = strings.TrimSpace(s)
	suffix := ""
	for _, sfx := range []string{"%", "x"} {
		if strings.HasSuffix(s, sfx) {
			suffix = sfx
			s = strings.TrimSuffix(s, sfx)
			break
		}
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, "", fmt.Errorf("cell %q is not numeric", s)
	}
	return v, suffix, nil
}
