package experiments

import (
	"bytes"
	"strings"
	"testing"

	"quetzal/internal/report"
)

func discardTable() *report.Table {
	t := report.New("Demo", "environment", "system", "discarded", "ibo")
	t.AddRow("crowded", "na", "50.0%", "46.6%")
	t.AddRow("crowded", "qz", "15.4%", "3.1%")
	t.AddRow("less-crowded", "na", "42.7%", "38.6%")
	t.AddRow("less-crowded", "qz", "16.1%", "2.9%")
	return t
}

func TestChartGrouped(t *testing.T) {
	c, err := Chart(discardTable(), 0, 1, 2, "discarded")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Categories) != 2 || len(c.Series) != 2 {
		t.Fatalf("chart shape: %d categories, %d series", len(c.Categories), len(c.Series))
	}
	if c.Series[0].Name != "na" || c.Series[0].Values[0] != 50.0 {
		t.Errorf("series 0 = %+v", c.Series[0])
	}
	if c.Series[1].Values[1] != 16.1 {
		t.Errorf("qz/less-crowded = %g, want 16.1", c.Series[1].Values[1])
	}
	if c.ValueSuffix != "%" {
		t.Errorf("suffix = %q", c.ValueSuffix)
	}
	var buf bytes.Buffer
	if err := c.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "less-crowded") {
		t.Error("rendered SVG missing category")
	}
}

func TestChartSingleSeries(t *testing.T) {
	tb := report.New("Sweep", "threshold", "discarded")
	tb.AddRow("25%", "13.9%")
	tb.AddRow("50%", "13.0%")
	c, err := Chart(tb, 0, -1, 1, "discarded")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Series) != 1 || c.Series[0].Name != "discarded" {
		t.Fatalf("series = %+v", c.Series)
	}
}

func TestChartErrors(t *testing.T) {
	if _, err := Chart(nil, 0, 1, 2, ""); err == nil {
		t.Error("accepted nil table")
	}
	if _, err := Chart(discardTable(), 0, 1, 9, ""); err == nil {
		t.Error("accepted out-of-range value column")
	}
	bad := report.New("B", "a", "v")
	bad.AddRow("x", "not-a-number")
	if _, err := Chart(bad, 0, -1, 1, ""); err == nil {
		t.Error("accepted non-numeric cell")
	}
}

func TestParseCell(t *testing.T) {
	cases := []struct {
		in     string
		v      float64
		suffix string
		ok     bool
	}{
		{"12.3%", 12.3, "%", true},
		{"1769", 1769, "", true},
		{"2.50x", 2.5, "x", true},
		{" 7 ", 7, "", true},
		{"abc", 0, "", false},
	}
	for _, c := range cases {
		v, sfx, err := parseCell(c.in)
		if (err == nil) != c.ok || v != c.v || sfx != c.suffix {
			t.Errorf("parseCell(%q) = (%g,%q,%v)", c.in, v, sfx, err)
		}
	}
}
