package experiments

// The run-plan layer: figures declare the RunKeys they need and render
// tables from a shared results map, instead of executing simulations
// inline. A Sweep owns the memoizing worker pool (internal/runner), so a
// `-fig all` sweep computes each unique (system, environment, setup) run
// exactly once, figures run concurrently, and — because every simulator
// RNG is seeded per run — the rendered tables are byte-identical at any
// worker count.

import (
	"context"
	"fmt"
	"strings"

	"quetzal/internal/device"
	"quetzal/internal/energy"
	"quetzal/internal/faults"
	"quetzal/internal/metrics"
	"quetzal/internal/runner"
	"quetzal/internal/sim"
)

// Profile registry names accepted by RunKey.Profile.
const (
	ProfileApollo4       = "apollo4"
	ProfileMSP430        = "msp430"
	ProfileSTM32G0       = "stm32g0"
	ProfileApollo4MultiQ = "apollo4-multiq"
)

// ProfileByName resolves a registry name to a device profile. The registry
// exists so RunKey stays comparable: a Profile value holds slices and
// cannot be a map key.
func ProfileByName(name string) (device.Profile, bool) {
	switch name {
	case ProfileApollo4:
		return device.Apollo4(), true
	case ProfileMSP430:
		return device.MSP430(), true
	case ProfileSTM32G0:
		return device.STM32G0(), true
	case ProfileApollo4MultiQ:
		return device.Apollo4MultiQuality(), true
	}
	return device.Profile{}, false
}

// RunKey identifies one unique simulation run as a deviation from a base
// Setup: the zero value of every optional field means "use the base
// setup's value". Keys are comparable, so they address the sweep cache —
// two figures that need the same run share one execution.
type RunKey struct {
	System string
	Env    Environment

	// Setup-level deviations (zero → base setup value).
	Profile       string // registry name; see Profile* constants
	NumEvents     int
	Seed          int64
	Cells         int
	TaskWindow    int
	ArrivalWindow int
	CapturePeriod float64        // seconds
	Engine        sim.EngineKind // FixedIncrement (the zero value) → base

	// Simulator-level deviations (zero → none), covering the extension
	// studies' knobs.
	BufferCapacity     int
	Jitter             float64 // sim.Config.TexeJitterOverride
	Checkpoint         sim.CheckpointPolicy
	CheckpointInterval float64
	StoreCapacitance   float64 // farads; overrides the default store

	// Faults layers a hardware-realism scenario over the run (zero → the
	// environment's own spec, if any). faults.Spec is comparable, so keys
	// carrying one still address the sweep cache.
	Faults faults.Spec
}

// String renders the key compactly for progress lines and wrapped errors:
// "qz/crowded" plus any non-default fields.
func (k RunKey) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s", k.System, k.Env.Name)
	opt := func(format string, args ...any) { fmt.Fprintf(&b, " "+format, args...) }
	if k.Profile != "" {
		opt("profile=%s", k.Profile)
	}
	if k.NumEvents != 0 {
		opt("events=%d", k.NumEvents)
	}
	if k.Seed != 0 {
		opt("seed=%d", k.Seed)
	}
	if k.Cells != 0 {
		opt("cells=%d", k.Cells)
	}
	if k.TaskWindow != 0 {
		opt("tw=%d", k.TaskWindow)
	}
	if k.ArrivalWindow != 0 {
		opt("aw=%d", k.ArrivalWindow)
	}
	if k.CapturePeriod != 0 {
		opt("period=%gs", k.CapturePeriod)
	}
	if k.Engine != sim.FixedIncrement {
		opt("engine=%s", k.Engine)
	}
	if k.BufferCapacity != 0 {
		opt("buf=%d", k.BufferCapacity)
	}
	if k.Jitter != 0 {
		opt("jitter=%g", k.Jitter)
	}
	if k.CheckpointInterval != 0 || k.Checkpoint != sim.JITCheckpoint {
		opt("ckpt=%s", k.Checkpoint)
	}
	if k.StoreCapacitance != 0 {
		opt("store=%gF", k.StoreCapacitance)
	}
	if k.Faults.Enabled() {
		opt("faults=%s", k.Faults)
	}
	return b.String()
}

// resolve applies a key's deviations to the base setup and returns the
// resolved setup plus the simulator-level override hook.
func (s Setup) resolve(k RunKey) (Setup, func(*sim.Config), error) {
	if k.Profile != "" {
		p, ok := ProfileByName(k.Profile)
		if !ok {
			return s, nil, fmt.Errorf("experiments: unknown profile %q", k.Profile)
		}
		s.Profile = p
	}
	if k.NumEvents > 0 {
		s.NumEvents = k.NumEvents
	}
	if k.Seed != 0 {
		s.Seed = k.Seed
	}
	if k.Cells > 0 {
		s.Cells = k.Cells
	}
	if k.TaskWindow > 0 {
		s.TaskWindow = k.TaskWindow
	}
	if k.ArrivalWindow > 0 {
		s.ArrivalWindow = k.ArrivalWindow
	}
	if k.CapturePeriod > 0 {
		s.CapturePeriod = k.CapturePeriod
	}
	if k.Engine != sim.FixedIncrement {
		s.Engine = k.Engine
	}
	if k.BufferCapacity == 0 && k.Jitter == 0 && k.Checkpoint == sim.JITCheckpoint &&
		k.CheckpointInterval == 0 && k.StoreCapacitance == 0 && !k.Faults.Enabled() {
		return s, nil, nil // no simulator-level overrides
	}
	mutate := func(c *sim.Config) {
		if k.BufferCapacity > 0 {
			c.BufferCapacity = k.BufferCapacity
		}
		if k.Jitter > 0 {
			c.TexeJitterOverride = k.Jitter
		}
		c.Checkpoint = k.Checkpoint
		if k.CheckpointInterval > 0 {
			c.CheckpointInterval = k.CheckpointInterval
		}
		if k.StoreCapacitance > 0 {
			store := energy.DefaultConfig()
			store.Capacitance = k.StoreCapacitance
			c.Store = store
		}
		if k.Faults.Enabled() {
			c.Faults = k.Faults
		}
	}
	return s, mutate, nil
}

// runKey resolves and executes one key against the base setup.
func (s Setup) runKey(ctx context.Context, k RunKey) (metrics.Results, error) {
	resolved, mutate, err := s.resolve(k)
	if err != nil {
		return metrics.Results{}, err
	}
	return resolved.runContext(ctx, k.System, k.Env, mutate)
}

// Sweep executes run plans against one base Setup through a shared
// memoizing pool: every unique RunKey is simulated exactly once no matter
// how many figures — or concurrent figure goroutines — request it.
type Sweep struct {
	Setup Setup
	pool  *runner.Pool[RunKey, metrics.Results]
}

// NewSweep builds a sweep with default pool settings (one worker per CPU,
// no per-run timeout).
func NewSweep(s Setup) *Sweep {
	return NewSweepConfig(s, runner.Config[RunKey]{})
}

// NewSweepConfig builds a sweep with explicit pool settings (worker count,
// per-run timeout, progress callback).
func NewSweepConfig(s Setup, cfg runner.Config[RunKey]) *Sweep {
	sw := &Sweep{Setup: s}
	sw.pool = runner.New(s.runKey, cfg)
	return sw
}

// Get resolves one key (executing it on the pool unless cached).
func (sw *Sweep) Get(ctx context.Context, k RunKey) (metrics.Results, error) {
	return sw.pool.Do(ctx, k)
}

// Results resolves all keys concurrently (bounded by the pool's workers)
// and returns them as a map for figure rendering. Duplicate keys are fine:
// single-flight collapses them onto one execution.
func (sw *Sweep) Results(ctx context.Context, keys []RunKey) (map[RunKey]metrics.Results, error) {
	vals, err := sw.pool.Collect(ctx, keys)
	if err != nil {
		return nil, err
	}
	out := make(map[RunKey]metrics.Results, len(keys))
	for i, k := range keys {
		out[k] = vals[i]
	}
	return out, nil
}

// Ledger summarizes the sweep so far: runs executed, cache hits, errors,
// wall and cpu time.
func (sw *Sweep) Ledger() runner.Ledger { return sw.pool.Ledger() }

// Workers returns the sweep pool's concurrency bound.
func (sw *Sweep) Workers() int { return sw.pool.Workers() }

// baseKeys enumerates systems × envs with no setup deviations — the plan
// most paper figures share, which is exactly what makes the cross-figure
// cache effective.
func baseKeys(systems []string, envs ...Environment) []RunKey {
	keys := make([]RunKey, 0, len(systems)*len(envs))
	for _, env := range envs {
		for _, id := range systems {
			keys = append(keys, RunKey{System: id, Env: env})
		}
	}
	return keys
}
