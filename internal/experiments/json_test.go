package experiments

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"quetzal/internal/policy"
	"quetzal/internal/sim"
)

func TestValidSystem(t *testing.T) {
	for _, id := range policy.Names() {
		if !ValidSystem(id) {
			t.Errorf("ValidSystem(%q) = false, want true", id)
		}
	}
	for _, id := range []string{"fixed-25", "fixed-1", "fixed-100"} {
		if !ValidSystem(id) {
			t.Errorf("ValidSystem(%q) = false, want true", id)
		}
	}
	for _, id := range []string{
		"", "quetzal", "QZ", "fixed-0", "fixed-101", "fixed-25x", "fixed-007",
		"fixed--5", "fixed-", "qz ", " qz",
	} {
		if ValidSystem(id) {
			t.Errorf("ValidSystem(%q) = true, want false", id)
		}
	}
}

func TestKeySpecRunKeyValidation(t *testing.T) {
	cases := []struct {
		name    string
		spec    KeySpec
		wantErr string // substring; empty → must resolve
	}{
		{name: "minimal", spec: KeySpec{System: "qz", Env: "crowded"}},
		{
			name: "all fields",
			spec: KeySpec{
				System: "qz-fcfs", Env: "less-crowded", Profile: ProfileMSP430,
				Events: 1000, Seed: -3, Cells: 12, TaskWindow: 16, ArrivalWindow: 32,
				CapturePeriod: 0.5, Engine: "event", BufferCapacity: 20,
				Jitter: 0.2, Checkpoint: "periodic", CheckpointInterval: 2,
				StoreCapacitance: 0.0033,
			},
		},
		{name: "custom env", spec: KeySpec{System: "na", Env: "lab-bench", MaxDuration: 45}},
		{name: "fixed threshold", spec: KeySpec{System: "fixed-25", Env: "crowded"}},
		{name: "missing system", spec: KeySpec{Env: "crowded"}, wantErr: "missing system"},
		{name: "unknown system", spec: KeySpec{System: "magic", Env: "crowded"}, wantErr: "unknown system"},
		{name: "missing env", spec: KeySpec{System: "qz"}, wantErr: "missing env"},
		{name: "unknown env no duration", spec: KeySpec{System: "qz", Env: "mars"}, wantErr: "custom envs need max_duration"},
		{
			name:    "known env conflicting duration",
			spec:    KeySpec{System: "qz", Env: "crowded", MaxDuration: 99},
			wantErr: "max duration",
		},
		{name: "known env matching duration", spec: KeySpec{System: "qz", Env: "crowded", MaxDuration: 60}},
		{
			name:    "absurd duration",
			spec:    KeySpec{System: "qz", Env: "forever", MaxDuration: 1e12},
			wantErr: "max_duration",
		},
		{
			name:    "tiny duration",
			spec:    KeySpec{System: "qz", Env: "blink", MaxDuration: 0.01},
			wantErr: "max_duration",
		},
		{
			name:    "long env name",
			spec:    KeySpec{System: "qz", Env: strings.Repeat("x", 65), MaxDuration: 10},
			wantErr: "64 bytes",
		},
		{name: "unknown profile", spec: KeySpec{System: "qz", Env: "crowded", Profile: "z80"}, wantErr: "unknown profile"},
		{name: "unknown engine", spec: KeySpec{System: "qz", Env: "crowded", Engine: "warp"}, wantErr: "unknown engine"},
		{name: "unknown checkpoint", spec: KeySpec{System: "qz", Env: "crowded", Checkpoint: "psychic"}, wantErr: "checkpoint"},
		{name: "events too big", spec: KeySpec{System: "qz", Env: "crowded", Events: MaxSpecEvents + 1}, wantErr: "events"},
		{name: "negative events", spec: KeySpec{System: "qz", Env: "crowded", Events: -4}, wantErr: "events"},
		{name: "jitter above one", spec: KeySpec{System: "qz", Env: "crowded", Jitter: 1.5}, wantErr: "jitter"},
		{name: "negative jitter", spec: KeySpec{System: "qz", Env: "crowded", Jitter: -0.1}, wantErr: "jitter"},
		{name: "capture period too fast", spec: KeySpec{System: "qz", Env: "crowded", CapturePeriod: 1e-9}, wantErr: "capture_period"},
		{name: "buffer too big", spec: KeySpec{System: "qz", Env: "crowded", BufferCapacity: 1 << 21}, wantErr: "buffer_capacity"},
		{name: "cells too many", spec: KeySpec{System: "qz", Env: "crowded", Cells: 500}, wantErr: "cells"},
		{name: "capacitance absurd", spec: KeySpec{System: "qz", Env: "crowded", StoreCapacitance: 100}, wantErr: "store_capacitance"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			key, err := tc.spec.RunKey()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("RunKey() error: %v", err)
				}
				if key.System != tc.spec.System {
					t.Fatalf("System = %q, want %q", key.System, tc.spec.System)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("RunKey() error = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

// TestKeySpecResolvesSharedKeys pins the coalescing contract: two specs for
// the same run — decoded from different JSON bodies — must resolve to
// identical comparable keys, or the service's single-flight memoization
// would silently stop de-duplicating.
func TestKeySpecResolvesSharedKeys(t *testing.T) {
	bodies := []string{
		`{"system":"qz","env":"crowded","events":100,"engine":"event"}`,
		`{"engine":"event","events":100,"env":"crowded","system":"qz"}`,
	}
	var keys []RunKey
	for _, b := range bodies {
		var sp KeySpec
		if err := json.Unmarshal([]byte(b), &sp); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		k, err := sp.RunKey()
		if err != nil {
			t.Fatalf("RunKey %s: %v", b, err)
		}
		keys = append(keys, k)
	}
	if keys[0] != keys[1] {
		t.Fatalf("equivalent specs resolved to distinct keys:\n%v\n%v", keys[0], keys[1])
	}
	// Known env names must resolve to the package's Environment values so
	// service keys share cache entries with CLI sweep keys.
	if keys[0].Env != Crowded {
		t.Fatalf("Env = %+v, want the canonical Crowded value %+v", keys[0].Env, Crowded)
	}
	if keys[0].Engine != sim.EventDriven {
		t.Fatalf("Engine = %v, want EventDriven", keys[0].Engine)
	}
}

// TestExecuteMatchesSweep pins that the exported Execute path is the same
// execution the CLI sweep uses: one key, both paths, identical results.
func TestExecuteMatchesSweep(t *testing.T) {
	setup := DefaultSetup()
	setup.NumEvents = 40
	setup.Engine = sim.EventDriven
	key := RunKey{System: SysNoAdapt, Env: LessCrowded}

	direct, err := setup.Execute(context.Background(), key)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	viaSweep, err := NewSweep(setup).Get(context.Background(), key)
	if err != nil {
		t.Fatalf("Sweep.Get: %v", err)
	}
	if direct != viaSweep {
		t.Fatalf("Execute and Sweep.Get disagree:\n%+v\n%+v", direct, viaSweep)
	}
}
