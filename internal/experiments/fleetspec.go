package experiments

// Fleet-run planning: FleetSpec is the wire form of a fleet sweep (N devices
// of one system in one environment), built for hostile input exactly like
// KeySpec. Plan() is the single validation gate between the network/CLI and
// internal/fleet: every bound lives here, and a nil error guarantees the
// plan is executable with bounded work. The resolved FleetPlan carries no
// zero-means-default fields — fleet.Run consumes it literally.

import (
	"fmt"

	"quetzal/internal/faults"
	"quetzal/internal/sim"
)

// Fleet request bounds. One fleet run is O(devices × events); the work cap
// keeps a hostile request bounded while leaving the headline 1M-device
// sweep comfortable room.
const (
	// MaxFleetDevices bounds one fleet sweep's population.
	MaxFleetDevices = 2_000_000
	// MaxFleetWork bounds devices × events-per-device, the simulation-work
	// product (a 1M-device sweep at the default 4 events/device is 4M).
	MaxFleetWork = 16_000_000
	// MaxFleetShard bounds the per-shard device count.
	MaxFleetShard = 65536
	// MaxFleetJitter bounds per-device parameter jitter: ±50% keeps every
	// jittered parameter physical (positive periods, capacitances, buffer
	// slots).
	MaxFleetJitter = 0.5
)

// Fleet defaults, applied by Plan for omitted fields.
const (
	// DefaultFleetEvents keeps per-device runs short: fleet questions are
	// about the population distribution, not any single device's long run.
	DefaultFleetEvents = 4
	// DefaultFleetShard trades scheduling overhead against fold latency.
	DefaultFleetShard = 512
	// DefaultFleetCorrelation is the regional-sky blend weight: mostly one
	// shared sky with per-device cloud texture.
	DefaultFleetCorrelation = 0.8
	// DefaultFleetSeed matches the experiment harness default.
	DefaultFleetSeed = 42
)

// FleetPlan is one validated, fully resolved fleet run. Every field is
// concrete (Plan applied the defaults), so two equal plans describe
// byte-identical sweeps.
type FleetPlan struct {
	Devices     int
	System      string
	Env         Environment
	Profile     string // registry name; see Profile* constants
	Events      int    // events per device
	Seed        int64  // fleet seed; per-device streams derive from it
	Engine      sim.EngineKind
	ShardSize   int
	Jitter      float64 // per-device parameter jitter fraction, in [0, 0.5]
	Correlation float64 // regional-sky blend weight, in (0, 1]
	// Faults is the fleet-wide hardware-realism scenario (zero → the
	// environment's own spec). Per-device fault draws derive from the fleet
	// seed and device index (fleet.StreamFaults), never from shard layout.
	Faults faults.Spec
}

// String renders the plan for progress lines and wrapped errors.
func (p FleetPlan) String() string {
	s := fmt.Sprintf("fleet %d×%s/%s profile=%s events=%d seed=%d shard=%d jitter=%g corr=%g",
		p.Devices, p.System, p.Env.Name, p.Profile, p.Events, p.Seed, p.ShardSize, p.Jitter, p.Correlation)
	if p.Faults.Enabled() {
		s += " realism=" + p.Faults.String()
	}
	return s
}

// FleetSpec is the JSON form of one fleet request. Apart from Devices and
// System/Env, the zero value of every field means "use the fleet default".
type FleetSpec struct {
	Devices int    `json:"devices"`
	System  string `json:"system"`
	// Policy is an alias for System, mirroring KeySpec: set either, or both
	// to the same name.
	Policy string `json:"policy,omitempty"`
	Env    string `json:"env"`
	// MaxDuration defines a custom environment exactly as in KeySpec.
	MaxDuration float64 `json:"max_duration,omitempty"`

	Profile string `json:"profile,omitempty"`
	Events  int    `json:"events,omitempty"`
	Seed    int64  `json:"seed,omitempty"`
	// Engine defaults to "lockstep" — fleets are population sweeps with no
	// per-device observers, exactly the regime the lockstep stepper's crawl
	// replay targets, and it is bit-identical to "event" (so aggregates and
	// their sha256 fingerprints do not change with the default). The
	// fixed-increment reference stepper would make 1M devices intractable.
	Engine    string  `json:"engine,omitempty"`
	ShardSize int     `json:"shard_size,omitempty"`
	Jitter    float64 `json:"jitter,omitempty"`
	// Correlation in (0, 1]; 0 → DefaultFleetCorrelation. Use a tiny value
	// (e.g. 0.001) for effectively independent skies.
	Correlation float64 `json:"correlation,omitempty"`
	// Faults overrides the environment's hardware-realism scenario for the
	// whole fleet (integer knobs; see faults.Spec's json tags).
	Faults faults.Spec `json:"faults,omitempty"`
}

// Plan validates the spec and resolves it to a concrete FleetPlan — the
// only path from untrusted input to a fleet run.
func (sp FleetSpec) Plan() (FleetPlan, error) {
	if sp.Devices <= 0 {
		return FleetPlan{}, fmt.Errorf("devices must be positive, got %d", sp.Devices)
	}
	if sp.Devices > MaxFleetDevices {
		return FleetPlan{}, fmt.Errorf("devices must be at most %d, got %d", MaxFleetDevices, sp.Devices)
	}
	system := sp.System
	switch {
	case sp.Policy != "" && sp.System != "" && sp.Policy != sp.System:
		return FleetPlan{}, fmt.Errorf("ambiguous request: system %q vs policy %q (set one, or both to the same name)",
			sp.System, sp.Policy)
	case sp.Policy != "":
		system = sp.Policy
	}
	if system == "" {
		return FleetPlan{}, fmt.Errorf("missing system (e.g. %q)", SysQuetzal)
	}
	if !ValidSystem(system) {
		return FleetPlan{}, fmt.Errorf("unknown system %q", system)
	}
	if system == SysIdeal {
		// Ideal is computed analytically per run, not simulated; a fleet of
		// closed-form results would be meaningless as a population sweep.
		return FleetPlan{}, fmt.Errorf("system %q has no fleet form", SysIdeal)
	}
	if sp.Env == "" {
		return FleetPlan{}, fmt.Errorf("missing env (e.g. %q)", Crowded.Name)
	}
	if err := finite("max_duration", sp.MaxDuration); err != nil {
		return FleetPlan{}, err
	}
	env, known := EnvByName(sp.Env)
	switch {
	case known && sp.MaxDuration != 0 && sp.MaxDuration != env.MaxDuration:
		return FleetPlan{}, fmt.Errorf("env %q has max duration %gs; omit max_duration or use a custom env name",
			sp.Env, env.MaxDuration)
	case !known && sp.MaxDuration == 0:
		return FleetPlan{}, fmt.Errorf("unknown env %q (custom envs need max_duration)", sp.Env)
	case !known:
		if len(sp.Env) > 64 {
			return FleetPlan{}, fmt.Errorf("env name longer than 64 bytes")
		}
		if sp.MaxDuration < 0.1 || sp.MaxDuration > MaxSpecDuration {
			return FleetPlan{}, fmt.Errorf("max_duration must be in [0.1, %d] seconds, got %g",
				MaxSpecDuration, sp.MaxDuration)
		}
		env = Environment{Name: sp.Env, MaxDuration: sp.MaxDuration}
	}

	profile := sp.Profile
	if profile == "" {
		profile = ProfileApollo4
	}
	if _, ok := ProfileByName(profile); !ok {
		return FleetPlan{}, fmt.Errorf("unknown profile %q", sp.Profile)
	}

	engine := sim.Lockstep
	if sp.Engine != "" {
		var err error
		if engine, err = ParseEngineKind(sp.Engine); err != nil {
			return FleetPlan{}, err
		}
	}

	for _, c := range []struct {
		name   string
		v      float64
		lo, hi float64
	}{
		{"events", float64(sp.Events), 1, MaxSpecEvents},
		{"shard_size", float64(sp.ShardSize), 1, MaxFleetShard},
		{"jitter", sp.Jitter, 0, MaxFleetJitter},
		{"correlation", sp.Correlation, 0, 1},
	} {
		if err := inRange(c.name, c.v, c.lo, c.hi); err != nil {
			return FleetPlan{}, err
		}
	}

	events := sp.Events
	if events == 0 {
		events = DefaultFleetEvents
	}
	if work := int64(sp.Devices) * int64(events); work > MaxFleetWork {
		return FleetPlan{}, fmt.Errorf("devices × events = %d exceeds the work cap %d", work, MaxFleetWork)
	}
	seed := sp.Seed
	if seed == 0 {
		seed = DefaultFleetSeed
	}
	shard := sp.ShardSize
	if shard == 0 {
		shard = DefaultFleetShard
	}
	corr := sp.Correlation
	if corr == 0 {
		corr = DefaultFleetCorrelation
	}
	if err := sp.Faults.Validate(); err != nil {
		return FleetPlan{}, fmt.Errorf("faults: %w", err)
	}

	return FleetPlan{
		Devices:     sp.Devices,
		System:      system,
		Env:         env,
		Profile:     profile,
		Events:      events,
		Seed:        seed,
		Engine:      engine,
		ShardSize:   shard,
		Jitter:      sp.Jitter,
		Correlation: corr,
		Faults:      sp.Faults,
	}, nil
}
