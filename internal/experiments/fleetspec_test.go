package experiments

import (
	"math"
	"strings"
	"testing"

	"quetzal/internal/sim"
)

func TestFleetSpecPlanDefaults(t *testing.T) {
	plan, err := FleetSpec{Devices: 1000, System: SysQuetzal, Env: "crowded"}.Plan()
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	want := FleetPlan{
		Devices:     1000,
		System:      SysQuetzal,
		Env:         Crowded,
		Profile:     ProfileApollo4,
		Events:      DefaultFleetEvents,
		Seed:        DefaultFleetSeed,
		Engine:      sim.Lockstep,
		ShardSize:   DefaultFleetShard,
		Jitter:      0,
		Correlation: DefaultFleetCorrelation,
	}
	if plan != want {
		t.Fatalf("plan = %+v, want %+v", plan, want)
	}
}

func TestFleetSpecPlanCustomEnv(t *testing.T) {
	plan, err := FleetSpec{
		Devices: 10, System: SysNoAdapt, Env: "lab", MaxDuration: 12.5,
		Events: 2, Seed: 7, ShardSize: 4, Jitter: 0.25, Correlation: 0.5,
	}.Plan()
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	if plan.Env.Name != "lab" || plan.Env.MaxDuration != 12.5 {
		t.Fatalf("custom env not carried: %+v", plan.Env)
	}
	if plan.Events != 2 || plan.Seed != 7 || plan.ShardSize != 4 ||
		plan.Jitter != 0.25 || plan.Correlation != 0.5 {
		t.Fatalf("explicit fields not carried: %+v", plan)
	}
}

func TestFleetSpecPlanRejects(t *testing.T) {
	valid := func() FleetSpec {
		return FleetSpec{Devices: 100, System: SysQuetzal, Env: "crowded"}
	}
	cases := []struct {
		name   string
		mutate func(*FleetSpec)
		want   string // substring of the error
	}{
		{"zero devices", func(s *FleetSpec) { s.Devices = 0 }, "devices must be positive"},
		{"negative devices", func(s *FleetSpec) { s.Devices = -5 }, "devices must be positive"},
		{"too many devices", func(s *FleetSpec) { s.Devices = MaxFleetDevices + 1 }, "at most"},
		{"missing system", func(s *FleetSpec) { s.System = "" }, "missing system"},
		{"unknown system", func(s *FleetSpec) { s.System = "warp" }, "unknown system"},
		{"ideal has no fleet", func(s *FleetSpec) { s.System = SysIdeal }, "no fleet form"},
		{"missing env", func(s *FleetSpec) { s.Env = "" }, "missing env"},
		{"unknown env without duration", func(s *FleetSpec) { s.Env = "mars" }, "custom envs need max_duration"},
		{"known env duration mismatch", func(s *FleetSpec) { s.MaxDuration = 99 }, "omit max_duration"},
		{"custom env duration too small", func(s *FleetSpec) { s.Env = "mars"; s.MaxDuration = 0.01 }, "max_duration must be in"},
		{"custom env duration too large", func(s *FleetSpec) { s.Env = "mars"; s.MaxDuration = 1e9 }, "max_duration must be in"},
		{"env name too long", func(s *FleetSpec) { s.Env = strings.Repeat("x", 65); s.MaxDuration = 10 }, "longer than 64"},
		{"nan duration", func(s *FleetSpec) { s.MaxDuration = math.NaN() }, "finite"},
		{"unknown profile", func(s *FleetSpec) { s.Profile = "z80" }, "unknown profile"},
		{"unknown engine", func(s *FleetSpec) { s.Engine = "quantum" }, "engine"},
		{"negative events", func(s *FleetSpec) { s.Events = -1 }, "events must be in"},
		{"too many events", func(s *FleetSpec) { s.Events = MaxSpecEvents + 1 }, "events must be in"},
		{"oversize shard", func(s *FleetSpec) { s.ShardSize = MaxFleetShard + 1 }, "shard_size must be in"},
		{"negative jitter", func(s *FleetSpec) { s.Jitter = -0.1 }, "jitter must be in"},
		{"excess jitter", func(s *FleetSpec) { s.Jitter = 0.6 }, "jitter must be in"},
		{"nan jitter", func(s *FleetSpec) { s.Jitter = math.NaN() }, "finite"},
		{"excess correlation", func(s *FleetSpec) { s.Correlation = 1.5 }, "correlation must be in"},
		{"work cap", func(s *FleetSpec) { s.Devices = MaxFleetDevices; s.Events = MaxSpecEvents }, "work cap"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := valid()
			tc.mutate(&spec)
			_, err := spec.Plan()
			if err == nil {
				t.Fatalf("Plan accepted %+v", spec)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestFleetSpecWorkCapAdmitsHeadline ensures the caps leave room for the
// headline sweep: one million devices at the default event count.
func TestFleetSpecWorkCapAdmitsHeadline(t *testing.T) {
	plan, err := FleetSpec{Devices: 1_000_000, System: SysQuetzal, Env: "less-crowded"}.Plan()
	if err != nil {
		t.Fatalf("1M-device default plan rejected: %v", err)
	}
	if plan.Devices != 1_000_000 {
		t.Fatalf("plan devices = %d", plan.Devices)
	}
}
