package experiments

// Config-from-JSON: KeySpec is the wire form of a RunKey, built for hostile
// input. The HTTP service (internal/service) decodes untrusted request
// bodies into KeySpecs; RunKey() is the single validation gate between the
// network and the simulator, so every bound lives here and is fuzzed
// (service.FuzzDecodeRequest). Two KeySpecs describing the same run resolve
// to identical comparable RunKeys, which is what lets the service's
// single-flight pool coalesce duplicate requests.

import (
	"context"
	"fmt"
	"math"

	"quetzal/internal/faults"
	"quetzal/internal/metrics"
	"quetzal/internal/policy"
	"quetzal/internal/sim"
)

// Request bounds. The simulator is O(events × systems); these caps keep one
// hostile request from pinning a worker for hours or allocating absurd
// traces, while leaving paper-scale runs (1000 events) comfortable room.
const (
	MaxSpecEvents      = 20000
	MaxSpecDuration    = 3600 // seconds, custom-environment event cap
	MaxSpecCells       = 60
	MaxSpecWindow      = 4096
	MaxSpecPeriod      = 3600    // seconds between captures
	MinSpecPeriod      = 0.001   // 1 kHz capture is already far beyond the paper
	MaxSpecBufferCap   = 1 << 20 // matches the Ideal baseline's "infinite" buffer
	MaxSpecCapacitance = 10      // farads; the evaluated store is 3.3 mF
)

// KeySpec is the JSON form of one run request. The zero value of every
// optional field means "use the serving setup's default", mirroring RunKey.
type KeySpec struct {
	System string `json:"system"`
	// Policy is an alias for System (the registry's vocabulary); set either,
	// or both to the same name — two different names are rejected as
	// ambiguous rather than silently preferring one.
	Policy string `json:"policy,omitempty"`
	Env    string `json:"env"`
	// MaxDuration defines a custom environment (seconds cap on event
	// durations) when Env is not one of the Table 1 names. For a known Env
	// it must be omitted or match.
	MaxDuration float64 `json:"max_duration,omitempty"`

	Profile       string  `json:"profile,omitempty"`
	Events        int     `json:"events,omitempty"`
	Seed          int64   `json:"seed,omitempty"`
	Cells         int     `json:"cells,omitempty"`
	TaskWindow    int     `json:"task_window,omitempty"`
	ArrivalWindow int     `json:"arrival_window,omitempty"`
	CapturePeriod float64 `json:"capture_period,omitempty"`
	Engine        string  `json:"engine,omitempty"` // "", "fixed", "event", "lockstep"

	BufferCapacity     int     `json:"buffer_capacity,omitempty"`
	Jitter             float64 `json:"jitter,omitempty"`
	Checkpoint         string  `json:"checkpoint,omitempty"` // "", "jit", "none", "periodic"
	CheckpointInterval float64 `json:"checkpoint_interval,omitempty"`
	StoreCapacitance   float64 `json:"store_capacitance,omitempty"`

	// Faults is the hardware-realism scenario (integer knobs; see
	// faults.Spec's json tags). Omitted/zero → the environment's own spec.
	Faults faults.Spec `json:"faults,omitempty"`
}

// ValidSystem reports whether id names a system Run accepts: any policy
// registered in internal/policy — the Sys* constants or a fixed-threshold
// id "fixed-NN" (1 ≤ NN ≤ 100). The fixed form must round-trip exactly, so
// "fixed-25x" and "fixed-007" are rejected rather than leniently parsed.
func ValidSystem(id string) bool {
	return policy.Known(id)
}

// PolicyNames enumerates the registered policy ids in registry declaration
// order (the fixed-NN family is synthesized, not enumerated).
func PolicyNames() []string {
	return policy.Names()
}

// EnvByName resolves a named environment: the Table 1 four plus the league
// extremes.
func EnvByName(name string) (Environment, bool) {
	for _, env := range LeagueEnvironments {
		if env.Name == name {
			return env, true
		}
	}
	return Environment{}, false
}

// ParseEngineKind maps the wire names to engine kinds ("" → fixed, the
// paper-faithful default). "lockstep" selects the batched fast path, bit-
// identical to "event" (pinned by golden parity and the three-way oracle).
func ParseEngineKind(name string) (sim.EngineKind, error) {
	switch name {
	case "", "fixed":
		return sim.FixedIncrement, nil
	case "event":
		return sim.EventDriven, nil
	case "lockstep":
		return sim.Lockstep, nil
	}
	return 0, fmt.Errorf("unknown engine %q (want fixed, event or lockstep)", name)
}

// ParseCheckpointPolicy maps the wire names to checkpoint policies ("" →
// jit, the paper's model).
func ParseCheckpointPolicy(name string) (sim.CheckpointPolicy, error) {
	switch name {
	case "", "jit":
		return sim.JITCheckpoint, nil
	case "none":
		return sim.NoCheckpoint, nil
	case "periodic":
		return sim.PeriodicCheckpoint, nil
	}
	return 0, fmt.Errorf("unknown checkpoint policy %q (want jit, none or periodic)", name)
}

// finite rejects the float values JSON cannot legally encode but a buggy or
// adversarial producer might smuggle through a lenient decoder.
func finite(name string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("%s must be finite, got %g", name, v)
	}
	return nil
}

// inRange validates one numeric field against [lo, hi]; zero is always
// allowed (it means "default").
func inRange(name string, v, lo, hi float64) error {
	if err := finite(name, v); err != nil {
		return err
	}
	if v == 0 {
		return nil
	}
	if v < lo || v > hi {
		return fmt.Errorf("%s must be in [%g, %g] (or 0 for the default), got %g", name, lo, hi, v)
	}
	return nil
}

// RunKey validates the spec and resolves it to a comparable RunKey. It is
// the only path from untrusted input to the simulator: everything a request
// can set is bounds-checked here, and a nil error guarantees the key is
// executable (unknown systems, profiles, engines and absurd magnitudes are
// all rejected up front).
func (sp KeySpec) RunKey() (RunKey, error) {
	system := sp.System
	switch {
	case sp.Policy != "" && sp.System != "" && sp.Policy != sp.System:
		return RunKey{}, fmt.Errorf("ambiguous request: system %q vs policy %q (set one, or both to the same name)",
			sp.System, sp.Policy)
	case sp.Policy != "":
		system = sp.Policy
	}
	if system == "" {
		return RunKey{}, fmt.Errorf("missing system (e.g. %q)", SysQuetzal)
	}
	if !ValidSystem(system) {
		return RunKey{}, fmt.Errorf("unknown system %q", system)
	}
	if sp.Env == "" {
		return RunKey{}, fmt.Errorf("missing env (e.g. %q)", Crowded.Name)
	}
	if err := finite("max_duration", sp.MaxDuration); err != nil {
		return RunKey{}, err
	}
	env, known := EnvByName(sp.Env)
	switch {
	case known && sp.MaxDuration != 0 && sp.MaxDuration != env.MaxDuration:
		return RunKey{}, fmt.Errorf("env %q has max duration %gs; omit max_duration or use a custom env name",
			sp.Env, env.MaxDuration)
	case !known && sp.MaxDuration == 0:
		return RunKey{}, fmt.Errorf("unknown env %q (custom envs need max_duration)", sp.Env)
	case !known:
		if len(sp.Env) > 64 {
			return RunKey{}, fmt.Errorf("env name longer than 64 bytes")
		}
		if sp.MaxDuration < 0.1 || sp.MaxDuration > MaxSpecDuration {
			return RunKey{}, fmt.Errorf("max_duration must be in [0.1, %d] seconds, got %g",
				MaxSpecDuration, sp.MaxDuration)
		}
		env = Environment{Name: sp.Env, MaxDuration: sp.MaxDuration}
	}

	if sp.Profile != "" {
		if _, ok := ProfileByName(sp.Profile); !ok {
			return RunKey{}, fmt.Errorf("unknown profile %q", sp.Profile)
		}
	}
	engine, err := ParseEngineKind(sp.Engine)
	if err != nil {
		return RunKey{}, err
	}
	ckpt, err := ParseCheckpointPolicy(sp.Checkpoint)
	if err != nil {
		return RunKey{}, err
	}
	for _, c := range []struct {
		name   string
		v      float64
		lo, hi float64
	}{
		{"events", float64(sp.Events), 1, MaxSpecEvents},
		{"cells", float64(sp.Cells), 1, MaxSpecCells},
		{"task_window", float64(sp.TaskWindow), 1, MaxSpecWindow},
		{"arrival_window", float64(sp.ArrivalWindow), 1, MaxSpecWindow},
		{"capture_period", sp.CapturePeriod, MinSpecPeriod, MaxSpecPeriod},
		{"buffer_capacity", float64(sp.BufferCapacity), 1, MaxSpecBufferCap},
		{"jitter", sp.Jitter, 0, 1},
		{"checkpoint_interval", sp.CheckpointInterval, 0.001, MaxSpecDuration},
		{"store_capacitance", sp.StoreCapacitance, 1e-6, MaxSpecCapacitance},
	} {
		if err := inRange(c.name, c.v, c.lo, c.hi); err != nil {
			return RunKey{}, err
		}
	}
	if err := sp.Faults.Validate(); err != nil {
		return RunKey{}, fmt.Errorf("faults: %w", err)
	}

	return RunKey{
		System:             system,
		Env:                env,
		Profile:            sp.Profile,
		NumEvents:          sp.Events,
		Seed:               sp.Seed,
		Cells:              sp.Cells,
		TaskWindow:         sp.TaskWindow,
		ArrivalWindow:      sp.ArrivalWindow,
		CapturePeriod:      sp.CapturePeriod,
		Engine:             engine,
		BufferCapacity:     sp.BufferCapacity,
		Jitter:             sp.Jitter,
		Checkpoint:         ckpt,
		CheckpointInterval: sp.CheckpointInterval,
		StoreCapacitance:   sp.StoreCapacitance,
		Faults:             sp.Faults,
	}, nil
}

// Execute resolves and runs one key against the base setup — the function a
// service-owned runner.Pool memoizes. Identical to what Sweep.Get executes,
// exported so long-lived servers can own their pool configuration.
func (s Setup) Execute(ctx context.Context, k RunKey) (metrics.Results, error) {
	return s.runKey(ctx, k)
}
