package experiments

import (
	"fmt"
	"io"

	"quetzal/internal/device"
	"quetzal/internal/energy"
	"quetzal/internal/metrics"
	"quetzal/internal/report"
	"quetzal/internal/sim"
)

// The studies in this file go beyond the paper's figures: they exercise the
// extensions DESIGN.md lists (variable execution costs — the paper's §8
// future work —, checkpoint policies for the intermittent substrate, and a
// third MCU) so the design decisions have measurable ablations.

// runWith executes a system with extra simulator knobs applied.
func (s Setup) runWith(systemID string, env Environment, mutate func(*sim.Config)) (metrics.Results, error) {
	power, events := s.Traces(env)
	app := s.Profile.PersonDetectionApp()
	ctl, bufCap, err := s.controller(systemID, app, power, events)
	if err != nil {
		return metrics.Results{}, err
	}
	cfg := sim.Config{
		Profile:        s.Profile,
		App:            app,
		Controller:     ctl,
		Power:          power,
		Events:         events,
		Engine:         s.Engine,
		CapturePeriod:  s.capturePeriod(),
		StepDt:         s.StepDt,
		BufferCapacity: bufCap,
		Seed:           s.Seed + 7,
		Environment:    env.Name,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	simulator, err := sim.New(cfg)
	if err != nil {
		return metrics.Results{}, err
	}
	res, err := simulator.Run()
	if err != nil {
		return res, fmt.Errorf("experiments: %s/%s: %w", systemID, env.Name, err)
	}
	res.System = systemID
	return res, nil
}

// RunWithTimeline is Run with a per-second CSV timeline written to w.
func (s Setup) RunWithTimeline(systemID string, env Environment, w io.Writer) (metrics.Results, error) {
	if systemID == SysIdeal {
		return s.ideal(env), nil
	}
	return s.runWith(systemID, env, func(c *sim.Config) { c.Timeline = w })
}

// JitterStudy sweeps execution-latency jitter (the §8 variable-cost
// extension) and contrasts Quetzal with and without its PID controller:
// the controller exists to absorb exactly this kind of prediction error.
func (s Setup) JitterStudy() (*report.Table, error) {
	t := report.New("Extension — variable execution costs (§8 future work, crowded)",
		"jitter", "system", "discarded", "ibo", "reported", "highq")
	for _, jitter := range []float64{0, 0.2, 0.4} {
		for _, id := range []string{SysQuetzal, SysQuetzalNoPID} {
			res, err := s.runWith(id, Crowded, func(c *sim.Config) {
				c.TexeJitterOverride = jitter
			})
			if err != nil {
				return nil, err
			}
			t.AddRow(fmt.Sprintf("%.0f%%", jitter*100), id,
				report.Pct(res.DiscardedFraction()),
				report.Pct(res.IBOFraction()),
				report.N(res.ReportedInteresting()),
				report.Pct(res.HighQualityShare()))
		}
	}
	t.AddNote("the paper assumes consistent t_exe/P_exe and names variable costs as future work")
	return t, nil
}

// CheckpointStudy contrasts the intermittent-computing progress models the
// substrate supports: JIT checkpointing (the paper's), periodic
// checkpointing, and no checkpointing, on a store small enough that tasks
// span charge cycles.
func (s Setup) CheckpointStudy() (*report.Table, error) {
	t := report.New("Extension — checkpoint policy under intermittent power (crowded, 60 mF store)",
		"policy", "system", "discarded", "jobs", "reported", "brownouts", "aborts")
	policies := []sim.CheckpointPolicy{sim.JITCheckpoint, sim.PeriodicCheckpoint, sim.NoCheckpoint}
	for _, policy := range policies {
		for _, id := range []string{SysQuetzal, SysNoAdapt} {
			res, err := s.runWith(id, Crowded, func(c *sim.Config) {
				c.Checkpoint = policy
				c.CheckpointInterval = 0.25 // all tasks run < 1 s; checkpoint within them
				store := energy.DefaultConfig()
				store.Capacitance = 0.06
				c.Store = store
			})
			if err != nil {
				return nil, err
			}
			t.AddRow(policy.String(), id,
				report.Pct(res.DiscardedFraction()),
				report.N(res.JobsCompleted),
				report.N(res.ReportedInteresting()),
				report.N(res.Brownouts),
				report.N(res.JobAborts))
		}
	}
	t.AddNote("JIT preserves progress exactly [61]; no-checkpoint restarts the running task each failure")
	return t, nil
}

// SeedStudy re-runs the headline comparison across independent random
// seeds (traces and classifier draws) and reports the spread — evidence
// that the single-seed figures are not a lucky draw. Runs on the
// event-driven engine: ten paper-scale repetitions cost seconds.
func (s Setup) SeedStudy() (*report.Table, error) {
	t := report.New("Extension — seed robustness (crowded, 10 seeds, event-driven engine)",
		"system", "discarded mean", "min", "max", "ibo mean")
	setup := s
	setup.Engine = sim.EventDriven
	systems := []string{SysNoAdapt, SysAlwaysDeg, SysQuetzal}
	type agg struct{ sum, min, max, ibo float64 }
	for _, id := range systems {
		a := agg{min: 1}
		const n = 10
		for k := 0; k < n; k++ {
			setup.Seed = s.Seed + int64(k)*101
			res, err := setup.Run(id, Crowded)
			if err != nil {
				return nil, err
			}
			d := res.DiscardedFraction()
			a.sum += d
			a.ibo += res.IBOFraction()
			if d < a.min {
				a.min = d
			}
			if d > a.max {
				a.max = d
			}
		}
		t.AddRow(id,
			report.Pct(a.sum/n),
			report.Pct(a.min),
			report.Pct(a.max),
			report.Pct(a.ibo/n))
	}
	t.AddNote("seeds vary both the environment traces and the classifier coin flips")
	return t, nil
}

// BufferStudy sweeps the input-buffer capacity for Quetzal and NoAdapt:
// the paper fixes 10 slots (Table 1); this shows how much memory each
// system needs to reach a given loss rate — Quetzal's IBO avoidance is
// also a memory-provisioning win.
func (s Setup) BufferStudy() (*report.Table, error) {
	t := report.New("Extension — input buffer capacity sweep (crowded)",
		"capacity", "system", "discarded", "ibo", "reported")
	for _, capacity := range []int{2, 4, 6, 10, 16, 32} {
		for _, id := range []string{SysNoAdapt, SysQuetzal} {
			res, err := s.runWith(id, Crowded, func(c *sim.Config) {
				c.BufferCapacity = capacity
			})
			if err != nil {
				return nil, err
			}
			t.AddRow(fmt.Sprintf("%d", capacity), id,
				report.Pct(res.DiscardedFraction()),
				report.Pct(res.IBOFraction()),
				report.N(res.ReportedInteresting()))
		}
	}
	t.AddNote("Table 1 fixes capacity at 10 images; memory is the scarcest resource on these devices")
	return t, nil
}

// LadderStudy runs Quetzal on the four-level degradation ladder
// (Apollo4MultiQuality) and reports how often each quality level actually
// executed per environment — the §4.2 "highest-quality option that avoids
// the IBO" rule made visible.
func (s Setup) LadderStudy() (*report.Table, error) {
	t := report.New("Extension — four-level degradation ladder (Apollo 4 multi-quality)",
		"environment", "discarded", "opt0", "opt1", "opt2", "opt3", "highq")
	setup := s
	setup.Profile = device.Apollo4MultiQuality()
	for _, env := range Environments {
		res, err := setup.Run(SysQuetzal, env)
		if err != nil {
			return nil, err
		}
		t.AddRow(env.Name,
			report.Pct(res.DiscardedFraction()),
			report.N(res.OptionUsage[0]),
			report.N(res.OptionUsage[1]),
			report.N(res.OptionUsage[2]),
			report.N(res.OptionUsage[3]),
			report.Pct(res.HighQualityShare()))
	}
	t.AddNote("opt0 = highest quality; the engine steps down only as far as stability requires (§4.2)")
	return t, nil
}

// MCUStudy runs Quetzal vs NoAdapt on all three device profiles — the two
// from Table 1 plus the STM32G071 — each in its matched environment.
func (s Setup) MCUStudy() (*report.Table, error) {
	t := report.New("Extension — microcontroller versatility (QZ vs NA per platform)",
		"mcu", "system", "discarded", "ibo", "reported", "highq")
	platforms := []struct {
		profile device.Profile
		env     Environment
	}{
		{device.Apollo4(), Crowded},
		{device.STM32G0(), Crowded},
		{device.MSP430(), MSP430Env},
	}
	for _, p := range platforms {
		setup := s
		setup.Profile = p.profile
		for _, id := range []string{SysNoAdapt, SysQuetzal} {
			res, err := setup.Run(id, p.env)
			if err != nil {
				return nil, err
			}
			t.AddRow(p.profile.MCU.Name, id,
				report.Pct(res.DiscardedFraction()),
				report.Pct(res.IBOFraction()),
				report.N(res.ReportedInteresting()),
				report.Pct(res.HighQualityShare()))
		}
	}
	t.AddNote("the STM32G071 is not in the paper's Table 1; included as a third divider-less target")
	return t, nil
}
