package experiments

import (
	"context"
	"fmt"
	"io"

	"quetzal/internal/metrics"
	"quetzal/internal/report"
	"quetzal/internal/sim"
)

// The studies in this file go beyond the paper's figures: they exercise the
// extensions DESIGN.md lists (variable execution costs — the paper's §8
// future work —, checkpoint policies for the intermittent substrate, and a
// third MCU) so the design decisions have measurable ablations. Like the
// figures, each is a declarative run plan resolved through the sweep's
// shared memoizing pool.

// RunWith is Run with an instrumentation hook over the underlying
// sim.Config: the mutate callback attaches sinks (timeline, event log,
// trace exporter, metrics registry) before the run starts. Instrumented
// runs are unkeyable, so they execute directly rather than through a sweep
// pool. Note SysIdeal resolves analytically — no simulator is built, so
// mutate never runs and the sinks stay empty.
func (s Setup) RunWith(ctx context.Context, systemID string, env Environment, mutate func(*sim.Config)) (metrics.Results, error) {
	return s.runContext(ctx, systemID, env, mutate)
}

// RunWithTimeline is Run with a per-second CSV timeline written to w.
func (s Setup) RunWithTimeline(systemID string, env Environment, w io.Writer) (metrics.Results, error) {
	return s.RunWith(context.Background(), systemID, env, func(c *sim.Config) { c.Timeline = w })
}

// JitterStudy sweeps execution-latency jitter (the §8 variable-cost
// extension) and contrasts Quetzal with and without its PID controller:
// the controller exists to absorb exactly this kind of prediction error.
func (sw *Sweep) JitterStudy(ctx context.Context) (*report.Table, error) {
	jitters := []float64{0, 0.2, 0.4}
	systems := []string{SysQuetzal, SysQuetzalNoPID}
	key := func(j float64, id string) RunKey {
		// Zero jitter is exactly the base run: shared with other figures.
		return RunKey{System: id, Env: Crowded, Jitter: j}
	}
	var keys []RunKey
	for _, j := range jitters {
		for _, id := range systems {
			keys = append(keys, key(j, id))
		}
	}
	res, err := sw.Results(ctx, keys)
	if err != nil {
		return nil, err
	}
	t := report.New("Extension — variable execution costs (§8 future work, crowded)",
		"jitter", "system", "discarded", "ibo", "reported", "highq")
	for _, j := range jitters {
		for _, id := range systems {
			r := res[key(j, id)]
			t.AddRow(fmt.Sprintf("%.0f%%", j*100), id,
				report.Pct(r.DiscardedFraction()),
				report.Pct(r.IBOFraction()),
				report.N(r.ReportedInteresting()),
				report.Pct(r.HighQualityShare()))
		}
	}
	t.AddNote("the paper assumes consistent t_exe/P_exe and names variable costs as future work")
	return t, nil
}

// CheckpointStudy contrasts the intermittent-computing progress models the
// substrate supports: JIT checkpointing (the paper's), periodic
// checkpointing, and no checkpointing, on a store small enough that tasks
// span charge cycles.
func (sw *Sweep) CheckpointStudy(ctx context.Context) (*report.Table, error) {
	policies := []sim.CheckpointPolicy{sim.JITCheckpoint, sim.PeriodicCheckpoint, sim.NoCheckpoint}
	systems := []string{SysQuetzal, SysNoAdapt}
	key := func(p sim.CheckpointPolicy, id string) RunKey {
		return RunKey{System: id, Env: Crowded,
			Checkpoint:         p,
			CheckpointInterval: 0.25, // all tasks run < 1 s; checkpoint within them
			StoreCapacitance:   0.06,
		}
	}
	var keys []RunKey
	for _, p := range policies {
		for _, id := range systems {
			keys = append(keys, key(p, id))
		}
	}
	res, err := sw.Results(ctx, keys)
	if err != nil {
		return nil, err
	}
	t := report.New("Extension — checkpoint policy under intermittent power (crowded, 60 mF store)",
		"policy", "system", "discarded", "jobs", "reported", "brownouts", "aborts")
	for _, p := range policies {
		for _, id := range systems {
			r := res[key(p, id)]
			t.AddRow(p.String(), id,
				report.Pct(r.DiscardedFraction()),
				report.N(r.JobsCompleted),
				report.N(r.ReportedInteresting()),
				report.N(r.Brownouts),
				report.N(r.JobAborts))
		}
	}
	t.AddNote("JIT preserves progress exactly [61]; no-checkpoint restarts the running task each failure")
	return t, nil
}

// SeedStudy re-runs the headline comparison across independent random
// seeds (traces and classifier draws) and reports the spread — evidence
// that the single-seed figures are not a lucky draw. Runs on the
// event-driven engine: ten paper-scale repetitions cost seconds.
func (sw *Sweep) SeedStudy(ctx context.Context) (*report.Table, error) {
	const n = 10
	systems := []string{SysNoAdapt, SysAlwaysDeg, SysQuetzal}
	key := func(id string, k int) RunKey {
		return RunKey{System: id, Env: Crowded,
			Seed:   sw.Setup.Seed + int64(k)*101,
			Engine: sim.EventDriven,
		}
	}
	var keys []RunKey
	for _, id := range systems {
		for k := 0; k < n; k++ {
			keys = append(keys, key(id, k))
		}
	}
	res, err := sw.Results(ctx, keys)
	if err != nil {
		return nil, err
	}
	t := report.New("Extension — seed robustness (crowded, 10 seeds, event-driven engine)",
		"system", "discarded mean", "min", "max", "ibo mean")
	for _, id := range systems {
		type agg struct{ sum, min, max, ibo float64 }
		a := agg{min: 1}
		for k := 0; k < n; k++ {
			r := res[key(id, k)]
			d := r.DiscardedFraction()
			a.sum += d
			a.ibo += r.IBOFraction()
			if d < a.min {
				a.min = d
			}
			if d > a.max {
				a.max = d
			}
		}
		t.AddRow(id,
			report.Pct(a.sum/n),
			report.Pct(a.min),
			report.Pct(a.max),
			report.Pct(a.ibo/n))
	}
	t.AddNote("seeds vary both the environment traces and the classifier coin flips")
	return t, nil
}

// BufferStudy sweeps the input-buffer capacity for Quetzal and NoAdapt:
// the paper fixes 10 slots (Table 1); this shows how much memory each
// system needs to reach a given loss rate — Quetzal's IBO avoidance is
// also a memory-provisioning win.
func (sw *Sweep) BufferStudy(ctx context.Context) (*report.Table, error) {
	capacities := []int{2, 4, 6, 10, 16, 32}
	systems := []string{SysNoAdapt, SysQuetzal}
	key := func(capacity int, id string) RunKey {
		return RunKey{System: id, Env: Crowded, BufferCapacity: capacity}
	}
	var keys []RunKey
	for _, c := range capacities {
		for _, id := range systems {
			keys = append(keys, key(c, id))
		}
	}
	res, err := sw.Results(ctx, keys)
	if err != nil {
		return nil, err
	}
	t := report.New("Extension — input buffer capacity sweep (crowded)",
		"capacity", "system", "discarded", "ibo", "reported")
	for _, c := range capacities {
		for _, id := range systems {
			r := res[key(c, id)]
			t.AddRow(fmt.Sprintf("%d", c), id,
				report.Pct(r.DiscardedFraction()),
				report.Pct(r.IBOFraction()),
				report.N(r.ReportedInteresting()))
		}
	}
	t.AddNote("Table 1 fixes capacity at 10 images; memory is the scarcest resource on these devices")
	return t, nil
}

// LadderStudy runs Quetzal on the four-level degradation ladder
// (Apollo4MultiQuality) and reports how often each quality level actually
// executed per environment — the §4.2 "highest-quality option that avoids
// the IBO" rule made visible.
func (sw *Sweep) LadderStudy(ctx context.Context) (*report.Table, error) {
	key := func(env Environment) RunKey {
		return RunKey{System: SysQuetzal, Env: env, Profile: ProfileApollo4MultiQ}
	}
	keys := make([]RunKey, len(Environments))
	for i, env := range Environments {
		keys[i] = key(env)
	}
	res, err := sw.Results(ctx, keys)
	if err != nil {
		return nil, err
	}
	t := report.New("Extension — four-level degradation ladder (Apollo 4 multi-quality)",
		"environment", "discarded", "opt0", "opt1", "opt2", "opt3", "highq")
	for _, env := range Environments {
		r := res[key(env)]
		t.AddRow(env.Name,
			report.Pct(r.DiscardedFraction()),
			report.N(r.OptionUsage[0]),
			report.N(r.OptionUsage[1]),
			report.N(r.OptionUsage[2]),
			report.N(r.OptionUsage[3]),
			report.Pct(r.HighQualityShare()))
	}
	t.AddNote("opt0 = highest quality; the engine steps down only as far as stability requires (§4.2)")
	return t, nil
}

// MCUStudy runs Quetzal vs NoAdapt on all three device profiles — the two
// from Table 1 plus the STM32G071 — each in its matched environment.
func (sw *Sweep) MCUStudy(ctx context.Context) (*report.Table, error) {
	platforms := []struct {
		label   string
		profile string
		env     Environment
	}{
		{"apollo4", ProfileApollo4, Crowded},
		{"stm32g071", ProfileSTM32G0, Crowded},
		{"msp430fr5994", ProfileMSP430, MSP430Env},
	}
	systems := []string{SysNoAdapt, SysQuetzal}
	key := func(profile string, env Environment, id string) RunKey {
		return RunKey{System: id, Env: env, Profile: profile}
	}
	var keys []RunKey
	for _, p := range platforms {
		for _, id := range systems {
			keys = append(keys, key(p.profile, p.env, id))
		}
	}
	res, err := sw.Results(ctx, keys)
	if err != nil {
		return nil, err
	}
	t := report.New("Extension — microcontroller versatility (QZ vs NA per platform)",
		"mcu", "system", "discarded", "ibo", "reported", "highq")
	for _, p := range platforms {
		for _, id := range systems {
			r := res[key(p.profile, p.env, id)]
			t.AddRow(p.label, id,
				report.Pct(r.DiscardedFraction()),
				report.Pct(r.IBOFraction()),
				report.N(r.ReportedInteresting()),
				report.Pct(r.HighQualityShare()))
		}
	}
	t.AddNote("the STM32G071 is not in the paper's Table 1; included as a third divider-less target")
	return t, nil
}

// Serial-API wrappers, mirroring the Fig* wrappers in figures.go.

// JitterStudy sweeps execution-latency jitter (see Sweep.JitterStudy).
func (s Setup) JitterStudy() (*report.Table, error) {
	return NewSweep(s).JitterStudy(context.Background())
}

// CheckpointStudy contrasts checkpoint policies (see Sweep.CheckpointStudy).
func (s Setup) CheckpointStudy() (*report.Table, error) {
	return NewSweep(s).CheckpointStudy(context.Background())
}

// SeedStudy reports the cross-seed spread (see Sweep.SeedStudy).
func (s Setup) SeedStudy() (*report.Table, error) {
	return NewSweep(s).SeedStudy(context.Background())
}

// BufferStudy sweeps the input-buffer capacity (see Sweep.BufferStudy).
func (s Setup) BufferStudy() (*report.Table, error) {
	return NewSweep(s).BufferStudy(context.Background())
}

// LadderStudy runs the four-level degradation ladder (see Sweep.LadderStudy).
func (s Setup) LadderStudy() (*report.Table, error) {
	return NewSweep(s).LadderStudy(context.Background())
}

// MCUStudy runs all three device profiles (see Sweep.MCUStudy).
func (s Setup) MCUStudy() (*report.Table, error) {
	return NewSweep(s).MCUStudy(context.Background())
}
