package experiments

import (
	"context"
	"fmt"

	"quetzal/internal/circuit"
	"quetzal/internal/device"
	"quetzal/internal/metrics"
	"quetzal/internal/report"
)

// Each figure below is a declarative run plan: it enumerates the RunKeys
// it needs, resolves them through the sweep's shared memoizing pool, and
// renders its table from the results map. Runs shared between figures
// (most base system/environment pairs) are simulated once per sweep.
//
// The Setup.Fig* wrappers preserve the original serial API: each builds a
// throwaway sweep and runs the plan on it.

// runAll executes a list of systems in one environment.
func (s Setup) runAll(systems []string, env Environment) (map[string]metrics.Results, error) {
	out := make(map[string]metrics.Results, len(systems))
	for _, id := range systems {
		res, err := s.Run(id, env)
		if err != nil {
			return nil, err
		}
		out[id] = res
	}
	return out, nil
}

// discardRow renders the standard per-system row used by most figures.
func discardRow(t *report.Table, env string, r metrics.Results) {
	t.AddRow(env, r.System,
		report.Pct(r.DiscardedFraction()),
		report.Pct(r.IBOFraction()),
		report.PctOf(float64(r.FalseNegatives), float64(r.InterestingArrivals)),
		report.N(r.ReportedInteresting()),
		report.Pct(r.HighQualityShare()),
		report.N(r.Degradations),
	)
}

func ratio(worse, better float64) float64 {
	if better <= 0 {
		return 0
	}
	return worse / better
}

// gain renders the relative change of got vs base ("+74%"), or "n/a" when
// the base count is zero and the change is unknowable.
func gain(got, base int) string {
	if base == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.0f%%", 100*(float64(got)/float64(base)-1))
}

var discardColumns = []string{"environment", "system", "discarded", "ibo", "falseneg", "reported", "highq", "degraded"}

// Fig2b reproduces the capture-rate degradation study: a NoAdapt system
// with capture periods from 1 to 10 s still misses a large fraction of
// interesting data — now because it never captures it.
func (sw *Sweep) Fig2b(ctx context.Context) (*report.Table, error) {
	periods := []float64{1, 2, 3, 5, 10}
	keys := make([]RunKey, len(periods))
	for i, p := range periods {
		keys[i] = RunKey{System: SysNoAdapt, Env: Crowded, CapturePeriod: p}
	}
	res, err := sw.Results(ctx, keys)
	if err != nil {
		return nil, err
	}
	t := report.New("Fig 2b — reducing capture rate still misses events (NoAdapt, crowded)",
		"capture period (s)", "interesting seen", "coverage vs 1s", "discarded (of seen)", "total missed")
	base := res[keys[0]].InterestingArrivals
	for i, period := range periods {
		r := res[keys[i]]
		// Total missed = the frames a 1 FPS system would have seen but this
		// one either never captured or discarded.
		t.AddRow(fmt.Sprintf("%g", period),
			report.N(r.InterestingArrivals),
			report.PctOf(float64(r.InterestingArrivals), float64(base)),
			report.Pct(r.DiscardedFraction()),
			report.PctOf(float64(base-r.ReportedInteresting()), float64(base)))
	}
	t.AddNote("paper: with less frequent captures the device fails to even capture a large fraction of interesting data")
	return t, nil
}

// Fig3 reproduces the naive-solutions motivation: Ideal, NoAdapt, Always-
// Degrade, CatNap and PZO against Quetzal in the crowded environment.
func (sw *Sweep) Fig3(ctx context.Context) (*report.Table, error) {
	systems := []string{SysIdeal, SysNoAdapt, SysAlwaysDeg, SysCatNap, SysPZO, SysQuetzal}
	res, err := sw.Results(ctx, baseKeys(systems, Crowded))
	if err != nil {
		return nil, err
	}
	at := func(id string) metrics.Results { return res[RunKey{System: id, Env: Crowded}] }
	t := report.New("Fig 3 — naive solutions are ineffective (crowded)", discardColumns...)
	for _, id := range systems {
		discardRow(t, Crowded.Name, at(id))
	}
	na, qz := at(SysNoAdapt), at(SysQuetzal)
	t.AddNote("Quetzal discards %s fewer interesting inputs than NoAdapt (paper: up to 4.2x across envs)",
		report.X(ratio(na.DiscardedFraction(), qz.DiscardedFraction())))
	return t, nil
}

// Fig8 reproduces the end-to-end "hardware" experiment: Quetzal vs NoAdapt
// with 100 events in two sensing environments (paper: 6.4x and 5x fewer
// discards; 74% and 27% more interesting reports).
func (sw *Sweep) Fig8(ctx context.Context) (*report.Table, error) {
	envs := []Environment{MoreCrowded, Crowded}
	systems := []string{SysNoAdapt, SysQuetzal}
	key := func(id string, env Environment) RunKey {
		return RunKey{System: id, Env: env, NumEvents: 100}
	}
	var keys []RunKey
	for _, env := range envs {
		for _, id := range systems {
			keys = append(keys, key(id, env))
		}
	}
	res, err := sw.Results(ctx, keys)
	if err != nil {
		return nil, err
	}
	t := report.New("Fig 8 — end-to-end experiment, Quetzal vs NoAdapt (100 events)", discardColumns...)
	for _, env := range envs {
		na, qz := res[key(SysNoAdapt, env)], res[key(SysQuetzal, env)]
		discardRow(t, env.Name, na)
		discardRow(t, env.Name, qz)
		t.AddNote("%s: QZ discards %s fewer; reports %s more interesting inputs",
			env.Name,
			report.X(ratio(na.DiscardedFraction(), qz.DiscardedFraction())),
			gain(qz.ReportedInteresting(), na.ReportedInteresting()))
	}
	return t, nil
}

// Fig9 reproduces the headline comparison: Quetzal vs NoAdapt, AlwaysDegrade
// and the infinite-buffer Ideal across the three sensing environments.
func (sw *Sweep) Fig9(ctx context.Context) (*report.Table, error) {
	systems := []string{SysIdeal, SysNoAdapt, SysAlwaysDeg, SysQuetzal}
	res, err := sw.Results(ctx, baseKeys(systems, Environments...))
	if err != nil {
		return nil, err
	}
	t := report.New("Fig 9 — Quetzal vs NoAdapt / AlwaysDegrade / Ideal", discardColumns...)
	for _, env := range Environments {
		at := func(id string) metrics.Results { return res[RunKey{System: id, Env: env}] }
		for _, id := range systems {
			discardRow(t, env.Name, at(id))
		}
		na, ad, qz, ideal := at(SysNoAdapt), at(SysAlwaysDeg), at(SysQuetzal), at(SysIdeal)
		t.AddNote("%s: QZ vs NA %s fewer discards (paper 2.9–4.2x); vs AD %s (paper 2.2–4.2x); reports %s of ideal (paper 92–98%%)",
			env.Name,
			report.X(ratio(na.DiscardedFraction(), qz.DiscardedFraction())),
			report.X(ratio(ad.DiscardedFraction(), qz.DiscardedFraction())),
			report.PctOf(float64(qz.ReportedInteresting()), float64(ideal.ReportedInteresting())))
	}
	return t, nil
}

// Fig10 reproduces the prior-work comparison: CatNap, PZO and the
// unimplementable PZI oracle vs Quetzal.
func (sw *Sweep) Fig10(ctx context.Context) (*report.Table, error) {
	systems := []string{SysCatNap, SysPZO, SysPZI, SysQuetzal}
	res, err := sw.Results(ctx, baseKeys(systems, Environments...))
	if err != nil {
		return nil, err
	}
	t := report.New("Fig 10 — Quetzal vs prior work (CatNap, Protean/Zygarde)", discardColumns...)
	for _, env := range Environments {
		at := func(id string) metrics.Results { return res[RunKey{System: id, Env: env}] }
		for _, id := range systems {
			discardRow(t, env.Name, at(id))
		}
		cn, pzi, qz := at(SysCatNap), at(SysPZI), at(SysQuetzal)
		t.AddNote("%s: QZ vs CatNap %s fewer discards (paper 2.2–4.3x); vs PZI %s (paper 1.9–3.1x)",
			env.Name,
			report.X(ratio(cn.DiscardedFraction(), qz.DiscardedFraction())),
			report.X(ratio(pzi.DiscardedFraction(), qz.DiscardedFraction())))
	}
	return t, nil
}

// Fig11 reproduces the fixed-buffer-threshold comparison at 25/50/75 %.
func (sw *Sweep) Fig11(ctx context.Context) (*report.Table, error) {
	systems := []string{FixedThresholdID(0.25), FixedThresholdID(0.50), FixedThresholdID(0.75), SysQuetzal}
	res, err := sw.Results(ctx, baseKeys(systems, Environments...))
	if err != nil {
		return nil, err
	}
	t := report.New("Fig 11a/b — Quetzal vs fixed buffer thresholds", discardColumns...)
	for _, env := range Environments {
		at := func(id string) metrics.Results { return res[RunKey{System: id, Env: env}] }
		for _, id := range systems {
			discardRow(t, env.Name, at(id))
		}
		qz := at(SysQuetzal)
		gm := 1.0
		for _, id := range systems[:3] {
			gm *= ratio(at(id).DiscardedFraction(), qz.DiscardedFraction())
		}
		gm = cbrt(gm)
		t.AddNote("%s: QZ discards %s fewer than the fixed thresholds (geomean; paper 1.15–2.2x)",
			env.Name, report.X(gm))
	}
	return t, nil
}

func cbrt(v float64) float64 {
	if v <= 0 {
		return 0
	}
	x := v
	for i := 0; i < 64; i++ {
		x = (2*x + v/(x*x)) / 3
	}
	return x
}

// Fig11c sweeps the fixed threshold across its whole range in the crowded
// environment; Quetzal must win at every point.
func (sw *Sweep) Fig11c(ctx context.Context) (*report.Table, error) {
	pcts := []int{10, 25, 40, 50, 60, 75, 90, 100}
	systems := make([]string, 0, len(pcts)+1)
	for _, pct := range pcts {
		systems = append(systems, fmt.Sprintf("fixed-%d", pct))
	}
	systems = append(systems, SysQuetzal)
	res, err := sw.Results(ctx, baseKeys(systems, Crowded))
	if err != nil {
		return nil, err
	}
	t := report.New("Fig 11c — full threshold sweep (crowded)",
		"threshold", "discarded", "ibo", "falseneg", "highq-share")
	row := func(label string, r metrics.Results) {
		t.AddRow(label,
			report.Pct(r.DiscardedFraction()),
			report.Pct(r.IBOFraction()),
			report.PctOf(float64(r.FalseNegatives), float64(r.InterestingArrivals)),
			report.Pct(r.HighQualityShare()))
	}
	for i, pct := range pcts {
		row(fmt.Sprintf("%d%%", pct), res[RunKey{System: systems[i], Env: Crowded}])
	}
	row("quetzal", res[RunKey{System: SysQuetzal, Env: Crowded}])
	t.AddNote("paper: Quetzal outperforms fixed-threshold systems no matter what threshold is used")
	return t, nil
}

// Fig12 reproduces the scheduler sensitivity study: Quetzal's IBO engine
// paired with Energy-aware SJF vs Avg-S_e2e, FCFS, LCFS and capture-order.
func (sw *Sweep) Fig12(ctx context.Context) (*report.Table, error) {
	systems := []string{SysQuetzal, SysQuetzalAvg, SysQuetzalFCFS, SysQuetzalLCFS, SysQuetzalCapt}
	res, err := sw.Results(ctx, baseKeys(systems, Environments...))
	if err != nil {
		return nil, err
	}
	t := report.New("Fig 12 — scheduling policy sensitivity (all with IBO engine)", discardColumns...)
	for _, env := range Environments {
		at := func(id string) metrics.Results { return res[RunKey{System: id, Env: env}] }
		for _, id := range systems {
			discardRow(t, env.Name, at(id))
		}
		qz := at(SysQuetzal)
		t.AddNote("%s: energy-aware SJF vs Avg-Se2e %s (paper 2.2–4.2x), vs FCFS %s (1.8–3x), vs LCFS %s (1.5–2.7x), vs capture-order %s (1.4–2.6x)",
			env.Name,
			report.X(ratio(at(SysQuetzalAvg).DiscardedFraction(), qz.DiscardedFraction())),
			report.X(ratio(at(SysQuetzalFCFS).DiscardedFraction(), qz.DiscardedFraction())),
			report.X(ratio(at(SysQuetzalLCFS).DiscardedFraction(), qz.DiscardedFraction())),
			report.X(ratio(at(SysQuetzalCapt).DiscardedFraction(), qz.DiscardedFraction())))
	}
	return t, nil
}

// Fig13 reproduces the MSP430 versatility study: Quetzal and all baselines
// on the MSP430FR5994 profile (Int-16 vs Int-8 LeNet) in the crowded
// environment.
func (sw *Sweep) Fig13(ctx context.Context) (*report.Table, error) {
	systems := []string{SysNoAdapt, SysAlwaysDeg, SysCatNap, FixedThresholdID(0.75), SysPZO, SysPZI, SysQuetzal}
	key := func(id string) RunKey {
		return RunKey{System: id, Env: MSP430Env, Profile: ProfileMSP430}
	}
	keys := make([]RunKey, len(systems))
	for i, id := range systems {
		keys[i] = key(id)
	}
	res, err := sw.Results(ctx, keys)
	if err != nil {
		return nil, err
	}
	t := report.New("Fig 13 — MSP430FR5994 versatility (10 s events, Table 1)", discardColumns...)
	for _, id := range systems {
		discardRow(t, MSP430Env.Name, res[key(id)])
	}
	na, qz := res[key(SysNoAdapt)], res[key(SysQuetzal)]
	t.AddNote("QZ vs NA: %s fewer discards (paper 2.8x on MSP430)",
		report.X(ratio(na.DiscardedFraction(), qz.DiscardedFraction())))
	return t, nil
}

// Fig14 reproduces the parameter sensitivity sweeps in the more-crowded
// environment: harvester cell count, arrival window and task window.
func (sw *Sweep) Fig14(ctx context.Context) ([]*report.Table, error) {
	env := MoreCrowded

	sweepTable := func(title, col string, values []int, key func(int) RunKey) (*report.Table, error) {
		keys := make([]RunKey, len(values))
		for i, v := range values {
			keys[i] = key(v)
		}
		res, err := sw.Results(ctx, keys)
		if err != nil {
			return nil, err
		}
		t := report.New(title, col, "discarded", "ibo", "reported", "highq-share")
		for i, v := range values {
			r := res[keys[i]]
			t.AddRow(report.N(v),
				report.Pct(r.DiscardedFraction()),
				report.Pct(r.IBOFraction()),
				report.N(r.ReportedInteresting()),
				report.Pct(r.HighQualityShare()))
		}
		return t, nil
	}

	cells, err := sweepTable("Fig 14a — harvester cell count (more-crowded)", "cells",
		[]int{2, 4, 6, 8, 10}, func(n int) RunKey {
			return RunKey{System: SysQuetzal, Env: env, Cells: n}
		})
	if err != nil {
		return nil, err
	}
	cells.AddNote("vertical line in the paper: 6 cells (primary experiments)")

	aw, err := sweepTable("Fig 14b — <arrival-window> (more-crowded)", "arrival-window",
		[]int{32, 64, 128, 256, 512}, func(w int) RunKey {
			return RunKey{System: SysQuetzal, Env: env, ArrivalWindow: w}
		})
	if err != nil {
		return nil, err
	}
	aw.AddNote("paper default: 256")

	tw, err := sweepTable("Fig 14c — <task-window> (more-crowded)", "task-window",
		[]int{16, 32, 64, 128}, func(w int) RunKey {
			return RunKey{System: SysQuetzal, Env: env, TaskWindow: w}
		})
	if err != nil {
		return nil, err
	}
	tw.AddNote("paper default: 64")

	return []*report.Table{cells, aw, tw}, nil
}

// Serial-API wrappers: each runs the figure's plan on a throwaway sweep.

// Fig2b reproduces the capture-rate degradation study (see Sweep.Fig2b).
func (s Setup) Fig2b() (*report.Table, error) { return NewSweep(s).Fig2b(context.Background()) }

// Fig3 reproduces the naive-solutions motivation (see Sweep.Fig3).
func (s Setup) Fig3() (*report.Table, error) { return NewSweep(s).Fig3(context.Background()) }

// Fig8 reproduces the end-to-end experiment (see Sweep.Fig8).
func (s Setup) Fig8() (*report.Table, error) { return NewSweep(s).Fig8(context.Background()) }

// Fig9 reproduces the headline comparison (see Sweep.Fig9).
func (s Setup) Fig9() (*report.Table, error) { return NewSweep(s).Fig9(context.Background()) }

// Fig10 reproduces the prior-work comparison (see Sweep.Fig10).
func (s Setup) Fig10() (*report.Table, error) { return NewSweep(s).Fig10(context.Background()) }

// Fig11 reproduces the fixed-threshold comparison (see Sweep.Fig11).
func (s Setup) Fig11() (*report.Table, error) { return NewSweep(s).Fig11(context.Background()) }

// Fig11c sweeps the fixed threshold across its range (see Sweep.Fig11c).
func (s Setup) Fig11c() (*report.Table, error) { return NewSweep(s).Fig11c(context.Background()) }

// Fig12 reproduces the scheduler sensitivity study (see Sweep.Fig12).
func (s Setup) Fig12() (*report.Table, error) { return NewSweep(s).Fig12(context.Background()) }

// Fig13 reproduces the MSP430 versatility study (see Sweep.Fig13).
func (s Setup) Fig13() (*report.Table, error) { return NewSweep(s).Fig13(context.Background()) }

// Fig14 reproduces the parameter sensitivity sweeps (see Sweep.Fig14).
func (s Setup) Fig14() ([]*report.Table, error) { return NewSweep(s).Fig14(context.Background()) }

// CircuitStudy reproduces the §5.1 hardware-module characterisation: the
// P_exe/P_in approximation error across temperature and the per-ratio
// cost comparison against division on both MCUs.
func CircuitStudy() []*report.Table {
	errT := report.New("§5.1 — hardware module ratio error (V_ADCMax=0.6 V)",
		"temp (°C)", "mean error", "max error", "exponent factor")
	for _, tempC := range []float64{25, 30, 35, 40, 42, 45, 50} {
		m := circuit.New(circuit.DefaultConfig())
		m.SetTemperature(tempC)
		var sum, max float64
		n := 0
		for pin := 1e-3; pin <= 0.2; pin *= 1.17 {
			for r := 1.05; r <= 4.0; r *= 1.13 {
				d1 := m.CodeForPower(pin)
				d2 := m.CodeForPower(pin * r)
				if d1 == 0 || d2 >= 255 {
					continue
				}
				got := circuit.HardwareRatio(d1, d2)
				e := abs(got-r) / r
				sum += e
				n++
				if e > max {
					max = e
				}
			}
		}
		errT.AddRow(report.F(tempC), report.Pct(sum/float64(n)), report.Pct(max), report.F(m.ExponentFactor()))
	}
	errT.AddNote("paper: ≤5.5%% error for 25–50 °C (average-case; worst case bounded by ±1.5 LSB quantisation)")

	cost := report.New("§5.1 — per-ratio computation cost",
		"mcu", "path", "cycles", "time (ns)", "energy (nJ)")
	for _, mcu := range []device.MCU{device.MSP430MCU(), device.Apollo4MCU()} {
		divName := "sw division"
		if mcu.HasDivider {
			divName = "hw divider"
		}
		cost.AddRow(mcu.Name, "quetzal module",
			report.F(mcu.ModuleRatioTime*mcu.ClockHz),
			report.F(mcu.ModuleRatioTime*1e9),
			report.F(mcu.ModuleRatioEnergy*1e9))
		cost.AddRow(mcu.Name, divName,
			report.F(mcu.DivRatioTime*mcu.ClockHz),
			report.F(mcu.DivRatioTime*1e9),
			report.F(mcu.DivRatioEnergy*1e9))
	}
	cost.AddNote("paper: module saves 92.5%% ratio energy on MSP430, 62%% on Apollo 4")
	return []*report.Table{errT, cost}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Table1 renders the experiment configuration, mirroring the paper's
// Table 1.
func (s Setup) Table1() *report.Table {
	t := report.New("Table 1 — experiment details", "component", "values")
	p := s.Profile
	t.AddRow("compute", fmt.Sprintf("%s (input buffer = %d imgs)", p.MCU.Name, p.BufferCapacity))
	t.AddRow("capture rate", fmt.Sprintf("%g FPS", 1/s.capturePeriod()))
	t.AddRow("environments", "more-crowded: 600 s, crowded: 60 s, less-crowded: 20 s (max interesting duration)")
	t.AddRow("high-q ml", fmt.Sprintf("%s (%.2gs, %.2gmW, FN %.0f%%)", p.MLOptions[0].Name,
		p.MLOptions[0].Texe, p.MLOptions[0].Pexe*1e3, p.MLOptions[0].FalseNegative*100))
	t.AddRow("low-q ml", fmt.Sprintf("%s (%.2gs, %.2gmW, FN %.0f%%)", p.MLOptions[1].Name,
		p.MLOptions[1].Texe, p.MLOptions[1].Pexe*1e3, p.MLOptions[1].FalseNegative*100))
	t.AddRow("high-q radio", fmt.Sprintf("%s (%.2gs, %.2gmW)", p.RadioOptions[0].Name,
		p.RadioOptions[0].Texe, p.RadioOptions[0].Pexe*1e3))
	t.AddRow("low-q radio", fmt.Sprintf("%s (%.2gs, %.2gmW)", p.RadioOptions[1].Name,
		p.RadioOptions[1].Texe, p.RadioOptions[1].Pexe*1e3))
	t.AddRow("quetzal params", "task-window=64, arrival-window=256, PID: Kp=5e-6 Ki=1e-6 Kd=1")
	t.AddRow("harvester", fmt.Sprintf("%d cells, 250 mW reference peak, BQ25504-style store (33 mF)", s.Cells))
	return t
}
