// Package experiments reproduces every table and figure in the paper's
// evaluation (§6–§7). Each Fig* function runs the systems a figure compares,
// under the sensing environments it uses, and renders the same rows/series
// the paper reports. DESIGN.md carries the experiment index; EXPERIMENTS.md
// records paper-vs-measured numbers produced by this package.
package experiments

import (
	"context"
	"fmt"

	"quetzal/internal/core"
	"quetzal/internal/device"
	"quetzal/internal/faults"
	"quetzal/internal/metrics"
	"quetzal/internal/model"
	"quetzal/internal/policy"
	"quetzal/internal/sim"
	"quetzal/internal/trace"
)

// Environment is one sensing environment from Table 1, defined by the cap
// on event durations ("Maximum 'Interesting' Duration"). Faults, when
// non-zero, layers a hardware-realism scenario (internal/faults) over every
// run in the environment; the struct stays comparable so environments keep
// working as RunKey components.
type Environment struct {
	Name        string
	MaxDuration float64 // seconds
	Faults      faults.Spec
}

// The paper's three sensing environments (Table 1).
var (
	MoreCrowded = Environment{Name: "more-crowded", MaxDuration: 600}
	Crowded     = Environment{Name: "crowded", MaxDuration: 60}
	LessCrowded = Environment{Name: "less-crowded", MaxDuration: 20}

	// MSP430Env is the separate environment Table 1 specifies for the
	// MSP430 experiments: maximum interesting duration 10 s, matching the
	// slower platform's processing rate.
	MSP430Env = Environment{Name: "msp430-crowded", MaxDuration: 10}

	// Surge and Marathon extend the league beyond Table 1: Surge caps
	// events at 5 s (dense bursts of short events — maximum scheduling
	// pressure), Marathon at 240 s (long occupations — sustained drain).
	Surge    = Environment{Name: "surge", MaxDuration: 5}
	Marathon = Environment{Name: "marathon", MaxDuration: 240}

	// Faulty is the crowded environment on unreliable hardware: every task
	// completion faults until a k=2 budget is spent (so EnSuRe's k-fault
	// reservation has something to reserve against), the harvester drops out
	// for 10 s every 2 minutes, and every controller ADC read costs the
	// datasheet measurement energy. Policies that never re-execute or
	// over-measure separate from the rest of the league here.
	Faulty = Environment{Name: "faulty", MaxDuration: 60, Faults: faults.Spec{
		TaskFaultPct:   100,
		TaskFaultLimit: 2,
		DropoutStartS:  30,
		DropoutDurS:    10,
		DropoutPeriodS: 120,
		MeasEnergyNJ:   250,
		MeasLatencyUS:  20,
	}}

	// Environments orders the three from most to least crowded, the order
	// Figures 9–12 sweep them in.
	Environments = []Environment{MoreCrowded, Crowded, LessCrowded}

	// LeagueEnvironments is the seven-environment gauntlet the policy league
	// table runs: the paper's three, the MSP430 one, the two extremes, and
	// the hardware-realism scenario.
	LeagueEnvironments = []Environment{MoreCrowded, Crowded, LessCrowded, MSP430Env, Surge, Marathon, Faulty}
)

// DatasheetMaxWatts is the 6-cell harvester's datasheet maximum output —
// the oracle-free threshold source the PZO baseline uses (§6.1). Real
// traces peak well below it.
const DatasheetMaxWatts = policy.DefaultDatasheetMaxWatts

// ReferenceCells is the harvester cell count of the primary experiments.
const ReferenceCells = 6

// Setup carries the configuration shared by all experiments.
type Setup struct {
	Profile   device.Profile
	NumEvents int   // events per run (paper: 1000 simulated, 100 hardware)
	Seed      int64 // trace + classifier seed
	Cells     int   // harvester cells (Fig 14 sweeps this)

	// Quetzal parameters (0 → paper defaults from Table 1).
	TaskWindow    int
	ArrivalWindow int

	CapturePeriod float64 // seconds; 0 → 1 FPS
	StepDt        float64 // 0 → 1 ms

	// Engine selects the simulator's time-advance mechanism; the default
	// FixedIncrement is the paper-faithful reference, EventDriven runs
	// ~50–200× faster with statistically matching results.
	Engine sim.EngineKind

	// Faults, when enabled, replaces every environment's realism spec for
	// the whole sweep (the -faults/-temp/-meascost flags); a per-key spec
	// (RunKey.Faults) still wins over it.
	Faults faults.Spec
}

// DefaultSetup returns the Apollo 4 configuration the primary experiments
// use. NumEvents defaults to 300 to keep a full harness run tractable; pass
// -events 1000 to cmd/experiments for the paper-scale runs.
func DefaultSetup() Setup {
	return Setup{
		Profile:   device.Apollo4(),
		NumEvents: 300,
		Seed:      42,
		Cells:     ReferenceCells,
	}
}

func (s Setup) capturePeriod() float64 {
	if s.CapturePeriod > 0 {
		return s.CapturePeriod
	}
	return 1
}

// Traces builds the deterministic power and event traces for an environment.
func (s Setup) Traces(env Environment) (trace.PowerTrace, *trace.EventTrace) {
	events := trace.GenerateEvents(trace.DefaultEventConfig(s.NumEvents, env.MaxDuration, s.Seed))
	duration := events.Duration() + 120
	solar := trace.GenerateSolar(trace.DefaultSolarConfig(duration, s.Seed+1))
	cells := s.Cells
	if cells <= 0 {
		cells = ReferenceCells
	}
	if cells == ReferenceCells {
		return solar, events
	}
	return trace.Scaled{Base: solar, Factor: float64(cells) / ReferenceCells}, events
}

// System identifiers accepted by Run — aliases of the internal/policy
// registry names, kept so figure code reads as it always did.
const (
	SysQuetzal      = policy.Quetzal
	SysQuetzalDiv   = policy.QuetzalDiv
	SysQuetzalAvg   = policy.QuetzalAvg
	SysQuetzalFCFS  = policy.QuetzalFCFS
	SysQuetzalLCFS  = policy.QuetzalLCFS
	SysQuetzalCapt  = policy.QuetzalCapture
	SysQuetzalNoPID = policy.QuetzalNoPID
	SysQuetzalNoIBO = policy.QuetzalNoIBO
	SysNoAdapt      = policy.NoAdapt
	SysAlwaysDeg    = policy.AlwaysDegrade
	SysCatNap       = policy.CatNap
	SysPZO          = policy.PZO
	SysPZI          = policy.PZI
	SysIdeal        = policy.Ideal
	SysMDP          = policy.MDPName
	SysEnSuRe       = policy.EnSuReName
	SysInterweave   = policy.InterweaveName
)

// FixedThresholdID names the fixed-buffer-threshold system at the given
// occupancy fraction (e.g. 0.25 → "fixed-25").
func FixedThresholdID(frac float64) string {
	return policy.FixedThresholdID(frac)
}

// Run executes one system in one environment and returns its results.
func (s Setup) Run(systemID string, env Environment) (metrics.Results, error) {
	return s.RunContext(context.Background(), systemID, env)
}

// RunContext is Run with cooperative cancellation: the simulation polls
// ctx and abandons the run when it is done, so sweeps support ctrl-C and
// per-run timeouts.
func (s Setup) RunContext(ctx context.Context, systemID string, env Environment) (metrics.Results, error) {
	return s.runContext(ctx, systemID, env, nil)
}

// runContext executes one system in one environment, with optional
// simulator-level overrides applied after the Setup-derived configuration
// is assembled. It is the single execution path every figure and study
// funnels through.
func (s Setup) runContext(ctx context.Context, systemID string, env Environment, mutate func(*sim.Config)) (metrics.Results, error) {
	if systemID == SysIdeal {
		return s.ideal(env), nil
	}
	power, events := s.Traces(env)
	app := s.Profile.PersonDetectionApp()

	ctl, bufCap, err := s.Controller(systemID, app, power, events)
	if err != nil {
		return metrics.Results{}, err
	}

	cfg := sim.Config{
		Profile:        s.Profile,
		App:            app,
		Controller:     ctl,
		Power:          power,
		Events:         events,
		Engine:         s.Engine,
		CapturePeriod:  s.capturePeriod(),
		StepDt:         s.StepDt,
		BufferCapacity: bufCap,
		Seed:           s.Seed + 7,
		Environment:    env.Name,
		Faults:         env.Faults,
	}
	if s.Faults.Enabled() {
		cfg.Faults = s.Faults
	}
	if mutate != nil {
		mutate(&cfg)
	}
	simulator, err := sim.New(cfg)
	if err != nil {
		return metrics.Results{}, err
	}
	res, err := simulator.RunContext(ctx)
	if err != nil {
		return res, fmt.Errorf("experiments: %s/%s: %w", systemID, env.Name, err)
	}
	res.System = systemID
	return res, nil
}

// ideal computes the Ideal baseline analytically: "an infinite input buffer
// that never overflows, only discarding interesting inputs due to ML model
// misclassifications" (§2.3). With no buffer limit and no deadline, every
// arrival is eventually processed at the highest quality, so the outcome is
// fully determined by the arrival counts and the high-quality classifier's
// error rates.
func (s Setup) ideal(env Environment) metrics.Results {
	_, events := s.Traces(env)
	period := s.capturePeriod()
	duration := events.Duration() + 120
	captures := int(duration / period)
	arrivals, interesting := 0, 0
	for k := 0; k < captures; k++ {
		t := float64(k) * period
		ev, ok := events.ActiveAt(t)
		if !ok {
			continue
		}
		arrivals++
		if ev.Interesting {
			interesting++
		}
	}
	hq := s.Profile.MLOptions[0]
	fn := int(float64(interesting)*hq.FalseNegative + 0.5)
	fp := int(float64(arrivals-interesting)*hq.FalsePositive + 0.5)
	return metrics.Results{
		System:              SysIdeal,
		Environment:         env.Name,
		SimSeconds:          duration,
		Captures:            captures,
		Arrivals:            arrivals,
		InterestingArrivals: interesting,
		FalseNegatives:      fn,
		TruePositives:       interesting - fn,
		TrueNegatives:       arrivals - interesting - fp,
		FalsePositives:      fp,
		HighQInteresting:    interesting - fn,
		HighQUninteresting:  fp,
		JobsCompleted:       arrivals + (interesting - fn) + fp,
	}
}

// Controller builds the controller for a system id through the policy
// registry (internal/policy) — the single source of policy names. The
// returned buffer capacity is 0 (profile default) except for systems that
// demand a specific one (Ideal). Exported so the fleet layer can assemble
// per-device configurations through the same registry the figures use.
func (s Setup) Controller(systemID string, app *model.App, power trace.PowerTrace, events *trace.EventTrace) (core.Controller, int, error) {
	ctl, bufCap, err := policy.Build(systemID, policy.Context{
		App:           app,
		Power:         power,
		Events:        events,
		CapturePeriod: s.capturePeriod(),
		TaskWindow:    s.TaskWindow,
		ArrivalWindow: s.ArrivalWindow,
	})
	if err != nil {
		return nil, 0, fmt.Errorf("experiments: %w", err)
	}
	return ctl, bufCap, nil
}
