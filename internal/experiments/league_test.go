package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"quetzal/internal/policy"
	"quetzal/internal/runner"
	"quetzal/internal/sim"
)

func leagueSetup() Setup {
	s := DefaultSetup()
	s.NumEvents = 15
	s.Engine = sim.EventDriven
	return s
}

// TestLeaguePlan pins the plan's shape and order: environment-major over
// the seven-environment gauntlet, all league policies present.
func TestLeaguePlan(t *testing.T) {
	keys := LeaguePlan(nil, nil)
	want := len(LeaguePolicies) * len(LeagueEnvironments)
	if len(keys) != want {
		t.Fatalf("LeaguePlan: %d keys, want %d", len(keys), want)
	}
	if len(LeaguePolicies) < 6 {
		t.Fatalf("league has %d policies, want at least 6", len(LeaguePolicies))
	}
	if len(LeagueEnvironments) != 7 {
		t.Fatalf("league has %d environments, want 7", len(LeagueEnvironments))
	}
	if last := LeagueEnvironments[len(LeagueEnvironments)-1]; last.Name != "faulty" || !last.Faults.Enabled() {
		t.Fatalf("last league environment = %+v, want the faulty realism environment", last)
	}
	for i, k := range keys {
		wantEnv := LeagueEnvironments[i/len(LeaguePolicies)]
		wantSys := LeaguePolicies[i%len(LeaguePolicies)]
		if k.Env != wantEnv || k.System != wantSys {
			t.Fatalf("keys[%d] = %s, want %s/%s", i, k, wantSys, wantEnv.Name)
		}
		if !policy.Known(k.System) {
			t.Fatalf("league policy %q is not registered", k.System)
		}
	}
}

// TestLeagueDeterministicAcrossWorkers pins the acceptance bar: the rendered
// league bytes must be identical between a serial sweep, a parallel sweep,
// and a rerun — per-run seeding plus ordered collection make worker count
// invisible.
func TestLeagueDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("league sweep is seconds of simulation; skipped under -short")
	}
	policies := []string{SysQuetzal, SysNoAdapt, SysAlwaysDeg, SysCatNap, SysPZO, SysMDP, SysEnSuRe, SysInterweave}
	render := func(workers int) string {
		sw := NewSweepConfig(leagueSetup(), runner.Config[RunKey]{Workers: workers})
		table, err := sw.League(context.Background(), policies)
		if err != nil {
			t.Fatalf("League(workers=%d): %v", workers, err)
		}
		var buf bytes.Buffer
		if err := table.Render(&buf); err != nil {
			t.Fatalf("Render: %v", err)
		}
		return buf.String()
	}
	serial := render(1)
	parallel := render(8)
	rerun := render(8)
	if serial != parallel {
		t.Fatalf("league differs between 1 and 8 workers:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
	if parallel != rerun {
		t.Fatal("league differs between identical reruns")
	}
	for _, env := range LeagueEnvironments {
		if !strings.Contains(serial, env.Name) {
			t.Fatalf("league output missing environment %q", env.Name)
		}
	}
	for _, p := range policies {
		if !strings.Contains(serial, p) {
			t.Fatalf("league output missing policy %q", p)
		}
	}
}

// TestSetupControllerRejects mirrors TestLookupRejects at the experiments
// seam: Setup.Controller is now a registry lookup, so the same strict
// spellings must fail with the experiments error prefix.
func TestSetupControllerRejects(t *testing.T) {
	s := leagueSetup()
	power, events := s.Traces(Crowded)
	app := s.Profile.PersonDetectionApp()
	for _, id := range []string{"", "magic", "quetzal", "QZ", "fixed-0", "fixed-101", "fixed-007", "fixed-25x"} {
		if _, _, err := s.Controller(id, app, power, events); err == nil {
			t.Errorf("Controller(%q) succeeded, want error", id)
		} else if !strings.Contains(err.Error(), "unknown policy") {
			t.Errorf("Controller(%q) error = %v, want 'unknown policy'", id, err)
		}
	}
	for _, id := range append(policy.Names(), "fixed-25") {
		if _, _, err := s.Controller(id, app, power, events); err != nil {
			t.Errorf("Controller(%q): %v", id, err)
		}
	}
}

// TestKeySpecPolicyAlias pins the wire alias: policy and system are the
// same dimension, and a request naming both with different values is
// ambiguous, not silently resolved.
func TestKeySpecPolicyAlias(t *testing.T) {
	viaSystem, err := KeySpec{System: SysMDP, Env: "crowded"}.RunKey()
	if err != nil {
		t.Fatalf("system form: %v", err)
	}
	viaPolicy, err := KeySpec{Policy: SysMDP, Env: "crowded"}.RunKey()
	if err != nil {
		t.Fatalf("policy form: %v", err)
	}
	if viaSystem != viaPolicy {
		t.Fatalf("alias resolved to a different key:\n%v\n%v", viaSystem, viaPolicy)
	}
	both, err := KeySpec{System: SysMDP, Policy: SysMDP, Env: "crowded"}.RunKey()
	if err != nil {
		t.Fatalf("agreeing pair: %v", err)
	}
	if both != viaSystem {
		t.Fatal("agreeing pair resolved differently")
	}
	if _, err := (KeySpec{System: SysQuetzal, Policy: SysMDP, Env: "crowded"}).RunKey(); err == nil ||
		!strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("conflicting pair: err = %v, want 'ambiguous'", err)
	}
}

// TestFleetSpecPolicyAlias pins the same contract on the fleet gate.
func TestFleetSpecPolicyAlias(t *testing.T) {
	viaSystem, err := FleetSpec{Devices: 8, System: SysEnSuRe, Env: "crowded"}.Plan()
	if err != nil {
		t.Fatalf("system form: %v", err)
	}
	viaPolicy, err := FleetSpec{Devices: 8, Policy: SysEnSuRe, Env: "crowded"}.Plan()
	if err != nil {
		t.Fatalf("policy form: %v", err)
	}
	if viaSystem != viaPolicy {
		t.Fatalf("alias resolved to a different plan:\n%v\n%v", viaSystem, viaPolicy)
	}
	if _, err := (FleetSpec{Devices: 8, System: SysQuetzal, Policy: SysEnSuRe, Env: "crowded"}).Plan(); err == nil ||
		!strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("conflicting pair: err = %v, want 'ambiguous'", err)
	}
}

// TestLeagueEnvironmentsResolvable pins that every league environment is
// reachable through the wire-level EnvByName gate.
func TestLeagueEnvironmentsResolvable(t *testing.T) {
	for _, env := range LeagueEnvironments {
		got, ok := EnvByName(env.Name)
		if !ok || got != env {
			t.Fatalf("EnvByName(%q) = %+v, %v", env.Name, got, ok)
		}
	}
}
