package experiments

import (
	"bytes"
	"strings"
	"testing"

	"quetzal/internal/device"
	"quetzal/internal/report"
	"quetzal/internal/sim"
)

// smallSetup keeps runs fast: 60 events is enough to exercise every code
// path and preserve the coarse orderings the assertions check.
func smallSetup() Setup {
	s := DefaultSetup()
	s.NumEvents = 60
	return s
}

func TestRunUnknownSystem(t *testing.T) {
	if _, err := smallSetup().Run("nope", Crowded); err == nil {
		t.Error("Run accepted unknown system id")
	}
	if _, err := smallSetup().Run("fixed-0", Crowded); err == nil {
		t.Error("Run accepted fixed-0")
	}
	if _, err := smallSetup().Run("fixed-200", Crowded); err == nil {
		t.Error("Run accepted fixed-200")
	}
}

func TestAllSystemsRunClean(t *testing.T) {
	s := smallSetup()
	systems := []string{
		SysQuetzal, SysQuetzalDiv, SysQuetzalAvg, SysQuetzalFCFS, SysQuetzalLCFS,
		SysQuetzalCapt, SysQuetzalNoPID, SysQuetzalNoIBO,
		SysNoAdapt, SysAlwaysDeg, SysCatNap, SysPZO, SysPZI, SysIdeal,
		FixedThresholdID(0.25), FixedThresholdID(0.50), FixedThresholdID(0.75),
	}
	for _, id := range systems {
		res, err := s.Run(id, Crowded)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if err := res.Check(); err != nil {
			t.Errorf("%s: inconsistent results: %v", id, err)
		}
		if res.InterestingArrivals == 0 {
			t.Errorf("%s: no interesting arrivals", id)
		}
	}
}

func TestIdealIsAnalytic(t *testing.T) {
	s := smallSetup()
	res, err := s.Run(SysIdeal, Crowded)
	if err != nil {
		t.Fatal(err)
	}
	if res.IBOLossesInteresting() != 0 || res.IBODropsOther != 0 {
		t.Error("ideal baseline has IBO losses")
	}
	if res.HighQualityShare() != 1 {
		t.Errorf("ideal high-quality share = %g, want 1", res.HighQualityShare())
	}
	// Ideal's losses are exactly the HQ classifier's false negatives.
	wantFN := int(float64(res.InterestingArrivals)*s.Profile.MLOptions[0].FalseNegative + 0.5)
	if res.FalseNegatives != wantFN {
		t.Errorf("ideal FN = %d, want %d", res.FalseNegatives, wantFN)
	}
}

// The reproduction's headline orderings, asserted coarsely so the test is
// robust to calibration changes: Quetzal must beat NoAdapt and CatNap on
// total discards, and the Ideal baseline must lower-bound everyone.
func TestHeadlineOrderings(t *testing.T) {
	s := smallSetup()
	res, err := s.runAll([]string{SysIdeal, SysNoAdapt, SysCatNap, SysQuetzal}, Crowded)
	if err != nil {
		t.Fatal(err)
	}
	qz, na, cn, ideal := res[SysQuetzal], res[SysNoAdapt], res[SysCatNap], res[SysIdeal]
	if qz.DiscardedFraction() >= na.DiscardedFraction() {
		t.Errorf("quetzal %.3f not below noadapt %.3f", qz.DiscardedFraction(), na.DiscardedFraction())
	}
	if qz.DiscardedFraction() >= cn.DiscardedFraction() {
		t.Errorf("quetzal %.3f not below catnap %.3f", qz.DiscardedFraction(), cn.DiscardedFraction())
	}
	if ideal.DiscardedFraction() > qz.DiscardedFraction() {
		t.Errorf("ideal %.3f above quetzal %.3f", ideal.DiscardedFraction(), qz.DiscardedFraction())
	}
	// Quetzal's IBO-only losses must be far below NoAdapt's (the paper's
	// 5.7–16.6x claims; we assert ≥ 3x).
	if qz.IBOFraction()*3 > na.IBOFraction() {
		t.Errorf("quetzal IBO %.3f not ≤ noadapt IBO %.3f / 3", qz.IBOFraction(), na.IBOFraction())
	}
}

func TestEnvironmentsOrdering(t *testing.T) {
	if MoreCrowded.MaxDuration != 600 || Crowded.MaxDuration != 60 ||
		LessCrowded.MaxDuration != 20 || MSP430Env.MaxDuration != 10 {
		t.Error("environment duration caps do not match Table 1")
	}
	if len(Environments) != 3 {
		t.Errorf("Environments = %d entries, want 3", len(Environments))
	}
}

func TestTracesScaleWithCells(t *testing.T) {
	s := smallSetup()
	p6, _ := s.Traces(Crowded)
	s.Cells = 3
	p3, _ := s.Traces(Crowded)
	a, b := p6.Power(100), p3.Power(100)
	if a <= 0 {
		t.Fatalf("no power at t=100: %g", a)
	}
	if got := b / a; got < 0.49 || got > 0.51 {
		t.Errorf("3-cell power ratio = %g, want 0.5", got)
	}
}

func TestFixedThresholdID(t *testing.T) {
	if got := FixedThresholdID(0.25); got != "fixed-25" {
		t.Errorf("FixedThresholdID = %q", got)
	}
}

func TestFiguresRender(t *testing.T) {
	if testing.Short() {
		t.Skip("figure harness is slow")
	}
	s := smallSetup()
	// Render every figure through the harness and check non-emptiness.
	checks := []struct {
		name string
		frag string
		run  func() (string, error)
	}{
		{"2b", "capture period", func() (string, error) { return render(s.Fig2b()) }},
		{"3", "naive", func() (string, error) { return render(s.Fig3()) }},
		{"8", "end-to-end", func() (string, error) { return render(s.Fig8()) }},
		{"9", "NoAdapt", func() (string, error) { return render(s.Fig9()) }},
		{"10", "prior work", func() (string, error) { return render(s.Fig10()) }},
		{"11", "thresholds", func() (string, error) { return render(s.Fig11()) }},
		{"11c", "sweep", func() (string, error) { return render(s.Fig11c()) }},
		{"12", "scheduling", func() (string, error) { return render(s.Fig12()) }},
		{"13", "MSP430", func() (string, error) { return render(s.Fig13()) }},
	}
	for _, c := range checks {
		out, err := c.run()
		if err != nil {
			t.Fatalf("fig %s: %v", c.name, err)
		}
		if !strings.Contains(out, c.frag) {
			t.Errorf("fig %s output missing %q:\n%s", c.name, c.frag, out)
		}
	}
}

func render(tb *report.Table, err error) (string, error) {
	if err != nil {
		return "", err
	}
	var buf bytes.Buffer
	if rerr := tb.Render(&buf); rerr != nil {
		return "", rerr
	}
	return buf.String(), nil
}

func TestFig14Tables(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	s := smallSetup()
	tables, err := s.Fig14()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("Fig14 returned %d tables, want 3", len(tables))
	}
	for _, tb := range tables {
		if len(tb.Rows) == 0 {
			t.Errorf("%s: no rows", tb.Title)
		}
	}
}

func TestCircuitStudyTables(t *testing.T) {
	tables := CircuitStudy()
	if len(tables) != 2 {
		t.Fatalf("CircuitStudy returned %d tables, want 2", len(tables))
	}
	var buf bytes.Buffer
	for _, tb := range tables {
		if err := tb.Render(&buf); err != nil {
			t.Fatal(err)
		}
	}
	out := buf.String()
	for _, frag := range []string{"ratio error", "msp430", "apollo4", "quetzal module"} {
		if !strings.Contains(out, frag) {
			t.Errorf("circuit study missing %q", frag)
		}
	}
}

func TestTable1(t *testing.T) {
	tb := DefaultSetup().Table1()
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"apollo4", "mobilenetv2", "task-window=64"} {
		if !strings.Contains(buf.String(), frag) {
			t.Errorf("Table1 missing %q", frag)
		}
	}
	s := DefaultSetup()
	s.Profile = device.MSP430()
	tb = s.Table1()
	buf.Reset()
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "lenet-int16") {
		t.Error("MSP430 Table1 missing lenet-int16")
	}
}

func TestExtensionStudies(t *testing.T) {
	if testing.Short() {
		t.Skip("extension studies are slow")
	}
	s := smallSetup()

	jt, err := s.JitterStudy()
	if err != nil {
		t.Fatalf("JitterStudy: %v", err)
	}
	if len(jt.Rows) != 6 {
		t.Errorf("JitterStudy rows = %d, want 6 (3 jitter levels × 2 systems)", len(jt.Rows))
	}

	ck, err := s.CheckpointStudy()
	if err != nil {
		t.Fatalf("CheckpointStudy: %v", err)
	}
	if len(ck.Rows) != 6 {
		t.Errorf("CheckpointStudy rows = %d, want 6 (3 policies × 2 systems)", len(ck.Rows))
	}

	mc, err := s.MCUStudy()
	if err != nil {
		t.Fatalf("MCUStudy: %v", err)
	}
	if len(mc.Rows) != 6 {
		t.Errorf("MCUStudy rows = %d, want 6 (3 platforms × 2 systems)", len(mc.Rows))
	}
	out, err := render(mc, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"apollo4", "stm32g071", "msp430fr5994"} {
		if !strings.Contains(out, frag) {
			t.Errorf("MCUStudy missing %q", frag)
		}
	}
}

func TestRunWithTimeline(t *testing.T) {
	s := smallSetup()
	s.NumEvents = 20
	var buf bytes.Buffer
	res, err := s.RunWithTimeline(SysNoAdapt, Crowded, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if res.JobsCompleted == 0 {
		t.Error("timeline run completed nothing")
	}
	if !strings.HasPrefix(buf.String(), "t_s,power_mw,store_mj,occupancy,state") {
		t.Errorf("timeline missing header: %q", buf.String()[:60])
	}
	// Ideal short-circuits without a timeline.
	if _, err := s.RunWithTimeline(SysIdeal, Crowded, &buf); err != nil {
		t.Errorf("RunWithTimeline(ideal): %v", err)
	}
}

func TestLadderStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tb, err := smallSetup().LadderStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tb.Rows))
	}
	out, err := render(tb, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "opt3") {
		t.Errorf("ladder table missing opt3 column:\n%s", out)
	}
}

func TestBufferStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	s := smallSetup()
	s.NumEvents = 40
	tb, err := s.BufferStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 12 {
		t.Fatalf("rows = %d, want 12 (6 capacities × 2 systems)", len(tb.Rows))
	}
}

// The event-driven engine must preserve the harness's headline orderings.
func TestFastEngineOrderings(t *testing.T) {
	s := smallSetup()
	s.Engine = sim.EventDriven
	res, err := s.runAll([]string{SysNoAdapt, SysQuetzal}, Crowded)
	if err != nil {
		t.Fatal(err)
	}
	qz, na := res[SysQuetzal], res[SysNoAdapt]
	if qz.DiscardedFraction() >= na.DiscardedFraction() {
		t.Errorf("fast engine: quetzal %.3f not below noadapt %.3f",
			qz.DiscardedFraction(), na.DiscardedFraction())
	}
	if qz.IBOFraction()*2 > na.IBOFraction() {
		t.Errorf("fast engine: quetzal IBO %.3f not well below noadapt %.3f",
			qz.IBOFraction(), na.IBOFraction())
	}
}

func TestSeedStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	s := smallSetup()
	tb, err := s.SeedStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tb.Rows))
	}
}
