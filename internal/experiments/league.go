package experiments

// The policy league: every registered policy across the six-environment
// gauntlet (LeagueEnvironments), rendered as one table. The league is the
// head-to-head view the per-figure tables cannot give — the same policies,
// the same traces, every environment — and it doubles as the CI smoke
// surface: the rendered bytes are deterministic at any worker count, so a
// rerun or a -parallel change must reproduce them exactly.

import (
	"context"

	"quetzal/internal/metrics"
	"quetzal/internal/report"
)

// LeaguePolicies is the default league field: the paper's full design, its
// main baselines, and the three post-paper competitor strategies.
var LeaguePolicies = []string{
	SysQuetzal, SysNoAdapt, SysAlwaysDeg, SysCatNap, SysPZO,
	SysMDP, SysEnSuRe, SysInterweave,
}

// LeaguePlan enumerates the league's run keys: policies × environments with
// no setup deviations, in deterministic environment-major order. Defaults
// (nil/empty) are LeaguePolicies and LeagueEnvironments.
func LeaguePlan(policies []string, envs []Environment) []RunKey {
	if len(policies) == 0 {
		policies = LeaguePolicies
	}
	if len(envs) == 0 {
		envs = LeagueEnvironments
	}
	return baseKeys(policies, envs...)
}

// League runs the league and renders the table: one row per (environment,
// policy), with the overflow, quality and energy columns the comparison
// turns on. Policies default to LeaguePolicies.
func (sw *Sweep) League(ctx context.Context, policies []string) (*report.Table, error) {
	if len(policies) == 0 {
		policies = LeaguePolicies
	}
	keys := LeaguePlan(policies, LeagueEnvironments)
	results, err := sw.Results(ctx, keys)
	if err != nil {
		return nil, err
	}
	t := report.New("Policy league — all policies × all environments",
		"environment", "policy", "ibo", "highq-share", "discarded", "wasted-J", "degraded", "brownouts")
	for _, k := range keys {
		r := results[k]
		sum := metrics.Summarize(&r)
		t.AddRow(k.Env.Name, k.System,
			report.Pct(r.IBOFraction()),
			report.Pct(r.HighQualityShare()),
			report.Pct(r.DiscardedFraction()),
			report.F(sum.WastedJoules),
			report.Pct(r.DegradationRate()),
			report.N(r.Brownouts))
	}
	t.AddNote("%d policies × %d environments, events=%d seed=%d",
		len(policies), len(LeagueEnvironments), sw.Setup.NumEvents, sw.Setup.Seed)
	return t, nil
}
