package experiments

import (
	"testing"

	"quetzal/internal/sim"
)

// TestLatencyScalingRegime documents the Fig 11/12 divergence analysis in
// EXPERIMENTS.md: as task latencies scale up, NoAdapt collapses while the
// QZ-vs-FCFS gap persists — evidence that the inversion stems from the
// deferral-is-free and spawn-keeps-slot model properties rather than from
// the cost calibration alone.
func TestLatencyScalingRegime(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	for _, scale := range []float64{1.5, 2.0, 2.5} {
		s := DefaultSetup()
		s.NumEvents = 150
		s.Engine = sim.EventDriven
		p := s.Profile
		for i := range p.MLOptions {
			p.MLOptions[i].Texe *= scale
		}
		p.Compress.Texe *= scale
		for i := range p.RadioOptions {
			p.RadioOptions[i].Texe *= scale
		}
		s.Profile = p
		for _, id := range []string{SysQuetzal, SysQuetzalFCFS, FixedThresholdID(0.50), SysNoAdapt} {
			res, err := s.Run(id, Crowded)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("scale=%.1f %-12s discarded=%.1f%% ibo=%.1f%% fn=%.1f%%",
				scale, id, res.DiscardedFraction()*100, res.IBOFraction()*100,
				100*float64(res.FalseNegatives)/float64(res.InterestingArrivals))
			if id == SysNoAdapt && res.DiscardedFraction() < 0.5 {
				t.Errorf("scale %.1f: NoAdapt at %.1f%% — slow regime not biting",
					scale, res.DiscardedFraction()*100)
			}
			if id == SysQuetzal && res.DiscardedFraction() > 0.5 {
				t.Errorf("scale %.1f: Quetzal at %.1f%% — adaptation collapsed",
					scale, res.DiscardedFraction()*100)
			}
		}
	}
}
