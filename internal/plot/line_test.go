package plot

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func lineChart() *LineChart {
	return &LineChart{
		Title:  "device timeline",
		XLabel: "normalised per series",
		X:      []float64{0, 10, 20, 30},
		Series: []Series{
			{Name: "power (mW)", Values: []float64{4, 30, 12, 0.5}},
			{Name: "occupancy", Values: []float64{0, 3, 9, 2}},
		},
	}
}

func TestLineValidate(t *testing.T) {
	if err := lineChart().Validate(); err != nil {
		t.Fatalf("valid chart rejected: %v", err)
	}
	c := lineChart()
	c.X = c.X[:1]
	if err := c.Validate(); err == nil {
		t.Error("accepted single point")
	}
	c = lineChart()
	c.X[2] = 5 // not ascending
	if err := c.Validate(); err == nil {
		t.Error("accepted non-ascending X")
	}
	c = lineChart()
	c.Series[0].Values = c.Series[0].Values[:2]
	if err := c.Validate(); err == nil {
		t.Error("accepted length mismatch")
	}
	c = lineChart()
	c.Series[0].Values[1] = math.Inf(1)
	if err := c.Validate(); err == nil {
		t.Error("accepted non-finite value")
	}
	c = lineChart()
	c.Series = nil
	if err := c.Validate(); err == nil {
		t.Error("accepted no series")
	}
}

func TestLineWriteSVG(t *testing.T) {
	var buf bytes.Buffer
	if err := lineChart().WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{
		"device timeline",
		`stroke="` + seriesColors[0] + `" stroke-width="2"`,
		`stroke="` + seriesColors[1] + `"`,
		"power (mW) (max 30.0)",
		"occupancy (max 9)",
		"30.0s", // final x tick
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("SVG missing %q", frag)
		}
	}
	// Two line paths starting with M.
	if got := strings.Count(out, `d="M`); got != 2 {
		t.Errorf("line paths = %d, want 2", got)
	}
}

func TestLineZeroSeries(t *testing.T) {
	c := &LineChart{
		Title:  "flat",
		X:      []float64{0, 1},
		Series: []Series{{Name: "zeros", Values: []float64{0, 0}}},
	}
	var buf bytes.Buffer
	if err := c.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
}
